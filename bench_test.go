package fusion_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices DESIGN.md calls out. The
// benchmark bodies run scaled-down configurations so `go test -bench=.`
// completes in minutes; cmd/fusionbench runs the full experiments and
// prints the tables.

import (
	"context"
	"testing"
	"time"

	"fusion/internal/bench"
	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/smt"
	"fusion/internal/sparse"
)

const benchScale = 0.01

var benchBudget = bench.Budget{Time: 5 * time.Minute, CondBytes: 2 << 30}

// compile caches subjects across benchmarks within one process.
var subjectCache = map[string]*bench.Subject{}

func compile(b *testing.B, info progen.Subject, scale float64) *bench.Subject {
	b.Helper()
	key := info.Name
	if s, ok := subjectCache[key]; ok {
		return s
	}
	s, err := bench.Compile(context.Background(), info, scale)
	if err != nil {
		b.Fatal(err)
	}
	subjectCache[key] = s
	return s
}

func runEngine(b *testing.B, sub *bench.Subject, spec *sparse.Spec, mk func() engines.Engine) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := bench.Run(context.Background(), sub, spec, mk(), benchBudget)
		if c.Failed {
			b.Fatalf("engine run failed: %s", c.FailNote)
		}
	}
}

// BenchmarkTable1 measures the cost model sweep: conventional O(kn+m) vs
// fused O(n+m) per k.
func BenchmarkTable1(b *testing.B) {
	for _, k := range []int{2, 8} {
		b.Run(map[int]string{2: "k=2", 8: "k=8"}[k], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := bench.Table1Measure(context.Background(), k, 30, 20)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(row.ConvCondTreeSize), "conv-size")
				b.ReportMetric(float64(row.FusionSliceSize), "fusion-slice")
			}
		})
	}
}

// BenchmarkTable2 measures subject compilation (generation, SSA, PDG).
func BenchmarkTable2(b *testing.B) {
	info := progen.Subjects[9] // vortex
	for i := 0; i < b.N; i++ {
		if _, err := bench.Compile(context.Background(), info, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 compares the two engines on null checking.
func BenchmarkTable3(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	b.Run("fusion", func(b *testing.B) {
		runEngine(b, sub, checker.NullDeref(), func() engines.Engine { return engines.NewFusion() })
	})
	b.Run("pinpoint", func(b *testing.B) {
		runEngine(b, sub, checker.NullDeref(), func() engines.Engine { return engines.NewPinpoint(engines.Plain) })
	})
}

// BenchmarkFig10 adds the formula-simplification variants.
func BenchmarkFig10(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	b.Run("pinpoint-lfs", func(b *testing.B) {
		runEngine(b, sub, checker.NullDeref(), func() engines.Engine { return engines.NewPinpoint(engines.LFS) })
	})
	b.Run("pinpoint-hfs", func(b *testing.B) {
		runEngine(b, sub, checker.NullDeref(), func() engines.Engine { return engines.NewPinpoint(engines.HFS) })
	})
}

// BenchmarkFig11 measures a single fused solve versus a standalone solve of
// the eagerly translated condition, per instance.
func BenchmarkFig11(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	cands := sparse.NewEngine(sub.Graph).Run(checker.NullDeref())
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	path := []pdg.Path{cands[0].Path}
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb := smt.NewBuilder()
			fusioncore.Solve(context.Background(), tb, sub.Graph, path, fusioncore.Options{})
		}
	})
	b.Run("standalone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb := smt.NewBuilder()
			fusioncore.Solve(context.Background(), tb, sub.Graph, path, fusioncore.Options{Unoptimized: true})
		}
	})
}

// BenchmarkTable4 runs the taint analyses.
func BenchmarkTable4(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	b.Run("cwe23-fusion", func(b *testing.B) {
		runEngine(b, sub, checker.PathTraversal(), func() engines.Engine { return engines.NewFusion() })
	})
	b.Run("cwe402-fusion", func(b *testing.B) {
		runEngine(b, sub, checker.PrivateLeak(), func() engines.Engine { return engines.NewFusion() })
	})
	b.Run("cwe23-pinpoint", func(b *testing.B) {
		runEngine(b, sub, checker.PathTraversal(), func() engines.Engine { return engines.NewPinpoint(engines.Plain) })
	})
}

// BenchmarkTable5 compares Fusion with the Infer-like analyzer.
func BenchmarkTable5(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	b.Run("fusion", func(b *testing.B) {
		runEngine(b, sub, checker.NullDeref(), func() engines.Engine { return engines.NewFusion() })
	})
	b.Run("infer", func(b *testing.B) {
		runEngine(b, sub, checker.NullDeref(), func() engines.Engine { return engines.NewInfer() })
	})
}

// BenchmarkFig1c measures the conventional engine's condition memory,
// reporting the retained bytes as a metric.
func BenchmarkFig1c(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	for i := 0; i < b.N; i++ {
		eng := engines.NewPinpoint(engines.Plain)
		c := bench.Run(context.Background(), sub, checker.NullDeref(), eng, benchBudget)
		b.ReportMetric(c.CondMB, "cond-MB")
	}
}

// --- Ablations ---

func benchFusionOpts(b *testing.B, opts fusioncore.Options) {
	sub := compile(b, progen.Subjects[9], benchScale)
	runEngine(b, sub, checker.NullDeref(), func() engines.Engine {
		e := engines.NewFusion()
		e.Opts = opts
		return e
	})
}

// BenchmarkAblationQuickPath disables inter-procedural quick paths.
func BenchmarkAblationQuickPath(b *testing.B) {
	benchFusionOpts(b, fusioncore.Options{DisableQuickPaths: true})
}

// BenchmarkAblationLocalPreprocess disables per-function preprocessing.
func BenchmarkAblationLocalPreprocess(b *testing.B) {
	benchFusionOpts(b, fusioncore.Options{DisableLocalPreprocess: true})
}

// BenchmarkAblationDelayedCloning runs Algorithm 4 (eager cloning) instead
// of Algorithm 6.
func BenchmarkAblationDelayedCloning(b *testing.B) {
	benchFusionOpts(b, fusioncore.Options{Unoptimized: true})
}

// BenchmarkAblationSummaryCache compares the conventional engine with a
// cold cache per run against one reusing its cache across candidates
// (which is its normal mode; this isolates the caching benefit).
func BenchmarkAblationSummaryCache(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	cands := sparse.NewEngine(sub.Graph).Run(checker.NullDeref())
	b.Run("shared-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := engines.NewPinpoint(engines.Plain)
			eng.Check(context.Background(), sub.Graph, cands)
		}
	})
	b.Run("cold-per-candidate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range cands {
				eng := engines.NewPinpoint(engines.Plain)
				eng.Check(context.Background(), sub.Graph, []sparse.Candidate{c})
			}
		}
	})
}

// BenchmarkSparsePropagation isolates the shared path-enumeration phase.
func BenchmarkSparsePropagation(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	for i := 0; i < b.N; i++ {
		sparse.NewEngine(sub.Graph).Run(checker.NullDeref())
	}
}

// BenchmarkAblationEnumeration compares the DFS path enumeration with the
// summary-based one (Algorithm 2's S_t) on a wide call graph.
func BenchmarkAblationEnumeration(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	spec := checker.NullDeref()
	b.Run("dfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.NewEngine(sub.Graph).Run(spec)
		}
	})
	b.Run("summary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparse.NewSummaryEngine(sub.Graph).Run(spec)
		}
	})
}

// BenchmarkAblationAbsint toggles the interval abstract-interpretation
// tier on the value-constrained checkers, reporting how many queries the
// tier decides (refuted or pruned before solving) and how many reach the
// bit-precise solver.
func BenchmarkAblationAbsint(b *testing.B) {
	sub := compile(b, progen.Subjects[9], benchScale)
	for _, cfg := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var decided, solved, reports int
				for _, spec := range []*sparse.Spec{checker.DivByZero(), checker.IndexOOB()} {
					e := engines.NewFusion()
					e.UseAbsint = cfg.on
					c := bench.Run(context.Background(), sub, spec, e, benchBudget)
					if c.Failed {
						b.Fatalf("engine run failed: %s", c.FailNote)
					}
					decided += c.AbsintDecided + c.AbsintPruned
					solved += c.SolverCalls
					reports += c.Reports
				}
				b.ReportMetric(float64(decided), "absint-decided")
				b.ReportMetric(float64(solved), "solver-calls")
				b.ReportMetric(float64(reports), "reports")
			}
		})
	}
}
