package bench

import (
	"context"
	"testing"
	"time"

	"fusion/internal/checker"
	"fusion/internal/cond"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
)

// TestSessionWarmVsColdCorpus is the differential acceptance test for the
// incremental sessions: every SMT query of the progen corpus is answered
// twice — once by a single warm Session reused across all of a subject's
// candidates (clauses, phases, and encodings accumulating), once by the
// cold one-shot solver on a fresh stack — and the verdicts must agree on
// every instance. The corpus must also actually exercise reuse, or the
// agreement is vacuous.
func TestSessionWarmVsColdCorpus(t *testing.T) {
	ctx := context.Background()
	subs, err := CompileAll(ctx, progen.Subjects, 0.002, 4)
	if err != nil {
		t.Fatal(err)
	}
	specs := []*sparse.Spec{checker.NullDeref(), checker.DivByZero()}
	queries, undecided := 0, 0
	var hits, reusedClauses int64
	for _, sub := range subs {
		// One warm session per subject, shared across specs and candidates
		// — the same shape the sequential engines use.
		sess := solver.NewSession(solver.SessionConfig{})
		for _, spec := range specs {
			senge := sparse.NewEngine(sub.Graph)
			cands := senge.RunContext(ctx, spec)
			for i, c := range cands {
				opts := solver.Options{Ctx: ctx, Timeout: 10 * time.Second}

				sl := pdg.ComputeSlice(sub.Graph, []pdg.Path{c.Path})
				c.ApplyConstraint(sl, 0)
				sess.Begin()
				warm := sess.Solve(cond.Translate(sess.Builder(), sl).Phi, opts)
				sess.Finish()

				cb := smt.NewBuilder()
				csl := pdg.ComputeSlice(sub.Graph, []pdg.Path{c.Path})
				c.ApplyConstraint(csl, 0)
				cold := solver.Solve(cb, cond.Translate(cb, csl).Phi, opts)

				queries++
				hits += warm.CacheHits
				reusedClauses += warm.ReusedClauses
				if warm.Status == sat.Unknown || cold.Status == sat.Unknown {
					undecided++
					continue
				}
				if warm.Status != cold.Status {
					t.Errorf("%s/%s candidate %d: warm session says %v, cold solve says %v",
						sub.Info.Name, spec.Name, i, warm.Status, cold.Status)
				}
			}
		}
	}
	if queries == 0 {
		t.Fatal("corpus produced no SMT queries; the differential is vacuous")
	}
	if undecided > queries/2 {
		t.Errorf("%d of %d queries undecided; the differential barely ran", undecided, queries)
	}
	if hits == 0 {
		t.Error("warm sessions never reused a term encoding across the corpus")
	}
	t.Logf("%d queries, %d warm cache hits, %d reused learned clauses, %d undecided",
		queries, hits, reusedClauses, undecided)
}
