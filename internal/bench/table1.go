package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fusion/internal/checker"
	"fusion/internal/cond"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
)

// Table1Program generates the paper's §2 cost-model scenario: a caller foo
// of size ~m that calls a callee bar of size ~n at k call sites, with the
// null dereference guarded by a condition over the call results.
func Table1Program(k, n, m int) string {
	var b strings.Builder
	b.WriteString("fun bar(x: int): int {\n")
	prev := "x"
	for i := 0; i < n; i++ {
		cur := fmt.Sprintf("s%d", i)
		op := []string{"+ 1", "* 3", "- 2", "^ 5"}[i%4]
		fmt.Fprintf(&b, "    var %s: int = %s %s;\n", cur, prev, op)
		prev = cur
	}
	fmt.Fprintf(&b, "    return %s;\n}\n\n", prev)

	b.WriteString("fun foo(a: int, bv: int) {\n")
	b.WriteString("    var p: ptr = null;\n")
	for i := 0; i < k; i++ {
		arg := "a"
		if i%2 == 1 {
			arg = "bv"
		}
		fmt.Fprintf(&b, "    var c%d: int = bar(%s + %d);\n", i, arg, i)
	}
	prev = "c0"
	for i := 0; i < m; i++ {
		cur := fmt.Sprintf("t%d", i)
		fmt.Fprintf(&b, "    var %s: int = %s + c%d;\n", cur, prev, i%k)
		prev = cur
	}
	last := "c0"
	if k > 1 {
		last = fmt.Sprintf("c%d", k-1)
	}
	fmt.Fprintf(&b, "    if (%s < %s) {\n        deref(p);\n    }\n}\n", prev, last)
	return b.String()
}

// Table1Row is one measured row of the cost-model experiment.
type Table1Row struct {
	K, N, M int
	// Conventional costs.
	ConvCondTreeSize int           // computing: the condition's tree size, O(kn+m)
	ConvTranslate    time.Duration //
	ConvSolve        time.Duration //
	ConvCachedBytes  int64         // caching: retained term bytes
	// Fusion costs.
	FusionSliceSize int           // the graph slice, O(n+m)
	FusionSolve     time.Duration //
	FusionClones    int
}

// Table1Measure runs both designs on the k/n/m scenario.
func Table1Measure(ctx context.Context, k, n, m int) (Table1Row, error) {
	row := Table1Row{K: k, N: n, M: m}
	p, err := driver.Compile(ctx, driver.Source{
		Name: fmt.Sprintf("table1-k%d", k), Text: Table1Program(k, n, m),
	}, driver.Options{Prelude: true})
	if err != nil {
		return row, err
	}
	g := p.Graph
	cands := sparse.NewEngine(g).RunContext(ctx, checker.NullDeref())
	if len(cands) != 1 {
		return row, fmt.Errorf("bench: table1: got %d candidates, want 1", len(cands))
	}
	paths := []pdg.Path{cands[0].Path}

	// Conventional: translate eagerly, measure, solve.
	eb := smt.NewBuilder()
	t0 := time.Now()
	sl := pdg.ComputeSlice(g, paths)
	tr := cond.Translate(eb, sl)
	row.ConvTranslate = time.Since(t0)
	row.ConvCondTreeSize = smt.TreeSize(tr.Phi, 1<<24)
	t1 := time.Now()
	solver.Solve(eb, tr.Phi, solver.Options{Ctx: ctx, Timeout: 10 * time.Second})
	row.ConvSolve = time.Since(t1)
	row.ConvCachedBytes = eb.EstimatedBytes()

	// Fusion.
	fb := smt.NewBuilder()
	t2 := time.Now()
	fr := fusioncore.Solve(ctx, fb, g, paths, fusioncore.Options{})
	row.FusionSolve = time.Since(t2)
	row.FusionSliceSize = fr.SliceSize
	row.FusionClones = fr.Clones
	return row, nil
}

// Table1 sweeps k (the number of call sites per callee) with fixed callee
// and caller sizes, empirically validating the cost model of the paper's
// Table 1: conventional costs grow with k, fused costs do not.
func Table1(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title: "Table 1: cost of computing/solving/caching (n=callee, m=caller size)",
		Header: []string{"k", "n", "m", "Conv-CondSize", "Conv-Cache",
			"Conv-Time", "Fusion-Slice", "Fusion-Clones", "Fusion-Time"},
	}
	n, m := 30, 20
	for _, k := range []int{1, 2, 4, 8, 16} {
		row, err := Table1Measure(ctx, k, n, m)
		if err != nil {
			return "", err
		}
		t.AddRow(
			fmt.Sprintf("%d", row.K), fmt.Sprintf("%d", row.N), fmt.Sprintf("%d", row.M),
			fmt.Sprintf("%d", row.ConvCondTreeSize),
			fmb(mb(row.ConvCachedBytes)),
			fd(row.ConvTranslate+row.ConvSolve),
			fmt.Sprintf("%d", row.FusionSliceSize),
			fmt.Sprintf("%d", row.FusionClones),
			fd(row.FusionSolve),
		)
	}
	return t.String(), nil
}

// Ablations measures the contribution of each fused-design ingredient on a
// mid-sized subject: quick paths, local preprocessing, and delayed cloning
// (Algorithm 6 vs Algorithm 4) — the design choices DESIGN.md calls out.
func Ablations(ctx context.Context, opts Options) (string, error) {
	info := progen.Subjects[15] // wine
	if len(opts.Subjects) > 0 {
		info = opts.Subjects[0]
	}
	sub, err := Compile(ctx, info, opts.scale())
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablations on %s (null exceptions)", info.Name),
		Header: []string{"Configuration", "Time", "Cond-Mem", "Reports"},
	}
	configs := []struct {
		name string
		opts fusioncore.Options
	}{
		{"fusion (full)", fusioncore.Options{}},
		{"fusion -quickpaths", fusioncore.Options{DisableQuickPaths: true}},
		{"fusion -localprep", fusioncore.Options{DisableLocalPreprocess: true}},
		{"fusion unoptimized (Alg. 4)", fusioncore.Options{Unoptimized: true}},
	}
	spec := checker.NullDeref()
	for _, cfg := range configs {
		eng := engines.NewFusion()
		eng.Opts = cfg.opts
		c := opts.run(ctx, sub, spec, eng)
		t.AddRow(cfg.name, fd(c.Time), fmb(c.CondMB), fmt.Sprintf("%d", c.Reports))
	}
	pc := opts.run(ctx, sub, spec, opts.pinpoint(engines.Plain))
	t.AddRow("pinpoint (conventional)", fd(pc.Time), fmb(pc.CondMB), fmt.Sprintf("%d", pc.Reports))
	return t.String(), nil
}

// Experiments maps experiment names to their drivers for the command-line
// harness.
var Experiments = map[string]func(context.Context, Options) (string, error){
	"table1":           Table1,
	"table2":           Table2,
	"cwe369":           CWE369,
	"table3":           Table3,
	"table4":           Table4,
	"table5":           Table5,
	"fig1c":            Fig1c,
	"fig10":            Fig10,
	"fig11":            Fig11,
	"ablations":        Ablations,
	"ablation-absint":  AblationAbsint,
	"ablation-session": AblationSession,
}

// ExperimentNames lists the available experiments in a stable order.
var ExperimentNames = []string{
	"fig1c", "table1", "table2", "table3", "fig10", "fig11", "table4", "table5", "cwe369", "ablations",
	"ablation-absint", "ablation-session",
}
