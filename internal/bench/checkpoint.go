// Crash-safe checkpointing for corpus runs: an append-only JSONL journal
// of scored engine runs, fsync'd per record, so a run killed mid-corpus
// (OOM, kill -9, power loss) resumes by replaying completed records
// instead of re-solving them. Records are keyed by a digest over
// everything that determines a run's verdicts — experiment, subject,
// checker, engine configuration, scale, budget — plus a per-key
// occurrence counter; worker count, retries, and the watchdog grace
// window are deliberately excluded, since they may only change cost,
// never verdicts. Replayed Costs feed the same table renderers as live
// ones, so a resumed run's merged output is byte-identical to the
// original's.

package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"fusion/internal/engines"
	"fusion/internal/sparse"
)

// journalRecord is one completed engine run, one JSON line in the file.
type journalRecord struct {
	// Key is the run digest; Desc its readable form, for debugging a
	// journal by eye.
	Key  string `json:"key"`
	Desc string `json:"desc"`
	Cost Cost   `json:"cost"`
}

// Journal is an append-only checkpoint of completed engine runs. Safe
// for concurrent use; each Record is flushed and fsync'd before it
// returns, so a record either survives a crash whole or (torn mid-write)
// is discarded on load.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]Cost
	seen map[string]int
}

// OpenJournal opens (creating if needed) a journal at path and loads any
// records a previous run completed. A torn trailing line — the record
// being written when the process died — is tolerated and dropped.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: checkpoint: %w", err)
	}
	j := &Journal{f: f, done: map[string]Cost{}, seen: map[string]int{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	var good int64 // bytes of whole leading records
	torn := false
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			torn = true // the crash interrupted this write
			break
		}
		good += int64(len(sc.Bytes())) + 1
		j.done[rec.Key] = rec.Cost
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("bench: checkpoint: %w", err)
	}
	// Truncate the torn tail away so this run's records follow the last
	// whole one — a later resume must never find garbage mid-file and
	// drop the records behind it.
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: checkpoint: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("bench: checkpoint: %w", err)
	}
	return j, nil
}

// Len reports how many completed records the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Key digests a run description into a journal key, appending the
// per-description occurrence index: experiments that run the identical
// configuration more than once (ablation sweeps) get distinct keys in
// execution order, which is deterministic because experiments issue runs
// sequentially.
func (j *Journal) Key(desc string) (key, fullDesc string) {
	j.mu.Lock()
	occ := j.seen[desc]
	j.seen[desc]++
	j.mu.Unlock()
	fullDesc = fmt.Sprintf("%s #%d", desc, occ)
	h := fnv.New32a()
	h.Write([]byte(fullDesc))
	return fmt.Sprintf("%08x", h.Sum32()), fullDesc
}

// Lookup returns the recorded cost for key, if a previous run completed
// it.
func (j *Journal) Lookup(key string) (Cost, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	c, ok := j.done[key]
	return c, ok
}

// Record appends one completed run and fsyncs before returning: after
// Record, the run survives any crash.
func (j *Journal) Record(key, desc string, c Cost) error {
	line, err := json.Marshal(journalRecord{Key: key, Desc: desc, Cost: c})
	if err != nil {
		return fmt.Errorf("bench: checkpoint: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("bench: checkpoint: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("bench: checkpoint: %w", err)
	}
	j.done[key] = c
	return nil
}

// Close closes the journal file. Recorded state stays on disk.
func (j *Journal) Close() error { return j.f.Close() }

// engineFingerprint renders the verdict-relevant configuration of an
// engine. Worker counts and supervision settings are excluded: they may
// only change cost. Unknown engine types fall back to their name, which
// is correct as long as they carry no ablation knobs.
func engineFingerprint(eng engines.Engine) string {
	switch x := eng.(type) {
	case *engines.Fusion:
		return fmt.Sprintf("fusion absint=%t intervals=%t nostride=%t nosimplify=%t nosession=%t timeout=%s conflicts=%d budget=%d/%d/%s/%d",
			x.UseAbsint, x.IntervalsOnly, x.NoStride, x.NoSimplify, x.NoSession,
			x.Cfg.Timeout, x.Cfg.MaxConflicts,
			x.Cfg.Budget.Steps, x.Cfg.Budget.Conflicts, x.Cfg.Budget.Deadline, x.Cfg.Budget.MaxHeapDelta)
	case *engines.Pinpoint:
		return fmt.Sprintf("%s nosession=%t timeout=%s conflicts=%d qe=%d budget=%d/%d/%s/%d",
			x.Name(), x.NoSession, x.Cfg.Timeout, x.Cfg.MaxConflicts, x.QEBudget,
			x.Cfg.Budget.Steps, x.Cfg.Budget.Conflicts, x.Cfg.Budget.Deadline, x.Cfg.Budget.MaxHeapDelta)
	case *engines.Infer:
		return fmt.Sprintf("infer depth=%d specbudget=%d", x.MaxSummaryDepth, x.SpecBudget)
	default:
		return eng.Name()
	}
}

// runDesc renders the full readable run description the journal keys
// digest.
func (o Options) runDesc(sub *Subject, spec *sparse.Spec, eng engines.Engine, budget Budget) string {
	return fmt.Sprintf("%s | %s | %s | scale=%g | budget=%s/%d | %s",
		o.Experiment, sub.Info.Name, spec.Name, o.scale(),
		budget.Time, budget.CondBytes, engineFingerprint(eng))
}
