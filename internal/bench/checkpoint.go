// Crash-safe checkpointing for corpus runs: an append-only JSONL journal
// of scored engine runs, fsync'd per record, so a run killed mid-corpus
// (OOM, kill -9, power loss) resumes by replaying completed records
// instead of re-solving them. Records are keyed by a digest over
// everything that determines a run's verdicts — experiment, subject,
// checker, engine configuration, scale, budget — plus a per-key
// occurrence counter; worker count, retries, and the watchdog grace
// window are deliberately excluded, since they may only change cost,
// never verdicts. Replayed Costs feed the same table renderers as live
// ones, so a resumed run's merged output is byte-identical to the
// original's.
//
// The journal holds two record kinds. Run summaries (the original
// format, kind absent) checkpoint a whole (subject, checker, engine)
// run. Unit records (kind "unit") checkpoint one candidate's verdict
// within a run, keyed by (run digest, candidate index), so a crash
// mid-subject resumes at the first unchecked candidate instead of
// re-solving the whole subject.
//
// Durability discipline: a record is written, fsync'd, and only then
// published to the in-memory replay maps. A failed write or sync rolls
// the file back to the last durable offset, so the maps never claim a
// record the disk may not have — a resume re-runs it instead. The
// containing directory is fsync'd once at open, covering the file's
// creation itself.

package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"fusion/internal/engines"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// journalRecord is one journal entry, one JSON line in the file: a run
// summary (Kind empty, Cost set) or a unit verdict (Kind "unit", Unit
// set).
type journalRecord struct {
	// Key is the record digest; Desc its readable form, for debugging a
	// journal by eye (summaries only).
	Key  string      `json:"key"`
	Desc string      `json:"desc,omitempty"`
	Kind string      `json:"kind,omitempty"`
	Cost *Cost       `json:"cost,omitempty"`
	Unit *unitRecord `json:"unit,omitempty"`
}

// unitRecord is one candidate's completed verdict, minus the candidate
// itself: on replay the verdict is re-synthesized around the candidate
// at the same index, whose label must match Unit. Cost-only counters
// ride along so replayed summaries fold identically.
type unitRecord struct {
	Idx  int    `json:"idx"`
	Unit string `json:"u"`
	// Status is the sat.Status integer; Tier the engines.Tier integer.
	Status int `json:"st"`
	Tier   int `json:"tier,omitempty"`

	Preprocessed    bool `json:"pre,omitempty"`
	DecidedByAbsint bool `json:"abs,omitempty"`
	DecidedByStride bool `json:"stride,omitempty"`
	DecidedByZone   bool `json:"zone,omitempty"`
	Degraded        bool `json:"deg,omitempty"`
	Abandoned       bool `json:"aband,omitempty"`

	Simplified    int   `json:"simp,omitempty"`
	PrunedGuards  int   `json:"guards,omitempty"`
	ConditionSize int   `json:"cond,omitempty"`
	Attempts      int   `json:"att,omitempty"`
	CacheHits     int64 `json:"hits,omitempty"`
	CacheVars     int   `json:"vars,omitempty"`
	ReusedClauses int64 `json:"reused,omitempty"`
	Conflicts     int64 `json:"confl,omitempty"`
	Decisions     int64 `json:"decis,omitempty"`
	Props         int64 `json:"props,omitempty"`
	SolveNS       int64 `json:"ns,omitempty"`

	Failure *failure.UnitFailure `json:"fail,omitempty"`
}

// unitRecordOf flattens a verdict into its persisted form.
func unitRecordOf(idx int, v engines.Verdict) unitRecord {
	return unitRecord{
		Idx: idx, Unit: engines.UnitLabel(v.Cand),
		Status: int(v.Status), Tier: int(v.Tier),
		Preprocessed:    v.Preprocessed,
		DecidedByAbsint: v.DecidedByAbsint,
		DecidedByStride: v.DecidedByStride,
		DecidedByZone:   v.DecidedByZone,
		Degraded:        v.Degraded,
		Abandoned:       v.Abandoned,
		Simplified:      v.Simplified,
		PrunedGuards:    v.PrunedGuards,
		ConditionSize:   v.ConditionSize,
		Attempts:        v.Attempts,
		CacheHits:       v.CacheHits,
		CacheVars:       v.CacheVars,
		ReusedClauses:   v.ReusedClauses,
		Conflicts:       v.Conflicts,
		Decisions:       v.Decisions,
		Props:           v.Props,
		SolveNS:         v.SolveTime.Nanoseconds(),
		Failure:         v.Failure,
	}
}

// verdict re-synthesizes the recorded verdict around the candidate it
// was checked against.
func (u *unitRecord) verdict(c sparse.Candidate) engines.Verdict {
	return engines.Verdict{
		Cand: c, Status: sat.Status(u.Status), Tier: engines.Tier(u.Tier),
		Preprocessed:    u.Preprocessed,
		DecidedByAbsint: u.DecidedByAbsint,
		DecidedByStride: u.DecidedByStride,
		DecidedByZone:   u.DecidedByZone,
		Degraded:        u.Degraded,
		Abandoned:       u.Abandoned,
		Simplified:      u.Simplified,
		PrunedGuards:    u.PrunedGuards,
		ConditionSize:   u.ConditionSize,
		Attempts:        u.Attempts,
		CacheHits:       u.CacheHits,
		CacheVars:       u.CacheVars,
		ReusedClauses:   u.ReusedClauses,
		Conflicts:       u.Conflicts,
		Decisions:       u.Decisions,
		Props:           u.Props,
		SolveTime:       time.Duration(u.SolveNS),
		Failure:         u.Failure,
	}
}

// maxRecordLine bounds one journal line on load. Records are bounded on
// the write side (failure payloads carry digests, not stacks; summary
// failure lists are capped), so a longer line is corruption — it is
// treated like a torn tail, not an error.
const maxRecordLine = 8 << 20

// maxRecordedFailures caps the failure details one summary record
// persists. The count (Cost.UnitFailures) is preserved; only the
// per-failure detail list is truncated.
const maxRecordedFailures = 64

// Journal is an append-only checkpoint of completed engine runs. Safe
// for concurrent use; each record is flushed and fsync'd before it is
// published, so a record either survives a crash whole or is re-run on
// resume.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	good  int64 // durable offset: whole, fsync'd records end here
	done  map[string]Cost
	units map[string]unitRecord
	seen  map[string]int
}

// OpenJournal opens (creating if needed) a journal at path and loads any
// records a previous run completed. A torn trailing line — the record
// being written when the process died, or one exceeding the bounded
// record size — is tolerated and dropped, along with anything after it.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: checkpoint: %w", err)
	}
	// Make the file's existence itself durable: fsync the containing
	// directory, so a crash right after creation cannot leave records in
	// a file whose directory entry was never written.
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{f: f, done: map[string]Cost{}, units: map[string]unitRecord{}, seen: map[string]int{}}
	br := bufio.NewReader(f)
	var good int64 // bytes of whole leading records
	torn := false
	for {
		line, err := readBoundedLine(br)
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			// Oversized or unterminated line: treat as a torn tail.
			torn = true
			break
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			torn = true // the crash interrupted this write
			break
		}
		good += int64(len(line)) + 1
		switch rec.Kind {
		case "unit":
			if rec.Unit != nil {
				j.units[rec.Key] = *rec.Unit
			}
		default:
			if rec.Cost != nil {
				j.done[rec.Key] = *rec.Cost
			}
		}
		if err == io.EOF {
			// Final line had no newline but parsed whole; count it without
			// the separator. (Writes always append one, so this only
			// happens for hand-edited journals.)
			good--
			break
		}
	}
	// Truncate the torn tail away so this run's records follow the last
	// whole one — a later resume must never find garbage mid-file and
	// drop the records behind it.
	if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: checkpoint: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("bench: checkpoint: %w", err)
	}
	j.good = good
	return j, nil
}

// readBoundedLine reads one newline-terminated line of at most
// maxRecordLine bytes. io.EOF with a non-empty line means a final
// unterminated line; any other error means the line was oversized or
// the read failed.
func readBoundedLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if err == bufio.ErrBufferFull {
			if len(line) > maxRecordLine {
				return nil, fmt.Errorf("bench: checkpoint: record exceeds %d bytes", maxRecordLine)
			}
			continue
		}
		if err != nil {
			return line, err
		}
		if len(line) > maxRecordLine {
			return nil, fmt.Errorf("bench: checkpoint: record exceeds %d bytes", maxRecordLine)
		}
		return bytes.TrimSuffix(line, []byte("\n")), nil
	}
}

// syncDir fsyncs the directory containing path, making a just-created
// or just-truncated file durable in its parent.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("bench: checkpoint: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// Some filesystems refuse directory fsync; the per-record file
		// fsync still holds, so degrade rather than fail the run.
		return nil
	}
	return nil
}

// Len reports how many completed run-summary records the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Units reports how many completed unit records the journal holds.
func (j *Journal) Units() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.units)
}

// Key digests a run description into a journal key, appending the
// per-description occurrence index: experiments that run the identical
// configuration more than once (ablation sweeps) get distinct keys in
// execution order, which is deterministic because experiments issue runs
// sequentially.
func (j *Journal) Key(desc string) (key, fullDesc string) {
	j.mu.Lock()
	occ := j.seen[desc]
	j.seen[desc]++
	j.mu.Unlock()
	fullDesc = fmt.Sprintf("%s #%d", desc, occ)
	h := fnv.New32a()
	h.Write([]byte(fullDesc))
	return fmt.Sprintf("%08x", h.Sum32()), fullDesc
}

// unitKey derives the journal key of one candidate's record within a
// run: the run digest plus the candidate's input index, which is stable
// under worker count because enumeration order is.
func unitKey(runKey string, idx int) string {
	return fmt.Sprintf("%s:u%d", runKey, idx)
}

// Lookup returns the recorded cost for key, if a previous run completed
// it.
func (j *Journal) Lookup(key string) (Cost, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	c, ok := j.done[key]
	return c, ok
}

// LookupUnit returns the recorded unit verdict for (runKey, idx), if a
// previous run completed that candidate.
func (j *Journal) LookupUnit(runKey string, idx int) (unitRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	u, ok := j.units[unitKey(runKey, idx)]
	return u, ok
}

// Record appends one completed run summary and fsyncs before returning:
// after Record, the run survives any crash. The persisted failure list
// is capped at maxRecordedFailures entries (the count is preserved).
func (j *Journal) Record(key, desc string, c Cost) error {
	if len(c.Failures) > maxRecordedFailures {
		c.Failures = c.Failures[:maxRecordedFailures]
	}
	return j.append(journalRecord{Key: key, Desc: desc, Cost: &c},
		func() { j.done[key] = c })
}

// RecordUnit appends one candidate's completed verdict and fsyncs
// before returning.
func (j *Journal) RecordUnit(runKey string, idx int, v engines.Verdict) error {
	u := unitRecordOf(idx, v)
	return j.append(journalRecord{Key: unitKey(runKey, idx), Kind: "unit", Unit: &u},
		func() { j.units[unitKey(runKey, idx)] = u })
}

// append writes one record under the journal's durability discipline:
// marshal, write, fsync, and only then publish to the in-memory maps.
// Any failure rolls the file back to the last durable offset, so a
// record the disk may not hold is never replayed — a resume re-runs it.
func (j *Journal) append(rec journalRecord, publish func()) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("bench: checkpoint: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	rollback := func(err error) error {
		_ = j.f.Truncate(j.good)
		_, _ = j.f.Seek(j.good, 0)
		return fmt.Errorf("bench: checkpoint: %w", err)
	}
	if _, err := j.f.Write(line); err != nil {
		return rollback(err)
	}
	if faultinject.Armed("journal.sync", rec.Key) {
		return rollback(fmt.Errorf("injected fault journal.sync at %q", rec.Key))
	}
	if err := j.f.Sync(); err != nil {
		return rollback(err)
	}
	j.good += int64(len(line))
	publish()
	return nil
}

// Close closes the journal file. Recorded state stays on disk.
func (j *Journal) Close() error { return j.f.Close() }

// engineFingerprint renders the verdict-relevant configuration of an
// engine. Worker counts and supervision settings are excluded: they may
// only change cost. Unknown engine types fall back to their name, which
// is correct as long as they carry no ablation knobs.
func engineFingerprint(eng engines.Engine) string {
	switch x := eng.(type) {
	case *engines.Fusion:
		return fmt.Sprintf("fusion absint=%t intervals=%t nostride=%t nosimplify=%t nosession=%t timeout=%s conflicts=%d budget=%d/%d/%s/%d",
			x.UseAbsint, x.IntervalsOnly, x.NoStride, x.NoSimplify, x.NoSession,
			x.Cfg.Timeout, x.Cfg.MaxConflicts,
			x.Cfg.Budget.Steps, x.Cfg.Budget.Conflicts, x.Cfg.Budget.Deadline, x.Cfg.Budget.MaxHeapDelta)
	case *engines.Pinpoint:
		return fmt.Sprintf("%s nosession=%t timeout=%s conflicts=%d qe=%d budget=%d/%d/%s/%d",
			x.Name(), x.NoSession, x.Cfg.Timeout, x.Cfg.MaxConflicts, x.QEBudget,
			x.Cfg.Budget.Steps, x.Cfg.Budget.Conflicts, x.Cfg.Budget.Deadline, x.Cfg.Budget.MaxHeapDelta)
	case *engines.Infer:
		return fmt.Sprintf("infer depth=%d specbudget=%d", x.MaxSummaryDepth, x.SpecBudget)
	default:
		return eng.Name()
	}
}

// runDesc renders the full readable run description the journal keys
// digest.
func (o Options) runDesc(sub *Subject, spec *sparse.Spec, eng engines.Engine, budget Budget) string {
	return fmt.Sprintf("%s | %s | %s | scale=%g | budget=%s/%d | %s",
		o.Experiment, sub.Info.Name, spec.Name, o.scale(),
		budget.Time, budget.CondBytes, engineFingerprint(eng))
}
