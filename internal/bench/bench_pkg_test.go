package bench

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/progen"
	"fusion/internal/sparse"
)

// tinyOpts keeps experiment tests fast.
var tinyOpts = Options{
	Scale:    0.01,
	Subjects: progen.Subjects[:3],
	Budget:   Budget{Time: 2 * time.Minute, CondBytes: 1 << 30},
}

func TestCompile(t *testing.T) {
	sub, err := Compile(context.Background(), progen.Subjects[0], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Stats.Vertices == 0 || sub.GenLines == 0 {
		t.Error("empty compiled subject")
	}
}

func TestRunScoresGroundTruth(t *testing.T) {
	sub, err := Compile(context.Background(), progen.Subjects[1], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	c := Run(context.Background(), sub, checker.NullDeref(), engines.NewFusion(), Budget{Time: time.Minute, CondBytes: 1 << 30})
	if c.Failed {
		t.Fatalf("fusion run failed: %s", c.FailNote)
	}
	want := len(sub.GT.ByChecker("null-deref"))
	if want == 0 {
		t.Fatal("subject has no injected null bugs")
	}
	if c.TP == 0 {
		t.Error("no true positives scored")
	}
	if c.FP != 0 {
		t.Errorf("fusion reported %d infeasible injected bugs", c.FP)
	}
}

func TestTableFormatter(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "333") {
		t.Errorf("bad rendering:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestTable1Monotone(t *testing.T) {
	r2, err := Table1Measure(context.Background(), 2, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Table1Measure(context.Background(), 8, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Conventional condition size grows with k; the fused slice does not
	// grow proportionally (it is O(n+m)).
	if r8.ConvCondTreeSize <= r2.ConvCondTreeSize {
		t.Errorf("conventional size must grow with k: k=2 %d, k=8 %d",
			r2.ConvCondTreeSize, r8.ConvCondTreeSize)
	}
	growth := float64(r8.FusionSliceSize) / float64(r2.FusionSliceSize)
	if growth > 2 {
		t.Errorf("fused slice grew %.1fx from k=2 to k=8; should stay near O(n+m)", growth)
	}
	if r8.FusionClones > r2.FusionClones+8 {
		t.Errorf("fusion clones grew with k: %d -> %d", r2.FusionClones, r8.FusionClones)
	}
}

func TestExperimentDriversRun(t *testing.T) {
	for _, name := range []string{"table2", "table1", "ablations"} {
		fn := Experiments[name]
		if fn == nil {
			t.Fatalf("missing experiment %s", name)
		}
		opts := tinyOpts
		if name == "ablations" {
			opts.Subjects = progen.Subjects[:1]
		}
		out, err := fn(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestTable3SmallSubjects(t *testing.T) {
	out, err := Table3(context.Background(), Options{Scale: 0.05, Subjects: progen.Subjects[:2],
		Budget: Budget{Time: 2 * time.Minute, CondBytes: 1 << 30}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mcf") || !strings.Contains(out, "bzip2") {
		t.Errorf("missing subjects:\n%s", out)
	}
}

func TestFig11SmallSubjects(t *testing.T) {
	out, err := Fig11(context.Background(), Options{Scale: 0.05, Subjects: progen.Subjects[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SMT instances") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestExperimentNamesComplete(t *testing.T) {
	for _, n := range ExperimentNames {
		if Experiments[n] == nil {
			t.Errorf("experiment %s listed but not registered", n)
		}
	}
	if len(ExperimentNames) != len(Experiments) {
		t.Errorf("name list (%d) and registry (%d) out of sync",
			len(ExperimentNames), len(Experiments))
	}
}

func TestLargeSubjectDriversRunSmall(t *testing.T) {
	// The large-subject experiments accept a subject override; run them on
	// tiny subjects to exercise the drivers.
	opts := Options{Scale: 0.02, Subjects: progen.Subjects[:2],
		Budget: Budget{Time: 2 * time.Minute, CondBytes: 1 << 30}}
	for _, name := range []string{"fig1c", "table5", "cwe369", "table4"} {
		out, err := Experiments[name](context.Background(), opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out, "mcf") {
			t.Errorf("%s: missing subject in output:\n%s", name, out)
		}
	}
}

func TestDumpSMT2(t *testing.T) {
	dir := t.TempDir()
	n, err := DumpSMT2(context.Background(), Options{Scale: 0.05, Subjects: progen.Subjects[:1]}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no instances dumped")
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != n {
		t.Fatalf("expected %d files, got %d (%v)", n, len(entries), err)
	}
	data, err := os.ReadFile(dir + "/" + entries[0].Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "(check-sat)") {
		t.Error("missing check-sat in dumped instance")
	}
}

// TestAblationAbsintSoundAndEffective is the acceptance check for the
// interval tier on the four industrial-sized subjects: with the tier on,
// the report set (and its scoring) is identical, the tier decides a
// nonzero number of queries, and strictly fewer candidates reach the
// bit-precise solver.
func TestAblationAbsintSoundAndEffective(t *testing.T) {
	budget := Budget{Time: 2 * time.Minute, CondBytes: 1 << 30}
	for _, name := range []string{"ffmpeg", "v8", "mysql", "wine"} {
		info, err := progen.SubjectByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := Compile(context.Background(), info, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []*sparse.Spec{checker.DivByZero(), checker.IndexOOB()} {
			off := Run(context.Background(), sub, spec, engines.NewFusion(), budget)
			on := engines.NewFusion()
			on.UseAbsint = true
			onc := Run(context.Background(), sub, spec, on, budget)
			if off.Failed || onc.Failed {
				t.Fatalf("%s/%s: run failed: %s%s", name, spec.Name, off.FailNote, onc.FailNote)
			}
			if onc.Reports != off.Reports || onc.TP != off.TP || onc.FP != off.FP {
				t.Errorf("%s/%s: reports differ: off %d (TP %d, FP %d), on %d (TP %d, FP %d)",
					name, spec.Name, off.Reports, off.TP, off.FP, onc.Reports, onc.TP, onc.FP)
			}
			if onc.AbsintDecided+onc.AbsintPruned == 0 {
				t.Errorf("%s/%s: interval tier never fired", name, spec.Name)
			}
			if onc.SolverCalls >= off.SolverCalls {
				t.Errorf("%s/%s: solver calls not reduced: off %d, on %d",
					name, spec.Name, off.SolverCalls, onc.SolverCalls)
			}
			if off.AbsintDecided != 0 || off.AbsintPruned != 0 {
				t.Errorf("%s/%s: tier fired while disabled", name, spec.Name)
			}
		}
	}
}

// TestSimplifiedCountersDeterministic checks that the pre-simplification
// statistics (and the verdict counts they ride with) are identical across
// worker counts: summaries are built in deterministic topological order
// per query, so parallel runs must be byte-for-byte reproducible.
func TestSimplifiedCountersDeterministic(t *testing.T) {
	sub, err := Compile(context.Background(), progen.Subjects[1], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Cost {
		eng := engines.NewFusion()
		eng.UseAbsint = true
		return RunWorkers(context.Background(), sub, checker.DivByZero(), eng,
			Budget{Time: time.Minute, CondBytes: 1 << 30}, workers)
	}
	c1, c8 := run(1), run(8)
	if c1.Simplified == 0 {
		t.Fatal("subject produced no folded vertices; the determinism check is vacuous")
	}
	if c1.Simplified != c8.Simplified || c1.PrunedGuards != c8.PrunedGuards {
		t.Errorf("simplification counters differ across workers: 1 -> (%d, %d), 8 -> (%d, %d)",
			c1.Simplified, c1.PrunedGuards, c8.Simplified, c8.PrunedGuards)
	}
	if c1.Reports != c8.Reports || c1.AbsintDecided != c8.AbsintDecided {
		t.Errorf("verdicts differ across workers: 1 -> (%d, %d), 8 -> (%d, %d)",
			c1.Reports, c1.AbsintDecided, c8.Reports, c8.AbsintDecided)
	}
}

// TestNoSimplifyAblationAgrees checks the nosimplify ablation changes only
// the cost counters, never a verdict: same reports, same refutations, zero
// folds.
func TestNoSimplifyAblationAgrees(t *testing.T) {
	sub, err := Compile(context.Background(), progen.Subjects[1], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	run := func(noSimplify bool) Cost {
		eng := engines.NewFusion()
		eng.UseAbsint = true
		eng.NoSimplify = noSimplify
		return Run(context.Background(), sub, checker.DivByZero(), eng,
			Budget{Time: time.Minute, CondBytes: 1 << 30})
	}
	on, off := run(false), run(true)
	if off.Simplified != 0 || off.PrunedGuards != 0 {
		t.Errorf("nosimplify still folded: (%d, %d)", off.Simplified, off.PrunedGuards)
	}
	if on.Simplified == 0 {
		t.Error("default mode folded nothing on a subject with a bit-level query")
	}
	if on.Reports != off.Reports || on.TP != off.TP || on.FP != off.FP ||
		on.Unknown != off.Unknown || on.AbsintDecided != off.AbsintDecided {
		t.Errorf("ablation changed verdicts: on=%+v off=%+v", on, off)
	}
}
