// Package bench is the experiment harness: it compiles synthetic subjects,
// runs the analysis engines over them, and regenerates every table and
// figure of the paper's evaluation (§5) in textual form. Each experiment
// has a driver function named after the table or figure it reproduces; see
// EXPERIMENTS.md for the mapping and DESIGN.md for the substitutions.
package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/failure"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// Subject is a compiled benchmark subject ready for analysis.
type Subject struct {
	Info     progen.Subject
	Graph    *pdg.Graph
	GT       progen.GroundTruth
	Stats    pdg.Stats
	GenLines int
}

// Compile generates and compiles a subject at the given scale on the
// shared driver pipeline (progen sources carry their own extern
// declarations, so no prelude).
func Compile(ctx context.Context, info progen.Subject, scale float64) (*Subject, error) {
	src, gt, lines := info.Build(scale)
	p, err := driver.Compile(ctx, driver.Source{Name: info.Name, Text: src}, driver.Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return &Subject{
		Info: info, Graph: p.Graph, GT: gt,
		Stats: p.Stats, GenLines: lines,
	}, nil
}

// CompileAll compiles a set of subjects on a worker pool, preserving
// input order.
func CompileAll(ctx context.Context, subs []progen.Subject, scale float64, workers int) ([]*Subject, error) {
	type result struct {
		sub *Subject
		err error
	}
	rs, fails := driver.ParallelCheck(ctx, len(subs), workers, func(i int) result {
		s, err := Compile(ctx, subs[i], scale)
		return result{s, err}
	})
	out := make([]*Subject, len(rs))
	for i, r := range rs {
		if f := fails[i]; f != nil {
			// Compile contains its own panics; this only fires for a crash
			// outside it. Name the subject instead of the slot.
			f.Unit = subs[i].Name
			return nil, f
		}
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.sub
	}
	return out, nil
}

// Cost summarizes one engine's run over one subject and spec.
type Cost struct {
	Engine   string
	Subject  string
	Checker  string
	Time     time.Duration
	CondMB   float64 // retained condition/summary memory
	HeapMB   float64 // process heap after the run
	Reports  int     // feasible verdicts
	TP, FP   int     // against ground truth (when it covers the checker)
	Unknown  int
	Failed   bool   // exceeded Budget
	FailNote string // why
	// AbsintDecided counts queries refuted by the abstract tiers before
	// any formula was built; AbsintStride counts the subset the congruence
	// (stride) product decided without the zone tier; AbsintZone counts
	// the subset that needed the zone relational tier; AbsintPruned counts
	// candidates the enumeration oracle discarded; SolverCalls counts
	// candidates that reached the bit-precise solver.
	AbsintDecided int
	AbsintStride  int
	AbsintZone    int
	AbsintPruned  int
	SolverCalls   int
	// Simplified totals the vertices the absint-guided pre-simplification
	// folded into local conditions across all checked candidates;
	// PrunedGuards is the subset that were branch conditions.
	Simplified   int
	PrunedGuards int
	// Degraded counts verdicts whose bit-precise tier exhausted its
	// budget; DegradedUnsat is the subset the fallback ladder still
	// refuted (at the relational or interval tier). Degraded tiers are
	// scored separately so precision comparisons stay honest about where
	// each answer came from.
	Degraded      int
	DegradedUnsat int
	// UnitFailures counts contained crashes (enumeration and checking);
	// Failures carries their details in report order.
	UnitFailures int
	Failures     []*failure.UnitFailure
	// Retried counts candidates that needed more than one attempt of the
	// retry ladder; Recovered is the subset whose final attempt produced
	// a clean verdict (no failure, not abandoned); Abandoned counts
	// candidates the watchdog hard-abandoned on their final attempt. All
	// zero when no fault fires, whatever -retries is set to.
	Retried   int
	Recovered int
	Abandoned int
	// CacheHits totals the term encodings candidate solves reused from
	// their warm sessions; ReusedClauses totals the learned clauses they
	// inherited; CacheVars is the largest retained SAT variable map any
	// solve saw. All zero under -session=off. These depend on how
	// candidates were batched onto workers, so they are reported in
	// sequential contexts (ablation tables) and never folded into
	// verdict-derived columns.
	CacheHits     int64
	ReusedClauses int64
	CacheVars     int
}

// Budget bounds one engine run, mirroring the paper's 12-hour/100GB limit
// scaled down.
type Budget struct {
	Time time.Duration
	// CondBytes bounds retained condition memory.
	CondBytes int64
}

// DefaultBudget is generous enough for the honest engines and small enough
// to catch the blow-ups.
var DefaultBudget = Budget{Time: 10 * time.Minute, CondBytes: 2 << 30}

// Run executes one engine over one subject with one checker and scores the
// result against ground truth. The budget is enforced by cooperative
// cancellation: candidate enumeration and checking run under a context
// that expires at Budget.Time (both inside the timed region, so Cost.Time
// includes enumeration), and a timed-out run returns promptly with the
// partial Unknown verdicts still scored — no goroutine keeps checking
// after Run returns. Workers parallelizes enumeration and checking; the
// verdicts are deterministic regardless of the worker count.
func Run(ctx context.Context, sub *Subject, spec *sparse.Spec, eng engines.Engine, budget Budget) Cost {
	return RunWorkers(ctx, sub, spec, eng, budget, 1)
}

// RunWorkers is Run with a worker count for enumeration and checking.
func RunWorkers(ctx context.Context, sub *Subject, spec *sparse.Spec, eng engines.Engine, budget Budget, workers int) Cost {
	return runWorkers(ctx, sub, spec, eng, budget, workers, nil, "")
}

// runWorkers is RunWorkers with an optional unit-granularity journal:
// when j is non-nil, candidates a previous (crashed) process already
// checked under runKey are replayed from their records, and each fresh
// verdict is checkpointed as it settles — so a crash mid-subject
// resumes at the first unchecked candidate.
func runWorkers(ctx context.Context, sub *Subject, spec *sparse.Spec, eng engines.Engine, budget Budget, workers int, j *Journal, runKey string) Cost {
	if budget.Time == 0 {
		budget = DefaultBudget
	}
	cost := Cost{Engine: eng.Name(), Subject: sub.Info.Name, Checker: spec.Name}
	engines.SetParallel(eng, workers)

	start := time.Now()
	rctx, cancel := context.WithTimeout(ctx, budget.Time)
	defer cancel()

	senge := sparse.NewEngine(sub.Graph)
	senge.Workers = workers
	// An absint-enabled fusion engine also prunes during enumeration; the
	// tier build is part of the engine's timed work.
	if f, ok := eng.(*engines.Fusion); ok {
		if an := f.Absint(sub.Graph); an != nil {
			senge.Oracle = func(c sparse.Candidate) bool {
				return an.PrunePath(c.Path, c.Constraints(0)...)
			}
		}
	}
	cands := senge.RunContext(rctx, spec)
	cost.AbsintPruned = senge.Pruned
	cost.Failures = append(cost.Failures, senge.Failures...)

	var verdicts []engines.Verdict
	if j != nil && runKey != "" {
		verdicts = checkJournaled(rctx, sub, eng, cands, j, runKey)
	} else {
		verdicts = eng.Check(rctx, sub.Graph, cands)
	}
	cost.Time = time.Since(start)
	cost.CondMB = mb(eng.ConditionBytes())
	if rctx.Err() != nil && ctx.Err() == nil {
		cost.Failed = true
		cost.FailNote = "time out"
	}
	// Compare retained memory, not whatever garbage the last run left
	// behind.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	cost.HeapMB = mb(int64(ms.HeapAlloc))
	if eng.ConditionBytes() > budget.CondBytes {
		cost.Failed = true
		cost.FailNote = "memory out"
	}

	reportedLines := map[int]bool{}
	for _, v := range verdicts {
		switch v.Status {
		case sat.Sat:
			cost.Reports++
			reportedLines[v.Cand.Sink.Pos.Line] = true
		case sat.Unknown:
			cost.Unknown++
		}
		if v.Degraded {
			cost.Degraded++
			if v.Status == sat.Unsat {
				cost.DegradedUnsat++
			}
		}
		if v.Failure != nil {
			cost.Failures = append(cost.Failures, v.Failure)
		}
		if v.Attempts > 1 {
			cost.Retried++
			if v.Failure == nil && !v.Abandoned {
				cost.Recovered++
			}
		}
		if v.Abandoned {
			cost.Abandoned++
		}
		cost.Simplified += v.Simplified
		cost.PrunedGuards += v.PrunedGuards
		cost.CacheHits += v.CacheHits
		cost.ReusedClauses += v.ReusedClauses
		if v.CacheVars > cost.CacheVars {
			cost.CacheVars = v.CacheVars
		}
		if v.DecidedByAbsint {
			cost.AbsintDecided++
			if v.DecidedByStride {
				cost.AbsintStride++
			}
			if v.DecidedByZone {
				cost.AbsintZone++
			}
		} else {
			cost.SolverCalls++
		}
	}
	cost.UnitFailures = len(cost.Failures)
	for _, b := range sub.GT.ByChecker(spec.Name) {
		if reportedLines[b.SinkLine] {
			if b.Feasible {
				cost.TP++
			} else {
				cost.FP++
			}
		}
	}
	return cost
}

// checkJournaled is the unit-granularity resume path around
// Engine.Check: candidates whose records a previous process fsync'd are
// replayed (the record's unit label must match the candidate's — a
// mismatch means the key collided or enumeration changed, and the
// candidate is re-run); the rest are checked for real, with each final
// verdict journaled as it settles. Verdicts produced after the run
// context expired are partial cancellation results and are never
// recorded. Engines without a verdict observer (wrappers) simply skip
// unit records — the whole-run summary record still lands.
func checkJournaled(rctx context.Context, sub *Subject, eng engines.Engine, cands []sparse.Candidate, j *Journal, runKey string) []engines.Verdict {
	verdicts := make([]engines.Verdict, len(cands))
	todo := make([]sparse.Candidate, 0, len(cands))
	todoIdx := make([]int, 0, len(cands))
	for i, c := range cands {
		if u, ok := j.LookupUnit(runKey, i); ok && u.Unit == engines.UnitLabel(c) {
			verdicts[i] = u.verdict(c)
			continue
		}
		todo = append(todo, c)
		todoIdx = append(todoIdx, i)
	}
	installed := engines.SetOnVerdict(eng, func(ti int, v engines.Verdict) {
		if rctx.Err() != nil {
			return
		}
		// Best-effort, like the summary record: a full disk must not kill
		// the run it checkpoints.
		_ = j.RecordUnit(runKey, todoIdx[ti], v)
	})
	vs := eng.Check(rctx, sub.Graph, todo)
	if installed {
		engines.SetOnVerdict(eng, nil)
	}
	for ti, v := range vs {
		verdicts[todoIdx[ti]] = v
	}
	return verdicts
}

func mb(n int64) float64 { return float64(n) / (1 << 20) }

// Table is a minimal text-table formatter.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

func fd(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

func fmb(v float64) string {
	return fmt.Sprintf("%.2fMB", v)
}

func speedup(base, ours float64) string {
	if ours <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", base/ours)
}
