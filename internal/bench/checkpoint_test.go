package bench

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/progen"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c1 := Cost{Engine: "fusion", Subject: "mcf", Time: 1234 * time.Millisecond, Reports: 3, Unknown: 1}
	c2 := Cost{Engine: "fusion", Subject: "bzip2", Time: 17 * time.Millisecond, Degraded: 2}
	k1, d1 := j.Key("run one")
	k2, d2 := j.Key("run two")
	if k1 == k2 {
		t.Fatal("distinct descriptions share a key")
	}
	if err := j.Record(k1, d1, c1); err != nil {
		t.Fatal(err)
	}
	if err := j.Record(k2, d2, c2); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reloaded %d records, want 2", j2.Len())
	}
	got, ok := j2.Lookup(k1)
	if !ok || !reflect.DeepEqual(got, c1) {
		t.Errorf("replayed cost differs: %+v vs %+v", got, c1)
	}
	// A resumed process issues the same key sequence: occurrence counters
	// restart with the process, not with the file.
	if rk, _ := j2.Key("run one"); rk != k1 {
		t.Errorf("resumed key %s != original %s", rk, k1)
	}
}

// TestJournalOccurrenceCounter: the same run description keyed twice in
// one process gets distinct keys in issue order (ablation sweeps re-run
// identical configurations), and a resumed process reproduces the same
// sequence.
func TestJournalOccurrenceCounter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	ka, da := j.Key("same desc")
	kb, db := j.Key("same desc")
	if ka == kb || da == db {
		t.Fatalf("repeated description must get fresh keys: %s/%s", ka, kb)
	}
}

// TestJournalTornTailDropped: a record torn by a mid-write crash is
// dropped on load — and truncated away, so records appended by the
// resumed run land after the last whole one.
func TestJournalTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, d1 := j.Key("one")
	if err := j.Record(k1, d1, Cost{Reports: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"deadbeef","desc":"torn`) // no closing quote, no newline
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 1 {
		t.Fatalf("torn journal loaded %d records, want 1", j2.Len())
	}
	if _, ok := j2.Lookup("deadbeef"); ok {
		t.Error("torn record survived")
	}
	k2, d2 := j2.Key("two")
	if err := j2.Record(k2, d2, Cost{Reports: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("after resume past a torn tail: %d records, want 2", j3.Len())
	}
}

// TestRunBudgetReplaysFromJournal: the second process replays a run the
// first completed — same Cost, recorded wall time included, so resumed
// table rows render byte-identical — without re-running the engine.
func TestRunBudgetReplaysFromJournal(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	budget := Budget{Time: 2 * time.Minute, CondBytes: 1 << 30}

	runOnce := func() Cost {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		o := Options{Scale: 0.02, Budget: budget, Journal: j, Experiment: "test"}
		return o.run(ctx, sub, checker.NullDeref(), engines.NewFusion())
	}
	live := runOnce()
	start := time.Now()
	replayed := runOnce()
	replayTook := time.Since(start)

	if !reflect.DeepEqual(live, replayed) {
		t.Errorf("replayed cost differs from live:\n%+v\nvs\n%+v", replayed, live)
	}
	if live.Time > 0 && replayTook > live.Time/2 && replayTook > 5*time.Second {
		t.Errorf("replay took %v against a live run of %v: did it re-solve?", replayTook, live.Time)
	}
}

// TestRunBudgetNeverRecordsCancelledRuns: a run cut short by
// cancellation must not checkpoint its partial Unknown verdicts as the
// real result.
func TestRunBudgetNeverRecordsCancelledRuns(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := Compile(context.Background(), progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // already cancelled before the run starts
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Scale: 0.02, Budget: Budget{Time: time.Minute, CondBytes: 1 << 30},
		Journal: j, Experiment: "test"}
	o.run(ctx, sub, checker.NullDeref(), engines.NewFusion())
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 0 {
		t.Errorf("cancelled run checkpointed %d record(s)", j2.Len())
	}
}
