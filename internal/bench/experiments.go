package bench

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/cond"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
	"fusion/internal/telemetry"
)

// Options configure an experiment run.
type Options struct {
	// Scale shrinks the paper's subject sizes; see DESIGN.md. The default
	// used by cmd/fusionbench is 0.002.
	Scale float64
	// Subjects restricts the run; nil means the experiment's default set.
	Subjects []progen.Subject
	// Budget bounds each engine run.
	Budget Budget
	// Workers is the worker count for subject compilation, candidate
	// enumeration, and engine checking (the paper runs its analyses with
	// fifteen threads); 0 or 1 means sequential. Output is deterministic
	// regardless of the worker count.
	Workers int
	// Absint enables the abstract-interpretation tier in every fused
	// engine the experiments construct.
	Absint bool
	// IntervalsOnly restricts the tier to the interval domain, disabling
	// the zone relational domain — the `-absint=intervals` ablation.
	IntervalsOnly bool
	// NoStride disables the congruence (stride) domain while keeping the
	// zone tier — the `-absint=nostride` ablation.
	NoStride bool
	// NoSimplify keeps every domain but disables the absint-guided
	// pre-simplification of local conditions — the `-absint=nosimplify`
	// ablation.
	NoSimplify bool
	// NoSession disables the warm incremental solver sessions in every
	// engine the experiments construct: each query then builds a fresh
	// solver and blaster (the one-shot oracle) — the `-session=off`
	// ablation.
	NoSession bool
	// OnCost observes every scored engine run, in completion order. The
	// command-line harness uses it to tally contained unit failures and
	// degraded verdicts for its exit status. Replayed journal records are
	// observed too, so exit-status accounting survives a resume.
	OnCost func(Cost)
	// Retries is the retry-ladder height for every engine the experiments
	// construct; WatchdogGrace arms the per-worker watchdog. Neither may
	// change verdicts when no fault fires (a clean first attempt never
	// re-runs), so neither enters checkpoint keys.
	Retries       int
	WatchdogGrace time.Duration
	// Journal, when non-nil, checkpoints every scored engine run at two
	// granularities: each candidate's verdict as it settles (kind "unit")
	// and the whole run's summary when it completes. Completed records
	// are replayed instead of re-run, so a crash mid-subject resumes at
	// the first unchecked candidate. Experiment names the experiment
	// currently running, scoping the journal keys.
	Journal    *Journal
	Experiment string
	// Telemetry, when non-nil, records compile-stage spans, solve spans,
	// and counters for every run the experiment issues (the -metrics and
	// -trace artifacts).
	Telemetry *telemetry.Recorder
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.002
	}
	return o.Scale
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) fusion() *engines.Fusion {
	e := engines.NewFusion()
	e.Parallel = o.workers()
	e.UseAbsint = o.Absint
	e.IntervalsOnly = o.IntervalsOnly
	e.NoStride = o.NoStride
	e.NoSimplify = o.NoSimplify
	e.NoSession = o.NoSession
	e.Cfg.Retries, e.Cfg.WatchdogGrace = o.Retries, o.WatchdogGrace
	return e
}

func (o Options) pinpoint(v engines.Variant) *engines.Pinpoint {
	e := engines.NewPinpoint(v)
	e.NoSession = o.NoSession
	e.Cfg.Retries, e.Cfg.WatchdogGrace = o.Retries, o.WatchdogGrace
	return e
}

func (o Options) subjects(def []progen.Subject) []progen.Subject {
	if len(o.Subjects) > 0 {
		return o.Subjects
	}
	return def
}

// compileAll compiles the experiment's subject set once, on the options'
// worker pool. With telemetry enabled, each compile's stage spans land
// on its worker's trace track.
func (o Options) compileAll(ctx context.Context, infos []progen.Subject) ([]*Subject, error) {
	if o.Telemetry == nil {
		return CompileAll(ctx, infos, o.scale(), o.workers())
	}
	type result struct {
		sub *Subject
		err error
	}
	rs, fails := driver.ParallelCheckWorkers(ctx, len(infos), o.workers(), func(i, w int) result {
		src, gt, lines := infos[i].Build(o.scale())
		p, err := driver.Compile(ctx, driver.Source{Name: infos[i].Name, Text: src},
			driver.Options{Telemetry: o.Telemetry, TelemetryTrack: w + 1})
		if err != nil {
			return result{nil, fmt.Errorf("bench: %w", err)}
		}
		return result{&Subject{
			Info: infos[i], Graph: p.Graph, GT: gt,
			Stats: p.Stats, GenLines: lines,
		}, nil}
	})
	out := make([]*Subject, len(rs))
	for i, r := range rs {
		if f := fails[i]; f != nil {
			f.Unit = infos[i].Name
			return nil, f
		}
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.sub
	}
	return out, nil
}

// run executes one engine run with the options' workers.
func (o Options) run(ctx context.Context, sub *Subject, spec *sparse.Spec, eng engines.Engine) Cost {
	return o.runBudget(ctx, sub, spec, eng, o.Budget)
}

// runBudget is run with an explicit budget override (some experiments
// tighten the per-variant budget below o.Budget). With a journal, a run
// a previous (crashed) process completed is replayed from its record —
// including its recorded times, so replayed table rows are byte-identical
// to the original's — and a freshly completed run is checkpointed before
// the next one starts. A run cut short by cancellation is never recorded:
// its partial Unknown verdicts must not masquerade as the real result on
// resume.
func (o Options) runBudget(ctx context.Context, sub *Subject, spec *sparse.Spec, eng engines.Engine, budget Budget) Cost {
	if o.Telemetry != nil {
		engines.SetTelemetry(eng, o.Telemetry)
	}
	var key, desc string
	if o.Journal != nil {
		// Key occurrence counters advance on replay and live runs alike,
		// keeping the key sequence identical between a fresh run and a
		// resumed one.
		key, desc = o.Journal.Key(o.runDesc(sub, spec, eng, budget))
		if c, ok := o.Journal.Lookup(key); ok {
			if o.OnCost != nil {
				o.OnCost(c)
			}
			return c
		}
	}
	c := runWorkers(ctx, sub, spec, eng, budget, o.workers(), o.Journal, key)
	if o.Journal != nil && ctx.Err() == nil {
		// Best-effort: a full disk must not kill the run it checkpoints.
		_ = o.Journal.Record(key, desc, c)
	}
	if o.OnCost != nil {
		o.OnCost(c)
	}
	return c
}

// Table2 reports the subject inventory: generated size and dependence
// graph statistics, the reproduction of the paper's Table 2.
func Table2(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table 2: subjects (scale %.4g of the paper's sizes)", opts.scale()),
		Header: []string{"ID", "Program", "Lines", "#Functions", "#Vertices", "#Edges"},
	}
	subs, err := opts.compileAll(ctx, opts.subjects(progen.Subjects))
	if err != nil {
		return "", err
	}
	for _, sub := range subs {
		t.AddRow(
			fmt.Sprintf("%d", sub.Info.ID), sub.Info.Name,
			fmt.Sprintf("%d", sub.GenLines),
			fmt.Sprintf("%d", sub.Stats.Functions),
			fmt.Sprintf("%d", sub.Stats.Vertices),
			fmt.Sprintf("%d", sub.Stats.Edges()),
		)
	}
	return t.String(), nil
}

// Table3 compares Fusion to the conventional engine on null-exception
// checking across all subjects: time and retained condition memory, with
// speedup columns — the paper's Table 3.
func Table3(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title: "Table 3: Fusion vs Pinpoint (null exceptions)",
		Header: []string{"ID", "Program", "Fusion-Mem", "Pinpoint-Mem", "Mem-Ratio",
			"Fusion-Time", "Pinpoint-Time", "Speedup"},
	}
	spec := checker.NullDeref()
	subs, err := opts.compileAll(ctx, opts.subjects(progen.Subjects))
	if err != nil {
		return "", err
	}
	for _, sub := range subs {
		fc := opts.run(ctx, sub, spec, opts.fusion())
		pc := opts.run(ctx, sub, spec, opts.pinpoint(engines.Plain))
		t.AddRow(
			fmt.Sprintf("%d", sub.Info.ID), sub.Info.Name,
			fmb(fc.CondMB), fmb(pc.CondMB),
			speedup(pc.CondMB, fc.CondMB),
			fd(fc.Time), fd(pc.Time),
			speedup(pc.Time.Seconds(), fc.Time.Seconds()),
		)
	}
	return t.String(), nil
}

// Fig10 compares Fusion to Pinpoint and its formula-simplification
// variants across subjects (time and memory series), and reports the QE
// and AR variants' fates on the smallest subjects — the paper's Figure 10
// plus the §5.1 discussion.
func Fig10(ctx context.Context, opts Options) (string, error) {
	var b strings.Builder
	spec := checker.NullDeref()
	t := &Table{
		Title:  "Figure 10: time/memory per engine",
		Header: []string{"ID", "Program", "Engine", "Time", "Cond-Mem", "Status"},
	}
	variantBudget := opts.Budget
	if variantBudget.Time == 0 {
		variantBudget = Budget{Time: 30 * time.Second, CondBytes: 512 << 20}
	}
	subs, err := opts.compileAll(ctx, opts.subjects(progen.Subjects))
	if err != nil {
		return "", err
	}
	for _, sub := range subs {
		runs := []engines.Engine{
			opts.fusion(),
			opts.pinpoint(engines.Plain),
			opts.pinpoint(engines.LFS),
			opts.pinpoint(engines.HFS),
		}
		for _, eng := range runs {
			c := opts.runBudget(ctx, sub, spec, eng, variantBudget)
			status := "ok"
			if c.Failed {
				status = c.FailNote
			}
			t.AddRow(fmt.Sprintf("%d", sub.Info.ID), sub.Info.Name, c.Engine,
				fd(c.Time), fmb(c.CondMB), status)
		}
	}
	b.WriteString(t.String())

	// QE and AR on the smallest subjects only (they fail beyond that).
	b.WriteString("\nQE and AR variants (small subjects; budgeted):\n")
	t2 := &Table{Header: []string{"Program", "Engine", "Time", "Cond-Mem", "Status"}}
	small := subs
	if len(small) > 3 {
		small = small[:3]
	}
	for _, sub := range small {
		for _, eng := range []engines.Engine{
			opts.pinpoint(engines.QE),
			opts.pinpoint(engines.AR),
		} {
			c := opts.runBudget(ctx, sub, spec, eng, variantBudget)
			status := "ok"
			if c.Failed {
				status = c.FailNote
			}
			t2.AddRow(sub.Info.Name, c.Engine, fd(c.Time), fmb(c.CondMB), status)
		}
	}
	b.WriteString(t2.String())
	return b.String(), nil
}

// Instance is one SMT query's cost under both solving designs, a point of
// the Figure 11 scatter plot.
type Instance struct {
	Subject    string
	Fused      time.Duration
	Standalone time.Duration
	Sat        bool
	// Preprocessed reports the fused solve was decided by preprocessing.
	Preprocessed bool
	// Absint reports the fused solve was refuted by the abstract tiers.
	Absint bool
	// Stride reports the refutation needed the congruence (stride)
	// product but not the zone tier.
	Stride bool
	// Zone reports the refutation needed the zone relational tier.
	Zone bool
}

// Fig11Instances collects per-instance solving times: every candidate's
// feasibility is decided once by the fused graph-based solver and once by
// the standalone solver on the eagerly-translated condition.
func Fig11Instances(ctx context.Context, opts Options) ([]Instance, error) {
	var out []Instance
	spec := checker.NullDeref()
	subs, err := opts.compileAll(ctx, opts.subjects(progen.Subjects))
	if err != nil {
		return nil, err
	}
	for _, sub := range subs {
		senge := sparse.NewEngine(sub.Graph)
		senge.Workers = opts.workers()
		cands := senge.RunContext(ctx, spec)
		an := absintFor(sub, opts.IntervalsOnly, opts.NoStride)
		for _, c := range cands {
			paths := []pdg.Path{c.Path}

			fb := smt.NewBuilder()
			t0 := time.Now()
			fr := fusioncore.Solve(ctx, fb, sub.Graph, paths, fusioncore.Options{
				Absint: an, DisableAbsintSimplify: opts.NoSimplify,
			})
			fused := time.Since(t0)

			eb := smt.NewBuilder()
			t1 := time.Now()
			sl := pdg.ComputeSlice(sub.Graph, paths)
			tr := cond.Translate(eb, sl)
			sr := solver.Solve(eb, tr.Phi, solver.Options{Ctx: ctx, Timeout: 10 * time.Second})
			standalone := time.Since(t1)

			if fr.Status == sat.Unknown || sr.Status == sat.Unknown {
				continue
			}
			out = append(out, Instance{
				Subject: sub.Info.Name, Fused: fused, Standalone: standalone,
				Sat: fr.Status == sat.Sat, Preprocessed: fr.Preprocessed,
				Absint: fr.DecidedByAbsint, Stride: fr.DecidedByStride,
				Zone: fr.DecidedByZone,
			})
		}
	}
	return out, nil
}

// absintFor builds the tier analysis for one subject through a throwaway
// driver-independent fused engine, keeping the construction in one place.
func absintFor(sub *Subject, intervalsOnly, noStride bool) *absint.Analysis {
	e := engines.NewFusion()
	e.UseAbsint = true
	e.IntervalsOnly = intervalsOnly
	e.NoStride = noStride
	return e.Absint(sub.Graph)
}

// DumpSMT2 writes every null-checking SMT instance of the given subjects
// as an SMT-LIB v2 file (the eagerly translated condition), so the
// instances can be fed to external solvers for cross-validation.
func DumpSMT2(ctx context.Context, opts Options, dir string) (int, error) {
	spec := checker.NullDeref()
	n := 0
	subs, err := opts.compileAll(ctx, opts.subjects(progen.Subjects))
	if err != nil {
		return n, err
	}
	for _, sub := range subs {
		cands := sparse.NewEngine(sub.Graph).RunContext(ctx, spec)
		for i, c := range cands {
			b := smt.NewBuilder()
			sl := pdg.ComputeSlice(sub.Graph, []pdg.Path{c.Path})
			c.ApplyConstraint(sl, 0)
			tr := cond.Translate(b, sl)
			name := fmt.Sprintf("%s/%s_%03d.smt2", dir, sub.Info.Name, i)
			if err := os.WriteFile(name, []byte(smt.ToSMTLIB(tr.Phi)), 0o644); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Fig11 summarizes the per-instance comparison: sat/unsat shares, the
// fraction decided during preprocessing, and the speedup aggregates the
// paper reports (3.0x sat, 1.8x unsat, 2.5x overall).
func Fig11(ctx context.Context, opts Options) (string, error) {
	insts, err := Fig11Instances(ctx, opts)
	if err != nil {
		return "", err
	}
	if len(insts) == 0 {
		return "no instances", nil
	}
	var nSat, nPre, nAbs, nStride, nZone int
	var satF, satS, unsatF, unsatS float64
	for _, in := range insts {
		if in.Sat {
			nSat++
			satF += in.Fused.Seconds()
			satS += in.Standalone.Seconds()
		} else {
			unsatF += in.Fused.Seconds()
			unsatS += in.Standalone.Seconds()
		}
		if in.Preprocessed {
			nPre++
		}
		if in.Absint {
			nAbs++
		}
		if in.Stride {
			nStride++
		}
		if in.Zone {
			nZone++
		}
	}
	n := len(insts)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: %d SMT instances\n", n)
	fmt.Fprintf(&b, "  sat: %d (%.0f%%), unsat: %d (%.0f%%)\n",
		nSat, 100*float64(nSat)/float64(n), n-nSat, 100*float64(n-nSat)/float64(n))
	fmt.Fprintf(&b, "  decided in preprocessing: %d (%.0f%%)\n",
		nPre, 100*float64(nPre)/float64(n))
	fmt.Fprintf(&b, "  absint decision rate: %d (%.0f%%)\n",
		nAbs, 100*float64(nAbs)/float64(n))
	fmt.Fprintf(&b, "  stride decision rate: %d (%.0f%%)\n",
		nStride, 100*float64(nStride)/float64(n))
	fmt.Fprintf(&b, "  zone decision rate: %d (%.0f%%)\n",
		nZone, 100*float64(nZone)/float64(n))
	if satF > 0 {
		fmt.Fprintf(&b, "  sat speedup (standalone/fused): %.1fx\n", satS/satF)
	}
	if unsatF > 0 {
		fmt.Fprintf(&b, "  unsat speedup (standalone/fused): %.1fx\n", unsatS/unsatF)
	}
	if satF+unsatF > 0 {
		fmt.Fprintf(&b, "  overall speedup: %.1fx\n", (satS+unsatS)/(satF+unsatF))
	}
	return b.String(), nil
}

// Table4 runs the two taint analyses over the industrial-sized subjects,
// comparing Fusion to the conventional engine — the paper's Table 4. The
// subjects are compiled once and shared across both specs.
func Table4(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title: "Table 4: taint analyses on the industrial-sized subjects",
		Header: []string{"Issue", "Program", "Fusion-Mem", "Fusion-Time",
			"Pinpoint-Mem", "Pinpoint-Time", "Mem-Ratio", "Speedup"},
	}
	subs, err := opts.compileAll(ctx, opts.subjects(largeSubjects()))
	if err != nil {
		return "", err
	}
	for _, spec := range []*sparse.Spec{checker.PathTraversal(), checker.PrivateLeak()} {
		issue := "CWE-23"
		if spec.Name == "cwe-402" {
			issue = "CWE-402"
		}
		for _, sub := range subs {
			fc := opts.run(ctx, sub, spec, opts.fusion())
			pc := opts.run(ctx, sub, spec, opts.pinpoint(engines.Plain))
			t.AddRow(issue, sub.Info.Name,
				fmb(fc.CondMB), fd(fc.Time),
				fmb(pc.CondMB), fd(pc.Time),
				speedup(pc.CondMB, fc.CondMB),
				speedup(pc.Time.Seconds(), fc.Time.Seconds()))
		}
	}
	return t.String(), nil
}

// Table5 compares Fusion to the Infer-like compositional analyzer on the
// industrial-sized subjects: cost plus report quality against ground truth
// — the paper's Table 5.
func Table5(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title:  "Table 5: Fusion vs Infer (null exceptions, industrial subjects)",
		Header: []string{"Program", "Engine", "Mem", "Time", "#Report", "#TP", "#FP"},
	}
	spec := checker.NullDeref()
	var fTP, fFP, iTP, iFP int
	subs, err := opts.compileAll(ctx, opts.subjects(largeSubjects()))
	if err != nil {
		return "", err
	}
	for _, sub := range subs {
		fc := opts.run(ctx, sub, spec, opts.fusion())
		ic := opts.run(ctx, sub, spec, engines.NewInfer())
		fTP += fc.TP
		fFP += fc.FP
		iTP += ic.TP
		iFP += ic.FP
		t.AddRow(sub.Info.Name, fc.Engine, fmb(fc.CondMB), fd(fc.Time),
			fmt.Sprintf("%d", fc.Reports), fmt.Sprintf("%d", fc.TP), fmt.Sprintf("%d", fc.FP))
		t.AddRow(sub.Info.Name, ic.Engine, fmb(ic.CondMB), fd(ic.Time),
			fmt.Sprintf("%d", ic.Reports), fmt.Sprintf("%d", ic.TP), fmt.Sprintf("%d", ic.FP))
	}
	s := t.String()
	s += fmt.Sprintf("\nFP rate: fusion %.1f%%, infer %.1f%%\n",
		rate(fFP, fTP+fFP), rate(iFP, iTP+iFP))
	return s, nil
}

func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Fig1c measures what fraction of the conventional analysis's memory is
// spent on path conditions, on the industrial-sized subjects — the paper's
// Figure 1(c), which motivates the whole design.
func Fig1c(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title:  "Figure 1(c): memory share of path conditions (conventional design)",
		Header: []string{"Program", "Cond-Mem", "Graph-Mem", "Cond-Share"},
	}
	spec := checker.NullDeref()
	subs, err := opts.compileAll(ctx, opts.subjects(largeSubjects()))
	if err != nil {
		return "", err
	}
	for _, sub := range subs {
		eng := opts.pinpoint(engines.Plain)
		c := opts.run(ctx, sub, spec, eng)
		// Estimate of the dependence graph's own memory: the other major
		// retained structure of the analysis.
		graphBytes := int64(sub.Stats.Vertices)*96 + int64(sub.Stats.Edges())*16
		condBytes := int64(c.CondMB * (1 << 20))
		share := 100 * float64(condBytes) / float64(condBytes+graphBytes)
		t.AddRow(sub.Info.Name, fmb(c.CondMB), fmb(mb(graphBytes)),
			fmt.Sprintf("%.0f%%", share))
	}
	return t.String(), nil
}

// CWE369 is an extension experiment beyond the paper's evaluation: the
// division-by-zero checker (value-constrained sinks) over the
// industrial-sized subjects, Fusion vs the conventional engine, scored
// against injected ground truth.
func CWE369(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title:  "Extension: CWE-369 (division by zero) on the industrial subjects",
		Header: []string{"Program", "Engine", "Time", "Cond-Mem", "#Report", "#TP", "#FP"},
	}
	spec := checker.DivByZero()
	subs, err := opts.compileAll(ctx, opts.subjects(largeSubjects()))
	if err != nil {
		return "", err
	}
	for _, sub := range subs {
		for _, eng := range []engines.Engine{opts.fusion(), opts.pinpoint(engines.Plain)} {
			c := opts.run(ctx, sub, spec, eng)
			t.AddRow(sub.Info.Name, c.Engine, fd(c.Time), fmb(c.CondMB),
				fmt.Sprintf("%d", c.Reports), fmt.Sprintf("%d", c.TP), fmt.Sprintf("%d", c.FP))
		}
	}
	return t.String(), nil
}

// AblationAbsint measures the abstract-interpretation tiers' contribution
// on the industrial-sized subjects: the value-constrained checkers
// (CWE-369, CWE-125) run with the tier off, with intervals alone, with
// the congruence (stride) domain disabled, with pre-simplification
// disabled, and with the full interval×stride+zone product. The tiers
// must never change the report set — they only refute queries the solver
// would also refute, and the pre-simplification only folds values the
// equation system already forces — while strictly reducing the number of
// bit-precise solver calls; the #Stride column counts refutations the
// congruence product decided without the zone tier, #Zone those the zone
// relational tier had to decide, and #Simplified the vertices the
// pre-simplification folded into local conditions before the quick-path
// search (zero in nosimplify mode, by construction).
func AblationAbsint(ctx context.Context, opts Options) (string, error) {
	costs, identical, err := ablationCosts(ctx, opts)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title: "Ablation: abstract-interpretation tiers (absint)",
		Header: []string{"Program", "Checker", "Absint", "Time", "#Report",
			"#Decided", "#Stride", "#Zone", "#Pruned", "#Simplified", "#SolverCalls"},
	}
	for _, c := range costs {
		t.AddRow(c.Subject, c.Checker, c.Mode, fd(c.Time),
			fmt.Sprintf("%d", c.Reports),
			fmt.Sprintf("%d", c.AbsintDecided),
			fmt.Sprintf("%d", c.AbsintStride),
			fmt.Sprintf("%d", c.AbsintZone),
			fmt.Sprintf("%d", c.AbsintPruned),
			fmt.Sprintf("%d", c.Simplified),
			fmt.Sprintf("%d", c.SolverCalls))
	}
	s := t.String()
	if identical {
		s += "\nreport sets identical across off/intervals/nostride/nosimplify/on\n"
	} else {
		s += "\nWARNING: report sets differ across absint modes\n"
	}
	return s, nil
}

// AblationCost is one engine run of the absint ablation, tagged with its
// tier mode ("off", "intervals", "nostride", "nosimplify", "on").
type AblationCost struct {
	Mode string
	Cost
}

// ablationCosts runs the four-mode ablation and reports whether every
// mode produced the identical report count per (subject, checker).
func ablationCosts(ctx context.Context, opts Options) ([]AblationCost, bool, error) {
	var out []AblationCost
	identical := true
	subs, err := opts.compileAll(ctx, opts.subjects(largeSubjects()))
	if err != nil {
		return nil, false, err
	}
	for _, sub := range subs {
		for _, spec := range []*sparse.Spec{checker.DivByZero(), checker.IndexOOB()} {
			// Explicit engines per mode: the ablation ignores Options.Absint.
			var reports []int
			for _, mode := range []string{"off", "intervals", "nostride", "nosimplify", "on"} {
				eng := opts.fusion()
				eng.UseAbsint = mode != "off"
				eng.IntervalsOnly = mode == "intervals"
				eng.NoStride = mode == "nostride"
				eng.NoSimplify = mode == "nosimplify"
				c := opts.run(ctx, sub, spec, eng)
				reports = append(reports, c.Reports)
				out = append(out, AblationCost{Mode: mode, Cost: c})
			}
			for _, r := range reports[1:] {
				if r != reports[0] {
					identical = false
				}
			}
		}
	}
	return out, identical, nil
}

// AblationSession measures the warm incremental solver sessions'
// contribution: Fusion and the conventional engine run the null-exception
// checker over the corpus with sessions on and with `-session=off` (every
// query solved one-shot — the oracle the warm path is validated against).
// Sessions may only change cost, never verdicts, so the report counts must
// be identical in both modes; the cache columns show what the warm path
// reused (all zero under off, by construction). The counters depend on how
// candidates were batched onto workers, so run this experiment sequentially
// when comparing counter values across machines.
func AblationSession(ctx context.Context, opts Options) (string, error) {
	t := &Table{
		Title: "Ablation: incremental solver sessions (-session)",
		Header: []string{"Program", "Engine", "Session", "Time", "#Report",
			"CacheHits", "ReusedClauses", "CacheVars"},
	}
	spec := checker.NullDeref()
	subs, err := opts.compileAll(ctx, opts.subjects(progen.Subjects))
	if err != nil {
		return "", err
	}
	identical := true
	var timeOn, timeOff time.Duration
	var hitsOn int64
	for _, sub := range subs {
		reports := map[string][2]int{}
		for _, mode := range []string{"on", "off"} {
			o := opts
			o.NoSession = mode == "off"
			for _, eng := range []engines.Engine{o.fusion(), o.pinpoint(engines.Plain)} {
				c := o.run(ctx, sub, spec, eng)
				t.AddRow(sub.Info.Name, c.Engine, mode, fd(c.Time),
					fmt.Sprintf("%d", c.Reports),
					fmt.Sprintf("%d", c.CacheHits),
					fmt.Sprintf("%d", c.ReusedClauses),
					fmt.Sprintf("%d", c.CacheVars))
				r := reports[c.Engine]
				if mode == "on" {
					r[0] = c.Reports
					timeOn += c.Time
					hitsOn += c.CacheHits
				} else {
					r[1] = c.Reports
					timeOff += c.Time
				}
				reports[c.Engine] = r
			}
		}
		for _, r := range reports {
			if r[0] != r[1] {
				identical = false
			}
		}
	}
	s := t.String()
	if identical {
		s += "\nreport sets identical with sessions on and off\n"
	} else {
		s += "\nWARNING: report sets differ between session modes\n"
	}
	s += fmt.Sprintf("total time: on %s, off %s; warm cache hits: %d\n",
		fd(timeOn), fd(timeOff), hitsOn)
	return s, nil
}

// largeSubjects returns the four industrial-sized subjects (ffmpeg, v8,
// mysql, wine).
func largeSubjects() []progen.Subject {
	var out []progen.Subject
	for _, s := range progen.Subjects {
		if s.Large() {
			out = append(out, s)
		}
	}
	return out
}
