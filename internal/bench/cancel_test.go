package bench

import (
	"context"
	"runtime"
	"testing"
	"time"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/faultinject"
	"fusion/internal/progen"
)

// TestRunBudgetCooperativeCancellation: an exhausted time budget makes Run
// return promptly with a scored partial result, and no goroutine keeps
// checking after Run returns (the old implementation leaked the worker).
func TestRunBudgetCooperativeCancellation(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	start := time.Now()
	c := Run(ctx, sub, checker.NullDeref(), engines.NewFusion(), Budget{Time: time.Nanosecond, CondBytes: 1 << 30})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("expired budget did not return promptly: %v", elapsed)
	}
	if !c.Failed || c.FailNote != "time out" {
		t.Errorf("expired budget must be scored as a timeout: %+v", c)
	}
	if c.Reports != 0 {
		t.Errorf("no candidate can be decided feasible in zero time: %+v", c)
	}

	// The budget is cooperative cancellation, not an abandoned goroutine:
	// the goroutine count settles back to where it was.
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before {
		t.Errorf("goroutines leaked past Run: %d before, %d after", before, n)
	}
}

// TestRunPartialVerdictsUnderShortBudget: a budget long enough to
// enumerate but too short to check everything still yields one verdict
// per candidate, with the undecided remainder scored as Unknown.
func TestRunPartialVerdictsUnderShortBudget(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Full run for the candidate volume.
	full := Run(ctx, sub, checker.NullDeref(), engines.NewFusion(), Budget{Time: time.Minute, CondBytes: 1 << 30})
	total := full.Reports + full.Unknown + countUnsat(full)
	if total == 0 {
		t.Skip("subject yields no candidates at this scale")
	}
	short := Run(ctx, sub, checker.NullDeref(), engines.NewFusion(), Budget{Time: 2 * time.Millisecond, CondBytes: 1 << 30})
	if !short.Failed {
		t.Skip("machine fast enough to finish in 2ms; nothing to assert")
	}
	if short.Reports > full.Reports {
		t.Errorf("partial run reported more than the full run: %d > %d", short.Reports, full.Reports)
	}
}

func countUnsat(c Cost) int { return c.SolverCalls + c.AbsintDecided - c.Reports - c.Unknown }

// TestRunParentCancelIsNotFailure: a cancelled caller context stops the
// run but is not scored as a subject budget failure.
func TestRunParentCancelIsNotFailure(t *testing.T) {
	sub, err := Compile(context.Background(), progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := Run(ctx, sub, checker.NullDeref(), engines.NewFusion(), Budget{Time: time.Minute, CondBytes: 1 << 30})
	if c.Failed {
		t.Errorf("parent cancellation scored as a budget failure: %+v", c)
	}
	if c.Reports != 0 {
		t.Errorf("cancelled run still produced reports: %+v", c)
	}
}

// TestRunWorkersDeterministic: the same subject, spec, and engine yields
// the same scored result for 1 and 8 workers — enumeration merge and
// verdict slots are index-stable.
func TestRunWorkersDeterministic(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[9], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	budget := Budget{Time: time.Minute, CondBytes: 1 << 30}
	mk := map[string]func() engines.Engine{
		"fusion": func() engines.Engine {
			e := engines.NewFusion()
			e.UseAbsint = true
			return e
		},
		"pinpoint": func() engines.Engine { return engines.NewPinpoint(engines.Plain) },
		"infer":    func() engines.Engine { return engines.NewInfer() },
	}
	for name, f := range mk {
		seq := RunWorkers(ctx, sub, checker.NullDeref(), f(), budget, 1)
		par := RunWorkers(ctx, sub, checker.NullDeref(), f(), budget, 8)
		if seq.Reports != par.Reports || seq.TP != par.TP || seq.FP != par.FP ||
			seq.Unknown != par.Unknown || seq.AbsintDecided != par.AbsintDecided ||
			seq.AbsintZone != par.AbsintZone || seq.AbsintPruned != par.AbsintPruned ||
			seq.SolverCalls != par.SolverCalls {
			t.Errorf("%s: workers=1 and workers=8 disagree:\nseq %+v\npar %+v", name, seq, par)
		}
	}
}

// TestRunUnderInjectedPanic: a candidate that panics mid-run is contained
// — Run completes, scores the crash as a unit failure, keeps every other
// verdict, and leaks no goroutine. The scored counters are identical at 1
// and 8 workers.
func TestRunUnderInjectedPanic(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[9], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.ArmSpec("panic.check:null-deref"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	before := runtime.NumGoroutine()
	budget := Budget{Time: time.Minute, CondBytes: 1 << 30}

	seq := RunWorkers(ctx, sub, checker.NullDeref(), engines.NewFusion(), budget, 1)
	par := RunWorkers(ctx, sub, checker.NullDeref(), engines.NewFusion(), budget, 8)
	if seq.UnitFailures == 0 {
		t.Fatal("armed panic produced no unit failures")
	}
	if seq.UnitFailures != par.UnitFailures || seq.Reports != par.Reports ||
		seq.Unknown != par.Unknown {
		t.Errorf("workers=1 and workers=8 disagree under injection:\nseq %+v\npar %+v", seq, par)
	}
	for i, f := range seq.Failures {
		if f.Stage != "check" || f.Digest() != par.Failures[i].Digest() {
			t.Errorf("failure %d: stage %q digest %s vs %s", i, f.Stage, f.Digest(), par.Failures[i].Digest())
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before {
		t.Errorf("goroutines leaked past Run: %d before, %d after", before, n)
	}
}

// TestRunMixedTiersUnderInjectedExhaustion: with solver-step exhaustion
// armed, verdicts that needed the bit-precise tier degrade and are scored
// separately, while absint-decided and preprocessed verdicts keep their
// original tiers — the mixed-precision batch still completes and stays
// deterministic across worker counts.
func TestRunMixedTiersUnderInjectedExhaustion(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[9], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	budget := Budget{Time: time.Minute, CondBytes: 1 << 30}
	clean := RunWorkers(ctx, sub, checker.NullDeref(), engines.NewFusion(), budget, 1)
	if clean.Degraded != 0 || clean.UnitFailures != 0 {
		t.Fatalf("clean run already impaired: %+v", clean)
	}

	if err := faultinject.ArmSpec("solver.exhaust"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	seq := RunWorkers(ctx, sub, checker.NullDeref(), engines.NewFusion(), budget, 1)
	par := RunWorkers(ctx, sub, checker.NullDeref(), engines.NewFusion(), budget, 8)
	if seq.UnitFailures != 0 {
		t.Errorf("exhaustion must degrade, not fail: %+v", seq.Failures)
	}
	if seq.Degraded != par.Degraded || seq.DegradedUnsat != par.DegradedUnsat ||
		seq.Reports != par.Reports || seq.Unknown != par.Unknown {
		t.Errorf("degradation not deterministic across workers:\nseq %+v\npar %+v", seq, par)
	}
	if seq.Reports > clean.Reports {
		t.Errorf("exhausted run reported more than the clean run: %d > %d", seq.Reports, clean.Reports)
	}
}
