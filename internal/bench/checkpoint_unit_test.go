package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/sparse"
	"fusion/internal/telemetry"
)

// TestJournalSyncFault arms the journal.sync fault point: a record whose
// fsync fails must surface the error, never publish to the in-memory
// replay maps, and be re-run on resume — the write-fsync-publish
// discipline, proven end to end.
func TestJournalSyncFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, d1 := j.Key("before")
	if err := j.Record(k1, d1, Cost{Reports: 1}); err != nil {
		t.Fatal(err)
	}

	if err := faultinject.ArmSpec("journal.sync"); err != nil {
		t.Fatal(err)
	}
	k2, d2 := j.Key("lost")
	recErr := j.Record(k2, d2, Cost{Reports: 2})
	faultinject.Reset()
	if recErr == nil {
		t.Fatal("Record with a failed fsync returned nil")
	}
	if _, ok := j.Lookup(k2); ok {
		t.Error("record published despite failed fsync: a crash now would replay a record the disk never held")
	}
	if j.Len() != 1 {
		t.Errorf("Len = %d after failed record, want 1", j.Len())
	}

	// The rollback must leave the file appendable: the failed record's
	// bytes are truncated away, so the next append starts a whole line.
	k3, d3 := j.Key("after")
	if err := j.Record(k3, d3, Cost{Reports: 3}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("resumed journal holds %d records, want 2", j2.Len())
	}
	if _, ok := j2.Lookup(k2); ok {
		t.Error("failed record resurfaced on resume: it must be re-run instead")
	}
	for _, k := range []string{k1, k3} {
		if _, ok := j2.Lookup(k); !ok {
			t.Errorf("durable record %s lost", k)
		}
	}
}

// TestJournalOversizedRecordDropped: records are bounded on the write
// side, so a line exceeding the load bound is corruption — it must be
// dropped like a torn tail (truncated away, earlier records intact),
// never ballooning OpenJournal's memory or erroring the resume.
func TestJournalOversizedRecordDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, d1 := j.Key("one")
	if err := j.Record(k1, d1, Cost{Reports: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Valid JSON, but past the bound — the size alone condemns it.
	fmt.Fprintf(f, `{"key":"cafebabe","desc":"%s","cost":{}}`+"\n",
		strings.Repeat("x", maxRecordLine))
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 1 {
		t.Fatalf("journal with oversized tail loaded %d records, want 1", j2.Len())
	}
	if _, ok := j2.Lookup("cafebabe"); ok {
		t.Error("oversized record survived the load")
	}
	k2, d2 := j2.Key("two")
	if err := j2.Record(k2, d2, Cost{Reports: 2}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	if fi, err := os.Stat(path); err != nil || fi.Size() > maxRecordLine {
		t.Errorf("oversized tail not truncated: size %d, err %v", fi.Size(), err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("after resume past an oversized tail: %d records, want 2", j3.Len())
	}
}

// TestUnitRecordRoundTrip persists one candidate's verdict and replays
// it through a reopened journal: every verdict-relevant and cost field
// survives; the failure payload comes back bounded — digest preserved,
// stack dropped, value truncated — and the record itself stays small.
func TestUnitRecordRoundTrip(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	cands := sparse.NewEngine(sub.Graph).RunContext(ctx, checker.NullDeref())
	if len(cands) == 0 {
		t.Fatal("subject produced no candidates")
	}
	c := cands[0]

	fail := failure.FromPanic(engines.UnitLabel(c), "solve", strings.Repeat("v", 100<<10))
	fail.Attempts = 2
	orig := engines.Verdict{
		Cand: c, Status: sat.Sat, Tier: engines.TierExact,
		Preprocessed: true, Degraded: true, Abandoned: true,
		Simplified: 7, PrunedGuards: 3, ConditionSize: 41, Attempts: 2,
		CacheHits: 11, CacheVars: 5, ReusedClauses: 13,
		Conflicts: 17, Decisions: 19, Props: 23,
		SolveTime: 42 * time.Millisecond,
		Failure:   fail,
	}

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.RecordUnit("k1", 3, orig); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if fi, err := os.Stat(path); err != nil || fi.Size() > 4<<10 {
		t.Errorf("unit record with a 100KB panic value not bounded: %d bytes, err %v", fi.Size(), err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Units() != 1 {
		t.Fatalf("Units = %d, want 1", j2.Units())
	}
	if _, ok := j2.LookupUnit("k1", 0); ok {
		t.Error("LookupUnit hit on the wrong index")
	}
	u, ok := j2.LookupUnit("k1", 3)
	if !ok {
		t.Fatal("unit record lost across reopen")
	}
	if u.Unit != engines.UnitLabel(c) {
		t.Errorf("unit label %q, want %q", u.Unit, engines.UnitLabel(c))
	}
	got := u.verdict(c)

	// The failure comes back in its bounded wire form; compare it apart
	// and then the rest structurally.
	if got.Failure == nil {
		t.Fatal("failure dropped entirely")
	}
	if got.Failure.Digest() != fail.Digest() {
		t.Errorf("digest %s, want %s: grouping broken across replay", got.Failure.Digest(), fail.Digest())
	}
	if got.Failure.Stack != "" {
		t.Error("stack persisted: records must stay bounded")
	}
	if !strings.HasSuffix(got.Failure.Value, " [truncated]") || len(got.Failure.Value) > 1024 {
		t.Errorf("panic value not truncated: %d bytes", len(got.Failure.Value))
	}
	if got.Failure.Attempts != 2 || got.Failure.Unit != fail.Unit || got.Failure.Stage != fail.Stage {
		t.Errorf("failure fields lost: %+v", got.Failure)
	}
	got.Failure, orig.Failure = nil, nil
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("replayed verdict differs:\n%+v\nvs\n%+v", got, orig)
	}
}

// TestRunWorkersResumesMidSubject simulates a crash mid-subject: run
// once journaling every unit, throw away the second half of the unit
// records (the crash), and re-run under the same run key. The resumed
// run must re-check only the missing candidates and fold to the same
// verdict-derived cost.
func TestRunWorkersResumesMidSubject(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	spec := checker.NullDeref()
	budget := Budget{Time: 2 * time.Minute, CondBytes: 1 << 30}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	live := runWorkers(ctx, sub, spec, engines.NewFusion(), budget, 0, j, "run1")
	total := j.Units()
	j.Close()
	if total < 2 {
		t.Fatalf("subject too small to split: %d unit records", total)
	}

	// Keep the first half of the records: everything after the "crash"
	// point is as if it was never written.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	keep, cut := total/2, 0
	for i := 0; i < keep; i++ {
		cut += bytes.IndexByte(data[cut:], '\n') + 1
	}
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Units() != keep {
		t.Fatalf("truncated journal holds %d unit records, want %d", j2.Units(), keep)
	}
	resumed := runWorkers(ctx, sub, spec, engines.NewFusion(), budget, 0, j2, "run1")
	if j2.Units() != total {
		t.Errorf("resumed journal holds %d unit records, want %d", j2.Units(), total)
	}
	j2.Close()

	// Every checked candidate appends exactly one record, so the file
	// growing by exactly the missing half proves the replayed candidates
	// were never re-solved.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != total {
		t.Errorf("journal has %d records after resume, want %d: replayed units were re-checked", n, total)
	}

	// Wall time, heap, and session-affinity counters are cost-only and
	// legitimately differ (the resumed half starts on a cold session);
	// every verdict-derived field must fold identically.
	norm := func(c Cost) Cost {
		c.Time, c.HeapMB, c.CondMB = 0, 0, 0
		c.CacheHits, c.ReusedClauses, c.CacheVars = 0, 0, 0
		return c
	}
	if !reflect.DeepEqual(norm(live), norm(resumed)) {
		t.Errorf("resumed cost differs from live:\n%+v\nvs\n%+v", norm(resumed), norm(live))
	}
}

// TestMetricsCountersWorkerInvariant: the counters section of the
// metrics snapshot is derived from verdicts only, so its rendered bytes
// must be identical whatever the worker count — the contract that lets
// CI diff metrics files across configurations.
func TestMetricsCountersWorkerInvariant(t *testing.T) {
	ctx := context.Background()
	sub, err := Compile(ctx, progen.Subjects[5], 0.02)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		rec := telemetry.New()
		o := Options{Scale: 0.02, Budget: Budget{Time: 2 * time.Minute, CondBytes: 1 << 30},
			Workers: workers, Experiment: "test", Telemetry: rec}
		o.run(ctx, sub, checker.NullDeref(), engines.NewFusion())
		b, err := rec.CountersJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq, par := run(1), run(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("counters differ between workers 1 and 8:\n%s\nvs\n%s", seq, par)
	}
}
