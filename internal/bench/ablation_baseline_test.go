package bench

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fusion/internal/progen"
)

var updateBaseline = flag.Bool("update", false, "rewrite testdata/absint_baseline.json from the current run")

// ablationBaseline is the committed floor for the abstract-interpretation
// tier's decision rates on a pinned subject configuration. CI fails when a
// change makes the tier decide (or prune) fewer queries than the baseline:
// precision regressions must be explicit, by re-committing the file.
type ablationBaseline struct {
	Scale    float64                 `json:"scale"`
	Subjects []string                `json:"subjects"`
	Modes    map[string]baselineMode `json:"modes"`
}

type baselineMode struct {
	Decided    int `json:"decided"`
	Stride     int `json:"stride"`
	Zone       int `json:"zone"`
	Pruned     int `json:"pruned"`
	Simplified int `json:"simplified"`
	// CacheHits totals the warm solver sessions' cross-query term reuse.
	// The baseline run is sequential, so the count is deterministic; a
	// drop below the committed floor means session reuse regressed.
	CacheHits int64 `json:"cacheHits"`
}

const baselinePath = "testdata/absint_baseline.json"

func baselineOpts(bl ablationBaseline, t *testing.T) Options {
	opts := Options{
		Scale:  bl.Scale,
		Budget: Budget{Time: 2 * time.Minute, CondBytes: 1 << 30},
	}
	for _, name := range bl.Subjects {
		s, err := progen.SubjectByName(name)
		if err != nil {
			t.Fatal(err)
		}
		opts.Subjects = append(opts.Subjects, s)
	}
	return opts
}

// TestAblationBaseline is the absint ablation smoke: it runs the fused
// engine in all five tier modes (off, intervals, nostride, nosimplify,
// on) on a pinned subject set, requires the report sets to be identical,
// and compares the tier's decision rates against the committed baseline.
// Regenerate the baseline with:
// go test ./internal/bench -run TestAblationBaseline -update
func TestAblationBaseline(t *testing.T) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("missing committed baseline: %v", err)
	}
	var bl ablationBaseline
	if err := json.Unmarshal(data, &bl); err != nil {
		t.Fatalf("bad baseline: %v", err)
	}

	costs, identical, err := ablationCosts(context.Background(), baselineOpts(bl, t))
	if err != nil {
		t.Fatal(err)
	}
	if !identical {
		t.Error("report sets differ across absint modes: the tier changed reports")
	}
	got := map[string]baselineMode{}
	for _, c := range costs {
		if c.Failed {
			t.Fatalf("%s/%s/%s: run failed: %s", c.Subject, c.Checker, c.Mode, c.FailNote)
		}
		m := got[c.Mode]
		m.Decided += c.AbsintDecided
		m.Stride += c.AbsintStride
		m.Zone += c.AbsintZone
		m.Pruned += c.AbsintPruned
		m.Simplified += c.Simplified
		m.CacheHits += c.CacheHits
		got[c.Mode] = m
	}

	if *updateBaseline {
		bl.Modes = got
		out, err := json.MarshalIndent(bl, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(baselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline updated: %+v", got)
		return
	}

	// Structural sanity: modes behave as configured.
	if m := got["off"]; m.Decided != 0 || m.Stride != 0 || m.Zone != 0 || m.Pruned != 0 || m.Simplified != 0 {
		t.Errorf("off mode fired: %+v", m)
	}
	if m := got["intervals"]; m.Stride != 0 || m.Zone != 0 {
		t.Errorf("intervals mode made stride or zone decisions: %+v", m)
	}
	if got["nostride"].Stride != 0 {
		t.Errorf("nostride mode made stride decisions: %+v", got["nostride"])
	}
	if got["nosimplify"].Simplified != 0 {
		t.Errorf("nosimplify mode pre-simplified formulas: %+v", got["nosimplify"])
	}
	if got["on"].Simplified == 0 {
		t.Error("pre-simplification never folded a vertex on the baseline subjects")
	}
	if got["on"].Stride == 0 {
		t.Error("stride tier never decided a query on the baseline subjects")
	}
	if got["on"].Zone == 0 {
		t.Error("zone tier never decided a query on the baseline subjects")
	}
	if got["off"].CacheHits == 0 {
		t.Error("warm sessions never reused a term encoding on the baseline subjects")
	}
	// Regression floor: each mode must decide and prune at least as many
	// queries as the committed baseline.
	for mode, want := range bl.Modes {
		g := got[mode]
		if g.Decided < want.Decided || g.Stride < want.Stride ||
			g.Zone < want.Zone || g.Pruned < want.Pruned ||
			g.Simplified < want.Simplified || g.CacheHits < want.CacheHits {
			t.Errorf("%s: decision rate regressed: got %+v, baseline %+v", mode, g, want)
		}
	}
}
