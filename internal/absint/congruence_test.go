package absint

import (
	"math/rand"
	"testing"
)

func TestStrideLattice(t *testing.T) {
	if (Stride{}) != SingleStride(0) {
		t.Error("zero value must be the singleton {0}")
	}
	if !TopStride().Contains(-7) || !TopStride().Contains(1<<40) {
		t.Error("top must contain everything")
	}
	if BotStride().Contains(0) || !BotStride().IsBottom() {
		t.Error("bottom must contain nothing")
	}
	st := mkStride(4, -1) // ≡ 3 mod 4
	if st.S != 4 || st.B != 3 {
		t.Errorf("mkStride(4,-1) = %v, want ≡3 mod 4", st)
	}
	for _, v := range []int64{3, 7, -1, -5} {
		if !st.Contains(v) {
			t.Errorf("≡3 mod 4 must contain %d", v)
		}
	}
	if st.Contains(4) || st.Contains(0) {
		t.Error("≡3 mod 4 contains a non-member")
	}
	if !st.ExcludesZero() || SingleStride(0).ExcludesZero() || TopStride().ExcludesZero() {
		t.Error("ExcludesZero misjudged")
	}
	// Oversized moduli collapse to their gcd with 2^32.
	big := mkStride(3*maxStride, 5)
	if big.S != maxStride {
		t.Errorf("mkStride(3·2^32, 5).S = %d, want 2^32", big.S)
	}
}

func TestStrideJoin(t *testing.T) {
	cases := []struct {
		a, b, want Stride
	}{
		{SingleStride(3), SingleStride(7), mkStride(4, 3)},
		{SingleStride(3), SingleStride(3), SingleStride(3)},
		{mkStride(2, 1), mkStride(2, 0), TopStride()},
		{mkStride(6, 1), mkStride(6, 4), mkStride(3, 1)},
		{BotStride(), mkStride(2, 1), mkStride(2, 1)},
		{mkStride(2, 1), BotStride(), mkStride(2, 1)},
	}
	for _, c := range cases {
		if got := c.a.Join(c.b); got != c.want {
			t.Errorf("%v ⊔ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestStrideMeet(t *testing.T) {
	cases := []struct {
		a, b, want Stride
	}{
		{mkStride(2, 1), mkStride(3, 2), mkStride(6, 5)}, // CRT
		{mkStride(2, 0), mkStride(2, 1), BotStride()},
		{mkStride(4, 1), mkStride(6, 2), BotStride()}, // gcd 2 ∤ (1−2)
		{SingleStride(5), mkStride(2, 1), SingleStride(5)},
		{SingleStride(4), mkStride(2, 1), BotStride()},
		{TopStride(), mkStride(7, 3), mkStride(7, 3)},
		{mkStride(2, 1), SingleStride(0), BotStride()}, // the divisor kill
	}
	for _, c := range cases {
		if got := c.a.Meet(c.b); got != c.want {
			t.Errorf("%v ⊓ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Meet(c.a); got != c.want {
			t.Errorf("meet not commutative on %v, %v: %v", c.a, c.b, got)
		}
	}
	// Cap: an exact lcm beyond 2^32 over-approximates with an operand.
	a, b := mkStride(1<<20, 1), mkStride((1<<13)+1, 0)
	if got := a.Meet(b); got != a {
		t.Errorf("capped meet = %v, want first operand %v", got, a)
	}
}

func TestStrideWrap(t *testing.T) {
	if got := mkStride(6, 1).wrap(); got != mkStride(2, 1) {
		t.Errorf("(≡1 mod 6).wrap() = %v, want ≡1 mod 2", got)
	}
	if got := mkStride(7, 3).wrap(); !got.IsTop() {
		t.Errorf("(≡3 mod 7).wrap() = %v, want ⊤", got)
	}
	if got := SingleStride(-3).wrap(); got != mkStride(maxStride, -3) {
		t.Errorf("{-3}.wrap() = %v, want ≡2^32−3 mod 2^32", got)
	}
	if got := mkStride(2, 1).wrap(); got != mkStride(2, 1) {
		t.Errorf("mod-2 congruence must survive wrap, got %v", got)
	}
}

func TestReduce(t *testing.T) {
	// Endpoints snap inward to lattice points: [0,255] ∧ ≡0 mod 4 → [0,252].
	iv, st := reduce(Interval{0, 255}, mkStride(4, 0))
	if iv != (Interval{0, 252}) || st != mkStride(4, 0) {
		t.Errorf("reduce([0,255], ≡0 mod 4) = %v, %v", iv, st)
	}
	// Snapping to a single point sharpens the stride.
	iv, st = reduce(Interval{3, 6}, mkStride(5, 4))
	if iv != (Interval{4, 4}) || st != SingleStride(4) {
		t.Errorf("reduce([3,6], ≡4 mod 5) = %v, %v", iv, st)
	}
	// A singleton interval sharpens a top stride.
	if _, st = reduce(Interval{9, 9}, TopStride()); st != SingleStride(9) {
		t.Errorf("reduce singleton: stride %v, want {9}", st)
	}
	// Empty combinations bottom out both halves.
	if iv, st = reduce(Interval{1, 3}, SingleStride(7)); !iv.IsBottom() || !st.IsBottom() {
		t.Errorf("reduce([1,3], {7}) = %v, %v, want ⊥, ⊥", iv, st)
	}
	if iv, st = reduce(Interval{5, 6}, mkStride(4, 3)); !iv.IsBottom() || !st.IsBottom() {
		t.Errorf("reduce([5,6], ≡3 mod 4) = %v, %v, want ⊥, ⊥", iv, st)
	}
	if iv, st = reduce(Bottom(), TopStride()); !iv.IsBottom() || !st.IsBottom() {
		t.Errorf("reduce(⊥, ⊤) = %v, %v, want ⊥, ⊥", iv, st)
	}
}

// TestReduceProperty: reduce never loses a value both halves contain.
func TestReduceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5000; trial++ {
		lo := int64(rng.Intn(200) - 100)
		hi := lo + int64(rng.Intn(50))
		s := int64(rng.Intn(8))
		st := mkStride(s, int64(rng.Intn(17)-8))
		iv := Interval{lo, hi}
		riv, rst := reduce(iv, st)
		for x := lo; x <= hi; x++ {
			if st.Contains(x) && (!riv.Contains(x) || !rst.Contains(x)) {
				t.Fatalf("reduce(%v, %v) dropped %d: got %v, %v", iv, st, x, riv, rst)
			}
		}
		if riv.IsBottom() != rst.IsBottom() {
			t.Fatalf("reduce(%v, %v): halves disagree on bottom: %v, %v", iv, st, riv, rst)
		}
	}
}

// TestStrideTransfersSound fuzzes every transfer against concrete uint32
// machine arithmetic: for values x, y drawn from the operand abstractions,
// the transfer result must contain the signed view of the machine result.
func TestStrideTransfersSound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// absOf builds a random (stride, interval) pair containing x.
	absOf := func(x int32) (Stride, Interval) {
		var st Stride
		switch s := int64(rng.Intn(9)); s {
		case 0:
			st = SingleStride(int64(x))
		case 1:
			st = TopStride()
		default:
			st = mkStride(s, int64(x))
		}
		var iv Interval
		switch rng.Intn(3) {
		case 0:
			iv = Interval{minI32, maxI32}
		case 1:
			d := int64(rng.Intn(1000))
			iv = Interval{max64(minI32, int64(x)-d), min64(maxI32, int64(x)+int64(rng.Intn(1000)))}
		default:
			iv = Interval{int64(x), int64(x)}
		}
		if !st.Contains(int64(x)) || !iv.Contains(int64(x)) {
			t.Fatalf("abstraction %v, %v misses its witness %d", st, iv, x)
		}
		return st, iv
	}
	val := func() int32 {
		switch rng.Intn(4) {
		case 0:
			return int32(rng.Intn(64) - 8)
		case 1:
			return int32(rng.Uint32() % 4096)
		default:
			return int32(rng.Uint32())
		}
	}
	check := func(op string, got Stride, m uint32) {
		sr := int64(int32(m))
		if got.IsBottom() || !got.Contains(sr) {
			t.Fatalf("%s: result %v excludes machine value %d", op, got, sr)
		}
	}
	for trial := 0; trial < 20000; trial++ {
		x, y := val(), val()
		sa, ia := absOf(x)
		sb, ib := absOf(y)
		ux, uy := uint32(x), uint32(y)
		check("add", StAdd(sa, sb, ia, ib), ux+uy)
		check("sub", StSub(sa, sb, ia, ib), ux-uy)
		check("mul", StMul(sa, sb, ia, ib), ux*uy)
		check("neg", StNeg(sa, ia), -ux)
		// Shift by a known constant k ∈ [0, 31].
		k := uint32(rng.Intn(32))
		check("shl", StShl(sa, SingleStride(int64(k)), ia, Interval{int64(k), int64(k)}), ux<<k)
		// Unsigned div/rem by a known constant divisor c >= 1.
		c := uint32(1 + rng.Intn(12))
		cs, ci := SingleStride(int64(c)), Interval{int64(c), int64(c)}
		check("udiv", StUDiv(sa, cs, ia, ci), ux/c)
		check("urem", StURem(sa, cs, ia, ci), ux%c)
	}
}

// TestStrideJoinMeetProperty checks join/meet against brute-force set
// semantics on a window of integers.
func TestStrideJoinMeetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 3000; trial++ {
		a := mkStride(int64(rng.Intn(7)), int64(rng.Intn(21)-10))
		b := mkStride(int64(rng.Intn(7)), int64(rng.Intn(21)-10))
		j, m := a.Join(b), a.Meet(b)
		for x := int64(-40); x <= 40; x++ {
			inA, inB := a.Contains(x), b.Contains(x)
			if (inA || inB) && !j.Contains(x) {
				t.Fatalf("%v ⊔ %v = %v misses %d", a, b, j, x)
			}
			if inA && inB && !m.Contains(x) {
				t.Fatalf("%v ⊓ %v = %v misses %d", a, b, m, x)
			}
			if m.Contains(x) && !(inA && inB) {
				t.Fatalf("%v ⊓ %v = %v includes non-member %d", a, b, m, x)
			}
		}
	}
}
