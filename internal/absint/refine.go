package absint

import (
	"fusion/internal/lang"
	"fusion/internal/ssa"
)

// refiner narrows vertex intervals under a guard chain. Gated SSA wraps
// else-branches in an explicit OpNot, so a guard vertex always asserts
// that its condition (Args[0]) is true; refinement environments are
// memoized per guard vertex and extend the parent guard's environment.
type refiner struct {
	local map[*ssa.Value]Interval
	envs  map[*ssa.Value]*refEnv
	empty *refEnv
}

type refEnv struct {
	refined map[*ssa.Value]Interval
	dead    bool // the guard chain is contradictory: code under it is unreachable
}

const maxDeriveDepth = 64

func newRefiner(local map[*ssa.Value]Interval) *refiner {
	return &refiner{
		local: local,
		envs:  map[*ssa.Value]*refEnv{},
		empty: &refEnv{refined: map[*ssa.Value]Interval{}},
	}
}

// lookup returns x's interval as seen under the given guard chain.
func (r *refiner) lookup(x *ssa.Value, guard *ssa.Value) Interval {
	env := r.envFor(guard)
	if iv, ok := env.refined[x]; ok {
		return iv
	}
	return r.base(x)
}

// contradicted reports whether the guard chain can never hold.
func (r *refiner) contradicted(guard *ssa.Value) bool {
	return r.envFor(guard).dead
}

func (r *refiner) base(x *ssa.Value) Interval {
	if iv, ok := r.local[x]; ok {
		return iv
	}
	return Top(width(x))
}

func (r *refiner) envFor(g *ssa.Value) *refEnv {
	if g == nil {
		return r.empty
	}
	if env, ok := r.envs[g]; ok {
		return env
	}
	parent := r.envFor(g.Guard)
	env := &refEnv{
		refined: make(map[*ssa.Value]Interval, len(parent.refined)+2),
		dead:    parent.dead,
	}
	for v, iv := range parent.refined {
		env.refined[v] = iv
	}
	if !env.dead {
		r.derive(g.Args[0], true, env, 0)
	}
	r.envs[g] = env
	return env
}

func (r *refiner) cur(x *ssa.Value, env *refEnv) Interval {
	if iv, ok := env.refined[x]; ok {
		return iv
	}
	return r.base(x)
}

// constrain meets x's interval with the given fact; an empty meet marks
// the environment dead.
func (r *refiner) constrain(x *ssa.Value, with Interval, env *refEnv) {
	m := r.cur(x, env).Meet(with)
	if m.IsBottom() {
		env.dead = true
		return
	}
	if x.Op != ssa.OpConst {
		env.refined[x] = m
	}
}

// derive propagates the fact "c evaluates to want" into the environment,
// walking the condition's structure.
func (r *refiner) derive(c *ssa.Value, want bool, env *refEnv, depth int) {
	if env.dead || depth > maxDeriveDepth {
		return
	}
	// The condition vertex itself is now known.
	if want {
		r.constrain(c, Interval{1, 1}, env)
	} else {
		r.constrain(c, Interval{0, 0}, env)
	}
	if env.dead {
		return
	}
	switch c.Op {
	case ssa.OpCopy:
		r.derive(c.Args[0], want, env, depth+1)
	case ssa.OpNot:
		r.derive(c.Args[0], !want, env, depth+1)
	case ssa.OpBin:
		switch c.BinOp {
		case lang.OpAnd:
			if want {
				r.derive(c.Args[0], true, env, depth+1)
				r.derive(c.Args[1], true, env, depth+1)
			}
		case lang.OpOr:
			if !want {
				r.derive(c.Args[0], false, env, depth+1)
				r.derive(c.Args[1], false, env, depth+1)
			}
		case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe:
			r.deriveCmp(c.BinOp, c.Args[0], c.Args[1], want, env)
		}
	}
}

// deriveCmp refines both operands of a comparison known to evaluate to
// want. All comparisons are signed, matching the SMT encoding.
func (r *refiner) deriveCmp(op lang.BinOp, x, y *ssa.Value, want bool, env *refEnv) {
	rl, swap := normalizeRel(op, want)
	if swap {
		x, y = y, x
	}
	cx, cy := r.cur(x, env), r.cur(y, env)
	if cx.IsBottom() || cy.IsBottom() {
		env.dead = true
		return
	}
	nx, ny := relConstraints(rl, cx, cy)
	r.constrain(x, nx, env)
	r.constrain(y, ny, env)
}

// rel is a canonical comparison relation after polarity normalization.
type rel int

const (
	relLt rel = iota // x < y
	relLe            // x <= y
	relEq            // x == y
	relNe            // x != y
)

// normalizeRel maps a comparison operator known to evaluate to want onto a
// canonical relation, possibly with swapped operands:
// ¬(x<y) = y<=x, ¬(x<=y) = y<x, ¬(x==y) = x!=y, ¬(x!=y) = x==y.
func normalizeRel(op lang.BinOp, want bool) (rl rel, swap bool) {
	switch op {
	case lang.OpLt:
		rl = relLt
	case lang.OpLe:
		rl = relLe
	case lang.OpGt:
		rl, swap = relLt, true
	case lang.OpGe:
		rl, swap = relLe, true
	case lang.OpEq:
		rl = relEq
	case lang.OpNe:
		rl = relNe
	}
	if !want {
		switch rl {
		case relLt:
			rl, swap = relLe, !swap
		case relLe:
			rl, swap = relLt, !swap
		case relEq:
			rl = relNe
		case relNe:
			rl = relEq
		}
	}
	return rl, swap
}

// relConstraints returns the intervals to meet into x and y given that
// "x rl y" holds and the operands currently lie in cx and cy. A bottom
// result signals a contradiction.
func relConstraints(rl rel, cx, cy Interval) (nx, ny Interval) {
	switch rl {
	case relLt:
		return Interval{minI32, cy.Hi - 1}, Interval{cx.Lo + 1, maxI32}
	case relLe:
		return Interval{minI32, cy.Hi}, Interval{cx.Lo, maxI32}
	case relEq:
		return cy, cx
	case relNe:
		nx, ny = cx, cy
		if cy.Lo == cy.Hi {
			nx = trimmed(cx, cy.Lo)
		}
		if cx.Lo == cx.Hi {
			ny = trimmed(cy, cx.Lo)
		}
		return nx, ny
	}
	return Top(32), Top(32)
}

// trimmed removes a single excluded value from an interval when it sits on
// an endpoint (intervals cannot represent interior holes).
func trimmed(c Interval, excluded int64) Interval {
	switch {
	case c.Lo == c.Hi && c.Lo == excluded:
		return Bottom()
	case c.Lo == excluded:
		return Interval{c.Lo + 1, c.Hi}
	case c.Hi == excluded:
		return Interval{c.Lo, c.Hi - 1}
	}
	return c
}
