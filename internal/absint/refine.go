package absint

import (
	"fusion/internal/lang"
	"fusion/internal/ssa"
)

// refiner narrows vertex intervals under a guard chain. Gated SSA wraps
// else-branches in an explicit OpNot, so a guard vertex always asserts
// that its condition (Args[0]) is true; refinement environments are
// memoized per guard vertex and extend the parent guard's environment.
//
// With the zone domain enabled, every environment additionally carries a
// difference-bound matrix over the function's SSA values: comparisons
// contribute relational edges (x < y gives x − y ≤ −1), definitions of
// copies and overflow-free additions/subtractions contribute definitional
// edges, and a negative cycle marks the guard chain dead just like an
// empty interval meet does.
type refiner struct {
	local map[*ssa.Value]Interval
	// localSt mirrors local in the congruence domain; nil when off.
	localSt map[*ssa.Value]Stride
	envs    map[*ssa.Value]*refEnv
	empty   *refEnv
	// zone enables the relational (difference-bound) domain.
	zone bool
	// stride enables the congruence domain.
	stride bool
}

type refEnv struct {
	refined map[*ssa.Value]Interval
	// st holds the guard chain's stride refinements; nil when off.
	st map[*ssa.Value]Stride
	// z is the environment's zone; nil when the domain is disabled.
	z    *dbm[*ssa.Value]
	dead bool // the guard chain is contradictory: code under it is unreachable
}

const maxDeriveDepth = 64

func newRefiner(local map[*ssa.Value]Interval, localSt map[*ssa.Value]Stride, zone, stride bool, stop func() bool) *refiner {
	r := &refiner{
		local:   local,
		localSt: localSt,
		envs:    map[*ssa.Value]*refEnv{},
		empty:   &refEnv{refined: map[*ssa.Value]Interval{}},
		zone:    zone,
		stride:  stride,
	}
	if zone {
		r.empty.z = newDBM[*ssa.Value]()
		r.empty.z.stop = stop
	}
	if stride {
		r.empty.st = map[*ssa.Value]Stride{}
	}
	return r
}

// lookup returns x's interval as seen under the given guard chain.
func (r *refiner) lookup(x *ssa.Value, guard *ssa.Value) Interval {
	env := r.envFor(guard)
	if iv, ok := env.refined[x]; ok {
		return iv
	}
	return r.base(x)
}

// contradicted reports whether the guard chain can never hold.
func (r *refiner) contradicted(guard *ssa.Value) bool {
	return r.envFor(guard).dead
}

func (r *refiner) base(x *ssa.Value) Interval {
	if iv, ok := r.local[x]; ok {
		return iv
	}
	return Top(width(x))
}

// lookupSt returns x's stride as seen under the given guard chain.
func (r *refiner) lookupSt(x *ssa.Value, guard *ssa.Value) Stride {
	return r.curSt(x, r.envFor(guard))
}

func (r *refiner) baseSt(x *ssa.Value) Stride {
	if x.Op == ssa.OpConst {
		return SingleStride(SignExt(x.Const, width(x)))
	}
	if st, ok := r.localSt[x]; ok {
		return st
	}
	return TopStride()
}

func (r *refiner) curSt(x *ssa.Value, env *refEnv) Stride {
	if st, ok := env.st[x]; ok {
		return st
	}
	return r.baseSt(x)
}

func (r *refiner) envFor(g *ssa.Value) *refEnv {
	if g == nil {
		return r.empty
	}
	if env, ok := r.envs[g]; ok {
		return env
	}
	parent := r.envFor(g.Guard)
	env := r.childEnv(parent)
	if !env.dead {
		r.derive(g.Args[0], true, env, 0)
	}
	r.envs[g] = env
	return env
}

// childEnv clones an environment: refined intervals and the zone.
func (r *refiner) childEnv(parent *refEnv) *refEnv {
	env := &refEnv{
		refined: make(map[*ssa.Value]Interval, len(parent.refined)+2),
		dead:    parent.dead,
	}
	for v, iv := range parent.refined {
		env.refined[v] = iv
	}
	if parent.st != nil {
		env.st = make(map[*ssa.Value]Stride, len(parent.st)+2)
		for v, st := range parent.st {
			env.st[v] = st
		}
	}
	if parent.z != nil {
		env.z = parent.z.clone()
	}
	return env
}

func (r *refiner) cur(x *ssa.Value, env *refEnv) Interval {
	if iv, ok := env.refined[x]; ok {
		return iv
	}
	return r.base(x)
}

// constrain meets x's interval with the given fact, reducing it against
// x's stride; an empty combination marks the environment dead.
func (r *refiner) constrain(x *ssa.Value, with Interval, env *refEnv) {
	m := r.cur(x, env).Meet(with)
	if r.stride {
		var st Stride
		m, st = reduce(m, r.curSt(x, env))
		if m.IsBottom() {
			env.dead = true
			return
		}
		if x.Op != ssa.OpConst {
			env.refined[x] = m
			env.st[x] = st
		}
		return
	}
	if m.IsBottom() {
		env.dead = true
		return
	}
	if x.Op != ssa.OpConst {
		env.refined[x] = m
	}
}

// constrainSt meets x's stride with the given fact, reducing the
// interval against the sharpened stride; an empty combination marks the
// environment dead.
func (r *refiner) constrainSt(x *ssa.Value, with Stride, env *refEnv) {
	if !r.stride || env.dead {
		return
	}
	m := r.curSt(x, env).Meet(with)
	iv, m2 := reduce(r.cur(x, env), m)
	if iv.IsBottom() {
		env.dead = true
		return
	}
	if x.Op != ssa.OpConst {
		env.refined[x] = iv
		env.st[x] = m2
	}
}

// zoneAdd records (xn + xo) − (yn + yo) ≤ c in the environment's zone; a
// negative cycle marks the environment dead.
func (r *refiner) zoneAdd(env *refEnv, xn *ssa.Value, xo int64, yn *ssa.Value, yo int64, c int64) {
	if env.z == nil || env.dead {
		return
	}
	env.z.addNorm(xn, xo, yn, yo, c)
	if env.z.dead {
		env.dead = true
	}
}

// zoneOperand normalizes a 32-bit operand to a DBM node plus a constant
// offset; constants fold into the distinguished zero node (nil).
func zoneOperand(v *ssa.Value) (n *ssa.Value, off int64, ok bool) {
	if width(v) != 32 {
		return nil, 0, false
	}
	if v.Op == ssa.OpConst {
		return nil, int64(int32(v.Const)), true
	}
	return v, 0, true
}

// noteDef records the zone edges implied by v's defining equation into the
// environment of v's guard. Gated SSA equations are pure, so a copy always
// yields exact equality edges; machine addition and subtraction only yield
// edges when the operand intervals prove the operation cannot wrap.
func (r *refiner) noteDef(v *ssa.Value) {
	if !r.zone {
		return
	}
	env := r.envFor(v.Guard)
	if env.z == nil || env.dead || width(v) != 32 || v.Op == ssa.OpConst {
		return
	}
	eq := func(x *ssa.Value) {
		xn, xo, ok := zoneOperand(x)
		if !ok {
			return
		}
		r.zoneAdd(env, v, 0, xn, xo, 0)
		r.zoneAdd(env, xn, xo, v, 0, 0)
	}
	switch v.Op {
	case ssa.OpCopy, ssa.OpReturn:
		eq(v.Args[0])
	case ssa.OpIte:
		c := r.cur(v.Args[0], env)
		switch {
		case c.Lo == 1 && c.Hi == 1:
			eq(v.Args[1])
		case c.Lo == 0 && c.Hi == 0:
			eq(v.Args[2])
		}
	case ssa.OpBin:
		x, y := v.Args[0], v.Args[1]
		ix, iy := r.cur(x, env), r.cur(y, env)
		if ix.IsBottom() || iy.IsBottom() {
			return
		}
		xn, xo, okx := zoneOperand(x)
		yn, yo, oky := zoneOperand(y)
		switch v.BinOp {
		case lang.OpAdd:
			if ix.Lo+iy.Lo < minI32 || ix.Hi+iy.Hi > maxI32 {
				return // may wrap: no integer edge is sound
			}
			if okx {
				r.zoneAdd(env, v, 0, xn, xo, iy.Hi)
				r.zoneAdd(env, xn, xo, v, 0, -iy.Lo)
			}
			if oky {
				r.zoneAdd(env, v, 0, yn, yo, ix.Hi)
				r.zoneAdd(env, yn, yo, v, 0, -ix.Lo)
			}
		case lang.OpSub:
			if x == y {
				return // handled exactly by the interval transfer
			}
			if ix.Lo-iy.Hi < minI32 || ix.Hi-iy.Lo > maxI32 {
				return
			}
			if okx {
				r.zoneAdd(env, v, 0, xn, xo, -iy.Lo)
				r.zoneAdd(env, xn, xo, v, 0, iy.Hi)
			}
		}
	}
}

// derive propagates the fact "c evaluates to want" into the environment,
// walking the condition's structure.
func (r *refiner) derive(c *ssa.Value, want bool, env *refEnv, depth int) {
	if env.dead || depth > maxDeriveDepth {
		return
	}
	// The condition vertex itself is now known.
	if want {
		r.constrain(c, Interval{1, 1}, env)
	} else {
		r.constrain(c, Interval{0, 0}, env)
	}
	if env.dead {
		return
	}
	switch c.Op {
	case ssa.OpCopy:
		r.derive(c.Args[0], want, env, depth+1)
	case ssa.OpNot:
		r.derive(c.Args[0], !want, env, depth+1)
	case ssa.OpBin:
		switch c.BinOp {
		case lang.OpAnd:
			if want {
				r.derive(c.Args[0], true, env, depth+1)
				r.derive(c.Args[1], true, env, depth+1)
			} else {
				// ¬(a ∧ b) = ¬a ∨ ¬b: derive each disjunct separately
				// and join.
				r.deriveJoin(c.Args[0], c.Args[1], false, env, depth)
			}
		case lang.OpOr:
			if !want {
				r.derive(c.Args[0], false, env, depth+1)
				r.derive(c.Args[1], false, env, depth+1)
			} else {
				r.deriveJoin(c.Args[0], c.Args[1], true, env, depth)
			}
		case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe:
			r.deriveCmp(c.BinOp, c.Args[0], c.Args[1], want, env)
		}
	}
}

// deriveJoin handles a disjunctive fact "a evaluates to want OR b
// evaluates to want": each disjunct is derived into a scratch copy of the
// environment and the results are joined, so a guard like x < 3 || x < 5
// still bounds x (to the weaker of the two facts) instead of deriving
// nothing. A disjunct whose scratch environment dies is unsatisfiable
// here, so the other disjunct's facts hold outright; if both die the whole
// environment is dead.
func (r *refiner) deriveJoin(a, b *ssa.Value, want bool, env *refEnv, depth int) {
	ea, eb := r.childEnv(env), r.childEnv(env)
	r.derive(a, want, ea, depth+1)
	r.derive(b, want, eb, depth+1)
	switch {
	case ea.dead && eb.dead:
		env.dead = true
		return
	case ea.dead:
		env.refined, env.st, env.z = eb.refined, eb.st, eb.z
		return
	case eb.dead:
		env.refined, env.st, env.z = ea.refined, ea.st, ea.z
		return
	}
	// Interval join over every key either branch refined. Both scratch
	// environments start from env, so the join is never wider than the
	// current fact and constrain's meet keeps the tighter of old and new.
	keys := make(map[*ssa.Value]bool, len(ea.refined)+len(eb.refined))
	for x := range ea.refined {
		keys[x] = true
	}
	for x := range eb.refined {
		keys[x] = true
	}
	for x := range keys {
		r.constrain(x, r.cur(x, ea).Join(r.cur(x, eb)), env)
		if env.dead {
			return
		}
	}
	if r.stride {
		stKeys := make(map[*ssa.Value]bool, len(ea.st)+len(eb.st))
		for x := range ea.st {
			stKeys[x] = true
		}
		for x := range eb.st {
			stKeys[x] = true
		}
		for x := range stKeys {
			r.constrainSt(x, r.curSt(x, ea).Join(r.curSt(x, eb)), env)
			if env.dead {
				return
			}
		}
	}
	if env.z != nil {
		env.z = ea.z.join(eb.z)
	}
}

// deriveCmp refines both operands of a comparison known to evaluate to
// want. All comparisons are signed, matching the SMT encoding.
func (r *refiner) deriveCmp(op lang.BinOp, x, y *ssa.Value, want bool, env *refEnv) {
	rl, swap := normalizeRel(op, want)
	if swap {
		x, y = y, x
	}
	cx, cy := r.cur(x, env), r.cur(y, env)
	if cx.IsBottom() || cy.IsBottom() {
		env.dead = true
		return
	}
	nx, ny := relConstraints(rl, cx, cy)
	r.constrain(x, nx, env)
	r.constrain(y, ny, env)
	if env.dead {
		return
	}
	if r.stride {
		switch rl {
		case relEq:
			// Equal values share a stride, and a `%`-equality guard
			// fixes the dividend's congruence class.
			sx, sy := r.curSt(x, env), r.curSt(y, env)
			r.constrainSt(x, sy, env)
			r.constrainSt(y, sx, env)
			r.deriveRem(x, y, true, env)
			r.deriveRem(y, x, true, env)
		case relNe:
			r.deriveRem(x, y, false, env)
			r.deriveRem(y, x, false, env)
		}
		if env.dead {
			return
		}
	}
	if env.z == nil {
		return
	}
	// The relation itself becomes a zone edge — the fact the interval
	// domain necessarily throws away when neither endpoint is constant.
	xn, xo, okx := zoneOperand(x)
	yn, yo, oky := zoneOperand(y)
	if !okx || !oky {
		return
	}
	switch rl {
	case relLt:
		r.zoneAdd(env, xn, xo, yn, yo, -1)
	case relLe:
		r.zoneAdd(env, xn, xo, yn, yo, 0)
	case relEq:
		r.zoneAdd(env, xn, xo, yn, yo, 0)
		r.zoneAdd(env, yn, yo, xn, xo, 0)
	}
}

// deriveRem propagates a `%`-equality guard backward to the dividend:
// (d % K) == R with constant K >= 2 and known R ∈ [0, K) gives
// d ≡ R (mod K) when d is provably non-negative, and the always-sound
// d ≡ R (mod gcd(K, 2^w)) otherwise, where w is the dividend's width
// (the machine remainder sees d's unsigned view, which agrees with d
// modulo 2^w). With eq false, only parity flips: (d % 2) != R gives
// d ≡ 1−R (mod 2).
func (r *refiner) deriveRem(e, val *ssa.Value, eq bool, env *refEnv) {
	if env.dead || e.Op != ssa.OpBin || e.BinOp != lang.OpRem {
		return
	}
	kv := e.Args[1]
	if kv.Op != ssa.OpConst {
		return
	}
	k := SignExt(kv.Const, width(kv))
	if k < 2 {
		return
	}
	cv := r.cur(val, env)
	if cv.Lo != cv.Hi || cv.Lo < 0 || cv.Lo >= k {
		return
	}
	rem := cv.Lo
	d := e.Args[0]
	if eq {
		mod := gcd64(k, wrapModulus(width(d)))
		if r.cur(d, env).Lo >= 0 {
			mod = k
		}
		r.constrainSt(d, mkStride(mod, rem), env)
		return
	}
	if k == 2 {
		r.constrainSt(d, mkStride(2, 1-rem), env)
	}
}

// rel is a canonical comparison relation after polarity normalization.
type rel int

const (
	relLt rel = iota // x < y
	relLe            // x <= y
	relEq            // x == y
	relNe            // x != y
)

// normalizeRel maps a comparison operator known to evaluate to want onto a
// canonical relation, possibly with swapped operands:
// ¬(x<y) = y<=x, ¬(x<=y) = y<x, ¬(x==y) = x!=y, ¬(x!=y) = x==y.
func normalizeRel(op lang.BinOp, want bool) (rl rel, swap bool) {
	switch op {
	case lang.OpLt:
		rl = relLt
	case lang.OpLe:
		rl = relLe
	case lang.OpGt:
		rl, swap = relLt, true
	case lang.OpGe:
		rl, swap = relLe, true
	case lang.OpEq:
		rl = relEq
	case lang.OpNe:
		rl = relNe
	}
	if !want {
		switch rl {
		case relLt:
			rl, swap = relLe, !swap
		case relLe:
			rl, swap = relLt, !swap
		case relEq:
			rl = relNe
		case relNe:
			rl = relEq
		}
	}
	return rl, swap
}

// relConstraints returns the intervals to meet into x and y given that
// "x rl y" holds and the operands currently lie in cx and cy. A bottom
// result signals a contradiction.
//
// Invariant: the relLt endpoints cy.Hi − 1 and cx.Lo + 1 are deliberately
// NOT clamped. When cy.Hi == minI32 the then-branch result {minI32,
// minI32 − 1} has Lo > Hi, which is exactly the bottom encoding — x < y
// with y at the minimum is unsatisfiable — and symmetrically for cx.Lo ==
// maxI32. A clamp or normalize pass here would silently turn these
// contradictions into wraparound intervals; see TestRelConstraintsEndpoints.
func relConstraints(rl rel, cx, cy Interval) (nx, ny Interval) {
	switch rl {
	case relLt:
		return Interval{minI32, cy.Hi - 1}, Interval{cx.Lo + 1, maxI32}
	case relLe:
		return Interval{minI32, cy.Hi}, Interval{cx.Lo, maxI32}
	case relEq:
		return cy, cx
	case relNe:
		nx, ny = cx, cy
		if cy.Lo == cy.Hi {
			nx = trimmed(cx, cy.Lo)
		}
		if cx.Lo == cx.Hi {
			ny = trimmed(cy, cx.Lo)
		}
		return nx, ny
	}
	return Top(32), Top(32)
}

// trimmed removes a single excluded value from an interval when it sits on
// an endpoint (intervals cannot represent interior holes).
func trimmed(c Interval, excluded int64) Interval {
	switch {
	case c.Lo == c.Hi && c.Lo == excluded:
		return Bottom()
	case c.Lo == excluded:
		return Interval{c.Lo + 1, c.Hi}
	case c.Hi == excluded:
		return Interval{c.Lo, c.Hi - 1}
	}
	return c
}
