package absint_test

import (
	"context"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
)

// findValue returns the (last) value defining the named source variable.
func findValue(t *testing.T, g *pdg.Graph, fn, name string) *ssa.Value {
	t.Helper()
	f := g.Prog.Funcs[fn]
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	var out *ssa.Value
	for _, v := range f.Values {
		if v.Name == name {
			out = v
		}
	}
	if out == nil {
		t.Fatalf("no value %s.%s", fn, name)
	}
	return out
}

func TestZoneDiffBound(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var i: int = user_input();
    var m: int = user_input();
    if (i < m) {
        var y: int = i;
        send(y);
    }
}`)
	a := absint.Analyze(g)
	y, m := findValue(t, g, "f", "y"), findValue(t, g, "f", "m")
	c, ok := a.DiffBound(y, m)
	if !ok || c > -1 {
		t.Errorf("y − m: got (%d, %v), want bound <= -1 under the guard", c, ok)
	}
	if facts := a.ZoneFacts(y); len(facts) == 0 {
		t.Error("no zone facts under the guard")
	}
	// With the domain disabled, no bound is known.
	a2 := absint.AnalyzeWith(g, absint.Config{DisableZone: true})
	if _, ok := a2.DiffBound(y, m); ok {
		t.Error("DiffBound answered with the zone domain disabled")
	}
	if a2.Stats.ZoneEdges != 0 {
		t.Errorf("zone edges recorded while disabled: %d", a2.Stats.ZoneEdges)
	}
}

// oobSlices pairs every CWE-125 candidate with its constrained slice.
func oobSlices(t *testing.T, g *pdg.Graph) ([]sparse.Candidate, []*pdg.Slice) {
	t.Helper()
	cands := sparse.NewEngine(g).Run(checker.IndexOOB())
	if len(cands) == 0 {
		t.Fatal("no cwe-125 candidates")
	}
	var slices []*pdg.Slice
	for _, c := range cands {
		sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
		c.ApplyConstraint(sl, 0)
		slices = append(slices, sl)
	}
	return cands, slices
}

// TestZoneRefutesGuardedDynBound is the acceptance test for the zone tier:
// a dynamically-bounded access fully guarded by 0 <= i && i < m is beyond
// the interval domain (neither bound is constant), so the intervals-only
// tier must pass the query to the solver — and the zone tier must refute
// it, agreeing with the solver's unsat.
func TestZoneRefutesGuardedDynBound(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var i: int = user_input();
    var m: int = user_input();
    if (0 <= i && i < m) {
        var q: int = buf_read_n(i, m);
        send(q);
    }
}`)
	a := absint.Analyze(g)
	ivOnly := absint.AnalyzeWith(g, absint.Config{DisableZone: true})
	cands, slices := oobSlices(t, g)
	truth := engines.NewFusion().Check(context.Background(), g, cands)
	for i, sl := range slices {
		refuted, _, byZone := a.RefuteSliceTiered(sl)
		if !refuted || !byZone {
			t.Errorf("guarded dyn access: got (refuted=%v, byZone=%v), want (true, true)", refuted, byZone)
		}
		if r, _, _ := ivOnly.RefuteSliceTiered(sl); r {
			t.Error("intervals-only tier refuted a relational query")
		}
		if truth[i].Status != sat.Unsat {
			t.Errorf("solver disagrees: %s", truth[i].Status)
		}
		// The pruning oracle sees the same facts.
		c := cands[i]
		if !a.PrunePath(c.Path, c.Constraints(0)...) {
			t.Error("zone oracle did not prune the guarded access")
		}
		if ivOnly.PrunePath(c.Path, c.Constraints(0)...) {
			t.Error("intervals-only oracle pruned a relational query")
		}
	}
}

// TestZoneRefutesCrossFunction moves the sink into a callee: the guard
// holds in the caller, the access happens in the callee, and the refuter's
// context-sensitive zone must connect the two through the call.
func TestZoneRefutesCrossFunction(t *testing.T) {
	g := buildGraph(t, `
fun use(i: int, m: int): int {
    var q: int = buf_read_n(i, m);
    return q;
}
fun f(a: int) {
    var i: int = user_input();
    var m: int = user_input();
    if (0 <= i && i < m) {
        var q: int = use(i, m);
        send(q + a);
    }
}`)
	a := absint.Analyze(g)
	ivOnly := absint.AnalyzeWith(g, absint.Config{DisableZone: true})
	cands, slices := oobSlices(t, g)
	truth := engines.NewFusion().Check(context.Background(), g, cands)
	for i, sl := range slices {
		refuted, _, byZone := a.RefuteSliceTiered(sl)
		if !refuted || !byZone {
			t.Errorf("cross-function dyn access: got (refuted=%v, byZone=%v), want (true, true)", refuted, byZone)
		}
		if r, _, _ := ivOnly.RefuteSliceTiered(sl); r {
			t.Error("intervals-only tier refuted a relational query")
		}
		if truth[i].Status != sat.Unsat {
			t.Errorf("solver disagrees: %s", truth[i].Status)
		}
	}
}

// TestZoneNoRefuteFeasibleDynBound is the soundness counterpart: with the
// lower guard missing, a negative index reaches the access, and neither
// tier may refute or prune it.
func TestZoneNoRefuteFeasibleDynBound(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var i: int = user_input();
    var m: int = user_input();
    if (i < m) {
        var q: int = buf_read_n(i, m);
        send(q);
    }
}`)
	a := absint.Analyze(g)
	cands, slices := oobSlices(t, g)
	truth := engines.NewFusion().Check(context.Background(), g, cands)
	for i, sl := range slices {
		if refuted, _, _ := a.RefuteSliceTiered(sl); refuted {
			t.Error("feasible dyn access refuted: unsound")
		}
		c := cands[i]
		if a.PrunePath(c.Path, c.Constraints(0)...) {
			t.Error("feasible dyn access pruned: unsound")
		}
		if truth[i].Status != sat.Sat {
			t.Errorf("expected a sat witness, got %s", truth[i].Status)
		}
	}
}
