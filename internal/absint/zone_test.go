package absint

import "testing"

// The DBM unit tests use int nodes; 0 is the distinguished zero node.

func TestDBMClosure(t *testing.T) {
	d := newDBM[int]()
	d.add(1, 2, 3) // a − b ≤ 3
	d.add(2, 3, 4) // b − c ≤ 4
	if c, ok := d.diff(1, 0, 3, 0); !ok || c != 7 {
		t.Errorf("a − c: got (%d, %v), want (7, true)", c, ok)
	}
	// A tighter direct edge must override the derived bound.
	d.add(1, 3, 5)
	if c, ok := d.diff(1, 0, 3, 0); !ok || c != 5 {
		t.Errorf("a − c after tightening: got (%d, %v), want (5, true)", c, ok)
	}
	// A looser insertion must be a no-op.
	if d.add(1, 2, 10) {
		t.Error("looser fact reported as a change")
	}
	if c, _ := d.diff(1, 0, 2, 0); c != 3 {
		t.Errorf("a − b loosened to %d", c)
	}
	// Closure must also relax paths through the new edge in both
	// directions: inserting c − d ≤ 1 extends a − d.
	d.add(3, 4, 1)
	if c, ok := d.diff(1, 0, 4, 0); !ok || c != 6 {
		t.Errorf("a − d: got (%d, %v), want (6, true)", c, ok)
	}
}

func TestDBMNegativeCycle(t *testing.T) {
	d := newDBM[int]()
	d.add(1, 2, -1) // a − b ≤ −1, i.e. a < b
	if d.dead {
		t.Fatal("single edge cannot be contradictory")
	}
	d.add(2, 1, 0) // b − a ≤ 0, i.e. b ≤ a: contradiction
	if !d.dead {
		t.Error("negative cycle not detected")
	}
	// A direct negative self-edge is the degenerate cycle.
	d2 := newDBM[int]()
	d2.add(7, 7, -1)
	if !d2.dead {
		t.Error("negative self-edge not detected")
	}
	// A non-negative self-edge is trivially true and must not be stored.
	d3 := newDBM[int]()
	if d3.add(7, 7, 0) || len(d3.edges) != 0 {
		t.Error("trivial self-edge stored")
	}
	// A longer cycle: a < b < c ≤ a − 1.
	d4 := newDBM[int]()
	d4.add(1, 2, -1)
	d4.add(2, 3, -1)
	d4.add(3, 1, 1)
	if !d4.dead {
		t.Error("three-edge negative cycle not detected")
	}
}

func TestDBMJoin(t *testing.T) {
	a := newDBM[int]()
	a.add(1, 2, 3)
	a.add(1, 3, 5)
	b := newDBM[int]()
	b.add(1, 2, 7)
	b.add(2, 3, 1) // only in b: must be dropped; closure derives (1,3) ≤ 8
	j := a.join(b)
	if c, ok := j.diff(1, 0, 2, 0); !ok || c != 7 {
		t.Errorf("common edge: got (%d, %v), want pointwise max (7, true)", c, ok)
	}
	if c, ok := j.diff(1, 0, 3, 0); !ok || c != 8 {
		t.Errorf("closed common edge: got (%d, %v), want max(5, 8)", c, ok)
	}
	if _, ok := j.diff(2, 0, 3, 0); ok {
		t.Error("one-sided edge survived the join")
	}
	// A dead operand contributes nothing: the other side wins outright.
	dead := newDBM[int]()
	dead.add(5, 5, -1)
	if j2 := a.join(dead); j2.dead || len(j2.edges) != len(a.edges) {
		t.Error("join with dead zone lost facts")
	}
	if j3 := dead.join(a); j3.dead || len(j3.edges) != len(a.edges) {
		t.Error("join from dead zone lost facts")
	}
}

func TestDBMOffsetNormalization(t *testing.T) {
	d := newDBM[int]()
	// (x + 2) − (0 + 5) ≤ 0, i.e. x ≤ 3: folds to x − zero ≤ 3.
	d.addNorm(1, 2, 0, 5, 0)
	if c, ok := d.diff(1, 0, 0, 0); !ok || c != 3 {
		t.Errorf("x − zero: got (%d, %v), want (3, true)", c, ok)
	}
	// diff must re-apply offsets: (x + 10) − (zero + 1) ≤ 3 + 10 − 1.
	if c, ok := d.diff(1, 10, 0, 1); !ok || c != 12 {
		t.Errorf("offset diff: got (%d, %v), want (12, true)", c, ok)
	}
	// Identical nodes give the exact offset difference with no edge at all.
	if c, ok := d.diff(9, 4, 9, 1); !ok || c != 3 {
		t.Errorf("same-node diff: got (%d, %v), want (3, true)", c, ok)
	}
}

func TestDBMUnary(t *testing.T) {
	d := newDBM[int]()
	d.add(1, 0, 9)  // x ≤ 9
	d.add(0, 1, -2) // −x ≤ −2, i.e. x ≥ 2
	if iv := d.unary(1, 0); iv != (Interval{2, 9}) {
		t.Errorf("unary: got %v, want [2,9]", iv)
	}
	if iv := d.unary(1, 5); iv != (Interval{7, 14}) {
		t.Errorf("unary with offset: got %v, want [7,14]", iv)
	}
	// An unconstrained node projects to the full 32-bit range.
	if iv := d.unary(2, 0); iv != (Interval{minI32, maxI32}) {
		t.Errorf("unconstrained unary: got %v", iv)
	}
}

func TestDBMEdgeCap(t *testing.T) {
	d := newDBM[int]()
	// Fill past the cap with unrelated edges (disjoint node pairs keep the
	// closure from fabricating extras).
	for i := 0; len(d.edges) < maxZoneEdges; i += 2 {
		d.add(i+1, i+2, 5)
	}
	n := len(d.edges)
	if d.add(900001, 900002, 1) {
		t.Error("insertion beyond the cap reported as a change")
	}
	if len(d.edges) != n || d.dead {
		t.Errorf("cap violated: %d edges, dead=%v", len(d.edges), d.dead)
	}
	// Dropping facts is sound: existing facts must be unaffected.
	if c, ok := d.diff(1, 0, 2, 0); !ok || c != 5 {
		t.Errorf("pre-cap fact lost: (%d, %v)", c, ok)
	}
}

func TestClampWeight(t *testing.T) {
	for _, tc := range []struct{ in, want int64 }{
		{0, 0},
		{maxZoneWeight + 1, maxZoneWeight},
		{-maxZoneWeight - 1, -maxZoneWeight},
		{42, 42},
	} {
		if got := clampWeight(tc.in); got != tc.want {
			t.Errorf("clampWeight(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// Saturated weights keep closure sums inside int64: each insertion and
	// each derived sum is clamped back to the bound.
	d := newDBM[int]()
	d.add(1, 2, maxZoneWeight*2)
	d.add(2, 3, maxZoneWeight*2)
	if c, _ := d.diff(1, 0, 3, 0); c != maxZoneWeight {
		t.Errorf("saturated sum: got %d, want %d", c, maxZoneWeight)
	}
}

// TestDBMRandomizedClosure cross-checks the incremental closure against a
// from-scratch Floyd–Warshall on small random edge sets.
func TestDBMRandomizedClosure(t *testing.T) {
	// Deterministic pseudo-random stream (xorshift) to keep the test
	// reproducible without seeding from the clock.
	s := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return int(s % uint64(n))
	}
	const nodes = 5
	for trial := 0; trial < 200; trial++ {
		d := newDBM[int]()
		type edge struct {
			x, y int
			c    int64
		}
		var edges []edge
		for k := 0; k < 8; k++ {
			e := edge{next(nodes), next(nodes), int64(next(21) - 6)}
			edges = append(edges, e)
			d.add(e.x, e.y, e.c)
		}
		// Reference: dense Floyd–Warshall over the raw edges.
		const inf = int64(1) << 50
		var ref [nodes][nodes]int64
		for i := range ref {
			for j := range ref[i] {
				ref[i][j] = inf
			}
			ref[i][i] = 0
		}
		for _, e := range edges {
			if e.c < ref[e.x][e.y] {
				ref[e.x][e.y] = e.c
			}
		}
		for k := 0; k < nodes; k++ {
			for i := 0; i < nodes; i++ {
				for j := 0; j < nodes; j++ {
					if ref[i][k] < inf && ref[k][j] < inf && ref[i][k]+ref[k][j] < ref[i][j] {
						ref[i][j] = ref[i][k] + ref[k][j]
					}
				}
			}
		}
		refDead := false
		for i := 0; i < nodes; i++ {
			if ref[i][i] < 0 {
				refDead = true
			}
		}
		if d.dead != refDead {
			t.Fatalf("trial %d: dead=%v, reference=%v (%v)", trial, d.dead, refDead, edges)
		}
		if d.dead {
			continue
		}
		for i := 0; i < nodes; i++ {
			for j := 0; j < nodes; j++ {
				if i == j {
					continue
				}
				got, ok := d.diff(i, 0, j, 0)
				if ref[i][j] == inf {
					// The incremental closure may hold a derivable (valid)
					// bound the reference lacks only if reachable; absent
					// reference bound means absent fact.
					if ok {
						t.Fatalf("trial %d: spurious fact %d−%d ≤ %d (%v)", trial, i, j, got, edges)
					}
					continue
				}
				if !ok || got != ref[i][j] {
					t.Fatalf("trial %d: %d−%d: got (%d,%v), want %d (%v)",
						trial, i, j, got, ok, ref[i][j], edges)
				}
			}
		}
	}
}
