package absint

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/ssa"
)

// Analysis holds the whole-program interval facts: one invariant interval
// per PDG vertex (sound for every calling context, i.e. computed with top
// parameters), plus per-function return summaries and a bounded cache of
// call-site instantiations with sharper argument intervals.
type Analysis struct {
	G *pdg.Graph

	// vals is the context-insensitive invariant per vertex: the interval
	// of every value the vertex can compute in any execution, assuming its
	// guard chain holds (gated SSA only consumes a value under its guard).
	vals map[*ssa.Value]Interval
	// summaries maps each function to its return interval with top
	// parameters.
	summaries map[*ssa.Function]Interval

	instMemo map[instCacheKey]Interval
	visiting map[*ssa.Function]bool
	budget   int

	// zone enables the relational (difference-bound) domain; rootZone and
	// guardZone record, per function root and per guard vertex, the zone
	// valid whenever that guard chain holds (computed in the record pass).
	zone      bool
	rootZone  map[*ssa.Function]*dbm[*ssa.Value]
	guardZone map[*ssa.Value]*dbm[*ssa.Value]

	// stride enables the congruence domain; strides holds the per-vertex
	// invariant stride (reduced against the interval, valid whenever the
	// vertex's guard chain holds) and stSummaries the per-function return
	// stride with top parameters, both recorded in the record pass only.
	stride      bool
	strides     map[*ssa.Value]Stride
	stSummaries map[*ssa.Function]Stride

	// stop, when non-nil, is the cancellation hook built from Config.Ctx:
	// once it reports true the fixpoint assigns top to every remaining
	// vertex (sound: top is always an over-approximation) and the zone
	// closure stops absorbing facts.
	stop func() bool

	Stats Stats
}

// Config tunes the analysis.
type Config struct {
	// DisableZone turns off the relational (difference-bound) domain,
	// leaving the interval tier alone — the `-absint=intervals` ablation.
	DisableZone bool
	// DisableStride turns off the congruence (stride) domain — the
	// `-absint=nostride` ablation; `-absint=intervals` disables it too.
	DisableStride bool
	// Ctx, when non-nil, cancels the analysis cooperatively: the
	// interval fixpoint and the zone incremental closure poll it, and on
	// expiry every vertex not yet evaluated gets the (sound) top
	// interval instead of running to completion.
	Ctx context.Context
}

// Stats accounts for the analysis work and precision.
type Stats struct {
	Functions      int
	Vertices       int
	NonTrivial     int // vertices with an interval strictly below top
	Instantiations int
	CacheHits      int
	// ZoneEdges is the total difference-bound fact count recorded across
	// all guard environments.
	ZoneEdges int
	// StrideFacts counts vertices whose invariant stride is strictly
	// below top (a proper congruence or a singleton).
	StrideFacts int
}

type instCacheKey struct {
	f    *ssa.Function
	args string
}

const (
	maxInstDepth = 32
	// evalBudget bounds the total number of per-call-site re-evaluations;
	// beyond it the top-parameter summary is used instead.
	evalBudget = 20000
)

func width(v *ssa.Value) int { return pdg.TypeBits(v.Type) }

// Analyze runs the sparse abstract interpretation over the whole program:
// functions are processed bottom-up over the call graph (callees before
// callers) so call vertices can use callee summaries; call-graph cycles —
// which normalization removes, so they indicate an unnormalized input —
// degrade to the top summary (the degenerate widening).
func Analyze(g *pdg.Graph) *Analysis { return AnalyzeWith(g, Config{}) }

// AnalyzeWith is Analyze with explicit domain configuration.
func AnalyzeWith(g *pdg.Graph, cfg Config) *Analysis {
	a := &Analysis{
		G:           g,
		vals:        map[*ssa.Value]Interval{},
		summaries:   map[*ssa.Function]Interval{},
		instMemo:    map[instCacheKey]Interval{},
		visiting:    map[*ssa.Function]bool{},
		budget:      evalBudget,
		zone:        !cfg.DisableZone,
		rootZone:    map[*ssa.Function]*dbm[*ssa.Value]{},
		guardZone:   map[*ssa.Value]*dbm[*ssa.Value]{},
		stride:      !cfg.DisableStride,
		strides:     map[*ssa.Value]Stride{},
		stSummaries: map[*ssa.Function]Stride{},
		stop:        pollStop(cfg.Ctx),
	}
	// Bottom-up call-graph order.
	done := map[*ssa.Function]bool{}
	var visit func(f *ssa.Function)
	visit = func(f *ssa.Function) {
		if done[f] || a.visiting[f] {
			return
		}
		a.visiting[f] = true
		for _, v := range f.Values {
			if v.Op == ssa.OpCall {
				visit(g.Callee(v))
			}
		}
		delete(a.visiting, f)
		done[f] = true
		a.summaries[f] = a.evalFunction(f, nil, true, 0)
		a.Stats.Functions++
	}
	for _, f := range g.Prog.Order {
		visit(f)
	}
	for v, iv := range a.vals {
		a.Stats.Vertices++
		if !iv.IsTopFor(width(v)) {
			a.Stats.NonTrivial++
		}
	}
	for _, z := range a.rootZone {
		a.Stats.ZoneEdges += len(z.edges)
	}
	for _, z := range a.guardZone {
		a.Stats.ZoneEdges += len(z.edges)
	}
	for _, st := range a.strides {
		if !st.IsTop() {
			a.Stats.StrideFacts++
		}
	}
	return a
}

// RemainingBudget exposes the instantiation budget left after analysis,
// for tests asserting that no-information calls do not consume it.
func (a *Analysis) RemainingBudget() int { return a.budget }

// pollStop builds a cheap latching stop predicate over ctx: the context
// is consulted every 64th call, and once cancellation is observed the
// predicate stays true without touching the context again. Nil ctx
// yields a nil predicate (never stop).
func pollStop(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	n, hit := 0, false
	return func() bool {
		if hit {
			return true
		}
		n++
		if n&63 != 0 {
			return false
		}
		hit = ctx.Err() != nil
		return hit
	}
}

// zoneOf returns the zone valid whenever v's guard chain holds: the
// environment of v's innermost guard, or the function root zone for
// unguarded vertices. Nil when the zone domain is disabled.
func (a *Analysis) zoneOf(v *ssa.Value) *dbm[*ssa.Value] {
	if v.Guard != nil {
		return a.guardZone[v.Guard]
	}
	return a.rootZone[v.Fn]
}

// ZoneFacts returns the difference-bound facts proven to hold whenever v's
// guard chain holds, for the differential soundness tests. A nil endpoint
// in a fact stands for the constant zero.
func (a *Analysis) ZoneFacts(v *ssa.Value) []DiffFact {
	z := a.zoneOf(v)
	if z == nil || z.dead {
		return nil
	}
	out := make([]DiffFact, 0, len(z.edges))
	for k, c := range z.edges {
		out = append(out, DiffFact{X: k.x, Y: k.y, C: c})
	}
	return out
}

// DiffBound returns the tightest proven upper bound on x − y valid under
// the guard chains of both vertices, consulting the zone of each. ok is
// false when the domain is off or no bound is known.
func (a *Analysis) DiffBound(x, y *ssa.Value) (c int64, ok bool) {
	if x == y || x.Op == ssa.OpConst || y.Op == ssa.OpConst ||
		width(x) != 32 || width(y) != 32 {
		return 0, false
	}
	for _, z := range [2]*dbm[*ssa.Value]{a.zoneOf(x), a.zoneOf(y)} {
		if z == nil || z.dead {
			continue
		}
		if d, found := z.diff(x, 0, y, 0); found && (!ok || d < c) {
			c, ok = d, true
		}
	}
	return c, ok
}

// IntervalOf returns the invariant interval of a vertex.
func (a *Analysis) IntervalOf(v *ssa.Value) (Interval, bool) {
	iv, ok := a.vals[v]
	return iv, ok
}

// StrideOf returns the invariant stride of a vertex, valid whenever its
// guard chain holds. ok is false when the congruence domain is disabled
// or the vertex was never analyzed.
func (a *Analysis) StrideOf(v *ssa.Value) (Stride, bool) {
	st, ok := a.strides[v]
	return st, ok
}

// strideInvariantOf returns v's whole-program stride, defaulting to top.
func (a *Analysis) strideInvariantOf(v *ssa.Value) Stride {
	if v.Op == ssa.OpConst {
		return SingleStride(SignExt(v.Const, width(v)))
	}
	if st, ok := a.strides[v]; ok {
		return st
	}
	return TopStride()
}

// StrideFact returns the exportable congruence of an integer vertex:
// v ≡ r (mod m) with m >= 2 and 0 <= r < m, over the MATHEMATICAL value
// of v. ok is false for constants, top, bottom, and singleton strides
// (singletons already export as bounds). Encoding the fact over machine
// arithmetic as URem(v, m) == r is exact only when m divides 2^bits —
// with m below 2^bits, or v would reduce modulo zero — or v is proven
// non-negative with m in range; the caller must add those side
// conditions at v's own width (see fusioncore's residual export).
func (a *Analysis) StrideFact(v *ssa.Value) (m, r int64, ok bool) {
	if width(v) == 1 || v.Op == ssa.OpConst {
		return 0, 0, false
	}
	st, found := a.strides[v]
	if !found || st.IsBottom() || st.S < 2 {
		return 0, 0, false
	}
	return st.S, st.B, true
}

// Bounds returns the exportable signed bounds of an integer vertex at its
// own width: ok is false for booleans, constants, unanalyzed or top
// vertices (top judged per width), and for bottom (unreachable) vertices,
// which the refutation tier handles.
func (a *Analysis) Bounds(v *ssa.Value) (lo, hi int64, ok bool) {
	if width(v) == 1 || v.Op == ssa.OpConst {
		return 0, 0, false
	}
	iv, found := a.vals[v]
	if !found || iv.IsTopFor(width(v)) || iv.IsBottom() {
		return 0, 0, false
	}
	return iv.Lo, iv.Hi, true
}

// Annotation renders a vertex's abstract facts for graph dumps: the
// interval when nontrivial, the stride when a proper congruence, and up
// to three difference bounds from the vertex's guard environment —
// sorted, so DOT output stays byte-identical across runs. Empty for
// vertices without any fact.
func (a *Analysis) Annotation(v *ssa.Value) string {
	var parts []string
	iv, ok := a.vals[v]
	if ok && !iv.IsTopFor(width(v)) {
		parts = append(parts, iv.String())
	}
	if st, ok := a.strides[v]; ok && !st.IsBottom() && st.S >= 2 {
		parts = append(parts, st.String())
	}
	if width(v) == 32 && v.Op != ssa.OpConst {
		var rel []string
		for _, d := range a.ZoneFacts(v) {
			// Only proper relational facts with v on the left: bounds
			// against the zero node restate the interval.
			if d.X != v || d.Y == nil {
				continue
			}
			rel = append(rel, fmt.Sprintf("%s−%s≤%d", zoneName(d.X), zoneName(d.Y), d.C))
		}
		sort.Strings(rel)
		if len(rel) > 3 {
			rel = rel[:3]
		}
		parts = append(parts, rel...)
	}
	return strings.Join(parts, " ")
}

// zoneName labels a DBM endpoint for annotations; nil is the zero node.
func zoneName(x *ssa.Value) string {
	if x == nil {
		return "0"
	}
	if x.Name != "" {
		return x.Name
	}
	return fmt.Sprintf("v%d", x.ID)
}

// evalFunction evaluates f's body with the given argument intervals (nil
// means all top). With record set, per-vertex results are stored as the
// whole-program invariants. f.Values is in construction (topological)
// order and normalized programs are loop-free, so a single forward pass
// reaches the fixpoint.
func (a *Analysis) evalFunction(f *ssa.Function, args []Interval, record bool, depth int) Interval {
	local := make(map[*ssa.Value]Interval, len(f.Values))
	// The stride domain is only tracked in the record pass: instantiation
	// passes re-evaluate intervals per call site, where skipping the
	// product merely costs precision, never soundness.
	stride := a.stride && record
	var localSt map[*ssa.Value]Stride
	if stride {
		localSt = make(map[*ssa.Value]Stride, len(f.Values))
	}
	ref := newRefiner(local, localSt, a.zone, stride, a.stop)

	stopped := false
	for _, v := range f.Values {
		if !stopped && a.stop != nil && a.stop() {
			stopped = true
		}
		if stopped {
			// Cancelled: the remaining vertices get the explicit top
			// interval — never the zero value, whose [0, 0] would be an
			// unsound constant claim — and no further facts are derived.
			iv := Top(width(v))
			local[v] = iv
			if record {
				a.vals[v] = iv
			}
			if stride {
				localSt[v] = TopStride()
				a.strides[v] = TopStride()
			}
			continue
		}
		look := func(x *ssa.Value) Interval {
			return ref.lookup(x, v.Guard)
		}
		var iv Interval
		var st Stride
		if v.Guard != nil && ref.contradicted(v.Guard) {
			iv = Bottom() // the guard chain can never hold: dead code
			st = BotStride()
		} else {
			iv = a.transfer(v, f, args, look, depth)
			if stride {
				lookSt := func(x *ssa.Value) Stride {
					return ref.lookupSt(x, v.Guard)
				}
				iv, st = reduce(iv, stFitWidth(a.strideTransfer(v, lookSt, look), width(v)))
			}
		}
		local[v] = iv
		if stride {
			localSt[v] = st
			a.strides[v] = st
		}
		ref.noteDef(v)
		if record {
			a.vals[v] = iv
		}
	}
	if record && a.zone {
		// The zones are valid for any arguments: the record pass runs with
		// top parameters, so every recorded fact is a whole-program
		// invariant under its guard chain.
		a.rootZone[f] = ref.empty.z
		for g, env := range ref.envs {
			a.guardZone[g] = env.z
		}
	}
	if stride && f.Ret != nil {
		a.stSummaries[f] = localSt[f.Ret]
	}
	if f.Ret == nil {
		return Top(32)
	}
	return local[f.Ret]
}

// strideTransfer evaluates one vertex in the congruence domain; the
// interval lookup supplies the no-overflow proofs the stride transfers
// need. Operators outside the arithmetic fragment stay top.
func (a *Analysis) strideTransfer(v *ssa.Value, lookSt func(*ssa.Value) Stride, look func(*ssa.Value) Interval) Stride {
	switch v.Op {
	case ssa.OpConst:
		return SingleStride(SignExt(v.Const, width(v)))
	case ssa.OpCopy, ssa.OpReturn, ssa.OpBranch:
		return lookSt(v.Args[0])
	case ssa.OpNeg:
		return StNeg(lookSt(v.Args[0]), look(v.Args[0]))
	case ssa.OpIte:
		c := look(v.Args[0])
		switch {
		case c.IsBottom():
			return BotStride()
		case c.Lo == 1:
			return lookSt(v.Args[1])
		case c.Hi == 0:
			return lookSt(v.Args[2])
		default:
			return lookSt(v.Args[1]).Join(lookSt(v.Args[2]))
		}
	case ssa.OpCall:
		return a.strideSummaryOrTop(a.G.Callee(v))
	case ssa.OpBin:
		return a.strideBinTransfer(v, lookSt, look)
	default:
		return TopStride()
	}
}

func (a *Analysis) strideBinTransfer(v *ssa.Value, lookSt func(*ssa.Value) Stride, look func(*ssa.Value) Interval) Stride {
	x, y := v.Args[0], v.Args[1]
	if x == y && v.BinOp == lang.OpSub {
		// Same-operand identity; see binTransfer.
		if lookSt(x).IsBottom() {
			return BotStride()
		}
		return SingleStride(0)
	}
	sx, sy := lookSt(x), lookSt(y)
	ix, iy := look(x), look(y)
	return stBinOp(v.BinOp, sx, sy, ix, iy, width(v))
}

// stBinOp is the width-parametric stride transfer dispatch. The wrapping
// operators (add, sub, mul, shl) are modular, so the caller's stFitWidth
// reduction keeps them sound at narrow widths; unsigned remainder with a
// possibly-negative narrow dividend is the one case whose 32-bit fallback
// (reinterpretation modulo 2^32) does not transfer, so it gives up.
func stBinOp(op lang.BinOp, sx, sy Stride, ix, iy Interval, w int) Stride {
	if w > 1 && w < 32 && op == lang.OpRem && !ix.IsBottom() && ix.Lo < 0 {
		return TopStride()
	}
	switch op {
	case lang.OpAdd:
		return StAdd(sx, sy, ix, iy)
	case lang.OpSub:
		return StSub(sx, sy, ix, iy)
	case lang.OpMul:
		return StMul(sx, sy, ix, iy)
	case lang.OpShl:
		return StShl(sx, sy, ix, iy)
	case lang.OpDiv:
		return StUDiv(sx, sy, ix, iy)
	case lang.OpRem:
		return StURem(sx, sy, ix, iy)
	default:
		return TopStride()
	}
}

func (a *Analysis) strideSummaryOrTop(f *ssa.Function) Stride {
	if st, ok := a.stSummaries[f]; ok {
		return st
	}
	return TopStride()
}

// transfer evaluates one vertex given an operand-lookup function that
// applies the vertex's guard-chain refinements.
func (a *Analysis) transfer(v *ssa.Value, f *ssa.Function, args []Interval, look func(*ssa.Value) Interval, depth int) Interval {
	switch v.Op {
	case ssa.OpConst:
		return SingleW(v.Const, width(v))
	case ssa.OpParam:
		idx := pdg.ParamIndex(v)
		if args != nil && idx >= 0 && idx < len(args) {
			return args[idx]
		}
		return Top(width(v))
	case ssa.OpCopy, ssa.OpReturn, ssa.OpBranch:
		return look(v.Args[0])
	case ssa.OpNot:
		return NotBool(look(v.Args[0]))
	case ssa.OpNeg:
		return fitWidth(Neg(look(v.Args[0])), width(v))
	case ssa.OpIte:
		c := look(v.Args[0])
		switch {
		case c.IsBottom():
			return Bottom()
		case c.Lo == 1:
			return look(v.Args[1])
		case c.Hi == 0:
			return look(v.Args[2])
		default:
			return look(v.Args[1]).Join(look(v.Args[2]))
		}
	case ssa.OpCall:
		callee := a.G.Callee(v)
		callArgs := make([]Interval, len(v.Args))
		for i, x := range v.Args {
			callArgs[i] = look(x)
		}
		return a.evalCall(callee, callArgs, depth)
	case ssa.OpExtern:
		return Top(width(v))
	case ssa.OpBin:
		return a.binTransfer(v, look)
	default:
		return Top(width(v))
	}
}

// binTransfer mirrors cond.BinTerm's operator semantics on intervals,
// including the same-operand identities the bit-level encoding enjoys
// (x - x = 0, x ^ x = 0, x == x, ...), which interval arithmetic cannot
// see through correlation.
func (a *Analysis) binTransfer(v *ssa.Value, look func(*ssa.Value) Interval) Interval {
	x, y := v.Args[0], v.Args[1]
	if x == y {
		switch v.BinOp {
		case lang.OpSub, lang.OpBitXor:
			if look(x).IsBottom() {
				return Bottom()
			}
			return Interval{0, 0}
		case lang.OpEq, lang.OpLe, lang.OpGe:
			if look(x).IsBottom() {
				return Bottom()
			}
			return Interval{1, 1}
		case lang.OpNe, lang.OpLt, lang.OpGt:
			if look(x).IsBottom() {
				return Bottom()
			}
			return Interval{0, 0}
		case lang.OpAnd, lang.OpOr, lang.OpBitAnd, lang.OpBitOr:
			return look(x)
		}
	}
	l, r := look(x), look(y)
	isBool := v.Type == lang.TypeBool && x.Type == lang.TypeBool
	return binInterval(v.BinOp, l, r, isBool, width(v))
}

// unsignedFlavored reports the operators whose interval transfers reason
// about 32-bit unsigned views or bit patterns.
func unsignedFlavored(op lang.BinOp) bool {
	switch op {
	case lang.OpDiv, lang.OpRem, lang.OpShl, lang.OpShr,
		lang.OpBitAnd, lang.OpBitOr, lang.OpBitXor:
		return true
	}
	return false
}

// binInterval is the width-parametric interval transfer for one binary
// operator: w is the RESULT width (1 for comparisons and boolean
// operators). The comparison transfers are width-independent given
// width-correct operand intervals (all comparisons are signed at the
// operands' width); the arithmetic transfers compute over mathematical
// integers and are fitted to the result width afterwards; the
// unsigned/bit-pattern transfers are only exact at a narrow width when
// both operand patterns coincide with their values, i.e. both operands
// are provably non-negative in the narrow range.
func binInterval(op lang.BinOp, l, r Interval, isBool bool, w int) Interval {
	if w > 1 && w < 32 && unsignedFlavored(op) {
		if l.IsBottom() || r.IsBottom() {
			return Bottom()
		}
		if !l.Within(0, maxFor(w)) || !r.Within(0, maxFor(w)) {
			return Top(w)
		}
	}
	var out Interval
	switch op {
	case lang.OpAdd:
		out = Add(l, r)
	case lang.OpSub:
		out = Sub(l, r)
	case lang.OpMul:
		out = Mul(l, r)
	case lang.OpDiv:
		out = UDiv(l, r)
	case lang.OpRem:
		out = URem(l, r)
	case lang.OpEq:
		out = Eq(l, r)
	case lang.OpNe:
		out = NotBool(Eq(l, r))
	case lang.OpLt:
		out = Slt(l, r)
	case lang.OpLe:
		out = Sle(l, r)
	case lang.OpGt:
		out = Slt(r, l)
	case lang.OpGe:
		out = Sle(r, l)
	case lang.OpAnd, lang.OpBitAnd:
		if isBool {
			out = AndBool(l, r)
		} else {
			out = BitAnd(l, r)
		}
	case lang.OpOr, lang.OpBitOr:
		if isBool {
			out = OrBool(l, r)
		} else {
			out = BitOr(l, r)
		}
	case lang.OpBitXor:
		out = BitXor(l, r)
	case lang.OpShl:
		out = Shl(l, r)
	case lang.OpShr:
		out = Lshr(l, r)
	default:
		out = Top(w)
	}
	return fitWidth(out, w)
}

// evalCall resolves a call vertex: the callee body is re-evaluated with
// the actual argument intervals when they carry information (memoized and
// budgeted), otherwise the top-parameter summary answers directly.
func (a *Analysis) evalCall(callee *ssa.Function, args []Interval, depth int) Interval {
	if callee.Ret == nil {
		return Top(32)
	}
	if a.visiting[callee] || depth >= maxInstDepth {
		return a.summaryOrTop(callee)
	}
	allTop := true
	for i, iv := range args {
		// Width-aware: a boolean argument's [0, 1] is its lattice top and
		// carries no information, so it must not trigger an instantiation.
		if i < len(callee.Params) && !iv.IsTopFor(width(callee.Params[i])) {
			allTop = false
			break
		}
	}
	if allTop {
		return a.summaryOrTop(callee)
	}
	key := instCacheKey{f: callee, args: intervalKey(args)}
	if iv, ok := a.instMemo[key]; ok {
		a.Stats.CacheHits++
		return iv
	}
	if a.budget <= 0 {
		return a.summaryOrTop(callee)
	}
	a.budget--
	a.Stats.Instantiations++
	a.visiting[callee] = true
	iv := a.evalFunction(callee, args, false, depth+1)
	delete(a.visiting, callee)
	// Stay within the top-parameter summary: the instantiation can only
	// sharpen it.
	iv = iv.Meet(a.summaryOrTop(callee))
	a.instMemo[key] = iv
	return iv
}

func (a *Analysis) summaryOrTop(f *ssa.Function) Interval {
	if iv, ok := a.summaries[f]; ok {
		return iv
	}
	if f.Ret != nil {
		return Top(width(f.Ret))
	}
	return Top(32)
}

func intervalKey(args []Interval) string {
	var b strings.Builder
	for _, iv := range args {
		fmt.Fprintf(&b, "%d:%d;", iv.Lo, iv.Hi)
	}
	return b.String()
}
