package absint_test

import (
	"context"
	"strings"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/driver"
)

const paritySrc = `
fun f() {
    var n: int = user_input();
    if (n % 2 == 1) {
        var y: int = n + 2;
        send(y);
    }
    var m: int = user_input();
    if (0 <= m && m < 8) {
        var z: int = m;
        send(z);
    }
}
`

// TestAnnotationRendersFacts checks the graph-dump annotation strings:
// a guard-refined congruence renders as "≡b mod s", an interval as its
// range, and relational guards contribute difference-bound facts.
func TestAnnotationRendersFacts(t *testing.T) {
	g := buildGraph(t, paritySrc)
	a := absint.Analyze(g)
	y := findValue(t, g, "f", "y")
	ann := a.Annotation(y)
	if !strings.Contains(ann, "≡1 mod 2") {
		t.Errorf("y annotation %q lacks the parity congruence ≡1 mod 2", ann)
	}
	z := findValue(t, g, "f", "z")
	if zann := a.Annotation(z); !strings.Contains(zann, "[0,7]") {
		t.Errorf("z annotation %q lacks the guard interval [0,7]", zann)
	}
}

// TestAnnotationZoneFactFormat checks the x−y≤c rendering of relational
// facts on a dynamically-bounded guard.
func TestAnnotationZoneFactFormat(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var i: int = user_input();
    var m: int = user_input();
    if (i < m) {
        var y: int = i;
        send(y);
    }
}`)
	a := absint.Analyze(g)
	y := findValue(t, g, "f", "y")
	ann := a.Annotation(y)
	if !strings.Contains(ann, "−") || !strings.Contains(ann, "≤") {
		t.Errorf("y annotation %q lacks a difference bound", ann)
	}
}

// TestDOTCarriesStrideFacts compiles through the driver and checks the
// annotated DOT dump carries the congruence invariant into node labels,
// and drops it under -absint=nostride.
func TestDOTCarriesStrideFacts(t *testing.T) {
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: paritySrc},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	dot := p.DOT()
	if !strings.HasPrefix(dot, "digraph pdg {") {
		t.Fatalf("not a DOT dump:\n%.120s", dot)
	}
	if !strings.Contains(dot, "≡1 mod 2") {
		t.Error("annotated DOT lacks the stride fact ≡1 mod 2")
	}
	ns, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: paritySrc},
		driver.Options{Prelude: true, Absint: driver.AbsintNoStride})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ns.DOT(), "mod") {
		t.Error("nostride DOT still renders congruence facts")
	}
}
