package absint_test

import (
	"context"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/pdg"
	"fusion/internal/sparse"
)

func buildGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

// findNamed returns the invariant of the (unique) value defining the named
// source variable in the named function.
func findNamed(t *testing.T, g *pdg.Graph, a *absint.Analysis, fn, name string) absint.Interval {
	t.Helper()
	f := g.Prog.Funcs[fn]
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	var out absint.Interval
	found := false
	for _, v := range f.Values {
		if v.Name == name {
			// Last definition wins; single-assignment names have one.
			if iv, ok := a.IntervalOf(v); ok {
				out, found = iv, true
			}
		}
	}
	if !found {
		t.Fatalf("no interval for %s.%s", fn, name)
	}
	return out
}

// --- Interval domain: transfers over-approximate the concrete semantics ---

// concreteBin mirrors interp.binOp / smt.foldBinary for the operators the
// domain models.
func concreteBin(op string, l, r uint32) uint32 {
	b2u := func(b bool) uint32 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "/":
		if r == 0 {
			return ^uint32(0)
		}
		return l / r
	case "%":
		if r == 0 {
			return l
		}
		return l % r
	case "<":
		return b2u(int32(l) < int32(r))
	case "<=":
		return b2u(int32(l) <= int32(r))
	case "==":
		return b2u(l == r)
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	default:
		panic("op")
	}
}

func TestTransfersSound(t *testing.T) {
	// A pool of sample values hitting the interesting corners.
	samples := []uint32{0, 1, 2, 3, 5, 13, 99, 100, 255, 256, 1 << 20,
		0x7fffffff, 0x80000000, 0x80000001, ^uint32(0), ^uint32(0) - 4}
	// Intervals covering each pair of samples (hull) plus singletons.
	var ivs []absint.Interval
	for _, s := range samples {
		ivs = append(ivs, absint.Single(s))
	}
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j += 3 {
			ivs = append(ivs, absint.Single(samples[i]).Join(absint.Single(samples[j])))
		}
	}
	transfers := map[string]func(a, b absint.Interval) absint.Interval{
		"+":  absint.Add,
		"-":  absint.Sub,
		"*":  absint.Mul,
		"/":  absint.UDiv,
		"%":  absint.URem,
		"<":  absint.Slt,
		"<=": absint.Sle,
		"==": absint.Eq,
		"&":  absint.BitAnd,
		"|":  absint.BitOr,
		"^":  absint.BitXor,
	}
	inIv := func(iv absint.Interval, v uint32) bool {
		return iv.Contains(int64(int32(v)))
	}
	for op, tf := range transfers {
		for _, a := range ivs {
			for _, b := range ivs {
				out := tf(a, b)
				// Every concrete pair drawn from the operand intervals must
				// land inside the transfer result.
				for _, x := range samples {
					if !inIv(a, x) {
						continue
					}
					for _, y := range samples {
						if !inIv(b, y) {
							continue
						}
						got := concreteBin(op, x, y)
						if !inIv(out, got) {
							t.Fatalf("%s: %v op %v = %v, but %d %s %d = %d escapes",
								a, op, b, out, int32(x), op, int32(y), int32(got))
						}
					}
				}
			}
		}
	}
}

func TestIntervalLattice(t *testing.T) {
	if !absint.Bottom().IsBottom() {
		t.Error("Bottom not bottom")
	}
	if !absint.Top(32).IsTop() || absint.Top(1) != (absint.Interval{0, 1}) {
		t.Error("Top wrong")
	}
	a := absint.Interval{3, 10}
	if a.Join(absint.Bottom()) != a || absint.Bottom().Join(a) != a {
		t.Error("join with bottom not identity")
	}
	if m := a.Meet(absint.Interval{8, 20}); m != (absint.Interval{8, 10}) {
		t.Errorf("meet: got %v", m)
	}
	if !a.Meet(absint.Interval{11, 20}).IsBottom() {
		t.Error("disjoint meet not bottom")
	}
	if !(absint.Interval{1, 13}).ExcludesZero() || (absint.Interval{-1, 1}).ExcludesZero() {
		t.Error("ExcludesZero wrong")
	}
	if !(absint.Interval{0, 99}).Within(0, 255) || (absint.Interval{-1, 99}).Within(0, 255) {
		t.Error("Within wrong")
	}
}

// --- Whole-program analysis ---

func TestAnalyzeConstantFolding(t *testing.T) {
	g := buildGraph(t, `
fun f(): int {
    var a: int = 5;
    var b: int = a + 2;
    return b * 3;
}`)
	a := absint.Analyze(g)
	if iv := findNamed(t, g, a, "f", "b"); iv != (absint.Interval{7, 7}) {
		t.Errorf("b: got %v, want [7,7]", iv)
	}
	f := g.Prog.Funcs["f"]
	if iv, ok := a.IntervalOf(f.Ret); !ok || iv != (absint.Interval{21, 21}) {
		t.Errorf("ret: got %v", iv)
	}
}

func TestAnalyzeModRange(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var d: int = n % 13 + 1;
    var x: int = 100 / d;
    send(x);
}`)
	a := absint.Analyze(g)
	d := findNamed(t, g, a, "f", "d")
	if !d.ExcludesZero() || !d.Within(1, 13) {
		t.Errorf("d: got %v, want within [1,13]", d)
	}
}

func TestAnalyzeGuardRefinement(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    if (n > 10) {
        if (n < 5) {
            var dead: int = n + 1;
            send(dead);
        }
        var live: int = n - 10;
        send(live);
    }
}`)
	a := absint.Analyze(g)
	if iv := findNamed(t, g, a, "f", "dead"); !iv.IsBottom() {
		t.Errorf("dead: got %v, want bottom", iv)
	}
	live := findNamed(t, g, a, "f", "live")
	if live.IsBottom() || live.Lo < 1 {
		t.Errorf("live: got %v, want lower bound >= 1", live)
	}
}

func TestAnalyzeSameOperand(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var z: int = n - n;
    send(z);
}`)
	a := absint.Analyze(g)
	if iv := findNamed(t, g, a, "f", "z"); iv != (absint.Interval{0, 0}) {
		t.Errorf("z: got %v, want [0,0]", iv)
	}
}

func TestAnalyzeInterprocedural(t *testing.T) {
	g := buildGraph(t, `
fun clampish(v: int): int {
    var r: int = v % 10 + 1;
    return r;
}
fun f() {
    var n: int = user_input();
    var d: int = clampish(n);
    var x: int = 100 / d;
    send(x);
}`)
	a := absint.Analyze(g)
	d := findNamed(t, g, a, "f", "d")
	if !d.ExcludesZero() {
		t.Errorf("d: got %v, want nonzero (callee summary)", d)
	}
}

// --- Disjunctive guard facts ---

func TestDeriveDisjunction(t *testing.T) {
	// x < 3 || x < 5 must still bound x (to the weaker disjunct) instead of
	// deriving nothing: each disjunct is derived separately and joined.
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    if (n < 3 || n < 5) {
        var y: int = n;
        send(y);
    }
}`)
	a := absint.Analyze(g)
	y := findNamed(t, g, a, "f", "y")
	if y.Hi != 4 {
		t.Errorf("y: got %v, want upper bound 4 (join of <3 and <5)", y)
	}
}

func TestDeriveNegatedConjunction(t *testing.T) {
	// The else branch of n < 3 && n < 5 asserts ¬(a ∧ b) = ¬a ∨ ¬b, the
	// other disjunctive polarity: the join of n >= 3 and n >= 5 is n >= 3.
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    if (n < 3 && n < 5) {
        send(n);
    } else {
        var y: int = n;
        send(y);
    }
}`)
	a := absint.Analyze(g)
	y := findNamed(t, g, a, "f", "y")
	if y.Lo != 3 {
		t.Errorf("y: got %v, want lower bound 3 (join of >=3 and >=5)", y)
	}
}

func TestDeriveDisjunctionDeadBranch(t *testing.T) {
	// When one disjunct contradicts the outer guard chain, the other
	// disjunct's facts hold outright.
	g := buildGraph(t, `
fun f() {
    var k: int = user_input();
    if (k < 10) {
        if (k > 20 || k < 5) {
            var y: int = k;
            send(y);
        }
    }
}`)
	a := absint.Analyze(g)
	y := findNamed(t, g, a, "f", "y")
	if y.Hi != 4 {
		t.Errorf("y: got %v, want upper bound 4 (k > 20 is dead under k < 10)", y)
	}
}

// --- Call instantiation budget ---

func TestBoolTopArgumentBurnsNoBudget(t *testing.T) {
	// A boolean argument's [0, 1] is its lattice top: a call whose arguments
	// are all top for their widths carries no information and must answer
	// from the summary without consuming the instantiation budget.
	g := buildGraph(t, `
fun pick(b: bool): int {
    if (b) {
        return 1;
    }
    return 0;
}
fun f() {
    var n: int = user_input();
    var m: int = user_input();
    var q: int = pick(n < m);
    send(q);
}`)
	a := absint.Analyze(g)
	if a.Stats.Instantiations != 0 || a.Stats.CacheHits != 0 {
		t.Errorf("all-top call instantiated: %d instantiations, %d cache hits",
			a.Stats.Instantiations, a.Stats.CacheHits)
	}
	// Full budget reference: a program with no calls at all.
	g0 := buildGraph(t, `
fun f() {
    var n: int = user_input();
    send(n);
}`)
	if want := absint.Analyze(g0).RemainingBudget(); a.RemainingBudget() != want {
		t.Errorf("budget consumed: %d remaining, want %d", a.RemainingBudget(), want)
	}
	// Control: an informative integer argument must still instantiate.
	g2 := buildGraph(t, `
fun idf(x: int): int {
    return x;
}
fun h() {
    var q: int = idf(7);
    send(q);
}`)
	a2 := absint.Analyze(g2)
	if a2.Stats.Instantiations == 0 {
		t.Error("informative call not instantiated: all-top check too eager")
	}
	if iv := findNamed(t, g2, a2, "h", "q"); iv != (absint.Interval{7, 7}) {
		t.Errorf("q: got %v, want [7,7]", iv)
	}
}

// --- Refutation tier ---

// divCandidates enumerates CWE-369 candidates and pairs each with its
// constrained slice.
func divCandidates(t *testing.T, g *pdg.Graph) []*pdg.Slice {
	t.Helper()
	cands := sparse.NewEngine(g).Run(checker.DivByZero())
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	var out []*pdg.Slice
	for _, c := range cands {
		sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
		c.ApplyConstraint(sl, 0)
		out = append(out, sl)
	}
	return out
}

func TestRefuteModDivisor(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var d: int = n % 13 + 1;
    var x: int = 100 / d;
    send(x);
}`)
	a := absint.Analyze(g)
	for _, sl := range divCandidates(t, g) {
		if !a.RefuteSlice(sl) {
			t.Error("mod-range divisor: want refuted")
		}
	}
}

func TestRefuteGuardContradiction(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    if (n > 10) {
        if (n < 5) {
            var x: int = 100 / n;
            send(x);
        }
    }
}`)
	a := absint.Analyze(g)
	for _, sl := range divCandidates(t, g) {
		if !a.RefuteSlice(sl) {
			t.Error("contradictory guards: want refuted")
		}
	}
}

func TestRefuteGuardedDivisor(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    if (n > 0) {
        var x: int = 100 / n;
        send(x);
    }
}`)
	a := absint.Analyze(g)
	for _, sl := range divCandidates(t, g) {
		if !a.RefuteSlice(sl) {
			t.Error("positive-guarded divisor: want refuted")
		}
	}
}

func TestNoRefuteFeasible(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var x: int = 100 / n;
    send(x);
}`)
	a := absint.Analyze(g)
	for _, sl := range divCandidates(t, g) {
		if a.RefuteSlice(sl) {
			t.Error("feasible divisor refuted: unsound")
		}
	}
}

func TestRefuteParity(t *testing.T) {
	// 2n + 1 is never zero: intervals cannot see parity, but the
	// congruence tier proves d ≡ 1 (mod 2) — a fact that survives 32-bit
	// wrap — and refutes the query without the zone tier. With the stride
	// domain disabled, absint must stay silent and leave this to the
	// bit-precise pipeline.
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var d: int = n * 2 + 1;
    var x: int = 100 / d;
    send(x);
}`)
	a := absint.Analyze(g)
	noStride := absint.AnalyzeWith(g, absint.Config{DisableStride: true})
	for _, sl := range divCandidates(t, g) {
		refuted, byStride, byZone := a.RefuteSliceTiered(sl)
		if !refuted || !byStride || byZone {
			t.Errorf("parity divisor: got (refuted=%v, byStride=%v, byZone=%v), want (true, true, false)",
				refuted, byStride, byZone)
		}
		if noStride.RefuteSlice(sl) {
			t.Error("parity divisor refuted without the stride domain: intervals+zone cannot prove this")
		}
	}
}

func TestRefuteIndexInBounds(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var i: int = n % 100;
    var x: int = buf_read(i);
    send(x);
}`)
	a := absint.Analyze(g)
	cands := sparse.NewEngine(g).Run(checker.IndexOOB())
	if len(cands) == 0 {
		t.Fatal("no cwe-125 candidates")
	}
	for _, c := range cands {
		sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
		c.ApplyConstraint(sl, 0)
		if !a.RefuteSlice(sl) {
			t.Error("in-bounds index: want refuted")
		}
		if !a.PrunePath(c.Path, c.Constraints(0)...) {
			t.Error("in-bounds index: want pruned by oracle")
		}
	}
}

func TestNoPruneFeasibleIndex(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var x: int = buf_read(n);
    send(x);
}`)
	a := absint.Analyze(g)
	cands := sparse.NewEngine(g).Run(checker.IndexOOB())
	if len(cands) == 0 {
		t.Fatal("no cwe-125 candidates")
	}
	for _, c := range cands {
		if a.PrunePath(c.Path, c.Constraints(0)...) {
			t.Error("unconstrained index pruned: unsound")
		}
	}
}

func TestOraclePrunesDeadCode(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    if (n > 10) {
        if (n < 5) {
            var x: int = 100 / n;
            send(x);
        }
    }
}`)
	a := absint.Analyze(g)
	eng := sparse.NewEngine(g)
	plain := eng.Run(checker.DivByZero())
	if len(plain) == 0 {
		t.Fatal("no candidates without oracle")
	}
	eng2 := sparse.NewEngine(g)
	eng2.Oracle = func(c sparse.Candidate) bool {
		return a.PrunePath(c.Path, c.Constraints(0)...)
	}
	pruned := eng2.Run(checker.DivByZero())
	if len(pruned) != 0 || eng2.Pruned != len(plain) {
		t.Errorf("dead-code candidates: got %d left, %d pruned; want 0 left, %d pruned",
			len(pruned), eng2.Pruned, len(plain))
	}
}
