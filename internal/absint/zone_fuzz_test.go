package absint_test

import (
	"context"
	"fusion/internal/driver"
	"math/rand"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/ssa"
)

// ssaExec executes gated SSA concretely, drawing extern results from an rng
// and reporting every completed function activation's environment. It is
// the witness-trace generator for the zone differential fuzz: any
// activation it produces is a real execution of the normalized program.
type ssaExec struct {
	prog   *ssa.Program
	rng    *rand.Rand
	budget int // dynamic value-evaluation budget; exhausted → trial aborted
	onEnv  func(f *ssa.Function, env map[*ssa.Value]uint32)
}

func (x *ssaExec) run(f *ssa.Function, args []uint32) (uint32, bool) {
	env := make(map[*ssa.Value]uint32, len(f.Values))
	for _, v := range f.Values {
		x.budget--
		if x.budget < 0 {
			return 0, false
		}
		var r uint32
		switch v.Op {
		case ssa.OpConst:
			r = v.Const
		case ssa.OpParam:
			if idx := pdg.ParamIndex(v); idx >= 0 && idx < len(args) {
				r = args[idx]
			}
		case ssa.OpCopy, ssa.OpReturn, ssa.OpBranch:
			r = env[v.Args[0]]
		case ssa.OpNot:
			r = env[v.Args[0]] ^ 1
		case ssa.OpNeg:
			r = -env[v.Args[0]]
		case ssa.OpIte:
			if env[v.Args[0]] == 1 {
				r = env[v.Args[1]]
			} else {
				r = env[v.Args[2]]
			}
		case ssa.OpBin:
			r = execBin(v.BinOp, env[v.Args[0]], env[v.Args[1]])
		case ssa.OpCall:
			callee := x.prog.Funcs[v.Callee]
			sub := make([]uint32, len(v.Args))
			for i, a := range v.Args {
				sub[i] = env[a]
			}
			ret, ok := x.run(callee, sub)
			if !ok {
				return 0, false
			}
			r = ret
		case ssa.OpExtern:
			// An extern's result is arbitrary; mix magnitudes so guards fire.
			switch x.rng.Intn(3) {
			case 0:
				r = x.rng.Uint32() % 8
			case 1:
				r = x.rng.Uint32() % 64
			default:
				r = x.rng.Uint32()
			}
		}
		env[v] = r
	}
	x.onEnv(f, env)
	if f.Ret == nil {
		return 0, true
	}
	return env[f.Ret], true
}

// execBin mirrors interp.binOp's machine semantics.
func execBin(op lang.BinOp, l, r uint32) uint32 {
	b := func(v bool) uint32 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case lang.OpAdd:
		return l + r
	case lang.OpSub:
		return l - r
	case lang.OpMul:
		return l * r
	case lang.OpDiv:
		if r == 0 {
			return ^uint32(0)
		}
		return l / r
	case lang.OpRem:
		if r == 0 {
			return l
		}
		return l % r
	case lang.OpEq:
		return b(l == r)
	case lang.OpNe:
		return b(l != r)
	case lang.OpLt:
		return b(int32(l) < int32(r))
	case lang.OpLe:
		return b(int32(l) <= int32(r))
	case lang.OpGt:
		return b(int32(l) > int32(r))
	case lang.OpGe:
		return b(int32(l) >= int32(r))
	case lang.OpAnd, lang.OpBitAnd:
		return l & r
	case lang.OpOr, lang.OpBitOr:
		return l | r
	case lang.OpBitXor:
		return l ^ r
	case lang.OpShl:
		if r >= 32 {
			return 0
		}
		return l << r
	case lang.OpShr:
		if r >= 32 {
			return 0
		}
		return l >> r
	}
	panic("execBin: unknown op")
}

// TestZoneFactsHoldOnConcreteTraces is the differential soundness fuzz for
// the zone domain: on generated subjects, every difference-bound fact
// x − y ≤ c recorded for a guard environment must hold — under signed
// interpretation — in every concrete activation whose guard chain holds.
// The recorded intervals are checked the same way.
func TestZoneFactsHoldOnConcreteTraces(t *testing.T) {
	factChecks := 0
	for _, subIdx := range []int{2, 5, 9} {
		info := progen.Subjects[subIdx]
		src, _, _ := info.Build(0.05)
		pr, err := driver.Compile(context.Background(), driver.Source{Name: info.Name, Text: src}, driver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, g := pr.SSA, pr.Graph
		a := absint.Analyze(g)

		signed := func(v uint32) int64 { return int64(int32(v)) }
		check := func(f *ssa.Function, env map[*ssa.Value]uint32) {
			chainHolds := func(guard *ssa.Value) bool {
				for g := guard; g != nil; g = g.Guard {
					if env[g] != 1 {
						return false
					}
				}
				return true
			}
			// One representative vertex per guard environment (nil = root).
			seen := map[*ssa.Value]bool{}
			for _, v := range f.Values {
				if !chainHolds(v.Guard) {
					continue
				}
				// The recorded invariant holds whenever the guard chain does.
				if iv, ok := a.IntervalOf(v); ok {
					if iv.IsBottom() {
						t.Errorf("%s/%s: reachable vertex %s judged dead", info.Name, f.Name, v)
					} else if w := pdg.TypeBits(v.Type); w == 32 || w == 1 {
						if !iv.Contains(signed(env[v])) {
							t.Errorf("%s/%s: %s = %d escapes invariant %v",
								info.Name, f.Name, v, signed(env[v]), iv)
						}
					}
				}
				if seen[v.Guard] {
					continue
				}
				seen[v.Guard] = true
				for _, fact := range a.ZoneFacts(v) {
					var vx, vy int64
					if fact.X != nil {
						vx = signed(env[fact.X])
					}
					if fact.Y != nil {
						vy = signed(env[fact.Y])
					}
					if vx-vy > fact.C {
						t.Errorf("%s/%s: zone fact %s − %s <= %d violated: %d − %d",
							info.Name, f.Name, fact.X, fact.Y, fact.C, vx, vy)
					}
					factChecks++
				}
			}
		}

		rng := rand.New(rand.NewSource(int64(subIdx)*131 + 7))
		for _, f := range p.Order {
			if len(f.Name) < 3 || (f.Name[:3] != "bug" && f.Name[:3] != "fn_") {
				continue
			}
			for trial := 0; trial < 10; trial++ {
				x := &ssaExec{prog: p, rng: rng, budget: 200_000, onEnv: check}
				args := make([]uint32, len(f.Params))
				for i := range args {
					args[i] = rng.Uint32() % 64
				}
				x.run(f, args)
			}
		}
	}
	if factChecks == 0 {
		t.Error("no zone fact was ever exercised: fuzz is vacuous")
	}
	t.Logf("checked %d zone-fact instances", factChecks)
}
