package absint

import (
	"fmt"
)

// Stride is the congruence (modular arithmetic) domain of Granger's
// reduced product with intervals: an element describes a set of
// MATHEMATICAL integers of the form
//
//	S >= 1:  {B + k*S : k ∈ Z}   with 0 <= B < S  (S == 1 is top)
//	S == 0:  the singleton {B}
//	S  < 0:  bottom (no value)
//
// The domain tracks the signed 32-bit values the analysis language
// computes. Machine arithmetic wraps modulo 2^32, which breaks
// congruences over the mathematical integers; every transfer function
// therefore consults the operand INTERVALS (the other half of the
// product) and, when the operation may wrap, weakens its result with
// wrap() — gcd with 2^32 — because a mod-2^k congruence (k <= 32)
// survives wraparound: the machine result m and the mathematical result
// x satisfy m ≡ x (mod 2^32), hence m ≡ x (mod d) for every divisor d
// of 2^32. The same identity makes congruences indifferent to the
// signed/unsigned reinterpretation the language's division and
// remainder perform.
//
// Like Interval, the zero value Stride{} is the singleton {0}, NOT top;
// always build elements with TopStride/BotStride/SingleStride/mkStride.
type Stride struct {
	S, B int64
}

// maxStride caps the modulus the domain will track. 2^32 is exactly the
// wrap modulus, so nothing larger is ever informative for 32-bit
// values; the cap also keeps Meet's CRT arithmetic inside uint64.
const maxStride = int64(1) << 32

// TopStride is the full set Z (every integer is ≡ 0 mod 1).
func TopStride() Stride { return Stride{1, 0} }

// BotStride is the empty set.
func BotStride() Stride { return Stride{-1, 0} }

// SingleStride is the singleton {v}.
func SingleStride(v int64) Stride { return Stride{0, v} }

// mkStride normalizes (s, b) into canonical form: modulus non-negative
// and capped, base reduced into [0, s).
func mkStride(s, b int64) Stride {
	if s < 0 {
		s = -s
	}
	if s > maxStride {
		s = gcd64(s, maxStride)
	}
	if s == 0 {
		return Stride{0, b}
	}
	b %= s
	if b < 0 {
		b += s
	}
	return Stride{s, b}
}

// IsBottom reports the empty set.
func (st Stride) IsBottom() bool { return st.S < 0 }

// IsTop reports the full set Z.
func (st Stride) IsTop() bool { return st.S == 1 }

// Contains reports whether the signed value v lies in the set.
func (st Stride) Contains(v int64) bool {
	switch {
	case st.IsBottom():
		return false
	case st.S == 0:
		return v == st.B
	default:
		r := (v - st.B) % st.S
		return r == 0
	}
}

// ExcludesZero reports that no value in the set is zero — the provably
// non-zero-divisor fact ("n*2+1 is never zero").
func (st Stride) ExcludesZero() bool { return !st.IsBottom() && !st.Contains(0) }

// Join is the lattice join: the coarsest congruence containing both.
func (st Stride) Join(o Stride) Stride {
	if st.IsBottom() {
		return o
	}
	if o.IsBottom() {
		return st
	}
	g := gcd64(gcd64(st.S, o.S), st.B-o.B)
	if g == 0 {
		return st // identical singletons
	}
	return mkStride(g, st.B)
}

// Meet is the lattice meet (set intersection, by CRT). When the exact
// intersection's modulus would exceed maxStride the meet soundly
// over-approximates by keeping one operand (each operand is a superset
// of the intersection).
func (st Stride) Meet(o Stride) Stride {
	if st.IsBottom() || o.IsBottom() {
		return BotStride()
	}
	if st.IsTop() {
		return o
	}
	if o.IsTop() {
		return st
	}
	if st.S == 0 && o.S == 0 {
		if st.B == o.B {
			return st
		}
		return BotStride()
	}
	if st.S == 0 {
		st, o = o, st
	}
	if o.S == 0 {
		if st.Contains(o.B) {
			return o
		}
		return BotStride()
	}
	g := gcd64(st.S, o.S)
	if (st.B-o.B)%g != 0 {
		return BotStride() // x ≡ B1 (mod S1) ∧ x ≡ B2 (mod S2) has no solution
	}
	l := st.S / g * o.S
	if l > maxStride {
		return st // over-approximate: the cap keeps arithmetic exact
	}
	// CRT: x = B1 + S1*t with t ≡ (B2-B1)/g · (S1/g)^-1 (mod S2/g).
	m := o.S / g
	_, inv, _ := extGCD(st.S/g%m, m)
	inv %= m
	if inv < 0 {
		inv += m
	}
	d := (o.B - st.B) / g % m
	if d < 0 {
		d += m
	}
	// d, inv ∈ [0, m), m <= 2^32: the product fits in uint64 exactly.
	t := int64(uint64(d) * uint64(inv) % uint64(m))
	return mkStride(l, st.B+st.S*t)
}

func (st Stride) String() string {
	switch {
	case st.IsBottom():
		return "⊥"
	case st.IsTop():
		return "⊤"
	case st.S == 0:
		return fmt.Sprintf("{%d}", st.B)
	default:
		return fmt.Sprintf("≡%d mod %d", st.B, st.S)
	}
}

// wrapModulus is 2^width, the machine wrap modulus of a bit width
// (2^32 for the full-width types).
func wrapModulus(width int) int64 {
	if width >= 32 {
		return maxStride
	}
	return int64(1) << uint(width)
}

// stFitWidth converts a stride over mathematical results into one valid
// for the width-w machine value. A width-w machine result m and the
// mathematical result x satisfy m ≡ x (mod 2^w), so a singleton maps to
// its exact narrow value and a progression survives as gcd(S, 2^w).
// No-op at full width: the transfers already weaken through wrap().
func stFitWidth(st Stride, width int) Stride {
	if width >= 32 || st.IsBottom() || st.IsTop() {
		return st
	}
	m := wrapModulus(width)
	if st.S == 0 {
		return SingleStride(SignExt(uint32(st.B)&uint32(m-1), width))
	}
	return mkStride(gcd64(st.S, m), st.B)
}

// wrap weakens a mathematical-integer congruence to one that survives
// 2^32 machine wraparound: gcd of the modulus with 2^32. A singleton
// whose concrete value may have wrapped degrades to a mod-2^32 class.
func (st Stride) wrap() Stride {
	if st.IsBottom() || st.IsTop() {
		return st
	}
	if st.S == 0 {
		return mkStride(maxStride, st.B)
	}
	return mkStride(gcd64(st.S, maxStride), st.B)
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// extGCD returns g = gcd(a, b) and Bézout coefficients x, y with
// a*x + b*y = g.
func extGCD(a, b int64) (g, x, y int64) {
	if b == 0 {
		return a, 1, 0
	}
	g, x1, y1 := extGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// safeMul multiplies with an overflow guard; ok is false when the
// product escapes int64 (callers then give up to top).
func safeMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// --- Wrap detection (mirrors the interval transfers' clamp conditions
// and refine.go's noteDef no-overflow proofs) ---

func addMayWrap(ia, ib Interval) bool {
	return ia.Lo+ib.Lo < minI32 || ia.Hi+ib.Hi > maxI32
}

func subMayWrap(ia, ib Interval) bool {
	return ia.Lo-ib.Hi < minI32 || ia.Hi-ib.Lo > maxI32
}

func mulMayWrap(ia, ib Interval) bool {
	p1, p2, p3, p4 := ia.Lo*ib.Lo, ia.Lo*ib.Hi, ia.Hi*ib.Lo, ia.Hi*ib.Hi
	lo := min64(min64(p1, p2), min64(p3, p4))
	hi := max64(max64(p1, p2), max64(p3, p4))
	return lo < minI32 || hi > maxI32
}

// --- Transfer functions ---
//
// Each takes the operand strides AND intervals: the intervals carry the
// no-overflow proofs. All must over-approximate the machine semantics
// of smt.foldBinary / interp.binOp (wrapping add/sub/mul, unsigned
// div/rem).

// StAdd is the stride transfer for 32-bit addition.
func StAdd(a, b Stride, ia, ib Interval) Stride {
	if a.IsBottom() || b.IsBottom() || ia.IsBottom() || ib.IsBottom() {
		return BotStride()
	}
	r := mkStride(gcd64(a.S, b.S), a.B+b.B)
	if a.S == 0 && b.S == 0 {
		r = SingleStride(a.B + b.B)
	}
	if addMayWrap(ia, ib) {
		r = r.wrap()
	}
	return r
}

// StSub is the stride transfer for 32-bit subtraction.
func StSub(a, b Stride, ia, ib Interval) Stride {
	if a.IsBottom() || b.IsBottom() || ia.IsBottom() || ib.IsBottom() {
		return BotStride()
	}
	r := mkStride(gcd64(a.S, b.S), a.B-b.B)
	if a.S == 0 && b.S == 0 {
		r = SingleStride(a.B - b.B)
	}
	if subMayWrap(ia, ib) {
		r = r.wrap()
	}
	return r
}

// StNeg is the stride transfer for two's-complement negation. Machine
// negation is exact modulo 2^32, so a possible wrap (-minI32) only
// costs the wrap weakening.
func StNeg(a Stride, ia Interval) Stride {
	if a.IsBottom() || ia.IsBottom() {
		return BotStride()
	}
	var r Stride
	if a.S == 0 {
		r = SingleStride(-a.B)
	} else {
		r = mkStride(a.S, -a.B)
	}
	if -ia.Lo > maxI32 {
		r = r.wrap()
	}
	return r
}

// StMul is the stride transfer for 32-bit multiplication (Granger):
// (S1·Z + B1)(S2·Z + B2) ⊆ gcd(S1S2, S1B2, S2B1)·Z + B1B2.
func StMul(a, b Stride, ia, ib Interval) Stride {
	if a.IsBottom() || b.IsBottom() || ia.IsBottom() || ib.IsBottom() {
		return BotStride()
	}
	p1, ok1 := safeMul(a.S, b.S)
	p2, ok2 := safeMul(a.S, b.B)
	p3, ok3 := safeMul(b.S, a.B)
	bb, ok4 := safeMul(a.B, b.B)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return TopStride()
	}
	var r Stride
	if a.S == 0 && b.S == 0 {
		r = SingleStride(bb)
	} else {
		r = mkStride(gcd64(gcd64(p1, p2), p3), bb)
	}
	if mulMayWrap(ia, ib) {
		r = r.wrap()
	}
	return r
}

// StShl is the stride transfer for left shift: a constant shift
// k ∈ [0, 31] is multiplication by 2^k.
func StShl(a, b Stride, ia, ib Interval) Stride {
	if a.IsBottom() || b.IsBottom() || ia.IsBottom() || ib.IsBottom() {
		return BotStride()
	}
	if b.S != 0 || b.B < 0 || b.B > 31 {
		return TopStride()
	}
	k := uint(b.B)
	s, okS := safeMul(a.S, 1<<k)
	bb, okB := safeMul(a.B, 1<<k)
	if !okS || !okB {
		return TopStride()
	}
	var r Stride
	if a.S == 0 {
		r = SingleStride(bb)
	} else {
		r = mkStride(s, bb)
	}
	// No wrap only when every lattice point stays in range (mirrors Shl).
	if !(ia.Lo >= 0 && ia.Hi <= maxI32>>k) {
		r = r.wrap()
	}
	return r
}

// StUDiv is the stride transfer for unsigned division. Precise only
// when the divisor is a known constant c >= 1 and the dividend is
// provably non-negative (so its unsigned and signed views coincide):
// a known singleton divides exactly, and a progression divides exactly
// when c divides both modulus and base. Division never wraps.
func StUDiv(a, b Stride, ia, ib Interval) Stride {
	if a.IsBottom() || b.IsBottom() || ia.IsBottom() || ib.IsBottom() {
		return BotStride()
	}
	if b.S != 0 || b.B < 1 || ia.Lo < 0 {
		return TopStride()
	}
	c := b.B
	if a.S == 0 {
		if a.B < 0 {
			return TopStride()
		}
		return SingleStride(a.B / c)
	}
	if a.S%c == 0 && a.B%c == 0 {
		return mkStride(a.S/c, a.B/c)
	}
	return TopStride()
}

// StURem is the stride transfer for unsigned remainder with a known
// constant divisor c >= 1: x ≡ B (mod S) gives x mod c ≡ B (mod
// gcd(S, c)); a dividend that may be negative is first reinterpreted
// through wrap() (x and its unsigned view agree modulo 2^32).
func StURem(a, b Stride, ia, ib Interval) Stride {
	if a.IsBottom() || b.IsBottom() || ia.IsBottom() || ib.IsBottom() {
		return BotStride()
	}
	if b.S != 0 || b.B < 1 {
		return TopStride()
	}
	c := b.B
	if ia.Lo < 0 {
		a = a.wrap()
	}
	if a.S == 0 {
		return SingleStride(a.B % c)
	}
	return mkStride(gcd64(a.S, c), a.B)
}

// reduce is the Granger reduction of the interval × stride product:
// the stride snaps the interval endpoints inward to its nearest lattice
// points, a singleton interval sharpens the stride to a constant, and
// an empty combination bottoms out both halves. Either half at bottom
// means the value set is empty.
func reduce(iv Interval, st Stride) (Interval, Stride) {
	if iv.IsBottom() || st.IsBottom() {
		return Bottom(), BotStride()
	}
	switch {
	case st.S == 0:
		if !iv.Contains(st.B) {
			return Bottom(), BotStride()
		}
		return Interval{st.B, st.B}, st
	case st.S > 1:
		// Snap Lo up and Hi down to the nearest points ≡ B (mod S).
		dlo := (st.B - iv.Lo) % st.S
		if dlo < 0 {
			dlo += st.S
		}
		lo := iv.Lo + dlo
		dhi := (iv.Hi - st.B) % st.S
		if dhi < 0 {
			dhi += st.S
		}
		hi := iv.Hi - dhi
		if lo > hi {
			return Bottom(), BotStride()
		}
		if lo == hi {
			return Interval{lo, hi}, SingleStride(lo)
		}
		return Interval{lo, hi}, st
	default: // top stride
		if iv.Lo == iv.Hi {
			return iv, SingleStride(iv.Lo)
		}
		return iv, st
	}
}
