package absint_test

import (
	"context"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// TestRefutationsAgreeWithSolver is the differential soundness check for
// the interval tier: on generated subjects, every query the abstract
// interpreter refutes (and every candidate the oracle prunes) must be
// judged unsat by the full bit-precise pipeline running without the tier.
// An absint "infeasible" on a CDCL-sat query would be a soundness bug.
func TestRefutationsAgreeWithSolver(t *testing.T) {
	refuted, prunedN := 0, 0
	for _, subIdx := range []int{1, 4, 8} {
		info := progen.Subjects[subIdx]
		src, _, _ := info.Build(0.05)
		pr, err := driver.Compile(context.Background(), driver.Source{Name: info.Name, Text: src}, driver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := pr.Graph
		an := absint.Analyze(g)
		eng := sparse.NewEngine(g)

		for _, spec := range checker.All() {
			cands := eng.Run(spec)
			if len(cands) == 0 {
				continue
			}
			// Ground truth from the pipeline with the tier disabled.
			plain := engines.NewFusion().Check(context.Background(), g, cands)
			for i, c := range cands {
				sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
				c.ApplyConstraint(sl, 0)
				if an.RefuteSlice(sl) {
					refuted++
					if plain[i].Status == sat.Sat {
						t.Errorf("%s/%s: absint refuted a sat query (%s)",
							info.Name, spec.Name, checker.Describe(c))
					}
				}
				if an.PrunePath(c.Path, c.Constraints(0)...) {
					prunedN++
					if plain[i].Status == sat.Sat {
						t.Errorf("%s/%s: oracle pruned a sat candidate (%s)",
							info.Name, spec.Name, checker.Describe(c))
					}
				}
			}
		}
	}
	// The tier must actually fire on these subjects, or the test is vacuous.
	if refuted == 0 {
		t.Error("no query was refuted: differential test is vacuous")
	}
	t.Logf("refuted %d queries, oracle pruned %d candidates", refuted, prunedN)
}
