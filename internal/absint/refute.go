package absint

import (
	"context"

	"fusion/internal/cond"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/ssa"
)

// The refuter decides one slice query in the interval domain before any
// formula is built. It models exactly the constraint system fusioncore
// emits — defining equations for sliced vertices (with rule (1)'s pruned
// ite edges), the paths' guard-chain assertions, and the value
// constraints — so "the abstract system has no solution" implies the SMT
// query is unsatisfiable. Because the domain over-approximates, a failed
// refutation decides nothing.

type ctxVal struct {
	v   *ssa.Value
	ctx *cond.Ctx
}

type refuter struct {
	a    *Analysis
	sl   *pdg.Slice
	tree *cond.CtxTree
	// refined holds facts derived from the asserted guards and equality
	// constraints; entries only ever tighten.
	refined map[ctxVal]Interval
	// memo caches equation evaluation within one round; it is dropped
	// between rounds so new refinements propagate.
	memo map[ctxVal]Interval
	// asserted marks path-step instantiations whose guard chains the
	// formula asserts; the whole-program invariants (which assume exactly
	// those guards) apply to them.
	asserted map[ctxVal]bool
	// stride enables the congruence tier: stRefined holds derived stride
	// facts (only ever tightening), stMemo the per-round equation cache.
	stride    bool
	stRefined map[ctxVal]Stride
	stMemo    map[ctxVal]Stride
	// zone, when non-nil, tracks difference bounds over value
	// instantiations; the zero node ctxVal{} stands for the constant 0.
	// Every edge is implied by the emitted formula (asserted guards and
	// defining equations), so a negative cycle refutes the query.
	zone    *dbm[ctxVal]
	refuted bool
	changed bool
	// stop, when non-nil, cuts the refutation rounds short on
	// cancellation; an interrupted refutation simply decides nothing.
	stop func() bool
}

const (
	maxEvalDepth    = 48
	maxRefuteRounds = 4
)

// RefuteSlice reports whether the query represented by the slice — its
// paths' guard assertions plus its value constraints — is provably
// unsatisfiable in the abstract (intervals, then the congruence tier,
// then the zone relational tier when enabled). False decides nothing.
func (a *Analysis) RefuteSlice(sl *pdg.Slice) bool {
	refuted, _, _ := a.RefuteSliceTiered(sl)
	return refuted
}

// RefuteSliceTiered runs the refutation tiers in ascending cost order:
// the interval domain alone; then — when intervals fail and the
// congruence domain is enabled — the interval×stride reduced product;
// then the full product with the zone. byStride and byZone report which
// tier was needed (at most one is set, and only on refutation), which
// are the ablation's per-tier decision counts.
func (a *Analysis) RefuteSliceTiered(sl *pdg.Slice) (refuted, byStride, byZone bool) {
	return a.refuteTiered(sl, nil)
}

// RefuteSliceTieredCtx is RefuteSliceTiered with cooperative
// cancellation: once ctx expires the refuter stops deriving and decides
// nothing further (an incomplete refutation is simply a failed one).
func (a *Analysis) RefuteSliceTieredCtx(ctx context.Context, sl *pdg.Slice) (refuted, byStride, byZone bool) {
	return a.refuteTiered(sl, pollStop(ctx))
}

func (a *Analysis) refuteTiered(sl *pdg.Slice, stop func() bool) (refuted, byStride, byZone bool) {
	if a.refuteOnce(sl, false, false, stop) {
		return true, false, false
	}
	if a.stride && !(stop != nil && stop()) && a.refuteOnce(sl, true, false, stop) {
		return true, true, false
	}
	if !a.zone || (stop != nil && stop()) {
		return false, false, false
	}
	refuted = a.refuteOnce(sl, a.stride, true, stop)
	return refuted, false, refuted
}

func (a *Analysis) refuteOnce(sl *pdg.Slice, useStride, useZone bool, stop func() bool) bool {
	r := &refuter{
		a: a, sl: sl, tree: cond.NewCtxTree(),
		refined:   map[ctxVal]Interval{},
		asserted:  map[ctxVal]bool{},
		stride:    useStride,
		stRefined: map[ctxVal]Stride{},
		stop:      stop,
	}
	if useZone {
		r.zone = newDBM[ctxVal]()
		r.zone.stop = stop
	}
	return r.run()
}

func (r *refuter) run() bool {
	// Collect the asserted guard instantiations, mirroring
	// cond.GuardAssertions / fusioncore.buildResidual.
	type guardAt struct {
		gd  *ssa.Value
		ctx *cond.Ctx
	}
	var guards []guardAt
	pathCtxs := make([][]*cond.Ctx, len(r.sl.Paths))
	for pi, p := range r.sl.Paths {
		ctxs := cond.AssignContexts(r.tree, p)
		pathCtxs[pi] = ctxs
		for i, step := range p {
			r.asserted[ctxVal{step.V, ctxs[i]}] = true
			for gd := step.V.Guard; gd != nil; gd = gd.Guard {
				guards = append(guards, guardAt{gd, ctxs[i]})
			}
			if step.Kind == pdg.StepCall {
				if c := r.sl.G.SiteCall[step.Site]; c != nil {
					r.asserted[ctxVal{c, ctxs[i].Parent}] = true
					for gd := c.Guard; gd != nil; gd = gd.Guard {
						guards = append(guards, guardAt{gd, ctxs[i].Parent})
					}
				}
			}
		}
	}

	for round := 0; round < maxRefuteRounds && !r.refuted; round++ {
		r.memo = map[ctxVal]Interval{}
		r.stMemo = map[ctxVal]Stride{}
		r.changed = false
		for _, g := range guards {
			if r.stop != nil && r.stop() {
				return r.refuted
			}
			r.derive(g.gd, true, g.ctx, 0)
			if r.refuted {
				return true
			}
		}
		for _, vc := range r.sl.Constraints {
			r.applyConstraint(vc, pathCtxs)
			if r.refuted {
				return true
			}
		}
		if !r.changed {
			break
		}
	}
	return r.refuted
}

// applyConstraint checks (and, for equalities, adopts) one value
// constraint.
func (r *refuter) applyConstraint(vc pdg.ValueConstraint, pathCtxs [][]*cond.Ctx) {
	if vc.Path >= len(r.sl.Paths) {
		return
	}
	p := r.sl.Paths[vc.Path]
	if vc.Step >= len(p) {
		return
	}
	v, ctx := p[vc.Step].V, pathCtxs[vc.Path][vc.Step]
	switch vc.Kind {
	case pdg.ConstraintOutOfBounds:
		iv := r.eval(v, ctx, 0)
		if r.zone != nil && !r.zone.dead {
			if n, off, ok := r.ctxNode(v, ctx); ok {
				iv = iv.Meet(r.zone.unary(n, off))
			}
		}
		if r.stride {
			// The reduction snaps the endpoints to the index's lattice
			// points — an aligned index can be in bounds even when its
			// raw interval hull is not.
			var st Stride
			iv, st = reduce(iv, r.evalSt(v, ctx, 0))
			if st.IsBottom() {
				r.refuted = true
				return
			}
		}
		if iv.Within(0, int64(int32(vc.Bound))-1) {
			r.refuted = true // the index provably stays in bounds
		}
	case pdg.ConstraintOutOfBoundsDyn:
		r.applyDynBound(v, ctx, vc)
	default:
		r.constrain(v, ctx, SingleW(vc.Value, width(v)))
		if !r.refuted {
			// Adopt the equality into the stride view too: a congruence
			// excluding the constrained value (an odd divisor forced to
			// zero, say) bottoms out here.
			r.constrainSt(v, ctx, SingleStride(SignExt(vc.Value, width(v))))
		}
	}
}

// applyDynBound handles a dynamic-bound sink: the constraint asserts the
// index argument escapes [0, bound), where the bound is itself a sink
// argument. The query is refuted when 0 ≤ idx and idx < bound are both
// proven — the latter is where the zone earns its keep, since an interval
// cannot relate an index to an unbounded runtime length.
func (r *refuter) applyDynBound(v *ssa.Value, ctx *cond.Ctx, vc pdg.ValueConstraint) {
	if vc.Arg < 0 || vc.Arg >= len(v.Args) || vc.BoundArg < 0 || vc.BoundArg >= len(v.Args) {
		return
	}
	idx, bnd := v.Args[vc.Arg], v.Args[vc.BoundArg]
	ii, ib := r.eval(idx, ctx, 0), r.eval(bnd, ctx, 0)
	if r.refuted {
		return
	}
	in, io, okI := r.ctxNode(idx, ctx)
	bn, bo, okB := r.ctxNode(bnd, ctx)
	if r.zone != nil && !r.zone.dead {
		if okI {
			ii = ii.Meet(r.zone.unary(in, io))
		}
		if okB {
			ib = ib.Meet(r.zone.unary(bn, bo))
		}
	}
	if r.stride {
		ii, _ = reduce(ii, r.evalSt(idx, ctx, 0))
	}
	if ii.IsBottom() || ib.IsBottom() {
		r.refuted = true
		return
	}
	nonneg := ii.Lo >= 0
	below := ii.Hi < ib.Lo
	if r.zone != nil && !r.zone.dead && okI && okB {
		if c, ok := r.zone.diff(in, io, bn, bo); ok && c <= -1 {
			below = true
		}
	}
	if nonneg && below {
		r.refuted = true
	}
}

// eval computes the interval of v instantiated in ctx under the emitted
// equation system, meeting in derived refinements and — for instantiations
// whose guard chains are asserted — the whole-program invariants.
func (r *refuter) eval(v *ssa.Value, ctx *cond.Ctx, depth int) Interval {
	vc := ctxVal{v, ctx}
	if iv, ok := r.memo[vc]; ok {
		return iv
	}
	iv := Top(width(v))
	if depth < maxEvalDepth {
		iv = r.equationOf(v, ctx, depth)
	}
	if rv, ok := r.refined[vc]; ok {
		iv = iv.Meet(rv)
	}
	if r.asserted[vc] {
		if inv, ok := r.a.vals[v]; ok {
			iv = iv.Meet(inv)
		}
	}
	if iv.IsBottom() {
		r.refuted = true
	}
	r.memo[vc] = iv
	// The memo entry is stored first so the zone hook's operand
	// evaluations cannot re-enter this instantiation.
	if r.zone != nil && depth < maxEvalDepth {
		r.zoneDef(v, ctx, depth)
	}
	return iv
}

// evalSt computes the stride of v instantiated in ctx under the emitted
// equation system, meeting in derived stride refinements, the
// whole-program stride invariants of asserted instantiations, and the
// Granger reduction against the interval view. Top when the congruence
// tier is off.
func (r *refuter) evalSt(v *ssa.Value, ctx *cond.Ctx, depth int) Stride {
	if !r.stride {
		return TopStride()
	}
	vc := ctxVal{v, ctx}
	if st, ok := r.stMemo[vc]; ok {
		return st
	}
	st := TopStride()
	if depth < maxEvalDepth {
		st = stFitWidth(r.stEquationOf(v, ctx, depth), width(v))
	}
	if rv, ok := r.stRefined[vc]; ok {
		st = st.Meet(rv)
	}
	if r.asserted[vc] {
		if inv, ok := r.a.strides[v]; ok {
			st = st.Meet(inv)
		}
	}
	if _, st2 := reduce(r.eval(v, ctx, depth), st); st2.IsBottom() {
		r.refuted = true
		st = BotStride()
	} else {
		st = st2
	}
	r.stMemo[vc] = st
	return st
}

// stEquationOf mirrors equationOf in the congruence domain: vertices
// outside the slice have no defining equation and stay free.
func (r *refuter) stEquationOf(v *ssa.Value, ctx *cond.Ctx, depth int) Stride {
	if v.Op == ssa.OpConst {
		return SingleStride(SignExt(v.Const, width(v)))
	}
	if !r.sl.Values[v] {
		return TopStride()
	}
	g := r.sl.G
	switch v.Op {
	case ssa.OpParam:
		if ctx.Parent == nil {
			return TopStride()
		}
		c := g.SiteCall[ctx.Site]
		idx := pdg.ParamIndex(v)
		if c == nil || idx < 0 || idx >= len(c.Args) {
			return TopStride()
		}
		return r.evalSt(c.Args[idx], ctx.Parent, depth+1)
	case ssa.OpCopy, ssa.OpReturn, ssa.OpBranch:
		return r.evalSt(v.Args[0], ctx, depth+1)
	case ssa.OpNeg:
		return StNeg(r.evalSt(v.Args[0], ctx, depth+1), r.eval(v.Args[0], ctx, depth+1))
	case ssa.OpIte:
		thenIn, elseIn := r.sl.IteTaken(v)
		switch {
		case thenIn && elseIn:
			c := r.eval(v.Args[0], ctx, depth+1)
			switch {
			case c.IsBottom():
				return BotStride()
			case c.Lo == 1:
				return r.evalSt(v.Args[1], ctx, depth+1)
			case c.Hi == 0:
				return r.evalSt(v.Args[2], ctx, depth+1)
			default:
				return r.evalSt(v.Args[1], ctx, depth+1).Join(r.evalSt(v.Args[2], ctx, depth+1))
			}
		case thenIn:
			return r.evalSt(v.Args[1], ctx, depth+1)
		case elseIn:
			return r.evalSt(v.Args[2], ctx, depth+1)
		default:
			return BotStride() // eval already refuted this shape
		}
	case ssa.OpCall:
		callee := g.Callee(v)
		if callee == nil || callee.Ret == nil {
			return TopStride()
		}
		return r.evalSt(callee.Ret, r.tree.Child(ctx, v.Site), depth+1)
	case ssa.OpBin:
		return r.stBinEval(v, ctx, depth)
	default:
		return TopStride()
	}
}

func (r *refuter) stBinEval(v *ssa.Value, ctx *cond.Ctx, depth int) Stride {
	x, y := v.Args[0], v.Args[1]
	if x == y && v.BinOp == lang.OpSub {
		// Same-operand identity; see binEval.
		return SingleStride(0)
	}
	sx := r.evalSt(x, ctx, depth+1)
	sy := r.evalSt(y, ctx, depth+1)
	ix := r.eval(x, ctx, depth+1)
	iy := r.eval(y, ctx, depth+1)
	return stBinOp(v.BinOp, sx, sy, ix, iy, width(v))
}

// constrainSt meets a derived stride fact into (v, ctx), reducing the
// interval view against it; an empty combination refutes the query.
func (r *refuter) constrainSt(v *ssa.Value, ctx *cond.Ctx, with Stride) {
	if !r.stride || r.refuted {
		return
	}
	m := r.evalSt(v, ctx, 0).Meet(with)
	iv, m2 := reduce(r.eval(v, ctx, 0), m)
	if iv.IsBottom() {
		r.refuted = true
		return
	}
	if v.Op == ssa.OpConst {
		return
	}
	vc := ctxVal{v, ctx}
	if old, ok := r.stRefined[vc]; !ok || old != m2 {
		r.stRefined[vc] = m2
		r.changed = true
		delete(r.stMemo, vc)
	}
	r.constrain(v, ctx, iv) // the reduced interval is a fact too
}

// ctxNode normalizes a 32-bit instantiation to a DBM node plus constant
// offset; constants fold into the distinguished zero node ctxVal{}.
func (r *refuter) ctxNode(v *ssa.Value, ctx *cond.Ctx) (ctxVal, int64, bool) {
	if width(v) != 32 {
		return ctxVal{}, 0, false
	}
	if v.Op == ssa.OpConst {
		return ctxVal{}, int64(int32(v.Const)), true
	}
	return ctxVal{v, ctx}, 0, true
}

// zoneAdd records (xn + xo) − (yn + yo) ≤ c; a negative cycle means the
// emitted formula is contradictory, refuting the query.
func (r *refuter) zoneAdd(xn ctxVal, xo int64, yn ctxVal, yo int64, c int64) {
	if r.zone == nil {
		return
	}
	if r.zone.addNorm(xn, xo, yn, yo, c) {
		r.changed = true
	}
	if r.zone.dead {
		r.refuted = true
	}
}

// zoneDef mirrors refiner.noteDef context-sensitively: the zone edges
// implied by v's defining equation in ctx. Copies, returns, parameter
// bindings, and call results are exact equalities; machine addition and
// subtraction contribute edges only when the operand intervals prove the
// operation cannot wrap.
func (r *refuter) zoneDef(v *ssa.Value, ctx *cond.Ctx, depth int) {
	if r.refuted || v.Op == ssa.OpConst || width(v) != 32 || !r.sl.Values[v] {
		return
	}
	vn := ctxVal{v, ctx}
	eq := func(x *ssa.Value, xctx *cond.Ctx) {
		xn, xo, ok := r.ctxNode(x, xctx)
		if !ok {
			return
		}
		r.zoneAdd(vn, 0, xn, xo, 0)
		r.zoneAdd(xn, xo, vn, 0, 0)
	}
	g := r.sl.G
	switch v.Op {
	case ssa.OpParam:
		if ctx.Parent == nil {
			return
		}
		c := g.SiteCall[ctx.Site]
		idx := pdg.ParamIndex(v)
		if c == nil || idx < 0 || idx >= len(c.Args) {
			return
		}
		eq(c.Args[idx], ctx.Parent)
	case ssa.OpCopy, ssa.OpReturn:
		eq(v.Args[0], ctx)
	case ssa.OpCall:
		callee := g.Callee(v)
		if callee == nil || callee.Ret == nil {
			return
		}
		eq(callee.Ret, r.tree.Child(ctx, v.Site))
	case ssa.OpBin:
		x, y := v.Args[0], v.Args[1]
		switch v.BinOp {
		case lang.OpAdd:
			ix, iy := r.eval(x, ctx, depth+1), r.eval(y, ctx, depth+1)
			if ix.IsBottom() || iy.IsBottom() ||
				ix.Lo+iy.Lo < minI32 || ix.Hi+iy.Hi > maxI32 {
				return // may wrap: no integer edge is sound
			}
			if xn, xo, ok := r.ctxNode(x, ctx); ok {
				r.zoneAdd(vn, 0, xn, xo, iy.Hi)
				r.zoneAdd(xn, xo, vn, 0, -iy.Lo)
			}
			if yn, yo, ok := r.ctxNode(y, ctx); ok {
				r.zoneAdd(vn, 0, yn, yo, ix.Hi)
				r.zoneAdd(yn, yo, vn, 0, -ix.Lo)
			}
		case lang.OpSub:
			if x == y {
				return
			}
			ix, iy := r.eval(x, ctx, depth+1), r.eval(y, ctx, depth+1)
			if ix.IsBottom() || iy.IsBottom() ||
				ix.Lo-iy.Hi < minI32 || ix.Hi-iy.Lo > maxI32 {
				return
			}
			if xn, xo, ok := r.ctxNode(x, ctx); ok {
				r.zoneAdd(vn, 0, xn, xo, -iy.Lo)
				r.zoneAdd(xn, xo, vn, 0, iy.Hi)
			}
		}
	}
}

// equationOf mirrors cond.Translator.Equation: vertices outside the slice
// have no defining equation and stay free.
func (r *refuter) equationOf(v *ssa.Value, ctx *cond.Ctx, depth int) Interval {
	if v.Op == ssa.OpConst {
		return SingleW(v.Const, width(v))
	}
	if !r.sl.Values[v] {
		return Top(width(v))
	}
	g := r.sl.G
	switch v.Op {
	case ssa.OpParam:
		if ctx.Parent == nil {
			return Top(width(v))
		}
		c := g.SiteCall[ctx.Site]
		idx := pdg.ParamIndex(v)
		if c == nil || idx < 0 || idx >= len(c.Args) {
			return Top(width(v))
		}
		return r.eval(c.Args[idx], ctx.Parent, depth+1)
	case ssa.OpCopy, ssa.OpReturn, ssa.OpBranch:
		return r.eval(v.Args[0], ctx, depth+1)
	case ssa.OpNot:
		return NotBool(r.eval(v.Args[0], ctx, depth+1))
	case ssa.OpNeg:
		return fitWidth(Neg(r.eval(v.Args[0], ctx, depth+1)), width(v))
	case ssa.OpIte:
		thenIn, elseIn := r.sl.IteTaken(v)
		switch {
		case thenIn && elseIn:
			c := r.eval(v.Args[0], ctx, depth+1)
			switch {
			case c.IsBottom():
				return Bottom()
			case c.Lo == 1:
				return r.eval(v.Args[1], ctx, depth+1)
			case c.Hi == 0:
				return r.eval(v.Args[2], ctx, depth+1)
			default:
				return r.eval(v.Args[1], ctx, depth+1).Join(r.eval(v.Args[2], ctx, depth+1))
			}
		case thenIn:
			// Rule (1) pruned the else edge: the equation additionally
			// asserts the condition, which only strengthens — ignoring it
			// here stays sound for refutation.
			return r.eval(v.Args[1], ctx, depth+1)
		case elseIn:
			return r.eval(v.Args[2], ctx, depth+1)
		default:
			// Both edges pruned by conflicting paths: the equation is
			// literally false.
			r.refuted = true
			return Bottom()
		}
	case ssa.OpCall:
		callee := g.Callee(v)
		if callee == nil || callee.Ret == nil {
			return Top(width(v))
		}
		return r.eval(callee.Ret, r.tree.Child(ctx, v.Site), depth+1)
	case ssa.OpExtern:
		return Top(width(v))
	case ssa.OpBin:
		return r.binEval(v, ctx, depth)
	default:
		return Top(width(v))
	}
}

func (r *refuter) binEval(v *ssa.Value, ctx *cond.Ctx, depth int) Interval {
	x, y := v.Args[0], v.Args[1]
	if x == y {
		// Same-operand identities; see binTransfer.
		xv := r.eval(x, ctx, depth+1)
		switch v.BinOp {
		case lang.OpSub, lang.OpBitXor:
			if xv.IsBottom() {
				return Bottom()
			}
			return Interval{0, 0}
		case lang.OpEq, lang.OpLe, lang.OpGe:
			if xv.IsBottom() {
				return Bottom()
			}
			return Interval{1, 1}
		case lang.OpNe, lang.OpLt, lang.OpGt:
			if xv.IsBottom() {
				return Bottom()
			}
			return Interval{0, 0}
		case lang.OpAnd, lang.OpOr, lang.OpBitAnd, lang.OpBitOr:
			return xv
		}
	}
	l, rr := r.eval(x, ctx, depth+1), r.eval(y, ctx, depth+1)
	isBool := v.Type == lang.TypeBool && x.Type == lang.TypeBool
	return binInterval(v.BinOp, l, rr, isBool, width(v))
}

// constrain meets a derived fact into (v, ctx); an empty meet refutes the
// query.
func (r *refuter) constrain(v *ssa.Value, ctx *cond.Ctx, with Interval) {
	cur := r.eval(v, ctx, 0)
	m := cur.Meet(with)
	if m.IsBottom() {
		r.refuted = true
		return
	}
	if v.Op == ssa.OpConst {
		return
	}
	vc := ctxVal{v, ctx}
	if old, ok := r.refined[vc]; !ok || old != m {
		r.refined[vc] = m
		r.changed = true
		delete(r.memo, vc) // downstream evals must see the tighter fact
	}
}

// derive propagates "c evaluates to want in ctx" through the condition's
// structure, mirroring refiner.derive but context-sensitively.
func (r *refuter) derive(c *ssa.Value, want bool, ctx *cond.Ctx, depth int) {
	if r.refuted || depth > maxDeriveDepth {
		return
	}
	if want {
		r.constrain(c, ctx, Interval{1, 1})
	} else {
		r.constrain(c, ctx, Interval{0, 0})
	}
	if r.refuted {
		return
	}
	// Vertices outside the slice have no defining equation, so their
	// structure is not in the formula.
	if !r.sl.Values[c] && c.Op != ssa.OpConst {
		return
	}
	switch c.Op {
	case ssa.OpCopy, ssa.OpBranch:
		r.derive(c.Args[0], want, ctx, depth+1)
	case ssa.OpNot:
		r.derive(c.Args[0], !want, ctx, depth+1)
	case ssa.OpBin:
		switch c.BinOp {
		case lang.OpAnd:
			if want {
				r.derive(c.Args[0], true, ctx, depth+1)
				r.derive(c.Args[1], true, ctx, depth+1)
			}
		case lang.OpOr:
			if !want {
				r.derive(c.Args[0], false, ctx, depth+1)
				r.derive(c.Args[1], false, ctx, depth+1)
			}
		case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe:
			r.deriveCmp(c.BinOp, c.Args[0], c.Args[1], want, ctx)
		}
	}
}

func (r *refuter) deriveCmp(op lang.BinOp, x, y *ssa.Value, want bool, ctx *cond.Ctx) {
	rl, swap := normalizeRel(op, want)
	if swap {
		x, y = y, x
	}
	cx, cy := r.eval(x, ctx, 0), r.eval(y, ctx, 0)
	if r.refuted {
		return
	}
	nx, ny := relConstraints(rl, cx, cy)
	r.constrain(x, ctx, nx)
	if r.refuted {
		return
	}
	r.constrain(y, ctx, ny)
	if r.refuted {
		return
	}
	if r.stride {
		switch rl {
		case relEq:
			// Equal values share a stride; a `%`-equality guard fixes
			// the dividend's congruence class. See refiner.deriveCmp.
			sx, sy := r.evalSt(x, ctx, 0), r.evalSt(y, ctx, 0)
			if r.refuted {
				return
			}
			r.constrainSt(x, ctx, sy)
			r.constrainSt(y, ctx, sx)
			r.deriveRemCtx(x, y, true, ctx)
			r.deriveRemCtx(y, x, true, ctx)
		case relNe:
			r.deriveRemCtx(x, y, false, ctx)
			r.deriveRemCtx(y, x, false, ctx)
		}
		if r.refuted {
			return
		}
	}
	if r.zone == nil {
		return
	}
	// Record the relation itself as a zone edge; see refiner.deriveCmp.
	xn, xo, okx := r.ctxNode(x, ctx)
	yn, yo, oky := r.ctxNode(y, ctx)
	if !okx || !oky {
		return
	}
	switch rl {
	case relLt:
		r.zoneAdd(xn, xo, yn, yo, -1)
	case relLe:
		r.zoneAdd(xn, xo, yn, yo, 0)
	case relEq:
		r.zoneAdd(xn, xo, yn, yo, 0)
		r.zoneAdd(yn, yo, xn, xo, 0)
	}
}

// deriveRemCtx mirrors refiner.deriveRem context-sensitively: the rem
// expression's defining equation is only in the formula when the vertex
// is sliced.
func (r *refuter) deriveRemCtx(e, val *ssa.Value, eq bool, ctx *cond.Ctx) {
	if r.refuted || e.Op != ssa.OpBin || e.BinOp != lang.OpRem || !r.sl.Values[e] {
		return
	}
	kv := e.Args[1]
	if kv.Op != ssa.OpConst {
		return
	}
	k := SignExt(kv.Const, width(kv))
	if k < 2 {
		return
	}
	cv := r.eval(val, ctx, 0)
	if r.refuted || cv.Lo != cv.Hi || cv.Lo < 0 || cv.Lo >= k {
		return
	}
	rem := cv.Lo
	d := e.Args[0]
	if eq {
		mod := gcd64(k, wrapModulus(width(d)))
		if r.eval(d, ctx, 0).Lo >= 0 {
			mod = k
		}
		r.constrainSt(d, ctx, mkStride(mod, rem))
		return
	}
	if k == 2 {
		r.constrainSt(d, ctx, mkStride(2, 1-rem))
	}
}

// PrunePath reports whether a candidate path (with its sink constraints,
// which reference path index 0) is provably infeasible from the
// whole-program invariants alone: either a step runs through code whose
// guard chain can never hold, or a sink constraint contradicts the sink
// value's invariant. This is the sparse engine's pruning oracle — much
// cheaper than RefuteSlice since it needs no slice or context tree.
func (a *Analysis) PrunePath(p pdg.Path, vcs ...pdg.ValueConstraint) bool {
	for _, step := range p {
		if iv, ok := a.vals[step.V]; ok && iv.IsBottom() {
			return true
		}
	}
	for _, vc := range vcs {
		if vc.Path != 0 || vc.Step >= len(p) {
			continue
		}
		v := p[vc.Step].V
		switch vc.Kind {
		case pdg.ConstraintOutOfBounds:
			// The sink only executes when its guard chain holds, so the
			// facts of its guard environment — including zone bounds — are
			// valid for any real hit on this path.
			iv := a.invariantOf(v)
			if z := a.zoneOf(v); z != nil && !z.dead {
				if n, off, ok := zoneOperand(v); ok {
					iv = iv.Meet(z.unary(n, off))
				}
			}
			if a.stride {
				iv, _ = reduce(iv, a.strideInvariantOf(v))
			}
			if iv.Within(0, int64(int32(vc.Bound))-1) {
				return true
			}
		case pdg.ConstraintOutOfBoundsDyn:
			if a.pruneDynBound(v, vc) {
				return true
			}
		default:
			iv, ok := a.vals[v]
			if ok && !iv.Contains(SignExt(vc.Value, width(v))) {
				return true
			}
			if a.stride {
				if st, found := a.strides[v]; found && !st.IsBottom() && !st.Contains(SignExt(vc.Value, width(v))) {
					return true
				}
			}
		}
	}
	return false
}

// invariantOf returns v's whole-program invariant, defaulting to top.
func (a *Analysis) invariantOf(v *ssa.Value) Interval {
	if v.Op == ssa.OpConst {
		return SingleW(v.Const, width(v))
	}
	if iv, ok := a.vals[v]; ok {
		return iv
	}
	return Top(width(v))
}

// pruneDynBound mirrors refuter.applyDynBound against the whole-program
// invariants and the sink's guard-environment zone.
func (a *Analysis) pruneDynBound(v *ssa.Value, vc pdg.ValueConstraint) bool {
	if vc.Arg < 0 || vc.Arg >= len(v.Args) || vc.BoundArg < 0 || vc.BoundArg >= len(v.Args) {
		return false
	}
	idx, bnd := v.Args[vc.Arg], v.Args[vc.BoundArg]
	ii, ib := a.invariantOf(idx), a.invariantOf(bnd)
	in, io, okI := zoneOperand(idx)
	bn, bo, okB := zoneOperand(bnd)
	z := a.zoneOf(v)
	if z != nil && (z.dead || !okI || !okB) {
		z = nil
	}
	if z != nil {
		ii = ii.Meet(z.unary(in, io))
		ib = ib.Meet(z.unary(bn, bo))
	}
	if a.stride {
		ii, _ = reduce(ii, a.strideInvariantOf(idx))
	}
	if ii.IsBottom() || ib.IsBottom() {
		return false // invariants say the sink is unreachable-ish; leave to RefuteSlice
	}
	nonneg := ii.Lo >= 0
	below := ii.Hi < ib.Lo
	if z != nil {
		if c, ok := z.diff(in, io, bn, bo); ok && c <= -1 {
			below = true
		}
	}
	return nonneg && below
}
