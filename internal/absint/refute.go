package absint

import (
	"fusion/internal/cond"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/ssa"
)

// The refuter decides one slice query in the interval domain before any
// formula is built. It models exactly the constraint system fusioncore
// emits — defining equations for sliced vertices (with rule (1)'s pruned
// ite edges), the paths' guard-chain assertions, and the value
// constraints — so "the abstract system has no solution" implies the SMT
// query is unsatisfiable. Because the domain over-approximates, a failed
// refutation decides nothing.

type ctxVal struct {
	v   *ssa.Value
	ctx *cond.Ctx
}

type refuter struct {
	a    *Analysis
	sl   *pdg.Slice
	tree *cond.CtxTree
	// refined holds facts derived from the asserted guards and equality
	// constraints; entries only ever tighten.
	refined map[ctxVal]Interval
	// memo caches equation evaluation within one round; it is dropped
	// between rounds so new refinements propagate.
	memo map[ctxVal]Interval
	// asserted marks path-step instantiations whose guard chains the
	// formula asserts; the whole-program invariants (which assume exactly
	// those guards) apply to them.
	asserted map[ctxVal]bool
	refuted  bool
	changed  bool
}

const (
	maxEvalDepth    = 48
	maxRefuteRounds = 4
)

// RefuteSlice reports whether the query represented by the slice — its
// paths' guard assertions plus its value constraints — is provably
// unsatisfiable in the interval domain. False decides nothing.
func (a *Analysis) RefuteSlice(sl *pdg.Slice) bool {
	r := &refuter{
		a: a, sl: sl, tree: cond.NewCtxTree(),
		refined:  map[ctxVal]Interval{},
		asserted: map[ctxVal]bool{},
	}
	return r.run()
}

func (r *refuter) run() bool {
	// Collect the asserted guard instantiations, mirroring
	// cond.GuardAssertions / fusioncore.buildResidual.
	type guardAt struct {
		gd  *ssa.Value
		ctx *cond.Ctx
	}
	var guards []guardAt
	pathCtxs := make([][]*cond.Ctx, len(r.sl.Paths))
	for pi, p := range r.sl.Paths {
		ctxs := cond.AssignContexts(r.tree, p)
		pathCtxs[pi] = ctxs
		for i, step := range p {
			r.asserted[ctxVal{step.V, ctxs[i]}] = true
			for gd := step.V.Guard; gd != nil; gd = gd.Guard {
				guards = append(guards, guardAt{gd, ctxs[i]})
			}
			if step.Kind == pdg.StepCall {
				if c := r.sl.G.SiteCall[step.Site]; c != nil {
					r.asserted[ctxVal{c, ctxs[i].Parent}] = true
					for gd := c.Guard; gd != nil; gd = gd.Guard {
						guards = append(guards, guardAt{gd, ctxs[i].Parent})
					}
				}
			}
		}
	}

	for round := 0; round < maxRefuteRounds && !r.refuted; round++ {
		r.memo = map[ctxVal]Interval{}
		r.changed = false
		for _, g := range guards {
			r.derive(g.gd, true, g.ctx, 0)
			if r.refuted {
				return true
			}
		}
		for _, vc := range r.sl.Constraints {
			r.applyConstraint(vc, pathCtxs)
			if r.refuted {
				return true
			}
		}
		if !r.changed {
			break
		}
	}
	return r.refuted
}

// applyConstraint checks (and, for equalities, adopts) one value
// constraint.
func (r *refuter) applyConstraint(vc pdg.ValueConstraint, pathCtxs [][]*cond.Ctx) {
	if vc.Path >= len(r.sl.Paths) {
		return
	}
	p := r.sl.Paths[vc.Path]
	if vc.Step >= len(p) {
		return
	}
	v, ctx := p[vc.Step].V, pathCtxs[vc.Path][vc.Step]
	switch vc.Kind {
	case pdg.ConstraintOutOfBounds:
		iv := r.eval(v, ctx, 0)
		if iv.Within(0, int64(int32(vc.Bound))-1) {
			r.refuted = true // the index provably stays in bounds
		}
	default:
		r.constrain(v, ctx, Single(vc.Value))
	}
}

// eval computes the interval of v instantiated in ctx under the emitted
// equation system, meeting in derived refinements and — for instantiations
// whose guard chains are asserted — the whole-program invariants.
func (r *refuter) eval(v *ssa.Value, ctx *cond.Ctx, depth int) Interval {
	vc := ctxVal{v, ctx}
	if iv, ok := r.memo[vc]; ok {
		return iv
	}
	iv := Top(width(v))
	if depth < maxEvalDepth {
		iv = r.equationOf(v, ctx, depth)
	}
	if rv, ok := r.refined[vc]; ok {
		iv = iv.Meet(rv)
	}
	if r.asserted[vc] {
		if inv, ok := r.a.vals[v]; ok {
			iv = iv.Meet(inv)
		}
	}
	if iv.IsBottom() {
		r.refuted = true
	}
	r.memo[vc] = iv
	return iv
}

// equationOf mirrors cond.Translator.Equation: vertices outside the slice
// have no defining equation and stay free.
func (r *refuter) equationOf(v *ssa.Value, ctx *cond.Ctx, depth int) Interval {
	if v.Op == ssa.OpConst {
		return Single(v.Const)
	}
	if !r.sl.Values[v] {
		return Top(width(v))
	}
	g := r.sl.G
	switch v.Op {
	case ssa.OpParam:
		if ctx.Parent == nil {
			return Top(width(v))
		}
		c := g.SiteCall[ctx.Site]
		idx := pdg.ParamIndex(v)
		if c == nil || idx < 0 || idx >= len(c.Args) {
			return Top(width(v))
		}
		return r.eval(c.Args[idx], ctx.Parent, depth+1)
	case ssa.OpCopy, ssa.OpReturn, ssa.OpBranch:
		return r.eval(v.Args[0], ctx, depth+1)
	case ssa.OpNot:
		return NotBool(r.eval(v.Args[0], ctx, depth+1))
	case ssa.OpNeg:
		return Neg(r.eval(v.Args[0], ctx, depth+1))
	case ssa.OpIte:
		thenIn, elseIn := r.sl.IteTaken(v)
		switch {
		case thenIn && elseIn:
			c := r.eval(v.Args[0], ctx, depth+1)
			switch {
			case c.IsBottom():
				return Bottom()
			case c.Lo == 1:
				return r.eval(v.Args[1], ctx, depth+1)
			case c.Hi == 0:
				return r.eval(v.Args[2], ctx, depth+1)
			default:
				return r.eval(v.Args[1], ctx, depth+1).Join(r.eval(v.Args[2], ctx, depth+1))
			}
		case thenIn:
			// Rule (1) pruned the else edge: the equation additionally
			// asserts the condition, which only strengthens — ignoring it
			// here stays sound for refutation.
			return r.eval(v.Args[1], ctx, depth+1)
		case elseIn:
			return r.eval(v.Args[2], ctx, depth+1)
		default:
			// Both edges pruned by conflicting paths: the equation is
			// literally false.
			r.refuted = true
			return Bottom()
		}
	case ssa.OpCall:
		callee := g.Callee(v)
		if callee == nil || callee.Ret == nil {
			return Top(width(v))
		}
		return r.eval(callee.Ret, r.tree.Child(ctx, v.Site), depth+1)
	case ssa.OpExtern:
		return Top(width(v))
	case ssa.OpBin:
		return r.binEval(v, ctx, depth)
	default:
		return Top(width(v))
	}
}

func (r *refuter) binEval(v *ssa.Value, ctx *cond.Ctx, depth int) Interval {
	x, y := v.Args[0], v.Args[1]
	if x == y {
		// Same-operand identities; see binTransfer.
		xv := r.eval(x, ctx, depth+1)
		switch v.BinOp {
		case lang.OpSub, lang.OpBitXor:
			if xv.IsBottom() {
				return Bottom()
			}
			return Interval{0, 0}
		case lang.OpEq, lang.OpLe, lang.OpGe:
			if xv.IsBottom() {
				return Bottom()
			}
			return Interval{1, 1}
		case lang.OpNe, lang.OpLt, lang.OpGt:
			if xv.IsBottom() {
				return Bottom()
			}
			return Interval{0, 0}
		case lang.OpAnd, lang.OpOr, lang.OpBitAnd, lang.OpBitOr:
			return xv
		}
	}
	l, rr := r.eval(x, ctx, depth+1), r.eval(y, ctx, depth+1)
	isBool := v.Type == lang.TypeBool && x.Type == lang.TypeBool
	switch v.BinOp {
	case lang.OpAdd:
		return Add(l, rr)
	case lang.OpSub:
		return Sub(l, rr)
	case lang.OpMul:
		return Mul(l, rr)
	case lang.OpDiv:
		return UDiv(l, rr)
	case lang.OpRem:
		return URem(l, rr)
	case lang.OpEq:
		return Eq(l, rr)
	case lang.OpNe:
		return NotBool(Eq(l, rr))
	case lang.OpLt:
		return Slt(l, rr)
	case lang.OpLe:
		return Sle(l, rr)
	case lang.OpGt:
		return Slt(rr, l)
	case lang.OpGe:
		return Sle(rr, l)
	case lang.OpAnd, lang.OpBitAnd:
		if isBool {
			return AndBool(l, rr)
		}
		return BitAnd(l, rr)
	case lang.OpOr, lang.OpBitOr:
		if isBool {
			return OrBool(l, rr)
		}
		return BitOr(l, rr)
	case lang.OpBitXor:
		return BitXor(l, rr)
	case lang.OpShl:
		return Shl(l, rr)
	case lang.OpShr:
		return Lshr(l, rr)
	default:
		return Top(width(v))
	}
}

// constrain meets a derived fact into (v, ctx); an empty meet refutes the
// query.
func (r *refuter) constrain(v *ssa.Value, ctx *cond.Ctx, with Interval) {
	cur := r.eval(v, ctx, 0)
	m := cur.Meet(with)
	if m.IsBottom() {
		r.refuted = true
		return
	}
	if v.Op == ssa.OpConst {
		return
	}
	vc := ctxVal{v, ctx}
	if old, ok := r.refined[vc]; !ok || old != m {
		r.refined[vc] = m
		r.changed = true
		delete(r.memo, vc) // downstream evals must see the tighter fact
	}
}

// derive propagates "c evaluates to want in ctx" through the condition's
// structure, mirroring refiner.derive but context-sensitively.
func (r *refuter) derive(c *ssa.Value, want bool, ctx *cond.Ctx, depth int) {
	if r.refuted || depth > maxDeriveDepth {
		return
	}
	if want {
		r.constrain(c, ctx, Interval{1, 1})
	} else {
		r.constrain(c, ctx, Interval{0, 0})
	}
	if r.refuted {
		return
	}
	// Vertices outside the slice have no defining equation, so their
	// structure is not in the formula.
	if !r.sl.Values[c] && c.Op != ssa.OpConst {
		return
	}
	switch c.Op {
	case ssa.OpCopy, ssa.OpBranch:
		r.derive(c.Args[0], want, ctx, depth+1)
	case ssa.OpNot:
		r.derive(c.Args[0], !want, ctx, depth+1)
	case ssa.OpBin:
		switch c.BinOp {
		case lang.OpAnd:
			if want {
				r.derive(c.Args[0], true, ctx, depth+1)
				r.derive(c.Args[1], true, ctx, depth+1)
			}
		case lang.OpOr:
			if !want {
				r.derive(c.Args[0], false, ctx, depth+1)
				r.derive(c.Args[1], false, ctx, depth+1)
			}
		case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe:
			r.deriveCmp(c.BinOp, c.Args[0], c.Args[1], want, ctx)
		}
	}
}

func (r *refuter) deriveCmp(op lang.BinOp, x, y *ssa.Value, want bool, ctx *cond.Ctx) {
	rl, swap := normalizeRel(op, want)
	if swap {
		x, y = y, x
	}
	cx, cy := r.eval(x, ctx, 0), r.eval(y, ctx, 0)
	if r.refuted {
		return
	}
	nx, ny := relConstraints(rl, cx, cy)
	r.constrain(x, ctx, nx)
	if r.refuted {
		return
	}
	r.constrain(y, ctx, ny)
}

// PrunePath reports whether a candidate path (with its sink constraints,
// which reference path index 0) is provably infeasible from the
// whole-program invariants alone: either a step runs through code whose
// guard chain can never hold, or a sink constraint contradicts the sink
// value's invariant. This is the sparse engine's pruning oracle — much
// cheaper than RefuteSlice since it needs no slice or context tree.
func (a *Analysis) PrunePath(p pdg.Path, vcs ...pdg.ValueConstraint) bool {
	for _, step := range p {
		if iv, ok := a.vals[step.V]; ok && iv.IsBottom() {
			return true
		}
	}
	for _, vc := range vcs {
		if vc.Path != 0 || vc.Step >= len(p) {
			continue
		}
		iv, ok := a.vals[p[vc.Step].V]
		if !ok {
			continue
		}
		switch vc.Kind {
		case pdg.ConstraintOutOfBounds:
			if iv.Within(0, int64(int32(vc.Bound))-1) {
				return true
			}
		default:
			if !iv.Contains(int64(int32(vc.Value))) {
				return true
			}
		}
	}
	return false
}
