package absint

import "fusion/internal/ssa"

// The zone (difference-bound) relational domain: a sparse difference-bound
// matrix over an arbitrary comparable node type N, tracking facts of the
// form x − y ≤ c over mathematical integers. The zero value of N is the
// distinguished "zero" node standing for the constant 0, which encodes
// unary bounds (x ≤ c is x − zero ≤ c) and lets constant comparison
// operands normalize to an offset against the zero node.
//
// The matrix is kept transitively closed by incremental Floyd–Warshall
// relaxation on every insertion, so a lookup is a single map probe. A
// negative self-cycle means the fact set is contradictory (the zone is
// empty); dead records that.
//
// Soundness note: facts are over unbounded integers, so every edge added
// for machine arithmetic (Add/Sub definitions) must carry a no-overflow
// proof from the operand intervals — see refiner.noteDef. Comparison-
// derived edges need no proof: the language's comparisons are signed and
// wrap-free by definition.

// diffKey identifies the DBM edge x − y ≤ c.
type diffKey[N comparable] struct{ x, y N }

// maxZoneEdges caps a single zone's edge count; insertions beyond the cap
// are dropped, which is sound (fewer facts, weaker zone).
const maxZoneEdges = 2048

// weight saturation bound: far beyond any derivable 32-bit difference but
// small enough that closure sums cannot overflow int64.
const maxZoneWeight = int64(1) << 40

type dbm[N comparable] struct {
	edges map[diffKey[N]]int64
	dead  bool
	// stop, when non-nil, is polled on insertion; once it reports true
	// new facts are dropped, which is sound (a weaker zone) and lets a
	// cancelled analysis cut the incremental-closure work short.
	stop func() bool
}

func newDBM[N comparable]() *dbm[N] {
	return &dbm[N]{edges: map[diffKey[N]]int64{}}
}

func (d *dbm[N]) clone() *dbm[N] {
	nd := &dbm[N]{edges: make(map[diffKey[N]]int64, len(d.edges)), dead: d.dead, stop: d.stop}
	for k, c := range d.edges {
		nd.edges[k] = c
	}
	return nd
}

func clampWeight(c int64) int64 {
	switch {
	case c > maxZoneWeight:
		return maxZoneWeight
	case c < -maxZoneWeight:
		return -maxZoneWeight
	}
	return c
}

// add records x − y ≤ c and restores transitive closure. It reports
// whether the zone changed (a new or strictly tighter fact, or death).
func (d *dbm[N]) add(x, y N, c int64) bool {
	if d.dead {
		return false
	}
	c = clampWeight(c)
	if x == y {
		if c < 0 {
			d.dead = true
			return true
		}
		return false
	}
	if cur, ok := d.edges[diffKey[N]{x, y}]; ok && cur <= c {
		return false
	}
	if len(d.edges) >= maxZoneEdges {
		return false // capacity: drop the fact, keep the zone sound
	}
	if d.stop != nil && d.stop() {
		return false // cancelled: drop the fact, keep the zone sound
	}
	// Incremental closure: relax every path routed through the new edge.
	// ins holds the i with i − x ≤ w (including the trivial i = x), outs
	// the j with y − j ≤ w; the candidate fact is i − j ≤ w_in + c + w_out.
	type hop struct {
		n N
		w int64
	}
	ins := []hop{{x, 0}}
	outs := []hop{{y, 0}}
	for k, w := range d.edges {
		if k.y == x && k.x != x {
			ins = append(ins, hop{k.x, w})
		}
		if k.x == y && k.y != y {
			outs = append(outs, hop{k.y, w})
		}
	}
	changed := false
	for _, i := range ins {
		for _, j := range outs {
			w := clampWeight(i.w + c + j.w)
			if i.n == j.n {
				if w < 0 {
					d.dead = true
					return true
				}
				continue
			}
			k := diffKey[N]{i.n, j.n}
			if cur, ok := d.edges[k]; !ok || w < cur {
				d.edges[k] = w
				changed = true
			}
		}
	}
	return changed
}

// addNorm records (xn + xo) − (yn + yo) ≤ c, the offset-normalized form
// produced when constant operands are folded into the zero node. It
// reports whether the zone changed.
func (d *dbm[N]) addNorm(xn N, xo int64, yn N, yo int64, c int64) bool {
	return d.add(xn, yn, c-xo+yo)
}

// diff returns the proven upper bound on (xn + xo) − (yn + yo), if any.
// Identical nodes give the exact offset difference.
func (d *dbm[N]) diff(xn N, xo int64, yn N, yo int64) (int64, bool) {
	if xn == yn {
		return xo - yo, true
	}
	c, ok := d.edges[diffKey[N]{xn, yn}]
	if !ok {
		return 0, false
	}
	return c + xo - yo, true
}

// unary projects the zone's bounds against the zero node onto an interval
// for node n with offset off.
func (d *dbm[N]) unary(n N, off int64) Interval {
	var zero N
	lo, hi := int64(minI32), int64(maxI32)
	if c, ok := d.diff(n, off, zero, 0); ok && c < hi {
		hi = c
	}
	if c, ok := d.diff(zero, 0, n, off); ok && -c > lo {
		lo = -c
	}
	return Interval{lo, hi}
}

// join widens the receiver to the least upper bound with o (pointwise max
// over the common edges); facts present in only one branch are dropped. A
// dead operand contributes nothing and the other side wins.
func (d *dbm[N]) join(o *dbm[N]) *dbm[N] {
	if d.dead {
		return o.clone()
	}
	if o.dead {
		return d.clone()
	}
	nd := &dbm[N]{edges: map[diffKey[N]]int64{}, stop: d.stop}
	for k, c := range d.edges {
		if oc, ok := o.edges[k]; ok {
			if oc > c {
				c = oc
			}
			nd.edges[k] = c
		}
	}
	return nd
}

// DiffFact is one exported difference-bound fact X − Y ≤ C; a nil endpoint
// stands for the constant zero.
type DiffFact struct {
	X, Y *ssa.Value
	C    int64
}
