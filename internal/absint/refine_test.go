package absint

import (
	"testing"

	"fusion/internal/lang"
)

// TestRelConstraintsEndpoints pins the endpoint-underflow behavior of
// relConstraints documented on the function: the relLt arithmetic cy.Hi − 1
// and cx.Lo + 1 must NOT be clamped, because at the extreme endpoints the
// un-clamped result is exactly the bottom encoding (Lo > Hi) that signals
// the contradiction. A clamp would silently turn "x < minI32" into a
// satisfiable wraparound interval.
func TestRelConstraintsEndpoints(t *testing.T) {
	top := Top(32)

	// x < y with y pinned to the minimum: no x satisfies it.
	nx, ny := relConstraints(relLt, top, Interval{minI32, minI32})
	if !nx.IsBottom() {
		t.Errorf("x < minI32: nx = %v, want bottom (Lo > Hi)", nx)
	}
	if ny.IsBottom() {
		t.Errorf("x < minI32: ny = %v must stay non-bottom (the meet decides)", ny)
	}

	// x < y with x pinned to the maximum: no y satisfies it.
	nx, ny = relConstraints(relLt, Interval{maxI32, maxI32}, top)
	if !ny.IsBottom() {
		t.Errorf("maxI32 < y: ny = %v, want bottom (Lo > Hi)", ny)
	}
	if nx.IsBottom() {
		t.Errorf("maxI32 < y: nx = %v must stay non-bottom", nx)
	}

	// One step away from the endpoints the results are the tight singletons,
	// not bottom: the underflow is confined to the exact corner.
	nx, ny = relConstraints(relLt, top, Interval{minI32 + 1, minI32 + 1})
	if nx != (Interval{minI32, minI32}) || ny.IsBottom() {
		t.Errorf("x < minI32+1: nx = %v, ny = %v", nx, ny)
	}
	nx, _ = relConstraints(relLt, Interval{maxI32 - 1, maxI32 - 1}, top)
	if nx.IsBottom() {
		t.Errorf("maxI32-1 < y: nx = %v, want non-bottom", nx)
	}

	// relLe at the same endpoints is satisfiable and must not bottom out.
	nx, ny = relConstraints(relLe, top, Interval{minI32, minI32})
	if nx.IsBottom() || ny.IsBottom() {
		t.Errorf("x <= minI32: got nx = %v, ny = %v, want non-bottom", nx, ny)
	}
	nx, ny = relConstraints(relLe, Interval{maxI32, maxI32}, top)
	if nx.IsBottom() || ny.IsBottom() {
		t.Errorf("maxI32 <= y: got nx = %v, ny = %v, want non-bottom", nx, ny)
	}
}

func TestNormalizeRel(t *testing.T) {
	for _, tc := range []struct {
		op   lang.BinOp
		want bool
		rl   rel
		swap bool
	}{
		{lang.OpLt, true, relLt, false},
		{lang.OpLt, false, relLe, true}, // ¬(x<y) = y<=x
		{lang.OpLe, true, relLe, false},
		{lang.OpLe, false, relLt, true},  // ¬(x<=y) = y<x
		{lang.OpGt, true, relLt, true},   // x>y = y<x
		{lang.OpGt, false, relLe, false}, // ¬(x>y) = x<=y
		{lang.OpGe, true, relLe, true},
		{lang.OpGe, false, relLt, false},
		{lang.OpEq, true, relEq, false},
		{lang.OpEq, false, relNe, false},
		{lang.OpNe, true, relNe, false},
		{lang.OpNe, false, relEq, false},
	} {
		rl, swap := normalizeRel(tc.op, tc.want)
		if rl != tc.rl || swap != tc.swap {
			t.Errorf("normalizeRel(%v, %v) = (%v, %v), want (%v, %v)",
				tc.op, tc.want, rl, swap, tc.rl, tc.swap)
		}
	}
}
