// Package absint is a sparse abstract interpretation over the program
// dependence graph: a signed-interval (plus null/non-null) domain evaluated
// directly on the SSA value graph, branch-refined along control-dependence
// edges, and made interprocedural by per-function summaries instantiated
// bottom-up over the call graph.
//
// It is the analysis-side counterpart of the solver's syntactic
// preprocessing tier: where package smt rewrites formulas, absint decides
// queries before a formula is ever built. The facts it computes are
// invariants of every concrete execution, so it may only ever refute a
// query ("no execution reaches this sink with the constrained value") —
// never confirm one. fusioncore consults it as a pre-solver tier, the
// sparse engine uses it as a candidate-pruning oracle, and the bench
// harness reports its decision rate next to the Figure 11 preprocessing
// statistic.
package absint

import (
	"fmt"
	"math"
)

// Interval is a signed interpretation of the 32-bit values the analysis
// language computes: the set {v : Lo <= int32(v) <= Hi}. Booleans use the
// sub-lattice over [0, 1]. Lo > Hi encodes bottom (no value). Bounds are
// held in int64 so transfer functions can detect int32 overflow exactly.
type Interval struct {
	Lo, Hi int64
}

// Lattice constants.
const (
	minI32 = math.MinInt32
	maxI32 = math.MaxInt32
)

// minFor and maxFor give the signed range of a bit width. Booleans
// (width 1) are kept unsigned over {0, 1}.
func minFor(width int) int64 {
	if width == 1 {
		return 0
	}
	return -(int64(1) << uint(width-1))
}

func maxFor(width int) int64 {
	if width == 1 {
		return 1
	}
	return int64(1)<<uint(width-1) - 1
}

// Top returns the full interval for a value of the given bit width
// (1 = bool, 8/16 = narrow integers, 32 = int/ptr).
func Top(width int) Interval {
	return Interval{minFor(width), maxFor(width)}
}

// Bottom is the empty interval.
func Bottom() Interval { return Interval{1, 0} }

// SignExt reads the masked bit pattern v as a signed value of the given
// width. Booleans (width 1) stay unsigned.
func SignExt(v uint32, width int) int64 {
	if width == 1 {
		return int64(v & 1)
	}
	if width >= 32 {
		return int64(int32(v))
	}
	sh := uint(32 - width)
	return int64(int32(v<<sh) >> sh)
}

// Single is the singleton interval {v} under signed 32-bit interpretation.
func Single(v uint32) Interval {
	s := int64(int32(v))
	return Interval{s, s}
}

// SingleW is the singleton {v} with v's bit pattern read at the given
// width — the interval of an SSA constant, whose Const field is stored
// masked to its type's width.
func SingleW(v uint32, width int) Interval {
	s := SignExt(v, width)
	return Interval{s, s}
}

// fitWidth keeps a transfer result that provably fits the signed range of
// the given width and widens everything else to that width's top: the
// transfers compute over mathematical integers clamped at 32 bits, so a
// result escaping a narrower range means the width-w machine arithmetic
// may have wrapped even though no 32-bit overflow was seen.
func fitWidth(iv Interval, width int) Interval {
	if width >= 32 || iv.IsBottom() {
		return iv
	}
	if iv.Lo >= minFor(width) && iv.Hi <= maxFor(width) {
		return iv
	}
	return Top(width)
}

// IsBottom reports the empty interval.
func (iv Interval) IsBottom() bool { return iv.Lo > iv.Hi }

// IsTop reports the full 32-bit interval.
func (iv Interval) IsTop() bool { return iv.Lo <= minI32 && iv.Hi >= maxI32 }

// IsTopFor reports whether the interval carries no information for a value
// of the given bit width, i.e. it covers that width's whole top interval.
// A boolean's [0, 1] is its lattice top even though IsTop (which is
// 32-bit) says otherwise.
func (iv Interval) IsTopFor(width int) bool {
	t := Top(width)
	return iv.Lo <= t.Lo && iv.Hi >= t.Hi
}

// Contains reports whether the signed value s lies in the interval.
func (iv Interval) Contains(s int64) bool { return iv.Lo <= s && s <= iv.Hi }

// ExcludesZero reports that no value in the interval is zero — the
// "provably non-null / non-zero-divisor" fact.
func (iv Interval) ExcludesZero() bool { return !iv.IsBottom() && !iv.Contains(0) }

// Within reports iv ⊆ [lo, hi].
func (iv Interval) Within(lo, hi int64) bool {
	return !iv.IsBottom() && iv.Lo >= lo && iv.Hi <= hi
}

// Join is the lattice join (interval hull). Bottom is the identity.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsBottom() {
		return o
	}
	if o.IsBottom() {
		return iv
	}
	return Interval{min64(iv.Lo, o.Lo), max64(iv.Hi, o.Hi)}
}

// Meet is the lattice meet (intersection).
func (iv Interval) Meet(o Interval) Interval {
	return Interval{max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)}
}

func (iv Interval) String() string {
	if iv.IsBottom() {
		return "⊥"
	}
	if iv.IsTop() {
		return "⊤"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// clamp widens any interval that escapes the signed 32-bit range to top:
// escaping the range means the machine arithmetic may have wrapped, and
// the hull of wrapped values is the full range.
func clamp(lo, hi int64) Interval {
	if lo < minI32 || hi > maxI32 {
		return Top(32)
	}
	return Interval{lo, hi}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- Transfer functions ---
//
// Every function below must over-approximate the concrete semantics the
// SMT encoding uses (smt.foldBinary / interp.binOp): comparisons and
// negation are signed, division and remainder are UNSIGNED with the
// SMT-LIB conventions x/0 = all-ones (= -1 signed) and x%0 = x, and
// add/sub/mul wrap modulo 2^32.

// unsignedRange converts a signed interval to an unsigned [lo, hi] range
// when it is contiguous under unsigned interpretation; mixed-sign
// intervals wrap around and are widened to the full unsigned range.
func unsignedRange(iv Interval) (lo, hi uint64, exact bool) {
	switch {
	case iv.Lo >= 0:
		return uint64(iv.Lo), uint64(iv.Hi), true
	case iv.Hi < 0:
		return uint64(iv.Lo + (1 << 32)), uint64(iv.Hi + (1 << 32)), true
	default:
		return 0, (1 << 32) - 1, false
	}
}

// signedFromUnsigned converts an unsigned range back to a signed interval,
// widening to top when the range straddles the sign boundary.
func signedFromUnsigned(lo, hi uint64) Interval {
	switch {
	case hi <= maxI32:
		return Interval{int64(lo), int64(hi)}
	case lo > maxI32:
		return Interval{int64(lo) - (1 << 32), int64(hi) - (1 << 32)}
	default:
		return Top(32)
	}
}

// Add is the transfer for 32-bit addition.
func Add(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	return clamp(a.Lo+b.Lo, a.Hi+b.Hi)
}

// Sub is the transfer for 32-bit subtraction.
func Sub(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	return clamp(a.Lo-b.Hi, a.Hi-b.Lo)
}

// Neg is the transfer for 32-bit two's-complement negation.
func Neg(a Interval) Interval {
	if a.IsBottom() {
		return Bottom()
	}
	return clamp(-a.Hi, -a.Lo)
}

// Mul is the transfer for 32-bit multiplication. Corner products fit in
// int64 (|bound| <= 2^31, product <= 2^62), so overflow detection is exact.
func Mul(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	p1, p2, p3, p4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
	return clamp(min64(min64(p1, p2), min64(p3, p4)), max64(max64(p1, p2), max64(p3, p4)))
}

// UDiv is the transfer for unsigned division with the SMT-LIB convention
// x/0 = all-ones (-1 signed).
func UDiv(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	al, ah, _ := unsignedRange(a)
	bl, bh, _ := unsignedRange(b)
	var out Interval = Bottom()
	if b.Contains(0) {
		out = out.Join(Interval{-1, -1}) // x / 0 = all-ones
		if bl == 0 {
			bl = 1
		}
	}
	if bh >= bl && bh > 0 { // some nonzero divisor exists
		if bl == 0 {
			bl = 1
		}
		out = out.Join(signedFromUnsigned(al/bh, ah/bl))
	}
	return out
}

// URem is the transfer for unsigned remainder with the SMT-LIB convention
// x%0 = x.
func URem(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	al, ah, aExact := unsignedRange(a)
	bl, bh, _ := unsignedRange(b)
	var out Interval = Bottom()
	if b.Contains(0) {
		out = out.Join(a) // x % 0 = x
	}
	if bh > 0 { // some nonzero divisor exists
		if bl == 0 {
			bl = 1
		}
		if aExact && ah < bl {
			// Dividend always below the divisor: identity.
			out = out.Join(signedFromUnsigned(al, ah))
		} else {
			out = out.Join(signedFromUnsigned(0, bh-1))
		}
	}
	return out
}

// boolFrom3 encodes a three-valued comparison outcome as an interval over
// {0, 1}.
func boolFrom3(canFalse, canTrue bool) Interval {
	switch {
	case canTrue && canFalse:
		return Interval{0, 1}
	case canTrue:
		return Interval{1, 1}
	case canFalse:
		return Interval{0, 0}
	default:
		return Bottom()
	}
}

// Slt is the transfer for signed less-than.
func Slt(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	return boolFrom3(a.Hi >= b.Lo, a.Lo < b.Hi)
}

// Sle is the transfer for signed less-or-equal.
func Sle(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	return boolFrom3(a.Hi > b.Lo, a.Lo <= b.Hi)
}

// Eq is the transfer for equality (any width).
func Eq(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	overlap := a.Lo <= b.Hi && b.Lo <= a.Hi
	bothSingle := a.Lo == a.Hi && b.Lo == b.Hi
	return boolFrom3(!(overlap && bothSingle), overlap)
}

// NotBool is the transfer for boolean negation over [0, 1].
func NotBool(a Interval) Interval {
	if a.IsBottom() {
		return Bottom()
	}
	return Interval{max64(0, 1-a.Hi), min64(1, 1-a.Lo)}.Meet(Interval{0, 1})
}

// AndBool / OrBool are the transfers for the logical (non-short-circuit)
// boolean operators, which the language evaluates bitwise over {0, 1}.
func AndBool(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	return Interval{min64(a.Lo, b.Lo), min64(a.Hi, b.Hi)}.Meet(Interval{0, 1})
}

func OrBool(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	return Interval{max64(a.Lo, b.Lo), max64(a.Hi, b.Hi)}.Meet(Interval{0, 1})
}

// BitAnd is the transfer for bitwise and. When either operand is provably
// non-negative with top bit clear, the result is non-negative and bounded
// by that operand under unsigned comparison.
func BitAnd(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		return Interval{0, min64(a.Hi, b.Hi)}
	}
	if a.Lo >= 0 {
		return Interval{0, a.Hi}
	}
	if b.Lo >= 0 {
		return Interval{0, b.Hi}
	}
	return Top(32)
}

// BitOr is the transfer for bitwise or.
func BitOr(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		// or never clears bits below the highest set bit bound.
		return Interval{max64(a.Lo, b.Lo), upPow2(max64(a.Hi, b.Hi))}
	}
	return Top(32)
}

// BitXor is the transfer for bitwise xor.
func BitXor(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		return Interval{0, upPow2(max64(a.Hi, b.Hi))}
	}
	return Top(32)
}

// upPow2 returns 2^ceil(log2(n+1)) - 1: the smallest all-ones bound
// covering n, clamped to maxI32.
func upPow2(n int64) int64 {
	if n < 0 {
		return maxI32
	}
	var b int64 = 1
	for b-1 < n {
		if b > maxI32 {
			return maxI32
		}
		b <<= 1
	}
	return b - 1
}

// Shl is the transfer for left shift (shift >= 32 yields 0 in the
// language; the SMT encoding agrees).
func Shl(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	if b.Lo == b.Hi && b.Lo >= 0 && b.Lo < 31 && a.Lo >= 0 {
		s := uint(b.Lo)
		if a.Hi <= maxI32>>s {
			return Interval{a.Lo << s, a.Hi << s}
		}
	}
	return Top(32)
}

// Lshr is the transfer for logical right shift.
func Lshr(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return Bottom()
	}
	if b.Lo == b.Hi && b.Lo >= 1 && b.Lo < 32 {
		s := uint(b.Lo)
		if a.Lo >= 0 {
			return Interval{a.Lo >> s, a.Hi >> s}
		}
		// Negative inputs have the top bit set; a logical shift by >= 1
		// clears it, bounding the result by 2^(32-s) - 1.
		return Interval{0, (int64(1) << (32 - s)) - 1}
	}
	if b.Lo == b.Hi && b.Lo == 0 {
		return a
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		return Interval{0, a.Hi}
	}
	return Top(32)
}
