package absint_test

import (
	"context"
	"math/rand"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/driver"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/ssa"
)

// TestStrideFactsHoldOnConcreteTraces is the differential soundness fuzz
// for the congruence domain: on generated subjects, every stride invariant
// aZ+b recorded for a vertex must contain — under signed interpretation —
// the vertex's value in every concrete activation whose guard chain holds.
// It reuses the ssaExec witness-trace generator from the zone fuzz.
func TestStrideFactsHoldOnConcreteTraces(t *testing.T) {
	factChecks := 0
	for _, subIdx := range []int{3, 6, 10} {
		info := progen.Subjects[subIdx]
		src, _, _ := info.Build(0.05)
		pr, err := driver.Compile(context.Background(), driver.Source{Name: info.Name, Text: src}, driver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, g := pr.SSA, pr.Graph
		a := absint.Analyze(g)

		signed := func(v uint32) int64 { return int64(int32(v)) }
		check := func(f *ssa.Function, env map[*ssa.Value]uint32) {
			chainHolds := func(guard *ssa.Value) bool {
				for g := guard; g != nil; g = g.Guard {
					if env[g] != 1 {
						return false
					}
				}
				return true
			}
			for _, v := range f.Values {
				if !chainHolds(v.Guard) {
					continue
				}
				st, ok := a.StrideOf(v)
				if !ok {
					continue
				}
				if st.IsBottom() {
					t.Errorf("%s/%s: reachable vertex %s has stride ⊥", info.Name, f.Name, v)
					continue
				}
				if pdg.TypeBits(v.Type) != 32 {
					continue
				}
				if !st.Contains(signed(env[v])) {
					t.Errorf("%s/%s: %s = %d escapes stride invariant %s",
						info.Name, f.Name, v, signed(env[v]), st)
				}
				if !st.IsTop() {
					factChecks++
				}
			}
		}

		rng := rand.New(rand.NewSource(int64(subIdx)*257 + 13))
		for _, f := range p.Order {
			if len(f.Name) < 3 || (f.Name[:3] != "bug" && f.Name[:3] != "fn_") {
				continue
			}
			for trial := 0; trial < 10; trial++ {
				x := &ssaExec{prog: p, rng: rng, budget: 200_000, onEnv: check}
				args := make([]uint32, len(f.Params))
				for i := range args {
					args[i] = rng.Uint32() % 64
				}
				x.run(f, args)
			}
		}
	}
	if factChecks == 0 {
		t.Error("no nontrivial stride fact was ever exercised: fuzz is vacuous")
	}
	t.Logf("checked %d stride-fact instances", factChecks)
}
