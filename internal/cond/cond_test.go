package cond_test

import (
	"context"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/cond"
	"fusion/internal/driver"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
)

func buildGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

// decide runs the null checker, translates each candidate eagerly, and
// returns the solver verdicts in order.
func decide(t *testing.T, src string) []sat.Status {
	t.Helper()
	g := buildGraph(t, src)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	var out []sat.Status
	for _, c := range cands {
		b := smt.NewBuilder()
		sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
		tr := cond.Translate(b, sl)
		out = append(out, solver.Solve(b, tr.Phi, solver.Options{}).Status)
	}
	return out
}

func one(t *testing.T, src string) sat.Status {
	t.Helper()
	sts := decide(t, src)
	if len(sts) != 1 {
		t.Fatalf("got %d candidates, want 1", len(sts))
	}
	return sts[0]
}

func TestFeasibleStraightLine(t *testing.T) {
	if got := one(t, `
fun f() {
    var p: ptr = null;
    deref(p);
}`); got != sat.Sat {
		t.Errorf("got %s, want sat", got)
	}
}

func TestFeasibleGuarded(t *testing.T) {
	if got := one(t, `
fun f(a: int) {
    var p: ptr = null;
    if (a > 10) {
        deref(p);
    }
}`); got != sat.Sat {
		t.Errorf("a > 10 is satisfiable: got %s", got)
	}
}

func TestInfeasibleContradictoryGuards(t *testing.T) {
	if got := one(t, `
fun f(a: int) {
    var p: ptr = null;
    if (a > 0) {
        if (a < 0) {
            deref(p);
        }
    }
}`); got != sat.Unsat {
		t.Errorf("a > 0 && a < 0 must be infeasible: got %s", got)
	}
}

func TestInfeasibleConstantGuard(t *testing.T) {
	if got := one(t, `
fun f() {
    var x: int = 1;
    var p: ptr = null;
    if (x == 2) {
        deref(p);
    }
}`); got != sat.Unsat {
		t.Errorf("1 == 2 must be infeasible: got %s", got)
	}
}

func TestItePruningMakesPathInfeasible(t *testing.T) {
	// The null flows into r only in the then branch (a > 0); the deref is
	// guarded by a < 0. Conjunction infeasible.
	if got := one(t, `
fun f(a: int, q: ptr) {
    var r: ptr = q;
    if (a > 0) {
        var p: ptr = null;
        r = p;
    }
    if (a < 0) {
        deref(r);
    }
}`); got != sat.Unsat {
		t.Errorf("ite-pruned path must be infeasible: got %s", got)
	}
}

func TestItePruningFeasibleCounterpart(t *testing.T) {
	if got := one(t, `
fun f(a: int, q: ptr) {
    var r: ptr = q;
    if (a > 0) {
        var p: ptr = null;
        r = p;
    }
    if (a > 5) {
        deref(r);
    }
}`); got != sat.Sat {
		t.Errorf("a > 0 && a > 5 is satisfiable: got %s", got)
	}
}

const fig1Src = `
fun bar(x: int): int {
    var y: int = x * 2;
    var z: int = y;
    return z;
}

fun foo(a: int, b: int) {
    var p: ptr = null;
    var c: int = bar(a);
    var d: int = bar(b);
    if (c < d) {
        deref(p);
    }
}
`

func TestFigure1EndToEnd(t *testing.T) {
	if got := one(t, fig1Src); got != sat.Sat {
		t.Errorf("the Figure 1 null path is feasible: got %s", got)
	}
}

func TestFigure1CloneCount(t *testing.T) {
	g := buildGraph(t, fig1Src)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	b := smt.NewBuilder()
	sl := pdg.ComputeSlice(g, []pdg.Path{cands[0].Path})
	tr := cond.Translate(b, sl)
	// foo once, bar cloned at both call sites: 3 instantiations, matching
	// the paper's k = 2 analysis of the conventional cost O(kn + m).
	if tr.Clones != 3 {
		t.Errorf("clones: got %d, want 3", tr.Clones)
	}
	if tr.Contexts.Size() != 3 { // root, <site c>, <site d>
		t.Errorf("contexts: got %d, want 3", tr.Contexts.Size())
	}
}

func TestInterproceduralGuardInCallee(t *testing.T) {
	// The callee only returns the null when its parameter is positive; the
	// caller then requires the parameter negative. Infeasible.
	if got := one(t, `
fun pick(v: int, p: ptr, q: ptr): ptr {
    var r: ptr = q;
    if (v > 0) {
        r = p;
    }
    return r;
}
fun f(v: int, q: ptr) {
    var n: ptr = null;
    var got: ptr = pick(v, n, q);
    if (v < 0) {
        deref(got);
    }
}`); got != sat.Unsat {
		t.Errorf("cross-function contradictory guards must be infeasible: got %s", got)
	}
}

func TestCallSiteGuardAsserted(t *testing.T) {
	// The call that passes the null happens under a > 0; the deref of the
	// returned value under a < 0. Requires asserting the call vertex's
	// guard for call-edge crossings.
	if got := one(t, `
fun hold(p: ptr): ptr {
    return p;
}
fun f(a: int, q: ptr) {
    var n: ptr = null;
    var r: ptr = q;
    if (a > 0) {
        r = hold(n);
    }
    if (a < 0) {
        deref(r);
    }
}`); got != sat.Unsat {
		t.Errorf("call under contradictory guard must be infeasible: got %s", got)
	}
}

func TestAssignContextsShapes(t *testing.T) {
	g := buildGraph(t, `
fun mk(): ptr {
    return null;
}
fun use(p: ptr) {
    deref(p);
}
fun f() {
    use(mk());
}`)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	tree := cond.NewCtxTree()
	ctxs := cond.AssignContexts(tree, cands[0].Path)
	// The path starts in mk (depth below root f), ascends, then descends
	// into use. The shallowest step must be the root context.
	sawRoot := false
	for i, c := range ctxs {
		if c == nil {
			t.Fatalf("step %d has no context", i)
		}
		if c == tree.Root {
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Error("no step at the root context")
	}
	// First step (inside mk) must be a child context.
	if ctxs[0] == tree.Root {
		t.Error("the path's start inside mk must be in a call-site context")
	}
	if got := one(t, `
fun mk(): ptr {
    return null;
}
fun use(p: ptr) {
    deref(p);
}
fun f() {
    use(mk());
}`); got != sat.Sat {
		t.Errorf("v-shaped path is feasible: got %s", got)
	}
}

func TestMultiPathConjunction(t *testing.T) {
	// Figure 6's scenario: two simultaneous flows into sendmsg. The
	// conjunction of both paths' conditions must be checked together.
	g := buildGraph(t, `
fun f(a: int) {
    var s1: int = read_secret();
    var s2: int = read_secret();
    var c: int = 0;
    var d: int = 0;
    if (a > 0) {
        c = s1;
    }
    if (a < 0) {
        d = s2;
    }
    sendmsg(c, d);
}`)
	cands := sparse.NewEngine(g).Run(checker.PrivateLeak())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	// Each path alone is feasible.
	for _, c := range cands {
		b := smt.NewBuilder()
		sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
		tr := cond.Translate(b, sl)
		if st := solver.Solve(b, tr.Phi, solver.Options{}).Status; st != sat.Sat {
			t.Errorf("individual path must be feasible, got %s", st)
		}
	}
	// Together they are contradictory (a > 0 and a < 0).
	b := smt.NewBuilder()
	sl := pdg.ComputeSlice(g, []pdg.Path{cands[0].Path, cands[1].Path})
	tr := cond.Translate(b, sl)
	if st := solver.Solve(b, tr.Phi, solver.Options{}).Status; st != sat.Unsat {
		t.Errorf("joint flow must be infeasible, got %s", st)
	}
}

func TestVarNameStability(t *testing.T) {
	g := buildGraph(t, fig1Src)
	foo := g.Prog.Funcs["foo"]
	tree := cond.NewCtxTree()
	v := foo.Params[0]
	if cond.VarName(v, tree.Root) != cond.VarName(v, tree.Root) {
		t.Error("VarName must be deterministic")
	}
	child := tree.Child(tree.Root, 3)
	if cond.VarName(v, tree.Root) == cond.VarName(v, child) {
		t.Error("different contexts must yield different names")
	}
	if child.String() != "<3>" {
		t.Errorf("ctx string: got %s", child.String())
	}
	grand := tree.Child(child, 7)
	if grand.String() != "<3.7>" {
		t.Errorf("ctx string: got %s", grand.String())
	}
}
