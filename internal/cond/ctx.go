// Package cond translates program-dependence-graph slices into path
// conditions: rules (4)-(6) of Figure 8 plus the inter-procedural rules (7)
// and (8). The eager, fully-cloned translation (Translate) is the
// conventional design's condition computation and the body of the
// un-optimized IR-based solution (Algorithm 4); the fused solver layers its
// optimizations on the same machinery (Algorithm 6).
package cond

import (
	"fmt"
	"sort"

	"fusion/internal/pdg"
	"fusion/internal/ssa"
)

// Ctx is a calling context: a chain of call sites from a root function.
// Cloning a callee's condition at each call site corresponds to allocating
// one Ctx per site chain; the exponential growth of context trees with call
// depth is exactly the paper's condition-cloning problem.
type Ctx struct {
	Parent *Ctx
	Site   int // call site entered through; -1 for the root
	ID     int
}

// Depth returns the length of the site chain (0 for the root).
func (c *Ctx) Depth() int {
	d := 0
	for p := c; p.Parent != nil; p = p.Parent {
		d++
	}
	return d
}

// String renders the site chain, e.g. "<>", "<3>", "<3.7>".
func (c *Ctx) String() string {
	if c.Parent == nil {
		return "<>"
	}
	if c.Parent.Parent == nil {
		return fmt.Sprintf("<%d>", c.Site)
	}
	s := c.Parent.String()
	return s[:len(s)-1] + fmt.Sprintf(".%d>", c.Site)
}

// CtxTree interns contexts.
type CtxTree struct {
	Root  *Ctx
	nodes []*Ctx
	index map[[2]int]*Ctx
}

// NewCtxTree returns a tree containing only the root context.
func NewCtxTree() *CtxTree {
	t := &CtxTree{index: map[[2]int]*Ctx{}}
	t.Root = &Ctx{Site: -1, ID: 0}
	t.nodes = []*Ctx{t.Root}
	return t
}

// Child returns the context parent·site, creating it on first use.
func (t *CtxTree) Child(parent *Ctx, site int) *Ctx {
	key := [2]int{parent.ID, site}
	if c, ok := t.index[key]; ok {
		return c
	}
	c := &Ctx{Parent: parent, Site: site, ID: len(t.nodes)}
	t.nodes = append(t.nodes, c)
	t.index[key] = c
	return c
}

// Size returns the number of interned contexts.
func (t *CtxTree) Size() int { return len(t.nodes) }

// AssignContexts determines, for every step of a data-dependence path, the
// calling context its vertex lives in, relative to the path's shallowest
// (root) function. Call crossings push a site, return crossings pop; the
// prefix before the shallowest point is reconstructed right-to-left, since
// the path may start deep inside callees and ascend.
func AssignContexts(t *CtxTree, p pdg.Path) []*Ctx {
	n := len(p)
	out := make([]*Ctx, n)
	if n == 0 {
		return out
	}
	// Depth profile and its first minimum.
	depth := make([]int, n)
	for i := 1; i < n; i++ {
		depth[i] = depth[i-1]
		switch p[i].Kind {
		case pdg.StepCall:
			depth[i]++
		case pdg.StepReturn:
			depth[i]--
		}
	}
	minIdx := 0
	for i, d := range depth {
		if d < depth[minIdx] {
			minIdx = i
		}
	}
	out[minIdx] = t.Root
	// Rightwards from the minimum: calls descend, returns ascend.
	for i := minIdx + 1; i < n; i++ {
		switch p[i].Kind {
		case pdg.StepCall:
			out[i] = t.Child(out[i-1], p[i].Site)
		case pdg.StepReturn:
			out[i] = out[i-1].Parent
		default:
			out[i] = out[i-1]
		}
	}
	// Leftwards from the minimum: a return crossed right-to-left descends
	// into the returning callee; a call crossed right-to-left ascends.
	for i := minIdx; i > 0; i-- {
		switch p[i].Kind {
		case pdg.StepReturn:
			out[i-1] = t.Child(out[i], p[i].Site)
		case pdg.StepCall:
			out[i-1] = out[i].Parent
		default:
			out[i-1] = out[i]
		}
	}
	return out
}

// FuncContexts enumerates every context in which each sliced function's
// condition must be instantiated: the root context for slice roots and
// path-root functions, and one child context per (caller context, entry
// site) pair otherwise. The total count is the clone count of the eager
// translation.
func FuncContexts(t *CtxTree, sl *pdg.Slice) map[*ssa.Function][]*Ctx {
	g := sl.G
	out := map[*ssa.Function][]*Ctx{}
	// Functions that host a path's shallowest vertices need a root-context
	// instance even if other paths enter them through calls.
	pathRoots := map[*ssa.Function]bool{}
	tmp := NewCtxTree()
	for _, p := range sl.Paths {
		ctxs := AssignContexts(tmp, p)
		for i, c := range ctxs {
			if c == tmp.Root {
				pathRoots[p[i].V.Fn] = true
			}
		}
	}

	var visit func(f *ssa.Function) []*Ctx
	visiting := map[*ssa.Function]bool{}
	visit = func(f *ssa.Function) []*Ctx {
		if cs, ok := out[f]; ok {
			return cs
		}
		if visiting[f] {
			// Recursion is unrolled away before SSA construction, so a
			// cycle here indicates a pipeline bug.
			panic("cond: recursive call structure in slice")
		}
		visiting[f] = true
		defer func() { visiting[f] = false }()
		var cs []*Ctx
		if len(sl.Entered[f]) == 0 || pathRoots[f] {
			cs = append(cs, t.Root)
		}
		sites := make([]int, 0, len(sl.Entered[f]))
		for s := range sl.Entered[f] {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, s := range sites {
			caller := g.SiteCall[s].Fn
			for _, pc := range visit(caller) {
				cs = append(cs, t.Child(pc, s))
			}
		}
		out[f] = cs
		return cs
	}

	funcs := map[*ssa.Function]bool{}
	for v := range sl.Values {
		funcs[v.Fn] = true
	}
	names := make([]*ssa.Function, 0, len(funcs))
	for f := range funcs {
		names = append(names, f)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name < names[j].Name })
	for _, f := range names {
		visit(f)
	}
	return out
}
