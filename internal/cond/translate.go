package cond

import (
	"fmt"
	"sort"

	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/smt"
	"fusion/internal/ssa"
)

// VarName names the SMT variable standing for an SSA value instantiated in
// a calling context. Distinct contexts yield distinct names, which is what
// "cloning the callee's condition" means operationally.
func VarName(v *ssa.Value, ctx *Ctx) string {
	if ctx == nil || ctx.ID == 0 {
		return fmt.Sprintf("%s.v%d", v.Fn.Name, v.ID)
	}
	return fmt.Sprintf("%s.v%d@%d", v.Fn.Name, v.ID, ctx.ID)
}

// Translation is the result of translating a slice: the path condition and
// accounting of the work done.
type Translation struct {
	Phi *smt.Term
	// Clones is the total number of (function, context) instantiations.
	Clones int
	// Equations is the number of defining equations emitted.
	Equations int
	// Contexts is the context tree used (exposed for the fused solver).
	Contexts *CtxTree
	// Truncated reports that depth limiting cut some call links, so the
	// condition over-approximates feasibility.
	Truncated bool
}

// Translator holds state shared across per-context emissions.
type Translator struct {
	B  *smt.Builder
	Sl *pdg.Slice
	T  *CtxTree
	// MaxDepth truncates context expansion: call links into contexts
	// deeper than MaxDepth are omitted, leaving the receiver free (an
	// over-approximation used by the abstraction-refinement variant).
	// Zero means unlimited.
	MaxDepth int
	// Truncated reports whether any call link was cut by MaxDepth.
	Truncated bool
}

// NewTranslator returns a translator for a slice.
func NewTranslator(b *smt.Builder, sl *pdg.Slice) *Translator {
	return &Translator{B: b, Sl: sl, T: NewCtxTree()}
}

// Var returns the SMT variable for value v in context ctx.
func (tr *Translator) Var(v *ssa.Value, ctx *Ctx) *smt.Term {
	return tr.B.Var(VarName(v, ctx), pdg.TypeBits(v.Type))
}

// Term returns the term representing v's value in ctx: constants map to
// constant terms, everything else to its variable.
func (tr *Translator) Term(v *ssa.Value, ctx *Ctx) *smt.Term {
	if v.Op == ssa.OpConst {
		return tr.B.Const(v.Const, pdg.TypeBits(v.Type))
	}
	return tr.Var(v, ctx)
}

// Equation emits the defining equation of value v instantiated in ctx —
// rule (6), plus the call/return rules (7) and (8). It returns true (no
// constraint) for vertices that translate to free variables.
func (tr *Translator) Equation(v *ssa.Value, ctx *Ctx) *smt.Term {
	b, sl := tr.B, tr.Sl
	g := sl.G
	lhs := tr.Term(v, ctx)
	switch v.Op {
	case ssa.OpConst:
		return b.True()
	case ssa.OpParam:
		if ctx.Parent == nil {
			return b.True() // root context: parameters are free
		}
		c := g.SiteCall[ctx.Site]
		idx := pdg.ParamIndex(v)
		if c == nil || idx < 0 || idx >= len(c.Args) {
			return b.True()
		}
		// Rule (7): formal = actual across the call edge.
		return b.Eq(lhs, tr.Term(c.Args[idx], ctx.Parent))
	case ssa.OpCopy, ssa.OpReturn:
		return b.Eq(lhs, tr.Term(v.Args[0], ctx))
	case ssa.OpNot:
		return b.Eq(lhs, b.Not(tr.Term(v.Args[0], ctx)))
	case ssa.OpNeg:
		return b.Eq(lhs, b.Neg(tr.Term(v.Args[0], ctx)))
	case ssa.OpBin:
		return b.Eq(lhs, tr.BinTerm(v, ctx))
	case ssa.OpIte:
		cterm := tr.Term(v.Args[0], ctx)
		thenIn, elseIn := sl.IteTaken(v)
		switch {
		case thenIn && elseIn:
			return b.Eq(lhs, b.Ite(cterm, tr.Term(v.Args[1], ctx), tr.Term(v.Args[2], ctx)))
		case thenIn:
			// v2 = true ∧ v1 = v3.
			return b.And(cterm, b.Eq(lhs, tr.Term(v.Args[1], ctx)))
		case elseIn:
			return b.And(b.Not(cterm), b.Eq(lhs, tr.Term(v.Args[2], ctx)))
		default:
			// Both edges pruned by conflicting paths: infeasible.
			return b.False()
		}
	case ssa.OpCall:
		callee := g.Callee(v)
		if callee.Ret == nil {
			return b.True()
		}
		child := tr.T.Child(ctx, v.Site)
		if tr.MaxDepth > 0 && child.Depth() > tr.MaxDepth {
			tr.Truncated = true
			return b.True() // abstraction: the receiver is free
		}
		// Rule (8): receiver = the callee's return value in the child
		// context.
		return b.Eq(lhs, tr.Term(callee.Ret, child))
	case ssa.OpExtern:
		return b.True() // empty function: the receiver is unconstrained
	case ssa.OpBranch:
		return b.Eq(lhs, tr.Term(v.Args[0], ctx))
	default:
		panic(fmt.Sprintf("cond: unhandled op %s", v.Op))
	}
}

// BinTerm builds the SMT term for a binary-operation vertex in a context.
func (tr *Translator) BinTerm(v *ssa.Value, ctx *Ctx) *smt.Term {
	b := tr.B
	l, r := tr.Term(v.Args[0], ctx), tr.Term(v.Args[1], ctx)
	switch v.BinOp {
	case lang.OpAdd:
		return b.Add(l, r)
	case lang.OpSub:
		return b.Sub(l, r)
	case lang.OpMul:
		return b.Mul(l, r)
	case lang.OpDiv:
		return b.UDiv(l, r)
	case lang.OpRem:
		return b.URem(l, r)
	case lang.OpEq:
		return b.Eq(l, r)
	case lang.OpNe:
		return b.Not(b.Eq(l, r))
	case lang.OpLt:
		return b.Slt(l, r)
	case lang.OpLe:
		return b.Sle(l, r)
	case lang.OpGt:
		return b.Slt(r, l)
	case lang.OpGe:
		return b.Sle(r, l)
	case lang.OpAnd, lang.OpBitAnd:
		return b.And(l, r)
	case lang.OpOr, lang.OpBitOr:
		return b.Or(l, r)
	case lang.OpBitXor:
		return b.Xor(l, r)
	case lang.OpShl:
		return b.Shl(l, r)
	case lang.OpShr:
		return b.Lshr(l, r)
	default:
		panic(fmt.Sprintf("cond: unhandled binary operator %s", v.BinOp))
	}
}

// GuardAssertions emits rule (5): for every vertex on every path, the
// transitive chain of branch vertices it is control-dependent on must be
// true, each instantiated in the context the path visits it in. Call-edge
// crossings additionally assert the guards of the crossed call vertex in
// the caller's context.
func (tr *Translator) GuardAssertions() []*smt.Term {
	var out []*smt.Term
	assertChain := func(v *ssa.Value, ctx *Ctx) {
		for gd := v.Guard; gd != nil; gd = gd.Guard {
			out = append(out, tr.Var(gd, ctx))
		}
	}
	for _, p := range tr.Sl.Paths {
		ctxs := AssignContexts(tr.T, p)
		for i, st := range p {
			assertChain(st.V, ctxs[i])
			if st.Kind == pdg.StepCall {
				if c := tr.Sl.G.SiteCall[st.Site]; c != nil {
					assertChain(c, ctxs[i].Parent)
				}
			}
		}
	}
	out = append(out, tr.ValueConstraints()...)
	return out
}

// ValueConstraints translates the slice's pinned path-step values (e.g. a
// zero divisor at a division-by-zero sink) into equations in the contexts
// the paths visit them in.
func (tr *Translator) ValueConstraints() []*smt.Term {
	var out []*smt.Term
	for _, vc := range tr.Sl.Constraints {
		if vc.Path >= len(tr.Sl.Paths) {
			continue
		}
		p := tr.Sl.Paths[vc.Path]
		if vc.Step >= len(p) {
			continue
		}
		ctxs := AssignContexts(tr.T, p)
		v := p[vc.Step].V
		switch vc.Kind {
		case pdg.ConstraintOutOfBounds:
			// The access misses [0, Bound): index < 0 or index >= Bound,
			// signed.
			term := tr.Term(v, ctxs[vc.Step])
			bits := pdg.TypeBits(v.Type)
			out = append(out, tr.B.Or(
				tr.B.Slt(term, tr.B.Const(0, bits)),
				tr.B.Sle(tr.B.Const(vc.Bound, bits), term),
			))
		case pdg.ConstraintOutOfBoundsDyn:
			// Dynamic bound: the index argument misses [0, bound argument),
			// signed — index < 0 or bound <= index.
			if vc.Arg < 0 || vc.Arg >= len(v.Args) || vc.BoundArg < 0 || vc.BoundArg >= len(v.Args) {
				continue
			}
			idx, bnd := v.Args[vc.Arg], v.Args[vc.BoundArg]
			ti := tr.Term(idx, ctxs[vc.Step])
			tb := tr.Term(bnd, ctxs[vc.Step])
			bits := pdg.TypeBits(idx.Type)
			out = append(out, tr.B.Or(
				tr.B.Slt(ti, tr.B.Const(0, bits)),
				tr.B.Sle(tb, ti),
			))
		default:
			term := tr.Term(v, ctxs[vc.Step])
			out = append(out, tr.B.Eq(term, tr.B.Const(vc.Value, pdg.TypeBits(v.Type))))
		}
	}
	return out
}

// Translate is the eager path-condition construction: slice values are
// instantiated in every calling context the slice reaches them through
// (full condition cloning), defining equations are emitted per rule (6)-(8),
// and the paths' control dependences are asserted per rule (5). This is
// the condition the conventional design computes, solves, and caches.
func Translate(b *smt.Builder, sl *pdg.Slice) Translation {
	return TranslateDepth(b, sl, 0)
}

// TranslateDepth is Translate with context expansion truncated at maxDepth
// (0 = unlimited): the abstraction the refinement-based variant solves
// before extending the condition with deeper callees and callers.
func TranslateDepth(b *smt.Builder, sl *pdg.Slice, maxDepth int) Translation {
	tr := NewTranslator(b, sl)
	tr.MaxDepth = maxDepth
	fcs := FuncContexts(tr.T, sl)

	// Deterministic order: function name, then value ID, then context ID.
	funcs := make([]*ssa.Function, 0, len(fcs))
	for f := range fcs {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })

	var conjs []*smt.Term
	clones, eqs := 0, 0
	for _, f := range funcs {
		var vals []*ssa.Value
		for v := range sl.Values {
			if v.Fn == f {
				vals = append(vals, v)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].ID < vals[j].ID })
		for _, ctx := range fcs[f] {
			if tr.MaxDepth > 0 && ctx.Depth() > tr.MaxDepth {
				tr.Truncated = true
				continue
			}
			clones++
			for _, v := range vals {
				eq := tr.Equation(v, ctx)
				if !eq.IsTrue() {
					conjs = append(conjs, eq)
					eqs++
				}
			}
		}
	}
	conjs = append(conjs, tr.GuardAssertions()...)
	return Translation{
		Phi:       b.And(conjs...),
		Clones:    clones,
		Equations: eqs,
		Contexts:  tr.T,
		Truncated: tr.Truncated,
	}
}
