// Package unroll normalizes a checked program into the loop-free,
// recursion-free, single-exit form the paper's analyses assume (§3.1):
//
//   - loops are unrolled a fixed number of times (bounded model checking),
//   - recursive cycles on the call graph are unrolled twice (§4), with
//     calls beyond the unrolling depth replaced by unconstrained "havoc"
//     extern calls,
//   - every function is rewritten to have a single return statement as its
//     unique exit, using a guard flag.
//
// The reserved identifier prefix "__fusion_" is used for synthesized
// variables and extern functions; input programs must not use it.
package unroll

import (
	"fmt"

	"fusion/internal/lang"
)

// Reserved name components synthesized by normalization.
const (
	retVar      = "__fusion_ret"
	returnedVar = "__fusion_returned"
	havocInt    = "__fusion_havoc_int"
	havocBool   = "__fusion_havoc_bool"
	havocPtr    = "__fusion_havoc_ptr"
)

// HavocFuncs maps each value type to the extern function that models an
// unconstrained value of that type.
var HavocFuncs = map[lang.Type]string{
	lang.TypeInt:  havocInt,
	lang.TypeBool: havocBool,
	lang.TypePtr:  havocPtr,
}

// IsHavoc reports whether name is one of the synthesized havoc externs.
func IsHavoc(name string) bool {
	return name == havocInt || name == havocBool || name == havocPtr
}

// Options configure normalization.
type Options struct {
	// LoopUnroll is the number of loop iterations to retain. Zero or
	// negative means the default of 2, matching the paper.
	LoopUnroll int
	// RecursionUnroll is the number of times call-graph cycles are
	// unrolled. Zero or negative means the default of 2 (§4).
	RecursionUnroll int
}

func (o Options) loopUnroll() int {
	if o.LoopUnroll <= 0 {
		return 2
	}
	return o.LoopUnroll
}

func (o Options) recursionUnroll() int {
	if o.RecursionUnroll <= 0 {
		return 2
	}
	return o.RecursionUnroll
}

// Normalize returns a new program in normalized form. The input program is
// not modified.
func Normalize(prog *lang.Program, opts Options) *lang.Program {
	out := &lang.Program{}
	for _, f := range prog.Funcs {
		out.Funcs = append(out.Funcs, lang.CloneFunc(f))
	}
	for _, f := range out.Funcs {
		if f.Body != nil {
			f.Body = unrollLoopsBlock(f.Body, opts.loopUnroll())
		}
	}
	out = unrollRecursion(out, opts.recursionUnroll())
	for _, f := range out.Funcs {
		if f.Body != nil {
			singleExit(f)
		}
	}
	ensureHavocDecls(out)
	return out
}

func ensureHavocDecls(prog *lang.Program) {
	have := map[string]bool{}
	for _, f := range prog.Funcs {
		have[f.Name] = true
	}
	add := func(name string, ret lang.Type) {
		if !have[name] {
			prog.Funcs = append(prog.Funcs, &lang.FuncDecl{Name: name, Ret: ret, Extern: true})
		}
	}
	add(havocInt, lang.TypeInt)
	add(havocBool, lang.TypeBool)
	add(havocPtr, lang.TypePtr)
}

// --- Loop unrolling ---

func unrollLoopsBlock(b *lang.BlockStmt, k int) *lang.BlockStmt {
	nb := &lang.BlockStmt{Pos: b.Pos}
	for _, s := range b.Stmts {
		nb.Stmts = append(nb.Stmts, unrollLoopsStmt(s, k))
	}
	return nb
}

func unrollLoopsStmt(s lang.Stmt, k int) lang.Stmt {
	switch s := s.(type) {
	case *lang.BlockStmt:
		return unrollLoopsBlock(s, k)
	case *lang.IfStmt:
		ns := &lang.IfStmt{Cond: s.Cond, Then: unrollLoopsBlock(s.Then, k), Pos: s.Pos}
		if s.Else != nil {
			ns.Else = unrollLoopsBlock(s.Else, k)
		}
		return ns
	case *lang.WhileStmt:
		body := unrollLoopsBlock(s.Body, k)
		// k nested conditionals: if (c) { body; if (c) { body; ... } }.
		var cur lang.Stmt
		for i := 0; i < k; i++ {
			then := lang.CloneBlock(body)
			if cur != nil {
				then.Stmts = append(then.Stmts, cur)
			}
			cur = &lang.IfStmt{Cond: lang.CloneExpr(s.Cond), Then: then, Pos: s.Pos}
		}
		return cur
	default:
		return s
	}
}

// --- Recursion unrolling ---

// callGraph returns, for each defined function, the set of function names
// it calls.
func callGraph(prog *lang.Program) map[string]map[string]bool {
	g := map[string]map[string]bool{}
	for _, f := range prog.Funcs {
		callees := map[string]bool{}
		if f.Body != nil {
			collectCalls(f.Body, callees)
		}
		g[f.Name] = callees
	}
	return g
}

func collectCalls(b *lang.BlockStmt, out map[string]bool) {
	var visitExpr func(e lang.Expr)
	visitExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.UnaryExpr:
			visitExpr(e.X)
		case *lang.BinExpr:
			visitExpr(e.L)
			visitExpr(e.R)
		case *lang.CallExpr:
			out[e.Name] = true
			for _, a := range e.Args {
				visitExpr(a)
			}
		}
	}
	var visitStmt func(s lang.Stmt)
	visitStmt = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			for _, t := range s.Stmts {
				visitStmt(t)
			}
		case *lang.VarDecl:
			visitExpr(s.Init)
		case *lang.AssignStmt:
			visitExpr(s.Val)
		case *lang.IfStmt:
			visitExpr(s.Cond)
			visitStmt(s.Then)
			if s.Else != nil {
				visitStmt(s.Else)
			}
		case *lang.WhileStmt:
			visitExpr(s.Cond)
			visitStmt(s.Body)
		case *lang.ReturnStmt:
			if s.Val != nil {
				visitExpr(s.Val)
			}
		case *lang.ExprStmt:
			visitExpr(s.X)
		}
	}
	visitStmt(b)
}

// sccs computes strongly connected components of the call graph with
// Tarjan's algorithm, returning a map from function name to component ID
// and a set of component IDs that are recursive (size > 1 or self-loop).
func sccs(g map[string]map[string]bool) (comp map[string]int, recursive map[int]bool) {
	comp = map[string]int{}
	recursive = map[int]bool{}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	compID := 0

	// Iterative Tarjan to avoid deep Go stacks on long call chains.
	type frame struct {
		node  string
		succs []string
		i     int
	}
	names := make([]string, 0, len(g))
	for n := range g {
		names = append(names, n)
	}
	succsOf := func(n string) []string {
		var out []string
		for m := range g[n] {
			if _, defined := g[m]; defined {
				out = append(out, m)
			}
		}
		return out
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		var frames []frame
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		frames = append(frames, frame{node: root, succs: succsOf(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succs: succsOf(w)})
				} else if onStack[w] && low[f.node] > index[w] {
					low[f.node] = index[w]
				}
				continue
			}
			// Finished f.node.
			if low[f.node] == index[f.node] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compID
					size++
					if w == f.node {
						break
					}
				}
				if size > 1 || g[f.node][f.node] {
					recursive[compID] = true
				}
				compID++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[parent.node] > low[f.node] {
					low[parent.node] = low[f.node]
				}
			}
		}
	}
	return comp, recursive
}

// unrollRecursion clones every function that belongs to a recursive cycle
// depth times. In the clone at depth d, a call to a function in the same
// cycle targets the depth d+1 clone; at the maximum depth the call is
// replaced by a havoc extern call (an unconstrained value).
func unrollRecursion(prog *lang.Program, depth int) *lang.Program {
	g := callGraph(prog)
	comp, recursive := sccs(g)
	rets := map[string]lang.Type{}
	inCycle := map[string]bool{}
	for _, f := range prog.Funcs {
		rets[f.Name] = f.Ret
		if recursive[comp[f.Name]] && !f.Extern {
			inCycle[f.Name] = true
		}
	}
	if len(inCycle) == 0 {
		return prog
	}
	cloneName := func(name string, d int) string {
		if d == 0 {
			return name
		}
		return fmt.Sprintf("%s__fusion_r%d", name, d)
	}
	out := &lang.Program{}
	for _, f := range prog.Funcs {
		if !inCycle[f.Name] {
			// Calls from non-recursive functions enter cycles at depth 0,
			// which keeps the original name: copy verbatim.
			out.Funcs = append(out.Funcs, lang.CloneFunc(f))
			continue
		}
		for d := 0; d < depth; d++ {
			nf := lang.CloneFunc(f)
			nf.Name = cloneName(f.Name, d)
			myComp := comp[f.Name]
			dd := d
			rewriteCallsStmt(nf.Body, func(c *lang.CallExpr) {
				if !inCycle[c.Name] || comp[c.Name] != myComp {
					return
				}
				if dd+1 < depth {
					c.Name = cloneName(c.Name, dd+1)
					return
				}
				// Bottom of the unrolling: havoc the call.
				c.Name = HavocFuncs[rets[c.Name]]
				if c.Name == "" {
					c.Name = havocInt
				}
				c.Args = nil
			})
			out.Funcs = append(out.Funcs, nf)
		}
	}
	return out
}

// rewriteCallsStmt applies fn to every call expression in the block, in
// evaluation order.
func rewriteCallsStmt(b *lang.BlockStmt, fn func(*lang.CallExpr)) {
	var visitExpr func(e lang.Expr)
	visitExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.UnaryExpr:
			visitExpr(e.X)
		case *lang.BinExpr:
			visitExpr(e.L)
			visitExpr(e.R)
		case *lang.CallExpr:
			for _, a := range e.Args {
				visitExpr(a)
			}
			fn(e)
		}
	}
	var visitStmt func(s lang.Stmt)
	visitStmt = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			for _, t := range s.Stmts {
				visitStmt(t)
			}
		case *lang.VarDecl:
			visitExpr(s.Init)
		case *lang.AssignStmt:
			visitExpr(s.Val)
		case *lang.IfStmt:
			visitExpr(s.Cond)
			visitStmt(s.Then)
			if s.Else != nil {
				visitStmt(s.Else)
			}
		case *lang.WhileStmt:
			visitExpr(s.Cond)
			visitStmt(s.Body)
		case *lang.ReturnStmt:
			if s.Val != nil {
				visitExpr(s.Val)
			}
		case *lang.ExprStmt:
			visitExpr(s.X)
		}
	}
	visitStmt(b)
}

// --- Single-exit normalization ---

// singleExit rewrites f so that it contains exactly one return statement,
// as the last statement of the body (the paper assumes one return as the
// single exit). Early returns become assignments to a synthesized result
// variable plus a guard flag; statements after a potentially-returning
// statement are wrapped in "if (!returned) { ... }".
func singleExit(f *lang.FuncDecl) {
	if !mayReturnBlock(f.Body) && f.Ret == lang.TypeVoid {
		return // nothing to normalize; void function without returns
	}
	if isTrivialSingleExit(f) {
		return
	}
	body := &lang.BlockStmt{Pos: f.Body.Pos}
	if f.Ret != lang.TypeVoid {
		body.Stmts = append(body.Stmts, &lang.VarDecl{
			Name: retVar, Type: f.Ret, Init: zeroValue(f.Ret), Pos: f.Pos,
		})
	}
	body.Stmts = append(body.Stmts, &lang.VarDecl{
		Name: returnedVar, Type: lang.TypeBool,
		Init: &lang.BoolLitExpr{Value: false}, Pos: f.Pos,
	})
	rewritten := rewriteReturns(f.Body, f.Ret)
	body.Stmts = append(body.Stmts, rewritten.Stmts...)
	if f.Ret != lang.TypeVoid {
		body.Stmts = append(body.Stmts, &lang.ReturnStmt{
			Val: &lang.IdentExpr{Name: retVar}, Pos: f.Pos,
		})
	}
	f.Body = body
}

// isTrivialSingleExit reports whether the body already has exactly one
// return, as its final top-level statement, and no other returns anywhere.
func isTrivialSingleExit(f *lang.FuncDecl) bool {
	n := len(f.Body.Stmts)
	if n == 0 {
		return f.Ret == lang.TypeVoid
	}
	last := f.Body.Stmts[n-1]
	_, lastIsRet := last.(*lang.ReturnStmt)
	if f.Ret != lang.TypeVoid && !lastIsRet {
		return false
	}
	for i, s := range f.Body.Stmts {
		if i == n-1 && lastIsRet {
			continue
		}
		if mayReturnStmt(s) {
			return false
		}
	}
	return true
}

func zeroValue(t lang.Type) lang.Expr {
	switch t {
	case lang.TypeBool:
		return &lang.BoolLitExpr{Value: false}
	case lang.TypePtr:
		return &lang.NullLitExpr{}
	default:
		return &lang.IntLitExpr{Value: 0}
	}
}

func mayReturnBlock(b *lang.BlockStmt) bool {
	for _, s := range b.Stmts {
		if mayReturnStmt(s) {
			return true
		}
	}
	return false
}

func mayReturnStmt(s lang.Stmt) bool {
	switch s := s.(type) {
	case *lang.ReturnStmt:
		return true
	case *lang.BlockStmt:
		return mayReturnBlock(s)
	case *lang.IfStmt:
		if mayReturnBlock(s.Then) {
			return true
		}
		return s.Else != nil && mayReturnBlock(s.Else)
	case *lang.WhileStmt:
		return mayReturnBlock(s.Body)
	default:
		return false
	}
}

// rewriteReturns converts every return in the block into assignments to
// the synthesized variables, guarding all statements that follow a
// potentially-returning statement.
func rewriteReturns(b *lang.BlockStmt, ret lang.Type) *lang.BlockStmt {
	out := &lang.BlockStmt{Pos: b.Pos}
	for i, s := range b.Stmts {
		ns := rewriteReturnsStmt(s, ret)
		out.Stmts = append(out.Stmts, ns...)
		if mayReturnStmt(s) && i+1 < len(b.Stmts) {
			rest := rewriteReturns(&lang.BlockStmt{Stmts: b.Stmts[i+1:], Pos: b.Pos}, ret)
			out.Stmts = append(out.Stmts, &lang.IfStmt{
				Cond: &lang.UnaryExpr{Op: lang.OpNot, X: &lang.IdentExpr{Name: returnedVar}},
				Then: rest,
				Pos:  s.StmtPos(),
			})
			return out
		}
	}
	return out
}

func rewriteReturnsStmt(s lang.Stmt, ret lang.Type) []lang.Stmt {
	switch s := s.(type) {
	case *lang.ReturnStmt:
		var out []lang.Stmt
		if s.Val != nil {
			out = append(out, &lang.AssignStmt{Name: retVar, Val: s.Val, Pos: s.Pos})
		}
		out = append(out, &lang.AssignStmt{
			Name: returnedVar, Val: &lang.BoolLitExpr{Value: true}, Pos: s.Pos,
		})
		return out
	case *lang.BlockStmt:
		return []lang.Stmt{rewriteReturns(s, ret)}
	case *lang.IfStmt:
		ns := &lang.IfStmt{Cond: s.Cond, Then: rewriteReturns(s.Then, ret), Pos: s.Pos}
		if s.Else != nil {
			ns.Else = rewriteReturns(s.Else, ret)
		}
		return []lang.Stmt{ns}
	case *lang.WhileStmt:
		// Loops are unrolled before single-exit normalization, so a while
		// here indicates a pipeline ordering bug.
		panic("unroll: while statement present during single-exit normalization")
	default:
		return []lang.Stmt{s}
	}
}
