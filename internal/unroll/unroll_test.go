package unroll

import (
	"strings"
	"testing"

	"fusion/internal/lang"
	"fusion/internal/sema"
)

func normalize(t *testing.T, src string, opts Options) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	return Normalize(prog, opts)
}

func countWhile(b *lang.BlockStmt) int {
	n := 0
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			for _, t := range s.Stmts {
				walk(t)
			}
		case *lang.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.WhileStmt:
			n++
			walk(s.Body)
		}
	}
	walk(b)
	return n
}

func countIf(b *lang.BlockStmt) int {
	n := 0
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			for _, t := range s.Stmts {
				walk(t)
			}
		case *lang.IfStmt:
			n++
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.WhileStmt:
			walk(s.Body)
		}
	}
	walk(b)
	return n
}

func countReturns(b *lang.BlockStmt) int {
	n := 0
	var walk func(s lang.Stmt)
	walk = func(s lang.Stmt) {
		switch s := s.(type) {
		case *lang.BlockStmt:
			for _, t := range s.Stmts {
				walk(t)
			}
		case *lang.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *lang.WhileStmt:
			walk(s.Body)
		case *lang.ReturnStmt:
			n++
		}
	}
	walk(b)
	return n
}

func TestLoopUnrolling(t *testing.T) {
	prog := normalize(t, `
fun f(n: int): int {
    var i: int = 0;
    while (i < n) {
        i = i + 1;
    }
    return i;
}`, Options{LoopUnroll: 3})
	f := prog.Func("f")
	if got := countWhile(f.Body); got != 0 {
		t.Errorf("loops remaining after unrolling: %d", got)
	}
	if got := countIf(f.Body); got != 3 {
		t.Errorf("unrolled iterations: got %d ifs, want 3", got)
	}
}

func TestNestedLoopUnrolling(t *testing.T) {
	prog := normalize(t, `
fun f(n: int): int {
    var i: int = 0;
    while (i < n) {
        var j: int = 0;
        while (j < n) {
            j = j + 1;
        }
        i = i + j;
    }
    return i;
}`, Options{LoopUnroll: 2})
	f := prog.Func("f")
	if got := countWhile(f.Body); got != 0 {
		t.Errorf("loops remaining after unrolling: %d", got)
	}
	// Outer loop contributes 2 ifs, each containing 2 from the inner loop.
	if got := countIf(f.Body); got != 6 {
		t.Errorf("nested unroll: got %d ifs, want 6", got)
	}
}

func TestSingleExit(t *testing.T) {
	prog := normalize(t, `
fun f(a: int): int {
    if (a > 0) {
        return 1;
    }
    return 2;
}`, Options{})
	f := prog.Func("f")
	if got := countReturns(f.Body); got != 1 {
		t.Fatalf("returns after normalization: got %d, want 1", got)
	}
	last := f.Body.Stmts[len(f.Body.Stmts)-1]
	if _, ok := last.(*lang.ReturnStmt); !ok {
		t.Errorf("last statement is %T, want return", last)
	}
}

func TestSingleExitPreservesTrivial(t *testing.T) {
	src := `
fun f(a: int): int {
    var b: int = a + 1;
    return b;
}`
	prog := normalize(t, src, Options{})
	f := prog.Func("f")
	if got := len(f.Body.Stmts); got != 2 {
		t.Errorf("trivial single-exit function was rewritten: %d statements", got)
	}
}

func TestSelfRecursionUnrolled(t *testing.T) {
	prog := normalize(t, `
fun fact(n: int): int {
    if (n <= 1) {
        return 1;
    }
    return n * fact(n - 1);
}`, Options{RecursionUnroll: 2})
	if prog.Func("fact") == nil {
		t.Fatal("original entry clone missing")
	}
	if prog.Func("fact__fusion_r1") == nil {
		t.Fatal("depth-1 clone missing")
	}
	if prog.Func("fact__fusion_r2") != nil {
		t.Fatal("unexpected depth-2 clone for RecursionUnroll=2")
	}
	// The deepest clone must not call fact at all.
	deep := prog.Func("fact__fusion_r1")
	text := lang.Format(&lang.Program{Funcs: []*lang.FuncDecl{deep}})
	if strings.Contains(text, "fact(") {
		t.Errorf("deepest clone still recursive:\n%s", text)
	}
	if !strings.Contains(text, "__fusion_havoc_int()") {
		t.Errorf("deepest clone should call havoc:\n%s", text)
	}
}

func TestMutualRecursionUnrolled(t *testing.T) {
	prog := normalize(t, `
fun even(n: int): bool {
    if (n == 0) {
        return true;
    }
    return odd(n - 1);
}
fun odd(n: int): bool {
    if (n == 0) {
        return false;
    }
    return even(n - 1);
}`, Options{RecursionUnroll: 2})
	for _, name := range []string{"even", "odd", "even__fusion_r1", "odd__fusion_r1"} {
		if prog.Func(name) == nil {
			t.Errorf("missing clone %s", name)
		}
	}
	// even at depth 0 must call odd__fusion_r1.
	text := lang.Format(&lang.Program{Funcs: []*lang.FuncDecl{prog.Func("even")}})
	if !strings.Contains(text, "odd__fusion_r1(") {
		t.Errorf("depth-0 even should call depth-1 odd:\n%s", text)
	}
}

func TestNonRecursiveProgramUntouchedByRecursionPass(t *testing.T) {
	prog := normalize(t, `
fun g(x: int): int { return x + 1; }
fun f(a: int): int { return g(g(a)); }`, Options{})
	// Only f, g, and the three havoc externs should exist.
	if len(prog.Funcs) != 5 {
		t.Errorf("got %d functions, want 5 (f, g, 3 havocs)", len(prog.Funcs))
	}
}

func TestHavocDeclsPresent(t *testing.T) {
	prog := normalize(t, "fun f() { }", Options{})
	for _, name := range []string{"__fusion_havoc_int", "__fusion_havoc_bool", "__fusion_havoc_ptr"} {
		f := prog.Func(name)
		if f == nil || !f.Extern {
			t.Errorf("havoc extern %s missing", name)
		}
		if !IsHavoc(name) {
			t.Errorf("IsHavoc(%s) = false", name)
		}
	}
	if IsHavoc("f") {
		t.Error("IsHavoc(f) = true")
	}
}

func TestNormalizedOutputStillChecks(t *testing.T) {
	// The normalized program must remain semantically valid.
	prog := normalize(t, `
fun fact(n: int): int {
    if (n <= 1) {
        return 1;
    }
    return n * fact(n - 1);
}
fun f(n: int): int {
    var total: int = 0;
    var i: int = 0;
    while (i < n) {
        total = total + fact(i);
        i = i + 1;
        if (total > 100) {
            return total;
        }
    }
    return total;
}`, Options{})
	if errs := sema.Check(prog); len(errs) > 0 {
		t.Fatalf("normalized program fails sema: %v\n%s", errs, lang.Format(prog))
	}
	for _, f := range prog.Funcs {
		if f.Body == nil {
			continue
		}
		if countWhile(f.Body) != 0 {
			t.Errorf("%s: loops remain", f.Name)
		}
		if n := countReturns(f.Body); n > 1 {
			t.Errorf("%s: %d returns remain", f.Name, n)
		}
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	src := `
fun f(n: int): int {
    while (n > 0) {
        n = n - 1;
    }
    return n;
}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	before := lang.Format(prog)
	Normalize(prog, Options{})
	if after := lang.Format(prog); after != before {
		t.Error("Normalize mutated its input program")
	}
}
