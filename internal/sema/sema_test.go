package sema

import (
	"strings"
	"testing"

	"fusion/internal/lang"
)

func checkSrc(t *testing.T, src string) []error {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func wantOK(t *testing.T, src string) {
	t.Helper()
	if errs := checkSrc(t, src); len(errs) > 0 {
		t.Errorf("unexpected errors: %v", errs)
	}
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	errs := checkSrc(t, src)
	if len(errs) == 0 {
		t.Errorf("expected error containing %q, got none", substr)
		return
	}
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Errorf("expected error containing %q, got %v", substr, errs)
}

func TestCheckValidProgram(t *testing.T) {
	wantOK(t, `
extern fun gets(): ptr;
fun bar(x: int): int {
    var y: int = x * 2;
    return y;
}
fun foo(a: int, b: int): ptr {
    var p: ptr = null;
    var c: int = bar(a);
    var d: int = bar(b);
    if (c < d) {
        return p;
    }
    return gets();
}`)
}

func TestCheckUndeclaredVariable(t *testing.T) {
	wantErr(t, "fun f(): int { return x; }", "undeclared variable x")
	wantErr(t, "fun f() { x = 1; }", "undeclared variable x")
}

func TestCheckUndeclaredFunction(t *testing.T) {
	wantErr(t, "fun f(): int { return g(); }", "undeclared function g")
}

func TestCheckTypeMismatches(t *testing.T) {
	wantErr(t, "fun f() { var x: int = true; }", "cannot initialize")
	wantErr(t, "fun f(a: int) { a = null; }", "cannot assign")
	wantErr(t, "fun f(a: int) { if (a) { } }", "must be bool")
	wantErr(t, "fun f(a: bool) { var x: int = a + 1; }", "requires int operands")
	wantErr(t, "fun f(a: bool, b: int) { var x: bool = a && (b == b); var y: bool = a && b; }", "requires bool operands")
	wantErr(t, "fun f(a: ptr, b: int) { var x: bool = a == b; }", "matching operand types")
	wantErr(t, "fun f(a: int): bool { return a; }", "cannot return")
	wantErr(t, "fun f(a: bool) { var x: int = -a; }", "requires int")
	wantErr(t, "fun f(a: int) { var x: bool = !a; }", "requires bool")
}

func TestCheckCallArity(t *testing.T) {
	wantErr(t, `
fun g(x: int): int { return x; }
fun f(): int { return g(); }`, "takes 1 arguments, got 0")
	wantErr(t, `
fun g(x: int): int { return x; }
fun f(): int { return g(true); }`, "cannot pass bool as int")
}

func TestCheckMissingReturn(t *testing.T) {
	wantErr(t, "fun f(a: int): int { if (a > 0) { return 1; } }", "missing return")
	wantOK(t, "fun f(a: int): int { if (a > 0) { return 1; } else { return 2; } }")
	wantOK(t, "fun f(a: int): int { if (a > 0) { return 1; } return 2; }")
}

func TestCheckVoidMisuse(t *testing.T) {
	wantErr(t, `
fun g() { }
fun f(): int { return g(); }`, "cannot return void")
	wantErr(t, `
fun g() { return 1; }`, "returns no value")
	wantErr(t, `fun f(): int { return; }`, "must return a int value")
}

func TestCheckShadowing(t *testing.T) {
	wantErr(t, "fun f(a: int) { var a: int = 1; }", "shadows")
	wantErr(t, "fun f(a: int) { if (a > 0) { var a: int = 1; } }", "shadows")
}

func TestCheckRedeclaredFunction(t *testing.T) {
	wantErr(t, "fun f() { }\nfun f() { }", "redeclared")
}

func TestCheckScoping(t *testing.T) {
	// A variable declared in a block is not visible outside it.
	wantErr(t, "fun f(a: int) { if (a > 0) { var x: int = 1; } a = x; }", "undeclared variable x")
	// But two sibling blocks may each declare the same name.
	wantOK(t, "fun f(a: int) { if (a > 0) { var x: int = 1; a = x; } if (a < 0) { var x: int = 2; a = x; } }")
}

func TestCheckPtrComparison(t *testing.T) {
	wantOK(t, "fun f(p: ptr): bool { return p == null; }")
	wantOK(t, "fun f(p: ptr, q: ptr): bool { return p != q; }")
	wantErr(t, "fun f(p: ptr): bool { return p < null; }", "requires int operands")
}
