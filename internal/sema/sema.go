// Package sema implements name resolution and type checking for the small
// language. Analysis passes downstream (unrolling, SSA construction, PDG
// building) assume a program that has passed Check.
package sema

import (
	"fmt"

	"fusion/internal/lang"
)

// Error is a semantic diagnostic attached to a source position.
type Error struct {
	Pos lang.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// checker carries the state for checking one program.
type checker struct {
	prog   *lang.Program
	funcs  map[string]*lang.FuncDecl
	errs   []error
	scopes []map[string]lang.Type
	cur    *lang.FuncDecl
}

// Check verifies the whole program and returns all diagnostics found.
// A nil return means the program is well-formed.
func Check(prog *lang.Program) []error {
	c := &checker{prog: prog, funcs: map[string]*lang.FuncDecl{}}
	for _, f := range prog.Funcs {
		if prev, ok := c.funcs[f.Name]; ok {
			c.errorf(f.Pos, "function %s redeclared (previous at %s)", f.Name, prev.Pos)
			continue
		}
		c.funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	return c.errs
}

// MustCheck panics if the program has semantic errors. Intended for tests
// and examples with literal sources.
func MustCheck(prog *lang.Program) {
	if errs := Check(prog); len(errs) > 0 {
		panic(errs[0])
	}
}

func (c *checker) errorf(pos lang.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]lang.Type{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t lang.Type, pos lang.Pos) {
	for _, s := range c.scopes {
		if _, ok := s[name]; ok {
			c.errorf(pos, "variable %s shadows an existing declaration", name)
			return
		}
	}
	c.scopes[len(c.scopes)-1][name] = t
}

func (c *checker) lookup(name string) (lang.Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return lang.TypeInvalid, false
}

func (c *checker) checkFunc(f *lang.FuncDecl) {
	if f.Extern {
		if f.Body != nil {
			c.errorf(f.Pos, "extern function %s must not have a body", f.Name)
		}
		return
	}
	if f.Body == nil {
		c.errorf(f.Pos, "function %s has no body", f.Name)
		return
	}
	c.cur = f
	c.pushScope()
	for _, p := range f.Params {
		if p.Type == lang.TypeVoid {
			c.errorf(p.Pos, "parameter %s has void type", p.Name)
		}
		c.declare(p.Name, p.Type, p.Pos)
	}
	c.checkBlock(f.Body)
	c.popScope()
	if f.Ret != lang.TypeVoid && !alwaysReturns(f.Body) {
		c.errorf(f.Pos, "function %s: missing return (not all paths return a value)", f.Name)
	}
	c.cur = nil
}

// alwaysReturns conservatively reports whether every execution of the block
// ends in a return statement.
func alwaysReturns(b *lang.BlockStmt) bool {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *lang.ReturnStmt:
			return true
		case *lang.IfStmt:
			if s.Else != nil && alwaysReturns(s.Then) && alwaysReturns(s.Else) {
				return true
			}
		case *lang.BlockStmt:
			if alwaysReturns(s) {
				return true
			}
		}
	}
	return false
}

func (c *checker) checkBlock(b *lang.BlockStmt) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		c.checkBlock(s)
	case *lang.VarDecl:
		t := adopt(s.Init, s.Type, c.checkExpr(s.Init))
		if t != lang.TypeInvalid && !assignable(s.Type, t) {
			c.errorf(s.Pos, "cannot initialize %s (%s) with %s value", s.Name, s.Type, t)
		}
		if s.Type == lang.TypeVoid {
			c.errorf(s.Pos, "variable %s has void type", s.Name)
		}
		c.declare(s.Name, s.Type, s.Pos)
	case *lang.AssignStmt:
		vt, ok := c.lookup(s.Name)
		if !ok {
			c.errorf(s.Pos, "assignment to undeclared variable %s", s.Name)
			vt = lang.TypeInvalid
		}
		t := adopt(s.Val, vt, c.checkExpr(s.Val))
		if vt != lang.TypeInvalid && t != lang.TypeInvalid && !assignable(vt, t) {
			c.errorf(s.Pos, "cannot assign %s value to %s (%s)", t, s.Name, vt)
		}
	case *lang.IfStmt:
		if t := c.checkExpr(s.Cond); t != lang.TypeInvalid && t != lang.TypeBool {
			c.errorf(s.Pos, "if condition must be bool, got %s", t)
		}
		c.checkBlock(s.Then)
		if s.Else != nil {
			c.checkBlock(s.Else)
		}
	case *lang.WhileStmt:
		if t := c.checkExpr(s.Cond); t != lang.TypeInvalid && t != lang.TypeBool {
			c.errorf(s.Pos, "while condition must be bool, got %s", t)
		}
		c.checkBlock(s.Body)
	case *lang.ReturnStmt:
		want := c.cur.Ret
		if s.Val == nil {
			if want != lang.TypeVoid {
				c.errorf(s.Pos, "function %s must return a %s value", c.cur.Name, want)
			}
			return
		}
		if want == lang.TypeVoid {
			c.errorf(s.Pos, "function %s returns no value", c.cur.Name)
			c.checkExpr(s.Val)
			return
		}
		if t := adopt(s.Val, want, c.checkExpr(s.Val)); t != lang.TypeInvalid && !assignable(want, t) {
			c.errorf(s.Pos, "cannot return %s value from function returning %s", t, want)
		}
	case *lang.ExprStmt:
		c.checkExpr(s.X)
	default:
		// A statement kind this checker does not know is a malformed input
		// (e.g. a hand-built AST), not a checker invariant: diagnose it
		// instead of crashing the pipeline.
		c.errorf(s.StmtPos(), "unknown statement %T", s)
	}
}

// assignable reports whether a value of type src can be stored into a
// location of type dst. Null literals type as ptr, so only identical types
// are assignable; integer widths never convert implicitly.
func assignable(dst, src lang.Type) bool { return dst == src }

// maxSignedFor returns the largest positive value of a narrow type, or 0
// for non-narrow types.
func maxSignedFor(t lang.Type) uint32 {
	switch t {
	case lang.TypeI8:
		return 1<<7 - 1
	case lang.TypeI16:
		return 1<<15 - 1
	}
	return 0
}

func isNarrow(t lang.Type) bool { return t == lang.TypeI8 || t == lang.TypeI16 }

// adopt retypes an untyped integer literal expression to the narrow type
// want when its value fits want's signed range, returning the effective
// type of e. Both bare literals (5) and negated literals (-5) adopt; any
// other expression keeps its checked type got. This is the only implicit
// typing rule narrow integers have — named values never convert.
func adopt(e lang.Expr, want, got lang.Type) lang.Type {
	if !isNarrow(want) || got != lang.TypeInt {
		return got
	}
	switch e := e.(type) {
	case *lang.IntLitExpr:
		if e.Value <= maxSignedFor(want) {
			e.T = want
			return want
		}
	case *lang.UnaryExpr:
		if e.Op != lang.OpNeg {
			return got
		}
		if lit, ok := e.X.(*lang.IntLitExpr); ok && lit.Value <= maxSignedFor(want)+1 {
			lit.T = want
			return want
		}
	}
	return got
}

func (c *checker) checkExpr(e lang.Expr) lang.Type {
	switch e := e.(type) {
	case *lang.IntLitExpr:
		return lang.TypeInt
	case *lang.BoolLitExpr:
		return lang.TypeBool
	case *lang.NullLitExpr:
		return lang.TypePtr
	case *lang.IdentExpr:
		t, ok := c.lookup(e.Name)
		if !ok {
			c.errorf(e.Pos, "undeclared variable %s", e.Name)
			return lang.TypeInvalid
		}
		return t
	case *lang.UnaryExpr:
		t := c.checkExpr(e.X)
		switch e.Op {
		case lang.OpNeg:
			if t != lang.TypeInvalid && !t.IsInteger() {
				c.errorf(e.Pos, "operator - requires integer operand, got %s", t)
				return lang.TypeInvalid
			}
			if t == lang.TypeInvalid {
				return lang.TypeInvalid
			}
			return t
		case lang.OpNot:
			if t != lang.TypeInvalid && t != lang.TypeBool {
				c.errorf(e.Pos, "operator ! requires bool, got %s", t)
				return lang.TypeInvalid
			}
			return lang.TypeBool
		}
		return lang.TypeInvalid
	case *lang.BinExpr:
		lt := c.checkExpr(e.L)
		rt := c.checkExpr(e.R)
		if lt == lang.TypeInvalid || rt == lang.TypeInvalid {
			if e.Op.IsComparison() || e.Op.IsLogical() {
				return lang.TypeBool
			}
			return lang.TypeInvalid
		}
		// A bare (or negated) int literal next to a narrow operand adopts
		// the narrow type, so `x < 10` works for x: i8 without widening.
		lt = adopt(e.L, rt, lt)
		rt = adopt(e.R, lt, rt)
		switch {
		case e.Op.IsLogical():
			if lt != lang.TypeBool || rt != lang.TypeBool {
				c.errorf(e.Pos, "operator %s requires bool operands, got %s and %s", e.Op, lt, rt)
			}
			return lang.TypeBool
		case e.Op == lang.OpEq || e.Op == lang.OpNe:
			if lt != rt || lt == lang.TypeVoid {
				c.errorf(e.Pos, "operator %s requires matching operand types, got %s and %s", e.Op, lt, rt)
			}
			return lang.TypeBool
		case e.Op.IsComparison():
			if !lt.IsInteger() || !rt.IsInteger() || lt != rt {
				c.errorf(e.Pos, "operator %s requires int operands of one width, got %s and %s", e.Op, lt, rt)
			}
			return lang.TypeBool
		default: // arithmetic and bitwise
			if !lt.IsInteger() || !rt.IsInteger() || lt != rt {
				c.errorf(e.Pos, "operator %s requires int operands of one width, got %s and %s", e.Op, lt, rt)
				return lang.TypeInvalid
			}
			return lt
		}
	case *lang.CallExpr:
		f, ok := c.funcs[e.Name]
		if !ok {
			c.errorf(e.Pos, "call to undeclared function %s", e.Name)
			for _, a := range e.Args {
				c.checkExpr(a)
			}
			return lang.TypeInvalid
		}
		if len(e.Args) != len(f.Params) {
			c.errorf(e.Pos, "function %s takes %d arguments, got %d", f.Name, len(f.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i < len(f.Params) {
				at = adopt(a, f.Params[i].Type, at)
			}
			if i < len(f.Params) && at != lang.TypeInvalid && !assignable(f.Params[i].Type, at) {
				c.errorf(a.ExprPos(), "argument %d of %s: cannot pass %s as %s", i+1, f.Name, at, f.Params[i].Type)
			}
		}
		return f.Ret
	default:
		// Same policy as unknown statements: report, don't crash.
		c.errorf(e.ExprPos(), "unknown expression %T", e)
		return lang.TypeInvalid
	}
}
