// Package faultinject is a deterministic fault-injection harness. A
// test (or the FUSION_FAULT environment variable) arms named injection
// points; production code calls Fire/Exhaust/Delay at those points,
// which are no-ops unless armed. Matching is stateless — a point fires
// for every unit whose name contains the armed substring — so the set
// of injected faults is a pure function of the armed spec and the work
// items, independent of scheduling and worker count.
//
// Points:
//
//	panic.parse   panic.sema   panic.ssa   panic.pdg   panic.absint
//	panic.enum    panic.check  panic.solve  stall.solve
//	solver.exhaust  cancel.delay  journal.sync
//
// Spec syntax: comma-separated "point" or "point:match" entries, e.g.
//
//	FUSION_FAULT=panic.check:fig1.fl:9 fusion -checker all fig1.fl
//
// arms a forced panic only for candidates whose unit label contains
// "fig1.fl:9".
//
// Two points exercise the supervision layer:
//
//   - "stall.solve[:match]" wedges the CDCL search of every matching
//     unit's solve: the search blocks without publishing heartbeat
//     progress until the attempt is explicitly cancelled — the watchdog
//     abandoning it, or the run being torn down; like a real wedge, it
//     does not notice a merely expired deadline — or until a safety cap
//     expires. This is exactly the failure mode the per-worker watchdog
//     abandons on.
//   - "panic.solve:<n>[:match]" panics on a matching unit's solve for
//     its first n attempts and succeeds from attempt n+1 on, so
//     "panic.solve:1" is recovered by a single retry. The attempt
//     count is per unit, making the injected fault set deterministic
//     for any worker count.
//
// "journal.sync[:match]" fails the checkpoint journal's fsync for
// matching record keys: the append is rolled back and Record returns an
// error instead of claiming durability, exercising the journal's
// write-then-publish discipline.
package faultinject

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// EnvVar is the environment variable ArmFromEnv reads.
const EnvVar = "FUSION_FAULT"

// Points is the closed set of valid injection-point names.
var Points = []string{
	"panic.parse",
	"panic.sema",
	"panic.ssa",
	"panic.pdg",
	"panic.absint",
	"panic.enum",
	"panic.check",
	"panic.solve",
	"stall.solve",
	"solver.exhaust",
	"cancel.delay",
	"journal.sync",
}

// Fault is the panic value raised by Fire, so containment layers can
// tell an injected crash from an organic one.
type Fault struct {
	Point string
	Unit  string
}

func (f Fault) String() string {
	return fmt.Sprintf("injected fault %s at %q", f.Point, f.Unit)
}

var (
	mu    sync.RWMutex
	armed map[string][]string // point → unit substrings ("" = all units)
)

// ArmSpec arms the points named in spec ("point[:match],..."). An
// empty spec arms nothing. Unknown point names are an error so typos
// in CI matrices fail loudly instead of silently injecting nothing.
func ArmSpec(spec string) error {
	mu.Lock()
	defer mu.Unlock()
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, match := entry, ""
		if i := strings.IndexByte(entry, ':'); i >= 0 {
			point, match = entry[:i], entry[i+1:]
		}
		if !validPoint(point) {
			return fmt.Errorf("faultinject: unknown point %q (valid: %s)",
				point, strings.Join(Points, ", "))
		}
		if point == "panic.solve" {
			// The first match field is the attempt count, mandatory:
			// "panic.solve:<n>[:match]".
			nStr := match
			if i := strings.IndexByte(nStr, ':'); i >= 0 {
				nStr = nStr[:i]
			}
			if n, err := strconv.Atoi(nStr); err != nil || n < 1 {
				return fmt.Errorf("faultinject: panic.solve needs a positive attempt count: panic.solve:<n>[:match], got %q", entry)
			}
		}
		if armed == nil {
			armed = map[string][]string{}
		}
		armed[point] = append(armed[point], match)
	}
	return nil
}

// ArmFromEnv arms from $FUSION_FAULT. Binaries call it at startup.
func ArmFromEnv() error { return ArmSpec(os.Getenv(EnvVar)) }

// Reset disarms every point. Tests defer it.
func Reset() {
	mu.Lock()
	armed = nil
	mu.Unlock()
}

// Enabled reports whether any point is armed. Hot paths may use it to
// skip per-item Fire calls entirely when the harness is idle.
func Enabled() bool {
	mu.RLock()
	defer mu.RUnlock()
	return len(armed) > 0
}

// Armed reports whether point would fire for unit.
func Armed(point, unit string) bool {
	mu.RLock()
	defer mu.RUnlock()
	for _, match := range armed[point] {
		if match == "" || strings.Contains(unit, match) {
			return true
		}
	}
	return false
}

// Fire panics with a Fault if point is armed for unit; otherwise it is
// a no-op. Place it at the top of the contained region for the stage.
func Fire(point, unit string) {
	if Armed(point, unit) {
		panic(Fault{Point: point, Unit: unit})
	}
}

// Exhaust reports whether an artificial solver-budget exhaustion is
// armed for unit (point "solver.exhaust").
func Exhaust(unit string) bool { return Armed("solver.exhaust", unit) }

// FireSolveAttempt panics with a Fault if "panic.solve:<n>[:match]" is
// armed for unit and the (1-based) attempt is at most n: the unit's
// first n solve attempts crash and attempt n+1 succeeds, exercising the
// retry ladder deterministically at any worker count.
func FireSolveAttempt(unit string, attempt int) {
	mu.RLock()
	entries := armed["panic.solve"]
	mu.RUnlock()
	for _, m := range entries {
		nStr, match := m, ""
		if i := strings.IndexByte(m, ':'); i >= 0 {
			nStr, match = m[:i], m[i+1:]
		}
		n, err := strconv.Atoi(nStr)
		if err != nil {
			continue // ArmSpec validated; unreachable in practice
		}
		if (match == "" || strings.Contains(unit, match)) && attempt <= n {
			panic(Fault{Point: "panic.solve", Unit: unit})
		}
	}
}

var (
	stallMu  sync.Mutex
	stallCap = 30 * time.Second
)

// SetStallCap bounds how long StallSolve may block when its context is
// never cancelled (a run without a watchdog); tests shorten it. It
// returns the previous cap so a deferred call can restore it.
func SetStallCap(d time.Duration) time.Duration {
	stallMu.Lock()
	defer stallMu.Unlock()
	prev := stallCap
	stallCap = d
	return prev
}

// StallSolve blocks if "stall.solve" is armed for unit, simulating a
// solve that wedges without making heartbeat progress. The stall ends
// when ctx is cancelled — the watchdog abandoning the unit cancels its
// context, which releases the orphaned goroutine — or after the safety
// cap, whichever comes first.
func StallSolve(ctx context.Context, unit string) {
	if !Armed("stall.solve", unit) {
		return
	}
	stallMu.Lock()
	cap := stallCap
	stallMu.Unlock()
	if ctx == nil {
		time.Sleep(cap)
		return
	}
	t := time.NewTimer(cap)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Delay sleeps for d if "cancel.delay" is armed for unit, modeling a
// unit that keeps running for a while after cancellation was asked.
func Delay(unit string, d time.Duration) {
	if Armed("cancel.delay", unit) {
		time.Sleep(d)
	}
}

// ArmedSpec renders the currently armed points back into spec syntax,
// sorted, for diagnostics.
func ArmedSpec() string {
	mu.RLock()
	defer mu.RUnlock()
	var entries []string
	for point, matches := range armed {
		for _, m := range matches {
			if m == "" {
				entries = append(entries, point)
			} else {
				entries = append(entries, point+":"+m)
			}
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, ",")
}

func validPoint(p string) bool {
	for _, q := range Points {
		if p == q {
			return true
		}
	}
	return false
}
