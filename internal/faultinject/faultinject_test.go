package faultinject

import (
	"testing"
	"time"
)

func TestArmSpecAndFire(t *testing.T) {
	defer Reset()
	if Enabled() {
		t.Fatal("harness armed before ArmSpec")
	}
	if err := ArmSpec("panic.check:f.fl:3,solver.exhaust"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("harness not enabled after ArmSpec")
	}
	if Armed("panic.check", "null-deref g.fl:1:1") {
		t.Error("fired for a non-matching unit")
	}
	if !Armed("panic.check", "null-deref f.fl:3:9") {
		t.Error("did not fire for a matching unit")
	}
	if !Exhaust("anything") {
		t.Error("solver.exhaust with no match must fire for every unit")
	}

	defer func() {
		v := recover()
		f, ok := v.(Fault)
		if !ok {
			t.Fatalf("Fire panicked with %T, want Fault", v)
		}
		if f.Point != "panic.check" {
			t.Errorf("wrong point: %+v", f)
		}
	}()
	Fire("panic.check", "null-deref f.fl:3:9")
	t.Fatal("Fire did not panic")
}

func TestArmSpecRejectsUnknownPoint(t *testing.T) {
	defer Reset()
	if err := ArmSpec("panic.nosuch"); err == nil {
		t.Error("unknown point accepted")
	}
}

func TestArmSpecEmpty(t *testing.T) {
	defer Reset()
	if err := ArmSpec(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("empty spec armed something")
	}
}

func TestDelayNoopWhenDisarmed(t *testing.T) {
	defer Reset()
	start := time.Now()
	Delay("unit", time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Error("Delay slept while disarmed")
	}
}

func TestArmedSpecRoundTrip(t *testing.T) {
	defer Reset()
	spec := "cancel.delay,panic.sema:a.fl"
	if err := ArmSpec(spec); err != nil {
		t.Fatal(err)
	}
	if got := ArmedSpec(); got != spec {
		t.Errorf("ArmedSpec() = %q, want %q", got, spec)
	}
}
