package faultinject

import (
	"context"
	"testing"
	"time"
)

func TestArmSpecAndFire(t *testing.T) {
	defer Reset()
	if Enabled() {
		t.Fatal("harness armed before ArmSpec")
	}
	if err := ArmSpec("panic.check:f.fl:3,solver.exhaust"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("harness not enabled after ArmSpec")
	}
	if Armed("panic.check", "null-deref g.fl:1:1") {
		t.Error("fired for a non-matching unit")
	}
	if !Armed("panic.check", "null-deref f.fl:3:9") {
		t.Error("did not fire for a matching unit")
	}
	if !Exhaust("anything") {
		t.Error("solver.exhaust with no match must fire for every unit")
	}

	defer func() {
		v := recover()
		f, ok := v.(Fault)
		if !ok {
			t.Fatalf("Fire panicked with %T, want Fault", v)
		}
		if f.Point != "panic.check" {
			t.Errorf("wrong point: %+v", f)
		}
	}()
	Fire("panic.check", "null-deref f.fl:3:9")
	t.Fatal("Fire did not panic")
}

func TestArmSpecRejectsUnknownPoint(t *testing.T) {
	defer Reset()
	if err := ArmSpec("panic.nosuch"); err == nil {
		t.Error("unknown point accepted")
	}
}

func TestArmSpecEmpty(t *testing.T) {
	defer Reset()
	if err := ArmSpec(""); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Error("empty spec armed something")
	}
}

func TestDelayNoopWhenDisarmed(t *testing.T) {
	defer Reset()
	start := time.Now()
	Delay("unit", time.Second)
	if time.Since(start) > 100*time.Millisecond {
		t.Error("Delay slept while disarmed")
	}
}

func TestArmedSpecRoundTrip(t *testing.T) {
	defer Reset()
	spec := "cancel.delay,panic.sema:a.fl"
	if err := ArmSpec(spec); err != nil {
		t.Fatal(err)
	}
	if got := ArmedSpec(); got != spec {
		t.Errorf("ArmedSpec() = %q, want %q", got, spec)
	}
}

func TestArmSpecRejectsPanicSolveWithoutCount(t *testing.T) {
	defer Reset()
	for _, spec := range []string{"panic.solve", "panic.solve:", "panic.solve:zero", "panic.solve:0", "panic.solve:-1", "panic.solve:0:unit"} {
		if err := ArmSpec(spec); err == nil {
			t.Errorf("ArmSpec(%q) accepted a missing/invalid attempt count", spec)
		}
		Reset()
	}
}

func TestFireSolveAttemptCountsPerUnit(t *testing.T) {
	defer Reset()
	if err := ArmSpec("panic.solve:2:f.fl"); err != nil {
		t.Fatal(err)
	}
	panics := func(unit string, attempt int) (fired bool) {
		defer func() {
			if v := recover(); v != nil {
				f, ok := v.(Fault)
				if !ok || f.Point != "panic.solve" {
					t.Fatalf("panicked with %v, want a panic.solve Fault", v)
				}
				fired = true
			}
		}()
		FireSolveAttempt(unit, attempt)
		return false
	}
	if !panics("check f.fl:3", 1) || !panics("check f.fl:3", 2) {
		t.Error("attempts 1..n must crash")
	}
	if panics("check f.fl:3", 3) {
		t.Error("attempt n+1 must succeed")
	}
	if panics("check g.fl:1", 1) {
		t.Error("non-matching unit crashed")
	}
}

func TestStallSolveDisarmedIsNoop(t *testing.T) {
	defer Reset()
	start := time.Now()
	StallSolve(context.Background(), "unit")
	if time.Since(start) > 100*time.Millisecond {
		t.Error("StallSolve blocked while disarmed")
	}
}

func TestStallSolveReleasedByCancel(t *testing.T) {
	defer Reset()
	defer SetStallCap(SetStallCap(time.Minute))
	if err := ArmSpec("stall.solve"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	StallSolve(ctx, "unit")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("StallSolve held for %v after cancellation", elapsed)
	}
}

func TestStallSolveRespectsCap(t *testing.T) {
	defer Reset()
	defer SetStallCap(SetStallCap(20 * time.Millisecond))
	if err := ArmSpec("stall.solve:wedge"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	StallSolve(context.Background(), "solve wedge #1")
	elapsed := time.Since(start)
	if elapsed < 10*time.Millisecond {
		t.Errorf("armed stall returned after %v, before the cap", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("stall overran its cap: %v", elapsed)
	}
}
