// Package interp is a reference interpreter for the analysis language with
// dynamic taint shadowing. It serves as the ground-truth semantics the
// pipeline is tested against:
//
//   - normalization must preserve meaning (unroll_test);
//   - SSA evaluation and the SMT translation must agree with it;
//   - and, the strongest property, the analysis must be sound with respect
//     to it: if a concrete execution carries a tracked value from a source
//     occurrence into a sink call, the sparse analysis must produce that
//     candidate and the feasibility engines must accept it — the execution
//     itself is the satisfying witness.
//
// Extern functions return values drawn from a seeded stream, so runs are
// deterministic and replayable.
package interp

import (
	"fmt"
	"math/rand"

	"fusion/internal/lang"
)

// Taint is a set of source occurrences, identified by source position.
type Taint map[lang.Pos]bool

func (t Taint) clone() Taint {
	if len(t) == 0 {
		return nil
	}
	out := make(Taint, len(t))
	for k := range t {
		out[k] = true
	}
	return out
}

func union(a, b Taint) Taint {
	if len(a) == 0 {
		return b.clone()
	}
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

// Value is a runtime value with its taint shadow.
type Value struct {
	V     uint32
	Taint Taint
}

// SinkHit records a sink-call argument observed during execution, with the
// taint it carried.
type SinkHit struct {
	Callee  string
	CallPos lang.Pos
	ArgIdx  int
	Taint   Taint
}

// Options configure an execution.
type Options struct {
	// Seed drives extern return values.
	Seed int64
	// MaxSteps bounds execution (the language is loop-free after
	// normalization, but the interpreter also runs raw programs).
	MaxSteps int
	// MaxLoopIters bounds each while loop when interpreting raw programs.
	MaxLoopIters int
	// TaintSources lists extern functions whose results are tainted.
	TaintSources map[string]bool
	// TaintNull taints null literals (the null-exception source).
	TaintNull bool
	// SinkCalls lists extern functions whose arguments are observed.
	SinkCalls map[string]bool
	// TaintThroughExtern propagates argument taint to extern results.
	TaintThroughExtern bool
	// ObserveDivZero records a SinkHit (Callee "/" or "%") whenever a
	// division or remainder executes with a zero divisor, carrying the
	// divisor's taint — the dynamic counterpart of the CWE-369 checker.
	ObserveDivZero bool
	// SinkBounds maps extern names to a bounds-checked index argument: a
	// SinkHit is recorded only when the index actually falls outside
	// [0, Size) under the signed interpretation — the dynamic counterpart
	// of the CWE-125 checker.
	SinkBounds map[string]SinkBound
}

// SinkBound describes a bounds-checked extern argument (mirrors the sparse
// engine's IndexSink without importing it). When DynBound is set the
// buffer length is the BoundArg-th argument of the call rather than Size.
type SinkBound struct {
	Arg      int
	Size     uint32
	DynBound bool
	BoundArg int
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 1 << 20
	}
	return o.MaxSteps
}

func (o Options) maxLoopIters() int {
	if o.MaxLoopIters <= 0 {
		return 64
	}
	return o.MaxLoopIters
}

// Result is the outcome of one execution.
type Result struct {
	// Return is the root function's return value, if any.
	Return *Value
	// Hits are the observed sink-call arguments, in execution order.
	Hits []SinkHit
	// Steps is the number of statements executed.
	Steps int
}

// Interp executes programs.
type Interp struct {
	prog *lang.Program
	opts Options
	rng  *rand.Rand
	hits []SinkHit
	step int
}

// New returns an interpreter over a checked program.
func New(prog *lang.Program, opts Options) *Interp {
	return &Interp{prog: prog, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// errReturn carries a return value up the statement walk.
type errReturn struct{ v *Value }

func (errReturn) Error() string { return "return" }

// errBudget reports step exhaustion.
type errBudget struct{}

func (errBudget) Error() string { return "interp: step budget exhausted" }

// Run executes the named function with the given argument values.
func (in *Interp) Run(fn string, args []Value) (Result, error) {
	in.hits = nil
	in.step = 0
	f := in.prog.Func(fn)
	if f == nil {
		return Result{}, fmt.Errorf("interp: no function %s", fn)
	}
	ret, err := in.call(f, args)
	if err != nil {
		return Result{}, err
	}
	return Result{Return: ret, Hits: in.hits, Steps: in.step}, nil
}

func (in *Interp) call(f *lang.FuncDecl, args []Value) (*Value, error) {
	if f.Extern {
		return in.extern(f, args, f.Pos)
	}
	if len(args) != len(f.Params) {
		return nil, fmt.Errorf("interp: %s: got %d args, want %d", f.Name, len(args), len(f.Params))
	}
	env := &env{vars: map[string]Value{}, types: map[string]lang.Type{}}
	for i, p := range f.Params {
		env.vars[p.Name] = maskValue(args[i], p.Type)
		env.types[p.Name] = p.Type
	}
	err := in.block(f.Body, env)
	if r, ok := err.(errReturn); ok {
		return r.v, nil
	}
	if err != nil {
		return nil, err
	}
	return nil, nil
}

// extern models an empty function: a fresh value from the seeded stream,
// tainted when the function is a configured source (or when taint flows
// through externs and an argument is tainted).
func (in *Interp) extern(f *lang.FuncDecl, args []Value, pos lang.Pos) (*Value, error) {
	var t Taint
	if in.opts.TaintThroughExtern {
		for _, a := range args {
			t = union(t, a.Taint)
		}
	}
	if in.opts.TaintSources[f.Name] {
		t = union(t, Taint{pos: true})
	}
	if f.Ret == lang.TypeVoid {
		return nil, nil
	}
	v := maskW(in.rng.Uint32(), f.Ret.Bits())
	return &Value{V: v, Taint: t}, nil
}

type env struct {
	vars  map[string]Value
	types map[string]lang.Type
}

// maskW truncates v to w bits; narrow values are stored masked, matching
// the bit-vector semantics of the backend.
func maskW(v uint32, w int) uint32 {
	if w >= 32 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

func maskValue(v Value, t lang.Type) Value {
	v.V = maskW(v.V, t.Bits())
	return v
}

// typeOf resolves the static type of an expression syntactically: declared
// types flow from the environment and function signatures, and literals
// carry the type the checker adopted them at. It exists so evaluation can
// wrap arithmetic at the operand type's width.
func (in *Interp) typeOf(x lang.Expr, e *env) lang.Type {
	switch x := x.(type) {
	case *lang.IntLitExpr:
		return x.LitType()
	case *lang.BoolLitExpr:
		return lang.TypeBool
	case *lang.NullLitExpr:
		return lang.TypePtr
	case *lang.IdentExpr:
		if t, ok := e.types[x.Name]; ok {
			return t
		}
		return lang.TypeInt
	case *lang.UnaryExpr:
		if x.Op == lang.OpNot {
			return lang.TypeBool
		}
		return in.typeOf(x.X, e)
	case *lang.BinExpr:
		if x.Op.IsComparison() || x.Op.IsLogical() {
			return lang.TypeBool
		}
		// Both operands agree after checking; prefer whichever side
		// resolves to a narrow type in case the other is a literal.
		lt := in.typeOf(x.L, e)
		if lt == lang.TypeI8 || lt == lang.TypeI16 {
			return lt
		}
		if rt := in.typeOf(x.R, e); rt == lang.TypeI8 || rt == lang.TypeI16 {
			return rt
		}
		return lt
	case *lang.CallExpr:
		if f := in.prog.Func(x.Name); f != nil {
			return f.Ret
		}
	}
	return lang.TypeInt
}

func (in *Interp) block(b *lang.BlockStmt, e *env) error {
	// Block-scoped declarations: names declared here vanish afterwards.
	var declared []string
	defer func() {
		for _, n := range declared {
			delete(e.vars, n)
			delete(e.types, n)
		}
	}()
	for _, s := range b.Stmts {
		in.step++
		if in.step > in.opts.maxSteps() {
			return errBudget{}
		}
		switch s := s.(type) {
		case *lang.BlockStmt:
			if err := in.block(s, e); err != nil {
				return err
			}
		case *lang.VarDecl:
			v, err := in.expr(s.Init, e)
			if err != nil {
				return err
			}
			e.vars[s.Name] = maskValue(v, s.Type)
			e.types[s.Name] = s.Type
			declared = append(declared, s.Name)
		case *lang.AssignStmt:
			v, err := in.expr(s.Val, e)
			if err != nil {
				return err
			}
			if t, ok := e.types[s.Name]; ok {
				v = maskValue(v, t)
			}
			e.vars[s.Name] = v
		case *lang.IfStmt:
			c, err := in.expr(s.Cond, e)
			if err != nil {
				return err
			}
			if c.V == 1 {
				if err := in.block(s.Then, e); err != nil {
					return err
				}
			} else if s.Else != nil {
				if err := in.block(s.Else, e); err != nil {
					return err
				}
			}
		case *lang.WhileStmt:
			for iter := 0; ; iter++ {
				c, err := in.expr(s.Cond, e)
				if err != nil {
					return err
				}
				if c.V != 1 || iter >= in.opts.maxLoopIters() {
					break
				}
				if err := in.block(s.Body, e); err != nil {
					return err
				}
			}
		case *lang.ReturnStmt:
			if s.Val == nil {
				return errReturn{}
			}
			v, err := in.expr(s.Val, e)
			if err != nil {
				return err
			}
			return errReturn{v: &v}
		case *lang.ExprStmt:
			if _, err := in.expr(s.X, e); err != nil {
				return err
			}
		default:
			return fmt.Errorf("interp: unknown statement %T", s)
		}
	}
	return nil
}

func boolToBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (in *Interp) expr(x lang.Expr, e *env) (Value, error) {
	switch x := x.(type) {
	case *lang.IntLitExpr:
		return Value{V: maskW(x.Value, x.LitType().Bits())}, nil
	case *lang.BoolLitExpr:
		return Value{V: boolToBit(x.Value)}, nil
	case *lang.NullLitExpr:
		var t Taint
		if in.opts.TaintNull {
			t = Taint{x.Pos: true}
		}
		return Value{V: 0, Taint: t}, nil
	case *lang.IdentExpr:
		v, ok := e.vars[x.Name]
		if !ok {
			return Value{}, fmt.Errorf("interp: %s: undefined variable %s", x.Pos, x.Name)
		}
		return v, nil
	case *lang.UnaryExpr:
		v, err := in.expr(x.X, e)
		if err != nil {
			return Value{}, err
		}
		if x.Op == lang.OpNot {
			return Value{V: v.V ^ 1, Taint: v.Taint.clone()}, nil
		}
		w := in.typeOf(x.X, e).Bits()
		return Value{V: maskW(-v.V, w), Taint: v.Taint.clone()}, nil
	case *lang.BinExpr:
		l, err := in.expr(x.L, e)
		if err != nil {
			return Value{}, err
		}
		r, err := in.expr(x.R, e)
		if err != nil {
			return Value{}, err
		}
		if in.opts.ObserveDivZero && (x.Op == lang.OpDiv || x.Op == lang.OpRem) && r.V == 0 {
			in.hits = append(in.hits, SinkHit{
				Callee: x.Op.String(), CallPos: x.Pos, ArgIdx: 1, Taint: r.Taint.clone(),
			})
		}
		w := 32
		if x.Op.IsLogical() {
			w = 1
		} else {
			w = in.typeOf(x.L, e).Bits()
			if w == 32 {
				if rw := in.typeOf(x.R, e).Bits(); rw < 32 {
					w = rw
				}
			}
		}
		return Value{V: binOp(x.Op, l.V, r.V, w), Taint: union(l.Taint, r.Taint)}, nil
	case *lang.CallExpr:
		f := in.prog.Func(x.Name)
		if f == nil {
			return Value{}, fmt.Errorf("interp: %s: no function %s", x.Pos, x.Name)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.expr(a, e)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		// Sink observation happens at the call boundary.
		if f.Extern && in.opts.SinkCalls[f.Name] {
			for i, a := range args {
				in.hits = append(in.hits, SinkHit{
					Callee: f.Name, CallPos: x.Pos, ArgIdx: i, Taint: a.Taint.clone(),
				})
			}
		}
		if sb, ok := in.opts.SinkBounds[x.Name]; f.Extern && ok && sb.Arg < len(args) {
			idx := args[sb.Arg]
			size := int32(sb.Size)
			if sb.DynBound {
				if sb.BoundArg >= len(args) {
					size = 0
				} else {
					size = int32(args[sb.BoundArg].V)
				}
			}
			if int32(idx.V) < 0 || int32(idx.V) >= size {
				in.hits = append(in.hits, SinkHit{
					Callee: f.Name, CallPos: x.Pos, ArgIdx: sb.Arg, Taint: idx.Taint.clone(),
				})
			}
		}
		var ret *Value
		var err error
		if f.Extern {
			ret, err = in.extern(f, args, x.Pos)
		} else {
			ret, err = in.call(f, args)
		}
		if err != nil {
			return Value{}, err
		}
		if ret == nil {
			return Value{}, nil
		}
		return *ret, nil
	default:
		return Value{}, fmt.Errorf("interp: unknown expression %T", x)
	}
}

// signBitW reports whether the top bit of a w-bit value is set.
func signBitW(v uint32, w int) bool { return v>>(uint(w)-1)&1 == 1 }

// signedLessW compares two w-bit values under the signed interpretation.
func signedLessW(l, r uint32, w int, orEqual bool) bool {
	sl, sr := signBitW(l, w), signBitW(r, w)
	if sl != sr {
		return sl // negative < non-negative
	}
	if orEqual {
		return l <= r
	}
	return l < r
}

// binOp implements the language's binary operators on w-bit values
// (booleans are 0/1 at width 1), matching the bit-vector semantics of the
// backend operator for operator: arithmetic wraps modulo 2^w, division and
// shifts are unsigned, comparisons are signed.
func binOp(op lang.BinOp, l, r uint32, w int) uint32 {
	switch op {
	case lang.OpAdd:
		return maskW(l+r, w)
	case lang.OpSub:
		return maskW(l-r, w)
	case lang.OpMul:
		return maskW(l*r, w)
	case lang.OpDiv:
		if r == 0 {
			return maskW(^uint32(0), w)
		}
		return l / r
	case lang.OpRem:
		if r == 0 {
			return l
		}
		return l % r
	case lang.OpEq:
		return boolToBit(l == r)
	case lang.OpNe:
		return boolToBit(l != r)
	case lang.OpLt:
		return boolToBit(signedLessW(l, r, w, false))
	case lang.OpLe:
		return boolToBit(signedLessW(l, r, w, true))
	case lang.OpGt:
		return boolToBit(signedLessW(r, l, w, false))
	case lang.OpGe:
		return boolToBit(signedLessW(r, l, w, true))
	case lang.OpAnd, lang.OpBitAnd:
		return l & r
	case lang.OpOr, lang.OpBitOr:
		return l | r
	case lang.OpBitXor:
		return l ^ r
	case lang.OpShl:
		if r >= uint32(w) {
			return 0
		}
		return maskW(l<<r, w)
	case lang.OpShr:
		if r >= uint32(w) {
			return 0
		}
		return l >> r
	default:
		panic(fmt.Sprintf("interp: unknown operator %s", op))
	}
}

// SpecOptions derives interpreter options matching a checker's source/sink
// vocabulary. Division by generics is avoided to keep interp free of
// analysis imports; callers pass the name sets.
func SpecOptions(seed int64, taintNull bool, sources, sinks []string, throughExtern bool) Options {
	o := Options{
		Seed:               seed,
		TaintNull:          taintNull,
		TaintSources:       map[string]bool{},
		SinkCalls:          map[string]bool{},
		TaintThroughExtern: throughExtern,
	}
	for _, s := range sources {
		o.TaintSources[s] = true
	}
	for _, s := range sinks {
		o.SinkCalls[s] = true
	}
	return o
}
