package interp_test

import (
	"testing"

	"fusion/internal/checker"
	"fusion/internal/interp"
	"fusion/internal/lang"
	"fusion/internal/sema"
	"fusion/internal/unroll"
)

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(checker.Prelude + src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	return prog
}

func run(t *testing.T, prog *lang.Program, fn string, opts interp.Options, args ...uint32) interp.Result {
	t.Helper()
	vals := make([]interp.Value, len(args))
	for i, a := range args {
		vals[i] = interp.Value{V: a}
	}
	r, err := interp.New(prog, opts).Run(fn, vals)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return r
}

func TestArithmetic(t *testing.T) {
	prog := parse(t, `
fun f(a: int, b: int): int {
    var x: int = a * 3 + b;
    var y: int = x - a / 2;
    return y ^ 12;
}`)
	r := run(t, prog, "f", interp.Options{}, 10, 4)
	want := ((10*3 + 4) - 10/2) ^ 12
	if r.Return == nil || r.Return.V != uint32(want) {
		t.Fatalf("got %v, want %d", r.Return, want)
	}
}

func TestControlFlow(t *testing.T) {
	prog := parse(t, `
fun max(a: int, b: int): int {
    if (a > b) {
        return a;
    }
    return b;
}
fun f(n: int): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < n) {
        acc = acc + i;
        i = i + 1;
    }
    return max(acc, 100);
}`)
	if r := run(t, prog, "f", interp.Options{}, 5); r.Return.V != 100 {
		t.Errorf("f(5) = %d, want 100 (0+1+2+3+4 < 100)", r.Return.V)
	}
	if r := run(t, prog, "f", interp.Options{}, 20); r.Return.V != 190 {
		t.Errorf("f(20) = %d, want 190", r.Return.V)
	}
	// Signed comparison.
	if r := run(t, prog, "max", interp.Options{}, 0xFFFFFFFF, 1); r.Return.V != 1 {
		t.Errorf("max(-1, 1) = %d, want 1", r.Return.V)
	}
}

func TestLoopBudget(t *testing.T) {
	prog := parse(t, `
fun f(): int {
    var i: int = 0;
    while (i >= 0) {
        i = i + 1;
    }
    return i;
}`)
	r := run(t, prog, "f", interp.Options{MaxLoopIters: 10})
	if r.Return.V != 10 {
		t.Errorf("bounded loop: got %d, want 10", r.Return.V)
	}
}

func TestExternDeterminism(t *testing.T) {
	prog := parse(t, `
fun f(): int {
    var a: int = user_input();
    var b: int = user_input();
    return a + b;
}`)
	r1 := run(t, prog, "f", interp.Options{Seed: 3})
	r2 := run(t, prog, "f", interp.Options{Seed: 3})
	if r1.Return.V != r2.Return.V {
		t.Error("same seed must give the same extern stream")
	}
	r3 := run(t, prog, "f", interp.Options{Seed: 4})
	if r3.Return.V == r1.Return.V {
		t.Log("different seeds coincided (unlikely but possible)")
	}
}

func TestTaintFlow(t *testing.T) {
	prog := parse(t, `
fun relay(x: int): int {
    var y: int = x + 1;
    return y;
}
fun f(a: int) {
    var s: int = read_secret();
    var v: int = relay(s);
    if (a > 0) {
        send(v);
    }
    send(a);
}`)
	opts := interp.SpecOptions(1, false, checker.SecretSources, checker.TransmitSinks, true)
	r := run(t, prog, "f", opts, 5)
	if len(r.Hits) != 2 {
		t.Fatalf("got %d sink hits, want 2", len(r.Hits))
	}
	if len(r.Hits[0].Taint) != 1 {
		t.Errorf("send(v) must carry the secret's taint: %v", r.Hits[0].Taint)
	}
	if len(r.Hits[1].Taint) != 0 {
		t.Errorf("send(a) must be clean: %v", r.Hits[1].Taint)
	}
	// With a <= 0 the tainted send does not execute.
	r2 := run(t, prog, "f", opts, 0)
	if len(r2.Hits) != 1 || len(r2.Hits[0].Taint) != 0 {
		t.Errorf("guarded sink must not fire: %+v", r2.Hits)
	}
}

func TestNullTaint(t *testing.T) {
	prog := parse(t, `
fun f(a: int) {
    var p: ptr = null;
    var q: ptr = p;
    if (a == 7) {
        deref(q);
    }
}`)
	opts := interp.SpecOptions(1, true, nil, checker.NullSinks, false)
	r := run(t, prog, "f", opts, 7)
	if len(r.Hits) != 1 || len(r.Hits[0].Taint) != 1 {
		t.Fatalf("deref must carry the null taint: %+v", r.Hits)
	}
	r2 := run(t, prog, "f", opts, 8)
	if len(r2.Hits) != 0 {
		t.Errorf("guard off: got %d hits", len(r2.Hits))
	}
}

// TestNormalizationPreservesSemantics: on loop-bounded executions, the
// normalized program must compute the same values and hit the same sinks
// as the original.
func TestNormalizationPreservesSemantics(t *testing.T) {
	src := `
fun helper(x: int): int {
    if (x > 50) {
        return x - 50;
    }
    return x + 1;
}
fun f(a: int, b: int): int {
    var acc: int = 0;
    var i: int = 0;
    while (i < b) {
        acc = acc + helper(a + i);
        i = i + 1;
        if (acc > 100) {
            return acc * 2;
        }
    }
    send(acc);
    return acc;
}`
	prog := parse(t, src)
	norm := unroll.Normalize(prog, unroll.Options{LoopUnroll: 3})
	opts := interp.SpecOptions(9, false, checker.SecretSources, checker.TransmitSinks, true)
	opts.MaxLoopIters = 3 // match the unroll factor
	for _, args := range [][]uint32{{10, 0}, {10, 1}, {10, 2}, {10, 3}, {60, 2}, {200, 3}, {0xFFFFFFF0, 3}} {
		r1 := run(t, prog, "f", opts, args...)
		r2 := run(t, norm, "f", opts, args...)
		if (r1.Return == nil) != (r2.Return == nil) || r1.Return.V != r2.Return.V {
			t.Errorf("args %v: raw %v vs normalized %v", args, r1.Return, r2.Return)
		}
		if len(r1.Hits) != len(r2.Hits) {
			t.Errorf("args %v: sink hits %d vs %d", args, len(r1.Hits), len(r2.Hits))
		}
	}
}

func TestStepBudget(t *testing.T) {
	prog := parse(t, `
fun f(): int {
    var i: int = 0;
    while (i >= 0) {
        i = i + 1;
    }
    return i;
}`)
	_, err := interp.New(prog, interp.Options{MaxSteps: 10, MaxLoopIters: 1 << 30}).Run("f", nil)
	if err == nil {
		t.Fatal("expected a step-budget error")
	}
}

func TestDivRemSemantics(t *testing.T) {
	prog := parse(t, `
fun f(a: int, b: int): int {
    return a / b + a % b;
}`)
	// Division by zero follows the SMT-LIB convention the solver uses:
	// 10/0 = 0xFFFFFFFF and 10%0 = 10, summing to 9 modulo 2^32.
	r := run(t, prog, "f", interp.Options{}, 10, 0)
	if r.Return.V != 9 {
		t.Errorf("10/0 + 10%%0 = %d, want 9", r.Return.V)
	}
}

func TestObserveDivZero(t *testing.T) {
	prog := parse(t, `
fun f(a: int, b: int): int {
    var x: int = a / b;
    var y: int = a % (b * 2 + 1);
    return x + y;
}`)
	opts := interp.SpecOptions(1, false, []string{"user_input"}, nil, true)
	opts.ObserveDivZero = true
	r := run(t, prog, "f", opts, 10, 0)
	if len(r.Hits) != 1 || r.Hits[0].Callee != "/" {
		t.Fatalf("expected one zero-division hit, got %+v", r.Hits)
	}
	// Odd divisor never traps.
	r2 := run(t, prog, "f", opts, 10, 7)
	if len(r2.Hits) != 0 {
		t.Fatalf("no hit expected, got %+v", r2.Hits)
	}
}
