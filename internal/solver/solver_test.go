package solver_test

import (
	"math/rand"
	"testing"
	"time"

	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
)

func TestSolveBasics(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	cases := []struct {
		name string
		phi  *smt.Term
		want sat.Status
	}{
		{"trivial-true", b.True(), sat.Sat},
		{"trivial-false", b.False(), sat.Unsat},
		{"eq", b.Eq(x, b.Const(5, 32)), sat.Sat},
		{"contradiction", b.And(b.Eq(x, b.Const(1, 32)), b.Eq(x, b.Const(2, 32))), sat.Unsat},
		{"parity", b.Eq(b.Mul(x, b.Const(2, 32)), b.Const(7, 32)), sat.Unsat},
		{"system", b.And(b.Eq(b.Add(x, y), b.Const(10, 32)), b.Ult(x, b.Const(3, 32))), sat.Sat},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := solver.Solve(b, c.phi, solver.Options{}).Status; got != c.want {
				t.Errorf("got %s, want %s", got, c.want)
			}
			// Probing must never flip a verdict.
			if got := solver.Solve(b, c.phi, solver.Options{NoProbe: true}).Status; got != c.want {
				t.Errorf("NoProbe: got %s, want %s", got, c.want)
			}
		})
	}
}

func TestProbeDecidesDefinitionSystems(t *testing.T) {
	// A chain of definitions ending in a reachable guard: the probe must
	// decide this without the SAT core.
	b := smt.NewBuilder()
	a := b.Var("a", 32)
	v1, v2, v3 := b.Var("v1", 32), b.Var("v2", 32), b.Var("v3", 32)
	phi := b.And(
		b.Eq(v1, b.Add(a, b.Const(1, 32))),
		b.Eq(v2, b.Mul(v1, b.Const(3, 32))),
		b.Eq(v3, b.Sub(v2, a)),
		b.Eq(v3, b.Const(23, 32)), // solvable backward: 3(a+1)-a = 23 => a = 10
	)
	r := solver.Solve(b, phi, solver.Options{WantModel: true})
	if r.Status != sat.Sat {
		t.Fatalf("got %s, want sat", r.Status)
	}
	// The residual equation 2a + 3 = 23 has an even coefficient, which is
	// not invertible mod 2^32, so this particular system may legitimately
	// reach the SAT core; what matters is the unique solution comes back.
	if smt.Eval(phi, r.Model) != 1 {
		t.Error("model does not satisfy the formula")
	}
	if r.Model[a] != 10 {
		t.Errorf("a = %d, want 10 (the unique solution)", r.Model[a])
	}

	// Without the backward-solvable pin, a guard over the chain output is
	// decided by the probe alone.
	phi2 := b.And(
		b.Eq(v1, b.Add(a, b.Const(1, 32))),
		b.Eq(v2, b.Mul(v1, b.Const(3, 32))),
		b.Ult(v2, b.Const(100, 32)),
	)
	r2 := solver.Solve(b, phi2, solver.Options{Passes: solver.NoPasses})
	if r2.Status != sat.Sat || !r2.DecidedByProbe {
		t.Errorf("expected probe-decided sat, got %+v", r2)
	}
}

func TestProbeHintsFindExactConstants(t *testing.T) {
	// The satisfying value 123456789 is unguessable but appears in the
	// formula; hint mining must find it.
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	phi := b.Eq(x, b.Const(123456789, 32))
	r := solver.Solve(b, phi, solver.Options{})
	if r.Status != sat.Sat || !r.DecidedByProbe {
		t.Fatalf("got %+v, want probe-decided sat", r)
	}
	if r.Model[x] != 123456789 {
		t.Errorf("model x = %d", r.Model[x])
	}
}

func TestProbeAliasClasses(t *testing.T) {
	// x = y = z with a guard on z and a definition on x: the alias union
	// must connect them.
	b := smt.NewBuilder()
	x, y, z, a := b.Var("x", 32), b.Var("y", 32), b.Var("z", 32), b.Var("a", 32)
	phi := b.And(
		b.Eq(x, y),
		b.Eq(y, z),
		b.Eq(x, b.Add(a, b.Const(7, 32))),
		b.Eq(z, b.Const(50, 32)),
	)
	r := solver.Solve(b, phi, solver.Options{})
	if r.Status != sat.Sat {
		t.Fatalf("got %s, want sat", r.Status)
	}
}

func TestProbeInvertedChains(t *testing.T) {
	// The variable is buried: (x + 3) * 5 - a = c. Preprocessing-style
	// rewrites produce such shapes; the chain solver must handle them.
	b := smt.NewBuilder()
	x, a := b.Var("x", 32), b.Var("a", 32)
	lhs := b.Sub(b.Mul(b.Add(x, b.Const(3, 32)), b.Const(5, 32)), a)
	phi := b.And(
		b.Eq(lhs, b.Const(1000, 32)),
		b.Eq(a, b.Const(20, 32)),
		b.Ult(x, b.Const(1000, 32)),
	)
	r := solver.Solve(b, phi, solver.Options{})
	if r.Status != sat.Sat {
		t.Fatalf("got %s, want sat", r.Status)
	}
	if r.Model != nil && smt.Eval(phi, r.Model) != 1 {
		t.Error("model does not satisfy formula")
	}
}

func TestProbeSoundOnUnsat(t *testing.T) {
	// The probe must never claim sat for unsatisfiable systems (models are
	// verified), across a batch of random contradictions.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		b := smt.NewBuilder()
		x := b.Var("x", 16)
		c := rng.Uint32() % 1000
		phi := b.And(
			b.Eq(x, b.Const(c, 16)),
			b.Eq(x, b.Const(c+1, 16)),
		)
		if r := solver.Solve(b, phi, solver.Options{}); r.Status != sat.Unsat {
			t.Fatalf("iter %d: got %s, want unsat", i, r.Status)
		}
	}
}

func TestWantModelAfterPreprocessing(t *testing.T) {
	b := smt.NewBuilder()
	x, y, z := b.Var("x", 32), b.Var("y", 32), b.Var("z", 32)
	// Equality propagation will eliminate variables; WantModel must still
	// cover all three.
	phi := b.And(b.Eq(x, y), b.Eq(y, z), b.Ult(x, b.Const(10, 32)))
	r := solver.Solve(b, phi, solver.Options{WantModel: true})
	if r.Status != sat.Sat {
		t.Fatalf("got %s", r.Status)
	}
	for _, v := range []*smt.Term{x, y, z} {
		if _, ok := r.Model[v]; !ok {
			t.Errorf("model missing %s", v.Name)
		}
	}
	if smt.Eval(phi, r.Model) != 1 {
		t.Error("model does not satisfy the formula")
	}
}

func TestDecide(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	if isSat, unknown := solver.Decide(b, b.Eq(x, x), solver.Options{}); !isSat || unknown {
		t.Error("x = x must be sat")
	}
	if isSat, unknown := solver.Decide(b, b.False(), solver.Options{}); isSat || unknown {
		t.Error("false must be unsat")
	}
}

func TestSolveBudgets(t *testing.T) {
	// A genuinely hard instance under a tiny conflict budget must report
	// Unknown, not hang: two 32-bit multiplications constrained to a
	// specific product (factoring-flavoured).
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	phi := b.And(
		b.Eq(b.Mul(x, y), b.Const(0x7FFFFFFD, 32)),
		b.Ult(b.Const(2, 32), x),
		b.Ult(b.Const(2, 32), y),
		b.Ult(x, y),
	)
	start := time.Now()
	r := solver.Solve(b, phi, solver.Options{MaxConflicts: 50, NoProbe: true, Timeout: 5 * time.Second})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("budget not honored: %v", elapsed)
	}
	if r.Status == sat.Sat {
		// Fine if it got lucky, but the model must check out.
		t.Logf("solved within budget")
	}
}

func TestDeterministicResults(t *testing.T) {
	mk := func() (*smt.Builder, *smt.Term) {
		b := smt.NewBuilder()
		x, y := b.Var("x", 32), b.Var("y", 32)
		return b, b.And(
			b.Eq(b.Add(x, y), b.Const(77, 32)),
			b.Ult(x, y),
		)
	}
	b1, p1 := mk()
	r1 := solver.Solve(b1, p1, solver.Options{WantModel: true})
	for i := 0; i < 3; i++ {
		b2, p2 := mk()
		r2 := solver.Solve(b2, p2, solver.Options{WantModel: true})
		if r1.Status != r2.Status {
			t.Fatal("nondeterministic status")
		}
	}
}
