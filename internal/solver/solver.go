// Package solver is the standalone SMT solving front-end (Algorithm 3):
// preprocessing passes over the input formula, early exit when they decide
// it, and bit-blasting into the CDCL SAT core otherwise. It plays the role
// of Z3 in the paper's evaluation.
package solver

import (
	"context"
	"sync/atomic"
	"time"

	"fusion/internal/bitblast"
	"fusion/internal/faultinject"
	"fusion/internal/sat"
	"fusion/internal/smt"
)

// Options configure a standalone solve (Algorithm 3).
type Options struct {
	// Ctx, when non-nil, cancels the solve cooperatively: preprocessing is
	// skipped and the SAT search aborts with Unknown once it is done.
	Ctx context.Context
	// Passes is the preprocessing pipeline; nil means smt.DefaultPasses. Use
	// NoPasses to disable preprocessing entirely.
	Passes []smt.Pass
	// MaxConflicts bounds the SAT search; <= 0 means the default budget.
	MaxConflicts int64
	// MaxDecisions bounds the SAT search's branching decisions; <= 0
	// means unbounded. Decisions are counted exactly, so unlike Timeout
	// this budget exhausts deterministically on every machine.
	MaxDecisions int64
	// Timeout bounds wall time of the SAT search; 0 means none. The paper
	// runs each solver call with a 10-second limit.
	Timeout time.Duration
	// WantModel requests a model covering every free variable of the
	// original formula. Preprocessing substitutes variables away, so when
	// the model would otherwise be partial, a second pass-free solve
	// reconstructs it; equisatisfiability guarantees one exists.
	WantModel bool
	// NoProbe disables the concrete-execution model probe that runs
	// between preprocessing and bit-blasting.
	NoProbe bool
	// Unit, when non-empty, names the work unit this solve belongs to,
	// for deterministic fault injection (the stall.solve point keys on
	// it). Verdicts never depend on it.
	Unit string
	// Heartbeat, when non-nil, is installed as the SAT search's progress
	// counter: the search bumps it on every conflict and decision, and a
	// watchdog goroutine may sample it concurrently. It lives outside the
	// solver because warm sessions evict and replace their solver between
	// queries.
	Heartbeat *atomic.Int64
	// StallCtx, when non-nil, is the context the injected stall.solve
	// wedge blocks on instead of Ctx. A real wedge ignores deadlines, so
	// the supervising engine passes a cancellation-only context here:
	// the simulated stall must not release just because the attempt's
	// deadline expired — only an explicit cancellation (the watchdog
	// abandoning the unit, or the whole run being torn down) frees it.
	StallCtx context.Context
}

// NoPasses is a non-nil empty pipeline that disables preprocessing.
var NoPasses = []smt.Pass{}

// Result reports a solve outcome with the cost breakdown the evaluation
// plots.
type Result struct {
	Status sat.Status
	// Preprocessed reports that preprocessing alone decided the formula
	// (the "21% of cases" statistic of §5.1).
	Preprocessed bool
	// DecidedByProbe reports that the concrete-execution probe found a
	// model, skipping the SAT core.
	DecidedByProbe bool
	// Model holds satisfying values for the formula's free variables when
	// Status is Sat and the SAT solver ran.
	Model smt.Assignment
	// SizeBefore and SizeAfter are the formula DAG sizes around
	// preprocessing.
	SizeBefore, SizeAfter int
	// ProbeTime is the cost of the concrete-execution probe, reported
	// separately so a probe-decided query no longer hides its price in
	// (or zeroes out) the search accounting.
	ProbeTime      time.Duration
	PreprocessTime time.Duration
	SearchTime     time.Duration
	Conflicts      int64
	// Decisions and Props count the SAT search's branching decisions and
	// unit propagations for this solve (deltas on the warm-session path,
	// where the solver's counters accumulate across queries). Cost
	// counters only; they never influence a verdict.
	Decisions int64
	Props     int64
	// CacheHits, CacheVars, and ReusedClauses report warm-session
	// amortization: term encodings reused from earlier queries, the size
	// of the retained SAT variable map, and the learned clauses this query
	// inherited. All zero on the one-shot path.
	CacheHits     int64
	CacheVars     int
	ReusedClauses int64
	// Exhausted reports that the search hit its own resource budget
	// (conflicts, decisions, or deadline) rather than being cancelled
	// from outside. Callers use it to fall back to cheaper tiers: a
	// cancelled run should stop, an exhausted one may still degrade.
	Exhausted bool
}

// Solve implements the conventional SMT solution of Algorithm 3: apply the
// equisatisfiable preprocessing pipeline, return early when it decides the
// formula, and otherwise bit-blast into the CDCL solver.
func Solve(b *smt.Builder, phi *smt.Term, opts Options) Result {
	res := solveOnce(b, phi, opts)
	if opts.WantModel && res.Status == sat.Sat && !modelCovers(res.Model, phi) {
		raw := opts
		raw.Passes = NoPasses
		raw.WantModel = false
		if full := solveOnce(b, phi, raw); full.Status == sat.Sat {
			res.Model = full.Model
		}
	}
	return res
}

func modelCovers(m smt.Assignment, phi *smt.Term) bool {
	for _, v := range smt.Vars(phi) {
		if _, ok := m[v]; !ok {
			return false
		}
	}
	return true
}

func solveOnce(b *smt.Builder, phi *smt.Term, opts Options) Result {
	var res Result
	res.SizeBefore = smt.Size(phi)
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return res // Status zero value is Unknown
	}
	// Cheap model probing first, on the original formula: path conditions
	// are mostly systems of definitions, and concrete execution over
	// sampled inputs decides many satisfiable instances without paying
	// for preprocessing or bit-blasting. Probing never misclassifies: a
	// model is verified by evaluation.
	if !opts.NoProbe && !phi.IsConst() {
		t0 := time.Now()
		m, ok := Probe(phi, 32)
		res.ProbeTime = time.Since(t0)
		if ok {
			res.Status = sat.Sat
			res.DecidedByProbe = true
			res.Model = m
			return res
		}
	}
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return res // cancelled between probe and preprocessing
	}
	passes := opts.Passes
	if passes == nil {
		passes = smt.DefaultPasses()
	}
	t0 := time.Now()
	phi = smt.Preprocess(b, phi, passes)
	res.PreprocessTime = time.Since(t0)
	res.SizeAfter = smt.Size(phi)
	if phi.IsTrue() {
		res.Status = sat.Sat
		res.Preprocessed = true
		return res
	}
	if phi.IsFalse() {
		res.Status = sat.Unsat
		res.Preprocessed = true
		return res
	}

	t1 := time.Now()
	s := sat.New()
	if opts.MaxConflicts > 0 {
		s.MaxConflicts = opts.MaxConflicts
	} else {
		s.MaxConflicts = 4_000_000
	}
	if opts.MaxDecisions > 0 {
		s.MaxDecisions = opts.MaxDecisions
	}
	if opts.Timeout > 0 {
		s.Deadline = time.Now().Add(opts.Timeout)
	}
	s.Ctx = opts.Ctx
	s.Progress = opts.Heartbeat
	installStallHook(s, opts)
	bl := bitblast.New(s)
	bl.AssertTrue(phi)
	st, err := s.Solve()
	res.SearchTime = time.Since(t1)
	res.Conflicts = s.Conflicts
	res.Decisions = s.Decisions
	res.Props = s.Props
	if err != nil {
		res.Status = sat.Unknown
		// Budget exhaustion inside the search is distinct from outside
		// cancellation: only the former invites a degraded re-check.
		res.Exhausted = err == sat.ErrBudget &&
			(opts.Ctx == nil || opts.Ctx.Err() == nil)
		return res
	}
	res.Status = st
	if st == sat.Sat {
		res.Model = smt.Assignment{}
		for _, v := range smt.Vars(phi) {
			res.Model[v] = bl.ModelValue(v)
		}
	}
	return res
}

// installStallHook arms the stall.solve fault point on the search: when
// armed for opts.Unit, the search wedges without heartbeat progress until
// its context is cancelled. Nil (the common case) outside fault tests.
func installStallHook(s *sat.Solver, opts Options) {
	s.StallHook = nil
	if faultinject.Enabled() && opts.Unit != "" {
		unit, ctx := opts.Unit, opts.Ctx
		if opts.StallCtx != nil {
			ctx = opts.StallCtx
		}
		s.StallHook = func() { faultinject.StallSolve(ctx, unit) }
	}
}

// Decide is a convenience wrapper returning (sat, unknown) for use by the
// context simplifier and the abstraction-refinement loop.
func Decide(b *smt.Builder, phi *smt.Term, opts Options) (isSat bool, unknown bool) {
	r := Solve(b, phi, opts)
	switch r.Status {
	case sat.Sat:
		return true, false
	case sat.Unsat:
		return false, false
	default:
		return false, true
	}
}
