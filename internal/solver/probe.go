package solver

import (
	"math/rand"
	"sort"

	"fusion/internal/smt"
)

// Probe attempts to find a model by concrete execution before paying for
// preprocessing and bit-blasting: path conditions are mostly systems of
// definitions var = f(inputs) plus variable aliases var = var, so sampling
// the free inputs and computing the defined variables forward decides many
// satisfiable instances instantly. Sample values are seeded with the
// constants appearing near each input, which makes guards like "x == 37"
// reachable. A returned model is always verified by evaluation, so probing
// is sound.
// A returned model is always verified by evaluation, so Probe is sound.
func Probe(phi *smt.Term, tries int) (smt.Assignment, bool) {
	vars := smt.Vars(phi)
	if len(vars) == 0 || len(vars) > 1<<16 {
		return nil, false
	}

	// Union variables related by alias conjuncts (x = y), including the
	// formal/actual parameter links of path conditions.
	parent := map[*smt.Term]*smt.Term{}
	var find func(v *smt.Term) *smt.Term
	find = func(v *smt.Term) *smt.Term {
		p, ok := parent[v]
		if !ok || p == v {
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	for _, cj := range smt.Conjuncts(phi) {
		if cj.Op == smt.OpEq && cj.Args[0].Op == smt.OpVar && cj.Args[1].Op == smt.OpVar {
			rx, ry := find(cj.Args[0]), find(cj.Args[1])
			if rx != ry {
				parent[rx] = ry
			}
		}
	}
	members := map[*smt.Term][]*smt.Term{}
	for _, v := range vars {
		r := find(v)
		members[r] = append(members[r], v)
	}

	// Definitions per alias class. Direct forms (class = term) are taken
	// as-is; equations whose variable is buried under a chain of
	// invertible operators, as the preprocessing passes produce (e.g.
	// x + t = rhs), are solved numerically through the recorded inverse
	// chain at evaluation time.
	defs := map[*smt.Term]*defn{}
	for _, cj := range smt.Conjuncts(phi) {
		if cj.Op != smt.OpEq {
			continue
		}
		for _, ord := range [2][2]*smt.Term{{cj.Args[0], cj.Args[1]}, {cj.Args[1], cj.Args[0]}} {
			lhs, rhs := ord[0], ord[1]
			v, chain, ok := solveToward(lhs, 0)
			if !ok {
				continue
			}
			r := find(v)
			if defs[r] != nil || dependsOnClass(rhs, r, find) {
				continue
			}
			// The chain's side operands must not depend on v either.
			clean := true
			for _, st := range chain {
				if st.other != nil && dependsOnClass(st.other, r, find) {
					clean = false
					break
				}
			}
			if !clean {
				continue
			}
			defs[r] = &defn{rhs: rhs, chain: chain}
			break
		}
	}
	var inputs []*smt.Term // class representatives with no definition
	for r := range members {
		if defs[r] == nil {
			inputs = append(inputs, r)
		}
	}
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].ID < inputs[j].ID })

	// Topologically order the defined classes so each try is one pass.
	var order []*smt.Term
	state := map[*smt.Term]int8{}
	var visit func(r *smt.Term)
	visit = func(r *smt.Term) {
		if state[r] != 0 {
			return
		}
		state[r] = 1
		d := defs[r]
		deps := smt.Vars(d.rhs)
		for _, st := range d.chain {
			if st.other != nil {
				deps = append(deps, smt.Vars(st.other)...)
			}
		}
		for _, dep := range deps {
			dr := find(dep)
			if defs[dr] != nil && state[dr] == 0 {
				visit(dr)
			}
		}
		state[r] = 2
		order = append(order, r)
	}
	for _, v := range vars {
		if r := find(v); defs[r] != nil {
			visit(r)
		}
	}

	// Value pool: formula constants and near misses, plus small values.
	pool := []uint32{0, 1, 2, 5, 0xFFFFFFFF}
	seenConst := map[uint32]bool{}
	collectConsts(phi, func(c uint32) {
		if !seenConst[c] {
			seenConst[c] = true
			pool = append(pool, c, c+1, c-1, c*2)
		}
	})

	// Targeted suggestions: an equality or comparison between a variable
	// and a constant anywhere in the formula (e.g. the "b == 5" disjunct
	// of a guard) suggests values for that variable's class.
	type hint struct {
		r   *smt.Term
		val uint32
	}
	var hints []hint
	mineHints(phi, func(v *smt.Term, c uint32) {
		r := find(v)
		if defs[r] == nil && len(hints) < 96 {
			hints = append(hints, hint{r, c})
		}
	})

	setClass := func(asg smt.Assignment, r *smt.Term, val uint32) {
		for _, m := range members[r] {
			asg[m] = val
		}
	}

	rng := rand.New(rand.NewSource(int64(phi.ID)*2654435761 + 12345))
	for try := 0; try < tries+2*len(hints); try++ {
		asg := smt.Assignment{}
		for _, r := range inputs {
			var val uint32
			switch {
			case try == 0:
				val = 0
			case try == 1:
				val = 1
			case rng.Intn(3) == 0:
				val = rng.Uint32()
			default:
				val = pool[rng.Intn(len(pool))]
			}
			setClass(asg, r, val)
		}
		if try >= tries {
			// Hint rounds: pin one suggested class, vary the rest.
			h := hints[(try-tries)/2]
			setClass(asg, h.r, h.val)
		}
		// Compute defined classes forward in dependency order; a second
		// pass settles any residual cyclic orientation harmlessly.
		for pass := 0; pass < 2; pass++ {
			for _, r := range order {
				setClass(asg, r, defs[r].eval(asg))
			}
		}
		if smt.Eval(phi, asg) == 1 {
			return asg, true
		}
	}

	// Local search: pure sampling misses inputs that must satisfy several
	// guards at once; a short greedy repair loop over the inputs of
	// failing conjuncts (in the spirit of SLS tactics) closes most of the
	// gap. Soundness is unchanged — any model found is verified.
	if m, ok := localSearch(phi, inputs, defs, order, members, pool, find, rng); ok {
		return m, true
	}
	return nil, false
}

// localSearch greedily repairs a random assignment: pick an unsatisfied
// conjunct, pick an input class it depends on, and move it to the value
// that satisfies the most conjuncts.
func localSearch(
	phi *smt.Term,
	inputs []*smt.Term,
	defs map[*smt.Term]*defn,
	order []*smt.Term,
	members map[*smt.Term][]*smt.Term,
	pool []uint32,
	find func(*smt.Term) *smt.Term,
	rng *rand.Rand,
) (smt.Assignment, bool) {
	if len(inputs) == 0 {
		return nil, false
	}
	conjs := smt.Conjuncts(phi)
	if len(conjs) > 192 || len(conjs) < 2 {
		return nil, false // too big to afford, or nothing to repair against
	}

	// Per-conjunct input support, chasing definitions.
	supMemo := map[*smt.Term][]*smt.Term{}
	var classInputs func(r *smt.Term, seen map[*smt.Term]bool, out *[]*smt.Term)
	classInputs = func(r *smt.Term, seen map[*smt.Term]bool, out *[]*smt.Term) {
		if seen[r] {
			return
		}
		seen[r] = true
		d := defs[r]
		if d == nil {
			*out = append(*out, r)
			return
		}
		deps := smt.Vars(d.rhs)
		for _, st := range d.chain {
			if st.other != nil {
				deps = append(deps, smt.Vars(st.other)...)
			}
		}
		for _, dep := range deps {
			classInputs(find(dep), seen, out)
		}
	}
	supportOf := func(cj *smt.Term) []*smt.Term {
		if s, ok := supMemo[cj]; ok {
			return s
		}
		var out []*smt.Term
		seen := map[*smt.Term]bool{}
		for _, v := range smt.Vars(cj) {
			classInputs(find(v), seen, &out)
		}
		supMemo[cj] = out
		return out
	}

	setClass := func(asg smt.Assignment, r *smt.Term, val uint32) {
		for _, m := range members[r] {
			asg[m] = val
		}
	}
	compute := func(asg smt.Assignment) {
		for pass := 0; pass < 2; pass++ {
			for _, r := range order {
				setClass(asg, r, defs[r].eval(asg))
			}
		}
	}
	score := func(asg smt.Assignment) int {
		n := 0
		for _, cj := range conjs {
			if smt.Eval(cj, asg) == 1 {
				n++
			}
		}
		return n
	}

	for restart := 0; restart < 2; restart++ {
		asg := smt.Assignment{}
		for _, r := range inputs {
			setClass(asg, r, pool[rng.Intn(len(pool))])
		}
		compute(asg)
		cur := score(asg)
		for move := 0; move < 25 && cur < len(conjs); move++ {
			// A random unsatisfied conjunct.
			var bad *smt.Term
			off := rng.Intn(len(conjs))
			for i := range conjs {
				cj := conjs[(i+off)%len(conjs)]
				if smt.Eval(cj, asg) != 1 {
					bad = cj
					break
				}
			}
			if bad == nil {
				break
			}
			sup := supportOf(bad)
			if len(sup) == 0 {
				break // the conjunct does not depend on any input
			}
			r := sup[rng.Intn(len(sup))]
			old := asg[members[r][0]]
			best, bestScore := old, cur
			for trial := 0; trial < 6; trial++ {
				var cand uint32
				switch trial {
				case 0:
					cand = old + 1
				case 1:
					cand = old - 1
				case 2:
					cand = 0
				default:
					cand = pool[rng.Intn(len(pool))]
				}
				setClass(asg, r, cand)
				compute(asg)
				if sc := score(asg); sc > bestScore {
					best, bestScore = cand, sc
				}
			}
			setClass(asg, r, best)
			compute(asg)
			cur = bestScore
		}
		if cur == len(conjs) && smt.Eval(phi, asg) == 1 {
			return asg, true
		}
	}
	return nil, false
}

// defn is a definition "class = invert(chain, rhs)": evaluate rhs, then
// apply the inverse of each recorded operator step outward-in.
type defn struct {
	rhs   *smt.Term
	chain []invStep
}

// invStep records one peeled operator: the variable was inside op, with
// the other operand (nil for unary ops) on the given side.
type invStep struct {
	op          smt.Op
	other       *smt.Term
	otherOnLeft bool
	mulInv      uint32 // modular inverse for odd multiplications
}

// solveToward peels invertible operators off t until a variable remains,
// returning the variable and the chain (outermost first).
func solveToward(t *smt.Term, depth int) (*smt.Term, []invStep, bool) {
	if depth > 32 {
		return nil, nil, false
	}
	switch t.Op {
	case smt.OpVar:
		return t, nil, true
	case smt.OpNot, smt.OpNeg:
		v, chain, ok := solveToward(t.Args[0], depth+1)
		if !ok {
			return nil, nil, false
		}
		return v, append([]invStep{{op: t.Op}}, chain...), true
	case smt.OpAdd, smt.OpXor:
		// Commutative: prefer the side that reaches a variable.
		for i := 0; i < 2; i++ {
			if v, chain, ok := solveToward(t.Args[i], depth+1); ok {
				st := invStep{op: t.Op, other: t.Args[1-i]}
				return v, append([]invStep{st}, chain...), true
			}
		}
	case smt.OpSub:
		for i := 0; i < 2; i++ {
			if v, chain, ok := solveToward(t.Args[i], depth+1); ok {
				st := invStep{op: t.Op, other: t.Args[1-i], otherOnLeft: i == 1}
				return v, append([]invStep{st}, chain...), true
			}
		}
	case smt.OpMul:
		for i := 0; i < 2; i++ {
			o := t.Args[1-i]
			if o.IsConst() && o.Const&1 == 1 {
				if v, chain, ok := solveToward(t.Args[i], depth+1); ok {
					st := invStep{op: smt.OpMul, mulInv: modInverse32(o.Const)}
					return v, append([]invStep{st}, chain...), true
				}
			}
		}
	}
	return nil, nil, false
}

// modInverse32 computes the inverse of odd a modulo 2^32.
func modInverse32(a uint32) uint32 {
	x := a
	for i := 0; i < 5; i++ {
		x *= 2 - a*x
	}
	return x
}

// eval computes the class value implied by the definition under asg.
func (d *defn) eval(asg smt.Assignment) uint32 {
	val := smt.Eval(d.rhs, asg)
	width := d.rhs.Width
	maskW := func(v uint32) uint32 {
		if width >= 32 {
			return v
		}
		return v & (1<<uint(width) - 1)
	}
	for _, st := range d.chain {
		switch st.op {
		case smt.OpNot:
			val = maskW(^val)
		case smt.OpNeg:
			val = maskW(-val)
		case smt.OpAdd:
			val = maskW(val - smt.Eval(st.other, asg))
		case smt.OpXor:
			val = maskW(val ^ smt.Eval(st.other, asg))
		case smt.OpSub:
			if st.otherOnLeft {
				// other - x = val  =>  x = other - val
				val = maskW(smt.Eval(st.other, asg) - val)
			} else {
				// x - other = val  =>  x = val + other
				val = maskW(val + smt.Eval(st.other, asg))
			}
		case smt.OpMul:
			val = maskW(val * st.mulInv)
		}
	}
	return val
}

func dependsOnClass(t, r *smt.Term, find func(*smt.Term) *smt.Term) bool {
	for _, x := range smt.Vars(t) {
		if find(x) == r {
			return true
		}
	}
	return false
}

// mineHints reports (variable, constant) pairs appearing together under a
// comparison or equality anywhere in the formula.
func mineHints(phi *smt.Term, fn func(v *smt.Term, c uint32)) {
	seen := map[*smt.Term]bool{}
	var walk func(*smt.Term)
	walk = func(t *smt.Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		switch t.Op {
		case smt.OpEq, smt.OpUlt, smt.OpUle, smt.OpSlt, smt.OpSle:
			x, y := t.Args[0], t.Args[1]
			if x.Op == smt.OpVar && y.IsConst() {
				fn(x, y.Const)
				fn(x, y.Const+1)
				fn(x, y.Const-1)
			}
			if y.Op == smt.OpVar && x.IsConst() {
				fn(y, x.Const)
				fn(y, x.Const+1)
				fn(y, x.Const-1)
			}
		}
		for _, a := range t.Args {
			walk(a)
		}
	}
	walk(phi)
}

func collectConsts(t *smt.Term, fn func(uint32)) {
	seen := map[*smt.Term]bool{}
	var walk func(*smt.Term)
	walk = func(t *smt.Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		if t.Op == smt.OpConst && t.Width > 1 {
			fn(t.Const)
		}
		for _, a := range t.Args {
			walk(a)
		}
	}
	walk(t)
}
