package solver_test

import (
	"fmt"

	"fusion/internal/smt"
	"fusion/internal/solver"
)

// ExampleSolve decides a bit-vector constraint system and extracts a
// verified model.
func ExampleSolve() {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	phi := b.And(
		b.Eq(b.Add(x, y), b.Const(10, 32)),
		b.Eq(b.Mul(x, b.Const(3, 32)), b.Add(y, b.Const(2, 32))),
	)
	r := solver.Solve(b, phi, solver.Options{WantModel: true})
	fmt.Println(r.Status)
	fmt.Println(r.Model[x], r.Model[y])
	fmt.Println(smt.Eval(phi, r.Model) == 1)
	// Output:
	// sat
	// 3 7
	// true
}

// ExampleSolve_unsat shows a parity refutation: 2x = 7 has no solution
// modulo 2^32.
func ExampleSolve_unsat() {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	r := solver.Solve(b, b.Eq(b.Mul(x, b.Const(2, 32)), b.Const(7, 32)), solver.Options{})
	fmt.Println(r.Status)
	// Output:
	// unsat
}
