// Incremental solver sessions: a long-lived (Builder, Solver, Blaster)
// triple that answers a stream of related queries through assumption-based
// solving instead of rebuilding the solving stack per formula. This is the
// bottom layer of the paper's amortization story (§3.2): one program graph
// serves every query, so the solver underneath should too — learned clauses,
// variable activity, saved phases, and the Tseitin encoding of shared
// hash-consed subterms all carry over from query to query.

package solver

import (
	"time"

	"fusion/internal/bitblast"
	"fusion/internal/sat"
	"fusion/internal/smt"
)

// SessionConfig bounds the state a Session may retain. The zero value gets
// defaults suitable for the analysis workloads in this repo.
type SessionConfig struct {
	// MaxVars evicts the SAT solver and blaster (keeping the builder) once
	// the variable map outgrows this; <= 0 means the default.
	MaxVars int
	// MaxLearnts evicts once the retained learned-clause database outgrows
	// this; <= 0 means the default. (reduceDB already trims within a solve;
	// this bounds accumulation across queries.)
	MaxLearnts int
	// MaxBuilderBytes retires the hash-consing builder itself — and with it
	// the solver and blaster, whose encodings key on its terms — once its
	// estimated heap outgrows this. Ignored under KeepBuilder. <= 0 means
	// the default.
	MaxBuilderBytes int64
	// KeepBuilder pins the builder across Reset and eviction. Engines whose
	// builder doubles as a summary cache (Pinpoint) must keep it: swapping
	// would orphan every cached term.
	KeepBuilder bool
}

const (
	defaultMaxVars         = 1 << 18
	defaultMaxLearnts      = 1 << 16
	defaultMaxBuilderBytes = 64 << 20
)

// Session owns a warm solving stack. It is NOT safe for concurrent use:
// callers give each worker its own session (pool-affine, never shared).
// Verdicts are independent of the warm state — retained clauses and
// encodings change only the cost of a solve, never its answer — which is
// what keeps analysis output byte-identical for any worker count.
type Session struct {
	cfg SessionConfig
	b   *smt.Builder
	s   *sat.Solver
	bl  *bitblast.Blaster
	// inFlight is set by Begin and cleared by Finish. A contained panic
	// between the two leaves it set, marking the session poisoned: the
	// next Begin rebuilds the stack instead of trusting half-updated state.
	inFlight bool

	// Cumulative session statistics.
	Queries       int64 // Solve calls answered
	CacheHits     int64 // cross-query term-encoding reuses (topmost shared nodes)
	Evictions     int64 // solver/blaster evictions (budget exceeded)
	Resets        int64 // full rebuilds after poisoning
	PurgedClauses int64 // learned clauses GC'd for referencing retired activation groups
}

// NewSession returns a warm solving stack with a fresh builder.
func NewSession(cfg SessionConfig) *Session {
	return NewSessionWith(smt.NewBuilder(), cfg)
}

// NewSessionWith wraps an existing builder — for engines that already own
// one (a summary cache) and want its terms to stay valid across the
// session's lifetime. Such callers almost always want cfg.KeepBuilder.
func NewSessionWith(b *smt.Builder, cfg SessionConfig) *Session {
	if cfg.MaxVars <= 0 {
		cfg.MaxVars = defaultMaxVars
	}
	if cfg.MaxLearnts <= 0 {
		cfg.MaxLearnts = defaultMaxLearnts
	}
	if cfg.MaxBuilderBytes <= 0 {
		cfg.MaxBuilderBytes = defaultMaxBuilderBytes
	}
	ss := &Session{cfg: cfg, b: b}
	ss.evictSolver()
	return ss
}

// Builder returns the session's term builder. Every formula passed to
// Solve must be built by it — encodings key on hash-consed term identity.
func (ss *Session) Builder() *smt.Builder { return ss.b }

// Begin opens a unit of work. If the previous unit never called Finish —
// a panic contained above us tore it down mid-solve — the session state is
// untrustworthy and is rebuilt. Begin also applies the builder-size budget,
// since swapping the builder is only safe between units.
func (ss *Session) Begin() {
	if ss.inFlight {
		ss.Reset()
	} else {
		// Between units is the cheapest moment to drop learned clauses
		// that mention activation groups no later query can re-assume.
		ss.gc()
	}
	ss.inFlight = true
	if !ss.cfg.KeepBuilder && ss.b.EstimatedBytes() > ss.cfg.MaxBuilderBytes {
		ss.b = smt.NewBuilder()
		ss.evictSolver()
		ss.Evictions++
	}
}

// Finish marks the unit cleanly completed. It is deliberately not deferred
// by callers: a panic must skip it so the poisoning is observable.
func (ss *Session) Finish() { ss.inFlight = false }

// Reset rebuilds the solving stack from scratch, discarding all warm state.
// The builder survives only under KeepBuilder.
func (ss *Session) Reset() {
	ss.Resets++
	if !ss.cfg.KeepBuilder {
		ss.b = smt.NewBuilder()
	}
	ss.evictSolver()
	ss.inFlight = false
}

// evictSolver replaces the solver and blaster, keeping the builder.
func (ss *Session) evictSolver() {
	ss.s = sat.New()
	ss.bl = bitblast.New(ss.s)
}

// gc purges learned clauses that reference retired activation groups: an
// activation literal or encoding variable untouched by the latest query
// serves only queries that will never be assumed again, so a learnt
// mentioning it cannot earn its residence. Learned clauses are
// consequences of the clause DB alone, so dropping any subset is sound
// and affects cost, never verdicts.
func (ss *Session) gc() {
	retired := ss.bl.RetiredVars()
	if retired == nil {
		return
	}
	ss.PurgedClauses += int64(ss.s.PurgeLearnts(func(l sat.Lit) bool {
		return retired(l.Var())
	}))
}

// Learnts reports the size of the retained learned-clause database,
// for tests asserting that GC keeps it from growing monotonically.
func (ss *Session) Learnts() int { return ss.s.NumLearnts() }

// Solve answers phi over the warm stack, with the same contract as the
// package-level Solve: preprocessing with early exit, probe, then the CDCL
// core — reached through an assumption on phi's activation literal, so the
// query can be retired afterwards without destroying anything learned.
func (ss *Session) Solve(phi *smt.Term, opts Options) Result {
	res := ss.solveOnce(phi, opts)
	if opts.WantModel && res.Status == sat.Sat && !modelCovers(res.Model, phi) {
		raw := opts
		raw.Passes = NoPasses
		raw.WantModel = false
		if full := ss.solveOnce(phi, raw); full.Status == sat.Sat {
			res.Model = full.Model
		}
	}
	return res
}

func (ss *Session) solveOnce(phi *smt.Term, opts Options) Result {
	ss.Queries++
	var res Result
	res.SizeBefore = smt.Size(phi)
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return res // Status zero value is Unknown
	}
	if !opts.NoProbe && !phi.IsConst() {
		t0 := time.Now()
		m, ok := Probe(phi, 32)
		res.ProbeTime = time.Since(t0)
		if ok {
			res.Status = sat.Sat
			res.DecidedByProbe = true
			res.Model = m
			return res
		}
	}
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		return res // cancelled between probe and preprocessing
	}
	passes := opts.Passes
	if passes == nil {
		passes = smt.DefaultPasses()
	}
	t0 := time.Now()
	phi = smt.Preprocess(ss.b, phi, passes)
	res.PreprocessTime = time.Since(t0)
	res.SizeAfter = smt.Size(phi)
	if phi.IsTrue() {
		res.Status = sat.Sat
		res.Preprocessed = true
		return res
	}
	if phi.IsFalse() {
		res.Status = sat.Unsat
		res.Preprocessed = true
		return res
	}

	// Budget eviction happens at solve entry, never mid-query: the builder
	// is kept, so cached terms stay valid and only encodings are rebuilt.
	// A solver that is not Okay derived a root contradiction — impossible
	// from guard and Tseitin clauses alone, so treat it as poisoned state.
	// Clause GC runs first: purging learnts of retired activation groups
	// often brings the database back under budget without paying for a
	// wholesale eviction.
	if ss.s.NumLearnts() > ss.cfg.MaxLearnts {
		ss.gc()
	}
	if ss.s.NumVars() > ss.cfg.MaxVars || ss.s.NumLearnts() > ss.cfg.MaxLearnts || !ss.s.Okay() {
		ss.evictSolver()
		ss.Evictions++
	}

	t1 := time.Now()
	s := ss.s
	if opts.MaxConflicts > 0 {
		s.MaxConflicts = opts.MaxConflicts
	} else {
		s.MaxConflicts = 4_000_000
	}
	s.MaxDecisions = opts.MaxDecisions // also clears a previous query's bound
	if opts.Timeout > 0 {
		s.Deadline = time.Now().Add(opts.Timeout)
	} else {
		s.Deadline = time.Time{}
	}
	s.Ctx = opts.Ctx
	s.Progress = opts.Heartbeat
	installStallHook(s, opts)

	// Warm-state accounting: what this query inherited from its
	// predecessors, and what it reused while encoding.
	res.ReusedClauses = int64(s.NumLearnts())
	reusedBefore := ss.bl.Reused
	before := s.Stats()

	ss.bl.BeginQuery()
	act := ss.bl.Assume(phi)
	st, err := s.SolveAssuming([]sat.Lit{act})
	res.SearchTime = time.Since(t1)
	after := s.Stats()
	res.Conflicts = after.Conflicts - before.Conflicts
	res.Decisions = after.Decisions - before.Decisions
	res.Props = after.Props - before.Props
	res.CacheHits = ss.bl.Reused - reusedBefore
	res.CacheVars = s.NumVars()
	ss.CacheHits += res.CacheHits
	if err != nil {
		res.Status = sat.Unknown
		res.Exhausted = err == sat.ErrBudget &&
			(opts.Ctx == nil || opts.Ctx.Err() == nil)
		return res
	}
	res.Status = st
	if st == sat.Sat {
		res.Model = smt.Assignment{}
		for _, v := range smt.Vars(phi) {
			res.Model[v] = ss.bl.ModelValue(v)
		}
	}
	return res
}

// Decide mirrors the package-level Decide over the warm stack.
func (ss *Session) Decide(phi *smt.Term, opts Options) (isSat bool, unknown bool) {
	r := ss.Solve(phi, opts)
	switch r.Status {
	case sat.Sat:
		return true, false
	case sat.Unsat:
		return false, false
	default:
		return false, true
	}
}
