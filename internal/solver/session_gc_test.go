package solver

import (
	"math/rand"
	"testing"

	"fusion/internal/smt"
)

// TestSessionClauseGC: across a long stream of recycled queries, the
// clause-DB garbage collector must purge learnts that reference retired
// activation groups, keeping the retained database from growing
// monotonically — and without changing any verdict relative to a cold
// one-shot solve.
func TestSessionClauseGC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ss := NewSession(SessionConfig{})
	// NoProbe + NoPasses force every query into the SAT core so learnts
	// actually accumulate; probe-decided queries never learn anything.
	opts := Options{NoProbe: true, Passes: NoPasses}
	grew, shrankOrHeld := 0, 0
	prev := 0
	for iter := 0; iter < 150; iter++ {
		phi := randFormula(ss.Builder(), rng, 4)
		ss.Begin()
		warm := ss.Solve(phi, opts)
		ss.Finish()

		cb := smt.NewBuilder()
		cold := Solve(cb, smt.RenameVars(cb, phi, func(n string) string { return n }), opts)
		if warm.Status != cold.Status {
			t.Fatalf("iter %d: GC changed a verdict: warm %s != cold %s", iter, warm.Status, cold.Status)
		}

		cur := ss.Learnts()
		if cur > prev {
			grew++
		} else {
			shrankOrHeld++
		}
		prev = cur
	}
	if ss.PurgedClauses == 0 {
		t.Fatal("GC never purged a clause across 150 recycled queries")
	}
	if shrankOrHeld == 0 {
		t.Errorf("learnt DB grew monotonically every query (purged=%d)", ss.PurgedClauses)
	}
	t.Logf("purged %d learnts; DB grew %d times, shrank/held %d times, final %d",
		ss.PurgedClauses, grew, shrankOrHeld, ss.Learnts())
}

// TestSessionGCKeepsCurrentQueryLearnts: purging happens between units;
// a learnt earned by the live query must survive its own solve.
func TestSessionGCKeepsCurrentQueryLearnts(t *testing.T) {
	ss := NewSession(SessionConfig{})
	rng := rand.New(rand.NewSource(3))
	opts := Options{NoProbe: true, Passes: NoPasses}
	// Burn a few queries to retire some activation groups.
	for i := 0; i < 10; i++ {
		phi := randFormula(ss.Builder(), rng, 3)
		ss.Begin()
		ss.Solve(phi, opts)
		ss.Finish()
	}
	before := ss.PurgedClauses
	phi := randFormula(ss.Builder(), rng, 3)
	ss.Begin()
	purgedDuring := ss.PurgedClauses - before
	ss.Solve(phi, opts)
	ss.Finish()
	if purged := ss.PurgedClauses - before; purged != purgedDuring {
		t.Errorf("GC ran mid-unit: %d purged after Begin", purged-purgedDuring)
	}
}
