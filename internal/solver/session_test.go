package solver

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"fusion/internal/sat"
	"fusion/internal/smt"
)

// randFormula builds a random formula over nv 8-bit variables in b.
func randFormula(b *smt.Builder, rng *rand.Rand, nv int) *smt.Term {
	vars := make([]*smt.Term, nv)
	for i := range vars {
		vars[i] = b.Var("v"+string(rune('a'+i)), 8)
	}
	var atom func(depth int) *smt.Term
	atom = func(depth int) *smt.Term {
		v := func() *smt.Term {
			if rng.Intn(3) == 0 {
				return b.Const(uint32(rng.Intn(256)), 8)
			}
			return vars[rng.Intn(nv)]
		}
		x, y := v(), v()
		switch rng.Intn(6) {
		case 0:
			x = b.Add(x, y)
			y = v()
		case 1:
			x = b.Mul(x, b.Const(uint32(1+rng.Intn(7)), 8))
		case 2:
			x = b.URem(x, b.Const(uint32(1+rng.Intn(9)), 8))
		}
		var p *smt.Term
		switch rng.Intn(3) {
		case 0:
			p = b.Eq(x, y)
		case 1:
			p = b.Ult(x, y)
		default:
			p = b.Slt(x, y)
		}
		if depth > 0 && rng.Intn(2) == 0 {
			q := atom(depth - 1)
			if rng.Intn(2) == 0 {
				return b.And(p, q)
			}
			return b.Or(p, q)
		}
		return p
	}
	return atom(2 + rng.Intn(2))
}

// TestSessionWarmMatchesCold is the core differential guarantee: every
// verdict from a warm session agrees with a cold one-shot solve of the
// same formula.
func TestSessionWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ss := NewSession(SessionConfig{})
	for iter := 0; iter < 120; iter++ {
		phi := randFormula(ss.Builder(), rng, 3)
		ss.Begin()
		warm := ss.Solve(phi, Options{})
		ss.Finish()

		// The cold solve must see the formula through a fresh builder to
		// prove independence from the warm builder's term history.
		cb := smt.NewBuilder()
		cold := Solve(cb, smt.RenameVars(cb, phi, func(n string) string { return n }), Options{})
		if warm.Status != cold.Status {
			t.Fatalf("iter %d: warm %s != cold %s for %s",
				iter, warm.Status, cold.Status, phi)
		}
	}
	if ss.Queries == 0 || ss.Resets != 0 {
		t.Fatalf("session stats: queries %d resets %d", ss.Queries, ss.Resets)
	}
}

func TestSessionCountsReuse(t *testing.T) {
	ss := NewSession(SessionConfig{})
	b := ss.Builder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	sum := b.Add(x, y)

	// NoProbe + NoPasses force both queries into the SAT core so the
	// encoding cache is actually exercised.
	opts := Options{NoProbe: true, Passes: NoPasses}
	r1 := ss.Solve(b.Eq(sum, b.Const(9, 8)), opts)
	if r1.Status != sat.Sat || r1.CacheHits != 0 {
		t.Fatalf("first query: status %s hits %d, want sat/0", r1.Status, r1.CacheHits)
	}
	r2 := ss.Solve(b.Eq(sum, b.Const(200, 8)), opts)
	if r2.Status != sat.Sat {
		t.Fatalf("second query: status %s, want sat", r2.Status)
	}
	if r2.CacheHits < 1 {
		t.Fatalf("second query reused %d encodings, want >= 1", r2.CacheHits)
	}
	if r2.CacheVars <= 0 {
		t.Fatalf("CacheVars %d, want > 0", r2.CacheVars)
	}
}

func TestSessionRetainsLearnedClauses(t *testing.T) {
	ss := NewSession(SessionConfig{})
	b := ss.Builder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	// An unsatisfiable multiplication fact the probe cannot decide and
	// preprocessing cannot fold: x*y = 251 with both factors even.
	even := func(v *smt.Term) *smt.Term {
		return b.Eq(b.URem(v, b.Const(2, 8)), b.Const(0, 8))
	}
	phi := b.And(b.And(even(x), even(y)),
		b.Eq(b.Mul(x, y), b.Const(251, 8)))
	opts := Options{NoProbe: true, Passes: NoPasses}
	r1 := ss.Solve(phi, opts)
	if r1.Status != sat.Unsat {
		t.Fatalf("first solve: %s, want unsat", r1.Status)
	}
	r2 := ss.Solve(phi, opts)
	if r2.Status != sat.Unsat {
		t.Fatalf("second solve: %s, want unsat", r2.Status)
	}
	if r1.Conflicts > 0 && r2.ReusedClauses == 0 && r2.Conflicts >= r1.Conflicts {
		t.Fatalf("no warm-state benefit: first %d conflicts, second %d with %d inherited clauses",
			r1.Conflicts, r2.Conflicts, r2.ReusedClauses)
	}
}

func TestSessionPoisonedByPanicResets(t *testing.T) {
	ss := NewSession(SessionConfig{})
	b := ss.Builder()
	x := b.Var("x", 8)
	phi := b.Eq(x, b.Const(1, 8))

	ss.Begin()
	r := ss.Solve(phi, Options{})
	ss.Finish()
	if r.Status != sat.Sat {
		t.Fatalf("warm-up: %s, want sat", r.Status)
	}

	// A contained panic runs Begin but never Finish.
	func() {
		defer func() { recover() }()
		ss.Begin()
		_ = ss.Solve(phi, Options{})
		panic("injected mid-unit failure")
	}()

	// The next unit must detect the poisoning, rebuild, and still answer
	// correctly. The builder was swapped, so rebuild the formula.
	ss.Begin()
	b2 := ss.Builder()
	if b2 == b {
		t.Fatal("poisoned session kept its builder without KeepBuilder")
	}
	r = ss.Solve(b2.Eq(b2.Var("x", 8), b2.Const(1, 8)), Options{})
	ss.Finish()
	if r.Status != sat.Sat {
		t.Fatalf("post-reset solve: %s, want sat", r.Status)
	}
	if ss.Resets != 1 {
		t.Fatalf("resets %d, want 1", ss.Resets)
	}
}

func TestSessionKeepBuilderSurvivesReset(t *testing.T) {
	b := smt.NewBuilder()
	ss := NewSessionWith(b, SessionConfig{KeepBuilder: true})
	ss.Begin() // poisoned unit: no Finish
	ss.Begin() // must reset but keep the builder
	if ss.Builder() != b {
		t.Fatal("KeepBuilder session swapped its builder on reset")
	}
	if ss.Resets != 1 {
		t.Fatalf("resets %d, want 1", ss.Resets)
	}
	r := ss.Solve(b.Eq(b.Var("x", 8), b.Const(5, 8)), Options{})
	ss.Finish()
	if r.Status != sat.Sat {
		t.Fatalf("post-reset solve: %s, want sat", r.Status)
	}
}

func TestSessionEviction(t *testing.T) {
	// A tiny MaxVars forces an eviction between queries; verdicts must be
	// unaffected.
	ss := NewSession(SessionConfig{MaxVars: 1})
	b := ss.Builder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	even := func(v *smt.Term) *smt.Term {
		return b.Eq(b.URem(v, b.Const(2, 8)), b.Const(0, 8))
	}
	phi := b.And(b.And(even(x), even(y)),
		b.Eq(b.Mul(x, y), b.Const(251, 8)))
	opts := Options{NoProbe: true, Passes: NoPasses}
	if r := ss.Solve(phi, opts); r.Status != sat.Unsat {
		t.Fatalf("first: %s, want unsat", r.Status)
	}
	if r := ss.Solve(phi, opts); r.Status != sat.Unsat {
		t.Fatalf("second: %s, want unsat", r.Status)
	}
	if ss.Evictions == 0 {
		t.Fatal("MaxVars=1 never evicted across queries")
	}
}

func TestSessionWantModel(t *testing.T) {
	ss := NewSession(SessionConfig{})
	b := ss.Builder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	phi := b.And(b.Eq(b.Add(x, y), b.Const(10, 8)), b.Ult(x, b.Const(3, 8)))
	r := ss.Solve(phi, Options{WantModel: true})
	if r.Status != sat.Sat {
		t.Fatalf("got %s, want sat", r.Status)
	}
	if got := smt.Eval(phi, r.Model); got != 1 {
		t.Fatalf("model does not satisfy phi: eval=%d model=%v", got, r.Model)
	}
}

func TestSessionBudgetsPerCall(t *testing.T) {
	ss := NewSession(SessionConfig{})
	b := ss.Builder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	z := b.Var("z", 8)
	// Hard enough to exhaust one conflict: a multiplicative constraint mesh.
	phi := b.And(
		b.Eq(b.Mul(b.Mul(x, y), z), b.Const(113, 8)),
		b.And(b.Eq(b.URem(x, b.Const(2, 8)), b.Const(0, 8)),
			b.Ult(b.Const(7, 8), z)))
	opts := Options{NoProbe: true, Passes: NoPasses, MaxConflicts: 1}
	r1 := ss.Solve(phi, opts)
	// Whatever the verdict, a second call with a generous budget must not
	// be constrained by the first call's tiny one.
	opts.MaxConflicts = 4_000_000
	r2 := ss.Solve(phi, opts)
	if r2.Status == sat.Unknown {
		t.Fatalf("second call still budget-bound: %+v then %+v", r1, r2)
	}
}

// TestProbeTimeAttribution (satellite): a probe-decided query reports its
// probe cost separately and zero search stats.
func TestProbeTimeAttribution(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	phi := b.Eq(b.Add(x, b.Const(1, 32)), b.Const(5, 32))
	r := Solve(b, phi, Options{})
	if !r.DecidedByProbe {
		t.Skipf("probe did not decide %s; nothing to assert", phi)
	}
	if r.SearchTime != 0 || r.Conflicts != 0 || r.PreprocessTime != 0 {
		t.Fatalf("probe-decided query leaked stats: search=%v conflicts=%d preprocess=%v",
			r.SearchTime, r.Conflicts, r.PreprocessTime)
	}
	if r.ProbeTime <= 0 {
		t.Fatal("probe ran but ProbeTime is zero")
	}
}

// TestCtxCancelledBetweenPhases (satellite): cancellation after the probe
// must not start preprocessing.
func TestCtxCancelledBetweenPhases(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	// Unsat, so the probe cannot decide it and the solve would normally
	// proceed into preprocessing.
	phi := b.And(b.Ult(x, y), b.Ult(y, x))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Solve(b, phi, Options{Ctx: ctx})
	if r.Status != sat.Unknown {
		t.Fatalf("cancelled solve returned %s, want unknown", r.Status)
	}
	if r.PreprocessTime != 0 || r.SizeAfter != 0 {
		t.Fatalf("cancelled solve still preprocessed: %+v", r)
	}
}

func TestSessionHonorsTimeout(t *testing.T) {
	ss := NewSession(SessionConfig{})
	b := ss.Builder()
	// Build a genuinely hard instance: 24-bit factorization-style query.
	x := b.Var("x", 24)
	y := b.Var("y", 24)
	phi := b.And(b.Eq(b.Mul(x, y), b.Const(0xB00F1, 24)),
		b.And(b.Ult(b.Const(1, 24), x), b.Ult(b.Const(1, 24), y)))
	opts := Options{NoProbe: true, Passes: NoPasses, Timeout: 20 * time.Millisecond}
	start := time.Now()
	_ = ss.Solve(phi, opts)
	if time.Since(start) > 10*time.Second {
		t.Fatal("session solve ignored Timeout")
	}
	// The stale deadline must not bound the next query.
	easy := b.Eq(b.Var("e", 8), b.Const(1, 8))
	r := ss.Solve(easy, Options{NoProbe: true, Passes: NoPasses})
	if r.Status != sat.Sat {
		t.Fatalf("query after timeout-bounded one: %s, want sat", r.Status)
	}
}
