package fusioncore

// Width-parametric validation of the absint fact exports. The abstract
// domains speak about MATHEMATICAL signed values while the residual
// formula computes over fixed-width machine words, so every exported
// conjunct carries side conditions tying the two views together. The
// checks live here as pure functions of (fact, width) so they can be
// unit-tested against adversarial narrow-width facts without building a
// residual: the historical bugs were exactly these checks hard-coding
// 32-bit limits (2^32 moduli, MinInt32/MaxInt32 endpoint clamps,
// int32 truncation) while the emitted constants were masked to the
// value's own width — a modulus of 300 at 8 bits silently became
// URem(v, 44), and 256 became URem(v, 0).

// minSigned and maxSigned bound the signed range of a width-bits machine
// word (bits in 1..32; width 1 is the boolean range {0, 1}).
func minSigned(bits int) int64 {
	if bits == 1 {
		return 0
	}
	return -(int64(1) << uint(bits-1))
}

func maxSigned(bits int) int64 {
	if bits == 1 {
		return 1
	}
	return int64(1)<<uint(bits-1) - 1
}

// maskWidth is the bit pattern mask for width bits.
func maskWidth(bits int) uint32 {
	return uint32(uint64(1)<<uint(bits) - 1)
}

// exportableBounds validates signed invariant endpoints for emission as
// width-bits constants and returns their bit patterns. Endpoints outside
// the width's signed range cannot be represented: masking would make the
// emitted constant denote a different value than the invariant, so the
// fact must be skipped rather than truncated.
func exportableBounds(lo, hi int64, bits int) (loC, hiC uint32, ok bool) {
	if bits < 1 || bits > 32 || lo > hi {
		return 0, 0, false
	}
	if lo < minSigned(bits) || hi > maxSigned(bits) {
		return 0, 0, false
	}
	return uint32(lo) & maskWidth(bits), uint32(hi) & maskWidth(bits), true
}

// exportableStride validates a congruence fact v ≡ r (mod m) for
// emission as URem(v, m) == r at width bits. The modulus constant must
// denote m itself, which requires m < 2^bits — at or above, masking
// yields a different (possibly zero) modulus, and URem(v, 0) is not the
// congruence. The machine remainder then agrees with the mathematical
// congruence exactly when m divides 2^bits (any power of two below the
// width bound does); otherwise only for non-negative v, which the
// caller must separately prove and assert (needNonneg).
func exportableStride(m, r int64, bits int) (mC, rC uint32, needNonneg, ok bool) {
	if bits < 1 || bits > 32 || m < 2 || r < 0 || r >= m {
		return 0, 0, false, false
	}
	if m >= int64(1)<<uint(bits) {
		return 0, 0, false, false
	}
	return uint32(m), uint32(r), m&(m-1) != 0, true
}

// exportableDiff validates a zone fact x − y ≤ c with y ∈ [lo, hi] for
// emission as x ≤s y + c at width bits. The encoding is faithful only
// when the constant c denotes itself at the width and the machine sum
// y + c cannot leave the width's signed range (a wrap would flip the
// signed comparison), both judged against the width's own bounds rather
// than the 32-bit ones.
func exportableDiff(c, lo, hi int64, bits int) (cC uint32, ok bool) {
	if bits < 1 || bits > 32 || lo > hi {
		return 0, false
	}
	if c < minSigned(bits) || c > maxSigned(bits) {
		return 0, false
	}
	if lo+c < minSigned(bits) || hi+c > maxSigned(bits) {
		return 0, false
	}
	return uint32(c) & maskWidth(bits), true
}
