package fusioncore_test

import (
	"context"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/cond"
	"fusion/internal/driver"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
)

func buildGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

// compareEngines checks the fused solver against the eager translation on
// every candidate of a spec and returns the fused results.
func compareEngines(t *testing.T, src string, spec *sparse.Spec) []fusioncore.Result {
	t.Helper()
	g := buildGraph(t, src)
	cands := sparse.NewEngine(g).Run(spec)
	if len(cands) == 0 {
		t.Fatal("no candidates found")
	}
	var out []fusioncore.Result
	for _, c := range cands {
		eb := smt.NewBuilder()
		sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
		eager := solver.Solve(eb, cond.Translate(eb, sl).Phi, solver.Options{})

		fb := smt.NewBuilder()
		fused := fusioncore.Solve(context.Background(), fb, g, []pdg.Path{c.Path}, fusioncore.Options{})
		if fused.Status != eager.Status {
			t.Errorf("engine disagreement on %s: fused=%s eager=%s",
				c.Path, fused.Status, eager.Status)
		}
		out = append(out, fused)
	}
	return out
}

const fig1Src = `
fun bar(x: int): int {
    var y: int = x * 2;
    var z: int = y;
    return z;
}

fun foo(a: int, b: int) {
    var p: ptr = null;
    var c: int = bar(a);
    var d: int = bar(b);
    if (c < d) {
        deref(p);
    }
}
`

func TestFigure1QuickPath(t *testing.T) {
	res := compareEngines(t, fig1Src, checker.NullDeref())
	if res[0].Status != sat.Sat {
		t.Fatalf("got %s, want sat", res[0].Status)
	}
	// Observe Algorithm 6 itself: disable the raw-residual graph probe,
	// which would otherwise decide this satisfiable instance first.
	g0 := buildGraph(t, fig1Src)
	cands0 := sparse.NewEngine(g0).Run(checker.NullDeref())
	r := fusioncore.Solve(context.Background(), smt.NewBuilder(), g0, []pdg.Path{cands0[0].Path},
		fusioncore.Options{DisableGraphProbe: true})
	if r.Status != sat.Sat {
		t.Fatalf("got %s, want sat", r.Status)
	}
	// bar collapses to ret = 2x, so both call edges are quick paths and
	// bar is never cloned: only foo's root instance materializes.
	if r.QuickPaths != 2 {
		t.Errorf("quick paths: got %d, want 2", r.QuickPaths)
	}
	if r.Clones != 1 {
		t.Errorf("clones: got %d, want 1 (foo only)", r.Clones)
	}

	// With the concrete-execution probe disabled, preprocessing alone must
	// decide the Figure 1 condition (the paper's §2 claim).
	g := buildGraph(t, fig1Src)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	b := smt.NewBuilder()
	r2 := fusioncore.Solve(context.Background(), b, g, []pdg.Path{cands[0].Path}, fusioncore.Options{
		Solver:            solver.Options{NoProbe: true},
		DisableGraphProbe: true,
	})
	if r2.Status != sat.Sat || !r2.Preprocessed {
		t.Errorf("without probing, preprocessing should decide: %+v", r2.Result)
	}
}

func TestFigure1Unoptimized(t *testing.T) {
	g := buildGraph(t, fig1Src)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	b := smt.NewBuilder()
	r := fusioncore.Solve(context.Background(), b, g, []pdg.Path{cands[0].Path}, fusioncore.Options{Unoptimized: true})
	if r.Status != sat.Sat {
		t.Fatalf("algorithm 4: got %s, want sat", r.Status)
	}
	if r.Clones != 3 {
		t.Errorf("algorithm 4 clones: got %d, want 3", r.Clones)
	}
}

func TestEngineAgreementScenarios(t *testing.T) {
	cases := []struct {
		name string
		src  string
		spec *sparse.Spec
		want sat.Status
	}{
		{"straight-line", `
fun f() {
    var p: ptr = null;
    deref(p);
}`, checker.NullDeref(), sat.Sat},
		{"contradictory-guards", `
fun f(a: int) {
    var p: ptr = null;
    if (a > 0) {
        if (a < 0) {
            deref(p);
        }
    }
}`, checker.NullDeref(), sat.Unsat},
		{"constant-guard", `
fun f() {
    var x: int = 1;
    var p: ptr = null;
    if (x == 2) {
        deref(p);
    }
}`, checker.NullDeref(), sat.Unsat},
		{"cross-function-contradiction", `
fun pick(v: int, p: ptr, q: ptr): ptr {
    var r: ptr = q;
    if (v > 0) {
        r = p;
    }
    return r;
}
fun f(v: int, q: ptr) {
    var n: ptr = null;
    var got: ptr = pick(v, n, q);
    if (v < 0) {
        deref(got);
    }
}`, checker.NullDeref(), sat.Unsat},
		{"guarded-call-edge", `
fun hold(p: ptr): ptr {
    return p;
}
fun f(a: int, q: ptr) {
    var n: ptr = null;
    var r: ptr = q;
    if (a > 0) {
        r = hold(n);
    }
    if (a < 0) {
        deref(r);
    }
}`, checker.NullDeref(), sat.Unsat},
		{"taint-feasible", `
fun f(a: int) {
    var s: int = read_secret();
    if (a * 3 == 9) {
        send(s);
    }
}`, checker.PrivateLeak(), sat.Sat},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := compareEngines(t, c.src, c.spec)
			for _, r := range res {
				if r.Status != c.want {
					t.Errorf("got %s, want %s", r.Status, c.want)
				}
			}
		})
	}
}

func TestDeepCallChainStaysLinear(t *testing.T) {
	// f0 -> f1 -> ... -> f5, each called twice: eager cloning is
	// exponential (2^5 instances of f5), quick paths collapse everything.
	src := `
fun f5(x: int): int { return x + 1; }
fun f4(x: int): int { return f5(x) + f5(x + 1); }
fun f3(x: int): int { return f4(x) + f4(x + 1); }
fun f2(x: int): int { return f3(x) + f3(x + 1); }
fun f1(x: int): int { return f2(x) + f2(x + 1); }
fun f0(a: int) {
    var p: ptr = null;
    var r: int = f1(a);
    if (r > 0) {
        deref(p);
    }
}
`
	g := buildGraph(t, src)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}

	eb := smt.NewBuilder()
	sl := pdg.ComputeSlice(g, []pdg.Path{cands[0].Path})
	eager := cond.Translate(eb, sl)
	if eager.Clones < 31 { // 1 + 2 + 4 + 8 + 16 at least
		t.Fatalf("eager cloning should be exponential, got %d clones", eager.Clones)
	}

	fb := smt.NewBuilder()
	fused := fusioncore.Solve(context.Background(), fb, g, []pdg.Path{cands[0].Path},
		fusioncore.Options{DisableGraphProbe: true})
	if fused.Status != sat.Sat {
		t.Fatalf("fused: got %s, want sat", fused.Status)
	}
	if fused.Clones > 2 {
		t.Errorf("fused clones: got %d, want <= 2 (quick paths collapse the chain)", fused.Clones)
	}
	if fb.NumTerms() >= eb.NumTerms() {
		t.Errorf("fused built %d terms, eager %d: fusion should be smaller",
			fb.NumTerms(), eb.NumTerms())
	}
}

func TestAblationFlags(t *testing.T) {
	g := buildGraph(t, fig1Src)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	path := []pdg.Path{cands[0].Path}

	noQuick := fusioncore.Solve(context.Background(), smt.NewBuilder(), g, path, fusioncore.Options{DisableQuickPaths: true})
	if noQuick.Status != sat.Sat {
		t.Errorf("no-quick-paths: got %s, want sat", noQuick.Status)
	}
	if noQuick.QuickPaths != 0 {
		t.Errorf("no-quick-paths used %d quick paths", noQuick.QuickPaths)
	}
	if noQuick.Clones <= 1 {
		t.Errorf("without quick paths bar must be cloned: %d clones", noQuick.Clones)
	}

	noLocal := fusioncore.Solve(context.Background(), smt.NewBuilder(), g, path, fusioncore.Options{DisableLocalPreprocess: true})
	if noLocal.Status != sat.Sat {
		t.Errorf("no-local-preprocess: got %s, want sat", noLocal.Status)
	}
}

func TestMultiPathJointFeasibility(t *testing.T) {
	src := `
fun f(a: int) {
    var s1: int = read_secret();
    var s2: int = read_secret();
    var c: int = 0;
    var d: int = 0;
    if (a > 0) {
        c = s1;
    }
    if (a < 0) {
        d = s2;
    }
    sendmsg(c, d);
}`
	g := buildGraph(t, src)
	cands := sparse.NewEngine(g).Run(checker.PrivateLeak())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	joint := fusioncore.Solve(context.Background(), smt.NewBuilder(), g,
		[]pdg.Path{cands[0].Path, cands[1].Path}, fusioncore.Options{})
	if joint.Status != sat.Unsat {
		t.Errorf("joint flows: got %s, want unsat", joint.Status)
	}
}

// TestQuickPathWithForcedInstance is a regression test: when a path dives
// into a callee that is also quick-pathed for its return value, the callee
// instance's parameter links must still bind to defined actuals. The
// divisor here is r1*2+1 (odd) and must be refuted even though divide's
// return form crosses the first call edge as a quick path.
func TestQuickPathWithForcedInstance(t *testing.T) {
	g := buildGraph(t, `
fun divide(d: int): int {
    var x: int = 100 / d;
    return x;
}
fun f() {
    var n: int = user_input();
    var r1: int = divide(n);
    var r2: int = divide(r1 * 2 + 1);
    send(r2);
}`)
	cands := sparse.NewEngine(g).Run(checker.DivByZero())
	var sawOdd, sawFree bool
	for _, c := range cands {
		b := smt.NewBuilder()
		opts := fusioncore.Options{}
		if c.ConstrainStep >= 0 {
			opts.Constraints = []pdg.ValueConstraint{{Path: 0, Step: c.ConstrainStep, Value: c.ConstrainValue}}
		}
		r := fusioncore.Solve(context.Background(), b, g, []pdg.Path{c.Path}, opts)
		// The flow into the second call's divisor is odd: must be unsat.
		// The flow into the first call's divisor is free: must be sat.
		crossings := 0
		for _, st := range c.Path {
			if st.Kind == pdg.StepCall || st.Kind == pdg.StepReturn {
				crossings++
			}
		}
		if crossings >= 3 { // n -> ret -> r1 -> second call
			sawOdd = true
			if r.Status != sat.Unsat {
				t.Errorf("odd divisor through quick-pathed call: got %s, want unsat (path %s)", r.Status, c.Path)
			}
		} else {
			sawFree = true
			if r.Status != sat.Sat {
				t.Errorf("free divisor: got %s, want sat (path %s)", r.Status, c.Path)
			}
		}
	}
	if !sawOdd || !sawFree {
		t.Fatalf("expected both flows; candidates: %d", len(cands))
	}
}
