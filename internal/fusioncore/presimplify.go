package fusioncore

import (
	"fusion/internal/pdg"
	"fusion/internal/smt"
	"fusion/internal/ssa"
)

// presimplify folds a function's local conjuncts against the
// whole-program invariants before interface preprocessing — the
// absint-guided tier of Algorithm 6's per-function step. A vertex whose
// invariant is a singleton {c} is forced to c in every model of the
// emitted equation system, but only when the invariant holds
// unconditionally: a guarded invariant assumes its guard chain, while
// the local equations are asserted on all models, so folding is
// restricted to vertices whose entire guard chain is itself decided
// always-true (chainDecided). For each such vertex the pass substitutes
// the literal for its variable throughout the conjuncts — which
// constant-folds comparisons and branch conditions the domains already
// decided and collapses implied conjuncts to true, where they are
// dropped — and re-adds the binding v == c, since other instances still
// reference the variable (parameter links, guard assertions, value
// constraints) and dropping the forced value would widen the model set.
//
// Equisatisfiability is preserved by construction: the substituted
// equalities hold in every model of the full system (the singleton was
// derived forward from operand invariants under decided guards), the
// bindings are implied facts, and only literally-true conjuncts are
// removed. Pruned-ite assertions and quick-path closed forms are
// rewritten, never dropped: a conjunct that does not fold to true stays,
// whatever its shape.
func (st *state) presimplify(f *ssa.Function, conjs []*smt.Term) []*smt.Term {
	an := st.opts.Absint
	root := st.tr.T.Root
	sub := map[*smt.Term]*smt.Term{}
	var binds []*smt.Term
	pruned := 0
	for _, v := range st.sliceVals[f] {
		switch v.Op {
		case ssa.OpConst, ssa.OpExtern, ssa.OpParam:
			// Constants need no folding; externs and parameters are free
			// inputs whose invariants are top by construction.
			continue
		}
		if !st.chainDecided(v.Guard) {
			continue
		}
		iv, ok := an.IntervalOf(v)
		if !ok || iv.IsBottom() || iv.Lo != iv.Hi {
			continue
		}
		bits := pdg.TypeBits(v.Type)
		vt := st.tr.Var(v, root)
		c := st.b.Const(uint32(iv.Lo), bits)
		sub[vt] = c
		binds = append(binds, st.b.Eq(vt, c))
		if v.Op == ssa.OpBranch {
			pruned++
		}
	}
	if len(sub) == 0 {
		return conjs
	}
	st.simplified += len(sub)
	st.prunedGuards += pruned
	out := make([]*smt.Term, 0, len(conjs)+len(binds))
	for _, cj := range conjs {
		folded := smt.Substitute(st.b, cj, sub)
		if folded.IsTrue() {
			continue
		}
		out = append(out, folded)
	}
	return append(out, binds...)
}

// chainDecided reports whether every guard on the chain is decided
// always-true by the whole-program invariants, which makes facts
// computed under the chain hold unconditionally. Guards are walked
// outward, so an inner guard's invariant (which assumes the outer ones)
// is only trusted when the outer ones are decided as well.
func (st *state) chainDecided(gd *ssa.Value) bool {
	for ; gd != nil; gd = gd.Guard {
		iv, ok := st.opts.Absint.IntervalOf(gd)
		if !ok || iv.IsBottom() || iv.Lo != 1 || iv.Hi != 1 {
			return false
		}
	}
	return true
}
