package fusioncore_test

import (
	"context"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/sparse"
)

// bitDivSrc is a hand-written copy of progen's bit-level infeasible
// division: the divisor (n | 1) + k1 - k1 is odd, which no abstract
// domain tracks and the sat probe cannot contradict, so the query always
// reaches the bit-precise solver. The constant chain k0/k1 and the
// narrow i8 locals sit behind a decided guard, which is exactly what the
// pre-simplification folds.
const bitDivSrc = `
fun root(a: int, b: int) {
    var n: int = user_input();
    var k0: int = 5;
    var k1: int = k0 * 3 + 1;
    var w0: i8 = 60;
    var w1: i8 = w0 / 3 + 17;
    var d: int = (n | 1) + k1 - k1;
    if (w1 > 0) {
        var q: int = 42 / d;
        send(q + a + b);
    }
}
`

// solveModes runs one candidate through the fused pipeline in three
// configurations — simplification on, simplification off, and no absint
// at all — and returns the three results. The candidate's checker
// constraint (e.g. divisor == 0) is applied in every mode, mirroring
// engines.Fusion.
func solveModes(ctx context.Context, g *pdg.Graph, an *absint.Analysis, c sparse.Candidate) (on, off, raw fusioncore.Result) {
	cs := c.Constraints(0)
	on = fusioncore.Solve(ctx, smt.NewBuilder(), g, []pdg.Path{c.Path},
		fusioncore.Options{Absint: an, Constraints: cs})
	off = fusioncore.Solve(ctx, smt.NewBuilder(), g, []pdg.Path{c.Path},
		fusioncore.Options{Absint: an, DisableAbsintSimplify: true, Constraints: cs})
	raw = fusioncore.Solve(ctx, smt.NewBuilder(), g, []pdg.Path{c.Path},
		fusioncore.Options{Constraints: cs})
	return on, off, raw
}

// TestPresimplifyFoldsBitDivQuery pins the tentpole behavior on the
// hand-written bit-level query: the simplified and unsimplified
// pipelines agree the division is infeasible, and the simplified one
// actually folded something (including the decided branch guard).
func TestPresimplifyFoldsBitDivQuery(t *testing.T) {
	g := buildGraph(t, bitDivSrc)
	cands := sparse.NewEngine(g).Run(checker.DivByZero())
	if len(cands) == 0 {
		t.Fatal("no division candidates found")
	}
	an := absint.Analyze(g)
	ctx := context.Background()
	for _, c := range cands {
		on, off, raw := solveModes(ctx, g, an, c)
		if on.Status != sat.Unsat || off.Status != sat.Unsat || raw.Status != sat.Unsat {
			t.Fatalf("bit-div query must be unsat in every mode: on=%s off=%s raw=%s",
				on.Status, off.Status, raw.Status)
		}
		if on.DecidedByAbsint {
			t.Fatal("abstract tiers must not decide the bit-level query")
		}
		if on.Simplified == 0 {
			t.Error("simplified pipeline folded no vertices on the constant chain")
		}
		if on.PrunedGuards == 0 {
			t.Error("the decided branch guard was not folded to a literal")
		}
		if off.Simplified != 0 || raw.Simplified != 0 {
			t.Errorf("disabled pipelines must report zero folds: off=%d raw=%d",
				off.Simplified, raw.Simplified)
		}
	}
}

// undecidedSrc varies bitDivSrc so the guard depends on an unconstrained
// input: its chain is not decided, so nothing below it may be folded.
const undecidedSrc = `
fun root(a: int, b: int) {
    var n: int = user_input();
    var d: int = (n | 1) + 3 - 3;
    if (a > 10) {
        var k: int = 7 * 6;
        var q: int = k / d;
        send(q + b);
    }
}
`

// TestPresimplifyRespectsUndecidedGuards checks the side condition that
// makes folding sound: a singleton invariant guarded by an undecided
// branch holds only on some paths, so the vertex must stay symbolic.
func TestPresimplifyRespectsUndecidedGuards(t *testing.T) {
	g := buildGraph(t, undecidedSrc)
	cands := sparse.NewEngine(g).Run(checker.DivByZero())
	if len(cands) == 0 {
		t.Fatal("no division candidates found")
	}
	an := absint.Analyze(g)
	ctx := context.Background()
	for _, c := range cands {
		on, off, _ := solveModes(ctx, g, an, c)
		if on.Status != off.Status {
			t.Fatalf("verdict changed: on=%s off=%s", on.Status, off.Status)
		}
		if on.PrunedGuards != 0 {
			t.Errorf("folded %d branch guards under an input-dependent condition",
				on.PrunedGuards)
		}
	}
}

// TestPresimplifyEquisatProgen is the differential property test demanded
// by the soundness argument: across generated subjects, enabling the
// pre-simplification must never flip a sat/unsat verdict relative to the
// unsimplified pipeline or the absint-free pipeline.
func TestPresimplifyEquisatProgen(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus sweep")
	}
	ctx := context.Background()
	solverBound, folded := 0, 0
	for _, subIdx := range []int{1, 4, 8} {
		info := progen.Subjects[subIdx]
		src, _, _ := info.Build(0.05)
		pr, err := driver.Compile(ctx, driver.Source{Name: info.Name, Text: src}, driver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g := pr.Graph
		an := absint.Analyze(g)
		eng := sparse.NewEngine(g)
		for _, spec := range checker.All() {
			for _, c := range eng.Run(spec) {
				on, off, raw := solveModes(ctx, g, an, c)
				if on.Status != off.Status {
					t.Errorf("%s/%s: simplification flipped verdict %s -> %s (%s)",
						info.Name, spec.Name, off.Status, on.Status, checker.Describe(c))
				}
				if on.Status != sat.Unknown && raw.Status != sat.Unknown && on.Status != raw.Status {
					t.Errorf("%s/%s: absint pipeline disagrees with raw pipeline: %s vs %s (%s)",
						info.Name, spec.Name, on.Status, raw.Status, checker.Describe(c))
				}
				if !on.DecidedByAbsint {
					solverBound++
				}
				folded += on.Simplified
				if off.Simplified != 0 {
					t.Errorf("%s/%s: disabled pipeline reported %d folds",
						info.Name, spec.Name, off.Simplified)
				}
			}
		}
	}
	if solverBound == 0 {
		t.Error("corpus produced no solver-bound queries; the differential test is vacuous")
	}
	if folded == 0 {
		t.Error("pre-simplification folded nothing across the corpus")
	}
}
