// Package fusioncore implements the paper's contribution: IR-based SMT
// solving fused with the sparse analysis. Instead of eagerly computing,
// cloning, and caching path conditions, the solver works on the program
// dependence graph:
//
//   - ir_based_smt_solve (Algorithm 4): slice, clone, translate, solve —
//     available via Options{Unoptimized: true} as the ablation baseline;
//   - the optimized solution (Algorithm 6): per-function local conditions
//     preprocessed with interface variables preserved
//     (intraprocedural_preprocess), inter-procedural propagation of closed
//     return forms over the graph's modular structure — the "quick paths"
//     that let a caller skip a callee entirely (interprocedural_preprocess,
//     Figures 3 and 9) — and context cloning delayed until only the
//     conditions that still need it remain.
package fusioncore

import (
	"context"
	"sort"
	"time"

	"fusion/internal/sat"

	"fusion/internal/absint"
	"fusion/internal/cond"
	"fusion/internal/pdg"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/ssa"
)

// Options configure the fused solve.
type Options struct {
	// Solver configures the final standalone solve on the residual
	// formula.
	Solver solver.Options
	// Session, when set, routes the final residual solve through a warm
	// incremental session — learned clauses and Tseitin encodings carry
	// over from the caller's earlier queries — instead of the one-shot
	// stack. The builder passed to Solve must be the session's own
	// (Session.Builder()), since encodings key on hash-consed identity.
	Session *solver.Session
	// InlineThreshold is the maximum DAG size of a closed return form that
	// may be propagated across call edges (quick path). Zero means 64.
	InlineThreshold int
	// DisableQuickPaths turns off inter-procedural propagation of closed
	// return forms (ablation).
	DisableQuickPaths bool
	// DisableLocalPreprocess turns off per-function preprocessing
	// (ablation).
	DisableLocalPreprocess bool
	// Unoptimized selects Algorithm 4: eager cloning with no local or
	// inter-procedural preprocessing.
	Unoptimized bool
	// DisableGraphProbe turns off the graph-level concrete-execution probe
	// that runs on the raw residual before Algorithm 6 (ablation).
	DisableGraphProbe bool
	// Constraints pins path-step values in the condition (see
	// pdg.ValueConstraint), e.g. the zero divisor of a division-by-zero
	// candidate.
	Constraints []pdg.ValueConstraint
	// Absint, when set, adds the interval abstract interpretation as the
	// first preprocessing tier: queries it refutes are decided unsat with
	// no formula built at all, its decided singletons pre-simplify the
	// per-function local conditions, and its invariant bounds on
	// path-step vertices are exported as extra conjuncts of the residual.
	Absint *absint.Analysis
	// DisableAbsintSimplify turns off the absint-guided pre-simplification
	// of local conditions (the `-absint=nosimplify` ablation); refutation
	// and fact export stay on.
	DisableAbsintSimplify bool
	// MaxHeapDelta, when positive, bounds how many bytes of new formula
	// the residual construction may allocate in the shared builder. A
	// query whose residual grows past the bound is not solved: the
	// result reports Unknown with Exhausted set, so the caller can fall
	// back to a cheaper tier instead of risking the batch's memory.
	MaxHeapDelta int64
}

func (o Options) inlineThreshold() int {
	if o.InlineThreshold <= 0 {
		return 64
	}
	return o.InlineThreshold
}

// Result reports the fused solve outcome and its cost accounting.
type Result struct {
	solver.Result
	// SliceSize is the vertex count of G[Π].
	SliceSize int
	// Clones is the number of (function, context) instances actually
	// materialized; the eager translation's clone count bounds it.
	Clones int
	// QuickPaths counts call edges crossed via a closed return form
	// instead of a cloned instance.
	QuickPaths int
	// LocalPreprocessTime is the total time spent in per-function
	// preprocessing.
	LocalPreprocessTime time.Duration
	// BuildTime is the wall time of residual-formula construction (graph
	// emission through local preprocessing), reported separately so the
	// telemetry layer can attribute translate cost apart from search cost.
	BuildTime time.Duration
	// DecidedByAbsint reports the query was refuted by the abstract
	// interpretation before any formula was built.
	DecidedByAbsint bool
	// DecidedByStride reports the refutation needed the congruence
	// (stride) tier — the interval domain alone could not decide it.
	DecidedByStride bool
	// DecidedByZone reports the refutation needed the zone relational
	// tier — neither intervals nor the congruence tier could decide it.
	DecidedByZone bool
	// AbsintBounds counts the invariant bound conjuncts exported into the
	// residual formula.
	AbsintBounds int
	// AbsintDiffs counts the difference-bound conjuncts exported into the
	// residual formula by the zone domain.
	AbsintDiffs int
	// AbsintStrides counts the congruence conjuncts exported into the
	// residual formula by the stride domain.
	AbsintStrides int
	// Simplified counts vertices whose decided singleton invariants were
	// folded into the local conditions by the pre-simplification pass.
	Simplified int
	// PrunedGuards counts decided branch conditions among them — guards
	// the pass rewrote to literals before the quick-path search.
	PrunedGuards int
	// Phi is the residual formula handed to the final solve (after
	// emission, before its global preprocessing), for inspection.
	Phi *smt.Term
}

// instKey identifies a materialized (function, context) instance.
type instKey struct {
	f   *ssa.Function
	ctx *cond.Ctx
}

// boundKey identifies a vertex instantiation whose invariant bounds were
// exported.
type boundKey struct {
	v   *ssa.Value
	ctx *cond.Ctx
}

type state struct {
	b     *smt.Builder
	g     *pdg.Graph
	sl    *pdg.Slice
	tr    *cond.Translator
	opts  Options
	conjs []*smt.Term

	// Per-function local conditions over root-context variable names.
	summary map[*ssa.Function]*smt.Term
	// closed maps a function to its return value expressed purely over
	// its parameters (the quick-path form), when one exists.
	closed map[*ssa.Function]*smt.Term

	emitted   map[instKey]bool
	quickUses int
	sliceVals map[*ssa.Function][]*ssa.Value
	// forcedSites are call sites the paths pass through; their callee
	// instances are materialized regardless of quick paths.
	forcedSites   map[int]bool
	localPrep     time.Duration
	absintBounds  int
	absintDiffs   int
	absintStrides int
	simplified    int
	prunedGuards  int
}

// Solve decides the feasibility of a set of data-dependence paths directly
// on the program dependence graph. It honors ctx cooperatively: the
// residual's SAT search polls it, and a cancelled ctx yields Unknown.
func Solve(ctx context.Context, b *smt.Builder, g *pdg.Graph, paths []pdg.Path, opts Options) Result {
	opts.Solver.Ctx = ctx
	sl := pdg.ComputeSlice(g, paths)
	sl.Constraints = append(sl.Constraints, opts.Constraints...)
	var res Result
	res.SliceSize = sl.Size()
	if ctx.Err() != nil {
		return res // Status zero value is Unknown
	}

	// Interval tier: the abstract interpretation models the very equation
	// system emitted below, so an abstract contradiction proves the query
	// unsat without building a formula (and soundness tests hold it to
	// that).
	if opts.Absint != nil {
		if refuted, byStride, byZone := opts.Absint.RefuteSliceTieredCtx(ctx, sl); refuted {
			res.Status = sat.Unsat
			res.DecidedByAbsint = true
			res.DecidedByStride = byStride
			res.DecidedByZone = byZone
			return res
		}
	}

	// solveFinal dispatches the residual to the warm session when one is
	// attached, and to the one-shot stack otherwise (the ablation oracle).
	solveFinal := func(phi *smt.Term) solver.Result {
		if opts.Session != nil {
			return opts.Session.Solve(phi, opts.Solver)
		}
		return solver.Solve(b, phi, opts.Solver)
	}

	if opts.Unoptimized {
		// Algorithm 4: eager translation, then the conventional solver.
		tr := cond.Translate(b, sl)
		res.Result = solveFinal(tr.Phi)
		res.Clones = tr.Clones
		return res
	}

	// Graph-level model probing: the residual over *raw* (unpreprocessed)
	// local conditions keeps the graph's equational shape, which concrete-
	// execution probing decides very effectively — value propagation on
	// the dependence graph, in the spirit of §2's quick-path propagation.
	// The raw residual is delayed-cloning sized, so this is cheap.
	var graphProbeTime time.Duration
	if !opts.DisableGraphProbe && !opts.Solver.NoProbe && rawProbeAffordable(sl) {
		rawOpts := opts
		rawOpts.DisableLocalPreprocess = true
		// The probe wants the bare equational shape; exported bound
		// conjuncts only slow the concrete execution down.
		rawOpts.Absint = nil
		rawSt := buildResidual(b, g, sl, rawOpts)
		t0 := time.Now()
		_, ok := solver.Probe(rawSt.phi, 32)
		graphProbeTime = time.Since(t0)
		if ok {
			res.Status = sat.Sat
			res.DecidedByProbe = true
			res.ProbeTime = graphProbeTime
			res.Phi = rawSt.phi
			res.Clones = len(rawSt.st.emitted)
			return res
		}
	}

	heapBefore := b.EstimatedBytes()
	tb := time.Now()
	r := buildResidual(b, g, sl, opts)
	res.BuildTime = time.Since(tb)
	res.LocalPreprocessTime = r.st.localPrep
	res.AbsintBounds = r.st.absintBounds
	res.AbsintDiffs = r.st.absintDiffs
	res.AbsintStrides = r.st.absintStrides
	res.Simplified = r.st.simplified
	res.PrunedGuards = r.st.prunedGuards
	res.Phi = r.phi
	if opts.MaxHeapDelta > 0 && b.EstimatedBytes()-heapBefore > opts.MaxHeapDelta {
		res.Status = sat.Unknown
		res.Exhausted = true
		res.Clones = len(r.st.emitted)
		res.QuickPaths = r.st.quickUses
		return res
	}
	res.Result = solveFinal(r.phi)
	res.ProbeTime += graphProbeTime
	res.Clones = len(r.st.emitted)
	res.QuickPaths = r.st.quickUses
	return res
}

// rawProbeAffordable bounds the raw-residual probe: without quick paths,
// emission instantiates one clone per calling context, which explodes on
// deep call chains — exactly the cloning problem Algorithm 6 avoids. The
// probe is only worth its cost when the context tree is small.
func rawProbeAffordable(sl *pdg.Slice) bool {
	fcs := cond.FuncContexts(cond.NewCtxTree(), sl)
	total := 0
	for _, cs := range fcs {
		total += len(cs)
		if total > 256 {
			return false
		}
	}
	return true
}

// residual is the outcome of summarization and emission.
type residual struct {
	st  *state
	phi *smt.Term
}

// buildResidual runs Algorithm 6's condition construction: per-function
// local conditions (preprocessed unless disabled), instance emission with
// delayed cloning, and the paths' assertions.
func buildResidual(b *smt.Builder, g *pdg.Graph, sl *pdg.Slice, opts Options) residual {
	st := &state{
		b: b, g: g, sl: sl, opts: opts,
		tr:          cond.NewTranslator(b, sl),
		summary:     map[*ssa.Function]*smt.Term{},
		closed:      map[*ssa.Function]*smt.Term{},
		emitted:     map[instKey]bool{},
		sliceVals:   map[*ssa.Function][]*ssa.Value{},
		forcedSites: map[int]bool{},
	}
	// Call sites on the paths' context chains force their callee instances
	// to be emitted even when a quick path covers the return value; their
	// actuals must then survive local preprocessing for the parameter
	// links.
	for _, p := range sl.Paths {
		for _, ctx := range cond.AssignContexts(st.tr.T, p) {
			for q := ctx; q != nil && q.Parent != nil; q = q.Parent {
				st.forcedSites[q.Site] = true
			}
		}
	}
	for v := range sl.Values {
		st.sliceVals[v.Fn] = append(st.sliceVals[v.Fn], v)
	}
	for _, vs := range st.sliceVals {
		sort.Slice(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID })
	}

	// Per-function local conditions, callee-first so quick paths cascade
	// upward (a collapsed callee lets its caller collapse too).
	for _, f := range st.topoFuncs() {
		st.summarize(f)
	}

	// Emit instances needed by the paths' guard assertions, pulling in
	// callee and caller instances on demand (delayed cloning). When absint
	// ran, its invariant bounds on path-step vertices become extra
	// conjuncts: the invariants hold exactly under the guard chains
	// asserted here, so they are implied facts that sharpen the residual
	// for the probe-free solve without changing satisfiability.
	var asserts []*smt.Term
	// exportBounds reports whether v's interval endpoints were (or already
	// had been) asserted at this instantiation: stride and diff exports
	// use the bounds as their no-wrap / non-negativity side condition and
	// must not fire when the endpoints were inexpressible at v's width.
	boundDone := map[boundKey]bool{}
	exportBounds := func(v *ssa.Value, ctx *cond.Ctx) bool {
		if opts.Absint == nil {
			return false
		}
		if done, seen := boundDone[boundKey{v, ctx}]; seen {
			return done
		}
		boundDone[boundKey{v, ctx}] = false
		lo, hi, ok := opts.Absint.Bounds(v)
		if !ok {
			return false
		}
		bits := pdg.TypeBits(v.Type)
		loC, hiC, ok := exportableBounds(lo, hi, bits)
		if !ok {
			return false
		}
		term := st.tr.Var(v, ctx)
		asserts = append(asserts,
			b.Sle(b.Const(loC, bits), term),
			b.Sle(term, b.Const(hiC, bits)))
		st.absintBounds++
		boundDone[boundKey{v, ctx}] = true
		return true
	}
	// Difference facts from the zone domain are exported alongside the
	// unary bounds: x − y ≤ c becomes x ≤s y + c, which is only faithful
	// to the integer fact when y + c cannot wrap — guaranteed by also
	// asserting y's interval bounds and checking [lo+c, hi+c] stays in
	// the signed range of x's own width (exportableDiff).
	// Congruence facts from the stride domain join the unary bounds:
	// v ≡ r (mod m) becomes URem(v, m) == r. The invariant is over the
	// MATHEMATICAL value while URem sees the unsigned machine view; the
	// two agree exactly when m divides 2^bits (a power of two below the
	// width bound), and otherwise only for non-negative v — so for
	// non-power-of-two moduli the export requires a proven non-negative
	// lower bound and asserts the interval bounds as the side condition.
	// All of it is judged at v's own width (exportableStride): a modulus
	// at or above 2^bits would be masked into a different constant.
	strideDone := map[boundKey]bool{}
	exportStride := func(v *ssa.Value, ctx *cond.Ctx) {
		if opts.Absint == nil || strideDone[boundKey{v, ctx}] {
			return
		}
		strideDone[boundKey{v, ctx}] = true
		m, r, ok := opts.Absint.StrideFact(v)
		if !ok {
			return
		}
		bits := pdg.TypeBits(v.Type)
		mC, rC, needNonneg, ok := exportableStride(m, r, bits)
		if !ok {
			return
		}
		if needNonneg {
			lo, _, okB := opts.Absint.Bounds(v)
			if !okB || lo < 0 || !exportBounds(v, ctx) {
				return
			}
		}
		asserts = append(asserts, b.Eq(
			b.URem(st.tr.Var(v, ctx), b.Const(mC, bits)),
			b.Const(rC, bits)))
		st.absintStrides++
	}
	diffDone := map[[2]boundKey]bool{}
	exportDiff := func(x, y *ssa.Value, ctx *cond.Ctx) {
		if opts.Absint == nil || x == y {
			return
		}
		k := [2]boundKey{{x, ctx}, {y, ctx}}
		if diffDone[k] {
			return
		}
		diffDone[k] = true
		c, ok := opts.Absint.DiffBound(x, y)
		if !ok {
			return
		}
		lo, hi, ok := opts.Absint.Bounds(y)
		if !ok {
			return
		}
		bits := pdg.TypeBits(x.Type)
		cC, ok := exportableDiff(c, lo, hi, bits)
		if !ok {
			return
		}
		if !exportBounds(y, ctx) {
			return // the no-wrap side condition needs y's range asserted
		}
		asserts = append(asserts, b.Sle(
			st.tr.Var(x, ctx),
			b.Add(st.tr.Var(y, ctx), b.Const(cC, bits))))
		st.absintDiffs++
	}
	for _, p := range sl.Paths {
		ctxs := cond.AssignContexts(st.tr.T, p)
		for i, step := range p {
			st.emit(step.V.Fn, ctxs[i])
			exportBounds(step.V, ctxs[i])
			exportStride(step.V, ctxs[i])
			if i > 0 && ctxs[i] == ctxs[i-1] {
				exportDiff(p[i-1].V, step.V, ctxs[i])
				exportDiff(step.V, p[i-1].V, ctxs[i])
			}
			for gd := step.V.Guard; gd != nil; gd = gd.Guard {
				asserts = append(asserts, st.tr.Var(gd, ctxs[i]))
			}
			if step.Kind == pdg.StepCall {
				if c := g.SiteCall[step.Site]; c != nil {
					st.emit(c.Fn, ctxs[i].Parent)
					for gd := c.Guard; gd != nil; gd = gd.Guard {
						asserts = append(asserts, st.tr.Var(gd, ctxs[i].Parent))
					}
				}
			}
		}
	}
	// Dynamic-bound sinks relate two call arguments; seed the residual
	// with their bounds and any proven difference between them.
	for _, vc := range sl.Constraints {
		if vc.Kind != pdg.ConstraintOutOfBoundsDyn ||
			vc.Path >= len(sl.Paths) || vc.Step >= len(sl.Paths[vc.Path]) {
			continue
		}
		p := sl.Paths[vc.Path]
		v := p[vc.Step].V
		if vc.Arg < 0 || vc.Arg >= len(v.Args) || vc.BoundArg < 0 || vc.BoundArg >= len(v.Args) {
			continue
		}
		ctxs := cond.AssignContexts(st.tr.T, p)
		idx, bnd := v.Args[vc.Arg], v.Args[vc.BoundArg]
		exportBounds(idx, ctxs[vc.Step])
		exportBounds(bnd, ctxs[vc.Step])
		exportStride(idx, ctxs[vc.Step])
		exportDiff(idx, bnd, ctxs[vc.Step])
		exportDiff(bnd, idx, ctxs[vc.Step])
	}
	asserts = append(asserts, st.tr.ValueConstraints()...)
	st.conjs = append(st.conjs, asserts...)
	return residual{st: st, phi: b.And(st.conjs...)}
}

// topoFuncs orders sliced functions callee-first along sliced call edges.
func (st *state) topoFuncs() []*ssa.Function {
	funcs := make([]*ssa.Function, 0, len(st.sliceVals))
	for f := range st.sliceVals {
		funcs = append(funcs, f)
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })
	var order []*ssa.Function
	seen := map[*ssa.Function]bool{}
	var visit func(f *ssa.Function)
	visit = func(f *ssa.Function) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, v := range st.sliceVals[f] {
			if v.Op == ssa.OpCall {
				if callee := st.g.Callee(v); st.sliceVals[callee] != nil {
					visit(callee)
				}
			}
		}
		order = append(order, f)
	}
	for _, f := range funcs {
		visit(f)
	}
	return order
}

// summarize computes and preprocesses the local condition of f
// (Algorithm 6, lines 3-5).
func (st *state) summarize(f *ssa.Function) {
	b, tr := st.b, st.tr
	root := tr.T.Root
	keep := map[string]bool{}
	var conjs []*smt.Term
	var linkedCalls []*ssa.Value // calls whose callee instances need the actuals

	for _, v := range st.sliceVals[f] {
		switch v.Op {
		case ssa.OpParam:
			keep[cond.VarName(v, root)] = true
		case ssa.OpBranch:
			keep[cond.VarName(v, root)] = true
			conjs = append(conjs, tr.Equation(v, root))
		case ssa.OpCall:
			callee := st.g.Callee(v)
			if callee.Ret == nil {
				continue
			}
			if cf := st.closed[callee]; cf != nil && !st.opts.DisableQuickPaths {
				// Quick path: bind the receiver to the callee's closed
				// return form with actuals substituted — no instance, no
				// parentheses left on this edge (Figure 9).
				st.quickUses++
				conjs = append(conjs, b.Eq(tr.Var(v, root), st.instantiateClosed(callee, cf, v, root)))
				if st.forcedSites[v.Site] {
					// A path still enters the callee here, so its
					// instance will be emitted with parameter links to
					// the actuals: keep them alive.
					linkedCalls = append(linkedCalls, v)
				}
				// The receiver can now be eliminated locally if nothing
				// external needs it.
				continue
			}
			// Interface to a callee instance: the receiver stays free
			// locally and is linked at emission time.
			keep[cond.VarName(v, root)] = true
			linkedCalls = append(linkedCalls, v)
		case ssa.OpExtern, ssa.OpConst:
			// Free or constant: nothing to emit.
		default:
			conjs = append(conjs, tr.Equation(v, root))
		}
	}
	if f.Ret != nil && st.sl.Values[f.Ret] {
		keep[cond.VarName(f.Ret, root)] = true
	}
	// Vertices pinned by value constraints are referenced from the final
	// assertions and must survive local preprocessing. A dynamic-bound
	// constraint references the sink call's index and bound arguments
	// rather than the step vertex itself.
	for _, vc := range st.sl.Constraints {
		if vc.Path < len(st.sl.Paths) && vc.Step < len(st.sl.Paths[vc.Path]) {
			v := st.sl.Paths[vc.Path][vc.Step].V
			if v.Fn != f {
				continue
			}
			if vc.Kind == pdg.ConstraintOutOfBoundsDyn {
				for _, ai := range [2]int{vc.Arg, vc.BoundArg} {
					if ai >= 0 && ai < len(v.Args) {
						if a := v.Args[ai]; st.sl.Values[a] && a.Op != ssa.OpConst {
							keep[cond.VarName(a, root)] = true
						}
					}
				}
				continue
			}
			keep[cond.VarName(v, root)] = true
		}
	}
	// Actuals referenced by callee instances' parameter links must
	// survive; quick-pathed calls have no instance, so their actuals are
	// free to be inlined away (which is what lets closures cascade up
	// deep call chains).
	for _, v := range linkedCalls {
		for _, a := range v.Args {
			if st.sl.Values[a] && a.Op != ssa.OpConst {
				keep[cond.VarName(a, root)] = true
			}
		}
	}
	// A path can enter a callee through a call edge without the call
	// vertex itself being in the slice (the receiver is never used); the
	// callee instance still links its parameters to this function's
	// actuals, and those must survive too.
	for _, sites := range st.sl.Entered {
		for site := range sites {
			c := st.g.SiteCall[site]
			if c == nil || c.Fn != f || st.sl.Values[c] {
				continue // sliced calls are handled by the quick-path logic
			}
			for _, a := range c.Args {
				if st.sl.Values[a] && a.Op != ssa.OpConst {
					keep[cond.VarName(a, root)] = true
				}
			}
		}
	}

	if st.opts.Absint != nil && !st.opts.DisableAbsintSimplify {
		conjs = st.presimplify(f, conjs)
	}
	local := b.And(conjs...)
	if !st.opts.DisableLocalPreprocess {
		t0 := time.Now()
		local = smt.Preprocess(b, local, smt.PassesWithKeep(keep))
		st.localPrep += time.Since(t0)
	}
	st.summary[f] = local
	st.closed[f] = st.closedRet(f, local)
}

// instantiateClosed rewrites a closed return form (over the callee's
// root-context parameter variables) in terms of the actuals at call vertex
// c under ctx.
func (st *state) instantiateClosed(callee *ssa.Function, cf *smt.Term, c *ssa.Value, ctx *cond.Ctx) *smt.Term {
	sub := map[*smt.Term]*smt.Term{}
	for i, p := range callee.Params {
		if i >= len(c.Args) {
			break
		}
		pv := st.b.Var(cond.VarName(p, st.tr.T.Root), pdg.TypeBits(p.Type))
		sub[pv] = st.tr.Term(c.Args[i], ctx)
	}
	return smt.Substitute(st.b, cf, sub)
}

// closedRet extracts f's return value as a pure function of its parameters
// from the preprocessed local condition, when the condition is a plain
// system of definitions (no residual assertions, which pruned ite edges
// introduce and which a quick path must not drop).
func (st *state) closedRet(f *ssa.Function, local *smt.Term) *smt.Term {
	if f.Ret == nil || !st.sl.Values[f.Ret] {
		return nil
	}
	retVar := st.b.Var(cond.VarName(f.Ret, st.tr.T.Root), pdg.TypeBits(f.Ret.Type))
	params := map[*smt.Term]bool{}
	for _, p := range f.Params {
		params[st.b.Var(cond.VarName(p, st.tr.T.Root), pdg.TypeBits(p.Type))] = true
	}
	var form *smt.Term
	for _, cj := range smt.Conjuncts(local) {
		if cj.IsTrue() {
			continue
		}
		if cj.Op != smt.OpEq {
			return nil // residual assertion: unsafe to shortcut
		}
		x, y := cj.Args[0], cj.Args[1]
		var def *smt.Term
		switch {
		case x == retVar:
			def = y
		case y == retVar:
			def = x
		}
		if def == nil {
			// A definition of some other interface variable; irrelevant
			// to the quick path as long as it is an equation.
			if x.Op != smt.OpVar && y.Op != smt.OpVar {
				return nil
			}
			continue
		}
		if form != nil {
			return nil // multiple constraints on the return value
		}
		form = def
	}
	if form == nil || smt.Size(form) > st.opts.inlineThreshold() {
		return nil
	}
	for _, v := range smt.Vars(form) {
		if !params[v] {
			return nil // depends on something beyond the parameters
		}
	}
	return form
}

// emit materializes the (f, ctx) instance: the preprocessed local
// condition renamed into the context, parameter links to the caller, and
// receiver links (or quick paths) to callees.
func (st *state) emit(f *ssa.Function, ctx *cond.Ctx) {
	key := instKey{f, ctx}
	if st.emitted[key] {
		return
	}
	st.emitted[key] = true
	b, tr := st.b, st.tr

	// The summary over root names, renamed into this context.
	local := st.summary[f]
	if ctx != tr.T.Root && local != nil && !local.IsTrue() {
		local = smt.RenameVars(b, local, func(name string) string {
			return renameIntoCtx(name, f.Name, ctx)
		})
	}
	if local != nil && !local.IsTrue() {
		st.conjs = append(st.conjs, local)
	}

	for _, v := range st.sliceVals[f] {
		switch v.Op {
		case ssa.OpParam:
			if ctx.Parent == nil {
				continue
			}
			c := st.g.SiteCall[ctx.Site]
			idx := pdg.ParamIndex(v)
			if c == nil || idx < 0 || idx >= len(c.Args) {
				continue
			}
			// The actual lives in the caller instance.
			st.emit(c.Fn, ctx.Parent)
			st.conjs = append(st.conjs, b.Eq(tr.Var(v, ctx), tr.Term(c.Args[idx], ctx.Parent)))
		case ssa.OpCall:
			callee := st.g.Callee(v)
			if callee.Ret == nil {
				continue
			}
			if st.closed[callee] != nil && !st.opts.DisableQuickPaths {
				continue // already bound through the quick path in the summary
			}
			child := tr.T.Child(ctx, v.Site)
			st.emit(callee, child)
			st.conjs = append(st.conjs, b.Eq(tr.Var(v, ctx), tr.Var(callee.Ret, child)))
		}
	}
}

// renameIntoCtx maps a root-context variable name of function fn into ctx.
// Only the function's own variables are renamed; fresh preprocessing
// variables (u!N) must be renamed too, since each clone makes independent
// choices.
func renameIntoCtx(name, fn string, ctx *cond.Ctx) string {
	return name + "@" + ctxSuffix(ctx)
}

func ctxSuffix(ctx *cond.Ctx) string {
	// Context IDs are unique within a tree; the numeric ID suffices and
	// matches cond.VarName's naming.
	return itoa(ctx.ID)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
