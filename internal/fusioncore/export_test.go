package fusioncore

import "testing"

// The export side conditions used to be hard-coded for 32-bit terms:
// bounds were clamped against math.MinInt32/MaxInt32 and stride moduli
// were guarded against 1<<32 but emitted at the term's own width, so an
// 8-bit variable with stride fact (m=300, r=44) was exported as
// URem(v, Const(300 mod 256)) — a different, unsound constraint — and a
// modulus of exactly 1<<8 became URem(v, 0). These tests pin the
// width-parametric rules; the rejected cases below all pass validation
// under the old 32-bit-only logic.

func TestExportableBounds(t *testing.T) {
	cases := []struct {
		name   string
		lo, hi int64
		bits   int
		ok     bool
		wantLo uint32
		wantHi uint32
	}{
		{"full-i32", -5, 1 << 20, 32, true, uint32(0xFFFFFFFB), 1 << 20},
		{"i32-max", -(1 << 31), 1<<31 - 1, 32, true, 1 << 31, 1<<31 - 1},
		{"i8-in-range", -100, 100, 8, true, 0x9C, 100},
		{"i8-neg-out", -200, 10, 8, false, 0, 0}, // old logic accepted: within int32
		{"i8-pos-out", 0, 200, 8, false, 0, 0},   // 200 > MaxInt8 but < MaxInt32
		{"i16-in-range", -30000, 30000, 16, true, 0x8AD0, 30000},
		{"i16-out", -40000, 0, 16, false, 0, 0},
		{"i1", 0, 1, 1, true, 0, 1},
		{"i1-out", -1, 1, 1, false, 0, 0},
		{"inverted", 5, 4, 32, false, 0, 0},
		{"bad-width", 0, 1, 0, false, 0, 0},
	}
	for _, c := range cases {
		lo, hi, ok := exportableBounds(c.lo, c.hi, c.bits)
		if ok != c.ok {
			t.Errorf("%s: exportableBounds(%d, %d, %d) ok = %v, want %v",
				c.name, c.lo, c.hi, c.bits, ok, c.ok)
			continue
		}
		if ok && (lo != c.wantLo || hi != c.wantHi) {
			t.Errorf("%s: exportableBounds(%d, %d, %d) = (%#x, %#x), want (%#x, %#x)",
				c.name, c.lo, c.hi, c.bits, lo, hi, c.wantLo, c.wantHi)
		}
	}
}

func TestExportableStride(t *testing.T) {
	cases := []struct {
		name       string
		m, r       int64
		bits       int
		ok         bool
		needNonneg bool
	}{
		{"pow2-i32", 8, 3, 32, true, false},
		{"non-pow2-i32", 6, 1, 32, true, true},
		{"huge-i32", 1 << 31, 7, 32, true, false},
		// Regressions: legal at 32 bits, unrepresentable at 8.
		{"i8-m300", 300, 44, 8, false, false}, // old: emitted URem(v, 300 mod 256 = 44)
		{"i8-m256", 256, 0, 8, false, false},  // old: emitted URem(v, 0)
		{"i8-m65536", 1 << 16, 0, 8, false, false},
		{"i8-pow2-ok", 8, 5, 8, true, false},
		{"i8-non-pow2-ok", 6, 2, 8, true, true},
		{"i8-m255", 255, 10, 8, true, true},
		{"i16-m65536", 1 << 16, 0, 16, false, false},
		{"i16-m4096", 4096, 17, 16, true, false},
		{"trivial-m1", 1, 0, 32, false, false},
		{"neg-rem", 4, -1, 32, false, false},
		{"rem-ge-m", 4, 4, 32, false, false},
	}
	for _, c := range cases {
		m, r, nn, ok := exportableStride(c.m, c.r, c.bits)
		if ok != c.ok {
			t.Errorf("%s: exportableStride(%d, %d, %d) ok = %v, want %v",
				c.name, c.m, c.r, c.bits, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if nn != c.needNonneg {
			t.Errorf("%s: needNonneg = %v, want %v", c.name, nn, c.needNonneg)
		}
		if int64(m) != c.m || int64(r) != c.r {
			t.Errorf("%s: exported (m, r) = (%d, %d), want (%d, %d)", c.name, m, r, c.m, c.r)
		}
	}
}

func TestExportableDiff(t *testing.T) {
	cases := []struct {
		name      string
		c, lo, hi int64
		bits      int
		ok        bool
	}{
		{"plain-i32", 5, 0, 100, 32, true},
		{"neg-c-i32", -7, 0, 100, 32, true},
		{"i32-sum-overflow", 5, 0, 1<<31 - 1, 32, false},
		// Regressions: constants and shifted ranges that fit int32 but
		// not the term's own width.
		{"i8-c-out", 200, 0, 10, 8, false},
		{"i8-sum-out", 100, 0, 100, 8, false}, // hi+c = 200 > MaxInt8
		{"i8-ok", 20, -10, 50, 8, true},
		{"i8-neg-sum-out", -100, -50, 0, 8, false}, // lo+c = -150 < MinInt8
		{"i16-ok", 1000, -2000, 2000, 16, true},
		{"i16-out", 40000, 0, 0, 16, false},
	}
	for _, tc := range cases {
		cc, ok := exportableDiff(tc.c, tc.lo, tc.hi, tc.bits)
		if ok != tc.ok {
			t.Errorf("%s: exportableDiff(%d, [%d,%d], %d) ok = %v, want %v",
				tc.name, tc.c, tc.lo, tc.hi, tc.bits, ok, tc.ok)
			continue
		}
		if ok && int64(int32(cc<<(32-tc.bits))>>(32-tc.bits)) != tc.c {
			t.Errorf("%s: exported constant %#x does not sign-extend back to %d at %d bits",
				tc.name, cc, tc.c, tc.bits)
		}
	}
}

func TestSignedRangeHelpers(t *testing.T) {
	if minSigned(8) != -128 || maxSigned(8) != 127 {
		t.Errorf("i8 range = [%d, %d], want [-128, 127]", minSigned(8), maxSigned(8))
	}
	if minSigned(32) != -(1<<31) || maxSigned(32) != 1<<31-1 {
		t.Errorf("i32 range = [%d, %d]", minSigned(32), maxSigned(32))
	}
	if minSigned(1) != 0 || maxSigned(1) != 1 {
		t.Errorf("i1 range = [%d, %d], want [0, 1]", minSigned(1), maxSigned(1))
	}
	if maskWidth(8) != 0xFF || maskWidth(32) != 0xFFFFFFFF {
		t.Errorf("maskWidth: %#x, %#x", maskWidth(8), maskWidth(32))
	}
}
