package lang

import "fmt"

// Type is the type of a value in the language. Integers and pointers are
// modeled as 32-bit bit-vectors by the backend, booleans as 1-bit, and the
// narrow integer types i8/i16 as 8- and 16-bit vectors with two's-complement
// wraparound at their own width.
type Type int

// Language types.
const (
	TypeInvalid Type = iota
	TypeVoid
	TypeInt
	TypeBool
	TypePtr
	TypeI8
	TypeI16
)

func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypePtr:
		return "ptr"
	case TypeI8:
		return "i8"
	case TypeI16:
		return "i16"
	default:
		return "invalid"
	}
}

// IsInteger reports whether t is an integer type of any width.
func (t Type) IsInteger() bool { return t == TypeInt || t == TypeI8 || t == TypeI16 }

// Bits returns the bit-vector width modeling a value of type t.
func (t Type) Bits() int {
	switch t {
	case TypeBool:
		return 1
	case TypeI8:
		return 8
	case TypeI16:
		return 16
	default:
		return 32
	}
}

// Program is a parsed compilation unit.
type Program struct {
	Funcs []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Param is a formal function parameter.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// FuncDecl is a function declaration. Extern functions (the paper's
// "f(v1, v2, ...) = ∅") have a nil Body.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Type
	Body   *BlockStmt // nil for extern functions
	Extern bool
	Pos    Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDecl declares and initializes a local variable.
type VarDecl struct {
	Name string
	Type Type
	Init Expr
	Pos  Pos
}

// AssignStmt assigns to an existing variable.
type AssignStmt struct {
	Name string
	Val  Expr
	Pos  Pos
}

// IfStmt is a structured conditional.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // may be nil
	Pos  Pos
}

// WhileStmt is a loop; loops are unrolled a fixed number of times before
// analysis, following the paper's bounded-model-checking assumption.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ReturnStmt returns from the enclosing function, with an optional value.
type ReturnStmt struct {
	Val Expr // nil for bare return
	Pos Pos
}

// ExprStmt evaluates an expression (a call) for its effect.
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*BlockStmt) stmtNode()  {}
func (*VarDecl) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*IfStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

func (s *BlockStmt) StmtPos() Pos  { return s.Pos }
func (s *VarDecl) StmtPos() Pos    { return s.Pos }
func (s *AssignStmt) StmtPos() Pos { return s.Pos }
func (s *IfStmt) StmtPos() Pos     { return s.Pos }
func (s *WhileStmt) StmtPos() Pos  { return s.Pos }
func (s *ReturnStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos   { return s.Pos }

// IntLitExpr is an integer literal. T is the type the literal was adopted
// at by the checker: integer literals default to int, but a literal that
// fits a narrow type's signed range adopts that type when it initializes,
// is assigned or compared to, or is combined with a narrow-typed operand.
type IntLitExpr struct {
	Value uint32
	T     Type // TypeInvalid until sema runs; then TypeInt or a narrow type
	Pos   Pos
}

// LitType returns the adopted type of the literal, defaulting to int for
// ASTs that have not been through the checker.
func (e *IntLitExpr) LitType() Type {
	if e.T == TypeInvalid {
		return TypeInt
	}
	return e.T
}

// BoolLitExpr is true or false.
type BoolLitExpr struct {
	Value bool
	Pos   Pos
}

// NullLitExpr is the null pointer literal.
type NullLitExpr struct {
	Pos Pos
}

// IdentExpr references a variable.
type IdentExpr struct {
	Name string
	Pos  Pos
}

// UnaryOp is a unary operator.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota // -x
	OpNot                // !x
)

func (op UnaryOp) String() string {
	if op == OpNeg {
		return "-"
	}
	return "!"
}

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Op  UnaryOp
	X   Expr
	Pos Pos
}

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // logical &&
	OpOr  // logical ||
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpRem: "%",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||", OpBitAnd: "&", OpBitOr: "|", OpBitXor: "^",
	OpShl: "<<", OpShr: ">>",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// IsComparison reports whether the operator yields a boolean from two
// integer operands.
func (op BinOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsLogical reports whether the operator combines booleans.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Pos  Pos
}

// CallExpr invokes a function.
type CallExpr struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*IntLitExpr) exprNode()  {}
func (*BoolLitExpr) exprNode() {}
func (*NullLitExpr) exprNode() {}
func (*IdentExpr) exprNode()   {}
func (*UnaryExpr) exprNode()   {}
func (*BinExpr) exprNode()     {}
func (*CallExpr) exprNode()    {}

func (e *IntLitExpr) ExprPos() Pos  { return e.Pos }
func (e *BoolLitExpr) ExprPos() Pos { return e.Pos }
func (e *NullLitExpr) ExprPos() Pos { return e.Pos }
func (e *IdentExpr) ExprPos() Pos   { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos   { return e.Pos }
func (e *BinExpr) ExprPos() Pos     { return e.Pos }
func (e *CallExpr) ExprPos() Pos    { return e.Pos }
