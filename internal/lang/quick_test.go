package lang_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fusion/internal/interp"
	"fusion/internal/lang"
	"fusion/internal/sema"
)

// randomProgram builds a random but well-typed program: a few pure
// functions over int parameters with nested branches and bounded loops.
func randomProgram(rng *rand.Rand) *lang.Program {
	nFuncs := 1 + rng.Intn(3)
	prog := &lang.Program{}
	names := []string{"f0", "f1", "f2"}
	for fi := 0; fi < nFuncs; fi++ {
		nParams := 1 + rng.Intn(3)
		f := &lang.FuncDecl{Name: names[fi], Ret: lang.TypeInt}
		var vars []string
		for p := 0; p < nParams; p++ {
			name := string(rune('a' + p))
			f.Params = append(f.Params, lang.Param{Name: name, Type: lang.TypeInt})
			vars = append(vars, name)
		}
		fresh := 0
		var intExpr func(depth int) lang.Expr
		intExpr = func(depth int) lang.Expr {
			if depth == 0 || rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					return &lang.IdentExpr{Name: vars[rng.Intn(len(vars))]}
				}
				return &lang.IntLitExpr{Value: rng.Uint32() % 1000}
			}
			ops := []lang.BinOp{lang.OpAdd, lang.OpSub, lang.OpMul, lang.OpBitXor, lang.OpBitAnd, lang.OpShl}
			// Calls to earlier functions keep the call graph acyclic.
			if fi > 0 && rng.Intn(5) == 0 {
				callee := rng.Intn(fi)
				nArgs := 1 + (callee+rng.Intn(3))%3
				_ = nArgs
				// Match the callee's arity exactly.
				var args []lang.Expr
				for range prog.Funcs[callee].Params {
					args = append(args, intExpr(depth-1))
				}
				return &lang.CallExpr{Name: prog.Funcs[callee].Name, Args: args}
			}
			return &lang.BinExpr{
				Op: ops[rng.Intn(len(ops))],
				L:  intExpr(depth - 1),
				R:  intExpr(depth - 1),
			}
		}
		boolExpr := func(depth int) lang.Expr {
			cmps := []lang.BinOp{lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe}
			return &lang.BinExpr{
				Op: cmps[rng.Intn(len(cmps))],
				L:  intExpr(depth),
				R:  intExpr(depth),
			}
		}
		var stmts func(depth, count int) []lang.Stmt
		stmts = func(depth, count int) []lang.Stmt {
			var out []lang.Stmt
			for i := 0; i < count; i++ {
				switch {
				case depth > 0 && rng.Intn(4) == 0:
					// Names declared inside a branch go out of scope at its
					// end; restore the visible set so later statements do
					// not reference them.
					save := len(vars)
					thenB := &lang.BlockStmt{Stmts: stmts(depth-1, 1+rng.Intn(2))}
					vars = vars[:save]
					ifs := &lang.IfStmt{Cond: boolExpr(1), Then: thenB}
					if rng.Intn(2) == 0 {
						ifs.Else = &lang.BlockStmt{Stmts: stmts(depth-1, 1+rng.Intn(2))}
						vars = vars[:save]
					}
					out = append(out, ifs)
				case rng.Intn(3) == 0:
					out = append(out, &lang.AssignStmt{
						Name: vars[rng.Intn(len(vars))],
						Val:  intExpr(2),
					})
				default:
					name := "t" + string(rune('0'+fresh%10)) + string(rune('a'+fresh/10))
					fresh++
					out = append(out, &lang.VarDecl{Name: name, Type: lang.TypeInt, Init: intExpr(2)})
					vars = append(vars, name)
				}
			}
			return out
		}
		body := stmts(2, 2+rng.Intn(4))
		body = append(body, &lang.ReturnStmt{Val: intExpr(2)})
		f.Body = &lang.BlockStmt{Stmts: body}
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog
}

// TestQuickFormatParseRoundTrip: for random well-typed programs, Format
// output reparses and type-checks, reformats identically (fixpoint), and
// the reparsed program computes the same results as the original.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng)
		if errs := sema.Check(prog); len(errs) > 0 {
			t.Logf("seed %d: generated program fails sema: %v", seed, errs[0])
			return false
		}
		text := lang.Format(prog)
		prog2, err := lang.Parse(text)
		if err != nil {
			t.Logf("seed %d: reparse failed: %v\n%s", seed, err, text)
			return false
		}
		if errs := sema.Check(prog2); len(errs) > 0 {
			t.Logf("seed %d: reparsed program fails sema: %v", seed, errs[0])
			return false
		}
		if text2 := lang.Format(prog2); text2 != text {
			t.Logf("seed %d: format not a fixpoint", seed)
			return false
		}
		// Semantic equality on a few random inputs.
		last := prog.Funcs[len(prog.Funcs)-1]
		for trial := 0; trial < 4; trial++ {
			args := make([]interp.Value, len(last.Params))
			for i := range args {
				args[i] = interp.Value{V: rng.Uint32() % 128}
			}
			r1, err1 := interp.New(prog, interp.Options{}).Run(last.Name, args)
			r2, err2 := interp.New(prog2, interp.Options{}).Run(last.Name, args)
			if (err1 == nil) != (err2 == nil) {
				t.Logf("seed %d: interp error mismatch: %v vs %v", seed, err1, err2)
				return false
			}
			if err1 == nil && r1.Return.V != r2.Return.V {
				t.Logf("seed %d: semantic mismatch: %d vs %d", seed, r1.Return.V, r2.Return.V)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
