package lang

import (
	"fmt"
	"strings"
)

// Format renders a program back to source text. The output reparses to an
// equivalent AST, which the tests rely on as a round-trip property.
func Format(p *Program) string {
	var b strings.Builder
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteByte('\n')
		}
		formatFunc(&b, f)
	}
	return b.String()
}

func formatFunc(b *strings.Builder, f *FuncDecl) {
	if f.Extern {
		b.WriteString("extern ")
	}
	fmt.Fprintf(b, "fun %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: %s", p.Name, p.Type)
	}
	b.WriteString(")")
	if f.Ret != TypeVoid {
		fmt.Fprintf(b, ": %s", f.Ret)
	}
	if f.Extern {
		b.WriteString(";\n")
		return
	}
	b.WriteString(" ")
	formatBlock(b, f.Body, 0)
	b.WriteByte('\n')
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("    ")
	}
}

func formatBlock(b *strings.Builder, blk *BlockStmt, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch s := s.(type) {
	case *BlockStmt:
		formatBlock(b, s, depth)
		b.WriteByte('\n')
	case *VarDecl:
		fmt.Fprintf(b, "var %s: %s = %s;\n", s.Name, s.Type, FormatExpr(s.Init))
	case *AssignStmt:
		fmt.Fprintf(b, "%s = %s;\n", s.Name, FormatExpr(s.Val))
	case *IfStmt:
		fmt.Fprintf(b, "if (%s) ", FormatExpr(s.Cond))
		formatBlock(b, s.Then, depth)
		if s.Else != nil {
			b.WriteString(" else ")
			formatBlock(b, s.Else, depth)
		}
		b.WriteByte('\n')
	case *WhileStmt:
		fmt.Fprintf(b, "while (%s) ", FormatExpr(s.Cond))
		formatBlock(b, s.Body, depth)
		b.WriteByte('\n')
	case *ReturnStmt:
		if s.Val == nil {
			b.WriteString("return;\n")
		} else {
			fmt.Fprintf(b, "return %s;\n", FormatExpr(s.Val))
		}
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", FormatExpr(s.X))
	default:
		panic(fmt.Sprintf("unknown statement %T", s))
	}
}

// FormatExpr renders an expression with explicit parentheses around every
// binary operation, so precedence is preserved on reparse.
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *IntLitExpr:
		return fmt.Sprintf("%d", e.Value)
	case *BoolLitExpr:
		if e.Value {
			return "true"
		}
		return "false"
	case *NullLitExpr:
		return "null"
	case *IdentExpr:
		return e.Name
	case *UnaryExpr:
		return fmt.Sprintf("%s(%s)", e.Op, FormatExpr(e.X))
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(e.L), e.Op, FormatExpr(e.R))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	default:
		panic(fmt.Sprintf("unknown expression %T", e))
	}
}
