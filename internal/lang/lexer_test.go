package lang

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks, err := Tokenize("fun f(a: int): int { return a + 1; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KwFun, Ident, LParen, Ident, Colon, KwInt, RParen, Colon, KwInt,
		LBrace, KwReturn, Ident, Plus, IntLit, Semi, RBrace,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "== != <= >= << >> && || = < > ! & | ^ + - * / %"
	want := []Kind{
		Eq, Neq, Le, Ge, Shl, Shr, AndAnd, OrOr, Assign, Lt, Gt, Not,
		Amp, Pipe, Caret, Plus, Minus, Star, Slash, Percent,
	}
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := "a // line comment\n b /* block\n comment */ c"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3: %v", len(toks), toks)
	}
	for i, name := range []string{"a", "b", "c"} {
		if toks[i].Text != name {
			t.Errorf("token %d: got %q, want %q", i, toks[i].Text, name)
		}
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("token c line: got %d, want 3", toks[2].Pos.Line)
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("ab at %s, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("cd at %s, want 2:3", toks[1].Pos)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{"@", "123abc", "/* unterminated", "99999999999999999999"}
	for _, src := range cases {
		if _, err := Tokenize(src); src != "99999999999999999999" && err == nil {
			t.Errorf("Tokenize(%q): expected error", src)
		}
	}
	// Out-of-range literal is caught by the parser, not the lexer.
	if _, err := Parse("fun f(): int { return 99999999999999999999; }"); err == nil {
		t.Error("expected out-of-range literal to fail parsing")
	}
}

func TestKeywordRecognition(t *testing.T) {
	toks, err := Tokenize("fun extern var if else while return true false null int bool ptr funx")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KwFun, KwExtern, KwVar, KwIf, KwElse, KwWhile, KwReturn, KwTrue,
		KwFalse, KwNull, KwInt, KwBool, KwPtr, Ident,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}
