package lang

import (
	"strings"
	"testing"
)

const sampleSrc = `
extern fun gets(): ptr;

fun bar(x: int): int {
    var y: int = x * 2;
    var z: int = y;
    return z;
}

fun foo(a: int, b: int): ptr {
    var p: ptr = null;
    var c: int = bar(a);
    var d: int = bar(b);
    if (c < d) {
        return p;
    }
    return gets();
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 3 {
		t.Fatalf("got %d functions, want 3", len(prog.Funcs))
	}
	g := prog.Func("gets")
	if g == nil || !g.Extern || g.Ret != TypePtr || g.Body != nil {
		t.Errorf("gets: wrong extern declaration: %+v", g)
	}
	bar := prog.Func("bar")
	if bar == nil || len(bar.Params) != 1 || bar.Params[0].Type != TypeInt {
		t.Fatalf("bar: wrong signature")
	}
	if len(bar.Body.Stmts) != 3 {
		t.Errorf("bar body: got %d statements, want 3", len(bar.Body.Stmts))
	}
	foo := prog.Func("foo")
	if foo == nil || len(foo.Params) != 2 || foo.Ret != TypePtr {
		t.Fatalf("foo: wrong signature")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse("fun f(a: int, b: int, c: int): int { return a + b * c; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	bin, ok := ret.Val.(*BinExpr)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("top-level operator: got %v, want +", ret.Val)
	}
	r, ok := bin.R.(*BinExpr)
	if !ok || r.Op != OpMul {
		t.Fatalf("right operand: got %v, want *", bin.R)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	prog := MustParse("fun f(a: bool, b: bool, c: bool): bool { return a || b && c; }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	bin := ret.Val.(*BinExpr)
	if bin.Op != OpOr {
		t.Fatalf("top-level operator: got %s, want ||", bin.Op)
	}
	if r := bin.R.(*BinExpr); r.Op != OpAnd {
		t.Fatalf("right operand: got %s, want &&", r.Op)
	}
}

func TestParseUnary(t *testing.T) {
	prog := MustParse("fun f(a: int): bool { return !(a < 0 - a); }")
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	u, ok := ret.Val.(*UnaryExpr)
	if !ok || u.Op != OpNot {
		t.Fatalf("got %v, want unary !", ret.Val)
	}
}

func TestParseElseIfChain(t *testing.T) {
	prog := MustParse(`
fun f(a: int): int {
    var r: int = 0;
    if (a < 0) { r = 1; } else if (a < 10) { r = 2; } else { r = 3; }
    return r;
}`)
	ifs := prog.Funcs[0].Body.Stmts[1].(*IfStmt)
	if ifs.Else == nil || len(ifs.Else.Stmts) != 1 {
		t.Fatal("else branch missing or malformed")
	}
	inner, ok := ifs.Else.Stmts[0].(*IfStmt)
	if !ok || inner.Else == nil {
		t.Fatal("else-if chain not nested correctly")
	}
}

func TestParseWhileAndCallStmt(t *testing.T) {
	prog := MustParse(`
extern fun sink(x: int);
fun f(n: int) {
    var i: int = 0;
    while (i < n) {
        sink(i);
        i = i + 1;
    }
}`)
	f := prog.Func("f")
	w, ok := f.Body.Stmts[1].(*WhileStmt)
	if !ok {
		t.Fatalf("expected while, got %T", f.Body.Stmts[1])
	}
	if _, ok := w.Body.Stmts[0].(*ExprStmt); !ok {
		t.Errorf("expected call statement, got %T", w.Body.Stmts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing semi", "fun f() { var x: int = 1 }"},
		{"missing type", "fun f(a) {}"},
		{"bad stmt start", "fun f() { + ; }"},
		{"expr stmt not call", "fun f(a: int) { a + 1; }"},
		{"unclosed block", "fun f() { "},
		{"extern with body", "extern fun f() { }"},
		{"missing paren", "fun f( { }"},
		{"bad call args", "fun f() { g(1,; }"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error for %q", c.name, c.src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog := MustParse(sampleSrc)
	text := Format(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	text2 := Format(prog2)
	if text != text2 {
		t.Errorf("format not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestFormatExprParens(t *testing.T) {
	prog := MustParse("fun f(a: int, b: int): int { return (a + b) * a; }")
	s := FormatExpr(prog.Funcs[0].Body.Stmts[0].(*ReturnStmt).Val)
	if !strings.Contains(s, "((a + b) * a)") {
		t.Errorf("got %q, want explicit parens preserving grouping", s)
	}
}

func TestProgramFuncLookup(t *testing.T) {
	prog := MustParse(sampleSrc)
	if prog.Func("nonexistent") != nil {
		t.Error("lookup of missing function should return nil")
	}
	if f := prog.Func("bar"); f == nil || f.Name != "bar" {
		t.Error("lookup of bar failed")
	}
}

func TestParseNestingDepthLimit(t *testing.T) {
	// Each case would previously recurse once per nesting level; past the
	// limit the parser must return a diagnostic, not blow the stack.
	deepExpr := "fun f(): int { return " + strings.Repeat("(", 100_000) + "1" +
		strings.Repeat(")", 100_000) + "; }"
	deepUnary := "fun f(): int { return " + strings.Repeat("-", 100_000) + "1; }"
	deepBlock := "fun f() { " + strings.Repeat("{ ", 100_000) +
		strings.Repeat("} ", 100_000) + "}"
	for name, src := range map[string]string{
		"expr": deepExpr, "unary": deepUnary, "block": deepBlock,
	} {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "nesting deeper than") {
			t.Errorf("%s: want a nesting-depth diagnostic, got %v", name, err)
		}
	}

	// Reasonable nesting still parses.
	ok := "fun f(): int { return " + strings.Repeat("(", 100) + "1" +
		strings.Repeat(")", 100) + "; }"
	if _, err := Parse(ok); err != nil {
		t.Errorf("moderate nesting must parse: %v", err)
	}
}
