package lang

import "fmt"

// Lexer converts source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%s: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token, or an error on invalid input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: p}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: p}, nil
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.off < len(l.src) && isLetter(l.peek()) {
			return Token{}, fmt.Errorf("%s: malformed integer literal", p)
		}
		return Token{Kind: IntLit, Text: l.src[start:l.off], Pos: p}, nil
	}
	two := func(k Kind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Pos: p}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Pos: p}, nil
	}
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case ',':
		return one(Comma)
	case ';':
		return one(Semi)
	case ':':
		return one(Colon)
	case '+':
		return one(Plus)
	case '-':
		return one(Minus)
	case '*':
		return one(Star)
	case '/':
		return one(Slash)
	case '%':
		return one(Percent)
	case '^':
		return one(Caret)
	case '=':
		if l.peek2() == '=' {
			return two(Eq)
		}
		return one(Assign)
	case '!':
		if l.peek2() == '=' {
			return two(Neq)
		}
		return one(Not)
	case '<':
		switch l.peek2() {
		case '=':
			return two(Le)
		case '<':
			return two(Shl)
		}
		return one(Lt)
	case '>':
		switch l.peek2() {
		case '=':
			return two(Ge)
		case '>':
			return two(Shr)
		}
		return one(Gt)
	case '&':
		if l.peek2() == '&' {
			return two(AndAnd)
		}
		return one(Amp)
	case '|':
		if l.peek2() == '|' {
			return two(OrOr)
		}
		return one(Pipe)
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", p, c)
}

// Tokenize lexes the whole input, returning every token up to and
// excluding EOF.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
