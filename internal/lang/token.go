// Package lang implements the small imperative language of the paper
// (Figure 4), extended with the practical constructs the evaluation needs:
// integer, boolean and pointer types, structured control flow, loops (which
// are later unrolled), function calls, and extern functions without bodies
// that model third-party library routines.
package lang

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	IntLit
	// Keywords.
	KwFun
	KwExtern
	KwVar
	KwIf
	KwElse
	KwWhile
	KwReturn
	KwTrue
	KwFalse
	KwNull
	KwInt
	KwI8
	KwI16
	KwBool
	KwPtr
	// Punctuation.
	LParen
	RParen
	LBrace
	RBrace
	Comma
	Semi
	Colon
	// Operators.
	Assign // =
	Plus   // +
	Minus  // -
	Star   // *
	Slash  // /
	Percent
	Eq  // ==
	Neq // !=
	Lt  // <
	Le  // <=
	Gt  // >
	Ge  // >=
	AndAnd
	OrOr
	Not
	Amp   // &
	Pipe  // |
	Caret // ^
	Shl   // <<
	Shr   // >>
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	KwFun: "fun", KwExtern: "extern", KwVar: "var", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwReturn: "return", KwTrue: "true", KwFalse: "false",
	KwNull: "null", KwInt: "int", KwI8: "i8", KwI16: "i16",
	KwBool: "bool", KwPtr: "ptr",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", Comma: ",", Semi: ";",
	Colon: ":", Assign: "=", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Eq: "==", Neq: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!", Amp: "&", Pipe: "|", Caret: "^",
	Shl: "<<", Shr: ">>",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"fun": KwFun, "extern": KwExtern, "var": KwVar, "if": KwIf, "else": KwElse,
	"while": KwWhile, "return": KwReturn, "true": KwTrue, "false": KwFalse,
	"null": KwNull, "int": KwInt, "i8": KwI8, "i16": KwI16,
	"bool": KwBool, "ptr": KwPtr,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // literal text for Ident and IntLit
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit:
		return t.Text
	default:
		return t.Kind.String()
	}
}
