package lang

import (
	"fmt"
	"strconv"
)

// Parser builds an AST from a token stream.
type Parser struct {
	toks  []Token
	pos   int
	depth int
}

// maxNestingDepth bounds statement and expression nesting. The parser is
// recursive-descent, so an adversarial input like ((((…)))) or a tower of
// nested blocks would otherwise exhaust the goroutine stack and crash the
// process; past the limit it fails with an ordinary diagnostic instead.
const maxNestingDepth = 512

func (p *Parser) enter(pos Pos) error {
	p.depth++
	if p.depth > maxNestingDepth {
		return fmt.Errorf("%s: nesting deeper than %d levels", pos, maxNestingDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse parses a full program from source text.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for !p.atEnd() {
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, f)
	}
	return prog, nil
}

// MustParse parses src and panics on error. It is intended for tests and
// examples with literal sources.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEnd() {
		last := Pos{Line: 1, Col: 1}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: EOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, fmt.Errorf("%s: expected %s, found %s", t.Pos, k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) parseType() (Type, error) {
	t := p.next()
	switch t.Kind {
	case KwInt:
		return TypeInt, nil
	case KwI8:
		return TypeI8, nil
	case KwI16:
		return TypeI16, nil
	case KwBool:
		return TypeBool, nil
	case KwPtr:
		return TypePtr, nil
	default:
		return TypeInvalid, fmt.Errorf("%s: expected a type, found %s", t.Pos, t)
	}
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	extern := p.accept(KwExtern)
	kw, err := p.expect(KwFun)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Extern: extern, Ret: TypeVoid, Pos: kw.Pos}
	for !p.at(RParen) {
		if len(f.Params) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.Params = append(f.Params, Param{Name: pn.Text, Type: pt, Pos: pn.Pos})
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if p.accept(Colon) {
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f.Ret = rt
	}
	if extern {
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return f, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, fmt.Errorf("%s: unexpected end of input in block", p.cur().Pos)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	if err := p.enter(t.Pos); err != nil {
		return nil, err
	}
	defer p.leave()
	switch t.Kind {
	case KwVar:
		p.next()
		name, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &VarDecl{Name: name.Text, Type: ty, Init: init, Pos: t.Pos}, nil
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els *BlockStmt
		if p.accept(KwElse) {
			if p.at(KwIf) {
				// else-if chains: wrap the nested if in a block.
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				els = &BlockStmt{Stmts: []Stmt{inner}, Pos: inner.StmtPos()}
			} else {
				els, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Pos: t.Pos}, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
	case KwReturn:
		p.next()
		if p.accept(Semi) {
			return &ReturnStmt{Pos: t.Pos}, nil
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Val: val, Pos: t.Pos}, nil
	case LBrace:
		return p.parseBlock()
	case Ident:
		// Either an assignment or a call statement.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == Assign {
			name := p.next()
			p.next() // =
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			return &AssignStmt{Name: name.Text, Val: val, Pos: t.Pos}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, ok := x.(*CallExpr); !ok {
			return nil, fmt.Errorf("%s: expression statement must be a call", t.Pos)
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x, Pos: t.Pos}, nil
	default:
		return nil, fmt.Errorf("%s: unexpected token %s at start of statement", t.Pos, t)
	}
}

// Binary operator precedence, loosest first.
var binPrec = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	Eq:     6, Neq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

var binOpOfKind = map[Kind]BinOp{
	OrOr: OpOr, AndAnd: OpAnd, Pipe: OpBitOr, Caret: OpBitXor, Amp: OpBitAnd,
	Eq: OpEq, Neq: OpNe, Lt: OpLt, Le: OpLe, Gt: OpGt, Ge: OpGe,
	Shl: OpShl, Shr: OpShr, Plus: OpAdd, Minus: OpSub, Star: OpMul,
	Slash: OpDiv, Percent: OpRem,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBin(1) }

func (p *Parser) parseBin(minPrec int) (Expr, error) {
	if err := p.enter(p.cur().Pos); err != nil {
		return nil, err
	}
	defer p.leave()
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: binOpOfKind[op.Kind], L: lhs, R: rhs, Pos: op.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if err := p.enter(t.Pos); err != nil {
		return nil, err
	}
	defer p.leave()
	switch t.Kind {
	case Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, X: x, Pos: t.Pos}, nil
	case Not:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, X: x, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case IntLit:
		v, err := strconv.ParseUint(t.Text, 10, 64)
		if err != nil || v > 0xFFFFFFFF {
			return nil, fmt.Errorf("%s: integer literal %s out of 32-bit range", t.Pos, t.Text)
		}
		return &IntLitExpr{Value: uint32(v), Pos: t.Pos}, nil
	case KwTrue:
		return &BoolLitExpr{Value: true, Pos: t.Pos}, nil
	case KwFalse:
		return &BoolLitExpr{Value: false, Pos: t.Pos}, nil
	case KwNull:
		return &NullLitExpr{Pos: t.Pos}, nil
	case LParen:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case Ident:
		if p.at(LParen) {
			p.next()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			for !p.at(RParen) {
				if len(call.Args) > 0 {
					if _, err := p.expect(Comma); err != nil {
						return nil, err
					}
				}
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			p.next() // )
			return call, nil
		}
		return &IdentExpr{Name: t.Text, Pos: t.Pos}, nil
	default:
		return nil, fmt.Errorf("%s: unexpected token %s in expression", t.Pos, t)
	}
}
