package lang

import "fmt"

// CloneFunc returns a deep copy of a function declaration.
func CloneFunc(f *FuncDecl) *FuncDecl {
	nf := &FuncDecl{Name: f.Name, Ret: f.Ret, Extern: f.Extern, Pos: f.Pos}
	nf.Params = append([]Param(nil), f.Params...)
	if f.Body != nil {
		nf.Body = CloneBlock(f.Body)
	}
	return nf
}

// CloneBlock returns a deep copy of a block.
func CloneBlock(b *BlockStmt) *BlockStmt {
	nb := &BlockStmt{Pos: b.Pos}
	for _, s := range b.Stmts {
		nb.Stmts = append(nb.Stmts, CloneStmt(s))
	}
	return nb
}

// CloneStmt returns a deep copy of a statement.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *BlockStmt:
		return CloneBlock(s)
	case *VarDecl:
		return &VarDecl{Name: s.Name, Type: s.Type, Init: CloneExpr(s.Init), Pos: s.Pos}
	case *AssignStmt:
		return &AssignStmt{Name: s.Name, Val: CloneExpr(s.Val), Pos: s.Pos}
	case *IfStmt:
		ns := &IfStmt{Cond: CloneExpr(s.Cond), Then: CloneBlock(s.Then), Pos: s.Pos}
		if s.Else != nil {
			ns.Else = CloneBlock(s.Else)
		}
		return ns
	case *WhileStmt:
		return &WhileStmt{Cond: CloneExpr(s.Cond), Body: CloneBlock(s.Body), Pos: s.Pos}
	case *ReturnStmt:
		ns := &ReturnStmt{Pos: s.Pos}
		if s.Val != nil {
			ns.Val = CloneExpr(s.Val)
		}
		return ns
	case *ExprStmt:
		return &ExprStmt{X: CloneExpr(s.X), Pos: s.Pos}
	default:
		panic(fmt.Sprintf("unknown statement %T", s))
	}
}

// CloneExpr returns a deep copy of an expression.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *IntLitExpr:
		v := *e
		return &v
	case *BoolLitExpr:
		v := *e
		return &v
	case *NullLitExpr:
		v := *e
		return &v
	case *IdentExpr:
		v := *e
		return &v
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: CloneExpr(e.X), Pos: e.Pos}
	case *BinExpr:
		return &BinExpr{Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R), Pos: e.Pos}
	case *CallExpr:
		nc := &CallExpr{Name: e.Name, Pos: e.Pos}
		for _, a := range e.Args {
			nc.Args = append(nc.Args, CloneExpr(a))
		}
		return nc
	default:
		panic(fmt.Sprintf("unknown expression %T", e))
	}
}
