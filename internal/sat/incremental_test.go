package sat

import (
	"math/rand"
	"testing"
	"time"
)

func TestSolveAssumingSatAndFlip(t *testing.T) {
	// (x1 | x2) & (!x1 | !x2): exactly one of x1,x2. The same solver must
	// answer both phases of x1 without being rebuilt.
	s := newSolverWithVars(2)
	s.AddClause(lits(s, 1, 2)...)
	s.AddClause(lits(s, -1, -2)...)

	st, err := s.SolveAssuming(lits(s, 1))
	if err != nil || st != Sat {
		t.Fatalf("assume x1: got (%s, %v), want sat", st, err)
	}
	if !s.ValueOf(0) || s.ValueOf(1) {
		t.Fatalf("assume x1: model (x1=%v, x2=%v), want (true, false)",
			s.ValueOf(0), s.ValueOf(1))
	}

	st, err = s.SolveAssuming(lits(s, -1))
	if err != nil || st != Sat {
		t.Fatalf("assume !x1: got (%s, %v), want sat", st, err)
	}
	if s.ValueOf(0) || !s.ValueOf(1) {
		t.Fatalf("assume !x1: model (x1=%v, x2=%v), want (false, true)",
			s.ValueOf(0), s.ValueOf(1))
	}
}

func TestSolveAssumingUnsatKeepsSolverUsable(t *testing.T) {
	// x1 -> x2, assume x1 & !x2: unsat under assumptions, but the formula
	// itself stays satisfiable and the solver must stay usable.
	s := newSolverWithVars(2)
	s.AddClause(lits(s, -1, 2)...)

	st, err := s.SolveAssuming(lits(s, 1, -2))
	if err != nil || st != Unsat {
		t.Fatalf("got (%s, %v), want unsat", st, err)
	}
	if !s.Okay() {
		t.Fatal("assumption-level unsat must not poison the solver")
	}
	st, err = s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("after assumption unsat: got (%s, %v), want sat", st, err)
	}
}

// finalConflictVars collects the variables named in the final conflict.
func finalConflictVars(s *Solver) map[int]bool {
	vs := map[int]bool{}
	for _, l := range s.FinalConflict() {
		vs[l.Var()] = true
	}
	return vs
}

func TestFinalConflictIsACore(t *testing.T) {
	// Chain x1 -> x2 -> x3; assumptions {x1, x4, !x3}. Only x1 and !x3
	// participate in the contradiction — x4 is irrelevant and must not
	// appear in the final conflict.
	s := newSolverWithVars(4)
	s.AddClause(lits(s, -1, 2)...)
	s.AddClause(lits(s, -2, 3)...)

	st, err := s.SolveAssuming(lits(s, 1, 4, -3))
	if err != nil || st != Unsat {
		t.Fatalf("got (%s, %v), want unsat", st, err)
	}
	core := s.FinalConflict()
	if len(core) == 0 {
		t.Fatal("empty final conflict for assumption-level unsat")
	}
	vars := finalConflictVars(s)
	if vars[3] {
		t.Fatalf("irrelevant assumption x4 in final conflict %v", core)
	}
	// Every conflict literal must be one of the passed assumptions.
	allowed := map[Lit]bool{}
	for _, l := range lits(s, 1, 4, -3) {
		allowed[l] = true
	}
	for _, l := range core {
		if !allowed[l] {
			t.Fatalf("final conflict literal %v is not an assumption", l)
		}
	}
	// Core property: re-solving under just the blamed assumptions is
	// still unsat.
	st, err = s.SolveAssuming(core)
	if err != nil || st != Unsat {
		t.Fatalf("final conflict is not a core: got (%s, %v)", st, err)
	}
}

func TestFinalConflictContradictoryAssumptions(t *testing.T) {
	s := newSolverWithVars(2)
	s.AddClause(lits(s, 1, 2)...)

	st, err := s.SolveAssuming(lits(s, 1, -1))
	if err != nil || st != Unsat {
		t.Fatalf("got (%s, %v), want unsat", st, err)
	}
	vars := finalConflictVars(s)
	if !vars[0] || len(vars) != 1 {
		t.Fatalf("conflict for {x1, !x1} must blame exactly x1, got %v",
			s.FinalConflict())
	}
}

func TestFinalConflictRootForced(t *testing.T) {
	// x1 is a unit clause; assuming !x1 fails against the database alone,
	// so the final conflict is just the failing assumption.
	s := newSolverWithVars(1)
	s.AddClause(lits(s, 1)...)

	st, err := s.SolveAssuming(lits(s, -1))
	if err != nil || st != Unsat {
		t.Fatalf("got (%s, %v), want unsat", st, err)
	}
	if got := s.FinalConflict(); len(got) != 1 || got[0] != lits(s, -1)[0] {
		t.Fatalf("got final conflict %v, want [!x1]", got)
	}
}

func TestActivationLiteralPattern(t *testing.T) {
	// The session layer guards each query root r with a clause (!act | r).
	// Assuming act forces the root; dropping the assumption retires the
	// query without deleting anything.
	s := newSolverWithVars(3) // x1 = act, x2, x3
	s.AddClause(lits(s, -1, 2)...)
	s.AddClause(lits(s, -2, -3)...)
	s.AddClause(lits(s, 3)...)

	st, err := s.SolveAssuming(lits(s, 1))
	if err != nil || st != Unsat {
		t.Fatalf("active query: got (%s, %v), want unsat", st, err)
	}
	// Retired: the guard clause must not constrain anything.
	st, err = s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("retired query: got (%s, %v), want sat", st, err)
	}
	if s.ValueOf(0) {
		t.Fatal("solver should deactivate the retired guard")
	}
}

func TestLearnedClausesRetainedAcrossCalls(t *testing.T) {
	// A hard-but-satisfiable instance solved twice: the second call starts
	// from the first call's learned clauses (NumLearnts carries over) and
	// must not repeat the full search.
	nv, cls := pigeonhole(6)
	s := newSolverWithVars(nv + 1) // one extra free selector variable
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	sel := MkLit(nv, false)
	before := s.Conflicts
	st, err := s.SolveAssuming([]Lit{sel})
	if err != nil || st != Unsat {
		t.Fatalf("first solve: got (%s, %v), want unsat", st, err)
	}
	firstConflicts := s.Conflicts - before
	if s.Okay() && s.NumLearnts() == 0 {
		t.Fatal("hard refutation produced no learned clauses")
	}
	before = s.Conflicts
	st, err = s.SolveAssuming([]Lit{sel})
	if err != nil || st != Unsat {
		t.Fatalf("second solve: got (%s, %v), want unsat", st, err)
	}
	secondConflicts := s.Conflicts - before
	if secondConflicts > firstConflicts {
		t.Fatalf("no reuse across calls: first %d conflicts, second %d",
			firstConflicts, secondConflicts)
	}
}

func TestMaxConflictsIsPerCall(t *testing.T) {
	// MaxConflicts budgets each SolveAssuming call independently: a second
	// call gets a fresh allowance rather than inheriting spent conflicts.
	nv, cls := pigeonhole(8)
	s := newSolverWithVars(nv)
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	s.MaxConflicts = 10
	for call := 0; call < 3; call++ {
		before := s.Conflicts
		_, err := s.Solve()
		if err != ErrBudget {
			t.Fatalf("call %d: got err %v, want ErrBudget", call, err)
		}
		spent := s.Conflicts - before
		if spent < s.MaxConflicts || spent > s.MaxConflicts+1 {
			t.Fatalf("call %d: spent %d conflicts against a budget of %d",
				call, spent, s.MaxConflicts)
		}
	}
}

func TestDeadlineSurvivesMultipleCalls(t *testing.T) {
	// An expired Deadline set once keeps bounding later calls too.
	nv, cls := pigeonhole(9)
	s := newSolverWithVars(nv)
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	s.Deadline = time.Now().Add(5 * time.Millisecond)
	for call := 0; call < 2; call++ {
		start := time.Now()
		_, err := s.Solve()
		if err == nil {
			return // solved within the window; nothing to assert
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("call %d: deadline not honored: ran %v", call, elapsed)
		}
	}
}

func TestPhaseSavingCarryOver(t *testing.T) {
	// After a Sat call, an unconstrained re-solve keeps the saved phases:
	// the second model equals the first.
	cls := [][]int{{1, 2, 3}, {-1, -2}, {-2, -3}, {-1, -3}, {4, 5}, {-4, -5}}
	s := newSolverWithVars(5)
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	st, err := s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("first solve: got (%s, %v), want sat", st, err)
	}
	first := make([]bool, s.NumVars())
	for v := range first {
		first[v] = s.ValueOf(v)
	}
	st, err = s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("second solve: got (%s, %v), want sat", st, err)
	}
	for v := range first {
		if s.ValueOf(v) != first[v] {
			t.Fatalf("phase saving lost: var %d flipped %v -> %v",
				v, first[v], s.ValueOf(v))
		}
	}
}

func TestAddClauseAfterSatAutoBacktracks(t *testing.T) {
	// Growing the instance after a Sat result must work without an explicit
	// Backtrack: AddClause releases the model and the next solve respects
	// the new clause.
	s := newSolverWithVars(2)
	s.AddClause(lits(s, 1, 2)...)
	st, err := s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("got (%s, %v), want sat", st, err)
	}
	blocked := []Lit{}
	for v := 0; v < 2; v++ {
		blocked = append(blocked, MkLit(v, s.ValueOf(v)))
	}
	s.AddClause(blocked...) // block the current model
	st, err = s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("after blocking clause: got (%s, %v), want sat", st, err)
	}
	same := true
	for v := 0; v < 2; v++ {
		if s.ValueOf(v) != !blocked[v].Neg() {
			same = false
		}
	}
	if same {
		t.Fatal("blocked model returned again")
	}
}

// TestAssumingDifferentialRandom cross-checks warm assumption solving
// against a cold solver that gets the assumptions as unit clauses.
func TestAssumingDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		nVars := 4 + rng.Intn(8)
		nClauses := 3 + rng.Intn(4*nVars)
		var cls [][]int
		for i := 0; i < nClauses; i++ {
			var c []int
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			cls = append(cls, c)
		}
		warm := newSolverWithVars(nVars)
		for _, c := range cls {
			warm.AddClause(lits(warm, c...)...)
		}
		// Several assumption sets against the same warm solver.
		for q := 0; q < 5; q++ {
			var assumps []int
			used := map[int]bool{}
			for len(assumps) < 1+rng.Intn(3) {
				v := 1 + rng.Intn(nVars)
				if used[v] {
					continue
				}
				used[v] = true
				if rng.Intn(2) == 0 {
					v = -v
				}
				assumps = append(assumps, v)
			}
			warmSt, err := warm.SolveAssuming(lits(warm, assumps...))
			if err != nil {
				t.Fatalf("iter %d q %d: warm err %v", iter, q, err)
			}
			cold := newSolverWithVars(nVars)
			for _, c := range cls {
				cold.AddClause(lits(cold, c...)...)
			}
			for _, a := range assumps {
				cold.AddClause(lits(cold, a)...)
			}
			coldSt, err := cold.Solve()
			if err != nil {
				t.Fatalf("iter %d q %d: cold err %v", iter, q, err)
			}
			if warmSt != coldSt {
				t.Fatalf("iter %d q %d: warm %s != cold %s\nclauses %v assumps %v",
					iter, q, warmSt, coldSt, cls, assumps)
			}
			if warmSt == Sat {
				checkModel(t, warm, cls)
				for _, a := range assumps {
					v := a
					if v < 0 {
						v = -v
					}
					if warm.ValueOf(v-1) != (a > 0) {
						t.Fatalf("iter %d q %d: assumption %d not honored", iter, q, a)
					}
				}
			}
		}
	}
}
