package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS CNF interchange, so the SAT core doubles as a standalone solver
// and its instances can be cross-checked with external tools.

// ParseDIMACS reads a DIMACS CNF problem into a fresh solver. Comment
// lines ("c ...") are ignored; the problem line ("p cnf vars clauses") is
// validated when present. Clauses may span lines and are terminated by 0.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	declared := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var cur []Lit
	ensure := func(v int) error {
		if v < 1 {
			return fmt.Errorf("sat: dimacs: variable %d out of range", v)
		}
		for s.NumVars() < v {
			s.NewVar()
		}
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: dimacs: malformed problem line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sat: dimacs: bad variable count in %q", line)
			}
			declared = n
			if err := ensure(n); err != nil && n > 0 {
				return nil, err
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			x, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: dimacs: bad literal %q", tok)
			}
			if x == 0 {
				s.AddClause(cur...)
				cur = cur[:0]
				continue
			}
			v := x
			if v < 0 {
				v = -v
			}
			if declared >= 0 && v > declared {
				return nil, fmt.Errorf("sat: dimacs: literal %d exceeds declared %d variables", x, declared)
			}
			if err := ensure(v); err != nil {
				return nil, err
			}
			cur = append(cur, MkLit(v-1, x < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		s.AddClause(cur...)
	}
	return s, nil
}

// WriteDIMACS renders the solver's problem clauses (not learnt clauses) in
// DIMACS CNF format. Unit facts established at level 0 are emitted as unit
// clauses so the output is equisatisfiable with the solver's state.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	var lines []string
	render := func(lits []Lit) string {
		var b strings.Builder
		for _, l := range lits {
			x := l.Var() + 1
			if l.Neg() {
				x = -x
			}
			fmt.Fprintf(&b, "%d ", x)
		}
		b.WriteString("0")
		return b.String()
	}
	if !s.ok {
		lines = append(lines, "1 0", "-1 0") // trivially unsat
	} else {
		for _, l := range s.trail {
			if s.level[l.Var()] == 0 {
				lines = append(lines, render([]Lit{l}))
			}
		}
		for _, c := range s.clauses {
			lines = append(lines, render(c.lits))
		}
	}
	nv := s.NumVars()
	if nv == 0 {
		nv = 1
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", nv, len(lines)); err != nil {
		return err
	}
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
