package sat

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func lits(s *Solver, xs ...int) []Lit {
	out := make([]Lit, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = MkLit(x-1, false)
		} else {
			out[i] = MkLit(-x-1, true)
		}
	}
	return out
}

// newSolverWithVars returns a solver with n allocated variables.
func newSolverWithVars(n int) *Solver {
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return s
}

func solveDIMACS(t *testing.T, nVars int, clauses [][]int) (Status, *Solver) {
	t.Helper()
	s := newSolverWithVars(nVars)
	for _, c := range clauses {
		s.AddClause(lits(s, c...)...)
	}
	st, err := s.Solve()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return st, s
}

func checkModel(t *testing.T, s *Solver, clauses [][]int) {
	t.Helper()
	for _, c := range clauses {
		ok := false
		for _, x := range c {
			v := x
			if v < 0 {
				v = -v
			}
			val := s.ValueOf(v - 1)
			if (x > 0) == val {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model does not satisfy clause %v", c)
		}
	}
}

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.Neg() {
		t.Errorf("MkLit round trip failed: %v", l)
	}
	if l.Flip().Neg() || l.Flip().Var() != 5 {
		t.Errorf("Flip failed")
	}
}

func TestTrivialSat(t *testing.T) {
	cls := [][]int{{1, 2}, {-1, 2}, {1, -2}}
	st, s := solveDIMACS(t, 2, cls)
	if st != Sat {
		t.Fatalf("got %s, want sat", st)
	}
	checkModel(t, s, cls)
}

func TestTrivialUnsat(t *testing.T) {
	st, _ := solveDIMACS(t, 1, [][]int{{1}, {-1}})
	if st != Unsat {
		t.Fatalf("got %s, want unsat", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := newSolverWithVars(1)
	if s.AddClause() {
		t.Fatal("empty clause must make the formula unsat")
	}
	st, _ := s.Solve()
	if st != Unsat {
		t.Fatalf("got %s, want unsat", st)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := newSolverWithVars(2)
	s.AddClause(lits(s, 1, -1)...)
	s.AddClause(lits(s, 2)...)
	st, err := s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("got %s err %v, want sat", st, err)
	}
	if !s.ValueOf(1) {
		t.Error("unit clause x2 not respected")
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x1 xor x2, x2 xor x3, x1 xor x3 with odd parity forced: encode
	// (a != b) as two clauses.
	neq := func(a, b int) [][]int { return [][]int{{a, b}, {-a, -b}} }
	var cls [][]int
	cls = append(cls, neq(1, 2)...)
	cls = append(cls, neq(2, 3)...)
	cls = append(cls, neq(1, 3)...)
	st, _ := solveDIMACS(t, 3, cls)
	if st != Unsat {
		t.Fatalf("odd xor cycle: got %s, want unsat", st)
	}
}

// pigeonhole generates the classic unsatisfiable PHP(n+1, n) instance.
func pigeonhole(n int) (int, [][]int) {
	v := func(p, h int) int { return p*n + h + 1 } // pigeon p in hole h
	var cls [][]int
	for p := 0; p <= n; p++ {
		var c []int
		for h := 0; h < n; h++ {
			c = append(c, v(p, h))
		}
		cls = append(cls, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				cls = append(cls, []int{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return (n + 1) * n, cls
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		nv, cls := pigeonhole(n)
		st, _ := solveDIMACS(t, nv, cls)
		if st != Unsat {
			t.Fatalf("PHP(%d+1,%d): got %s, want unsat", n, n, st)
		}
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-color a 5-cycle (chromatic number 3): satisfiable.
	n := 5
	v := func(node, color int) int { return node*3 + color + 1 }
	var cls [][]int
	for i := 0; i < n; i++ {
		cls = append(cls, []int{v(i, 0), v(i, 1), v(i, 2)})
		for c1 := 0; c1 < 3; c1++ {
			for c2 := c1 + 1; c2 < 3; c2++ {
				cls = append(cls, []int{-v(i, c1), -v(i, c2)})
			}
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < 3; c++ {
			cls = append(cls, []int{-v(i, c), -v(j, c)})
		}
	}
	st, s := solveDIMACS(t, n*3, cls)
	if st != Sat {
		t.Fatalf("5-cycle 3-coloring: got %s, want sat", st)
	}
	checkModel(t, s, cls)
}

// bruteForce decides satisfiability by enumeration for small instances.
func bruteForce(nVars int, clauses [][]int) bool {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, c := range clauses {
			cok := false
			for _, x := range c {
				v := x
				if v < 0 {
					v = -v
				}
				val := m>>(uint(v)-1)&1 == 1
				if (x > 0) == val {
					cok = true
					break
				}
			}
			if !cok {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 2 + rng.Intn(5*nVars)
		var cls [][]int
		for i := 0; i < nClauses; i++ {
			var c []int
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			cls = append(cls, c)
		}
		want := bruteForce(nVars, cls)
		st, s := solveDIMACS(t, nVars, cls)
		if (st == Sat) != want {
			t.Fatalf("iter %d: got %s, brute force says sat=%v\nclauses: %v",
				iter, st, want, cls)
		}
		if st == Sat {
			checkModel(t, s, cls)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	nv, cls := pigeonhole(8) // hard enough to exceed a tiny budget
	s := newSolverWithVars(nv)
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	s.MaxConflicts = 10
	_, err := s.Solve()
	if err != ErrBudget {
		t.Fatalf("got err %v, want ErrBudget", err)
	}
}

func TestDeadline(t *testing.T) {
	nv, cls := pigeonhole(9)
	s := newSolverWithVars(nv)
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	s.Deadline = time.Now().Add(10 * time.Millisecond)
	start := time.Now()
	_, err := s.Solve()
	if err == nil {
		return // solved quickly; nothing to assert
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not honored: ran %v", elapsed)
	}
}

func TestIncrementalStats(t *testing.T) {
	st, s := solveDIMACS(t, 3, [][]int{{1, 2, 3}, {-1, -2}, {-2, -3}, {-1, -3}})
	if st != Sat {
		t.Fatalf("got %s, want sat", st)
	}
	if s.Decisions < 0 || s.Props < 0 {
		t.Error("statistics must be non-negative")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d): got %d, want %d", i+1, got, w)
		}
	}
}

// TestContextPreCancelled: a solver handed an already-cancelled context
// returns Unknown with ErrBudget before any search happens.
func TestContextPreCancelled(t *testing.T) {
	nv, cls := pigeonhole(6)
	s := newSolverWithVars(nv)
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Ctx = ctx
	st, err := s.Solve()
	if st != Unknown || err != ErrBudget {
		t.Fatalf("got (%s, %v), want (unknown, ErrBudget)", st, err)
	}
}

// TestContextCancelledMidSearch: cancellation during a hard search aborts
// the CDCL loop promptly with Unknown.
func TestContextCancelledMidSearch(t *testing.T) {
	nv, cls := pigeonhole(9)
	s := newSolverWithVars(nv)
	for _, c := range cls {
		s.AddClause(lits(s, c...)...)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	s.Ctx = ctx
	start := time.Now()
	st, err := s.Solve()
	if err == nil {
		return // solved before the deadline; nothing to assert
	}
	if st != Unknown || err != ErrBudget {
		t.Fatalf("got (%s, %v), want (unknown, ErrBudget)", st, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not honored: ran %v", elapsed)
	}
}
