package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `
c a comment
p cnf 3 4
1 2 0
-1 2 0
1 -2 0
3 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Solve()
	if err != nil || st != Sat {
		t.Fatalf("got %s err %v, want sat", st, err)
	}
	if !s.ValueOf(0) || !s.ValueOf(1) || !s.ValueOf(2) {
		t.Errorf("model: %v %v %v, want all true", s.ValueOf(0), s.ValueOf(1), s.ValueOf(2))
	}
}

func TestParseDIMACSUnsatAndErrors(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 1 2\n1 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Solve(); st != Unsat {
		t.Fatalf("got %s, want unsat", st)
	}
	for _, bad := range []string{
		"p cnf x 2\n",
		"p dnf 1 1\n1 0\n",
		"p cnf 1 1\n2 0\n", // exceeds declared vars
		"1 q 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	s, err := ParseDIMACS(strings.NewReader("p cnf 3 1\n1\n2\n3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s.Solve(); st != Sat {
		t.Fatalf("got %s, want sat", st)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 2 + rng.Intn(4*nVars)
		var cls [][]int
		for i := 0; i < nClauses; i++ {
			var c []int
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nVars)
				if rng.Intn(2) == 0 {
					v = -v
				}
				c = append(c, v)
			}
			cls = append(cls, c)
		}
		s1 := newSolverWithVars(nVars)
		for _, c := range cls {
			s1.AddClause(lits(s1, c...)...)
		}
		var buf bytes.Buffer
		if err := s1.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		s2, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: reparse: %v\n%s", iter, err, buf.String())
		}
		st1, err1 := s1.Solve()
		st2, err2 := s2.Solve()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if st1 != st2 {
			t.Fatalf("iter %d: round trip changed satisfiability: %s vs %s\n%s",
				iter, st1, st2, buf.String())
		}
	}
}

func TestWriteDIMACSTriviallyUnsat(t *testing.T) {
	s := newSolverWithVars(1)
	s.AddClause(lits(s, 1)...)
	s.AddClause(lits(s, -1)...)
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := s2.Solve(); st != Unsat {
		t.Fatalf("got %s, want unsat", st)
	}
}
