// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-literal watching, VSIDS-style activity ordering, first-UIP
// conflict analysis with non-chronological backjumping, Luby restarts, and
// phase saving. It is the decision engine the bit-vector solver bit-blasts
// into, standing in for the SAT core of Z3 in the paper's stack.
package sat

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Lit is a literal: variable index shifted left once, low bit = negated.
// Variables are 0-based.
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complementary literal.
func (l Lit) Flip() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) flip() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits     []Lit
	learned  bool
	activity float64
}

// Status is a solver verdict.
type Status int

// Verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBudget is returned when the conflict budget or deadline is exhausted.
var ErrBudget = errors.New("sat: budget exhausted")

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses  []*clause
	learnts  []*clause
	watches  [][]*clause // watches[lit] = clauses watching lit
	assigns  []lbool
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []lbool // saved phases

	claInc float64

	ok        bool // false once a top-level conflict is found
	Conflicts int64
	Props     int64
	Decisions int64

	// MaxConflicts bounds the search; <= 0 means unbounded.
	MaxConflicts int64
	// MaxDecisions bounds the number of branching decisions; <= 0
	// means unbounded. Unlike the wall-clock deadline it is exact and
	// machine-independent, so exhaustion is deterministic.
	MaxDecisions int64
	// Deadline aborts the search when passed; zero means none.
	Deadline time.Time
	// Ctx, when non-nil, cancels the search cooperatively: it is polled
	// every few conflicts (and on the deadline cadence), returning Unknown
	// with ErrBudget once cancelled.
	Ctx context.Context
	// Progress, when non-nil, is a lock-free heartbeat the search bumps on
	// every conflict and branching decision. An external monitor goroutine
	// samples it to tell a searching solver from a wedged one: cooperative
	// cancellation is only polled on the conflict/iteration cadence, so a
	// solve that stalls between polls never observes Ctx — but its
	// heartbeat stops moving, which is what a watchdog abandons on.
	Progress *atomic.Int64
	// StallHook, when non-nil, is called once at the start of every
	// restart of the CDCL search. It exists for deterministic fault
	// injection (the stall.solve point wedges the search mid-CDCL without
	// publishing progress); production code leaves it nil.
	StallHook func()

	seen    []bool
	toClear []int

	decisionsAtStart int64

	// assumptions are the pseudo-decisions of the current SolveAssuming
	// call, placed one per decision level below every real decision.
	assumptions []Lit
	// conflictLits is the final conflict of the last assumption-based
	// solve: the subset of assumptions whose conjunction is already
	// unsatisfiable under the clause database (see FinalConflict).
	conflictLits []Lit
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	s.order = &varHeap{act: &s.activity}
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learned) clauses attached.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learned clauses currently retained.
// Across SolveAssuming calls the learned database persists, so this is the
// cross-query reuse a warm session carries into its next solve.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Okay reports that no top-level (assumption-independent) contradiction has
// been derived; once false, every future solve is Unsat.
func (s *Solver) Okay() bool { return s.ok }

// Stats is a snapshot of the solver's monotonic search counters. On a
// long-lived solver (a warm session) they accumulate across queries, so
// per-query costs are deltas between two snapshots.
type Stats struct {
	Conflicts int64
	Decisions int64
	Props     int64
}

// Stats returns the current search-counter snapshot.
func (s *Solver) Stats() Stats {
	return Stats{Conflicts: s.Conflicts, Decisions: s.Decisions, Props: s.Props}
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, lFalse)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		return v.flip()
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false if the
// formula became trivially unsatisfiable.
//
// Clauses may be added between solves on the same instance: the trail is
// first backtracked to the root level, which invalidates any model left by
// a previous Sat verdict (read it with ValueOf before adding more clauses).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		// A previous solve left its (pseudo-)decisions on the trail;
		// release them so the clause simplifies against root-level facts
		// only and unit propagation runs at the root.
		s.cancelUntil(0)
	}
	// Normalize: drop duplicate and false literals, detect tautologies.
	var out []Lit
	seen := map[Lit]bool{}
	for _, l := range lits {
		if l.Var() >= s.NumVars() {
			panic("sat: literal over unallocated variable")
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		if seen[l.Flip()] {
			return true // tautology
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], c)
	s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if confl != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Flip() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, c)
			if s.value(c.lits[0]) == lFalse {
				confl = c
				continue
			}
			s.Props++
			s.uncheckedEnqueue(c.lits[0], c)
		}
		s.watches[p] = kept
		if confl != nil {
			s.qhead = len(s.trail)
			return confl
		}
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, l := range s.learnts {
			l.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.toClear = append(s.toClear, v)
			s.bumpVar(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		confl = s.reason[v]
		counter--
		if counter == 0 {
			break
		}
		if p != -1 && confl != nil {
			// Put p first so the reason iteration skips it.
			if confl.lits[0] != p {
				for i, l := range confl.lits {
					if l == p {
						confl.lits[0], confl.lits[i] = confl.lits[i], confl.lits[0]
						break
					}
				}
			}
		}
	}
	learnt[0] = p.Flip()

	// Backjump level: max level among the other literals.
	back := 0
	for i := 1; i < len(learnt); i++ {
		if int(s.level[learnt[i].Var()]) > back {
			back = int(s.level[learnt[i].Var()])
		}
	}
	// Move a literal of the backjump level into slot 1 for watching.
	if len(learnt) > 1 {
		mi := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[mi].Var()] {
				mi = i
			}
		}
		learnt[1], learnt[mi] = learnt[mi], learnt[1]
	}
	for _, v := range s.toClear {
		s.seen[v] = false
	}
	s.toClear = s.toClear[:0]
	return learnt, back
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = s.assigns[v]
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranch() Lit {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			neg := s.phase[v] != lTrue
			return MkLit(v, neg)
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// reduceDB removes half of the learnt clauses with the lowest activity.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 100 {
		return
	}
	// Partial selection: keep clauses that are reasons or highly active.
	lim := medianActivity(s.learnts)
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if s.isReason(c) || c.activity >= lim || len(c.lits) <= 2 {
			kept = append(kept, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = kept
}

func medianActivity(cs []*clause) float64 {
	if len(cs) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cs {
		sum += c.activity
	}
	return sum / float64(len(cs))
}

// PurgeLearnts detaches every learned clause containing a literal for
// which drop returns true, returning the number purged. Learned clauses
// are consequences of the problem clauses alone, so removing any subset
// never changes a verdict — purging is how a warm session garbage-collects
// clauses that reference retired activation groups instead of carrying
// them (disabled but resident) forever. The trail is first backtracked to
// the root level so no in-flight reason clause can be removed; clauses
// serving as root-level reasons are kept.
func (s *Solver) PurgeLearnts(drop func(Lit) bool) int {
	s.cancelUntil(0)
	kept := s.learnts[:0]
	purged := 0
	for _, c := range s.learnts {
		dead := false
		if !s.isReason(c) {
			for _, l := range c.lits {
				if drop(l) {
					dead = true
					break
				}
			}
		}
		if dead {
			s.detach(c)
			purged++
		} else {
			kept = append(kept, c)
		}
	}
	for i := len(kept); i < len(s.learnts); i++ {
		s.learnts[i] = nil // release the purged tails for GC
	}
	s.learnts = kept
	return purged
}

func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.assigns[v] != lUndef && s.reason[v] == c
}

func (s *Solver) detach(c *clause) {
	for _, w := range []Lit{c.lits[0].Flip(), c.lits[1].Flip()} {
		ws := s.watches[w]
		for i, x := range ws {
			if x == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve runs the CDCL search and returns Sat, Unsat, or an error when the
// budget is exhausted.
func (s *Solver) Solve() (Status, error) { return s.SolveAssuming(nil) }

// SolveAssuming runs the CDCL search under the given assumption literals,
// placed as pseudo-decisions below every real decision. It returns Sat when
// the formula is satisfiable with every assumption true, Unsat when it is
// not (FinalConflict then reports which assumptions are to blame — the
// solver itself stays usable, unlike a root-level contradiction), and an
// error when the budget is exhausted.
//
// Everything learned is retained across calls: learned clauses (which are
// consequences of the clause database alone, never of the assumptions),
// variable activity, and saved phases. Budgets are charged per call:
// MaxConflicts and MaxDecisions count from the call's start, and Deadline
// and Ctx are read as configured at call time. After a Sat verdict the
// trail is left in place so ValueOf can read the model; the next
// SolveAssuming (or AddClause) releases it.
func (s *Solver) SolveAssuming(assumps []Lit) (Status, error) {
	if !s.ok {
		return Unsat, nil
	}
	if s.Ctx != nil && s.Ctx.Err() != nil {
		return Unknown, ErrBudget
	}
	s.cancelUntil(0) // release the previous call's model and assumptions
	for _, l := range assumps {
		if l.Var() >= s.NumVars() {
			panic("sat: assumption over unallocated variable")
		}
	}
	s.assumptions = append(s.assumptions[:0], assumps...)
	s.conflictLits = s.conflictLits[:0]
	// Clauses added since the last solve may have pending root-level units.
	if s.propagate() != nil {
		s.ok = false
		return Unsat, nil
	}
	restartIdx := int64(1)
	conflictsAtStart := s.Conflicts
	s.decisionsAtStart = s.Decisions
	for {
		budget := luby(restartIdx) * 100
		restartIdx++
		st, err := s.search(budget, conflictsAtStart)
		if err != nil || st != Unknown {
			return st, err
		}
	}
}

// FinalConflict returns the final conflict of the last SolveAssuming call
// that returned Unsat: a subset of the assumptions whose conjunction is
// already unsatisfiable under the clause database. It is empty when the
// contradiction is assumption-independent (the formula itself is Unsat).
// The slice is owned by the solver and valid until the next solve.
func (s *Solver) FinalConflict() []Lit { return s.conflictLits }

// Backtrack releases every (pseudo-)decision, returning the solver to the
// root level while keeping learned clauses, activity, and saved phases. It
// invalidates the model of a preceding Sat verdict.
func (s *Solver) Backtrack() { s.cancelUntil(0) }

func (s *Solver) search(restartBudget int64, conflictsAtStart int64) (Status, error) {
	if s.StallHook != nil {
		s.StallHook()
	}
	conflictsThisRestart := int64(0)
	checkCounter := 0
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsThisRestart++
			if s.Progress != nil {
				s.Progress.Add(1)
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat, nil
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learned: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			if s.MaxConflicts > 0 && s.Conflicts-conflictsAtStart >= s.MaxConflicts {
				return Unknown, ErrBudget
			}
			if s.Ctx != nil && s.Conflicts&63 == 0 && s.Ctx.Err() != nil {
				return Unknown, ErrBudget
			}
			if conflictsThisRestart >= restartBudget {
				s.cancelUntil(0)
				s.reduceDB()
				return Unknown, nil
			}
			continue
		}
		if !s.Deadline.IsZero() || s.Ctx != nil {
			checkCounter++
			if checkCounter%256 == 0 {
				if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
					return Unknown, ErrBudget
				}
				if s.Ctx != nil && s.Ctx.Err() != nil {
					return Unknown, ErrBudget
				}
			}
		}
		// Place pending assumptions as pseudo-decisions, one per level, so
		// restarts (which cancel to the root) re-place them and conflict
		// analysis backjumps through them like ordinary decisions. They are
		// not charged against the decision budget.
		next := Lit(-1)
		for next == -1 && s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Already implied: open an empty level so level k keeps
				// corresponding to assumption k.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// Contradicted by the earlier assumptions and the clause
				// database: unsat under assumptions, not a real Unsat.
				s.analyzeFinal(p)
				return Unsat, nil
			default:
				next = p
			}
		}
		if next == -1 {
			next = s.pickBranch()
			if next == -1 {
				return Sat, nil
			}
			if s.MaxDecisions > 0 && s.Decisions-s.decisionsAtStart >= s.MaxDecisions {
				return Unknown, ErrBudget
			}
			s.Decisions++
			if s.Progress != nil {
				s.Progress.Add(1)
			}
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// analyzeFinal computes the final conflict for a failing assumption p
// (whose complement is implied by the trail): the subset of assumptions
// that, together with the clause database, force ¬p. It walks the
// implication graph backwards from ¬p, collecting the decisions it reaches
// — at these levels every decision is an assumption.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictLits = append(s.conflictLits[:0], p)
	if s.decisionLevel() == 0 {
		return // forced at the root: assumption-independent
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		l := s.trail[i]
		v := l.Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			s.conflictLits = append(s.conflictLits, l)
		} else {
			for _, q := range s.reason[v].lits {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

// ValueOf returns the model value of variable v after a Sat result.
func (s *Solver) ValueOf(v int) bool { return s.assigns[v] == lTrue }

// varHeap is a max-heap over variable activity with lazy deletion.
type varHeap struct {
	act   *[]float64
	items []int
	pos   map[int]int
}

func (h *varHeap) less(a, b int) bool { return (*h.act)[h.items[a]] > (*h.act)[h.items[b]] }

func (h *varHeap) swap(a, b int) {
	h.items[a], h.items[b] = h.items[b], h.items[a]
	h.pos[h.items[a]] = a
	h.pos[h.items[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.items)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && h.less(c+1, c) {
			c++
		}
		if !h.less(c, i) {
			return
		}
		h.swap(i, c)
		i = c
	}
}

func (h *varHeap) push(v int) {
	if h.pos == nil {
		h.pos = map[int]int{}
	}
	if _, ok := h.pos[v]; ok {
		return
	}
	h.items = append(h.items, v)
	h.pos[v] = len(h.items) - 1
	h.up(len(h.items) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() (int, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	v := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	delete(h.pos, v)
	if last > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	if i, ok := h.pos[v]; ok {
		h.up(i)
		h.down(h.pos[v])
		_ = i
	}
}
