// Package engines implements the analysis engines the evaluation compares:
//
//   - Fusion: the fused design (Algorithm 5 + 6) — no condition caching, no
//     eager cloning;
//   - Pinpoint: the conventional design (Algorithm 2) — explicit path
//     conditions, cloned per calling context and retained in a long-lived
//     term cache as function summaries;
//   - Pinpoint+QE / +LFS / +HFS / +AR: the condition-size-reduction
//     variants of §5.1 (quantifier elimination, lightweight and heavyweight
//     formula simplification, abstraction refinement);
//   - Infer: a compositional, path-insensitive summary-based analyzer in
//     the style of bi-abduction tools (§5.2).
//
// All engines share the sparse propagation of package sparse; they differ
// only in how path feasibility is decided, which is exactly the comparison
// the paper makes.
package engines

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"fusion/internal/absint"
	"fusion/internal/cond"
	"fusion/internal/driver"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
	"fusion/internal/telemetry"
)

// Verdict is the decision for one candidate flow.
type Verdict struct {
	Cand   sparse.Candidate
	Status sat.Status // Sat = feasible = reported bug
	// Preprocessed reports the solve was decided during preprocessing.
	Preprocessed bool
	// DecidedByAbsint reports the query was refuted by the
	// abstract-interpretation tier before any formula was built.
	DecidedByAbsint bool
	// DecidedByStride reports the refutation needed the congruence
	// (stride) product but not the zone tier (implies DecidedByAbsint).
	DecidedByStride bool
	// DecidedByZone reports the refutation needed the zone relational
	// tier (implies DecidedByAbsint).
	DecidedByZone bool
	// Simplified counts vertices whose decided singleton invariants the
	// absint-guided pre-simplification folded into local conditions;
	// PrunedGuards is the subset that were branch conditions.
	Simplified   int
	PrunedGuards int
	// SolveTime is the feasibility-decision time for this candidate.
	SolveTime time.Duration
	// CacheHits counts term encodings this candidate's solve reused from
	// earlier queries of its warm session; CacheVars is the size of the
	// retained SAT variable map at that solve; ReusedClauses is the
	// learned clauses it inherited. All zero on the one-shot (-session=off)
	// path. These are cost counters only: they depend on which candidates
	// shared a worker and must never influence a verdict.
	CacheHits     int64
	CacheVars     int
	ReusedClauses int64
	// Conflicts, Decisions, and Props are the SAT search counters of this
	// candidate's final attempt. Like the cache counters above they are
	// cost-only: on the warm-session path they depend on which candidates
	// shared a worker, so they feed the telemetry Sched section and must
	// never influence a verdict.
	Conflicts int64
	Decisions int64
	Props     int64
	// ConditionSize is the DAG size of the condition solved (0 when the
	// engine never materializes one).
	ConditionSize int
	// Tier is the precision tier that produced Status (see Tier).
	Tier Tier
	// Degraded reports the bit-precise tier exhausted its budget and
	// Status came from the fallback ladder (or stayed Unknown when even
	// the cheap tiers could not decide).
	Degraded bool
	// Attempts counts how many times the retry ladder ran this candidate
	// (1 for the common clean first attempt; 0 only on slots synthesized
	// for cancellation). When no fault fires every attempt is 1, so the
	// field stays byte-identical across -retries settings.
	Attempts int
	// Abandoned reports the watchdog hard-abandoned the final attempt:
	// its heartbeat stayed flat past the deadline plus grace window, the
	// unit's goroutine was cut loose, and its session slot was replaced.
	// Status is then Unknown (or a degraded refutation).
	Abandoned bool
	// Failure records a contained crash while checking this candidate;
	// Status is then Unknown and every other field is zero.
	Failure *failure.UnitFailure
}

// Engine decides candidate feasibility.
type Engine interface {
	Name() string
	// Check decides every candidate. Implementations may keep state
	// (caches) across calls, as the conventional design does. Check
	// honors ctx cooperatively: once it is cancelled, the remaining
	// candidates are returned promptly as Unknown partial verdicts —
	// the result always has one verdict per candidate, in input order.
	Check(ctx context.Context, g *pdg.Graph, cands []sparse.Candidate) []Verdict
	// ConditionBytes estimates the memory retained for conditions and
	// summaries after Check.
	ConditionBytes() int64
}

// SolverConfig carries the per-query solver budget (the paper limits each
// SMT call to 10 seconds).
type SolverConfig struct {
	Timeout      time.Duration
	MaxConflicts int64
	// Deadline bounds each candidate's whole check (translation included,
	// unlike Timeout which only bounds the SAT search) via a derived
	// context, so one adversarial instance cannot eat the run's budget.
	// Zero means none.
	Deadline time.Duration
	// Budget is the deterministic per-candidate resource budget; on
	// exhaustion inside the bit-precise tier the engine degrades to the
	// zone-then-interval refuters instead of reporting bare Unknown.
	// Budget.Conflicts and Budget.Deadline override MaxConflicts and
	// Deadline when set.
	Budget Budget
	// Retries is how many times a candidate whose attempt crashed or was
	// abandoned is re-run, with escalating strategy (warm session →
	// fresh cold session → one-shot stack). 0 means a single attempt.
	Retries int
	// WatchdogGrace arms the per-worker watchdog: an attempt whose solver
	// heartbeat stays flat for this long at or past its deadline is
	// hard-abandoned. 0 disables the watchdog (attempts run inline).
	WatchdogGrace time.Duration
}

// SortVerdicts orders verdicts by source position — sink line/column
// first, then source line/column, then argument index — so reports are
// stable however the candidates were enumerated and checked.
func SortVerdicts(vs []Verdict) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i].Cand, vs[j].Cand
		if a.Sink.Pos != b.Sink.Pos {
			if a.Sink.Pos.Line != b.Sink.Pos.Line {
				return a.Sink.Pos.Line < b.Sink.Pos.Line
			}
			return a.Sink.Pos.Col < b.Sink.Pos.Col
		}
		if a.Source.Pos != b.Source.Pos {
			if a.Source.Pos.Line != b.Source.Pos.Line {
				return a.Source.Pos.Line < b.Source.Pos.Line
			}
			return a.Source.Pos.Col < b.Source.Pos.Col
		}
		if a.ArgIdx != b.ArgIdx {
			return a.ArgIdx < b.ArgIdx
		}
		return len(a.Path) < len(b.Path)
	})
}

func (c SolverConfig) options() solver.Options {
	o := solver.Options{Timeout: c.Timeout, MaxConflicts: c.MaxConflicts}
	if c.Budget.Conflicts > 0 {
		o.MaxConflicts = c.Budget.Conflicts
	}
	if c.Budget.Steps > 0 {
		o.MaxDecisions = c.Budget.Steps
	}
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Second
	}
	return o
}

// --- Fusion ---

// Fusion is the fused engine: per-candidate solving directly on the
// dependence graph, nothing cached between candidates. Candidates are
// independent, so checking parallelizes trivially — the paper runs its
// analyses with fifteen threads.
type Fusion struct {
	Cfg SolverConfig
	// Opts tunes the fused solver (ablations).
	Opts fusioncore.Options
	// UseAbsint enables the abstract-interpretation tier: the
	// whole-program analysis is computed once per graph and consulted
	// before every solve.
	UseAbsint bool
	// IntervalsOnly disables the zone relational domain, leaving the
	// interval tier alone — the `-absint=intervals` ablation.
	IntervalsOnly bool
	// NoStride disables the congruence (stride) domain while keeping the
	// zone tier — the `-absint=nostride` ablation. IntervalsOnly implies
	// NoStride.
	NoStride bool
	// NoSimplify keeps every domain but disables the absint-guided
	// pre-simplification of local conditions — the `-absint=nosimplify`
	// ablation. Refutation and fact export are unaffected.
	NoSimplify bool
	// NoSession disables the warm incremental solver sessions, rebuilding
	// the whole solving stack per candidate — the `-session=off` ablation
	// (and the oracle the differential tests compare against).
	NoSession bool
	// Parallel is the worker count for Check; 0 or 1 means sequential.
	Parallel int
	// Telemetry, when non-nil, receives per-candidate ladder spans,
	// per-attempt solve spans (on the attempt's worker track), and the
	// verdict-derived counters of every Check. Nil — the default — costs
	// one pointer check per site.
	Telemetry *telemetry.Recorder
	// OnVerdict, when non-nil, observes each candidate's final verdict as
	// soon as its retry ladder settles, before Check returns; i is the
	// candidate's input index. Called from worker goroutines concurrently —
	// the observer synchronizes itself. Verdicts synthesized for slots
	// that crashed outside the supervised region are not observed (they
	// still appear in Check's result).
	OnVerdict func(i int, v Verdict)
	mu        sync.Mutex
	peak      int64
	absG      *pdg.Graph
	abs       *absint.Analysis
	// sessions is the pool-affine warm solver pool: one session per
	// ParallelCheck worker slot, reused across Check calls.
	sessions *driver.Sessions
	// fb is the lazily-built fallback analysis the degradation ladder
	// consults when the engine runs without its own absint tier.
	fb fallbackTier
}

// Absint returns the engine's interval analysis for the graph, building
// and caching it on first use. Nil unless UseAbsint is set (or an analysis
// was injected through Opts.Absint).
func (e *Fusion) Absint(g *pdg.Graph) *absint.Analysis {
	if e.Opts.Absint != nil {
		return e.Opts.Absint
	}
	if !e.UseAbsint {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.absG != g {
		e.abs = absint.AnalyzeWith(g, absint.Config{
			DisableZone:   e.IntervalsOnly,
			DisableStride: e.IntervalsOnly || e.NoStride,
		})
		e.absG = g
	}
	return e.abs
}

// NewFusion returns the fused engine with default options.
func NewFusion() *Fusion { return &Fusion{} }

// Name implements Engine.
func (e *Fusion) Name() string { return "fusion" }

// SessionStats exposes the warm pool's cumulative counters for reporting
// (zeroes when sessions are disabled or Check has not run).
func (e *Fusion) SessionStats() (queries, cacheHits, evictions, resets int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sessions == nil {
		return
	}
	return e.sessions.Stats()
}

// sessionPool returns the warm pool sized for at least n worker slots,
// growing (and re-warming) it when the Check fan-out widens.
func (e *Fusion) sessionPool(n int) *driver.Sessions {
	if e.NoSession {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sessions == nil || e.sessions.Len() < n {
		e.sessions = driver.NewSessions(n, solver.SessionConfig{})
	}
	return e.sessions
}

// Check implements Engine.
func (e *Fusion) Check(ctx context.Context, g *pdg.Graph, cands []sparse.Candidate) []Verdict {
	e.Absint(g) // build the shared analysis once, outside the pool
	pool := e.sessionPool(driver.PoolSize(len(cands), e.Parallel))
	vs, fails := driver.ParallelCheckWorkers(ctx, len(cands), e.Parallel, func(i, w int) Verdict {
		v := e.checkSupervised(ctx, g, cands[i], pool, w)
		if e.OnVerdict != nil {
			e.OnVerdict(i, v)
		}
		return v
	})
	attachFailures(vs, fails, cands)
	recordVerdicts(e.Telemetry, vs)
	return vs
}

// checkSupervised is the retry ladder for one candidate: run an attempt
// under the watchdog; on a contained panic or an abandonment, re-run up
// to Cfg.Retries times with escalating strategy — attempt 1 uses the
// worker's warm session, attempt 2 a fresh cold session in the same
// slot, attempt 3+ the one-shot stack with no warm state at all. A
// ladder exhausted on crashes records exactly one UnitFailure carrying
// the attempt count; one exhausted on abandonment yields an Abandoned
// verdict. Either way the cheap refutation tiers get a last look, so a
// persistently crashing unit can still end with a sound Unsat.
func (e *Fusion) checkSupervised(parent context.Context, g *pdg.Graph, c sparse.Candidate, pool *driver.Sessions, w int) Verdict {
	if rec := e.Telemetry; rec != nil {
		t0 := time.Now()
		// The ladder span encloses every attempt span on the same track, so
		// the trace nests attempts under their candidate by containment.
		defer func() { rec.Span(w+1, "candidate", UnitLabel(c), t0, time.Now()) }()
	}
	attempts := 1 + e.Cfg.Retries
	var lastFail *failure.UnitFailure
	abandoned := false
	for attempt := 1; attempt <= attempts; attempt++ {
		if parent.Err() != nil {
			return Verdict{Cand: c, Status: sat.Unknown, Attempts: attempt - 1}
		}
		v, fail, ab := e.checkAttempt(parent, g, c, pool, w, attempt)
		if fail == nil && !ab {
			v.Attempts = attempt
			return v
		}
		if fail != nil {
			lastFail = fail
		}
		abandoned = ab
	}
	if lastFail != nil {
		lastFail.Attempts = attempts
	}
	v := Verdict{Cand: c, Status: sat.Unknown, Attempts: attempts,
		Abandoned: abandoned, Failure: lastFail}
	// Final ladder rung: the abstract refuters run outside the crashed or
	// wedged solving stack and may still produce a sound Unsat.
	an := e.Absint(g)
	if an == nil {
		an = e.fb.analysis(g)
	}
	degradeVerdict(parent, an, g, c, &v)
	return v
}

// checkAttempt runs one attempt of the ladder under the watchdog. On
// abandonment the attempt's context is cancelled — the orphaned
// goroutine unwinds through the solver's cooperative polling — and the
// worker's session slot is replaced, because the orphan still owns the
// old session's solving stack.
func (e *Fusion) checkAttempt(parent context.Context, g *pdg.Graph, c sparse.Candidate, pool *driver.Sessions, w, attempt int) (Verdict, *failure.UnitFailure, bool) {
	var sess *solver.Session
	if pool != nil {
		switch attempt {
		case 1:
			sess = pool.At(w)
		case 2:
			sess = pool.Replace(w)
		}
		// attempt 3+: one-shot, no warm state at all.
	}
	ctx, cancel := e.Cfg.candidateCtx(parent)
	defer cancel()
	// The injected stall.solve wedge gets a cancellation-only context: a
	// real wedge ignores deadlines, so the simulated one must not release
	// when the attempt's deadline merely expires — only when this attempt
	// is torn down (watchdog abandonment or run cancellation).
	stallCtx, stallCancel := context.WithCancel(parent)
	defer stallCancel()
	deadline, _ := ctx.Deadline()
	var hb atomic.Int64
	var t0 time.Time
	if e.Telemetry != nil {
		t0 = time.Now()
	}
	v, fail, abandoned := driver.Supervise(ctx, driver.Watchdog{Grace: e.Cfg.WatchdogGrace},
		deadline, &hb, UnitLabel(c), "check", func() Verdict {
			return e.checkOne(parent, ctx, stallCtx, g, c, sess, &hb, attempt)
		})
	if abandoned && pool != nil {
		pool.Replace(w)
	}
	if rec := e.Telemetry; rec != nil {
		rec.SolveSpan(w+1, t0, time.Now(), telemetry.SolveInfo{
			Unit: UnitLabel(c), Engine: e.Name(),
			Tier: v.Tier.String(), Status: v.Status.String(),
			Attempt: attempt, Abandoned: abandoned,
		})
		if abandoned {
			// Per-attempt tally: timing-dependent (an earlier rung may or
			// may not have been abandoned before a retry succeeded), so it
			// lives in Sched; the final-verdict Abandoned flag feeds the
			// deterministic watchdog.abandoned counter in recordVerdicts.
			rec.Sched("watchdog.abandoned_attempts", 1)
		}
	}
	return v, fail, abandoned
}

// checkOne runs a single attempt: parent is the caller's context, ctx
// the attempt's own (per-candidate deadline applied); distinguishing
// the two is what tells budget exhaustion from outside cancellation.
func (e *Fusion) checkOne(parent, ctx, stallCtx context.Context, g *pdg.Graph, c sparse.Candidate, sess *solver.Session, hb *atomic.Int64, attempt int) Verdict {
	// Bail on the parent only: an already-expired per-candidate deadline
	// (ctx) must still reach the exhaustion path below so the
	// degradation ladder gets its look.
	if parent.Err() != nil {
		return Verdict{Cand: c, Status: sat.Unknown}
	}
	var b *smt.Builder
	if sess != nil {
		// Begin before the fault-injection point: a contained panic below
		// must leave the session marked in-flight so its next Begin
		// rebuilds the (possibly corrupted) warm state.
		sess.Begin()
		b = sess.Builder()
	} else {
		b = smt.NewBuilder()
	}
	// The fused design's memory figure is the peak per-candidate working
	// set: with a warm session the builder persists, so the candidate's
	// own footprint is the growth it causes, not the accumulated cache.
	bytesBefore := b.EstimatedBytes()
	if faultinject.Enabled() {
		unit := UnitLabel(c)
		faultinject.Fire("panic.check", unit)
		faultinject.FireSolveAttempt(unit, attempt)
		faultinject.Delay(unit, 50*time.Millisecond)
	}
	opts := e.Opts
	opts.Solver = e.Cfg.options()
	opts.Solver.Unit = UnitLabel(c)
	opts.Solver.Heartbeat = hb
	opts.Solver.StallCtx = stallCtx
	opts.Session = sess
	opts.Constraints = c.Constraints(0)
	opts.Absint = e.Absint(g)
	if e.NoSimplify {
		opts.DisableAbsintSimplify = true
	}
	if e.Cfg.Budget.MaxHeapDelta > 0 && opts.MaxHeapDelta == 0 {
		opts.MaxHeapDelta = e.Cfg.Budget.MaxHeapDelta
	}
	if faultinject.Exhaust(UnitLabel(c)) {
		// Artificial solver-step exhaustion: the real budget machinery
		// runs and exhausts on the first branching decision.
		opts.Solver.MaxDecisions = 1
	}
	t0 := time.Now()
	r := fusioncore.Solve(ctx, b, g, []pdg.Path{c.Path}, opts)
	v := Verdict{
		Cand: c, Status: r.Status, Preprocessed: r.Preprocessed,
		DecidedByAbsint: r.DecidedByAbsint,
		DecidedByStride: r.DecidedByStride,
		DecidedByZone:   r.DecidedByZone,
		Simplified:      r.Simplified,
		PrunedGuards:    r.PrunedGuards,
		CacheHits:       r.CacheHits,
		CacheVars:       r.CacheVars,
		ReusedClauses:   r.ReusedClauses,
		Conflicts:       r.Conflicts,
		Decisions:       r.Decisions,
		Props:           r.Props,
		SolveTime:       time.Since(t0), ConditionSize: r.SizeBefore,
		Tier: tierOf(r.Status, r.DecidedByAbsint, r.DecidedByStride, r.DecidedByZone),
	}
	if rec := e.Telemetry; rec != nil {
		// Wall breakdown of the fused solve: residual construction vs the
		// solver stages, so a trace plus snapshot attributes cost without
		// per-candidate keys.
		rec.Wall("solve.build", r.BuildTime)
		rec.Wall("solve.local_preprocess", r.LocalPreprocessTime)
		rec.Wall("solve.preprocess", r.PreprocessTime)
		rec.Wall("solve.search", r.SearchTime)
		rec.Wall("solve.probe", r.ProbeTime)
	}
	// The per-candidate deadline firing (parent still alive) is budget
	// exhaustion too, even though the solver saw it as ctx cancellation.
	exhausted := r.Exhausted ||
		(r.Status == sat.Unknown && ctx.Err() != nil && parent.Err() == nil)
	if exhausted {
		// Degradation ladder: when the engine's own absint tier already
		// failed to refute before the solve, re-running it cannot help —
		// the verdict stays Unknown but is tagged degraded. Without the
		// tier, the cheap refuters get their first look now.
		if opts.Absint != nil {
			v.Degraded, v.Tier = true, TierUnknown
		} else {
			degradeVerdict(parent, e.fb.analysis(g), g, c, &v)
		}
	}
	e.mu.Lock()
	if d := b.EstimatedBytes() - bytesBefore; d > e.peak {
		e.peak = d
	}
	e.mu.Unlock()
	if sess != nil {
		// Deliberately not deferred: a contained panic above must skip
		// Finish so the poisoning stays observable.
		sess.Finish()
	}
	return v
}

// candidateCtx derives the per-candidate deadline context from ctx,
// honoring the tighter of Deadline and Budget.Deadline.
func (c SolverConfig) candidateCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	d := c.Deadline
	if c.Budget.Deadline > 0 && (d == 0 || c.Budget.Deadline < d) {
		d = c.Budget.Deadline
	}
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// ConditionBytes implements Engine: the fused design caches nothing, so
// only the peak per-candidate working set counts.
func (e *Fusion) ConditionBytes() int64 { return e.peak }

// --- Pinpoint ---

// Variant selects a Pinpoint condition-reduction strategy.
type Variant int

// Pinpoint variants.
const (
	Plain Variant = iota
	QE            // quantifier elimination on each condition
	LFS           // lightweight formula simplification
	HFS           // heavyweight (context) formula simplification
	AR            // abstraction refinement
)

func (v Variant) String() string {
	switch v {
	case QE:
		return "pinpoint+qe"
	case LFS:
		return "pinpoint+lfs"
	case HFS:
		return "pinpoint+hfs"
	case AR:
		return "pinpoint+ar"
	default:
		return "pinpoint"
	}
}

// Pinpoint is the conventional engine: eager per-context condition cloning
// (cond.Translate) over a long-lived builder that models the function
// summary cache — every condition ever computed stays resident, which is
// the memory behaviour Figure 1(c) measures.
type Pinpoint struct {
	Cfg     SolverConfig
	Variant Variant
	// Parallel is the worker count for Check; 0 or 1 means sequential.
	// The shared summary cache is single-writer, so candidates serialize
	// on mu around translation and solving — parallelism only overlaps
	// the per-candidate slicing with a running solve, faithfully to the
	// design's memory behaviour.
	Parallel int
	// NoSession disables the warm incremental solver session, rebuilding
	// the solving stack per query — the `-session=off` ablation.
	NoSession bool
	// Telemetry and OnVerdict mirror the Fusion fields: per-candidate and
	// per-attempt spans plus verdict counters, and a concurrent
	// final-verdict observer.
	Telemetry *telemetry.Recorder
	OnVerdict func(i int, v Verdict)
	// cache is the shared term store standing in for the summary cache.
	cache *smt.Builder
	// warm is the incremental session over cache. A single session, not a
	// pool: every candidate already serializes on mu. KeepBuilder pins
	// cache across session resets — swapping it would orphan the
	// summaries whose retention Figure 1(c) measures.
	warm *solver.Session
	// mu guards cache across concurrent candidates.
	mu sync.Mutex
	// QEBudget bounds projection in the QE variant.
	QEBudget int
	// fb is the lazily-built fallback analysis for the degradation
	// ladder (the conventional design has no absint tier of its own).
	fb fallbackTier
}

// NewPinpoint returns a conventional engine of the given variant.
func NewPinpoint(v Variant) *Pinpoint {
	return &Pinpoint{Variant: v, cache: smt.NewBuilder()}
}

// Name implements Engine.
func (e *Pinpoint) Name() string { return e.Variant.String() }

// ConditionBytes implements Engine.
func (e *Pinpoint) ConditionBytes() int64 { return e.cache.EstimatedBytes() }

// Check implements Engine.
func (e *Pinpoint) Check(ctx context.Context, g *pdg.Graph, cands []sparse.Candidate) []Verdict {
	vs, fails := driver.ParallelCheckWorkers(ctx, len(cands), e.Parallel, func(i, w int) Verdict {
		v := e.checkSupervised(ctx, g, cands[i], w)
		if e.OnVerdict != nil {
			e.OnVerdict(i, v)
		}
		return v
	})
	attachFailures(vs, fails, cands)
	recordVerdicts(e.Telemetry, vs)
	return vs
}

// checkSupervised is Pinpoint's retry ladder. It runs attempts inline —
// no watchdog goroutine: candidates serialize on the summary-cache
// lock, so a supervised abandonment would strand the lock-holding
// goroutine and deadlock every other candidate. The warm session still
// self-heals: a contained panic skips Finish, so the next attempt's
// Begin rebuilds the solving stack (attempt 2's "fresh cold session"),
// and attempt 3+ bypasses the session entirely for a one-shot solve.
func (e *Pinpoint) checkSupervised(parent context.Context, g *pdg.Graph, c sparse.Candidate, w int) Verdict {
	if rec := e.Telemetry; rec != nil {
		t0 := time.Now()
		defer func() { rec.Span(w+1, "candidate", UnitLabel(c), t0, time.Now()) }()
	}
	attempts := 1 + e.Cfg.Retries
	var lastFail *failure.UnitFailure
	for attempt := 1; attempt <= attempts; attempt++ {
		if parent.Err() != nil {
			return Verdict{Cand: c, Status: sat.Unknown, Attempts: attempt - 1}
		}
		var t0 time.Time
		if e.Telemetry != nil {
			t0 = time.Now()
		}
		v, fail, _ := driver.Supervise(parent, driver.Watchdog{}, time.Time{}, nil,
			UnitLabel(c), "check", func() Verdict {
				return e.checkOneVerdict(parent, g, c, attempt)
			})
		if rec := e.Telemetry; rec != nil {
			rec.SolveSpan(w+1, t0, time.Now(), telemetry.SolveInfo{
				Unit: UnitLabel(c), Engine: e.Name(),
				Tier: v.Tier.String(), Status: v.Status.String(),
				Attempt: attempt,
			})
		}
		if fail == nil {
			v.Attempts = attempt
			return v
		}
		lastFail = fail
	}
	lastFail.Attempts = attempts
	v := Verdict{Cand: c, Status: sat.Unknown, Attempts: attempts, Failure: lastFail}
	degradeVerdict(parent, e.fb.analysis(g), g, c, &v)
	return v
}

func (e *Pinpoint) checkOneVerdict(ctx context.Context, g *pdg.Graph, c sparse.Candidate, attempt int) Verdict {
	if ctx.Err() != nil {
		return Verdict{Cand: c, Status: sat.Unknown}
	}
	if faultinject.Enabled() {
		unit := UnitLabel(c)
		faultinject.Fire("panic.check", unit)
		faultinject.FireSolveAttempt(unit, attempt)
		faultinject.Delay(unit, 50*time.Millisecond)
	}
	t0 := time.Now()
	r, size := e.checkOne(ctx, g, c, attempt)
	v := Verdict{
		Cand: c, Status: r.Status, Preprocessed: r.Preprocessed,
		CacheHits:     r.CacheHits,
		CacheVars:     r.CacheVars,
		ReusedClauses: r.ReusedClauses,
		Conflicts:     r.Conflicts,
		Decisions:     r.Decisions,
		Props:         r.Props,
		SolveTime:     time.Since(t0), ConditionSize: size,
		Tier: tierOf(r.Status, false, false, false),
	}
	if rec := e.Telemetry; rec != nil {
		rec.Wall("solve.preprocess", r.PreprocessTime)
		rec.Wall("solve.search", r.SearchTime)
		rec.Wall("solve.probe", r.ProbeTime)
	}
	if r.Status == sat.Unknown && r.Exhausted {
		degradeVerdict(ctx, e.fb.analysis(g), g, c, &v)
	}
	return v
}

// session returns the warm stack over the summary cache, building it on
// first use. Callers must hold mu. Nil under the -session=off ablation.
func (e *Pinpoint) session() *solver.Session {
	if e.NoSession {
		return nil
	}
	if e.warm == nil {
		e.warm = solver.NewSessionWith(e.cache, solver.SessionConfig{KeepBuilder: true})
	}
	return e.warm
}

// SessionStats exposes the warm session's cumulative counters for
// reporting (zeroes when disabled or unused).
func (e *Pinpoint) SessionStats() (queries, cacheHits, evictions, resets int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.warm == nil {
		return
	}
	return e.warm.Queries, e.warm.CacheHits, e.warm.Evictions, e.warm.Resets
}

func (e *Pinpoint) checkOne(parent context.Context, g *pdg.Graph, c sparse.Candidate, attempt int) (solver.Result, int) {
	ctx, cancel := e.Cfg.candidateCtx(parent)
	defer cancel()
	sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
	c.ApplyConstraint(sl, 0)
	opts := e.Cfg.options()
	opts.Ctx = ctx
	opts.Unit = UnitLabel(c)
	if faultinject.Exhaust(opts.Unit) {
		opts.MaxDecisions = 1
	}

	// The shared summary cache is a single-writer term store: everything
	// from translation on runs under the cache lock.
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.cache
	sess := e.session()
	if attempt >= 3 {
		// Ladder escalation: past the warm and rebuilt-session rungs,
		// solve one-shot with no warm state at all.
		sess = nil
	}
	if sess != nil {
		sess.Begin()
	}
	// solve routes every query of this candidate — final solves and the
	// variants' internal ones alike — through the warm session when on.
	solve := func(q *smt.Term, o solver.Options) solver.Result {
		if sess != nil {
			return sess.Solve(q, o)
		}
		return solver.Solve(b, q, o)
	}

	var r solver.Result
	var size int
	if e.Variant == AR {
		r, size = e.checkRefined(b, sl, opts, solve)
	} else {
		tr := cond.Translate(b, sl)
		phi := tr.Phi
		switch e.Variant {
		case QE:
			phi = e.eliminate(ctx, b, phi, sl, solve)
		case LFS:
			phi = smt.SimplifyLocal(b, phi)
		case HFS:
			cs := &smt.ContextSimplifier{
				Solve: func(bb *smt.Builder, q *smt.Term) (bool, bool) {
					r := solve(q, opts)
					switch r.Status {
					case sat.Sat:
						return true, false
					case sat.Unsat:
						return false, false
					default:
						return false, true
					}
				},
				MaxQueries: 32,
			}
			phi = cs.Simplify(b, phi)
		}
		r = solve(phi, opts)
		size = r.SizeBefore
	}
	// The per-candidate deadline firing (parent still alive) counts as
	// budget exhaustion, not outside cancellation.
	if r.Status == sat.Unknown && !r.Exhausted &&
		ctx.Err() != nil && parent.Err() == nil {
		r.Exhausted = true
	}
	if sess != nil {
		// Not deferred: a contained panic must leave the session marked
		// in-flight so the next candidate rebuilds the warm state.
		sess.Finish()
	}
	return r, size
}

// eliminate projects the condition onto the root functions' variables —
// what a QE tactic is used for in summary-based analyzers. Projection over
// bit-vectors blows up; on budget exhaustion the original condition is
// solved instead (the time and memory have already been spent, which is
// the point the evaluation makes).
func (e *Pinpoint) eliminate(ctx context.Context, b *smt.Builder, phi *smt.Term, sl *pdg.Slice, solve func(*smt.Term, solver.Options) solver.Result) *smt.Term {
	roots := map[string]bool{}
	for _, f := range sl.Roots() {
		roots[f.Name+"."] = true
	}
	isRootVar := func(name string) bool {
		for p := range roots {
			if len(name) > len(p) && name[:len(p)] == p {
				return true
			}
		}
		return false
	}
	var drop []*smt.Term
	for _, v := range smt.Vars(phi) {
		if !isRootVar(v.Name) {
			drop = append(drop, v)
		}
	}
	budget := e.QEBudget
	if budget == 0 {
		budget = 64
	}
	opts := e.Cfg.options()
	opts.Ctx = ctx
	opts.Passes = solver.NoPasses
	opts.WantModel = true
	res, err := smt.Eliminate(b, phi, drop, smt.QEOptions{
		MaxCubes: budget,
		Solve: func(bb *smt.Builder, q *smt.Term) (sat.Status, smt.Assignment) {
			r := solve(q, opts)
			return r.Status, r.Model
		},
	})
	if err != nil {
		return phi
	}
	return res
}

// checkRefined is the abstraction-refinement loop: solve the condition
// truncated at increasing context depths, stopping early on unsat (the
// truncation over-approximates) and refining on sat until nothing was
// truncated.
func (e *Pinpoint) checkRefined(b *smt.Builder, sl *pdg.Slice, opts solver.Options, solve func(*smt.Term, solver.Options) solver.Result) (solver.Result, int) {
	size := 0
	for depth := 1; ; depth++ {
		tr := cond.TranslateDepth(b, sl, depth)
		r := solve(tr.Phi, opts)
		size = r.SizeBefore
		if r.Status == sat.Unsat || r.Status == sat.Unknown || !tr.Truncated {
			return r, size
		}
		if depth > 64 {
			// Refinement ran out of depth: the truncated Sat answers are
			// inconclusive, which is a budget-shaped outcome.
			r.Status, r.Preprocessed, r.Exhausted = sat.Unknown, false, true
			return r, size
		}
	}
}

// --- Infer ---

// Infer is a compositional, path-insensitive analyzer in the bi-abduction
// style: per-function specs are computed bottom-up over the whole program
// with callee specs inlined into callers — which duplicates them along
// every call chain, the memory behaviour §5.2 observes — and every
// syntactic flow is reported without a feasibility check (the precision
// loss behind its false-positive rate).
type Infer struct {
	// MaxSummaryDepth bounds how deep flows are tracked across calls;
	// deeper flows are missed (the recall loss of limited cross-file
	// reasoning).
	MaxSummaryDepth int
	// Parallel is the worker count for scoring candidates; 0 or 1 means
	// sequential. The spec join stays single-writer either way.
	Parallel int
	// SpecBudget caps the total materialized spec entries; exceeding it
	// models running out of memory (the paper's wine result). Zero means
	// 32 million entries.
	SpecBudget int64
	// Telemetry and OnVerdict mirror the Fusion fields; Infer never
	// solves, so only verdict counters and the observer apply.
	Telemetry *telemetry.Recorder
	OnVerdict func(i int, v Verdict)
	bytes     int64
	// specs holds the materialized per-function spec tables, kept alive
	// for the engine's lifetime like a summary cache.
	specs map[string][]specEntry
}

// specEntry is one pre/post fact of a compositional function spec.
type specEntry struct {
	vertexID int32
	kind     int8
	depth    int8
}

// NewInfer returns the Infer-like engine.
func NewInfer() *Infer { return &Infer{MaxSummaryDepth: 3} }

// Name implements Engine.
func (e *Infer) Name() string { return "infer" }

// ConditionBytes implements Engine.
func (e *Infer) ConditionBytes() int64 { return e.bytes }

// Check implements Engine.
func (e *Infer) Check(ctx context.Context, g *pdg.Graph, cands []sparse.Candidate) []Verdict {
	// The spec join is single-writer: build it once before fanning out;
	// scoring below only reads it.
	if ctx.Err() == nil {
		e.buildSpecs(g)
	}
	vs, fails := driver.ParallelCheck(ctx, len(cands), e.Parallel, func(i int) Verdict {
		c := cands[i]
		if ctx.Err() != nil {
			return Verdict{Cand: c, Status: sat.Unknown}
		}
		if faultinject.Enabled() {
			faultinject.Fire("panic.check", UnitLabel(c))
		}
		st := sat.Sat // no feasibility check: every flow is reported
		if crossings(c.Path) > e.MaxSummaryDepth {
			st = sat.Unsat // flow too deep for the compositional summary
		}
		v := Verdict{Cand: c, Status: st}
		if e.OnVerdict != nil {
			e.OnVerdict(i, v)
		}
		return v
	})
	attachFailures(vs, fails, cands)
	recordVerdicts(e.Telemetry, vs)
	return vs
}

func crossings(p pdg.Path) int {
	n := 0
	for _, s := range p {
		if s.Kind != pdg.StepIntra && s.Kind != pdg.StepStart {
			n++
		}
	}
	return n
}

// buildSpecs materializes a compositional spec table for every function:
// its own facts plus an inlined copy of each callee's spec per call site.
// Along deep call DAGs with several sites per callee this duplication is
// multiplicative, which is what makes summary-based analyzers memory-bound
// on large programs.
func (e *Infer) buildSpecs(g *pdg.Graph) {
	if e.specs != nil {
		return
	}
	budget := e.SpecBudget
	if budget <= 0 {
		budget = 32 << 20
	}
	e.specs = map[string][]specEntry{}
	var total int64
	var build func(f *ssa.Function, depth int) []specEntry
	build = func(f *ssa.Function, depth int) []specEntry {
		if s, ok := e.specs[f.Name]; ok {
			return s
		}
		var spec []specEntry
		for _, v := range f.Values {
			if total > budget {
				break
			}
			spec = append(spec, specEntry{vertexID: int32(v.ID), depth: int8(depth % 127)})
			total++
			if v.Op == ssa.OpCall && depth < 32 {
				callee := g.Callee(v)
				sub := build(callee, depth+1)
				if total+int64(len(sub)) > budget {
					total = budget + 1
					break
				}
				// Inline the callee spec at this call site.
				spec = append(spec, sub...)
				total += int64(len(sub))
			}
		}
		e.specs[f.Name] = spec
		return spec
	}
	for _, f := range g.Prog.Order {
		if total > budget {
			break
		}
		build(f, 0)
	}
	e.bytes = total * int64(unsafe.Sizeof(specEntry{}))
}

// SetParallel configures the Check worker count on engines that support
// one; other engines are left unchanged.
func SetParallel(e Engine, workers int) {
	switch x := e.(type) {
	case *Fusion:
		x.Parallel = workers
	case *Pinpoint:
		x.Parallel = workers
	case *Infer:
		x.Parallel = workers
	}
}

// recordVerdicts folds one Check's verdicts into the telemetry recorder.
// Verdict-derived tallies go to the deterministic Counters section — a
// Verdict is byte-identical for any worker count, so anything read off
// one is too. The SAT and cache cost counters go to Sched (they depend
// on how candidates were batched onto warm sessions), and total solve
// time to Wall. Runs after attachFailures so crashed slots are tallied.
func recordVerdicts(r *telemetry.Recorder, vs []Verdict) {
	if r == nil {
		return
	}
	for i := range vs {
		v := &vs[i]
		r.Count("verdicts.total", 1)
		r.Count("verdicts."+v.Status.String(), 1)
		r.Count("tier."+v.Tier.String(), 1)
		if v.Preprocessed {
			r.Count("solve.preprocessed", 1)
		}
		if v.DecidedByAbsint {
			r.Count("absint.decided", 1)
			if v.DecidedByStride {
				r.Count("absint.stride", 1)
			}
			if v.DecidedByZone {
				r.Count("absint.zone", 1)
			}
		}
		r.Count("simplify.vertices", int64(v.Simplified))
		r.Count("simplify.guards", int64(v.PrunedGuards))
		if v.Degraded {
			r.Count("degraded.total", 1)
			if v.Status == sat.Unsat {
				r.Count("degraded.unsat", 1)
			}
		}
		if v.Attempts > 1 {
			r.Count("retry.retried", 1)
			if v.Failure == nil && !v.Abandoned {
				r.Count("retry.recovered", 1)
			}
		}
		if v.Abandoned {
			r.Count("watchdog.abandoned", 1)
		}
		if v.Failure != nil {
			r.Count("failures.total", 1)
			r.Count("failure."+v.Failure.Digest(), 1)
		}
		r.Sched("sat.conflicts", v.Conflicts)
		r.Sched("sat.decisions", v.Decisions)
		r.Sched("sat.propagations", v.Props)
		r.Sched("session.cache_hits", v.CacheHits)
		r.Sched("session.reused_clauses", v.ReusedClauses)
		r.SchedMax("session.cache_vars_max", int64(v.CacheVars))
		r.Wall("solve.total", v.SolveTime)
	}
}

// SetTelemetry attaches a telemetry recorder to engines that record one;
// other engines are left unchanged.
func SetTelemetry(e Engine, r *telemetry.Recorder) {
	switch x := e.(type) {
	case *Fusion:
		x.Telemetry = r
	case *Pinpoint:
		x.Telemetry = r
	case *Infer:
		x.Telemetry = r
	}
}

// SetOnVerdict installs a per-verdict observer on engines that support
// one, reporting whether it was installed. Callers that journal every
// verdict must fall back to whole-run recording when it returns false
// (wrapper engines).
func SetOnVerdict(e Engine, fn func(int, Verdict)) bool {
	switch x := e.(type) {
	case *Fusion:
		x.OnVerdict = fn
	case *Pinpoint:
		x.OnVerdict = fn
	case *Infer:
		x.OnVerdict = fn
	default:
		return false
	}
	return true
}

// SetNoSession configures the warm-session ablation (-session=off) on
// engines that solve; other engines are left unchanged.
func SetNoSession(e Engine, off bool) {
	switch x := e.(type) {
	case *Fusion:
		x.NoSession = off
	case *Pinpoint:
		x.NoSession = off
	}
}

// All returns every engine the evaluation compares, freshly constructed.
func All() []Engine {
	return []Engine{
		NewFusion(),
		NewPinpoint(Plain),
		NewPinpoint(QE),
		NewPinpoint(LFS),
		NewPinpoint(HFS),
		NewPinpoint(AR),
		NewInfer(),
	}
}
