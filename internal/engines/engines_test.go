package engines_test

import (
	"context"
	"testing"
	"time"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

func buildGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

const mixedSrc = `
fun scale(x: int): int {
    var y: int = x * 2;
    return y;
}
fun f(a: int, b: int) {
    var p: ptr = null;
    var c: int = scale(a);
    var d: int = scale(b);
    if (c < d) {
        deref(p);       // feasible
    }
    var q: ptr = null;
    if (a > 10) {
        if (a < 5) {
            deref(q);   // infeasible
        }
    }
}
`

func candidates(t *testing.T, g *pdg.Graph) []sparse.Candidate {
	t.Helper()
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	return cands
}

func countStatus(vs []engines.Verdict, st sat.Status) int {
	n := 0
	for _, v := range vs {
		if v.Status == st {
			n++
		}
	}
	return n
}

func TestEngineNames(t *testing.T) {
	want := map[string]bool{
		"fusion": true, "pinpoint": true, "pinpoint+qe": true,
		"pinpoint+lfs": true, "pinpoint+hfs": true, "pinpoint+ar": true,
		"infer": true,
	}
	for _, e := range engines.All() {
		if !want[e.Name()] {
			t.Errorf("unexpected engine name %q", e.Name())
		}
		delete(want, e.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing engines: %v", want)
	}
}

func TestPathSensitiveEnginesAgree(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := candidates(t, g)
	for _, eng := range []engines.Engine{
		engines.NewFusion(),
		engines.NewPinpoint(engines.Plain),
		engines.NewPinpoint(engines.LFS),
		engines.NewPinpoint(engines.AR),
	} {
		vs := eng.Check(context.Background(), g, cands)
		if got := countStatus(vs, sat.Sat); got != 1 {
			t.Errorf("%s: reported %d bugs, want 1", eng.Name(), got)
		}
		if got := countStatus(vs, sat.Unsat); got != 1 {
			t.Errorf("%s: excluded %d flows, want 1", eng.Name(), got)
		}
	}
}

func TestInferIsPathInsensitive(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := candidates(t, g)
	vs := engines.NewInfer().Check(context.Background(), g, cands)
	if got := countStatus(vs, sat.Sat); got != 2 {
		t.Errorf("infer reported %d, want 2 (no feasibility filtering)", got)
	}
	inf := engines.NewInfer()
	inf.Check(context.Background(), g, cands)
	if inf.ConditionBytes() <= 0 {
		t.Error("infer must account for its spec tables")
	}
}

func TestInferMissesDeepFlows(t *testing.T) {
	// A null threaded through four call levels exceeds the compositional
	// summary depth.
	g := buildGraph(t, `
fun l1(p: ptr): ptr { return p; }
fun l2(p: ptr): ptr { return l1(p); }
fun l3(p: ptr): ptr { return l2(p); }
fun f() {
    var n: ptr = null;
    deref(l3(n));
}`)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	vs := engines.NewInfer().Check(context.Background(), g, cands)
	if vs[0].Status != sat.Unsat {
		t.Error("deep flow should be missed by the compositional engine")
	}
	// The path-sensitive engines do find it.
	fs := engines.NewFusion().Check(context.Background(), g, cands)
	if fs[0].Status != sat.Sat {
		t.Errorf("fusion: got %s, want sat", fs[0].Status)
	}
}

func TestPinpointCacheGrows(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := candidates(t, g)
	eng := engines.NewPinpoint(engines.Plain)
	if eng.ConditionBytes() != 0 {
		t.Error("fresh engine must have an empty cache")
	}
	eng.Check(context.Background(), g, cands)
	after1 := eng.ConditionBytes()
	if after1 <= 0 {
		t.Fatal("cache did not grow")
	}
	// Re-checking the same candidates reuses the cache (hash-consing):
	// little growth.
	eng.Check(context.Background(), g, cands)
	after2 := eng.ConditionBytes()
	if after2 < after1 {
		t.Error("cache shrank")
	}
	if float64(after2) > 1.5*float64(after1) {
		t.Errorf("cache should be reused on identical queries: %d -> %d", after1, after2)
	}
}

func TestFusionPeakMemorySmallerThanPinpoint(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := candidates(t, g)
	fus := engines.NewFusion()
	fus.Check(context.Background(), g, cands)
	pin := engines.NewPinpoint(engines.Plain)
	pin.Check(context.Background(), g, cands)
	if fus.ConditionBytes() > pin.ConditionBytes() {
		t.Errorf("fusion retained %d bytes, pinpoint %d: fused design should be smaller",
			fus.ConditionBytes(), pin.ConditionBytes())
	}
}

func TestQEVariantStillCorrect(t *testing.T) {
	g := buildGraph(t, `
fun f(a: int) {
    var p: ptr = null;
    if (a > 0) {
        if (a < 0) {
            deref(p);
        }
    }
}`)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	vs := engines.NewPinpoint(engines.QE).Check(context.Background(), g, cands)
	if vs[0].Status == sat.Sat {
		t.Error("QE variant reported an infeasible flow")
	}
}

func TestHFSVariantCorrect(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := candidates(t, g)
	vs := engines.NewPinpoint(engines.HFS).Check(context.Background(), g, cands)
	if got := countStatus(vs, sat.Sat); got != 1 {
		t.Errorf("HFS: reported %d bugs, want 1", got)
	}
}

func TestFusionAblationOptionsStillSound(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := candidates(t, g)
	for _, opts := range []fusioncore.Options{
		{DisableQuickPaths: true},
		{DisableLocalPreprocess: true},
		{Unoptimized: true},
		{DisableQuickPaths: true, DisableLocalPreprocess: true},
	} {
		eng := engines.NewFusion()
		eng.Opts = opts
		vs := eng.Check(context.Background(), g, cands)
		if got := countStatus(vs, sat.Sat); got != 1 {
			t.Errorf("opts %+v: reported %d bugs, want 1", opts, got)
		}
	}
}

// TestARRefinesThroughDepth: the contradiction is only visible two call
// levels down (g -> h, with h returning an even number), so the
// abstraction-refinement loop must deepen at least twice before it can
// refute.
func TestARRefinesThroughDepth(t *testing.T) {
	g := buildGraph(t, `
fun h(x: int): int {
    var y: int = x * 2;
    return y;
}
fun mid(x: int): int {
    var r: int = h(x);
    return r;
}
fun f(a: int) {
    var p: ptr = null;
    var r: int = mid(a);
    if (r == 7) {
        deref(p);
    }
}`)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	ar := engines.NewPinpoint(engines.AR)
	vs := ar.Check(context.Background(), g, cands)
	if vs[0].Status != sat.Unsat {
		t.Errorf("AR: got %s, want unsat (2x is even, never 7)", vs[0].Status)
	}
	// The full engines agree.
	if engines.NewFusion().Check(context.Background(), g, cands)[0].Status != sat.Unsat {
		t.Error("fusion disagrees")
	}
}

// TestCheckCancelledReturnsUnknownPartials: every engine honors a
// cancelled context by returning one Unknown verdict per candidate, in
// input order, promptly.
func TestCheckCancelledReturnsUnknownPartials(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range engines.All() {
		start := time.Now()
		vs := eng.Check(ctx, g, cands)
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("%s: cancelled Check ran %v", eng.Name(), elapsed)
		}
		if len(vs) != len(cands) {
			t.Fatalf("%s: got %d verdicts for %d candidates", eng.Name(), len(vs), len(cands))
		}
		for i, v := range vs {
			if v.Status != sat.Unknown {
				t.Errorf("%s: verdict %d is %s, want unknown", eng.Name(), i, v.Status)
			}
			if v.Cand.Sink != cands[i].Sink {
				t.Errorf("%s: verdict %d lost its candidate", eng.Name(), i)
			}
		}
	}
}

// TestSortVerdictsStable: verdicts order by sink then source position
// regardless of input order.
func TestSortVerdictsStable(t *testing.T) {
	g := buildGraph(t, mixedSrc)
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	vs := engines.NewFusion().Check(context.Background(), g, cands)
	rev := make([]engines.Verdict, len(vs))
	for i, v := range vs {
		rev[len(vs)-1-i] = v
	}
	engines.SortVerdicts(vs)
	engines.SortVerdicts(rev)
	for i := range vs {
		if vs[i].Cand.Sink != rev[i].Cand.Sink || vs[i].Cand.Source != rev[i].Cand.Source {
			t.Fatalf("sort not canonical at %d", i)
		}
	}
}
