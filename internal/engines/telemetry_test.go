package engines

import (
	"context"
	"testing"
	"time"

	"fusion/internal/faultinject"
	"fusion/internal/telemetry"
)

// TestWatchdogAbandonmentRecorded wedges the solve with stall.solve and
// requires the abandonment to be visible in the telemetry: the solve
// span carries the abandoned mark (the trace's red span), the
// per-attempt sched counter ticks, and the final-verdict counter lands
// in the deterministic section.
func TestWatchdogAbandonmentRecorded(t *testing.T) {
	g := resGraph(t, resHardSrc)
	cands := resCands(t, g, 1)
	if err := faultinject.ArmSpec("stall.solve"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	defer faultinject.SetStallCap(faultinject.SetStallCap(10 * time.Second))

	rec := telemetry.New()
	e := NewFusion()
	e.Telemetry = rec
	e.Cfg.Budget.Deadline = 150 * time.Millisecond
	e.Cfg.WatchdogGrace = 60 * time.Millisecond
	vs := e.Check(context.Background(), g, cands)
	if len(vs) != 1 || !vs[0].Abandoned {
		t.Fatalf("stalled unit not abandoned: %+v", vs)
	}

	if n := rec.AbandonedSpans(); n != 1 {
		t.Errorf("AbandonedSpans = %d, want 1", n)
	}
	s := rec.Snapshot()
	if s.Counters["watchdog.abandoned"] != 1 {
		t.Errorf("watchdog.abandoned = %d, want 1", s.Counters["watchdog.abandoned"])
	}
	if s.Sched["watchdog.abandoned_attempts"] < 1 {
		t.Errorf("watchdog.abandoned_attempts = %d, want >= 1", s.Sched["watchdog.abandoned_attempts"])
	}
	if s.Counters["verdicts.total"] != 1 {
		t.Errorf("verdicts.total = %d, want 1", s.Counters["verdicts.total"])
	}
}
