package engines_test

import (
	"context"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// The paper's Figure 6 scenario: a password and a destination flow into
// sendmsg(c, d) together. In jointSrc the two flows are individually
// feasible but mutually exclusive; in jointFeasibleSrc they can co-occur.
const jointSrc = `
fun f(a: int) {
    var pass: int = read_secret();
    var ip: int = read_secret();
    var c: int = 0;
    var d: int = 0;
    if (a > 0) {
        c = pass;
    }
    if (a < 0) {
        d = ip;
    }
    sendmsg(c, d);
}`

const jointFeasibleSrc = `
fun f(a: int) {
    var pass: int = read_secret();
    var ip: int = read_secret();
    var c: int = 0;
    var d: int = 0;
    if (a > 0) {
        c = pass;
        d = ip;
    }
    sendmsg(c, d);
}`

func jointVerdicts(t *testing.T, src string, eng engines.JointChecker) []engines.JointVerdict {
	t.Helper()
	g := buildGraph(t, src)
	cands := sparse.NewEngine(g).Run(checker.PrivateLeak())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
	return engines.CheckJoint(context.Background(), eng, g, cands)
}

func TestJointInfeasible(t *testing.T) {
	for _, eng := range []engines.JointChecker{
		engines.NewFusion(),
		engines.NewPinpoint(engines.Plain),
	} {
		vs := jointVerdicts(t, jointSrc, eng)
		if len(vs) != 1 {
			t.Fatalf("got %d joint groups, want 1", len(vs))
		}
		if vs[0].Status != sat.Unsat {
			t.Errorf("mutually exclusive flows must be jointly infeasible, got %s", vs[0].Status)
		}
		if len(vs[0].Group.Flows) != 2 {
			t.Errorf("group should hold both arguments' flows")
		}
	}
}

func TestJointFeasible(t *testing.T) {
	for _, eng := range []engines.JointChecker{
		engines.NewFusion(),
		engines.NewPinpoint(engines.Plain),
	} {
		vs := jointVerdicts(t, jointFeasibleSrc, eng)
		if len(vs) != 1 {
			t.Fatalf("got %d joint groups, want 1", len(vs))
		}
		if vs[0].Status != sat.Sat {
			t.Errorf("co-occurring flows must be jointly feasible, got %s", vs[0].Status)
		}
	}
}

func TestGroupBySinkShape(t *testing.T) {
	// A single-argument sink never forms a group.
	g := buildGraph(t, `
fun f() {
    var s: int = read_secret();
    send(s);
}`)
	cands := sparse.NewEngine(g).Run(checker.PrivateLeak())
	if got := engines.GroupBySink(cands); len(got) != 0 {
		t.Errorf("single-argument sink formed %d groups", len(got))
	}
	// Two flows into the same argument do not form a group either.
	g2 := buildGraph(t, `
fun f(a: int) {
    var s1: int = read_secret();
    var s2: int = read_secret();
    var x: int = s1;
    if (a > 0) {
        x = s2;
    }
    send(x);
}`)
	cands2 := sparse.NewEngine(g2).Run(checker.PrivateLeak())
	if len(cands2) < 2 {
		t.Fatalf("expected two flows into send, got %d", len(cands2))
	}
	if got := engines.GroupBySink(cands2); len(got) != 0 {
		t.Errorf("same-argument flows formed %d groups", len(got))
	}
}
