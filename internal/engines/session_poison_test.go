package engines

import (
	"context"
	"testing"

	"fusion/internal/faultinject"
	"fusion/internal/sat"
)

// TestSessionPoisonedByInjectedPanic arms a forced panic for the first
// candidate's check and runs sequentially, so every candidate shares ONE
// warm session: the panic must poison only that session — the next Begin
// takes the Reset path — and the surviving candidates' verdicts must match
// a session-free engine exactly.
func TestSessionPoisonedByInjectedPanic(t *testing.T) {
	g := resGraph(t, resMixedSrc)
	cands := resCands(t, g, 2)
	target := UnitLabel(cands[0])

	mk := map[string]func(off bool) Engine{
		"fusion":   func(off bool) Engine { e := NewFusion(); e.NoSession = off; return e },
		"pinpoint": func(off bool) Engine { e := NewPinpoint(Plain); e.NoSession = off; return e },
	}
	for name, fresh := range mk {
		// The one-shot oracle, unfaulted: the healthy verdicts.
		cold := fresh(true)
		SetParallel(cold, 1)
		want := cold.Check(context.Background(), g, cands)

		if err := faultinject.ArmSpec("panic.check:" + target); err != nil {
			t.Fatal(err)
		}
		warm := fresh(false)
		SetParallel(warm, 1)
		vs := warm.Check(context.Background(), g, cands)
		faultinject.Reset()

		if len(vs) != len(cands) {
			t.Fatalf("%s: %d verdicts for %d candidates", name, len(vs), len(cands))
		}
		if vs[0].Failure == nil || vs[0].Status != sat.Unknown {
			t.Fatalf("%s: armed panic not contained in slot 0: %+v", name, vs[0])
		}
		for i := 1; i < len(vs); i++ {
			if vs[i].Failure != nil {
				t.Fatalf("%s: panic leaked into slot %d: %v", name, i, vs[i].Failure)
			}
			if vs[i].Status != want[i].Status || vs[i].Tier != want[i].Tier {
				t.Errorf("%s: slot %d verdict differs after a poisoned session: warm (%v, %s), cold (%v, %s)",
					name, i, vs[i].Status, vs[i].Tier, want[i].Status, want[i].Tier)
			}
		}
		// Fusion fires the injected panic after Session.Begin, so the
		// session is mid-query when it unwinds: the next candidate's Begin
		// must detect the poisoned state and reset. Pinpoint fires before
		// the session is entered, so it has nothing in flight to poison.
		if name == "fusion" {
			queries, _, _, resets := warm.(*Fusion).SessionStats()
			if resets == 0 {
				t.Errorf("fusion: poisoned session never took the Reset path")
			}
			if queries == 0 {
				t.Errorf("fusion: surviving candidate never used the warm session")
			}
		}
	}
}

// TestSessionVerdictsAgreeAcrossWorkers checks the determinism contract the
// per-worker session pool relies on: which candidates share a session
// depends on the worker count, so the verdicts (and tiers) must be
// identical at workers 1 and 8, with sessions on and off.
func TestSessionVerdictsAgreeAcrossWorkers(t *testing.T) {
	g := resGraph(t, resMixedSrc)
	cands := resCands(t, g, 2)
	for _, off := range []bool{false, true} {
		var base []Verdict
		for _, workers := range []int{1, 8} {
			e := NewFusion()
			e.NoSession = off
			e.Parallel = workers
			vs := e.Check(context.Background(), g, cands)
			if base == nil {
				base = vs
				continue
			}
			for i := range vs {
				if vs[i].Status != base[i].Status || vs[i].Tier != base[i].Tier {
					t.Errorf("session=%v: slot %d differs across worker counts: (%v, %s) vs (%v, %s)",
						!off, i, vs[i].Status, vs[i].Tier, base[i].Status, base[i].Tier)
				}
			}
		}
	}
}
