package engines

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"fusion/internal/faultinject"
	"fusion/internal/sat"
)

// resHardSrc guards its deref with a*a == 1201²: satisfiable, but the
// concrete probe cannot guess a square root and unit propagation cannot
// build one, so the query reliably enters the CDCL search loop — which
// is where stall.solve wedges and where heartbeats are published.
const resHardSrc = `
fun f(a: int) {
    var p: ptr = null;
    if (a * a == 1442401) {
        deref(p);
    }
}
`

// waitGoroutines polls until the goroutine count settles back to the
// baseline, failing the test if orphans are still alive after 5s.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestWatchdogAbandonsStalledSolve wedges the solve with stall.solve:
// the search blocks without heartbeat progress, and the watchdog must
// hard-abandon the unit roughly Grace past its deadline instead of
// waiting out the full stall. The orphaned goroutine unwinds once the
// attempt's context is cancelled.
func TestWatchdogAbandonsStalledSolve(t *testing.T) {
	g := resGraph(t, resHardSrc)
	cands := resCands(t, g, 1)
	if err := faultinject.ArmSpec("stall.solve"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	defer faultinject.SetStallCap(faultinject.SetStallCap(10 * time.Second))
	before := runtime.NumGoroutine()

	e := NewFusion()
	e.Cfg.Budget.Deadline = 150 * time.Millisecond
	e.Cfg.WatchdogGrace = 60 * time.Millisecond
	start := time.Now()
	vs := e.Check(context.Background(), g, cands)
	elapsed := time.Since(start)

	if len(vs) != 1 {
		t.Fatalf("%d verdicts", len(vs))
	}
	v := vs[0]
	if !v.Abandoned || v.Failure != nil {
		t.Fatalf("stalled unit not abandoned: %+v", v)
	}
	if v.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (no retries configured)", v.Attempts)
	}
	if !v.Degraded || v.Status == sat.Sat {
		t.Errorf("abandoned unit must fall to the degradation ladder: %+v", v)
	}
	// Deadline 150ms + grace 60ms: abandonment must land well before the
	// 10s stall cap would have released the solve on its own.
	if elapsed > 5*time.Second {
		t.Errorf("abandonment took %v, want deadline+grace order", elapsed)
	}
	waitGoroutines(t, before)
}

// TestRetryRecoversInjectedSolvePanic arms panic.solve:1 for one unit:
// its first attempt crashes, the retry on a fresh cold session succeeds,
// and the final verdict matches an un-faulted run — identically at
// workers 1 and 8.
func TestRetryRecoversInjectedSolvePanic(t *testing.T) {
	g := resGraph(t, resMixedSrc)
	cands := resCands(t, g, 2)
	target := UnitLabel(cands[0])

	type row struct {
		st       sat.Status
		tier     Tier
		degraded bool
	}
	baseline := func() []row {
		e := NewFusion()
		var rows []row
		for _, v := range e.Check(context.Background(), g, cands) {
			rows = append(rows, row{v.Status, v.Tier, v.Degraded})
		}
		return rows
	}()

	if err := faultinject.ArmSpec("panic.solve:1:" + target); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	for _, workers := range []int{1, 8} {
		e := NewFusion()
		e.Cfg.Retries = 1
		e.Parallel = workers
		vs := e.Check(context.Background(), g, cands)
		for i, v := range vs {
			if v.Failure != nil || v.Abandoned {
				t.Fatalf("workers=%d slot %d: retry did not recover: %+v", workers, i, v)
			}
			wantAttempts := 1
			if UnitLabel(cands[i]) == target {
				wantAttempts = 2
			}
			if v.Attempts != wantAttempts {
				t.Errorf("workers=%d slot %d: Attempts = %d, want %d", workers, i, v.Attempts, wantAttempts)
			}
			if got := (row{v.Status, v.Tier, v.Degraded}); got != baseline[i] {
				t.Errorf("workers=%d slot %d: recovered verdict %+v differs from baseline %+v", workers, i, got, baseline[i])
			}
		}
	}
}

// TestRepeatedPoisoningExhaustsLadder arms a panic that fires on every
// attempt of one unit: the full ladder (warm, cold, one-shot) is
// climbed and exhausted, yielding exactly one UnitFailure that records
// the attempt count — and no goroutine outlives the batch.
func TestRepeatedPoisoningExhaustsLadder(t *testing.T) {
	g := resGraph(t, resMixedSrc)
	cands := resCands(t, g, 2)
	target := UnitLabel(cands[0])
	if err := faultinject.ArmSpec("panic.check:" + target); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	before := runtime.NumGoroutine()

	mk := map[string]func() Engine{
		"fusion":   func() Engine { return NewFusion() },
		"pinpoint": func() Engine { return NewPinpoint(Plain) },
	}
	for name, fresh := range mk {
		for _, workers := range []int{1, 8} {
			e := fresh()
			SetParallel(e, workers)
			SetSupervision(e, 2, 0)
			vs := e.Check(context.Background(), g, cands)
			failures := 0
			for i, v := range vs {
				if UnitLabel(cands[i]) != target {
					if v.Failure != nil {
						t.Errorf("%s workers=%d: healthy unit failed: %+v", name, workers, v)
					}
					continue
				}
				if v.Failure == nil {
					t.Fatalf("%s workers=%d: poisoned unit has no failure: %+v", name, workers, v)
				}
				failures++
				if v.Failure.Attempts != 3 || v.Attempts != 3 {
					t.Errorf("%s workers=%d: attempts = %d/%d, want 3/3 (retries=2)",
						name, workers, v.Failure.Attempts, v.Attempts)
				}
				if v.Status == sat.Sat {
					t.Errorf("%s workers=%d: exhausted ladder claimed Sat", name, workers)
				}
			}
			if failures != 1 {
				t.Errorf("%s workers=%d: %d failed verdicts, want exactly 1", name, workers, failures)
			}
		}
	}
	waitGoroutines(t, before)
}

// TestSupervisionConfigNeverChangesVerdicts: with no fault armed, every
// combination of worker count, retry budget, and watchdog grace must
// produce byte-identical verdicts — clean first attempts never re-run,
// so the supervision machinery is invisible until something breaks.
func TestSupervisionConfigNeverChangesVerdicts(t *testing.T) {
	g := resGraph(t, resMixedSrc)
	cands := resCands(t, g, 2)
	var base string
	for _, workers := range []int{1, 8} {
		for _, retries := range []int{0, 2} {
			for _, grace := range []time.Duration{0, 20 * time.Millisecond} {
				e := NewFusion()
				e.Parallel = workers
				SetSupervision(e, retries, grace)
				var rows string
				for _, v := range e.Check(context.Background(), g, cands) {
					if v.Failure != nil {
						t.Fatalf("workers=%d retries=%d grace=%v: unexpected failure %v",
							workers, retries, grace, v.Failure)
					}
					rows += fmt.Sprintf("%s %s degraded=%v attempts=%d abandoned=%v\n",
						v.Status, v.Tier, v.Degraded, v.Attempts, v.Abandoned)
				}
				if base == "" {
					base = rows
				} else if rows != base {
					t.Errorf("workers=%d retries=%d grace=%v: verdicts differ:\n%s\nvs baseline\n%s",
						workers, retries, grace, rows, base)
				}
			}
		}
	}
}
