package engines

import (
	"context"
	"regexp"
	"testing"
	"time"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/faultinject"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// resInfeasibleSrc has exactly one null-deref candidate, guarded by a
// contradiction the zone/interval tiers can refute.
const resInfeasibleSrc = `
fun f(a: int) {
    var q: ptr = null;
    if (a > 10) {
        if (a < 5) {
            deref(q);
        }
    }
}
`

// resMixedSrc has one feasible and one infeasible candidate.
const resMixedSrc = `
fun scale(x: int): int {
    var y: int = x * 2;
    return y;
}
fun f(a: int, b: int) {
    var p: ptr = null;
    var c: int = scale(a);
    var d: int = scale(b);
    if (c < d) {
        deref(p);
    }
    var q: ptr = null;
    if (a > 10) {
        if (a < 5) {
            deref(q);
        }
    }
}
`

func resGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "res", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

func resCands(t *testing.T, g *pdg.Graph, want int) []sparse.Candidate {
	t.Helper()
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) != want {
		t.Fatalf("got %d candidates, want %d", len(cands), want)
	}
	return cands
}

func TestUnitLabelFormat(t *testing.T) {
	g := resGraph(t, resInfeasibleSrc)
	c := resCands(t, g, 1)[0]
	label := UnitLabel(c)
	if ok, _ := regexp.MatchString(`^null-deref \d+:\d+<-\d+:\d+#\d+$`, label); !ok {
		t.Errorf("unexpected label %q", label)
	}
	if UnitLabel(c) != label {
		t.Error("label must be stable")
	}
}

func TestTierOf(t *testing.T) {
	if got := tierOf(sat.Unknown, true, true, true); got != TierUnknown {
		t.Errorf("undecided: %v", got)
	}
	if got := tierOf(sat.Unsat, true, false, true); got != TierRelational {
		t.Errorf("zone: %v", got)
	}
	if got := tierOf(sat.Unsat, true, true, false); got != TierStride {
		t.Errorf("stride: %v", got)
	}
	if got := tierOf(sat.Unsat, true, false, false); got != TierInterval {
		t.Errorf("interval: %v", got)
	}
	if got := tierOf(sat.Sat, false, false, false); got != TierExact {
		t.Errorf("exact: %v", got)
	}
	for tier, want := range map[Tier]string{
		TierUnknown: "unknown", TierInterval: "interval",
		TierStride:     "stride",
		TierRelational: "relational", TierExact: "exact",
	} {
		if tier.String() != want {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, tier.String(), want)
		}
	}
}

func TestSetBudget(t *testing.T) {
	b := Budget{Steps: 7, Conflicts: 9, Deadline: time.Second, MaxHeapDelta: 11}
	if b.IsZero() || (Budget{}).IsZero() == false {
		t.Fatal("IsZero misreports")
	}
	f, p := NewFusion(), NewPinpoint(Plain)
	SetBudget(f, b)
	SetBudget(p, b)
	SetBudget(NewInfer(), b) // no bit-precise tier: must be a no-op, not a panic
	if f.Cfg.Budget != b || p.Cfg.Budget != b {
		t.Errorf("budget not wired: fusion %+v pinpoint %+v", f.Cfg.Budget, p.Cfg.Budget)
	}
}

func TestDegradeVerdictLadder(t *testing.T) {
	g := resGraph(t, resInfeasibleSrc)
	c := resCands(t, g, 1)[0]
	an := absint.Analyze(g)

	v := Verdict{Cand: c, Status: sat.Unknown}
	degradeVerdict(context.Background(), an, g, c, &v)
	if !v.Degraded {
		t.Fatal("ladder must tag the verdict degraded")
	}
	if v.Status != sat.Unsat {
		t.Fatalf("contradictory guard must be refuted by the cheap tiers, got %s", v.Status)
	}
	if v.Tier != TierRelational && v.Tier != TierInterval {
		t.Errorf("degraded refutation must carry an abstract tier, got %s", v.Tier)
	}

	// Without an analysis the verdict stays honest Unknown.
	v2 := Verdict{Cand: c, Status: sat.Unknown}
	degradeVerdict(context.Background(), nil, g, c, &v2)
	if !v2.Degraded || v2.Status != sat.Unknown || v2.Tier != TierUnknown {
		t.Errorf("nil analysis: %+v", v2)
	}

	// A cancelled context skips the re-check entirely.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v3 := Verdict{Cand: c, Status: sat.Unknown}
	degradeVerdict(ctx, an, g, c, &v3)
	if !v3.Degraded || v3.Status != sat.Unknown {
		t.Errorf("cancelled ctx: %+v", v3)
	}
}

// TestDeadlineExhaustionDegrades drives the full ladder end to end: a
// per-candidate deadline that expires immediately exhausts the
// bit-precise tier, and the fallback refuters still decide the
// contradictory guard — identically at any worker count.
func TestDeadlineExhaustionDegrades(t *testing.T) {
	g := resGraph(t, resMixedSrc)
	cands := resCands(t, g, 2)
	type row struct {
		st       sat.Status
		tier     Tier
		degraded bool
	}
	runs := map[int][]row{}
	for _, workers := range []int{1, 8} {
		e := NewFusion()
		e.Cfg.Budget.Deadline = time.Nanosecond
		e.Parallel = workers
		vs := e.Check(context.Background(), g, cands)
		var rows []row
		for _, v := range vs {
			if v.Failure != nil {
				t.Fatalf("workers=%d: unexpected failure %v", workers, v.Failure)
			}
			if !v.Degraded {
				t.Errorf("workers=%d: expired deadline must degrade every candidate: %+v", workers, v)
			}
			rows = append(rows, row{v.Status, v.Tier, v.Degraded})
		}
		runs[workers] = rows
	}
	for i := range runs[1] {
		if runs[1][i] != runs[8][i] {
			t.Errorf("slot %d: workers=1 %+v vs workers=8 %+v", i, runs[1][i], runs[8][i])
		}
	}
	// The contradictory candidate is refuted by a cheap tier even though
	// the exact tier never ran; the feasible one stays Unknown (the
	// ladder never claims Sat).
	unsat, unknown := 0, 0
	for _, r := range runs[1] {
		switch r.st {
		case sat.Unsat:
			unsat++
			if r.tier != TierRelational && r.tier != TierInterval {
				t.Errorf("degraded refutation at tier %s", r.tier)
			}
		case sat.Unknown:
			unknown++
		case sat.Sat:
			t.Error("ladder must never report Sat")
		}
	}
	if unsat != 1 || unknown != 1 {
		t.Errorf("got %d unsat / %d unknown, want 1 / 1", unsat, unknown)
	}
}

// TestInjectedPanicContained arms a forced panic for one specific unit
// and checks the batch completes with only that slot failed — with the
// same digest and identical healthy verdicts at workers 1 and 8.
func TestInjectedPanicContained(t *testing.T) {
	g := resGraph(t, resMixedSrc)
	cands := resCands(t, g, 2)
	target := UnitLabel(cands[0])
	if err := faultinject.ArmSpec("panic.check:" + target); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	mk := map[string]func() Engine{
		"fusion":   func() Engine { return NewFusion() },
		"pinpoint": func() Engine { return NewPinpoint(Plain) },
		"infer":    func() Engine { return NewInfer() },
	}
	for name, fresh := range mk {
		var base []Verdict
		var baseDigest string
		for _, workers := range []int{1, 8} {
			e := fresh()
			SetParallel(e, workers)
			vs := e.Check(context.Background(), g, cands)
			if len(vs) != len(cands) {
				t.Fatalf("%s workers=%d: %d verdicts for %d candidates", name, workers, len(vs), len(cands))
			}
			for i, v := range vs {
				hit := UnitLabel(cands[i]) == target
				if hit != (v.Failure != nil) {
					t.Fatalf("%s workers=%d slot %d: failure mismatch (want failed=%v): %+v", name, workers, i, hit, v.Failure)
				}
				if v.Failure != nil {
					if v.Status != sat.Unknown || v.Failure.Unit != target || v.Failure.Stage != "check" {
						t.Errorf("%s workers=%d: bad failed verdict: %+v", name, workers, v)
					}
				}
			}
			if base == nil {
				base = vs
				baseDigest = vs[0].Failure.Digest()
				continue
			}
			if d := vs[0].Failure.Digest(); d != baseDigest {
				t.Errorf("%s: digest differs across worker counts: %s vs %s", name, d, baseDigest)
			}
			for i := range vs {
				if vs[i].Status != base[i].Status || vs[i].Tier != base[i].Tier {
					t.Errorf("%s: slot %d differs across worker counts: %+v vs %+v", name, i, vs[i], base[i])
				}
			}
		}
	}
}

// TestSolverExhaustInjection arms artificial step exhaustion for every
// unit: the real budget machinery runs out on the first decision and the
// degradation ladder takes over. The guard a*a == 1201² is satisfiable
// but needs genuine CDCL decisions: the 32-try concrete probe does not
// guess a square root and unit propagation alone cannot build one, so
// the injected one-decision budget reliably fires.
func TestSolverExhaustInjection(t *testing.T) {
	g := resGraph(t, `
fun f(a: int) {
    var p: ptr = null;
    if (a * a == 1442401) {
        deref(p);
    }
}
`)
	cands := resCands(t, g, 1)
	if err := faultinject.ArmSpec("solver.exhaust"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()

	for _, workers := range []int{1, 8} {
		e := NewFusion()
		e.Parallel = workers
		vs := e.Check(context.Background(), g, cands)
		degraded := 0
		for _, v := range vs {
			if v.Failure != nil {
				t.Fatalf("workers=%d: exhaustion must degrade, not fail: %v", workers, v.Failure)
			}
			if v.Degraded {
				degraded++
				if v.Status == sat.Sat {
					t.Error("degraded verdicts must never claim Sat")
				}
			}
		}
		if degraded == 0 {
			t.Errorf("workers=%d: no verdict degraded under injected exhaustion", workers)
		}
	}
}
