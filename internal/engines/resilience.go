package engines

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fusion/internal/absint"
	"fusion/internal/failure"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// Tier labels the precision of the procedure that produced a verdict,
// in ascending precision order. The zero value is TierUnknown so that
// synthesized verdicts (cancelled or failed slots) carry an honest tag.
type Tier int

// Precision tiers.
const (
	// TierUnknown: nothing decided feasibility — the candidate is
	// undecided, or the engine never consults the tiered stack (Infer).
	TierUnknown Tier = iota
	// TierInterval: the interval abstract domain refuted the query.
	TierInterval
	// TierStride: the congruence (stride) domain, in reduced product
	// with intervals, refuted it — cheaper than the zone tier, more
	// precise than intervals alone.
	TierStride
	// TierRelational: the zone (difference-bound) domain refuted it.
	TierRelational
	// TierExact: the bit-precise solve (preprocessing, probe, or CDCL
	// search) decided it.
	TierExact
)

func (t Tier) String() string {
	switch t {
	case TierInterval:
		return "interval"
	case TierStride:
		return "stride"
	case TierRelational:
		return "relational"
	case TierExact:
		return "exact"
	default:
		return "unknown"
	}
}

// Budget bounds the per-candidate work of the bit-precise tier. Unlike
// a wall-clock timeout, Steps, Conflicts, and MaxHeapDelta are exact
// counts, so exhaustion — and therefore the degradation ladder — is
// deterministic across machines and worker counts. Zero fields are
// unbounded.
type Budget struct {
	// Steps bounds SAT branching decisions per candidate.
	Steps int64
	// Conflicts bounds SAT conflicts per candidate.
	Conflicts int64
	// Deadline bounds each candidate's whole check by wall clock.
	Deadline time.Duration
	// MaxHeapDelta bounds the bytes of new formula a candidate's
	// residual construction may allocate in the shared builder.
	MaxHeapDelta int64
}

// IsZero reports an entirely unbounded budget.
func (b Budget) IsZero() bool { return b == Budget{} }

// SetBudget configures the per-candidate budget on engines that have a
// bit-precise tier; other engines are left unchanged.
func SetBudget(e Engine, b Budget) {
	switch x := e.(type) {
	case *Fusion:
		x.Cfg.Budget = b
	case *Pinpoint:
		x.Cfg.Budget = b
	}
}

// SetSupervision configures the retry ladder and watchdog grace window
// on engines that solve; other engines are left unchanged. With no
// fault armed, verdicts are byte-identical for any retries value: a
// clean first attempt never re-runs.
func SetSupervision(e Engine, retries int, grace time.Duration) {
	switch x := e.(type) {
	case *Fusion:
		x.Cfg.Retries, x.Cfg.WatchdogGrace = retries, grace
	case *Pinpoint:
		x.Cfg.Retries, x.Cfg.WatchdogGrace = retries, grace
	}
}

// UnitLabel names one candidate for failure reports and fault-injection
// matching: checker name, sink position, source position, and argument
// index, all stable under enumeration order and worker count.
func UnitLabel(c sparse.Candidate) string {
	name := ""
	if c.Spec != nil {
		name = c.Spec.Name
	}
	return fmt.Sprintf("%s %d:%d<-%d:%d#%d", name,
		c.Sink.Pos.Line, c.Sink.Pos.Col,
		c.Source.Pos.Line, c.Source.Pos.Col, c.ArgIdx)
}

// tierOf tags a bit-precise tier outcome: a decided status is Exact
// unless the abstract tier short-circuited the solve.
func tierOf(st sat.Status, byAbsint, byStride, byZone bool) Tier {
	switch {
	case st == sat.Unknown:
		return TierUnknown
	case byZone:
		return TierRelational
	case byStride:
		return TierStride
	case byAbsint:
		return TierInterval
	default:
		return TierExact
	}
}

// attachFailures converts contained per-candidate crashes into verdict
// slots: the failed candidate keeps its input slot with an Unknown
// status and the failure attached, so one crash degrades one unit and
// the batch stays index-stable.
func attachFailures(vs []Verdict, fails []*failure.UnitFailure, cands []sparse.Candidate) {
	for i, f := range fails {
		if f == nil {
			continue
		}
		f.Unit, f.Stage = UnitLabel(cands[i]), "check"
		vs[i] = Verdict{Cand: cands[i], Status: sat.Unknown, Failure: f}
	}
}

// fallbackTier lazily builds one abstract interpretation per graph for
// the degradation ladder of engines that do not already run the tier.
type fallbackTier struct {
	mu sync.Mutex
	g  *pdg.Graph
	an *absint.Analysis
}

func (f *fallbackTier) analysis(g *pdg.Graph) *absint.Analysis {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.g != g {
		f.an = absint.Analyze(g)
		f.g = g
	}
	return f.an
}

// degradeVerdict is the graceful-degradation ladder: after the
// bit-precise tier exhausted its budget, re-check the candidate with
// the zone-then-interval refuters for a best-effort verdict. A
// refutation is sound at any tier (the domains over-approximate), so a
// degraded Unsat is still a real Unsat — it is tagged with the tier
// that earned it instead of collapsing to a bare Unknown. The ladder
// never reports Sat: feasibility claims stay with the exact tier.
func degradeVerdict(ctx context.Context, an *absint.Analysis, g *pdg.Graph, c sparse.Candidate, v *Verdict) {
	v.Degraded = true
	v.Tier = TierUnknown
	if an == nil || ctx.Err() != nil {
		return
	}
	sl := pdg.ComputeSlice(g, []pdg.Path{c.Path})
	c.ApplyConstraint(sl, 0)
	if refuted, byStride, byZone := an.RefuteSliceTieredCtx(ctx, sl); refuted {
		v.Status = sat.Unsat
		switch {
		case byZone:
			v.Tier = TierRelational
		case byStride:
			v.Tier = TierStride
		default:
			v.Tier = TierInterval
		}
	}
}
