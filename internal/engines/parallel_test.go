package engines_test

import (
	"testing"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/progen"
	"fusion/internal/sparse"

	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/sema"
	"fusion/internal/ssa"
	"fusion/internal/unroll"
)

// TestParallelFusionMatchesSequential checks that the parallel worker pool
// returns exactly the sequential verdicts in order. Run with -race this
// also exercises the engine's synchronization.
func TestParallelFusionMatchesSequential(t *testing.T) {
	src, _, _ := progen.Subjects[9].Build(0.05)
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	norm := unroll.Normalize(prog, unroll.Options{})
	g := pdg.Build(ssa.MustBuild(norm))
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) < 2 {
		t.Fatal("need several candidates")
	}

	seq := engines.NewFusion()
	want := seq.Check(g, cands)

	par := engines.NewFusion()
	par.Parallel = 4
	got := par.Check(g, cands)

	if len(got) != len(want) {
		t.Fatalf("verdict count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Status != want[i].Status || got[i].Cand.Sink != want[i].Cand.Sink {
			t.Errorf("verdict %d differs: %s vs %s", i, got[i].Status, want[i].Status)
		}
	}
	if par.ConditionBytes() <= 0 {
		t.Error("parallel engine lost its memory accounting")
	}
}
