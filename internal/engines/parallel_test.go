package engines_test

import (
	"context"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/progen"
	"fusion/internal/sparse"
)

// TestParallelFusionMatchesSequential checks that the parallel worker pool
// returns exactly the sequential verdicts in order. Run with -race this
// also exercises the engine's synchronization.
func TestParallelFusionMatchesSequential(t *testing.T) {
	src, _, _ := progen.Subjects[9].Build(0.05)
	pr, err := driver.Compile(context.Background(), driver.Source{Name: "subject", Text: src}, driver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := pr.Graph
	cands := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(cands) < 2 {
		t.Fatal("need several candidates")
	}

	seq := engines.NewFusion()
	want := seq.Check(context.Background(), g, cands)

	par := engines.NewFusion()
	par.Parallel = 4
	got := par.Check(context.Background(), g, cands)

	if len(got) != len(want) {
		t.Fatalf("verdict count: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Status != want[i].Status || got[i].Cand.Sink != want[i].Cand.Sink {
			t.Errorf("verdict %d differs: %s vs %s", i, got[i].Status, want[i].Status)
		}
	}
	if par.ConditionBytes() <= 0 {
		t.Error("parallel engine lost its memory accounting")
	}
}
