package engines

import (
	"context"
	"sort"
	"time"

	"fusion/internal/cond"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
)

// The paper's §3.1 taint example checks two data-dependence paths at once:
// a password and a destination flowing into send(c, d) is only a leak if
// both paths are *simultaneously* feasible — the conjunction of their path
// conditions must be satisfiable. This file implements that joint checking
// on top of both engine designs.

// JointChecker is implemented by engines that can decide the joint
// feasibility of several flows.
type JointChecker interface {
	CheckJointPaths(ctx context.Context, g *pdg.Graph, paths []pdg.Path) sat.Status
}

// CheckJointPaths implements JointChecker for the fused engine.
func (e *Fusion) CheckJointPaths(ctx context.Context, g *pdg.Graph, paths []pdg.Path) sat.Status {
	b := smt.NewBuilder()
	opts := e.Opts
	opts.Solver = e.Cfg.options()
	r := fusioncore.Solve(ctx, b, g, paths, opts)
	e.mu.Lock()
	if b.EstimatedBytes() > e.peak {
		e.peak = b.EstimatedBytes()
	}
	e.mu.Unlock()
	return r.Status
}

// CheckJointPaths implements JointChecker for the conventional engine.
func (e *Pinpoint) CheckJointPaths(ctx context.Context, g *pdg.Graph, paths []pdg.Path) sat.Status {
	opts := e.Cfg.options()
	opts.Ctx = ctx
	e.mu.Lock()
	defer e.mu.Unlock()
	sl := pdg.ComputeSlice(g, paths)
	tr := cond.Translate(e.cache, sl)
	return solver.Solve(e.cache, tr.Phi, opts).Status
}

// JointGroup is a set of candidate flows into distinct arguments of the
// same sink call.
type JointGroup struct {
	Sink  *ssa.Value
	Flows []sparse.Candidate
}

// GroupBySink collects candidates that target distinct argument positions
// of the same sink vertex; only sinks receiving two or more tracked
// arguments form a group. When several flows reach the same argument, one
// representative per argument is kept (joint checking asks whether the
// arguments can be tainted together, not which path does it).
func GroupBySink(cands []sparse.Candidate) []JointGroup {
	type key struct {
		sink *ssa.Value
	}
	byArg := map[key]map[int]sparse.Candidate{}
	for _, c := range cands {
		k := key{c.Sink}
		if byArg[k] == nil {
			byArg[k] = map[int]sparse.Candidate{}
		}
		if _, dup := byArg[k][c.ArgIdx]; !dup {
			byArg[k][c.ArgIdx] = c
		}
	}
	var out []JointGroup
	for k, args := range byArg {
		if len(args) < 2 {
			continue
		}
		g := JointGroup{Sink: k.sink}
		idxs := make([]int, 0, len(args))
		for i := range args {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			g.Flows = append(g.Flows, args[i])
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Sink, out[j].Sink
		if a.Fn.Name != b.Fn.Name {
			return a.Fn.Name < b.Fn.Name
		}
		return a.ID < b.ID
	})
	return out
}

// JointVerdict is the result of checking one group.
type JointVerdict struct {
	Group  JointGroup
	Status sat.Status
	Time   time.Duration
}

// CheckJoint decides every multi-argument sink group with the given
// engine. A cancelled ctx yields Unknown for the remaining groups.
func CheckJoint(ctx context.Context, eng JointChecker, g *pdg.Graph, cands []sparse.Candidate) []JointVerdict {
	groups := GroupBySink(cands)
	out := make([]JointVerdict, 0, len(groups))
	for _, grp := range groups {
		if ctx.Err() != nil {
			out = append(out, JointVerdict{Group: grp, Status: sat.Unknown})
			continue
		}
		paths := make([]pdg.Path, len(grp.Flows))
		for i, f := range grp.Flows {
			paths[i] = f.Path
		}
		t0 := time.Now()
		st := eng.CheckJointPaths(ctx, g, paths)
		out = append(out, JointVerdict{Group: grp, Status: st, Time: time.Since(t0)})
	}
	return out
}
