package engines

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fusion/internal/cond"
	"fusion/internal/driver"
	"fusion/internal/failure"
	"fusion/internal/fusioncore"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
)

// The paper's §3.1 taint example checks two data-dependence paths at once:
// a password and a destination flowing into send(c, d) is only a leak if
// both paths are *simultaneously* feasible — the conjunction of their path
// conditions must be satisfiable. This file implements that joint checking
// on top of both engine designs.

// JointChecker is implemented by engines that can decide the joint
// feasibility of several flows.
type JointChecker interface {
	CheckJointPaths(ctx context.Context, g *pdg.Graph, paths []pdg.Path) sat.Status
}

// CheckJointPaths implements JointChecker for the fused engine. Joint
// queries route through slot 0 of the same warm session pool Check
// uses, so they share term encodings and learned clauses with the
// per-candidate queries — and inherit the pool's poisoning semantics: a
// contained panic skips Finish and the next Begin rebuilds the stack.
// Not safe concurrently with Check (slot 0 belongs to worker 0 there);
// CheckJoint runs groups sequentially after the per-candidate pass.
func (e *Fusion) CheckJointPaths(ctx context.Context, g *pdg.Graph, paths []pdg.Path) sat.Status {
	var b *smt.Builder
	var sess *solver.Session
	if pool := e.sessionPool(1); pool != nil {
		sess = pool.At(0)
		sess.Begin()
		b = sess.Builder()
	} else {
		b = smt.NewBuilder()
	}
	bytesBefore := b.EstimatedBytes()
	opts := e.Opts
	opts.Solver = e.Cfg.options()
	opts.Session = sess
	r := fusioncore.Solve(ctx, b, g, paths, opts)
	e.mu.Lock()
	if d := b.EstimatedBytes() - bytesBefore; d > e.peak {
		e.peak = d
	}
	e.mu.Unlock()
	if sess != nil {
		// Not deferred: a contained panic must leave the session marked
		// in-flight so the next Begin rebuilds the warm state.
		sess.Finish()
	}
	return r.Status
}

// CheckJointPaths implements JointChecker for the conventional engine,
// solving over the same warm session as the per-candidate checks so the
// summary cache's encodings are reused instead of rebuilt cold.
func (e *Pinpoint) CheckJointPaths(ctx context.Context, g *pdg.Graph, paths []pdg.Path) sat.Status {
	opts := e.Cfg.options()
	opts.Ctx = ctx
	e.mu.Lock()
	defer e.mu.Unlock()
	sl := pdg.ComputeSlice(g, paths)
	tr := cond.Translate(e.cache, sl)
	if sess := e.session(); sess != nil {
		sess.Begin()
		r := sess.Solve(tr.Phi, opts)
		sess.Finish()
		return r.Status
	}
	return solver.Solve(e.cache, tr.Phi, opts).Status
}

// JointGroup is a set of candidate flows into distinct arguments of the
// same sink call.
type JointGroup struct {
	Sink  *ssa.Value
	Flows []sparse.Candidate
}

// GroupBySink collects candidates that target distinct argument positions
// of the same sink vertex; only sinks receiving two or more tracked
// arguments form a group. When several flows reach the same argument, one
// representative per argument is kept (joint checking asks whether the
// arguments can be tainted together, not which path does it).
func GroupBySink(cands []sparse.Candidate) []JointGroup {
	type key struct {
		sink *ssa.Value
	}
	byArg := map[key]map[int]sparse.Candidate{}
	for _, c := range cands {
		k := key{c.Sink}
		if byArg[k] == nil {
			byArg[k] = map[int]sparse.Candidate{}
		}
		if _, dup := byArg[k][c.ArgIdx]; !dup {
			byArg[k][c.ArgIdx] = c
		}
	}
	var out []JointGroup
	for k, args := range byArg {
		if len(args) < 2 {
			continue
		}
		g := JointGroup{Sink: k.sink}
		idxs := make([]int, 0, len(args))
		for i := range args {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			g.Flows = append(g.Flows, args[i])
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Sink, out[j].Sink
		if a.Fn.Name != b.Fn.Name {
			return a.Fn.Name < b.Fn.Name
		}
		return a.ID < b.ID
	})
	return out
}

// JointVerdict is the result of checking one group.
type JointVerdict struct {
	Group  JointGroup
	Status sat.Status
	Time   time.Duration
	// Attempts counts retry-ladder runs (1 for a clean first attempt);
	// Failure records the last contained crash when the ladder exhausted.
	Attempts int
	Failure  *failure.UnitFailure
}

// jointRetries reads the engine's retry-ladder height, for engines that
// carry a SolverConfig.
func jointRetries(eng JointChecker) int {
	switch x := eng.(type) {
	case *Fusion:
		return x.Cfg.Retries
	case *Pinpoint:
		return x.Cfg.Retries
	}
	return 0
}

// jointUnitLabel names one group for failure reports, stable under
// enumeration order: the sink's function and vertex plus the flow count.
func jointUnitLabel(grp JointGroup) string {
	return fmt.Sprintf("joint %s#%d*%d", grp.Sink.Fn.Name, grp.Sink.ID, len(grp.Flows))
}

// CheckJoint decides every multi-argument sink group with the given
// engine, under the same containment and retry ladder as per-candidate
// checks: a contained panic poisons the engine's warm session (the next
// Begin rebuilds it, which is the cold-retry rung) and the group is
// re-run up to the engine's retries. A cancelled ctx yields Unknown for
// the remaining groups.
func CheckJoint(ctx context.Context, eng JointChecker, g *pdg.Graph, cands []sparse.Candidate) []JointVerdict {
	groups := GroupBySink(cands)
	retries := jointRetries(eng)
	out := make([]JointVerdict, 0, len(groups))
	for _, grp := range groups {
		if ctx.Err() != nil {
			out = append(out, JointVerdict{Group: grp, Status: sat.Unknown})
			continue
		}
		paths := make([]pdg.Path, len(grp.Flows))
		for i, f := range grp.Flows {
			paths[i] = f.Path
		}
		jv := JointVerdict{Group: grp, Status: sat.Unknown}
		t0 := time.Now()
		for attempt := 1; attempt <= 1+retries; attempt++ {
			if ctx.Err() != nil {
				break
			}
			st, fail, _ := driver.Supervise(ctx, driver.Watchdog{}, time.Time{}, nil,
				jointUnitLabel(grp), "joint", func() sat.Status {
					return eng.CheckJointPaths(ctx, g, paths)
				})
			jv.Attempts, jv.Failure = attempt, fail
			if fail == nil {
				jv.Status = st
				break
			}
			jv.Failure.Attempts = attempt
		}
		jv.Time = time.Since(t0)
		out = append(out, jv)
	}
	return out
}
