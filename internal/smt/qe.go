package smt

import (
	"errors"

	"fusion/internal/sat"
)

// Quantifier elimination for the Pinpoint+QE baseline variant. Given a
// conjunction φ and a set of variables to eliminate (the callee-internal
// variables of a summary), Eliminate returns a formula over the remaining
// variables equivalent to ∃vars.φ.
//
// The procedure mirrors the practical behaviour of a general QE tactic:
// cheap substitution when an eliminated variable has a solvable defining
// equation, and model-enumeration projection otherwise. Projection is
// worst-case exponential in the solution count — QE over bit-vectors is
// inherently super-polynomial — which is precisely why the paper's
// Pinpoint+QE variant exhausts its memory budget on all but the smallest
// subject (§5.1).

// ErrQEBudget reports that elimination exceeded its work budget.
var ErrQEBudget = errors.New("smt: quantifier elimination budget exhausted")

// QEOptions configure Eliminate.
type QEOptions struct {
	// MaxCubes bounds the projection enumeration; beyond it, elimination
	// fails with ErrQEBudget. Zero means 64.
	MaxCubes int
	// Solve decides subformulas during projection and must return a model
	// covering every free variable of the query when satisfiable; wire it
	// to the standalone solver with preprocessing disabled, since
	// preprocessing may drop pinned variables from the model. Required.
	Solve func(b *Builder, phi *Term) (st sat.Status, model Assignment)
}

// Eliminate computes ∃vars.φ, or returns ErrQEBudget when projection blows
// up.
func Eliminate(b *Builder, phi *Term, vars []*Term, opts QEOptions) (*Term, error) {
	maxCubes := opts.MaxCubes
	if maxCubes <= 0 {
		maxCubes = 64
	}
	elim := map[*Term]bool{}
	for _, v := range vars {
		elim[v] = true
	}

	// Phase 1: substitution. A conjunct v = t with v eliminable and t free
	// of eliminable variables defines v away.
	for changed := true; changed; {
		changed = false
		for _, cj := range Conjuncts(phi) {
			if cj.Op != OpEq {
				continue
			}
			for _, ord := range [2][2]*Term{{cj.Args[0], cj.Args[1]}, {cj.Args[1], cj.Args[0]}} {
				v, t := ord[0], ord[1]
				if v.Op != OpVar || !elim[v] || mentionsAny(t, elim) {
					continue
				}
				phi = Substitute(b, phi, map[*Term]*Term{v: t})
				delete(elim, v)
				changed = true
				break
			}
			if changed {
				break
			}
		}
	}
	// Drop eliminable variables that no longer occur.
	remaining := map[*Term]bool{}
	for _, v := range Vars(phi) {
		if elim[v] {
			remaining[v] = true
		}
	}
	if len(remaining) == 0 {
		return phi, nil
	}

	// Phase 2: projection by model enumeration over the *kept* variables:
	// ∃e.φ = the disjunction of all assignments to the kept variables that
	// extend to a model. Each discovered model contributes one cube and is
	// blocked; bit-vector domains make the cube count explode, faithfully
	// reproducing QE's cost profile.
	var keep []*Term
	for _, v := range Vars(phi) {
		if !remaining[v] {
			keep = append(keep, v)
		}
	}
	work := phi
	cubes := b.False()
	for i := 0; ; i++ {
		if i >= maxCubes {
			return nil, ErrQEBudget
		}
		st, model := opts.Solve(b, work)
		if st == sat.Unsat {
			break
		}
		if st != sat.Sat {
			return nil, ErrQEBudget
		}
		if len(keep) == 0 {
			return b.True(), nil
		}
		cube := b.True()
		for _, v := range keep {
			cube = b.And(cube, b.Eq(v, b.Const(model[v], v.Width)))
		}
		cubes = b.Or(cubes, cube)
		work = b.And(work, b.Not(cube))
	}
	return cubes, nil
}

func mentionsAny(t *Term, vars map[*Term]bool) bool {
	for _, v := range Vars(t) {
		if vars[v] {
			return true
		}
	}
	return false
}
