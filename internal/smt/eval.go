package smt

import "fmt"

// Assignment maps variable terms to concrete values (masked to the
// variable's width).
type Assignment map[*Term]uint32

// Eval computes the concrete value of t under the assignment. Unassigned
// variables evaluate to zero.
func Eval(t *Term, a Assignment) uint32 {
	memo := map[*Term]uint32{}
	var ev func(*Term) uint32
	ev = func(t *Term) uint32 {
		if v, ok := memo[t]; ok {
			return v
		}
		var v uint32
		switch t.Op {
		case OpVar:
			v = mask(a[t], t.Width)
		case OpConst:
			v = t.Const
		case OpNot:
			v = mask(^ev(t.Args[0]), t.Width)
		case OpNeg:
			v = mask(-ev(t.Args[0]), t.Width)
		case OpAnd:
			v = mask(^uint32(0), t.Width)
			for _, x := range t.Args {
				v &= ev(x)
			}
		case OpOr:
			for _, x := range t.Args {
				v |= ev(x)
			}
		case OpIte:
			if ev(t.Args[0]) == 1 {
				v = ev(t.Args[1])
			} else {
				v = ev(t.Args[2])
			}
		default:
			x, y := ev(t.Args[0]), ev(t.Args[1])
			f, ok := foldBinary(t.Op, x, y, t.Args[0].Width)
			if !ok {
				panic(fmt.Sprintf("smt: eval: unhandled operator %s", t.Op))
			}
			v = f
		}
		memo[t] = v
		return v
	}
	return ev(t)
}

// Substitute returns t with every occurrence of the given variables
// replaced, rebuilding (and re-simplifying) the term bottom-up in b.
func Substitute(b *Builder, t *Term, sub map[*Term]*Term) *Term {
	memo := map[*Term]*Term{}
	var walk func(*Term) *Term
	walk = func(t *Term) *Term {
		if r, ok := memo[t]; ok {
			return r
		}
		var r *Term
		if s, ok := sub[t]; ok {
			r = s
		} else {
			switch t.Op {
			case OpVar, OpConst:
				r = t
			default:
				args := make([]*Term, len(t.Args))
				changed := false
				for i, a := range t.Args {
					args[i] = walk(a)
					if args[i] != a {
						changed = true
					}
				}
				if !changed {
					r = t
				} else {
					r = Rebuild(b, t.Op, t.Width, args)
				}
			}
		}
		memo[t] = r
		return r
	}
	return walk(t)
}

// Rebuild constructs op(args) through the Builder's canonicalizing
// constructors.
func Rebuild(b *Builder, op Op, width int, args []*Term) *Term {
	switch op {
	case OpNot:
		return b.Not(args[0])
	case OpNeg:
		return b.Neg(args[0])
	case OpAnd:
		return b.And(args...)
	case OpOr:
		return b.Or(args...)
	case OpXor:
		return b.Xor(args[0], args[1])
	case OpAdd:
		return b.Add(args[0], args[1])
	case OpSub:
		return b.Sub(args[0], args[1])
	case OpMul:
		return b.Mul(args[0], args[1])
	case OpUDiv:
		return b.UDiv(args[0], args[1])
	case OpURem:
		return b.URem(args[0], args[1])
	case OpShl:
		return b.Shl(args[0], args[1])
	case OpLshr:
		return b.Lshr(args[0], args[1])
	case OpEq:
		return b.Eq(args[0], args[1])
	case OpUlt:
		return b.Ult(args[0], args[1])
	case OpUle:
		return b.Ule(args[0], args[1])
	case OpSlt:
		return b.Slt(args[0], args[1])
	case OpSle:
		return b.Sle(args[0], args[1])
	case OpIte:
		return b.Ite(args[0], args[1], args[2])
	default:
		panic(fmt.Sprintf("smt: rebuild: unhandled operator %s", op))
	}
}

// RenameVars returns t with every variable renamed through fn, creating
// fresh variables in b. It is how conditions are cloned per calling context.
func RenameVars(b *Builder, t *Term, fn func(name string) string) *Term {
	sub := map[*Term]*Term{}
	for _, v := range Vars(t) {
		sub[v] = b.Var(fn(v.Name), v.Width)
	}
	return Substitute(b, t, sub)
}
