package smt_test

import (
	"math/rand"
	"testing"

	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
)

func TestConstPropForward(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	phi := b.And(
		b.Eq(x, b.Const(5, 32)),
		b.Eq(y, b.Add(x, b.Const(1, 32))),
		b.Ult(y, b.Const(10, 32)),
	)
	got := smt.Preprocess(b, phi, []smt.Pass{{Name: "cp", Run: smt.ConstProp}})
	if !got.IsTrue() {
		t.Errorf("constant propagation should decide: got %v", got)
	}
}

func TestConstPropBackward(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	// x + 3 = 10 solves backward to x = 7, then 7 < 5 folds to false.
	phi := b.And(
		b.Eq(b.Add(x, b.Const(3, 32)), b.Const(10, 32)),
		b.Ult(x, b.Const(5, 32)),
	)
	got := smt.ConstProp(b, phi)
	if !got.IsFalse() {
		t.Errorf("backward constant propagation should refute: got %v", got)
	}
}

func TestConstPropThroughOddMul(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	// 3x = 12 gives x = 4 (3 is invertible mod 2^32).
	phi := b.And(
		b.Eq(b.Mul(b.Const(3, 32), x), b.Const(12, 32)),
		b.Eq(x, b.Const(4, 32)),
	)
	if got := smt.ConstProp(b, phi); !got.IsTrue() {
		t.Errorf("odd multiplier inversion failed: got %v", got)
	}
	phi2 := b.And(
		b.Eq(b.Mul(b.Const(3, 32), x), b.Const(12, 32)),
		b.Eq(x, b.Const(5, 32)),
	)
	if got := smt.ConstProp(b, phi2); !got.IsFalse() {
		t.Errorf("conflicting pin should refute: got %v", got)
	}
}

func TestConstPropBooleanPins(t *testing.T) {
	b := smt.NewBuilder()
	p, q := b.Var("p", 1), b.Var("q", 1)
	phi := b.And(p, b.Not(q), b.Or(q, p))
	if got := smt.ConstProp(b, phi); !got.IsTrue() {
		t.Errorf("boolean pinning failed: got %v", got)
	}
	phi2 := b.And(p, b.Not(p))
	if got := smt.ConstProp(b, phi2); !got.IsFalse() {
		t.Errorf("p and !p should refute: got %v", got)
	}
}

func TestEqualityProp(t *testing.T) {
	b := smt.NewBuilder()
	x, y, z := b.Var("x", 32), b.Var("y", 32), b.Var("z", 32)
	phi := b.And(
		b.Eq(x, y),
		b.Eq(y, z),
		b.Ult(x, z),
	)
	got := smt.EqualityProp(b, phi)
	// After merging x=y=z, x < z folds to false.
	if !got.IsFalse() {
		t.Errorf("equality propagation should refute x<z under x=y=z: got %v", got)
	}
}

func TestStrengthReduce(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	got := smt.StrengthReduce(b, b.Eq(b.Mul(x, b.Const(8, 32)), b.Const(0, 32)))
	hasShl := false
	var walk func(*smt.Term)
	walk = func(t *smt.Term) {
		if t.Op == smt.OpShl {
			hasShl = true
		}
		for _, a := range t.Args {
			walk(a)
		}
	}
	walk(got)
	if !hasShl {
		t.Errorf("mul by 8 should become a shift: got %v", got)
	}
	// Semantics preserved.
	for _, v := range []uint32{0, 1, 0x20000000, 7} {
		if smt.Eval(got, smt.Assignment{x: v}) != boolToBit(v*8 == 0) {
			t.Errorf("strength reduction changed semantics at x=%d", v)
		}
	}
	// x % 16 becomes a mask.
	got2 := smt.StrengthReduce(b, b.Eq(b.URem(x, b.Const(16, 32)), b.Const(3, 32)))
	for _, v := range []uint32{3, 19, 4} {
		if smt.Eval(got2, smt.Assignment{x: v}) != boolToBit(v%16 == 3) {
			t.Errorf("mask reduction changed semantics at x=%d", v)
		}
	}
}

func TestGaussianElimination(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	// x + y = 10 and x - 2y = 4: eliminating x leaves -3y = -6, and 3 is
	// invertible mod 2^32, so y = 2 and x = 8. Then x < y refutes.
	phi := b.And(
		b.Eq(b.Add(x, y), b.Const(10, 32)),
		b.Eq(b.Sub(x, b.Mul(b.Const(2, 32), y)), b.Const(4, 32)),
		b.Ult(x, y),
	)
	got := smt.Preprocess(b, phi, []smt.Pass{
		{Name: "gauss", Run: smt.GaussianEliminate},
		{Name: "cp", Run: smt.ConstProp},
	})
	if !got.IsFalse() {
		t.Errorf("gaussian elimination should refute: got %v", got)
	}
}

func TestGaussianEvenCoefficientNeedsSearch(t *testing.T) {
	// x + y = 10 and x - y = 4 leave an even-coefficient residue
	// (2y = 6 has two solutions mod 2^32), so preprocessing alone cannot
	// decide x < y; the full solver must still refute it.
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	phi := b.And(
		b.Eq(b.Add(x, y), b.Const(10, 32)),
		b.Eq(b.Sub(x, y), b.Const(4, 32)),
		b.Ult(x, y),
	)
	r := solver.Solve(b, phi, solver.Options{})
	if r.Status != sat.Unsat {
		t.Errorf("got %s, want unsat", r.Status)
	}
}

func TestGaussianUnderdetermined(t *testing.T) {
	b := smt.NewBuilder()
	x, y, z := b.Var("x", 32), b.Var("y", 32), b.Var("z", 32)
	// One equation, three unknowns: must still substitute one pivot.
	phi := b.And(
		b.Eq(b.Add(x, b.Add(y, z)), b.Const(10, 32)),
		b.Ult(y, b.Const(100, 32)),
	)
	got := smt.GaussianEliminate(b, phi)
	if got == phi {
		t.Errorf("expected a pivot substitution to change the formula")
	}
	// Equisatisfiability sanity: both must be satisfiable.
	r := solver.Solve(b, got, solver.Options{Passes: solver.NoPasses})
	if r.Status != sat.Sat {
		t.Errorf("rewritten formula must remain satisfiable, got %s", r.Status)
	}
}

func TestUnconstrainedBasic(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	// x < y with both free: unconstrained, drops to true.
	if got := smt.UnconstrainedElim(b, b.Ult(x, y)); !got.IsTrue() {
		t.Errorf("x < y with free x, y should be decided: got %v", got)
	}
	// x + 1 = y: equality with an unconstrained side.
	if got := smt.UnconstrainedElim(b, b.Eq(b.Add(x, b.Const(1, 32)), y)); !got.IsTrue() {
		t.Errorf("x+1 = y should be decided: got %v", got)
	}
}

func TestUnconstrainedRespectsSharing(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	// x occurs in both conjuncts: not unconstrained, nothing may be
	// dropped.
	phi := b.And(b.Ult(x, y), b.Eq(x, b.Const(0, 32)))
	got := smt.UnconstrainedElim(b, phi)
	if got.IsTrue() {
		t.Error("shared variable wrongly treated as unconstrained")
	}
}

// TestUnconstrainedPaperExample reproduces §2: the path condition of
// Figure 1(b) is decided by unconstrained-value propagation without any
// SAT search.
func TestUnconstrainedPaperExample(t *testing.T) {
	b := smt.NewBuilder()
	w := 32
	v := func(n string) *smt.Term { return b.Var(n, w) }
	two := b.Const(2, w)
	a, bb, c, d := v("a"), v("b"), v("c"), v("d")
	x1, y1, z1 := v("x1"), v("y1"), v("z1")
	x2, y2, z2 := v("x2"), v("y2"), v("z2")
	e := b.Var("e", 1)
	phi := b.And(
		b.Eq(y1, b.Mul(x1, two)), b.Eq(z1, y1), // bar at call site 1
		b.Eq(a, x1), b.Eq(c, z1),
		b.Eq(y2, b.Mul(x2, two)), b.Eq(z2, y2), // bar at call site 2
		b.Eq(bb, x2), b.Eq(d, z2),
		e, b.Eq(e, b.Slt(c, d)),
	)
	got := smt.Preprocess(b, phi, smt.DefaultPasses())
	if !got.IsTrue() {
		t.Fatalf("the Figure 1(b) condition should be decided by preprocessing, got %v", got)
	}
	// Confirm against the full solver for good measure.
	r := solver.Solve(b, phi, solver.Options{Passes: solver.NoPasses})
	if r.Status != sat.Sat {
		t.Fatalf("ground truth: expected sat, got %s", r.Status)
	}
}

// TestPreprocessEquisatisfiable is the global safety property: on random
// conjunctions, the full pipeline must preserve satisfiability as judged by
// the pass-free solver.
func TestPreprocessEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 80; iter++ {
		b := smt.NewBuilder()
		w := 8
		vars := []*smt.Term{b.Var("a", w), b.Var("b", w), b.Var("c", w)}
		term := func(depth int) *smt.Term {
			var rec func(d int) *smt.Term
			rec = func(d int) *smt.Term {
				if d == 0 || rng.Intn(3) == 0 {
					if rng.Intn(2) == 0 {
						return vars[rng.Intn(len(vars))]
					}
					return b.Const(rng.Uint32()%16, w)
				}
				x, y := rec(d-1), rec(d-1)
				switch rng.Intn(5) {
				case 0:
					return b.Add(x, y)
				case 1:
					return b.Sub(x, y)
				case 2:
					return b.Mul(x, b.Const(rng.Uint32()%8, w))
				case 3:
					return b.Xor(x, y)
				default:
					return b.Neg(x)
				}
			}
			return rec(depth)
		}
		var conjs []*smt.Term
		for i := 0; i < 2+rng.Intn(4); i++ {
			x, y := term(2), term(2)
			switch rng.Intn(3) {
			case 0:
				conjs = append(conjs, b.Eq(x, y))
			case 1:
				conjs = append(conjs, b.Ult(x, y))
			default:
				conjs = append(conjs, b.Sle(x, y))
			}
		}
		phi := b.And(conjs...)
		want := solver.Solve(b, phi, solver.Options{Passes: solver.NoPasses}).Status
		pre := smt.Preprocess(b, phi, smt.DefaultPasses())
		var got sat.Status
		switch {
		case pre.IsTrue():
			got = sat.Sat
		case pre.IsFalse():
			got = sat.Unsat
		default:
			got = solver.Solve(b, pre, solver.Options{Passes: solver.NoPasses}).Status
		}
		if got != want {
			t.Fatalf("iter %d: preprocessing changed satisfiability: %s -> %s\nphi: %v\npre: %v",
				iter, want, got, phi, pre)
		}
	}
}

func TestSolveEndToEnd(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	phi := b.And(
		b.Eq(b.Add(x, y), b.Const(100, 32)),
		b.Ult(x, b.Const(20, 32)),
		b.Ult(y, b.Const(90, 32)),
	)
	r := solver.Solve(b, phi, solver.Options{WantModel: true})
	if r.Status != sat.Sat {
		t.Fatalf("got %s, want sat", r.Status)
	}
	if r.Model == nil {
		t.Fatal("WantModel must produce a model")
	}
	if smt.Eval(phi, r.Model) != 1 {
		t.Error("model does not satisfy the formula")
	}
	// An unsatisfiable variant.
	phi2 := b.And(
		b.Eq(b.Add(x, y), b.Const(100, 32)),
		b.Ult(x, b.Const(20, 32)),
		b.Ult(y, b.Const(50, 32)),
	)
	if r2 := solver.Solve(b, phi2, solver.Options{}); r2.Status != sat.Unsat {
		t.Fatalf("got %s, want unsat", r2.Status)
	}
}

func TestSolvePreprocessedFlag(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	r := solver.Solve(b, b.Ult(x, y), solver.Options{NoProbe: true})
	if r.Status != sat.Sat || !r.Preprocessed {
		t.Errorf("free comparison should be decided in preprocessing: %+v", r)
	}
	r2 := solver.Solve(b, b.Ult(x, y), solver.Options{Passes: solver.NoPasses, NoProbe: true})
	if r2.Status != sat.Sat || r2.Preprocessed {
		t.Errorf("with passes and probing disabled the SAT core must run: %+v", r2)
	}
	r3 := solver.Solve(b, b.Ult(x, y), solver.Options{Passes: solver.NoPasses})
	if r3.Status != sat.Sat || !r3.DecidedByProbe {
		t.Errorf("the probe should decide a free comparison: %+v", r3)
	}
}

func boolToBit(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}
