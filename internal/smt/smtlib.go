package smt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// SMT-LIB v2 interchange for the bit-vector fragment this package uses.
// Terms are width-1-boolean internally; on export, predicates become Bool
// via (ite ... #b1 #b0) unwrapping where possible, and the top-level
// assertion compares against #b1. ToSMTLIB output is accepted by standard
// solvers (QF_BV); ParseSMTLIB reads the same subset back, which the tests
// use as a round-trip property.

// ToSMTLIB renders a complete SMT-LIB v2 script deciding phi.
func ToSMTLIB(phi *Term) string {
	var b strings.Builder
	b.WriteString("(set-logic QF_BV)\n")
	vars := Vars(phi)
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	for _, v := range vars {
		fmt.Fprintf(&b, "(declare-const %s (_ BitVec %d))\n", symbol(v.Name), v.Width)
	}
	b.WriteString("(assert ")
	writeBool(&b, phi)
	b.WriteString(")\n(check-sat)\n")
	return b.String()
}

// symbol quotes names that are not plain SMT-LIB simple symbols.
func symbol(name string) string {
	plain := true
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '$':
		default:
			plain = false
		}
	}
	if plain && len(name) > 0 && !(name[0] >= '0' && name[0] <= '9') {
		return name
	}
	return "|" + name + "|"
}

// writeBool renders a width-1 term as an SMT-LIB Bool.
func writeBool(b *strings.Builder, t *Term) {
	switch {
	case t.IsTrue():
		b.WriteString("true")
	case t.IsFalse():
		b.WriteString("false")
	case t.Op == OpNot:
		b.WriteString("(not ")
		writeBool(b, t.Args[0])
		b.WriteString(")")
	case t.Op == OpAnd && t.Width == 1:
		b.WriteString("(and")
		for _, a := range t.Args {
			b.WriteString(" ")
			writeBool(b, a)
		}
		b.WriteString(")")
	case t.Op == OpOr && t.Width == 1:
		b.WriteString("(or")
		for _, a := range t.Args {
			b.WriteString(" ")
			writeBool(b, a)
		}
		b.WriteString(")")
	case isPredicate(t.Op):
		fmt.Fprintf(b, "(%s ", predName(t.Op))
		writeBV(b, t.Args[0])
		b.WriteString(" ")
		writeBV(b, t.Args[1])
		b.WriteString(")")
	default:
		// A width-1 bit-vector term used as a boolean.
		b.WriteString("(= ")
		writeBV(b, t)
		b.WriteString(" #b1)")
	}
}

func isPredicate(op Op) bool {
	switch op {
	case OpEq, OpUlt, OpUle, OpSlt, OpSle:
		return true
	}
	return false
}

func predName(op Op) string {
	switch op {
	case OpEq:
		return "="
	case OpUlt:
		return "bvult"
	case OpUle:
		return "bvule"
	case OpSlt:
		return "bvslt"
	default:
		return "bvsle"
	}
}

// writeBV renders a term as a bit-vector expression.
func writeBV(b *strings.Builder, t *Term) {
	switch t.Op {
	case OpVar:
		b.WriteString(symbol(t.Name))
	case OpConst:
		if t.Width == 1 {
			if t.Const == 1 {
				b.WriteString("#b1")
			} else {
				b.WriteString("#b0")
			}
			return
		}
		fmt.Fprintf(b, "(_ bv%d %d)", t.Const, t.Width)
	case OpNot:
		writeUnary(b, "bvnot", t)
	case OpNeg:
		writeUnary(b, "bvneg", t)
	case OpAnd:
		writeNary(b, "bvand", t)
	case OpOr:
		writeNary(b, "bvor", t)
	case OpXor:
		writeNary(b, "bvxor", t)
	case OpAdd:
		writeNary(b, "bvadd", t)
	case OpSub:
		writeNary(b, "bvsub", t)
	case OpMul:
		writeNary(b, "bvmul", t)
	case OpUDiv:
		writeNary(b, "bvudiv", t)
	case OpURem:
		writeNary(b, "bvurem", t)
	case OpShl:
		writeNary(b, "bvshl", t)
	case OpLshr:
		writeNary(b, "bvlshr", t)
	case OpEq, OpUlt, OpUle, OpSlt, OpSle:
		// Predicate in bit-vector position: reify.
		b.WriteString("(ite ")
		writeBool(b, t)
		b.WriteString(" #b1 #b0)")
	case OpIte:
		b.WriteString("(ite ")
		writeBool(b, t.Args[0])
		b.WriteString(" ")
		writeBV(b, t.Args[1])
		b.WriteString(" ")
		writeBV(b, t.Args[2])
		b.WriteString(")")
	default:
		panic(fmt.Sprintf("smt: smtlib: unhandled operator %s", t.Op))
	}
}

func writeUnary(b *strings.Builder, name string, t *Term) {
	fmt.Fprintf(b, "(%s ", name)
	writeBV(b, t.Args[0])
	b.WriteString(")")
}

func writeNary(b *strings.Builder, name string, t *Term) {
	fmt.Fprintf(b, "(%s", name)
	for _, a := range t.Args {
		b.WriteString(" ")
		writeBV(b, a)
	}
	b.WriteString(")")
}

// --- Parsing ---

// sexpr is an S-expression: an atom or a list.
type sexpr struct {
	atom string
	list []sexpr
}

func (s sexpr) isAtom() bool { return s.list == nil }

// tokenizeSexpr splits SMT-LIB text into parens and atoms.
func tokenizeSexpr(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '|':
			j := i + 1
			for j < len(src) && src[j] != '|' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("smt: smtlib: unterminated quoted symbol")
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsRune(" \t\n\r();|", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func parseSexprs(toks []string) ([]sexpr, error) {
	var parse func(pos int) (sexpr, int, error)
	parse = func(pos int) (sexpr, int, error) {
		if pos >= len(toks) {
			return sexpr{}, pos, fmt.Errorf("smt: smtlib: unexpected end of input")
		}
		t := toks[pos]
		if t == "(" {
			out := sexpr{list: []sexpr{}}
			pos++
			for pos < len(toks) && toks[pos] != ")" {
				child, next, err := parse(pos)
				if err != nil {
					return sexpr{}, pos, err
				}
				out.list = append(out.list, child)
				pos = next
			}
			if pos >= len(toks) {
				return sexpr{}, pos, fmt.Errorf("smt: smtlib: missing )")
			}
			return out, pos + 1, nil
		}
		if t == ")" {
			return sexpr{}, pos, fmt.Errorf("smt: smtlib: unexpected )")
		}
		return sexpr{atom: t}, pos + 1, nil
	}
	var out []sexpr
	pos := 0
	for pos < len(toks) {
		e, next, err := parse(pos)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		pos = next
	}
	return out, nil
}

// ParseSMTLIB reads a script in the subset ToSMTLIB emits (declare-const
// with BitVec sorts, one or more asserts, check-sat) and returns the
// conjunction of the assertions built in b.
func ParseSMTLIB(b *Builder, src string) (*Term, error) {
	toks, err := tokenizeSexpr(src)
	if err != nil {
		return nil, err
	}
	exprs, err := parseSexprs(toks)
	if err != nil {
		return nil, err
	}
	p := &smtlibParser{b: b, decls: map[string]*Term{}}
	var asserts []*Term
	for _, e := range exprs {
		if e.isAtom() || len(e.list) == 0 || !e.list[0].isAtom() {
			return nil, fmt.Errorf("smt: smtlib: malformed command")
		}
		switch e.list[0].atom {
		case "set-logic", "check-sat", "exit", "get-model", "set-option", "set-info":
			// ignored
		case "declare-const", "declare-fun":
			if err := p.declare(e); err != nil {
				return nil, err
			}
		case "assert":
			if len(e.list) != 2 {
				return nil, fmt.Errorf("smt: smtlib: malformed assert")
			}
			t, err := p.boolTerm(e.list[1])
			if err != nil {
				return nil, err
			}
			asserts = append(asserts, t)
		default:
			return nil, fmt.Errorf("smt: smtlib: unsupported command %s", e.list[0].atom)
		}
	}
	return b.And(asserts...), nil
}

type smtlibParser struct {
	b     *Builder
	decls map[string]*Term
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '|' && s[len(s)-1] == '|' {
		return s[1 : len(s)-1]
	}
	return s
}

func (p *smtlibParser) declare(e sexpr) error {
	// (declare-const name sort) or (declare-fun name () sort).
	args := e.list[1:]
	if e.list[0].atom == "declare-fun" {
		if len(args) != 3 || !args[1].isAtom() && len(args[1].list) != 0 {
			return fmt.Errorf("smt: smtlib: only zero-arity declare-fun supported")
		}
		args = []sexpr{args[0], args[2]}
	}
	if len(args) != 2 || !args[0].isAtom() {
		return fmt.Errorf("smt: smtlib: malformed declaration")
	}
	name := unquote(args[0].atom)
	width, err := parseSort(args[1])
	if err != nil {
		return err
	}
	p.decls[name] = p.b.Var(name, width)
	return nil
}

func parseSort(e sexpr) (int, error) {
	if e.isAtom() {
		if e.atom == "Bool" {
			return 1, nil
		}
		return 0, fmt.Errorf("smt: smtlib: unsupported sort %s", e.atom)
	}
	// (_ BitVec n)
	if len(e.list) == 3 && e.list[0].atom == "_" && e.list[1].atom == "BitVec" {
		n, err := strconv.Atoi(e.list[2].atom)
		if err != nil || n < 1 || n > 32 {
			return 0, fmt.Errorf("smt: smtlib: bad width %v", e.list[2].atom)
		}
		return n, nil
	}
	return 0, fmt.Errorf("smt: smtlib: unsupported sort")
}

// boolTerm parses a Bool-sorted expression into a width-1 term.
func (p *smtlibParser) boolTerm(e sexpr) (*Term, error) {
	b := p.b
	if e.isAtom() {
		switch e.atom {
		case "true":
			return b.True(), nil
		case "false":
			return b.False(), nil
		}
		if v, ok := p.decls[unquote(e.atom)]; ok && v.Width == 1 {
			return v, nil
		}
		return nil, fmt.Errorf("smt: smtlib: unknown boolean %s", e.atom)
	}
	if len(e.list) == 0 || !e.list[0].isAtom() {
		return nil, fmt.Errorf("smt: smtlib: malformed boolean term")
	}
	head := e.list[0].atom
	args := e.list[1:]
	switch head {
	case "not":
		x, err := p.boolTerm(args[0])
		if err != nil {
			return nil, err
		}
		return b.Not(x), nil
	case "and", "or":
		var xs []*Term
		for _, a := range args {
			x, err := p.boolTerm(a)
			if err != nil {
				return nil, err
			}
			xs = append(xs, x)
		}
		if head == "and" {
			return b.And(xs...), nil
		}
		return b.Or(xs...), nil
	case "=", "bvult", "bvule", "bvslt", "bvsle":
		x, err := p.bvTerm(args[0])
		if err != nil {
			return nil, err
		}
		y, err := p.bvTerm(args[1])
		if err != nil {
			return nil, err
		}
		switch head {
		case "=":
			return b.Eq(x, y), nil
		case "bvult":
			return b.Ult(x, y), nil
		case "bvule":
			return b.Ule(x, y), nil
		case "bvslt":
			return b.Slt(x, y), nil
		default:
			return b.Sle(x, y), nil
		}
	case "ite":
		c, err := p.boolTerm(args[0])
		if err != nil {
			return nil, err
		}
		x, err := p.boolTerm(args[1])
		if err != nil {
			return nil, err
		}
		y, err := p.boolTerm(args[2])
		if err != nil {
			return nil, err
		}
		return b.Ite(c, x, y), nil
	}
	// Fall back: a width-1 bit-vector expression used as Bool.
	t, err := p.bvTerm(e)
	if err != nil {
		return nil, err
	}
	if t.Width != 1 {
		return nil, fmt.Errorf("smt: smtlib: expected boolean, got width %d", t.Width)
	}
	return t, nil
}

// bvTerm parses a bit-vector-sorted expression.
func (p *smtlibParser) bvTerm(e sexpr) (*Term, error) {
	b := p.b
	if e.isAtom() {
		a := e.atom
		switch {
		case a == "#b1":
			return b.Const(1, 1), nil
		case a == "#b0":
			return b.Const(0, 1), nil
		case strings.HasPrefix(a, "#x"):
			v, err := strconv.ParseUint(a[2:], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("smt: smtlib: bad hex literal %s", a)
			}
			return b.Const(uint32(v), 4*len(a[2:])), nil
		case strings.HasPrefix(a, "#b"):
			v, err := strconv.ParseUint(a[2:], 2, 64)
			if err != nil {
				return nil, fmt.Errorf("smt: smtlib: bad binary literal %s", a)
			}
			return b.Const(uint32(v), len(a[2:])), nil
		}
		if v, ok := p.decls[unquote(a)]; ok {
			return v, nil
		}
		return nil, fmt.Errorf("smt: smtlib: unknown symbol %s", a)
	}
	head := e.list[0]
	args := e.list[1:]
	// (_ bvN w) constants.
	if head.isAtom() && head.atom == "_" && len(args) == 2 &&
		strings.HasPrefix(args[0].atom, "bv") {
		v, err1 := strconv.ParseUint(args[0].atom[2:], 10, 64)
		w, err2 := strconv.Atoi(args[1].atom)
		if err1 != nil || err2 != nil || w < 1 || w > 32 {
			return nil, fmt.Errorf("smt: smtlib: bad constant")
		}
		return b.Const(uint32(v), w), nil
	}
	if !head.isAtom() {
		return nil, fmt.Errorf("smt: smtlib: malformed term")
	}
	var xs []*Term
	for _, a := range args {
		if head.atom == "ite" {
			break
		}
		x, err := p.bvTerm(a)
		if err != nil {
			return nil, err
		}
		xs = append(xs, x)
	}
	fold := func(f func(x, y *Term) *Term) (*Term, error) {
		if len(xs) < 2 {
			return nil, fmt.Errorf("smt: smtlib: %s needs two operands", head.atom)
		}
		out := xs[0]
		for _, x := range xs[1:] {
			out = f(out, x)
		}
		return out, nil
	}
	switch head.atom {
	case "bvnot":
		return b.Not(xs[0]), nil
	case "bvneg":
		return b.Neg(xs[0]), nil
	case "bvand":
		return b.And(xs...), nil
	case "bvor":
		return b.Or(xs...), nil
	case "bvxor":
		return fold(b.Xor)
	case "bvadd":
		return fold(b.Add)
	case "bvsub":
		return fold(b.Sub)
	case "bvmul":
		return fold(b.Mul)
	case "bvudiv":
		return fold(b.UDiv)
	case "bvurem":
		return fold(b.URem)
	case "bvshl":
		return fold(b.Shl)
	case "bvlshr":
		return fold(b.Lshr)
	case "ite":
		c, err := p.boolTerm(args[0])
		if err != nil {
			return nil, err
		}
		x, err := p.bvTerm(args[1])
		if err != nil {
			return nil, err
		}
		y, err := p.bvTerm(args[2])
		if err != nil {
			return nil, err
		}
		return b.Ite(c, x, y), nil
	case "=", "bvult", "bvule", "bvslt", "bvsle":
		// Predicate reified as a width-1 vector.
		t, err := p.boolTerm(e)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("smt: smtlib: unsupported operator %s", head.atom)
}
