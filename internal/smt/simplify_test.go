package smt_test

import (
	"testing"

	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
)

func TestSimplifyLocalNegatedComparisons(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	got := smt.SimplifyLocal(b, b.Not(b.Ult(x, y)))
	want := b.Ule(y, x)
	if got != want {
		t.Errorf("!(x < y): got %v, want %v", got, want)
	}
	got2 := smt.SimplifyLocal(b, b.Not(b.Sle(x, y)))
	if got2 != b.Slt(y, x) {
		t.Errorf("!(x <= y): got %v", got2)
	}
}

func TestSimplifyLocalIteEquality(t *testing.T) {
	b := smt.NewBuilder()
	c := b.Var("c", 1)
	ite := b.Ite(c, b.Const(1, 32), b.Const(2, 32))
	// ite(c,1,2) = 1 simplifies to c.
	if got := smt.SimplifyLocal(b, b.Eq(ite, b.Const(1, 32))); got != c {
		t.Errorf("got %v, want c", got)
	}
	// ite(c,1,2) = 2 simplifies to !c.
	if got := smt.SimplifyLocal(b, b.Eq(ite, b.Const(2, 32))); got != b.Not(c) {
		t.Errorf("got %v, want !c", got)
	}
	// ite(c,1,2) = 3 is false.
	if got := smt.SimplifyLocal(b, b.Eq(ite, b.Const(3, 32))); !got.IsFalse() {
		t.Errorf("got %v, want false", got)
	}
}

func TestSimplifyLocalBooleanIte(t *testing.T) {
	b := smt.NewBuilder()
	c, p := b.Var("c", 1), b.Var("p", 1)
	if got := smt.SimplifyLocal(b, b.Ite(c, b.True(), p)); got != b.Or(c, p) {
		t.Errorf("ite(c,true,p): got %v", got)
	}
	if got := smt.SimplifyLocal(b, b.Ite(c, p, b.False())); got != b.And(c, p) {
		t.Errorf("ite(c,p,false): got %v", got)
	}
}

func TestSimplifyLocalComplementaryConjuncts(t *testing.T) {
	b := smt.NewBuilder()
	p, q := b.Var("p", 1), b.Var("q", 1)
	if got := smt.SimplifyLocal(b, b.And(p, q, b.Not(p))); !got.IsFalse() {
		t.Errorf("p ∧ q ∧ !p: got %v, want false", got)
	}
}

func TestSimplifyLocalPreservesSemantics(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 8), b.Var("y", 8)
	phi := b.And(
		b.Not(b.Ult(x, y)),
		b.Eq(b.Ite(b.Var("c", 1), b.Const(3, 8), b.Const(4, 8)), b.Const(3, 8)),
		b.Eq(b.Add(x, b.Const(1, 8)), b.Const(9, 8)),
	)
	got := smt.SimplifyLocal(b, phi)
	c := b.Var("c", 1)
	for _, asg := range []smt.Assignment{
		{x: 8, y: 3, c: 1},
		{x: 8, y: 9, c: 1},
		{x: 8, y: 3, c: 0},
		{x: 7, y: 3, c: 1},
	} {
		if smt.Eval(phi, asg) != smt.Eval(got, asg) {
			t.Fatalf("semantics changed at %v:\n  before %v\n  after  %v", asg, phi, got)
		}
	}
}

func TestContextSimplifier(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	// x < 10 implies x < 100: the redundant conjunct must drop.
	phi := b.And(
		b.Ult(x, b.Const(10, 32)),
		b.Ult(x, b.Const(100, 32)),
		b.Eq(b.And(x, b.Const(1, 32)), b.Const(1, 32)),
	)
	cs := &smt.ContextSimplifier{
		Solve: func(bb *smt.Builder, q *smt.Term) (bool, bool) {
			return solver.Decide(bb, q, solver.Options{})
		},
	}
	got := cs.Simplify(b, phi)
	if len(smt.Conjuncts(got)) >= len(smt.Conjuncts(phi)) {
		t.Errorf("no conjunct dropped:\n  before %v\n  after  %v", phi, got)
	}
	if cs.Queries == 0 {
		t.Error("the heavyweight simplifier must invoke the solver")
	}
	// Equisatisfiable (here: equivalent) result.
	r1 := solver.Solve(b, phi, solver.Options{})
	r2 := solver.Solve(b, got, solver.Options{})
	if r1.Status != r2.Status {
		t.Errorf("satisfiability changed: %s vs %s", r1.Status, r2.Status)
	}
}

func qeSolve(b *smt.Builder, phi *smt.Term) (sat.Status, smt.Assignment) {
	r := solver.Solve(b, phi, solver.Options{Passes: solver.NoPasses, WantModel: true})
	return r.Status, r.Model
}

func TestEliminateBySubstitution(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	// ∃y. (y = x + 1 ∧ y < 10)  ≡  x + 1 < 10.
	phi := b.And(
		b.Eq(y, b.Add(x, b.Const(1, 32))),
		b.Ult(y, b.Const(10, 32)),
	)
	got, err := smt.Eliminate(b, phi, []*smt.Term{y}, smt.QEOptions{Solve: qeSolve})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range smt.Vars(got) {
		if v == y {
			t.Fatalf("y survived elimination: %v", got)
		}
	}
	// Equivalent on x: satisfiable iff x+1 < 10 unsigned.
	for _, xv := range []uint32{0, 8, 9, 100} {
		want := boolToBit(xv+1 < 10)
		if smt.Eval(got, smt.Assignment{x: xv}) != want {
			t.Errorf("x=%d: projection wrong", xv)
		}
	}
}

func TestEliminateByProjection(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 2), b.Var("y", 2)
	// ∃y. (x = y | 1): x must have bit 0 set — enumeration over the 2-bit
	// domain stays within budget.
	phi := b.Eq(x, b.Or(y, b.Const(1, 2)))
	got, err := smt.Eliminate(b, phi, []*smt.Term{y}, smt.QEOptions{MaxCubes: 16, Solve: qeSolve})
	if err != nil {
		t.Fatal(err)
	}
	for xv := uint32(0); xv < 4; xv++ {
		want := boolToBit(xv&1 == 1)
		if smt.Eval(got, smt.Assignment{x: xv}) != want {
			t.Errorf("x=%d: got %d, want %d (formula %v)", xv, smt.Eval(got, smt.Assignment{x: xv}), want, got)
		}
	}
}

func TestEliminateBudgetBlowup(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	// ∃y. x = y + y: half the 32-bit domain — enumeration must exhaust the
	// cube budget, the behaviour behind Pinpoint+QE's failures.
	phi := b.Eq(x, b.Add(y, y))
	_, err := smt.Eliminate(b, phi, []*smt.Term{y}, smt.QEOptions{MaxCubes: 8, Solve: qeSolve})
	if err != smt.ErrQEBudget {
		t.Fatalf("expected ErrQEBudget, got %v", err)
	}
}
