package smt

import (
	"fmt"
	"sort"
)

// A Pass is one equisatisfiability-preserving preprocessing step
// (Algorithm 3, line 2). Passes view the formula as a conjunction and may
// rewrite it into any equisatisfiable form; a pass that decides the formula
// returns the constant true or false.
type Pass struct {
	Name string
	Run  func(b *Builder, phi *Term) *Term
}

// DefaultPasses returns the preprocessing pipeline of the paper's solver
// (§4): forward/backward constant propagation, equality propagation,
// definition inlining, Gaussian elimination, strength reduction, and
// unconstrained-variable elimination. Gaussian elimination runs before
// strength reduction so linear reasoning still sees multiplications.
func DefaultPasses() []Pass {
	return []Pass{
		{Name: "const-prop", Run: ConstProp},
		{Name: "equality-prop", Run: EqualityProp},
		{Name: "solve-eqs", Run: SolveEqs},
		{Name: "gaussian", Run: GaussianEliminate},
		{Name: "strength-reduce", Run: StrengthReduce},
		{Name: "unconstrained", Run: UnconstrainedElim},
	}
}

// SolveEqs inlines variable definitions: a conjunct v = t with v a variable
// not occurring in t substitutes t for v throughout (the analogue of Z3's
// solve-eqs tactic). Hash-consing keeps the result a DAG, so inlining does
// not duplicate work downstream.
func SolveEqs(b *Builder, phi *Term) *Term { return solveEqsAllow(b, phi, nil) }

func solveEqsAllow(b *Builder, phi *Term, allow func(name string) bool) *Term {
	// Count how often each variable occurs, so large definitions are only
	// inlined into single uses. Inlining a big definition into many uses
	// trades named, propagation-friendly structure for deep expression
	// towers that are much harder on the SAT core.
	occurs := map[*Term]int{}
	seen := map[*Term]bool{}
	var countOcc func(t *Term)
	countOcc = func(t *Term) {
		if t.Op == OpVar {
			occurs[t]++
			return
		}
		if seen[t] {
			return
		}
		seen[t] = true
		for _, a := range t.Args {
			countOcc(a)
		}
	}
	countOcc(phi)

	const inlineSize = 8
	sub := map[*Term]*Term{}
	var order []*Term
	for _, cj := range Conjuncts(phi) {
		if len(sub) >= 64 {
			break // resume on the next Preprocess round
		}
		if cj.Op != OpEq {
			continue
		}
		for _, ord := range [2][2]*Term{{cj.Args[0], cj.Args[1]}, {cj.Args[1], cj.Args[0]}} {
			v, t := ord[0], ord[1]
			if v.Op != OpVar || t == v {
				continue
			}
			if allow != nil && !allow(v.Name) {
				continue
			}
			if _, done := sub[v]; done {
				continue
			}
			t = Substitute(b, t, sub)
			if containsVar(t, v) {
				continue
			}
			// occurs counts the defining equation itself, so <= 2 means at
			// most one other use.
			if Size(t) > inlineSize && occurs[v] > 2 {
				continue
			}
			sub[v] = t
			order = append(order, v)
			break
		}
	}
	if len(sub) == 0 {
		return phi
	}
	// Apply sequentially: a later substitution must also rewrite variables
	// introduced by an earlier one's replacement term.
	for _, v := range order {
		phi = Substitute(b, phi, map[*Term]*Term{v: sub[v]})
	}
	return phi
}

// Preprocess runs the passes round-robin until a fixpoint or the round
// budget is exhausted, returning the rewritten formula.
func Preprocess(b *Builder, phi *Term, passes []Pass) *Term {
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, p := range passes {
			next := p.Run(b, phi)
			if next != phi {
				changed = true
				phi = next
			}
			if phi.IsTrue() || phi.IsFalse() {
				return phi
			}
		}
		if !changed {
			break
		}
	}
	return phi
}

// Conjuncts flattens a formula into its top-level conjuncts.
func Conjuncts(t *Term) []*Term {
	if t.Op == OpAnd && t.Width == 1 {
		return t.Args
	}
	return []*Term{t}
}

// --- Constant propagation ---

// ConstProp performs forward and backward constant propagation over the
// conjunction: conjuncts of the form x = c substitute c for x everywhere,
// and equations t = c with an invertible top operator are solved backward
// (e.g., x + a = c becomes x = c - a).
func ConstProp(b *Builder, phi *Term) *Term { return constPropAllow(b, phi, nil) }

func constPropAllow(b *Builder, phi *Term, allow func(name string) bool) *Term {
	ok := func(v *Term) bool { return allow == nil || allow(v.Name) }
	for i := 0; i < 16; i++ {
		sub := map[*Term]*Term{}
		var learn func(t *Term)
		solve := func(t, c *Term) {
			// Backward propagation: invert the top operator of t when one
			// operand is constant, narrowing toward variables.
			for {
				if t.Op == OpVar {
					if _, dup := sub[t]; !dup && ok(t) {
						sub[t] = c
					}
					return
				}
				next, nc, ok := invertStep(b, t, c)
				if !ok {
					return
				}
				t, c = next, nc
			}
		}
		learn = func(cj *Term) {
			if cj.Op == OpEq {
				x, y := cj.Args[0], cj.Args[1]
				if y.IsConst() {
					solve(x, y)
				} else if x.IsConst() {
					solve(y, x)
				}
				return
			}
			// A bare boolean variable conjunct pins it to true; a negated
			// one pins it to false. (Conjuncts always have width 1.)
			if cj.Op == OpVar && ok(cj) {
				sub[cj] = b.True()
			}
			if cj.Op == OpNot && cj.Args[0].Op == OpVar && ok(cj.Args[0]) {
				sub[cj.Args[0]] = b.False()
			}
		}
		for _, cj := range Conjuncts(phi) {
			learn(cj)
		}
		if len(sub) == 0 {
			return phi
		}
		// Keep the defining equations x = c (they may constrain other
		// occurrences through non-invertible contexts) — substitution of a
		// variable by its constant makes them fold to true automatically.
		next := Substitute(b, phi, sub)
		if next == phi {
			return phi
		}
		phi = next
		if phi.IsTrue() || phi.IsFalse() {
			return phi
		}
	}
	return phi
}

// invertStep peels one invertible operator off t in the equation t = c,
// returning the operand to keep solving for and the new constant.
func invertStep(b *Builder, t, c *Term) (*Term, *Term, bool) {
	if !c.IsConst() {
		return nil, nil, false
	}
	w := t.Width
	switch t.Op {
	case OpAdd:
		if t.Args[1].IsConst() {
			return t.Args[0], b.Const(c.Const-t.Args[1].Const, w), true
		}
		if t.Args[0].IsConst() {
			return t.Args[1], b.Const(c.Const-t.Args[0].Const, w), true
		}
	case OpSub:
		if t.Args[1].IsConst() {
			return t.Args[0], b.Const(c.Const+t.Args[1].Const, w), true
		}
		if t.Args[0].IsConst() {
			return t.Args[1], b.Const(t.Args[0].Const-c.Const, w), true
		}
	case OpXor:
		if t.Args[1].IsConst() {
			return t.Args[0], b.Const(c.Const^t.Args[1].Const, w), true
		}
		if t.Args[0].IsConst() {
			return t.Args[1], b.Const(c.Const^t.Args[0].Const, w), true
		}
	case OpNot:
		return t.Args[0], b.Const(^c.Const, w), true
	case OpNeg:
		return t.Args[0], b.Const(-c.Const, w), true
	case OpMul:
		// Invertible when one factor is an odd constant.
		if t.Args[1].IsConst() && t.Args[1].Const&1 == 1 {
			inv := modInverse(t.Args[1].Const, w)
			return t.Args[0], b.Const(c.Const*inv, w), true
		}
		if t.Args[0].IsConst() && t.Args[0].Const&1 == 1 {
			inv := modInverse(t.Args[0].Const, w)
			return t.Args[1], b.Const(c.Const*inv, w), true
		}
	}
	return nil, nil, false
}

// modInverse computes the multiplicative inverse of odd a modulo 2^w by
// Newton iteration.
func modInverse(a uint32, w int) uint32 {
	x := a // correct to 3 bits
	for i := 0; i < 5; i++ {
		x *= 2 - a*x
	}
	return mask(x, w)
}

// --- Equality propagation ---

// EqualityProp merges variables related by x = y conjuncts through a
// union-find and substitutes a canonical representative for each class.
func EqualityProp(b *Builder, phi *Term) *Term { return equalityPropAllow(b, phi, nil) }

func equalityPropAllow(b *Builder, phi *Term, allow func(name string) bool) *Term {
	parent := map[*Term]*Term{}
	var find func(t *Term) *Term
	find = func(t *Term) *Term {
		p, ok := parent[t]
		if !ok || p == t {
			return t
		}
		r := find(p)
		parent[t] = r
		return r
	}
	union := func(x, y *Term) {
		rx, ry := find(x), find(y)
		if rx != ry {
			// Keep the variable with the smaller ID as representative so
			// the result is deterministic.
			if rx.ID > ry.ID {
				rx, ry = ry, rx
			}
			parent[ry] = rx
		}
	}
	n := 0
	for _, cj := range Conjuncts(phi) {
		if cj.Op == OpEq && cj.Args[0].Op == OpVar && cj.Args[1].Op == OpVar {
			union(cj.Args[0], cj.Args[1])
			n++
		}
	}
	if n == 0 {
		return phi
	}
	sub := map[*Term]*Term{}
	for t := range parent {
		if r := find(t); r != t && (allow == nil || allow(t.Name)) {
			sub[t] = r
		}
	}
	return Substitute(b, phi, sub)
}

// --- Strength reduction ---

// StrengthReduce rewrites expensive operators into cheaper equivalents:
// multiplication, division and remainder by powers of two become shifts and
// masks, which bit-blast to far fewer gates.
func StrengthReduce(b *Builder, phi *Term) *Term {
	memo := map[*Term]*Term{}
	var walk func(*Term) *Term
	walk = func(t *Term) *Term {
		if r, ok := memo[t]; ok {
			return r
		}
		var r *Term
		switch t.Op {
		case OpVar, OpConst:
			r = t
		default:
			args := make([]*Term, len(t.Args))
			changed := false
			for i, a := range t.Args {
				args[i] = walk(a)
				changed = changed || args[i] != a
			}
			cur := t
			if changed {
				cur = Rebuild(b, t.Op, t.Width, args)
			}
			r = reduceOne(b, cur)
		}
		memo[t] = r
		return r
	}
	return walk(phi)
}

func reduceOne(b *Builder, t *Term) *Term {
	w := t.Width
	pick := func(x, c *Term) (*Term, uint32, bool) {
		if c.IsConst() {
			return x, c.Const, true
		}
		return nil, 0, false
	}
	switch t.Op {
	case OpMul:
		x, c, ok := pick(t.Args[0], t.Args[1])
		if !ok {
			x, c, ok = pick(t.Args[1], t.Args[0])
		}
		if ok {
			switch {
			case c == 0:
				return b.Const(0, w)
			case c == 1:
				return x
			case isPow2(c):
				return b.Shl(x, b.Const(log2(c), w))
			}
		}
	case OpUDiv:
		if x, c, ok := pick(t.Args[0], t.Args[1]); ok && isPow2(c) {
			if c == 1 {
				return x
			}
			return b.Lshr(x, b.Const(log2(c), w))
		}
	case OpURem:
		if x, c, ok := pick(t.Args[0], t.Args[1]); ok && isPow2(c) {
			return b.And(x, b.Const(c-1, w))
		}
	case OpUlt:
		// x < 1  <=>  x = 0; 0 < x  <=>  x != 0.
		if t.Args[1].IsConst() && t.Args[1].Const == 1 {
			return b.Eq(t.Args[0], b.Const(0, t.Args[0].Width))
		}
		if t.Args[0].IsConst() && t.Args[0].Const == 0 {
			return b.Not(b.Eq(t.Args[1], b.Const(0, t.Args[1].Width)))
		}
	}
	return t
}

func isPow2(c uint32) bool { return c != 0 && c&(c-1) == 0 }

func log2(c uint32) uint32 {
	var n uint32
	for c > 1 {
		c >>= 1
		n++
	}
	return n
}

// --- Gaussian elimination ---

// linExpr is a linear combination sum(coeff[v] * v) + k over 2^w.
type linExpr struct {
	coeff map[*Term]uint32
	k     uint32
	w     int
}

// asLinear decomposes t into a linear expression, or reports failure.
func asLinear(t *Term, depth int) (*linExpr, bool) {
	if depth > 64 {
		return nil, false
	}
	switch t.Op {
	case OpConst:
		return &linExpr{coeff: map[*Term]uint32{}, k: t.Const, w: t.Width}, true
	case OpVar:
		return &linExpr{coeff: map[*Term]uint32{t: 1}, w: t.Width}, true
	case OpAdd, OpSub:
		a, ok := asLinear(t.Args[0], depth+1)
		if !ok {
			return nil, false
		}
		bb, ok := asLinear(t.Args[1], depth+1)
		if !ok {
			return nil, false
		}
		sign := uint32(1)
		if t.Op == OpSub {
			sign = ^uint32(0) // -1
		}
		for v, c := range bb.coeff {
			a.coeff[v] += sign * c
			if a.coeff[v] == 0 {
				delete(a.coeff, v)
			}
		}
		a.k += sign * bb.k
		return a, true
	case OpNeg:
		a, ok := asLinear(t.Args[0], depth+1)
		if !ok {
			return nil, false
		}
		for v := range a.coeff {
			a.coeff[v] = -a.coeff[v]
		}
		a.k = -a.k
		return a, true
	case OpMul:
		var x *Term
		var c uint32
		if t.Args[0].IsConst() {
			c, x = t.Args[0].Const, t.Args[1]
		} else if t.Args[1].IsConst() {
			c, x = t.Args[1].Const, t.Args[0]
		} else {
			return nil, false
		}
		a, ok := asLinear(x, depth+1)
		if !ok {
			return nil, false
		}
		for v := range a.coeff {
			a.coeff[v] *= c
			if a.coeff[v] == 0 {
				delete(a.coeff, v)
			}
		}
		a.k *= c
		return a, true
	}
	return nil, false
}

// GaussianEliminate solves the linear conjuncts of the formula over the
// ring Z/2^w: any equation with an odd-coefficient variable is solved for
// that variable and substituted through the rest of the formula. Running
// it per function on local conditions is one of the expensive steps
// Algorithm 6 decomposes by modularity.
func GaussianEliminate(b *Builder, phi *Term) *Term {
	return gaussianAllow(b, phi, nil)
}

func gaussianAllow(b *Builder, phi *Term, allow func(name string) bool) *Term {
	conjs := Conjuncts(phi)
	sub := map[*Term]*Term{}
	var order []*Term
	for _, cj := range Conjuncts(phi) {
		if len(sub) >= 32 {
			break // budget: substitution rounds re-run via Preprocess
		}
		if cj.Op != OpEq {
			continue
		}
		la, ok := asLinear(cj.Args[0], 0)
		if !ok {
			continue
		}
		lb, ok := asLinear(cj.Args[1], 0)
		if !ok {
			continue
		}
		// Move everything to one side: la - lb = 0.
		for v, c := range lb.coeff {
			la.coeff[v] -= c
			if la.coeff[v] == 0 {
				delete(la.coeff, v)
			}
		}
		la.k -= lb.k
		w := cj.Args[0].Width
		// Find an odd-coefficient variable not already substituted.
		var pivot *Term
		var pc uint32
		vars := make([]*Term, 0, len(la.coeff))
		for v := range la.coeff {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i].ID < vars[j].ID })
		for _, v := range vars {
			if la.coeff[v]&1 == 1 && (allow == nil || allow(v.Name)) {
				if _, done := sub[v]; !done {
					pivot, pc = v, la.coeff[v]
					break
				}
			}
		}
		if pivot == nil {
			continue
		}
		// pivot = -inv(pc) * (k + sum of other terms).
		inv := modInverse(pc, w)
		rhs := b.Const(mask(-inv*la.k, w), w)
		for _, v := range vars {
			if v == pivot {
				continue
			}
			c := mask(-inv*la.coeff[v], w)
			if c == 0 {
				continue
			}
			rhs = b.Add(rhs, b.Mul(b.Const(c, w), v))
		}
		// Avoid self-referential substitutions through earlier pivots.
		rhs = Substitute(b, rhs, sub)
		if containsVar(rhs, pivot) {
			continue
		}
		sub[pivot] = rhs
		order = append(order, pivot)
	}
	if len(sub) == 0 {
		return phi
	}
	_ = conjs
	// Sequential application, as in SolveEqs: earlier replacement terms may
	// mention later pivots.
	for _, v := range order {
		phi = Substitute(b, phi, map[*Term]*Term{v: sub[v]})
	}
	return phi
}

// uncShape summarizes t as a chain of constant-parameterized operations
// ending in a single-parent unconstrained variable leaf, rendered as a
// string key with the leaf abstracted away. Two terms with the same shape
// and distinct leaves have identical value images of size 2^(w - tz), where
// tz accumulates the trailing zeros lost to even multipliers and shifts.
func uncShape(t *Term, parents map[*Term]int, allow func(name string) bool, tz int) (string, int, bool) {
	if parents[t] > 1 {
		return "", 0, false
	}
	switch t.Op {
	case OpVar:
		if allow != nil && !allow(t.Name) {
			return "", 0, false
		}
		return fmt.Sprintf("leaf%d", t.Width), tz, true
	case OpNot, OpNeg:
		s, z, ok := uncShape(t.Args[0], parents, allow, tz)
		return t.Op.String() + "(" + s + ")", z, ok
	case OpAdd, OpSub, OpXor:
		for i, c := 0, 1; i < 2; i, c = i+1, 0 {
			if t.Args[c].IsConst() {
				s, z, ok := uncShape(t.Args[i], parents, allow, tz)
				return fmt.Sprintf("%s%d.%d(%s)", t.Op, i, t.Args[c].Const, s), z, ok
			}
		}
	case OpMul:
		for i, c := 0, 1; i < 2; i, c = i+1, 0 {
			if t.Args[c].IsConst() && t.Args[c].Const != 0 {
				s, z, ok := uncShape(t.Args[i], parents, allow, tz+trailingZeros(t.Args[c].Const))
				return fmt.Sprintf("mul%d(%s)", t.Args[c].Const, s), z, ok
			}
		}
	case OpShl, OpLshr:
		if t.Args[1].IsConst() && int(t.Args[1].Const) < t.Width {
			s, z, ok := uncShape(t.Args[0], parents, allow, tz+int(t.Args[1].Const))
			return fmt.Sprintf("%s%d(%s)", t.Op, t.Args[1].Const, s), z, ok
		}
	}
	return "", 0, false
}

func trailingZeros(c uint32) int {
	n := 0
	for c&1 == 0 {
		c >>= 1
		n++
	}
	return n
}

func containsVar(t, v *Term) bool {
	seen := map[*Term]bool{}
	var walk func(*Term) bool
	walk = func(t *Term) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if t == v {
			return true
		}
		for _, a := range t.Args {
			if walk(a) {
				return true
			}
		}
		return false
	}
	return walk(t)
}

// --- Unconstrained-variable elimination ---

// UnconstrainedElim replaces terms whose value ranges over the whole domain
// independently of everything else (Bryant et al.'s unconstrained-variable
// simplification; footnote 3 of the paper). A variable with a single parent
// under an invertible operator makes the parent unconstrained; conjuncts
// that become unconstrained booleans are satisfiable on their own and drop
// to true — this is how "a is unconstrained" propagation decides the
// motivating example without touching the SAT solver.
func UnconstrainedElim(b *Builder, phi *Term) *Term {
	return unconstrainedAllow(b, phi, nil)
}

func unconstrainedAllow(b *Builder, phi *Term, allow func(name string) bool) *Term {
	for i := 0; i < 8; i++ {
		next := unconstrainedOnce(b, phi, allow)
		if next == phi {
			return phi
		}
		phi = next
		if phi.IsTrue() || phi.IsFalse() {
			return phi
		}
	}
	return phi
}

func unconstrainedOnce(b *Builder, phi *Term, allow func(name string) bool) *Term {
	// Count parents of every node in the DAG.
	parents := map[*Term]int{}
	var count func(*Term)
	seen := map[*Term]bool{}
	count = func(t *Term) {
		for _, a := range t.Args {
			parents[a]++
			if !seen[a] {
				seen[a] = true
				count(a)
			}
		}
	}
	parents[phi]++ // the root has the formula itself as a parent
	count(phi)

	// unconstrained reports whether t's value can be chosen freely.
	memo := map[*Term]int8{}
	var unc func(t *Term) bool
	unc = func(t *Term) bool {
		if v, ok := memo[t]; ok {
			return v == 1
		}
		res := false
		if parents[t] <= 1 {
			switch t.Op {
			case OpVar:
				res = allow == nil || allow(t.Name)
			case OpNot, OpNeg:
				res = unc(t.Args[0])
			case OpXor:
				res = unc(t.Args[0]) || unc(t.Args[1])
			case OpAdd:
				res = unc(t.Args[0]) || unc(t.Args[1])
			case OpSub:
				res = unc(t.Args[0]) || unc(t.Args[1])
			case OpMul:
				res = (unc(t.Args[0]) && t.Args[1].IsConst() && t.Args[1].Const&1 == 1) ||
					(unc(t.Args[1]) && t.Args[0].IsConst() && t.Args[0].Const&1 == 1)
			case OpEq:
				res = unc(t.Args[0]) || unc(t.Args[1])
			case OpUlt, OpUle, OpSlt, OpSle:
				// Unconstrained when both sides are independent
				// unconstrained terms...
				res = unc(t.Args[0]) && unc(t.Args[1])
			case OpIte:
				res = unc(t.Args[1]) && unc(t.Args[2])
			}
			// ...or when both sides are the same function shape applied to
			// distinct unconstrained leaves (e.g. 2a < 2b in the paper's
			// motivating example): the images coincide and contain at
			// least two values, so both comparison outcomes are
			// realizable.
			if !res && len(t.Args) == 2 && t.Args[0] != t.Args[1] {
				switch t.Op {
				case OpEq, OpUlt, OpUle, OpSlt, OpSle:
					s0, tz0, ok0 := uncShape(t.Args[0], parents, allow, 0)
					s1, tz1, ok1 := uncShape(t.Args[1], parents, allow, 0)
					w := t.Args[0].Width
					res = ok0 && ok1 && s0 == s1 && tz0 == tz1 && tz0 < w
				}
			}
		}
		if res {
			memo[t] = 1
		} else {
			memo[t] = 0
		}
		return res
	}

	// Any conjunct that is an unconstrained boolean is satisfiable
	// independently of the rest: drop it.
	conjs := Conjuncts(phi)
	kept := make([]*Term, 0, len(conjs))
	changed := false
	for _, cj := range conjs {
		if unc(cj) {
			changed = true
			continue
		}
		kept = append(kept, cj)
	}
	if !changed {
		return phi
	}
	return b.And(kept...)
}

// PassesWithKeep returns the default pipeline restricted so that variables
// in the keep set are never eliminated or treated as free choices. The
// fused solver uses it to preprocess per-function local conditions while
// preserving their interface variables (parameters, call results, return
// values, and asserted guards) — Algorithm 6's intraprocedural_preprocess.
func PassesWithKeep(keep map[string]bool) []Pass {
	allow := func(name string) bool { return !keep[name] }
	return []Pass{
		{Name: "const-prop", Run: func(b *Builder, phi *Term) *Term { return constPropAllow(b, phi, allow) }},
		{Name: "equality-prop", Run: func(b *Builder, phi *Term) *Term { return equalityPropAllow(b, phi, allow) }},
		{Name: "solve-eqs", Run: func(b *Builder, phi *Term) *Term { return solveEqsAllow(b, phi, allow) }},
		{Name: "gaussian", Run: func(b *Builder, phi *Term) *Term { return gaussianAllow(b, phi, allow) }},
		{Name: "strength-reduce", Run: StrengthReduce},
		{Name: "unconstrained", Run: func(b *Builder, phi *Term) *Term { return unconstrainedAllow(b, phi, allow) }},
	}
}
