package smt_test

import (
	"fmt"

	"fusion/internal/smt"
)

// ExampleBuilder shows term construction with hash-consing and the
// constant folding the Builder performs.
func ExampleBuilder() {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	sum := b.Add(x, b.Const(1, 32))
	same := b.Add(x, b.Const(1, 32))
	fmt.Println(sum == same)                           // interned
	fmt.Println(b.Add(b.Const(2, 32), b.Const(3, 32))) // folded
	fmt.Println(b.Eq(x, x))                            // reflexive
	// Output:
	// true
	// #x00000005
	// true
}

// ExamplePreprocess shows the preprocessing pipeline deciding a formula
// without any search: the paper's Figure 1(b) effect in miniature.
func ExamplePreprocess() {
	b := smt.NewBuilder()
	a, c := b.Var("a", 32), b.Var("c", 32)
	d, e := b.Var("d", 32), b.Var("e", 32)
	phi := b.And(
		b.Eq(c, b.Mul(a, b.Const(2, 32))), // c = 2a
		b.Eq(d, b.Mul(e, b.Const(2, 32))), // d = 2e
		b.Slt(c, d),                       // and c < d must hold
	)
	fmt.Println(smt.Preprocess(b, phi, smt.DefaultPasses()))
	// Output:
	// true
}

// ExampleToSMTLIB exports a formula for an external solver.
func ExampleToSMTLIB() {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	fmt.Print(smt.ToSMTLIB(b.Ult(x, b.Const(10, 8))))
	// Output:
	// (set-logic QF_BV)
	// (declare-const x (_ BitVec 8))
	// (assert (bvult x (_ bv10 8)))
	// (check-sat)
}
