package smt

// SimplifyLocal is the lightweight formula simplification (LFS) of the
// evaluation: pure local rewriting, the analogue of Z3's "simplify" tactic.
// It performs a single bottom-up rewriting sweep with rules beyond the
// Builder's constructor canonicalization.
func SimplifyLocal(b *Builder, phi *Term) *Term {
	memo := map[*Term]*Term{}
	var walk func(*Term) *Term
	walk = func(t *Term) *Term {
		if r, ok := memo[t]; ok {
			return r
		}
		var r *Term
		switch t.Op {
		case OpVar, OpConst:
			r = t
		default:
			args := make([]*Term, len(t.Args))
			changed := false
			for i, a := range t.Args {
				args[i] = walk(a)
				changed = changed || args[i] != a
			}
			cur := t
			if changed {
				cur = Rebuild(b, t.Op, t.Width, args)
			}
			r = simplifyOne(b, cur)
		}
		memo[t] = r
		return r
	}
	return walk(phi)
}

func simplifyOne(b *Builder, t *Term) *Term {
	switch t.Op {
	case OpNot:
		// Push negation through comparisons: !(x < y) = y <= x, etc.
		x := t.Args[0]
		switch x.Op {
		case OpUlt:
			return b.Ule(x.Args[1], x.Args[0])
		case OpUle:
			return b.Ult(x.Args[1], x.Args[0])
		case OpSlt:
			return b.Sle(x.Args[1], x.Args[0])
		case OpSle:
			return b.Slt(x.Args[1], x.Args[0])
		}
	case OpEq:
		x, y := t.Args[0], t.Args[1]
		// ite(c, a, b) = a simplifies when a and b are distinct constants.
		for _, ord := range [2][2]*Term{{x, y}, {y, x}} {
			ite, v := ord[0], ord[1]
			if ite.Op == OpIte && v.IsConst() && ite.Args[1].IsConst() && ite.Args[2].IsConst() {
				switch {
				case ite.Args[1] == v && ite.Args[2] != v:
					return ite.Args[0]
				case ite.Args[2] == v && ite.Args[1] != v:
					return b.Not(ite.Args[0])
				case ite.Args[1] != v && ite.Args[2] != v:
					return b.False()
				}
			}
		}
		// x + c1 = c2 becomes x = c2 - c1 (and similar single-step
		// inversions), which exposes more sharing.
		if y.IsConst() {
			if nx, nc, ok := invertStep(b, x, y); ok {
				return b.Eq(nx, nc)
			}
		}
		if x.IsConst() {
			if ny, nc, ok := invertStep(b, y, x); ok {
				return b.Eq(ny, nc)
			}
		}
	case OpIte:
		c, x, y := t.Args[0], t.Args[1], t.Args[2]
		// ite(c, true, y) = c or y; ite(c, false, y) = !c and y; etc.
		if t.Width == 1 {
			switch {
			case x.IsTrue():
				return b.Or(c, y)
			case x.IsFalse():
				return b.And(b.Not(c), y)
			case y.IsTrue():
				return b.Or(b.Not(c), x)
			case y.IsFalse():
				return b.And(c, x)
			}
		}
		// Nested ite with the same condition collapses.
		if x.Op == OpIte && x.Args[0] == c {
			return b.Ite(c, x.Args[1], y)
		}
		if y.Op == OpIte && y.Args[0] == c {
			return b.Ite(c, x, y.Args[2])
		}
	case OpAnd:
		// Complementary literals: x and !x give false. (Quadratic scan
		// bounded to small conjunctions; the Builder already dedups.)
		if t.Width == 1 && len(t.Args) <= 64 {
			present := map[*Term]bool{}
			for _, a := range t.Args {
				present[a] = true
			}
			for _, a := range t.Args {
				if a.Op == OpNot && present[a.Args[0]] {
					return b.False()
				}
			}
		}
	}
	return t
}

// LFSPass wraps SimplifyLocal as a preprocessing pass.
func LFSPass() Pass { return Pass{Name: "lfs", Run: SimplifyLocal} }

// ContextSimplifier is the heavyweight formula simplification (HFS), the
// analogue of Z3's "ctx-solver-simplify" tactic: each conjunct is tested
// for redundancy under the rest of the formula by calling the solver, which
// makes it precise and expensive — exactly the trade-off the paper's
// evaluation measures.
type ContextSimplifier struct {
	// Solve decides a formula; wired to the standalone solver to avoid an
	// import cycle.
	Solve func(b *Builder, phi *Term) (sat bool, unknown bool)
	// MaxQueries bounds the number of solver calls per invocation.
	MaxQueries int
	// Queries counts solver calls across invocations.
	Queries int
}

// Simplify removes conjuncts implied by the remaining ones and detects
// top-level contradictions.
func (cs *ContextSimplifier) Simplify(b *Builder, phi *Term) *Term {
	conjs := Conjuncts(phi)
	if len(conjs) <= 1 {
		return phi
	}
	budget := cs.MaxQueries
	if budget <= 0 {
		budget = 64
	}
	kept := append([]*Term(nil), conjs...)
	for i := 0; i < len(kept); i++ {
		if budget == 0 {
			break
		}
		budget--
		cs.Queries++
		// rest ∧ ¬ci unsat  =>  ci is implied: drop it.
		rest := make([]*Term, 0, len(kept)-1)
		rest = append(rest, kept[:i]...)
		rest = append(rest, kept[i+1:]...)
		query := b.And(append(append([]*Term(nil), rest...), b.Not(kept[i]))...)
		sat, unknown := cs.Solve(b, query)
		if unknown {
			continue
		}
		if !sat {
			kept = rest
			i--
		}
	}
	return b.And(kept...)
}
