package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	if b.Add(x, y) != b.Add(x, y) {
		t.Error("identical terms must be pointer-equal")
	}
	if b.Var("x", 32) != x {
		t.Error("same variable name must intern to the same term")
	}
	if b.Const(5, 32) != b.Const(5, 32) {
		t.Error("constants must intern")
	}
}

func TestConstFolding(t *testing.T) {
	b := NewBuilder()
	c := func(v uint32) *Term { return b.Const(v, 32) }
	cases := []struct {
		got  *Term
		want uint32
	}{
		{b.Add(c(3), c(4)), 7},
		{b.Sub(c(3), c(4)), 0xFFFFFFFF},
		{b.Mul(c(6), c(7)), 42},
		{b.UDiv(c(42), c(5)), 8},
		{b.UDiv(c(42), c(0)), 0xFFFFFFFF},
		{b.URem(c(42), c(5)), 2},
		{b.URem(c(42), c(0)), 42},
		{b.Shl(c(1), c(4)), 16},
		{b.Shl(c(1), c(40)), 0},
		{b.Lshr(c(16), c(4)), 1},
		{b.Neg(c(1)), 0xFFFFFFFF},
		{b.Xor(c(0xF0), c(0xFF)), 0x0F},
	}
	for i, cse := range cases {
		if !cse.got.IsConst() || cse.got.Const != cse.want {
			t.Errorf("case %d: got %v, want %d", i, cse.got, cse.want)
		}
	}
}

func TestBooleanCanonicalization(t *testing.T) {
	b := NewBuilder()
	p := b.Var("p", 1)
	q := b.Var("q", 1)
	if b.And(p, b.True()) != p {
		t.Error("and with true must elide")
	}
	if !b.And(p, b.False()).IsFalse() {
		t.Error("and with false must absorb")
	}
	if b.Or(p, b.False()) != p {
		t.Error("or with false must elide")
	}
	if b.Not(b.Not(p)) != p {
		t.Error("double negation must cancel")
	}
	if b.And(p, q, p) != b.And(p, q) {
		t.Error("and must deduplicate")
	}
	if b.And(b.And(p, q), p) != b.And(p, q) {
		t.Error("and must flatten")
	}
	if !b.Eq(p, p).IsTrue() {
		t.Error("x = x must fold to true")
	}
	if b.Eq(p, b.True()) != p {
		t.Error("p = true must fold to p")
	}
	if b.Eq(b.False(), p) != b.Not(p) {
		t.Error("false = p must fold to !p")
	}
	if b.Ite(b.True(), p, q) != p || b.Ite(b.False(), p, q) != q {
		t.Error("ite with constant condition must fold")
	}
	if b.Ite(b.Not(p), q, p) != b.Ite(p, p, q) {
		t.Error("ite over a negated condition must swap arms")
	}
}

func TestComparisonFolding(t *testing.T) {
	b := NewBuilder()
	c := func(v uint32) *Term { return b.Const(v, 8) }
	if !b.Ult(c(3), c(4)).IsTrue() || !b.Ult(c(4), c(3)).IsFalse() {
		t.Error("ult folding wrong")
	}
	// Signed: 0xFF is -1 as int8.
	if !b.Slt(c(0xFF), c(0)).IsTrue() {
		t.Error("slt must treat 0xFF as negative at width 8")
	}
	if !b.Sle(c(0x80), c(0x7F)).IsTrue() {
		t.Error("INT8_MIN <= INT8_MAX must hold")
	}
	x := b.Var("x", 8)
	if !b.Ult(x, x).IsFalse() || !b.Ule(x, x).IsTrue() {
		t.Error("reflexive comparisons must fold")
	}
}

func TestSizeAndVars(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	sum := b.Add(x, y)
	phi := b.Eq(b.Mul(sum, sum), b.Const(4, 32))
	if got := Size(phi); got != 6 { // phi, mul, sum, x, y, const
		t.Errorf("Size: got %d, want 6", got)
	}
	vars := Vars(phi)
	if len(vars) != 2 {
		t.Errorf("Vars: got %d, want 2", len(vars))
	}
	// TreeSize counts the shared sum (3 nodes) twice: eq + mul + 2*3 + const.
	if got := TreeSize(phi, 1000); got != 9 {
		t.Errorf("TreeSize: got %d, want 9", got)
	}
	if got := TreeSize(phi, 3); got != 3 {
		t.Errorf("TreeSize cap: got %d, want 3", got)
	}
}

func TestEvalMatchesGoSemantics(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	f := func(xv, yv uint32) bool {
		a := Assignment{x: xv, y: yv}
		if Eval(b.Add(x, y), a) != xv+yv {
			return false
		}
		if Eval(b.Mul(x, y), a) != xv*yv {
			return false
		}
		if Eval(b.Slt(x, y), a) != boolVal(int32(xv) < int32(yv)) {
			return false
		}
		if Eval(b.Sle(x, y), a) != boolVal(int32(xv) <= int32(yv)) {
			return false
		}
		if Eval(b.Ult(x, y), a) != boolVal(xv < yv) {
			return false
		}
		if yv != 0 && Eval(b.UDiv(x, y), a) != xv/yv {
			return false
		}
		sh := yv % 64
		want := uint32(0)
		if sh < 32 {
			want = xv << sh
		}
		if Eval(b.Shl(x, b.Const(sh, 32)), a) != want {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstitute(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	phi := b.Eq(b.Add(x, y), b.Const(10, 32))
	got := Substitute(b, phi, map[*Term]*Term{x: b.Const(4, 32)})
	want := b.Eq(y, b.Const(6, 32))
	// Substitution folds 4 + y = 10; depending on canonicalization this is
	// Eq(Add(4, y), 10). Either form must be semantically y = 6.
	if Eval(got, Assignment{y: 6}) != 1 || Eval(got, Assignment{y: 7}) != 0 {
		t.Errorf("substitute: got %v, want equivalent of %v", got, want)
	}
}

func TestRenameVars(t *testing.T) {
	b := NewBuilder()
	x := b.Var("x", 32)
	phi := b.Eq(x, b.Const(1, 32))
	got := RenameVars(b, phi, func(n string) string { return n + "@1" })
	vars := Vars(got)
	if len(vars) != 1 || vars[0].Name != "x@1" {
		t.Errorf("rename: got vars %v", vars)
	}
}

func TestModInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a := rng.Uint32() | 1 // odd
		inv := modInverse(a, 32)
		if a*inv != 1 {
			t.Fatalf("modInverse(%d) = %d: product %d", a, inv, a*inv)
		}
	}
	if got := modInverse(3, 8); mask(3*got, 8) != 1 {
		t.Errorf("width-8 inverse of 3 wrong: %d", got)
	}
}

func TestBuilderAccounting(t *testing.T) {
	b := NewBuilder()
	if b.NumTerms() != 0 {
		t.Error("fresh builder must be empty")
	}
	x := b.Var("x", 32)
	b.Add(x, b.Const(1, 32))
	if b.NumTerms() != 3 {
		t.Errorf("NumTerms: got %d, want 3", b.NumTerms())
	}
	if b.EstimatedBytes() <= 0 {
		t.Error("EstimatedBytes must grow")
	}
	v1 := b.FreshVar(32)
	v2 := b.FreshVar(32)
	if v1 == v2 {
		t.Error("FreshVar must not collide")
	}
}

func TestMixedWidthPanics(t *testing.T) {
	b := NewBuilder()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mixed-width equality")
		}
	}()
	b.Eq(b.Var("a", 8), b.Var("b", 16))
}
