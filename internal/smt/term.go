// Package smt implements the bit-vector SMT terms, preprocessing passes,
// and solving front-end used throughout the analysis. Terms are hash-consed
// through a Builder; booleans are width-1 bit-vectors, which keeps the
// logical and bit-vector fragments uniform all the way down to bit-blasting.
//
// The preprocessing passes mirror the ones the paper lists for its solver
// (§4): forward and backward constant propagation, equality propagation,
// unconstrained-variable elimination, Gaussian elimination, and strength
// reduction. They are exposed individually so the fused solver can run them
// per function on local conditions (Algorithm 6) and so the evaluation can
// ablate them.
package smt

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a term operator.
type Op int

// Term operators. Comparison and equality operators yield width-1 terms.
const (
	OpVar   Op = iota // free variable
	OpConst           // constant (Const holds the value, masked to Width)
	OpNot             // bitwise complement; logical not on width 1
	OpAnd             // n-ary bitwise and; logical and on width 1
	OpOr              // n-ary bitwise or; logical or on width 1
	OpXor             // bitwise xor
	OpAdd             // modular addition
	OpSub             // modular subtraction
	OpMul             // modular multiplication
	OpUDiv            // unsigned division (x/0 = all-ones, the SMT-LIB rule)
	OpURem            // unsigned remainder (x%0 = x)
	OpNeg             // two's-complement negation
	OpShl             // shift left (shift amounts >= width give 0)
	OpLshr            // logical shift right
	OpEq              // equality, any width -> width 1
	OpUlt             // unsigned less-than -> width 1
	OpUle             // unsigned less-or-equal -> width 1
	OpSlt             // signed less-than -> width 1
	OpSle             // signed less-or-equal -> width 1
	OpIte             // if-then-else: Args[0] is width 1
)

var opNames = [...]string{
	OpVar: "var", OpConst: "const", OpNot: "not", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpAdd: "bvadd", OpSub: "bvsub", OpMul: "bvmul",
	OpUDiv: "bvudiv", OpURem: "bvurem", OpNeg: "bvneg", OpShl: "bvshl",
	OpLshr: "bvlshr", OpEq: "=", OpUlt: "bvult", OpUle: "bvule",
	OpSlt: "bvslt", OpSle: "bvsle", OpIte: "ite",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Term is an immutable, hash-consed term. Terms must only be created
// through a Builder; two terms from the same Builder are semantically
// identical exactly when their pointers are equal.
type Term struct {
	ID    int
	Op    Op
	Width int // result width in bits; 1 encodes boolean
	Args  []*Term
	Const uint32 // value for OpConst
	Name  string // name for OpVar
}

// IsTrue reports whether t is the constant true (width-1 one).
func (t *Term) IsTrue() bool { return t.Op == OpConst && t.Width == 1 && t.Const == 1 }

// IsFalse reports whether t is the constant false (width-1 zero).
func (t *Term) IsFalse() bool { return t.Op == OpConst && t.Width == 1 && t.Const == 0 }

// IsConst reports whether t is a constant.
func (t *Term) IsConst() bool { return t.Op == OpConst }

// String renders the term in an SMT-LIB-like prefix syntax.
func (t *Term) String() string {
	switch t.Op {
	case OpVar:
		return t.Name
	case OpConst:
		if t.Width == 1 {
			if t.Const == 1 {
				return "true"
			}
			return "false"
		}
		return fmt.Sprintf("#x%08x", t.Const)
	default:
		var b strings.Builder
		b.WriteByte('(')
		b.WriteString(t.Op.String())
		for _, a := range t.Args {
			b.WriteByte(' ')
			b.WriteString(a.String())
		}
		b.WriteByte(')')
		return b.String()
	}
}

// mask returns v truncated to w bits.
func mask(v uint32, w int) uint32 {
	if w >= 32 {
		return v
	}
	return v & (1<<uint(w) - 1)
}

// signBit reports whether the top bit of a w-bit value is set.
func signBit(v uint32, w int) bool { return v>>(uint(w)-1)&1 == 1 }

// Builder hash-conses terms and performs cheap local canonicalization
// (constant folding, unit elision, double negation). Heavier rewriting
// lives in the preprocessing passes.
type Builder struct {
	terms map[string]*Term
	next  int
	fresh int
	// Bytes-accounting for the memory studies: an estimate of the heap
	// held by all terms ever built.
	bytes int64
}

// FreshVar returns a new variable guaranteed not to collide with any other
// name, used by the unconstrained-elimination and QE passes.
func (b *Builder) FreshVar(width int) *Term {
	b.fresh++
	return b.Var(fmt.Sprintf("u!%d", b.fresh), width)
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{terms: map[string]*Term{}}
}

// NumTerms returns the number of distinct terms built.
func (b *Builder) NumTerms() int { return b.next }

// EstimatedBytes returns an estimate of the memory held by all terms.
func (b *Builder) EstimatedBytes() int64 { return b.bytes }

func (b *Builder) intern(op Op, width int, c uint32, name string, args []*Term) *Term {
	var k strings.Builder
	k.WriteString(strconv.Itoa(int(op)))
	k.WriteByte(':')
	k.WriteString(strconv.Itoa(width))
	k.WriteByte(':')
	k.WriteString(strconv.FormatUint(uint64(c), 16))
	k.WriteByte(':')
	k.WriteString(name)
	for _, a := range args {
		k.WriteByte(',')
		k.WriteString(strconv.Itoa(a.ID))
	}
	key := k.String()
	if t, ok := b.terms[key]; ok {
		return t
	}
	t := &Term{ID: b.next, Op: op, Width: width, Args: args, Const: c, Name: name}
	b.next++
	b.terms[key] = t
	b.bytes += int64(64 + 8*len(args) + len(name) + len(key))
	return t
}

// Var returns the variable with the given name and width. The same name
// always maps to the same term, so widths must be used consistently.
func (b *Builder) Var(name string, width int) *Term {
	return b.intern(OpVar, width, 0, name, nil)
}

// Const returns the w-bit constant v (truncated to w bits).
func (b *Builder) Const(v uint32, width int) *Term {
	return b.intern(OpConst, width, mask(v, width), "", nil)
}

// True returns the boolean constant true.
func (b *Builder) True() *Term { return b.Const(1, 1) }

// False returns the boolean constant false.
func (b *Builder) False() *Term { return b.Const(0, 1) }

// Bool returns the boolean constant for v.
func (b *Builder) Bool(v bool) *Term {
	if v {
		return b.True()
	}
	return b.False()
}

// Not returns the bitwise complement of x.
func (b *Builder) Not(x *Term) *Term {
	if x.IsConst() {
		return b.Const(^x.Const, x.Width)
	}
	if x.Op == OpNot {
		return x.Args[0]
	}
	return b.intern(OpNot, x.Width, 0, "", []*Term{x})
}

// And returns the n-ary conjunction (bitwise and) of xs, flattening nested
// conjunctions and eliding units. And() with no arguments is all-ones of
// width 1 (true).
func (b *Builder) And(xs ...*Term) *Term { return b.nary(OpAnd, xs) }

// Or returns the n-ary disjunction (bitwise or) of xs.
func (b *Builder) Or(xs ...*Term) *Term { return b.nary(OpOr, xs) }

func (b *Builder) nary(op Op, xs []*Term) *Term {
	width := 1
	if len(xs) > 0 {
		width = xs[0].Width
	}
	allOnes := mask(^uint32(0), width)
	unit, zero := allOnes, uint32(0) // and: unit=1s, absorbing=0
	if op == OpOr {
		unit, zero = 0, allOnes
	}
	var flat []*Term
	seen := map[*Term]bool{}
	var push func(t *Term) bool // returns false when absorbed
	push = func(t *Term) bool {
		if t.Width != width {
			panic(fmt.Sprintf("smt: %s: mixed widths %d and %d", op, width, t.Width))
		}
		if t.Op == op {
			for _, a := range t.Args {
				if !push(a) {
					return false
				}
			}
			return true
		}
		if t.IsConst() {
			if t.Const == unit {
				return true
			}
			if t.Const == zero {
				return false
			}
		}
		if !seen[t] {
			seen[t] = true
			flat = append(flat, t)
		}
		return true
	}
	for _, x := range xs {
		if !push(x) {
			return b.Const(zero, width)
		}
	}
	switch len(flat) {
	case 0:
		return b.Const(unit, width)
	case 1:
		return flat[0]
	}
	return b.intern(op, width, 0, "", flat)
}

func (b *Builder) binary(op Op, x, y *Term, width int) *Term {
	if x.IsConst() && y.IsConst() {
		if v, ok := foldBinary(op, x.Const, y.Const, x.Width); ok {
			return b.Const(v, width)
		}
	}
	return b.intern(op, width, 0, "", []*Term{x, y})
}

func foldBinary(op Op, x, y uint32, w int) (uint32, bool) {
	switch op {
	case OpXor:
		return x ^ y, true
	case OpAdd:
		return mask(x+y, w), true
	case OpSub:
		return mask(x-y, w), true
	case OpMul:
		return mask(x*y, w), true
	case OpUDiv:
		if y == 0 {
			return mask(^uint32(0), w), true
		}
		return x / y, true
	case OpURem:
		if y == 0 {
			return x, true
		}
		return x % y, true
	case OpShl:
		if y >= uint32(w) {
			return 0, true
		}
		return mask(x<<y, w), true
	case OpLshr:
		if y >= uint32(w) {
			return 0, true
		}
		return x >> y, true
	case OpEq:
		return boolVal(x == y), true
	case OpUlt:
		return boolVal(x < y), true
	case OpUle:
		return boolVal(x <= y), true
	case OpSlt:
		return boolVal(signedLess(x, y, w, false)), true
	case OpSle:
		return boolVal(signedLess(x, y, w, true)), true
	}
	return 0, false
}

func boolVal(v bool) uint32 {
	if v {
		return 1
	}
	return 0
}

func signedLess(x, y uint32, w int, orEqual bool) bool {
	sx, sy := signBit(x, w), signBit(y, w)
	if sx != sy {
		return sx // negative < non-negative
	}
	if orEqual {
		return x <= y
	}
	return x < y
}

// Xor returns the bitwise exclusive-or of x and y.
func (b *Builder) Xor(x, y *Term) *Term {
	if x == y {
		return b.Const(0, x.Width)
	}
	return b.binary(OpXor, x, y, x.Width)
}

// Add returns x + y modulo 2^width.
func (b *Builder) Add(x, y *Term) *Term { return b.binary(OpAdd, x, y, x.Width) }

// Sub returns x - y modulo 2^width.
func (b *Builder) Sub(x, y *Term) *Term {
	if x == y {
		return b.Const(0, x.Width)
	}
	return b.binary(OpSub, x, y, x.Width)
}

// Mul returns x * y modulo 2^width.
func (b *Builder) Mul(x, y *Term) *Term { return b.binary(OpMul, x, y, x.Width) }

// UDiv returns unsigned x / y, with x/0 = all-ones.
func (b *Builder) UDiv(x, y *Term) *Term { return b.binary(OpUDiv, x, y, x.Width) }

// URem returns unsigned x % y, with x%0 = x.
func (b *Builder) URem(x, y *Term) *Term { return b.binary(OpURem, x, y, x.Width) }

// Neg returns the two's-complement negation of x.
func (b *Builder) Neg(x *Term) *Term {
	if x.IsConst() {
		return b.Const(mask(-x.Const, x.Width), x.Width)
	}
	if x.Op == OpNeg {
		return x.Args[0]
	}
	return b.intern(OpNeg, x.Width, 0, "", []*Term{x})
}

// Shl returns x shifted left by y bits.
func (b *Builder) Shl(x, y *Term) *Term { return b.binary(OpShl, x, y, x.Width) }

// Lshr returns x logically shifted right by y bits.
func (b *Builder) Lshr(x, y *Term) *Term { return b.binary(OpLshr, x, y, x.Width) }

// Eq returns the boolean x = y.
func (b *Builder) Eq(x, y *Term) *Term {
	if x.Width != y.Width {
		panic(fmt.Sprintf("smt: =: mixed widths %d and %d", x.Width, y.Width))
	}
	if x == y {
		return b.True()
	}
	// Boolean equality with a constant reduces to the other side.
	if x.Width == 1 {
		if x.IsTrue() {
			return y
		}
		if x.IsFalse() {
			return b.Not(y)
		}
		if y.IsTrue() {
			return x
		}
		if y.IsFalse() {
			return b.Not(x)
		}
	}
	if x.ID > y.ID { // canonical argument order
		x, y = y, x
	}
	return b.binary(OpEq, x, y, 1)
}

// Ult returns the boolean unsigned x < y.
func (b *Builder) Ult(x, y *Term) *Term {
	if x == y {
		return b.False()
	}
	return b.binary(OpUlt, x, y, 1)
}

// Ule returns the boolean unsigned x <= y.
func (b *Builder) Ule(x, y *Term) *Term {
	if x == y {
		return b.True()
	}
	return b.binary(OpUle, x, y, 1)
}

// Slt returns the boolean signed x < y.
func (b *Builder) Slt(x, y *Term) *Term {
	if x == y {
		return b.False()
	}
	return b.binary(OpSlt, x, y, 1)
}

// Sle returns the boolean signed x <= y.
func (b *Builder) Sle(x, y *Term) *Term {
	if x == y {
		return b.True()
	}
	return b.binary(OpSle, x, y, 1)
}

// Ite returns if cond then a else b.
func (b *Builder) Ite(cond, x, y *Term) *Term {
	if cond.Width != 1 {
		panic("smt: ite condition must have width 1")
	}
	if x.Width != y.Width {
		panic(fmt.Sprintf("smt: ite: mixed widths %d and %d", x.Width, y.Width))
	}
	if cond.IsTrue() || x == y {
		return x
	}
	if cond.IsFalse() {
		return y
	}
	if cond.Op == OpNot {
		return b.Ite(cond.Args[0], y, x)
	}
	return b.intern(OpIte, x.Width, 0, "", []*Term{cond, x, y})
}

// Implies returns the boolean x -> y.
func (b *Builder) Implies(x, y *Term) *Term {
	if x.Width != 1 || y.Width != 1 {
		panic("smt: implies requires width-1 operands")
	}
	return b.Or(b.Not(x), y)
}

// Size returns the number of distinct sub-terms of t (its DAG size).
func Size(t *Term) int {
	seen := map[*Term]bool{}
	var walk func(*Term)
	count := 0
	walk = func(t *Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		count++
		for _, a := range t.Args {
			walk(a)
		}
	}
	walk(t)
	return count
}

// TreeSize returns the size of t expanded as a tree, capped at limit to
// avoid exponential blowup; it returns limit if the cap is hit. This is the
// measure the paper's condition-size arguments use (cloned conditions grow
// as trees).
func TreeSize(t *Term, limit int) int {
	var walk func(*Term, int) int
	walk = func(t *Term, budget int) int {
		if budget <= 0 {
			return 0
		}
		n := 1
		for _, a := range t.Args {
			n += walk(a, budget-n)
			if n >= budget {
				return budget
			}
		}
		return n
	}
	return walk(t, limit)
}

// Vars returns the distinct free variables of t in first-occurrence order.
func Vars(t *Term) []*Term {
	seen := map[*Term]bool{}
	var out []*Term
	var walk func(*Term)
	walk = func(t *Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		if t.Op == OpVar {
			out = append(out, t)
			return
		}
		for _, a := range t.Args {
			walk(a)
		}
	}
	walk(t)
	return out
}
