package smt_test

import (
	"math/rand"
	"strings"
	"testing"

	"fusion/internal/sat"
	"fusion/internal/smt"
	"fusion/internal/solver"
)

func TestToSMTLIBShape(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	p := b.Var("foo.v3@2", 1) // needs quoting
	phi := b.And(b.Ult(x, b.Const(10, 32)), p)
	s := smt.ToSMTLIB(phi)
	for _, want := range []string{
		"(set-logic QF_BV)",
		"(declare-const x (_ BitVec 32))",
		"(declare-const |foo.v3@2| (_ BitVec 1))",
		"(assert ",
		"(bvult x (_ bv10 32))",
		"(check-sat)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// Balanced parentheses.
	depth := 0
	for _, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth < 0 {
			t.Fatal("unbalanced parentheses")
		}
	}
	if depth != 0 {
		t.Fatal("unbalanced parentheses at end")
	}
}

func TestSMTLIBRoundTrip(t *testing.T) {
	b := smt.NewBuilder()
	x, y := b.Var("x", 32), b.Var("y", 32)
	c := b.Var("cond", 1)
	cases := []*smt.Term{
		b.Eq(b.Add(x, y), b.Const(100, 32)),
		b.And(b.Ult(x, y), b.Not(b.Eq(x, b.Const(0, 32)))),
		b.Or(c, b.Slt(x, b.Const(5, 32))),
		b.Eq(b.Ite(c, x, y), b.Mul(x, b.Const(3, 32))),
		b.Eq(b.UDiv(x, y), b.URem(y, x)),
		b.Sle(b.Shl(x, b.Const(2, 32)), b.Lshr(y, b.Const(1, 32))),
		b.Eq(b.Xor(x, b.Neg(y)), b.Not(x)),
	}
	for i, phi := range cases {
		text := smt.ToSMTLIB(phi)
		b2 := smt.NewBuilder()
		got, err := smt.ParseSMTLIB(b2, text)
		if err != nil {
			t.Fatalf("case %d: parse: %v\n%s", i, err, text)
		}
		// Semantic equality on random assignments: rebuild the original in
		// b2's namespace for comparison.
		vars2 := map[string]*smt.Term{}
		for _, v := range smt.Vars(got) {
			vars2[v.Name] = v
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for trial := 0; trial < 50; trial++ {
			a1 := smt.Assignment{}
			a2 := smt.Assignment{}
			for _, v := range smt.Vars(phi) {
				val := rng.Uint32()
				if v.Width == 1 {
					val &= 1
				}
				a1[v] = val
				if v2 := vars2[v.Name]; v2 != nil {
					a2[v2] = val
				}
			}
			if smt.Eval(phi, a1) != smt.Eval(got, a2) {
				t.Fatalf("case %d: semantics changed after round trip\noriginal: %v\nparsed:   %v\nscript:\n%s",
					i, phi, got, text)
			}
		}
	}
}

func TestParseSMTLIBHandwritten(t *testing.T) {
	src := `
; a comment
(set-logic QF_BV)
(declare-const a (_ BitVec 8))
(declare-fun b () (_ BitVec 8))
(assert (bvult a b))
(assert (= (bvadd a (_ bv1 8)) #x0a))
(check-sat)
`
	b := smt.NewBuilder()
	phi, err := smt.ParseSMTLIB(b, src)
	if err != nil {
		t.Fatal(err)
	}
	r := solver.Solve(b, phi, solver.Options{WantModel: true})
	if r.Status != sat.Sat {
		t.Fatalf("got %s, want sat", r.Status)
	}
	if smt.Eval(phi, r.Model) != 1 {
		t.Fatal("model check failed")
	}
	a := b.Var("a", 8)
	if r.Model[a] != 9 {
		t.Errorf("a = %d, want 9", r.Model[a])
	}
}

func TestParseSMTLIBErrors(t *testing.T) {
	cases := []string{
		"(assert",                         // unbalanced
		"(frobnicate x)",                  // unknown command
		"(assert (bvfoo x y))",            // unknown op inside assert needs decl first
		"(declare-const x (Array))",       // unsupported sort
		"(declare-const x (_ BitVec 99))", // width out of range
		"(assert (= x y))",                // undeclared symbols
	}
	for _, src := range cases {
		if _, err := smt.ParseSMTLIB(smt.NewBuilder(), src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestSMTLIBBooleanSort(t *testing.T) {
	src := `
(declare-const p Bool)
(assert p)
(check-sat)
`
	b := smt.NewBuilder()
	phi, err := smt.ParseSMTLIB(b, src)
	if err != nil {
		t.Fatal(err)
	}
	if phi != b.Var("p", 1) {
		t.Errorf("got %v, want the variable p", phi)
	}
}
