package smt_test

import (
	"math/rand"
	"testing"

	"fusion/internal/smt"
)

// genArith returns a random width-4 bit-vector term over the given
// variables.
func genArith(b *smt.Builder, rng *rand.Rand, vars []*smt.Term, depth int) *smt.Term {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return b.Const(rng.Uint32()&15, 4)
	}
	x := genArith(b, rng, vars, depth-1)
	y := genArith(b, rng, vars, depth-1)
	switch rng.Intn(6) {
	case 0:
		return b.Add(x, y)
	case 1:
		return b.Sub(x, y)
	case 2:
		return b.Mul(x, y)
	case 3:
		return b.UDiv(x, y)
	case 4:
		return b.URem(x, y)
	default:
		return b.Xor(x, y)
	}
}

// genFormula returns a random boolean term (a small constraint system) over
// the given variables.
func genFormula(b *smt.Builder, rng *rand.Rand, vars []*smt.Term, depth int) *smt.Term {
	if depth <= 0 {
		x := genArith(b, rng, vars, 2)
		y := genArith(b, rng, vars, 2)
		switch rng.Intn(5) {
		case 0:
			return b.Eq(x, y)
		case 1:
			return b.Ult(x, y)
		case 2:
			return b.Ule(x, y)
		case 3:
			return b.Slt(x, y)
		default:
			return b.Sle(x, y)
		}
	}
	switch rng.Intn(4) {
	case 0:
		return b.And(genFormula(b, rng, vars, depth-1), genFormula(b, rng, vars, depth-1))
	case 1:
		return b.Or(genFormula(b, rng, vars, depth-1), genFormula(b, rng, vars, depth-1))
	case 2:
		return b.Not(genFormula(b, rng, vars, depth-1))
	default:
		return genFormula(b, rng, vars, depth-1)
	}
}

// exhaustSat decides satisfiability of a width-4 formula by enumerating
// every assignment to the given variables.
func exhaustSat(t *testing.T, phi *smt.Term, vars []*smt.Term) bool {
	t.Helper()
	if len(vars) > 4 {
		t.Fatalf("too many variables for exhaustive enumeration: %d", len(vars))
	}
	n := 1
	for range vars {
		n *= 16
	}
	a := smt.Assignment{}
	for i := 0; i < n; i++ {
		x := i
		for _, v := range vars {
			a[v] = uint32(x & 15)
			x >>= 4
		}
		if smt.Eval(phi, a) == 1 {
			return true
		}
	}
	return false
}

// varUnion collects the variables of all terms, preserving first-seen
// order. Passes may eliminate variables but never introduce ones that
// change the satisfiability question, so enumerating the union decides all
// terms at once.
func varUnion(ts ...*smt.Term) []*smt.Term {
	seen := map[*smt.Term]bool{}
	var out []*smt.Term
	for _, t := range ts {
		for _, v := range smt.Vars(t) {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// TestDefaultPassesPreserveSat is the property test for the preprocessing
// pipeline: every pass of DefaultPasses (and the pipeline as a whole) must
// preserve satisfiability — not equivalence; passes may rewrite or drop
// variables — on random small formulas, checked by exhaustive enumeration.
func TestDefaultPassesPreserveSat(t *testing.T) {
	rng := rand.New(rand.NewSource(20240806))
	passes := smt.DefaultPasses()
	for trial := 0; trial < 400; trial++ {
		b := smt.NewBuilder()
		nv := 1 + rng.Intn(3)
		vars := make([]*smt.Term, nv)
		for i := range vars {
			vars[i] = b.Var(string(rune('x'+i)), 4)
		}
		phi := genFormula(b, rng, vars, 1+rng.Intn(2))
		want := exhaustSat(t, phi, varUnion(phi))

		// Each pass in isolation.
		for _, p := range passes {
			psi := p.Run(b, phi)
			if got := exhaustSat(t, psi, varUnion(phi, psi)); got != want {
				t.Fatalf("trial %d: pass %s changed satisfiability %v -> %v\n  before: %s\n  after:  %s",
					trial, p.Name, want, got, smt.ToSMTLIB(phi), smt.ToSMTLIB(psi))
			}
		}

		// The full pipeline, applied in order like the solver's
		// preprocessing round.
		psi := phi
		for _, p := range passes {
			psi = p.Run(b, psi)
		}
		if got := exhaustSat(t, psi, varUnion(phi, psi)); got != want {
			t.Fatalf("trial %d: pipeline changed satisfiability %v -> %v\n  before: %s\n  after:  %s",
				trial, want, got, smt.ToSMTLIB(phi), smt.ToSMTLIB(psi))
		}
	}
}
