package driver

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSuperviseInline covers the unsupervised (Grace<=0) path: values
// pass through, panics are contained with the superviseRun boundary.
func TestSuperviseInline(t *testing.T) {
	v, fail, abandoned := Supervise(context.Background(), Watchdog{}, time.Time{}, nil,
		"u", "check", func() int { return 42 })
	if v != 42 || fail != nil || abandoned {
		t.Fatalf("got (%v, %v, %v)", v, fail, abandoned)
	}

	_, fail, abandoned = Supervise(context.Background(), Watchdog{}, time.Time{}, nil,
		"u", "check", func() int { panic("boom") })
	if fail == nil || abandoned {
		t.Fatalf("panic not contained: (%v, %v)", fail, abandoned)
	}
	if fail.Unit != "u" || fail.Stage != "check" || fail.Value != "boom" {
		t.Errorf("failure fields: %+v", fail)
	}
	// The sanitized stack ends at the boundary: the panicking closure is
	// the deepest application frame, and Supervise's own caller frames
	// below it are cut (the recovery closure above the panic is kept by
	// design — it is identical on the inline and supervised paths).
	if !strings.Contains(fail.Stack, "TestSuperviseInline") {
		t.Errorf("panicking closure missing from stack:\n%s", fail.Stack)
	}
	if strings.Contains(fail.Stack, "driver.Supervise(") || strings.Contains(fail.Stack, "testing.tRunner") {
		t.Errorf("caller frames below the boundary leaked into stack:\n%s", fail.Stack)
	}
}

// TestSuperviseBoundaryInvariant: the inline and supervised paths must
// produce the same sanitized stack (and so the same digest) for the
// same panic, or crash grouping would depend on whether the watchdog
// was armed.
func TestSuperviseBoundaryInvariant(t *testing.T) {
	crash := func() int { panic("same crash") }
	var hb atomic.Int64
	_, inline, _ := Supervise(context.Background(), Watchdog{}, time.Time{}, nil,
		"u", "check", crash)
	_, supervised, _ := Supervise(context.Background(), Watchdog{Grace: time.Minute},
		time.Now().Add(time.Minute), &hb, "u", "check", crash)
	if inline == nil || supervised == nil {
		t.Fatalf("missing failure: inline=%v supervised=%v", inline, supervised)
	}
	if inline.Digest() != supervised.Digest() {
		t.Errorf("digest differs between inline and supervised:\n%s\nvs\n%s",
			inline.Stack, supervised.Stack)
	}
}

// TestSuperviseAbandonsStalled: a function that never beats its heart
// and never returns is abandoned roughly Grace after its deadline, and
// the orphaned goroutine unwinds once its context is cancelled.
func TestSuperviseAbandonsStalled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var hb atomic.Int64
	release := make(chan struct{})
	deadline := time.Now().Add(10 * time.Millisecond)
	start := time.Now()
	_, fail, abandoned := Supervise(ctx, Watchdog{Grace: 30 * time.Millisecond},
		deadline, &hb, "u", "check", func() int {
			<-release
			return 1
		})
	elapsed := time.Since(start)
	if !abandoned || fail != nil {
		t.Fatalf("want abandonment, got (%v, %v)", fail, abandoned)
	}
	if elapsed > 2*time.Second {
		t.Errorf("abandonment took %v, want well within the grace window's order", elapsed)
	}
	close(release) // let the orphan unwind
}

// TestSuperviseHealthyHeartbeatNotAbandoned: a slow function whose
// heartbeat keeps moving is never abandoned, even past its deadline.
func TestSuperviseHealthyHeartbeatNotAbandoned(t *testing.T) {
	var hb atomic.Int64
	deadline := time.Now() // already past
	v, fail, abandoned := Supervise(context.Background(),
		Watchdog{Grace: 40 * time.Millisecond, Poll: time.Millisecond},
		deadline, &hb, "u", "check", func() int {
			for i := 0; i < 20; i++ {
				hb.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
			return 7
		})
	if abandoned || fail != nil || v != 7 {
		t.Fatalf("healthy unit mistreated: (%v, %v, %v)", v, fail, abandoned)
	}
}

// TestSuperviseBeforeDeadlineNotAbandoned: a flat heartbeat alone must
// not trigger abandonment while the unit is still within its deadline.
func TestSuperviseBeforeDeadlineNotAbandoned(t *testing.T) {
	var hb atomic.Int64
	deadline := time.Now().Add(time.Hour)
	v, fail, abandoned := Supervise(context.Background(),
		Watchdog{Grace: 5 * time.Millisecond, Poll: time.Millisecond},
		deadline, &hb, "u", "check", func() int {
			time.Sleep(60 * time.Millisecond) // flat, but entitled to its time
			return 3
		})
	if abandoned || fail != nil || v != 3 {
		t.Fatalf("pre-deadline unit mistreated: (%v, %v, %v)", v, fail, abandoned)
	}
}
