package driver

import (
	"context"
	"sync/atomic"
	"time"

	"fusion/internal/failure"
)

// Watchdog configures per-worker supervision of a solving unit. The
// watched function publishes progress on a heartbeat counter (the SAT
// search bumps it on every conflict and decision); a monitor goroutine
// samples the counter and hard-abandons the unit once the heartbeat has
// been flat for the grace window AND the unit is past its deadline. A
// healthy long solve — heart beating — is never abandoned before its
// deadline, and a wedged one is cut loose at deadline+Grace instead of
// holding its worker hostage forever.
type Watchdog struct {
	// Grace is how long the heartbeat must be flat, at or past the
	// deadline, before the unit is abandoned. <= 0 disables supervision:
	// the function runs inline on the caller's goroutine.
	Grace time.Duration
	// Poll is the sampling interval; <= 0 derives Grace/8, clamped to
	// [1ms, 50ms].
	Poll time.Duration
}

type superviseResult[T any] struct {
	v    T
	fail *failure.UnitFailure
}

// Supervise runs fn under the watchdog. It returns fn's value, a
// contained panic as a *UnitFailure, and whether the unit was abandoned.
// On abandonment the returned value is T's zero value and the caller
// must treat the unit's session as lost: the orphaned goroutine still
// owns it and will unwind only when ctx is cancelled (callers cancel
// their per-attempt context on abandonment).
//
// Supervise is a function, not a Watchdog method, because Go methods
// cannot introduce type parameters.
func Supervise[T any](ctx context.Context, w Watchdog, deadline time.Time, hb *atomic.Int64, unit, stage string, fn func() T) (T, *failure.UnitFailure, bool) {
	if w.Grace <= 0 {
		// Unsupervised path shares superviseRun so a panic produces the
		// same boundary-truncated stack (and digest) either way.
		v, fail := superviseRun(unit, stage, fn)
		return v, fail, false
	}
	poll := w.Poll
	if poll <= 0 {
		poll = w.Grace / 8
	}
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}

	done := make(chan superviseResult[T], 1) // buffered: orphan must not block
	go func() {
		v, fail := superviseRun(unit, stage, fn)
		done <- superviseResult[T]{v, fail}
	}()

	tick := time.NewTicker(poll)
	defer tick.Stop()
	last := hb.Load()
	lastChange := time.Now()
	for {
		select {
		case r := <-done:
			return r.v, r.fail, false
		case <-tick.C:
			if cur := hb.Load(); cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			// Flat heartbeat alone is not enough: before the deadline the
			// unit is entitled to its time (it may be in a non-search
			// phase that doesn't beat). Past the deadline a healthy
			// search aborts itself via its own deadline polling, so a
			// flat heartbeat lingering Grace beyond it means wedged.
			overdue := deadline.IsZero() && ctx != nil && ctx.Err() != nil ||
				!deadline.IsZero() && time.Now().After(deadline)
			if overdue && time.Since(lastChange) >= w.Grace {
				var zero T
				return zero, nil, true
			}
		}
	}
}

// superviseRun invokes fn with panic containment. The recover must live
// on the same goroutine as fn — a goroutine's panic cannot be recovered
// by its spawner — and the function name is the containment boundary
// that FromPanicAt truncates stacks at, keeping digests identical
// between the inline and supervised paths.
func superviseRun[T any](unit, stage string, fn func() T) (v T, fail *failure.UnitFailure) {
	defer func() {
		if r := recover(); r != nil {
			fail = failure.FromPanicAt(unit, stage, r, "driver.superviseRun")
		}
	}()
	v = fn()
	return v, nil
}
