package driver

import (
	"context"
	"sync"
	"sync/atomic"
)

// ParallelCheck runs fn(i) for every i in [0, n) on up to workers
// goroutines and returns the results indexed by i, so the output is
// identical whatever the worker count. With workers <= 1 (or n < 2) it
// runs inline.
//
// Every index is evaluated even after ctx is cancelled: fn is expected to
// observe ctx itself and return a cheap partial result (engines return
// sat.Unknown verdicts), which keeps slots aligned with inputs instead of
// dropping work silently. ParallelCheck returns only after every worker
// has finished, so callers never leak a checking goroutine.
func ParallelCheck[T any](ctx context.Context, n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
