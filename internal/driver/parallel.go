package driver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"fusion/internal/failure"
)

// ParallelCheck runs fn(i) for every i in [0, n) on up to workers
// goroutines and returns the results indexed by i, so the output is
// identical whatever the worker count. With workers <= 1 (or n < 2) it
// runs inline.
//
// Every work item runs under recover: a panicking fn(i) leaves its
// result slot at the zero value and records a *failure.UnitFailure in
// the parallel failures slice instead of taking down the batch. The
// failure's Unit and Stage are generic ("item i" / "check"); callers
// that know better names rewrite them. Both slices are index-stable,
// so which items fail is independent of the worker count.
//
// Every index is evaluated even after ctx is cancelled: fn is expected
// to observe ctx itself and return a cheap partial result (engines
// return sat.Unknown verdicts), which keeps slots aligned with inputs
// instead of dropping work silently. ParallelCheck returns only after
// every worker has finished, so callers never leak a checking
// goroutine.
func ParallelCheck[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, []*failure.UnitFailure) {
	out := make([]T, n)
	fails := make([]*failure.UnitFailure, n)
	run := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				fails[i] = failure.FromPanicAt(fmt.Sprintf("item %d", i), "check", v, "driver.ParallelCheck")
			}
		}()
		out[i] = fn(i)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return out, fails
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out, fails
}
