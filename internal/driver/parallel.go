package driver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"fusion/internal/failure"
)

// ParallelCheck runs fn(i) for every i in [0, n) on up to workers
// goroutines and returns the results indexed by i, so the output is
// identical whatever the worker count. With workers <= 1 (or n < 2) it
// runs inline.
//
// Every work item runs under recover: a panicking fn(i) leaves its
// result slot at the zero value and records a *failure.UnitFailure in
// the parallel failures slice instead of taking down the batch. The
// failure's Unit and Stage are generic ("item i" / "check"); callers
// that know better names rewrite them. Both slices are index-stable,
// so which items fail is independent of the worker count.
//
// Every index is evaluated even after ctx is cancelled: fn is expected
// to observe ctx itself and return a cheap partial result (engines
// return sat.Unknown verdicts), which keeps slots aligned with inputs
// instead of dropping work silently. ParallelCheck returns only after
// every worker has finished, so callers never leak a checking
// goroutine.
func ParallelCheck[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, []*failure.UnitFailure) {
	return ParallelCheckWorkers(ctx, n, workers, func(i, _ int) T { return fn(i) })
}

// PoolSize returns the number of worker slots ParallelCheck will actually
// use for n items and the requested worker count — callers that keep
// pool-affine state (one warm solver session per worker) size their pools
// with it.
func PoolSize(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return 1
	}
	return workers
}

// ParallelCheckWorkers is ParallelCheck with the worker slot index exposed:
// fn(i, w) runs work item i on worker w, where 0 <= w < PoolSize(n,
// workers). A worker runs its items strictly sequentially, so per-worker
// state (a warm solver session) needs no locking — but which items share a
// worker DOES depend on the worker count and scheduling, so per-worker
// state must never influence results, only their cost.
func ParallelCheckWorkers[T any](ctx context.Context, n, workers int, fn func(i, w int) T) ([]T, []*failure.UnitFailure) {
	out := make([]T, n)
	fails := make([]*failure.UnitFailure, n)
	run := func(i, w int) {
		defer func() {
			if v := recover(); v != nil {
				fails[i] = failure.FromPanicAt(fmt.Sprintf("item %d", i), "check", v, "driver.ParallelCheck")
			}
		}()
		out[i] = fn(i, w)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i, 0)
		}
		return out, fails
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i, w)
			}
		}(w)
	}
	wg.Wait()
	return out, fails
}
