package driver

import (
	"sync/atomic"

	"fusion/internal/solver"
)

// Sessions is a pool of warm solver sessions sized for a ParallelCheck
// worker pool: slot w belongs exclusively to worker w (pool-affine, never
// shared), so sessions need no locking — ParallelCheckWorkers runs each
// worker's items sequentially. Because which items land on which worker
// depends on the worker count and scheduling, a session may only affect the
// COST of a check, never its verdict; that is what keeps analysis output
// byte-identical for any -workers value.
type Sessions struct {
	pool []*solver.Session
	cfg  solver.SessionConfig
	// Replaced counts slots rebuilt by Replace (retry escalation or
	// watchdog abandonment).
	Replaced atomic.Int64
}

// NewSessions builds n sessions with the given config. Size n with
// PoolSize so every worker slot has one.
func NewSessions(n int, cfg solver.SessionConfig) *Sessions {
	p := make([]*solver.Session, n)
	for i := range p {
		p[i] = solver.NewSession(cfg)
	}
	return &Sessions{pool: p, cfg: cfg}
}

// Len returns the number of worker slots.
func (s *Sessions) Len() int { return len(s.pool) }

// At returns worker w's session.
func (s *Sessions) At(w int) *solver.Session { return s.pool[w] }

// Replace installs a fresh cold session in slot w and returns it. The
// retry ladder uses it both for cold-retry escalation and after a
// watchdog abandonment: the abandoned goroutine still owns the old
// session's solving stack, so the slot must not merely Reset — it needs
// a stack no other goroutine can touch.
func (s *Sessions) Replace(w int) *solver.Session {
	s.pool[w] = solver.NewSession(s.cfg)
	s.Replaced.Add(1)
	return s.pool[w]
}

// Stats aggregates the pool's cumulative counters.
func (s *Sessions) Stats() (queries, cacheHits, evictions, resets int64) {
	for _, ss := range s.pool {
		queries += ss.Queries
		cacheHits += ss.CacheHits
		evictions += ss.Evictions
		resets += ss.Resets
	}
	return
}
