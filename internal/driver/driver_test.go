package driver_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"fusion/internal/driver"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
)

const goodSrc = `
fun f(a: int) {
    var p: ptr = null;
    if (a > 3) {
        deref(p);
    }
}
`

func compile(t *testing.T, src string, opts driver.Options) *driver.Program {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: src}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileArtifacts(t *testing.T) {
	p := compile(t, goodSrc, driver.Options{Prelude: true})
	if p.AST == nil || p.SSA == nil || p.Graph == nil {
		t.Fatal("missing compiled artifacts")
	}
	if p.Stats.Vertices == 0 || p.Stats.Functions == 0 {
		t.Errorf("empty stats: %+v", p.Stats)
	}
	if !p.Prelude() {
		t.Error("Prelude() must report the compile option")
	}
	if d := p.Describe(); !strings.Contains(d, "test:") || !strings.Contains(d, "vertices") {
		t.Errorf("bad describe: %q", d)
	}
}

func TestCompileParseError(t *testing.T) {
	_, err := driver.Compile(context.Background(), driver.Source{Name: "bad", Text: "fun f( {"}, driver.Options{})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("expected a named parse error, got %v", err)
	}
}

func TestCompileSemaErrors(t *testing.T) {
	_, err := driver.Compile(context.Background(),
		driver.Source{Name: "sema", Text: "fun f() { x = 1; y = 2; }"}, driver.Options{})
	if err == nil {
		t.Fatal("expected semantic errors")
	}
	var se *driver.SemaErrors
	if !errors.As(err, &se) {
		t.Fatalf("error does not unwrap to SemaErrors: %v", err)
	}
	if se.Name != "sema" || len(se.Errs) < 2 {
		t.Errorf("got %d errors for %q, want >= 2", len(se.Errs), se.Name)
	}
	if !strings.Contains(err.Error(), "more semantic error") {
		t.Errorf("multi-error message must carry the count: %q", err.Error())
	}
}

func TestCompileCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := driver.Compile(ctx, driver.Source{Name: "c", Text: goodSrc}, driver.Options{Prelude: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

func TestCompileAllPreservesOrderAndFirstError(t *testing.T) {
	srcs := []driver.Source{
		{Name: "a", Text: goodSrc},
		{Name: "b", Text: goodSrc},
		{Name: "c", Text: goodSrc},
	}
	progs, err := driver.CompileAll(context.Background(), srcs, driver.Options{Prelude: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if p.Name != srcs[i].Name {
			t.Errorf("order broken at %d: got %s, want %s", i, p.Name, srcs[i].Name)
		}
	}

	srcs[1].Text = "fun f( {"
	if _, err := driver.CompileAll(context.Background(), srcs, driver.Options{Prelude: true}, 4); err == nil || !strings.Contains(err.Error(), "b") {
		t.Fatalf("expected the error of source b, got %v", err)
	}
}

func TestParallelCheckMatchesSequential(t *testing.T) {
	fn := func(i int) int { return i * i }
	want, _ := driver.ParallelCheck(context.Background(), 100, 1, fn)
	for _, workers := range []int{2, 8, 200} {
		got, fails := driver.ParallelCheck(context.Background(), 100, workers, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d: got %d, want %d", workers, i, got[i], want[i])
			}
			if fails[i] != nil {
				t.Fatalf("workers=%d: index %d: unexpected failure %v", workers, i, fails[i])
			}
		}
	}
	if out, fails := driver.ParallelCheck(context.Background(), 0, 8, fn); len(out) != 0 || len(fails) != 0 {
		t.Errorf("n=0 must return empty slices")
	}
}

func TestParallelCheckContainsPanics(t *testing.T) {
	fn := func(i int) int {
		if i%3 == 0 {
			panic("boom")
		}
		return i * i
	}
	for _, workers := range []int{1, 8} {
		out, fails := driver.ParallelCheck(context.Background(), 10, workers, fn)
		for i := 0; i < 10; i++ {
			if i%3 == 0 {
				if fails[i] == nil || out[i] != 0 {
					t.Fatalf("workers=%d: index %d: panic not contained (fail=%v out=%d)", workers, i, fails[i], out[i])
				}
				if !strings.Contains(fails[i].Error(), "boom") {
					t.Errorf("failure must carry the panic value: %v", fails[i])
				}
			} else if fails[i] != nil || out[i] != i*i {
				t.Fatalf("workers=%d: index %d: healthy slot disturbed (fail=%v out=%d)", workers, i, fails[i], out[i])
			}
		}
	}
}

func TestCompileContainsStagePanics(t *testing.T) {
	for _, stage := range []string{"parse", "sema", "ssa", "pdg"} {
		if err := faultinject.ArmSpec("panic." + stage); err != nil {
			t.Fatal(err)
		}
		_, err := driver.Compile(context.Background(), driver.Source{Name: "inj", Text: goodSrc}, driver.Options{Prelude: true})
		faultinject.Reset()
		var f *failure.UnitFailure
		if !errors.As(err, &f) {
			t.Fatalf("stage %s: expected a contained UnitFailure, got %v", stage, err)
		}
		if f.Unit != "inj" || f.Stage != stage {
			t.Errorf("stage %s: failure names unit %q stage %q", stage, f.Unit, f.Stage)
		}
		if f.Digest() == "" || f.Stack == "" {
			t.Errorf("stage %s: failure must carry a stack and digest", stage)
		}
	}
}

func TestAbsintCrashContained(t *testing.T) {
	p := compile(t, goodSrc, driver.Options{Prelude: true})
	if err := faultinject.ArmSpec("panic.absint"); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	if an := p.Absint(); an != nil {
		t.Fatal("crashed tier must read as disabled")
	}
	faultinject.Reset()
	if an := p.Absint(); an != nil {
		t.Fatal("the failed build must not be retried")
	}
	f := p.AbsintFailure()
	if f == nil || f.Stage != "absint" || f.Unit != "test" {
		t.Fatalf("AbsintFailure: %+v", f)
	}
	if p.Oracle() != nil {
		t.Error("oracle must be nil after a contained tier crash")
	}
	if !strings.HasPrefix(p.DOT(), "digraph pdg {") {
		t.Error("DOT must still render after a contained tier crash")
	}
}

func TestParseAbsintMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want driver.AbsintMode
	}{{"on", driver.AbsintOn}, {"intervals", driver.AbsintIntervals}, {"off", driver.AbsintOff}} {
		m, err := driver.ParseAbsintMode(tc.in)
		if err != nil || m != tc.want {
			t.Errorf("%q: got (%v, %v)", tc.in, m, err)
		}
		if m.String() != tc.in {
			t.Errorf("round trip: %q -> %q", tc.in, m.String())
		}
	}
	if _, err := driver.ParseAbsintMode("bogus"); err == nil {
		t.Error("expected error for bogus mode")
	}
}

func TestAbsintModes(t *testing.T) {
	off := compile(t, goodSrc, driver.Options{Prelude: true, Absint: driver.AbsintOff})
	if off.Absint() != nil || off.Oracle() != nil {
		t.Error("AbsintOff must disable the tier and the oracle")
	}
	if !strings.HasPrefix(off.DOT(), "digraph pdg {") {
		t.Error("DOT must render without the tier")
	}

	on := compile(t, goodSrc, driver.Options{Prelude: true})
	if on.AbsintMode() != driver.AbsintOn {
		t.Errorf("default mode: %v", on.AbsintMode())
	}
	if on.Absint() == nil || on.Oracle() == nil {
		t.Fatal("AbsintOn must provide the tier and the oracle")
	}

	// The analysis is built once and shared, even under concurrent use.
	var wg sync.WaitGroup
	results := make([]any, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = any(on.Absint())
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if results[i] != results[0] {
			t.Fatal("Absint must return the same cached analysis")
		}
	}
}
