// Package driver owns the analysis lifecycle. It compiles source text
// through the whole front-end pipeline — parse → sema → unroll → ssa →
// pdg → (optional) abstract interpretation — into an immutable Program
// artifact that engines, checkers, benches, and tools share, and it
// provides the parallel orchestration helper every engine runs on.
//
// The paper runs all of its analyses "with fifteen threads" under a hard
// time/memory budget (§5); the driver is where that discipline lives:
// compilation and checking take a context.Context and stop cooperatively
// when it is cancelled, and ParallelCheck fans work out over a worker
// pool with index-stable results so parallel runs are byte-identical to
// sequential ones.
package driver

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/sema"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
	"fusion/internal/telemetry"
	"fusion/internal/unroll"
)

// AbsintMode selects the abstract-interpretation tier configuration of a
// compiled program: the full interval×stride+zone product, the same
// without the congruence (stride) domain (the `-absint=nostride`
// ablation), intervals alone (`-absint=intervals`), no tier at all, or
// the full product with the absint-guided pre-simplification of local
// conditions disabled (`-absint=nosimplify` — an engine ablation; the
// analysis itself is the full product).
type AbsintMode int

// Absint tier modes. The zero value is the full tier, matching the
// default of the command-line `-absint=on`.
const (
	AbsintOn         AbsintMode = iota // intervals × stride + zone relational domain
	AbsintIntervals                    // zone and stride disabled
	AbsintOff                          // no abstract tier
	AbsintNoStride                     // stride disabled, zone kept
	AbsintNoSimplify                   // full product, pre-simplification disabled
)

func (m AbsintMode) String() string {
	switch m {
	case AbsintIntervals:
		return "intervals"
	case AbsintNoStride:
		return "nostride"
	case AbsintNoSimplify:
		return "nosimplify"
	case AbsintOff:
		return "off"
	default:
		return "on"
	}
}

// ParseAbsintMode parses the command-line form used by the `-absint`
// flags: on, nostride, nosimplify, intervals, or off.
func ParseAbsintMode(s string) (AbsintMode, error) {
	switch s {
	case "on":
		return AbsintOn, nil
	case "nostride":
		return AbsintNoStride, nil
	case "nosimplify":
		return AbsintNoSimplify, nil
	case "intervals":
		return AbsintIntervals, nil
	case "off":
		return AbsintOff, nil
	}
	return AbsintOn, fmt.Errorf("driver: -absint must be on, nostride, nosimplify, intervals, or off, got %q", s)
}

// Source is one program to compile.
type Source struct {
	// Name labels errors and reports (a file path or subject name).
	Name string
	// Text is the program text, without the prelude.
	Text string
}

// Options configure compilation.
type Options struct {
	// Prelude prepends the standard extern declarations (checker.Prelude)
	// before parsing.
	Prelude bool
	// Unroll configures normalization (loop unrolling, recursion
	// elimination).
	Unroll unroll.Options
	// Absint selects the abstract-interpretation tier mode backing
	// Program.Absint, Program.Oracle, and Program.DOT annotations.
	Absint AbsintMode
	// Telemetry, when non-nil, receives per-stage compile spans
	// (parse/sema/unroll/ssa/pdg and the lazy absint build). Nil — the
	// default — costs one pointer check per stage.
	Telemetry *telemetry.Recorder
	// TelemetryTrack is the trace track compile spans land on: 0 (the
	// pipeline track) for a single compile, the worker slot + 1 when a
	// pool compiles many subjects.
	TelemetryTrack int
}

// SemaErrors wraps every semantic error of a compilation so callers that
// want the full list (e.g. the CLI) can unwrap it; Error renders the
// first one with a count.
type SemaErrors struct {
	Name string
	Errs []error
}

func (e *SemaErrors) Error() string {
	if len(e.Errs) == 1 {
		return fmt.Sprintf("driver: %s: %v", e.Name, e.Errs[0])
	}
	return fmt.Sprintf("driver: %s: %v (and %d more semantic errors)",
		e.Name, e.Errs[0], len(e.Errs)-1)
}

// Program is the immutable compiled artifact: every representation the
// analysis stack consumes, built exactly once. The abstract
// interpretation is computed lazily on first use and cached; everything
// else is safe for concurrent readers as-is.
type Program struct {
	Name string
	// AST is the parsed and semantically checked program (prelude
	// included when Options.Prelude was set).
	AST *lang.Program
	// SSA is the normalized SSA form.
	SSA *ssa.Program
	// Graph is the program dependence graph all engines analyze.
	Graph *pdg.Graph
	// Stats summarizes the graph.
	Stats pdg.Stats

	opts    Options
	absOnce sync.Once
	abs     *absint.Analysis
	absFail *failure.UnitFailure
}

// Compile runs the front-end pipeline once and returns the shared
// Program artifact. It checks ctx between stages, so a cancelled compile
// returns promptly with the context's error.
//
// Every stage runs under recover: a panic anywhere in the front end is
// contained and returned as a *failure.UnitFailure error naming the
// stage that crashed, so one malformed source degrades one unit and
// never the batch.
func Compile(ctx context.Context, src Source, opts Options) (p *Program, err error) {
	stage := "parse"
	defer func() {
		if v := recover(); v != nil {
			p, err = nil, failure.FromPanicAt(src.Name, stage, v, "driver.Compile")
		}
	}()
	// Per-stage telemetry spans: one pointer check per boundary when the
	// recorder is off, a clock read and a span append when it is on. The
	// stage variable above stays the containment label; the span names
	// split unroll from ssa for cost attribution.
	rec, track := opts.Telemetry, opts.TelemetryTrack
	var tStart, tStage time.Time
	if rec != nil {
		tStart = time.Now()
		tStage = tStart
	}
	mark := func(name string) {
		if rec == nil {
			return
		}
		now := time.Now()
		rec.StageSpan(track, "compile", name, tStage, now)
		tStage = now
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("driver: %s: %w", src.Name, err)
	}
	text := src.Text
	if opts.Prelude {
		text = checker.Prelude + text
	}
	faultinject.Fire("panic.parse", src.Name)
	prog, err := lang.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("driver: %s: %w", src.Name, err)
	}
	mark("parse")
	stage = "sema"
	faultinject.Fire("panic.sema", src.Name)
	if errs := sema.Check(prog); len(errs) > 0 {
		return nil, &SemaErrors{Name: src.Name, Errs: errs}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("driver: %s: %w", src.Name, err)
	}
	mark("sema")
	stage = "ssa"
	faultinject.Fire("panic.ssa", src.Name)
	norm := unroll.Normalize(prog, opts.Unroll)
	mark("unroll")
	sp, err := ssa.Build(norm)
	if err != nil {
		return nil, fmt.Errorf("driver: %s: %w", src.Name, err)
	}
	mark("ssa")
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("driver: %s: %w", src.Name, err)
	}
	stage = "pdg"
	faultinject.Fire("panic.pdg", src.Name)
	g := pdg.Build(sp)
	prg := &Program{
		Name: src.Name, AST: prog, SSA: sp, Graph: g,
		Stats: pdg.ComputeStats(g), opts: opts,
	}
	mark("pdg")
	if rec != nil {
		// Enclosing span: the whole compile, parenting the stage spans
		// above by time containment on the same track.
		rec.StageSpan(track, "compile", "compile "+src.Name, tStart, time.Now())
	}
	return prg, nil
}

// CompileAll compiles every source on a worker pool, preserving input
// order. The first failing source (in input order) decides the returned
// error; a cancelled ctx stops the remaining compilations.
func CompileAll(ctx context.Context, srcs []Source, opts Options, workers int) ([]*Program, error) {
	type result struct {
		prog *Program
		err  error
	}
	rs, fails := ParallelCheck(ctx, len(srcs), workers, func(i int) result {
		p, err := Compile(ctx, srcs[i], opts)
		return result{p, err}
	})
	out := make([]*Program, len(rs))
	for i, r := range rs {
		if f := fails[i]; f != nil {
			// Compile contains its own panics, so this only fires for a
			// crash outside it; name the source instead of the slot.
			f.Unit, f.Stage = srcs[i].Name, "compile"
			return nil, f
		}
		if r.err != nil {
			return nil, r.err
		}
		out[i] = r.prog
	}
	return out, nil
}

// Absint returns the program's abstract-interpretation analysis,
// building and caching it on first use. Nil when the program was
// compiled with AbsintOff. The returned analysis is read-only after
// construction and safe for concurrent use.
//
// A crash inside the analysis is contained: Absint then returns nil —
// callers already treat that as "tier off", which is sound — and
// AbsintFailure reports what happened. The failure is recorded inside
// the sync.Once (a panicking Do still counts as done), so the analysis
// is never retried.
func (p *Program) Absint() *absint.Analysis {
	if p.opts.Absint == AbsintOff {
		return nil
	}
	p.absOnce.Do(func() {
		defer func() {
			if v := recover(); v != nil {
				p.abs = nil
				p.absFail = failure.FromPanicAt(p.Name, "absint", v, "driver.(*Program).Absint")
			}
		}()
		if rec := p.opts.Telemetry; rec != nil {
			t0 := time.Now()
			// Registered after the recover defer, so the span is recorded
			// (first, by LIFO order) even when the build panics.
			defer func() {
				rec.StageSpan(p.opts.TelemetryTrack, "compile", "absint", t0, time.Now())
			}()
		}
		faultinject.Fire("panic.absint", p.Name)
		p.abs = absint.AnalyzeWith(p.Graph, absint.Config{
			DisableZone: p.opts.Absint == AbsintIntervals,
			DisableStride: p.opts.Absint == AbsintIntervals ||
				p.opts.Absint == AbsintNoStride,
		})
	})
	return p.abs
}

// AbsintFailure reports the contained crash of the lazy abstract
// interpretation, if any. It only returns non-nil after an Absint call
// has observed the crash.
func (p *Program) AbsintFailure() *failure.UnitFailure { return p.absFail }

// AbsintMode reports the tier mode the program was compiled with.
func (p *Program) AbsintMode() AbsintMode { return p.opts.Absint }

// Oracle returns the enumeration pruning oracle backed by the program's
// abstract invariants, or nil when the tier is off.
func (p *Program) Oracle() func(sparse.Candidate) bool {
	an := p.Absint()
	if an == nil {
		return nil
	}
	return func(c sparse.Candidate) bool {
		return an.PrunePath(c.Path, c.Constraints(0)...)
	}
}

// DOT renders the dependence graph in Graphviz form, annotated with the
// abstract invariants when the tier is enabled.
func (p *Program) DOT() string {
	if an := p.Absint(); an != nil {
		return pdg.ToDOTAnnotated(p.Graph, an.Annotation)
	}
	return pdg.ToDOT(p.Graph)
}

// Prelude reports whether the program was compiled with the standard
// prelude.
func (p *Program) Prelude() bool { return p.opts.Prelude }

// Describe renders the compile summary line used by tools.
func (p *Program) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d functions, %d vertices, %d edges",
		p.Name, p.Stats.Functions, p.Stats.Vertices, p.Stats.Edges())
	return b.String()
}
