package ssa_test

import (
	"math/rand"
	"testing"

	"fusion/internal/interp"
	"fusion/internal/lang"
	"fusion/internal/progen"
	"fusion/internal/sema"
	"fusion/internal/ssa"
	"fusion/internal/unroll"
)

// evalSSA evaluates an extern-free SSA function on concrete arguments,
// resolving calls recursively. It is an independent executable semantics
// for the gated-SSA form: guards are irrelevant for value computation
// because every merge is an explicit ite.
func evalSSA(p *ssa.Program, f *ssa.Function, args []uint32) uint32 {
	memo := map[*ssa.Value]uint32{}
	var ev func(v *ssa.Value) uint32
	ev = func(v *ssa.Value) uint32 {
		if r, ok := memo[v]; ok {
			return r
		}
		var r uint32
		switch v.Op {
		case ssa.OpConst:
			r = v.Const
		case ssa.OpParam:
			for i, prm := range f.Params {
				if prm == v {
					r = args[i]
				}
			}
		case ssa.OpCopy, ssa.OpReturn:
			r = ev(v.Args[0])
		case ssa.OpNot:
			r = ev(v.Args[0]) ^ 1
		case ssa.OpNeg:
			r = -ev(v.Args[0])
		case ssa.OpIte:
			if ev(v.Args[0]) == 1 {
				r = ev(v.Args[1])
			} else {
				r = ev(v.Args[2])
			}
		case ssa.OpBin:
			r = evalBin(v.BinOp, ev(v.Args[0]), ev(v.Args[1]))
		case ssa.OpCall:
			callee := p.Funcs[v.Callee]
			sub := make([]uint32, len(v.Args))
			for i, a := range v.Args {
				sub[i] = ev(a)
			}
			r = evalSSA(p, callee, sub)
		case ssa.OpBranch:
			r = ev(v.Args[0])
		default:
			panic("evalSSA: extern in extern-free program")
		}
		memo[v] = r
		return r
	}
	if f.Ret == nil {
		return 0
	}
	return ev(f.Ret)
}

func evalBin(op lang.BinOp, l, r uint32) uint32 {
	b := func(v bool) uint32 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case lang.OpAdd:
		return l + r
	case lang.OpSub:
		return l - r
	case lang.OpMul:
		return l * r
	case lang.OpDiv:
		if r == 0 {
			return ^uint32(0)
		}
		return l / r
	case lang.OpRem:
		if r == 0 {
			return l
		}
		return l % r
	case lang.OpEq:
		return b(l == r)
	case lang.OpNe:
		return b(l != r)
	case lang.OpLt:
		return b(int32(l) < int32(r))
	case lang.OpLe:
		return b(int32(l) <= int32(r))
	case lang.OpGt:
		return b(int32(l) > int32(r))
	case lang.OpGe:
		return b(int32(l) >= int32(r))
	case lang.OpAnd, lang.OpBitAnd:
		return l & r
	case lang.OpOr, lang.OpBitOr:
		return l | r
	case lang.OpBitXor:
		return l ^ r
	case lang.OpShl:
		if r >= 32 {
			return 0
		}
		return l << r
	case lang.OpShr:
		if r >= 32 {
			return 0
		}
		return l >> r
	}
	panic("evalBin: unknown op")
}

// TestSSAAgreesWithInterpreter is the semantic differential for gated SSA:
// on the generator's extern-free functions, evaluating the SSA form must
// match the reference interpreter on random inputs.
func TestSSAAgreesWithInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, subIdx := range []int{0, 4, 9, 11} {
		info := progen.Subjects[subIdx]
		src, _, _ := info.Build(0.05)
		raw, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if errs := sema.Check(raw); len(errs) > 0 {
			t.Fatal(errs[0])
		}
		norm := unroll.Normalize(raw, unroll.Options{})
		p, err := ssa.Build(norm)
		if err != nil {
			t.Fatal(err)
		}
		// Loops are unrolled twice by normalization; bound the reference
		// interpreter identically so both sides share the bounded semantics.
		it := interp.New(raw, interp.Options{MaxLoopIters: 2})

		checked := 0
		for _, f := range p.Order {
			if f.Ret == nil || len(f.Name) < 3 || f.Name[:3] != "fn_" {
				continue // only the generator's pure arithmetic functions
			}
			for trial := 0; trial < 12; trial++ {
				args := make([]uint32, len(f.Params))
				iargs := make([]interp.Value, len(f.Params))
				for i := range args {
					switch trial % 3 {
					case 0:
						args[i] = rng.Uint32() % 100
					case 1:
						args[i] = rng.Uint32()
					default:
						args[i] = uint32(int32(-(rng.Int31() % 100)))
					}
					iargs[i] = interp.Value{V: args[i]}
				}
				want, err := it.Run(f.Name, iargs)
				if err != nil {
					t.Fatalf("%s/%s: interp: %v", info.Name, f.Name, err)
				}
				got := evalSSA(p, f, args)
				if want.Return == nil || got != want.Return.V {
					t.Fatalf("%s/%s(%v): ssa=%d interp=%v", info.Name, f.Name, args, got, want.Return)
				}
				checked++
			}
		}
		if checked < 30 {
			t.Fatalf("%s: only %d function evaluations checked", info.Name, checked)
		}
	}
}
