package ssa

import (
	"testing"

	"fusion/internal/lang"
	"fusion/internal/sema"
	"fusion/internal/unroll"
)

// sliceGraph is a simple adjacency-list Graph for tests.
type sliceGraph struct {
	succs [][]int
	preds [][]int
}

func newSliceGraph(n int, edges [][2]int) *sliceGraph {
	g := &sliceGraph{succs: make([][]int, n), preds: make([][]int, n)}
	for _, e := range edges {
		g.succs[e[0]] = append(g.succs[e[0]], e[1])
		g.preds[e[1]] = append(g.preds[e[1]], e[0])
	}
	return g
}

func (g *sliceGraph) NumNodes() int     { return len(g.succs) }
func (g *sliceGraph) Succs(n int) []int { return g.succs[n] }
func (g *sliceGraph) Preds(n int) []int { return g.preds[n] }

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
	g := newSliceGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	d := Dominators(g, 0)
	if d.Idom[1] != 0 || d.Idom[2] != 0 || d.Idom[3] != 0 {
		t.Errorf("diamond idoms: got %v, want all 0", d.Idom)
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) || !d.Dominates(3, 3) {
		t.Error("Dominates relation wrong on diamond")
	}
}

func TestDominatorsChainAndNested(t *testing.T) {
	// 0 -> 1 -> 2 -> 5; 1 -> 3 -> 4 -> 5 nested inside.
	g := newSliceGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 5}, {1, 3}, {3, 4}, {4, 5}})
	d := Dominators(g, 0)
	want := []int{-1, 0, 1, 1, 3, 1}
	for i, w := range want {
		if d.Idom[i] != w {
			t.Errorf("idom[%d]: got %d, want %d", i, d.Idom[i], w)
		}
	}
}

func TestDominatorsUnreachable(t *testing.T) {
	g := newSliceGraph(3, [][2]int{{0, 1}})
	d := Dominators(g, 0)
	if d.Reachable(2) {
		t.Error("node 2 should be unreachable")
	}
	if d.Dominates(0, 2) {
		t.Error("nothing dominates an unreachable node")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	g := newSliceGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	pd := PostDominators(g, 3)
	if pd.Idom[0] != 3 || pd.Idom[1] != 3 || pd.Idom[2] != 3 {
		t.Errorf("post-idoms: got %v", pd.Idom)
	}
}

func TestControlDepsDiamond(t *testing.T) {
	// Branch at 0; 1 and 2 are each control-dependent on one edge of 0.
	g := newSliceGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	cd := ControlDeps(g, 3)
	if len(cd[1]) != 1 || cd[1][0].Branch != 0 || cd[1][0].Edge != 0 {
		t.Errorf("cd[1]: got %v", cd[1])
	}
	if len(cd[2]) != 1 || cd[2][0].Branch != 0 || cd[2][0].Edge != 1 {
		t.Errorf("cd[2]: got %v", cd[2])
	}
	if len(cd[3]) != 0 {
		t.Errorf("join must not be control-dependent: %v", cd[3])
	}
	if len(cd[0]) != 0 {
		t.Errorf("branch itself must not be control-dependent: %v", cd[0])
	}
}

// guardPositions collects the if-statement positions on a value's guard
// chain.
func guardPositions(v *Value) map[lang.Pos]bool {
	out := map[lang.Pos]bool{}
	for g := v.Guard; g != nil; g = g.Guard {
		out[g.Pos] = true
	}
	return out
}

// cfgDepPositions collects, transitively, the if-positions of the branch
// blocks a block is control-dependent on.
func cfgDepPositions(c *CFG, cd map[int][]ControlDep, b int) map[lang.Pos]bool {
	out := map[lang.Pos]bool{}
	var walk func(n int)
	seen := map[int]bool{}
	walk = func(n int) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, d := range cd[n] {
			out[c.Blocks[d.Branch].IfPos] = true
			walk(d.Branch)
		}
	}
	walk(b)
	return out
}

// TestStructuralGuardsMatchCFGControlDeps validates the SSA builder's
// structural guard chains against control dependence computed from post-
// dominance frontiers on the CFG — the two must agree on structured code.
func TestStructuralGuardsMatchCFGControlDeps(t *testing.T) {
	src := `
fun f(a: int, b: int, c: int): int {
    var x: int = 0;
    var y: int = 0;
    if (a > 0) {
        x = 1;
        if (b > 0) {
            y = 2;
        } else {
            y = 3;
        }
    } else {
        if (c > 0) {
            x = 4;
        }
        y = 5;
    }
    if (a > b) {
        x = x + y;
    }
    return x;
}`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		t.Fatal(errs)
	}
	norm := unroll.Normalize(prog, unroll.Options{})
	p, err := Build(norm)
	if err != nil {
		t.Fatal(err)
	}
	fd := norm.Func("f")
	c, err := BuildCFG(fd)
	if err != nil {
		t.Fatal(err)
	}
	cd := CFGControlDeps(c)

	// For each assignment statement, the set of if-positions guarding it in
	// the SSA must equal the transitive CFG control-dependence positions of
	// its block.
	stmtBlock := map[lang.Stmt]int{}
	for _, blk := range c.Blocks {
		for _, s := range blk.Stmts {
			stmtBlock[s] = blk.ID
		}
	}
	f := p.Funcs["f"]
	checked := 0
	for s, blockID := range stmtBlock {
		as, ok := s.(*lang.AssignStmt)
		if !ok {
			continue
		}
		// Find the SSA value created at this statement position.
		var v *Value
		for _, cand := range f.Values {
			if cand.Name == as.Name && cand.Pos == as.Pos {
				v = cand
			}
		}
		if v == nil {
			continue
		}
		got := guardPositions(v)
		want := cfgDepPositions(c, cd, blockID)
		if len(got) != len(want) {
			t.Errorf("%s at %s: guard chain %v != CFG deps %v", as.Name, as.Pos, got, want)
			continue
		}
		for pos := range want {
			if !got[pos] {
				t.Errorf("%s at %s: missing guard at %s", as.Name, as.Pos, pos)
			}
		}
		checked++
	}
	if checked < 6 {
		t.Fatalf("only %d assignments cross-checked; expected at least 6", checked)
	}
}

func TestBuildCFGShape(t *testing.T) {
	prog := lang.MustParse(`
fun f(a: int): int {
    var x: int = 0;
    if (a > 0) {
        x = 1;
    } else {
        x = 2;
    }
    return x;
}`)
	sema.MustCheck(prog)
	norm := unroll.Normalize(prog, unroll.Options{})
	c, err := BuildCFG(norm.Func("f"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Entry == nil || c.Exit == nil {
		t.Fatal("missing entry/exit")
	}
	if len(c.Exit.Succs) != 0 {
		t.Error("exit must have no successors")
	}
	branches := 0
	for _, b := range c.Blocks {
		if len(b.Succs) == 2 {
			branches++
			if b.Cond == nil {
				t.Error("branching block without condition")
			}
		}
	}
	if branches != 1 {
		t.Errorf("branch blocks: got %d, want 1", branches)
	}
}

func TestBuildCFGRejectsLoops(t *testing.T) {
	prog := lang.MustParse(`fun f(n: int) { while (n > 0) { n = n - 1; } }`)
	if _, err := BuildCFG(prog.Func("f")); err == nil {
		t.Fatal("expected error for loop in CFG build")
	}
}
