package ssa

import (
	"fmt"
	"sort"

	"fusion/internal/lang"
)

// Build converts a normalized, checked program into SSA form. It returns an
// error if the program still contains loops (i.e., was not normalized).
func Build(prog *lang.Program) (*Program, error) {
	p := &Program{Funcs: map[string]*Function{}, Externs: map[string]*lang.FuncDecl{}}
	for _, f := range prog.Funcs {
		if f.Extern {
			p.Externs[f.Name] = f
		}
	}
	for _, fd := range prog.Funcs {
		if fd.Extern {
			continue
		}
		b := &builder{prog: prog, p: p, fn: &Function{Name: fd.Name, Decl: fd}}
		if err := b.buildFunc(fd); err != nil {
			return nil, err
		}
		p.Funcs[fd.Name] = b.fn
		p.Order = append(p.Order, b.fn)
	}
	for _, f := range p.Order {
		computeUses(f)
	}
	return p, nil
}

// MustBuild panics on error; for tests and examples.
func MustBuild(prog *lang.Program) *Program {
	p, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return p
}

func computeUses(f *Function) {
	for _, v := range f.Values {
		for _, a := range v.Args {
			a.Uses = append(a.Uses, v)
		}
	}
}

type builder struct {
	prog  *lang.Program
	p     *Program
	fn    *Function
	env   map[string]*Value
	guard *Value // innermost branch vertex, nil at function entry
}

func (b *builder) newValue(op Op, t lang.Type, pos lang.Pos, args ...*Value) *Value {
	v := &Value{
		ID: len(b.fn.Values), Op: op, Type: t, Args: args,
		Guard: b.guard, Pos: pos, Fn: b.fn,
	}
	b.fn.Values = append(b.fn.Values, v)
	return v
}

func (b *builder) buildFunc(fd *lang.FuncDecl) error {
	b.env = map[string]*Value{}
	for _, prm := range fd.Params {
		v := b.newValue(OpParam, prm.Type, prm.Pos)
		v.Name = prm.Name
		b.fn.Params = append(b.fn.Params, v)
		b.env[prm.Name] = v
	}
	declared, err := b.buildBlock(fd.Body)
	if err != nil {
		return err
	}
	_ = declared
	if fd.Ret != lang.TypeVoid && b.fn.Ret == nil {
		return fmt.Errorf("ssa: function %s: missing return after normalization", fd.Name)
	}
	return nil
}

// buildBlock builds a block's statements and returns the names it declared,
// which go out of scope when the block ends.
func (b *builder) buildBlock(blk *lang.BlockStmt) ([]string, error) {
	var declared []string
	for _, s := range blk.Stmts {
		names, err := b.buildStmt(s)
		if err != nil {
			return nil, err
		}
		declared = append(declared, names...)
	}
	for _, n := range declared {
		delete(b.env, n)
	}
	return nil, nil
}

func (b *builder) buildStmt(s lang.Stmt) ([]string, error) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		_, err := b.buildBlock(s)
		return nil, err
	case *lang.VarDecl:
		v, err := b.buildDef(s.Name, s.Init, s.Pos)
		if err != nil {
			return nil, err
		}
		b.env[s.Name] = v
		return []string{s.Name}, nil
	case *lang.AssignStmt:
		v, err := b.buildDef(s.Name, s.Val, s.Pos)
		if err != nil {
			return nil, err
		}
		b.env[s.Name] = v
		return nil, nil
	case *lang.ExprStmt:
		_, err := b.buildExpr(s.X)
		return nil, err
	case *lang.ReturnStmt:
		if s.Val == nil {
			return nil, nil
		}
		v, err := b.buildExpr(s.Val)
		if err != nil {
			return nil, err
		}
		if b.fn.Ret != nil {
			return nil, fmt.Errorf("ssa: function %s: multiple returns after normalization", b.fn.Name)
		}
		ret := b.newValue(OpReturn, v.Type, s.Pos, v)
		b.fn.Ret = ret
		return nil, nil
	case *lang.IfStmt:
		return nil, b.buildIf(s)
	case *lang.WhileStmt:
		return nil, fmt.Errorf("ssa: %s: loop present; program was not normalized", s.Pos)
	default:
		return nil, fmt.Errorf("ssa: unknown statement %T", s)
	}
}

// buildDef builds the value defining a source variable. A fresh vertex is
// always created for copies of already-named values so that each
// source-level definition has its own statement vertex, matching the
// paper's v1 = v2 edges.
func (b *builder) buildDef(name string, e lang.Expr, pos lang.Pos) (*Value, error) {
	v, err := b.buildExpr(e)
	if err != nil {
		return nil, err
	}
	if v.Name != "" || v.Op == OpConst || v.Op == OpParam || v.Guard != b.guard {
		cp := b.newValue(OpCopy, v.Type, pos, v)
		cp.Name = name
		return cp, nil
	}
	v.Name = name
	// Call vertices keep their call-site position (it identifies the
	// source occurrence for the checkers); other expressions adopt the
	// defining statement's position.
	if v.Op != OpCall && v.Op != OpExtern {
		v.Pos = pos
	}
	return v, nil
}

func (b *builder) buildIf(s *lang.IfStmt) error {
	cond, err := b.buildExpr(s.Cond)
	if err != nil {
		return err
	}
	outer := b.guard
	before := copyEnv(b.env)

	// Then branch, guarded by branch(cond).
	brT := b.newValue(OpBranch, lang.TypeBool, s.Pos, cond)
	b.guard = brT
	if _, err := b.buildBlock(s.Then); err != nil {
		return err
	}
	envT := copyEnv(b.env)
	b.env = copyEnv(before)
	b.guard = outer

	envE := before
	if s.Else != nil {
		// Else branch, guarded by branch(!cond).
		notC := b.newValue(OpNot, lang.TypeBool, s.Pos, cond)
		brF := b.newValue(OpBranch, lang.TypeBool, s.Pos, notC)
		b.guard = brF
		if _, err := b.buildBlock(s.Else); err != nil {
			return err
		}
		envE = copyEnv(b.env)
		b.env = copyEnv(before)
		b.guard = outer
	}

	// Merge: names visible before the if that were redefined in either
	// branch get an explicit ite-assignment. Names are merged in sorted
	// order so vertex IDs are deterministic.
	names := make([]string, 0, len(before))
	for name := range before {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		orig := before[name]
		tv, ev := envT[name], envE[name]
		if tv == nil {
			tv = orig
		}
		if ev == nil {
			ev = orig
		}
		if tv == ev {
			b.env[name] = tv
			continue
		}
		ite := b.newValue(OpIte, tv.Type, s.Pos, cond, tv, ev)
		ite.Name = name
		b.env[name] = ite
	}
	return nil
}

// widthMask returns the all-ones mask of a type's width.
func widthMask(t lang.Type) uint32 {
	w := t.Bits()
	if w >= 32 {
		return ^uint32(0)
	}
	return 1<<uint(w) - 1
}

func copyEnv(env map[string]*Value) map[string]*Value {
	out := make(map[string]*Value, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func (b *builder) buildExpr(e lang.Expr) (*Value, error) {
	switch e := e.(type) {
	case *lang.IntLitExpr:
		t := e.LitType()
		v := b.newValue(OpConst, t, e.Pos)
		// Constants are stored masked to their type's width, so a narrow
		// literal's bit pattern is exactly what the backend emits.
		v.Const = e.Value & widthMask(t)
		return v, nil
	case *lang.BoolLitExpr:
		v := b.newValue(OpConst, lang.TypeBool, e.Pos)
		if e.Value {
			v.Const = 1
		}
		return v, nil
	case *lang.NullLitExpr:
		v := b.newValue(OpConst, lang.TypePtr, e.Pos)
		return v, nil
	case *lang.IdentExpr:
		v, ok := b.env[e.Name]
		if !ok {
			return nil, fmt.Errorf("ssa: %s: undefined variable %s", e.Pos, e.Name)
		}
		return v, nil
	case *lang.UnaryExpr:
		x, err := b.buildExpr(e.X)
		if err != nil {
			return nil, err
		}
		if e.Op == lang.OpNot {
			return b.newValue(OpNot, lang.TypeBool, e.Pos, x), nil
		}
		return b.newValue(OpNeg, x.Type, e.Pos, x), nil
	case *lang.BinExpr:
		l, err := b.buildExpr(e.L)
		if err != nil {
			return nil, err
		}
		r, err := b.buildExpr(e.R)
		if err != nil {
			return nil, err
		}
		// Arithmetic results carry their operands' type (sema guarantees
		// both sides agree), so narrow operations stay at narrow width.
		t := l.Type
		if e.Op.IsComparison() || e.Op.IsLogical() {
			t = lang.TypeBool
		}
		v := b.newValue(OpBin, t, e.Pos, l, r)
		v.BinOp = e.Op
		return v, nil
	case *lang.CallExpr:
		var args []*Value
		for _, a := range e.Args {
			av, err := b.buildExpr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, av)
		}
		callee := b.prog.Func(e.Name)
		if callee == nil {
			return nil, fmt.Errorf("ssa: %s: call to unknown function %s", e.Pos, e.Name)
		}
		op := OpCall
		if callee.Extern {
			op = OpExtern
		}
		v := b.newValue(op, callee.Ret, e.Pos, args...)
		v.Callee = e.Name
		v.Site = b.p.NumSites
		b.p.NumSites++
		return v, nil
	default:
		return nil, fmt.Errorf("ssa: unknown expression %T", e)
	}
}
