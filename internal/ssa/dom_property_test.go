package ssa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteDominates computes dominance from first principles: a dominates b
// iff b is unreachable from the entry once a is removed (and b is
// reachable at all).
func bruteDominates(g Graph, entry, a, b int) bool {
	reach := func(skip int) map[int]bool {
		seen := map[int]bool{}
		if entry == skip {
			return seen
		}
		stack := []int{entry}
		seen[entry] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Succs(n) {
				if s != skip && !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return seen
	}
	if !reach(-1)[b] {
		return false // unreachable nodes are dominated by nothing
	}
	if a == b {
		return true
	}
	return !reach(a)[b]
}

// TestQuickDominatorsAgainstBruteForce validates the iterative dominator
// computation against the removal-based definition on random digraphs.
func TestQuickDominatorsAgainstBruteForce(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		var edges [][2]int
		// A random spine keeps a good portion of the graph reachable.
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{rng.Intn(i), i})
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		g := newSliceGraph(n, edges)
		d := Dominators(g, 0)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := bruteDominates(g, 0, a, b)
				got := d.Dominates(a, b)
				if got != want {
					t.Logf("seed %d: dominates(%d, %d): got %v, want %v (edges %v)",
						seed, a, b, got, want, edges)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPostDominators checks post-dominance by duality on random DAGs
// with a unique exit.
func TestQuickPostDominators(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		var edges [][2]int
		// Forward edges only, plus every sink wired to the last node so it
		// is the unique exit.
		for i := 0; i < n-1; i++ {
			out := 1 + rng.Intn(2)
			for j := 0; j < out; j++ {
				to := i + 1 + rng.Intn(n-i-1)
				edges = append(edges, [2]int{i, to})
			}
		}
		g := newSliceGraph(n, edges)
		hasSucc := make([]bool, n)
		for _, e := range edges {
			hasSucc[e[0]] = true
		}
		for i := 0; i < n-1; i++ {
			if !hasSucc[i] {
				edges = append(edges, [2]int{i, n - 1})
			}
		}
		g = newSliceGraph(n, edges)
		pd := PostDominators(g, n-1)
		rev := reverseGraph{g}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := bruteDominates(rev, n-1, a, b)
				if pd.Dominates(a, b) != want {
					t.Logf("seed %d: postdom(%d, %d) mismatch", seed, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
