package ssa

import (
	"fmt"
	"strings"

	"fusion/internal/lang"
)

// The control-flow graph here serves two purposes: it is the classic
// substrate from which control dependence is defined (Ferrante et al.), and
// the tests use it to validate that the structural Guard chains the SSA
// builder produces agree with control dependence computed from first
// principles via post-dominance frontiers.

// Block is a basic block of a CFG.
type Block struct {
	ID    int
	Stmts []lang.Stmt // straight-line statements (no control flow)
	// Cond is the branch condition if the block ends in a two-way branch.
	Cond lang.Expr
	// IfPos is the position of the if-statement that ends the block, when
	// Cond is set. Tests use it to correlate CFG branches with the
	// structural guards of the SSA builder.
	IfPos lang.Pos
	// Succs are the control-flow successors: for a branching block,
	// Succs[0] is the true edge and Succs[1] the false edge.
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "b%d ->", b.ID)
	for _, s := range b.Succs {
		fmt.Fprintf(&sb, " b%d", s.ID)
	}
	return sb.String()
}

// CFG is a single-entry single-exit control-flow graph of a normalized
// function.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// BuildCFG constructs the CFG of a normalized (loop-free) function body.
func BuildCFG(fd *lang.FuncDecl) (*CFG, error) {
	if fd.Body == nil {
		return nil, fmt.Errorf("cfg: function %s has no body", fd.Name)
	}
	g := &CFG{}
	g.Entry = g.newBlock()
	last, err := g.buildBlock(g.Entry, fd.Body)
	if err != nil {
		return nil, err
	}
	g.Exit = g.newBlock()
	g.link(last, g.Exit)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
	return g, nil
}

func (g *CFG) newBlock() *Block {
	b := &Block{ID: len(g.Blocks)}
	g.Blocks = append(g.Blocks, b)
	return b
}

func (g *CFG) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// buildBlock appends the statements of blk starting in cur and returns the
// block where control continues.
func (g *CFG) buildBlock(cur *Block, blk *lang.BlockStmt) (*Block, error) {
	for _, s := range blk.Stmts {
		switch s := s.(type) {
		case *lang.BlockStmt:
			next, err := g.buildBlock(cur, s)
			if err != nil {
				return nil, err
			}
			cur = next
		case *lang.IfStmt:
			cur.Cond = s.Cond
			cur.IfPos = s.Pos
			thenB := g.newBlock()
			g.link(cur, thenB)
			thenEnd, err := g.buildBlock(thenB, s.Then)
			if err != nil {
				return nil, err
			}
			elseB := g.newBlock()
			g.link(cur, elseB)
			elseEnd := elseB
			if s.Else != nil {
				elseEnd, err = g.buildBlock(elseB, s.Else)
				if err != nil {
					return nil, err
				}
			}
			join := g.newBlock()
			g.link(thenEnd, join)
			g.link(elseEnd, join)
			cur = join
		case *lang.WhileStmt:
			return nil, fmt.Errorf("cfg: %s: loop present; function was not normalized", s.Pos)
		default:
			cur.Stmts = append(cur.Stmts, s)
		}
	}
	return cur, nil
}
