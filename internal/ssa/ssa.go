// Package ssa builds the SSA-form intermediate representation the paper's
// program dependence graph is defined over (§3.1). Programs must be
// normalized first (see package unroll): loop-free, recursion-free, one
// return per function.
//
// Multiple definitions merge through explicit ite-assignments rather than
// φ-functions, making the assignment condition explicit exactly as the
// paper's language prescribes. Each Value is simultaneously a statement and
// the variable it defines (Definition 3.1); Args are the intra-procedural
// data dependences and Guard is the innermost control dependence.
package ssa

import (
	"fmt"
	"strings"

	"fusion/internal/lang"
)

// Op discriminates SSA value kinds.
type Op int

// Value operations.
const (
	OpConst  Op = iota // integer, boolean, or null constant
	OpParam            // function parameter; the identity statement v = <v>
	OpCopy             // v1 = v2
	OpNot              // boolean negation
	OpNeg              // arithmetic negation
	OpBin              // binary operation v1 = v2 ⊕ v3
	OpIte              // v1 = ite(v2, v3, v4)
	OpCall             // call to a function with a body
	OpExtern           // call to an extern (empty) function
	OpBranch           // if-statement vertex: guard with condition Args[0]
	OpReturn           // the function's single return statement
)

var opNames = [...]string{
	OpConst: "const", OpParam: "param", OpCopy: "copy", OpNot: "not",
	OpNeg: "neg", OpBin: "bin", OpIte: "ite", OpCall: "call",
	OpExtern: "extern", OpBranch: "branch", OpReturn: "return",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// Value is one vertex of the SSA graph: a statement and the variable it
// defines.
type Value struct {
	ID     int // unique within the enclosing function
	Op     Op  //
	Type   lang.Type
	Args   []*Value   // operands; data-dependence predecessors
	Const  uint32     // constant payload for OpConst (bool: 0 or 1; null: 0)
	BinOp  lang.BinOp // operator for OpBin
	Callee string     // target name for OpCall and OpExtern
	Site   int        // program-unique call-site ID for OpCall and OpExtern
	Guard  *Value     // innermost OpBranch this value is control-dependent on
	Name   string     // source variable this value defines, if any
	Pos    lang.Pos   //
	Fn     *Function  // enclosing function
	Uses   []*Value   // intra-procedural data-dependence successors
}

// IsConstBool reports whether v is a boolean constant with the given value.
func (v *Value) IsConstBool(b bool) bool {
	if v.Op != OpConst || v.Type != lang.TypeBool {
		return false
	}
	return (v.Const != 0) == b
}

// String renders a value for debugging: "v12 = bin(+ v3, v4) [c]".
func (v *Value) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d", v.ID)
	if v.Name != "" {
		fmt.Fprintf(&b, "(%s)", v.Name)
	}
	fmt.Fprintf(&b, " = %s", v.Op)
	switch v.Op {
	case OpConst:
		fmt.Fprintf(&b, " %d:%s", v.Const, v.Type)
	case OpBin:
		fmt.Fprintf(&b, " %s", v.BinOp)
	case OpCall, OpExtern:
		fmt.Fprintf(&b, " %s#%d", v.Callee, v.Site)
	}
	for _, a := range v.Args {
		fmt.Fprintf(&b, " v%d", a.ID)
	}
	if v.Guard != nil {
		fmt.Fprintf(&b, " @v%d", v.Guard.ID)
	}
	return b.String()
}

// Function is a function in SSA form.
type Function struct {
	Name   string
	Params []*Value
	Values []*Value // every value, in construction (topological) order
	Ret    *Value   // the OpReturn vertex; nil for void functions
	Decl   *lang.FuncDecl
}

// Value returns the value with the given ID, or nil.
func (f *Function) Value(id int) *Value {
	if id < 0 || id >= len(f.Values) {
		return nil
	}
	return f.Values[id]
}

// CallSites returns every OpCall and OpExtern value in the function.
func (f *Function) CallSites() []*Value {
	var out []*Value
	for _, v := range f.Values {
		if v.Op == OpCall || v.Op == OpExtern {
			out = append(out, v)
		}
	}
	return out
}

// String renders the function for debugging.
func (f *Function) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s:\n", f.Name)
	for _, v := range f.Values {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// Program is a whole program in SSA form.
type Program struct {
	Funcs map[string]*Function
	Order []*Function // declaration order, defined functions only
	// Externs records the signature of each extern function by name.
	Externs map[string]*lang.FuncDecl
	// NumSites is the number of call sites allocated; site IDs are
	// 0..NumSites-1 and unique across the program.
	NumSites int
}

// NumValues returns the total vertex count across all functions.
func (p *Program) NumValues() int {
	n := 0
	for _, f := range p.Order {
		n += len(f.Values)
	}
	return n
}
