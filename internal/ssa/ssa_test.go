package ssa

import (
	"testing"

	"fusion/internal/lang"
	"fusion/internal/sema"
	"fusion/internal/unroll"
)

func buildSrc(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	norm := unroll.Normalize(prog, unroll.Options{})
	p, err := Build(norm)
	if err != nil {
		t.Fatalf("ssa: %v", err)
	}
	return p
}

// find returns the latest value defining the given source name.
func find(f *Function, name string) *Value {
	var out *Value
	for _, v := range f.Values {
		if v.Name == name {
			out = v
		}
	}
	return out
}

func TestBuildStraightLine(t *testing.T) {
	p := buildSrc(t, `
fun bar(x: int): int {
    var y: int = x * 2;
    var z: int = y;
    return z;
}`)
	f := p.Funcs["bar"]
	if f == nil {
		t.Fatal("bar missing")
	}
	y := find(f, "y")
	if y == nil || y.Op != OpBin || y.BinOp != lang.OpMul {
		t.Fatalf("y: got %v, want bin *", y)
	}
	z := find(f, "z")
	if z == nil || z.Op != OpCopy || z.Args[0] != y {
		t.Fatalf("z: got %v, want copy of y", z)
	}
	if f.Ret == nil || f.Ret.Args[0] != z {
		t.Fatalf("return: got %v, want return z", f.Ret)
	}
	if y.Guard != nil || z.Guard != nil {
		t.Error("straight-line values must have no guard")
	}
}

func TestBuildIteMerge(t *testing.T) {
	p := buildSrc(t, `
fun f(a: int): int {
    var x: int = 0;
    if (a > 0) {
        x = 1;
    } else {
        x = 2;
    }
    return x;
}`)
	f := p.Funcs["f"]
	x := find(f, "x")
	if x.Op != OpIte {
		t.Fatalf("merged x: got %s, want ite", x.Op)
	}
	cond := x.Args[0]
	if cond.Op != OpBin || cond.BinOp != lang.OpGt {
		t.Fatalf("ite condition: got %v", cond)
	}
	tv, ev := x.Args[1], x.Args[2]
	if tv.Op != OpCopy || tv.Args[0].Const != 1 {
		t.Errorf("then value: got %v, want copy of 1", tv)
	}
	if ev.Op != OpCopy || ev.Args[0].Const != 2 {
		t.Errorf("else value: got %v, want copy of 2", ev)
	}
	if x.Guard != nil {
		t.Error("ite merge at top level must be unguarded")
	}
	// The branch assignments themselves must be guarded.
	if tv.Guard == nil || tv.Guard.Op != OpBranch {
		t.Errorf("then assignment guard: got %v", tv.Guard)
	}
	if ev.Guard == nil || ev.Guard.Op != OpBranch {
		t.Errorf("else assignment guard: got %v", ev.Guard)
	}
	// The else guard condition is the negation of the then guard condition.
	eg := ev.Guard.Args[0]
	if eg.Op != OpNot || eg.Args[0] != tv.Guard.Args[0] {
		t.Errorf("else guard: got %v, want not(then cond)", eg)
	}
}

func TestBuildIfWithoutElse(t *testing.T) {
	p := buildSrc(t, `
fun f(a: int): int {
    var x: int = 5;
    if (a > 0) {
        x = a;
    }
    return x;
}`)
	f := p.Funcs["f"]
	x := find(f, "x")
	if x.Op != OpIte {
		t.Fatalf("merged x: got %s, want ite", x.Op)
	}
	// else value falls back to the pre-if definition (the constant 5 copy).
	ev := x.Args[2]
	if ev.Name != "x" || ev.Op != OpCopy || ev.Args[0].Const != 5 {
		t.Errorf("else value: got %v, want original x = 5", ev)
	}
}

func TestBuildNestedGuards(t *testing.T) {
	p := buildSrc(t, `
fun f(a: int, b: int): int {
    var x: int = 0;
    if (a > 0) {
        if (b > 0) {
            x = 1;
        }
    }
    return x;
}`)
	f := p.Funcs["f"]
	// Find the innermost assignment x = 1.
	var inner *Value
	for _, v := range f.Values {
		if v.Name == "x" && v.Op == OpCopy && len(v.Args) == 1 && v.Args[0].Const == 1 {
			inner = v
		}
	}
	if inner == nil {
		t.Fatal("inner assignment not found")
	}
	g1 := inner.Guard
	if g1 == nil || g1.Op != OpBranch {
		t.Fatalf("inner guard missing: %v", inner)
	}
	g2 := g1.Guard
	if g2 == nil || g2.Op != OpBranch {
		t.Fatalf("outer guard missing on nested branch")
	}
	if g2.Guard != nil {
		t.Error("outer guard should be at top level")
	}
}

func TestBuildCalls(t *testing.T) {
	p := buildSrc(t, `
extern fun gets(): ptr;
fun bar(x: int): int { return x * 2; }
fun foo(a: int, b: int): int {
    var c: int = bar(a);
    var d: int = bar(b);
    var p: ptr = gets();
    if (p == null) {
        return c;
    }
    return d;
}`)
	foo := p.Funcs["foo"]
	var calls, externs int
	sites := map[int]bool{}
	for _, v := range foo.Values {
		switch v.Op {
		case OpCall:
			calls++
			if v.Callee != "bar" {
				t.Errorf("call target: got %s", v.Callee)
			}
			if sites[v.Site] {
				t.Errorf("duplicate call site ID %d", v.Site)
			}
			sites[v.Site] = true
		case OpExtern:
			externs++
		}
	}
	if calls != 2 {
		t.Errorf("calls: got %d, want 2", calls)
	}
	if externs != 1 {
		t.Errorf("extern calls: got %d, want 1", externs)
	}
	if len(foo.CallSites()) != 3 {
		t.Errorf("CallSites: got %d, want 3", len(foo.CallSites()))
	}
}

func TestBuildUses(t *testing.T) {
	p := buildSrc(t, `
fun f(a: int): int {
    var b: int = a + 1;
    var c: int = a + b;
    return c;
}`)
	f := p.Funcs["f"]
	a := f.Params[0]
	if len(a.Uses) != 2 {
		t.Errorf("uses of a: got %d, want 2", len(a.Uses))
	}
	c := find(f, "c")
	if len(c.Uses) != 1 || c.Uses[0].Op != OpReturn {
		t.Errorf("uses of c: got %v, want the return", c.Uses)
	}
}

func TestBuildDeterministic(t *testing.T) {
	src := `
fun f(a: int, b: int): int {
    var x: int = 0;
    var y: int = 0;
    var z: int = 0;
    if (a > b) {
        x = 1;
        y = 2;
        z = 3;
    } else {
        x = 4;
        z = 5;
    }
    return x + y + z;
}`
	first := buildSrc(t, src).Funcs["f"].String()
	for i := 0; i < 5; i++ {
		if got := buildSrc(t, src).Funcs["f"].String(); got != first {
			t.Fatalf("nondeterministic SSA build:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestBuildRejectsLoops(t *testing.T) {
	prog := lang.MustParse(`
fun f(n: int): int {
    while (n > 0) { n = n - 1; }
    return n;
}`)
	if _, err := Build(prog); err == nil {
		t.Fatal("expected error for non-normalized program with loops")
	}
}

func TestProgramCounts(t *testing.T) {
	p := buildSrc(t, `
fun g(x: int): int { return x; }
fun f(a: int): int { return g(a); }`)
	if p.NumValues() <= 0 {
		t.Error("NumValues must be positive")
	}
	if p.NumSites != 1 {
		t.Errorf("NumSites: got %d, want 1", p.NumSites)
	}
	if len(p.Externs) != 3 { // the three havoc declarations
		t.Errorf("externs: got %d, want 3", len(p.Externs))
	}
}
