package ssa

// Dominator computation on an arbitrary directed graph, using the iterative
// algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance
// Algorithm"). It is near-linear on the reducible graphs produced from
// structured code and requires no auxiliary data structures beyond a
// reverse-postorder numbering.

// Graph is the minimal shape the dominance routines need.
type Graph interface {
	// NumNodes returns the node count; nodes are identified by 0..n-1.
	NumNodes() int
	// Succs returns the successor node IDs of n.
	Succs(n int) []int
	// Preds returns the predecessor node IDs of n.
	Preds(n int) []int
}

// DomTree holds immediate dominators for a graph rooted at Entry.
type DomTree struct {
	Entry int
	// Idom[n] is the immediate dominator of n, or -1 for the entry and
	// for nodes unreachable from the entry.
	Idom []int
	// order[n] is the reverse-postorder index of n (entry = 0), or -1.
	order []int
}

// Dominators computes the dominator tree of g rooted at entry.
func Dominators(g Graph, entry int) *DomTree {
	n := g.NumNodes()
	t := &DomTree{Entry: entry, Idom: make([]int, n), order: make([]int, n)}
	for i := range t.Idom {
		t.Idom[i] = -1
		t.order[i] = -1
	}

	// Reverse postorder via iterative DFS.
	post := make([]int, 0, n)
	state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		node int
		i    int
	}
	stack := []frame{{node: entry}}
	state[entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Succs(f.node)
		if f.i < len(succs) {
			s := succs[f.i]
			f.i++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{node: s})
			}
			continue
		}
		state[f.node] = 2
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	for i, node := range rpo {
		t.order[node] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for t.order[a] > t.order[b] {
				a = t.Idom[a]
			}
			for t.order[b] > t.order[a] {
				b = t.Idom[b]
			}
		}
		return a
	}

	t.Idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, node := range rpo {
			if node == entry {
				continue
			}
			newIdom := -1
			for _, p := range g.Preds(node) {
				if t.order[p] < 0 || t.Idom[p] == -1 {
					continue // unreachable or unprocessed predecessor
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && t.Idom[node] != newIdom {
				t.Idom[node] = newIdom
				changed = true
			}
		}
	}
	t.Idom[entry] = -1
	return t
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b int) bool {
	if t.order[b] < 0 {
		return false // b unreachable
	}
	for b != -1 {
		if a == b {
			return true
		}
		b = t.Idom[b]
	}
	return false
}

// Reachable reports whether n is reachable from the entry.
func (t *DomTree) Reachable(n int) bool { return t.order[n] >= 0 || n == t.Entry }

// reverseGraph adapts a Graph with successor/predecessor roles swapped, so
// post-dominators are dominators of the reversed graph.
type reverseGraph struct{ g Graph }

func (r reverseGraph) NumNodes() int     { return r.g.NumNodes() }
func (r reverseGraph) Succs(n int) []int { return r.g.Preds(n) }
func (r reverseGraph) Preds(n int) []int { return r.g.Succs(n) }

// PostDominators computes the post-dominator tree of g rooted at exit.
func PostDominators(g Graph, exit int) *DomTree {
	return Dominators(reverseGraph{g}, exit)
}

// ControlDeps computes control dependence per Ferrante, Ottenstein and
// Warren: node w is control-dependent on edge (u -> v) when w post-dominates
// v but does not post-dominate u. The result maps each node to the set of
// branch nodes u it is control-dependent on, keyed by the successor index
// of the taken edge.
type ControlDep struct {
	Branch int // the branching node
	Edge   int // index into Succs(Branch) of the edge that enables the node
}

// ControlDeps returns, for every node, the control dependences computed
// from the post-dominance relation.
func ControlDeps(g Graph, exit int) map[int][]ControlDep {
	pdom := PostDominators(g, exit)
	out := map[int][]ControlDep{}
	for u := 0; u < g.NumNodes(); u++ {
		succs := g.Succs(u)
		if len(succs) < 2 {
			continue
		}
		for ei, v := range succs {
			// Walk the post-dominator tree from v up to (but excluding)
			// ipdom(u); everything on the way is control-dependent on
			// (u, v).
			stop := pdom.Idom[u]
			for w := v; w != -1 && w != stop; w = pdom.Idom[w] {
				out[w] = append(out[w], ControlDep{Branch: u, Edge: ei})
				if w == u {
					break // self-loop; should not occur in our CFGs
				}
			}
		}
	}
	return out
}

// cfgGraph adapts *CFG to the Graph interface.
type cfgGraph struct{ c *CFG }

func (a cfgGraph) NumNodes() int { return len(a.c.Blocks) }
func (a cfgGraph) Succs(n int) []int {
	out := make([]int, len(a.c.Blocks[n].Succs))
	for i, s := range a.c.Blocks[n].Succs {
		out[i] = s.ID
	}
	return out
}
func (a cfgGraph) Preds(n int) []int {
	out := make([]int, len(a.c.Blocks[n].Preds))
	for i, s := range a.c.Blocks[n].Preds {
		out[i] = s.ID
	}
	return out
}

// AsGraph exposes the CFG through the generic Graph interface.
func (c *CFG) AsGraph() Graph { return cfgGraph{c} }

// CFGControlDeps computes control dependences of a CFG's blocks.
func CFGControlDeps(c *CFG) map[int][]ControlDep {
	return ControlDeps(c.AsGraph(), c.Exit.ID)
}
