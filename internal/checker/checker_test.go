package checker_test

import (
	"context"
	"strings"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

func buildGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

func TestByName(t *testing.T) {
	for _, name := range []string{"null-deref", "cwe-23", "cwe-402", "cwe-369", "cwe-125"} {
		s, err := checker.ByName(name)
		if err != nil || s.Name != name {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := checker.ByName("nope"); err == nil {
		t.Error("expected error for unknown checker")
	}
	if len(checker.All()) != 5 {
		t.Errorf("All: got %d checkers, want 5", len(checker.All()))
	}
}

// checkDivZero runs CWE-369 with both engines and returns the verdicts.
func checkDivZero(t *testing.T, src string) ([]engines.Verdict, []engines.Verdict) {
	t.Helper()
	g := buildGraph(t, src)
	cands := sparse.NewEngine(g).Run(checker.DivByZero())
	if len(cands) == 0 {
		t.Fatal("no division-by-zero candidates")
	}
	return engines.NewFusion().Check(context.Background(), g, cands),
		engines.NewPinpoint(engines.Plain).Check(context.Background(), g, cands)
}

func TestDivByZeroPossible(t *testing.T) {
	// n - n is always zero: definitely a trap once reached.
	fus, pin := checkDivZero(t, `
fun f() {
    var n: int = user_input();
    var d: int = n - n;
    var x: int = 100 / d;
    send(x);
}`)
	for _, vs := range [][]engines.Verdict{fus, pin} {
		if vs[0].Status != sat.Sat {
			t.Errorf("n-n divisor: got %s, want sat", vs[0].Status)
		}
	}
}

func TestDivByZeroImpossibleOddDivisor(t *testing.T) {
	// 2n + 1 is odd, hence never zero modulo 2^32: the constraint divisor=0
	// is unsatisfiable no matter the input. This requires bit-precise
	// reasoning, not just syntactic checks.
	fus, pin := checkDivZero(t, `
fun f() {
    var n: int = user_input();
    var d: int = n * 2 + 1;
    var x: int = 100 / d;
    send(x);
}`)
	for i, vs := range [][]engines.Verdict{fus, pin} {
		if vs[0].Status != sat.Unsat {
			t.Errorf("engine %d: odd divisor: got %s, want unsat", i, vs[0].Status)
		}
	}
}

func TestDivByZeroGuarded(t *testing.T) {
	// The program guards the division: inside the guard the divisor cannot
	// be zero.
	fus, pin := checkDivZero(t, `
fun f() {
    var n: int = user_input();
    if (n != 0) {
        var x: int = 100 / n;
        send(x);
    }
}`)
	for i, vs := range [][]engines.Verdict{fus, pin} {
		if vs[0].Status != sat.Unsat {
			t.Errorf("engine %d: guarded division: got %s, want unsat", i, vs[0].Status)
		}
	}
	// Remainder sinks too, and an unguarded one is a bug.
	fus2, _ := checkDivZero(t, `
fun f() {
    var n: int = user_input();
    var x: int = 100 % n;
    send(x);
}`)
	if fus2[0].Status != sat.Sat {
		t.Errorf("unguarded remainder: got %s, want sat", fus2[0].Status)
	}
}

func TestDivByZeroInterprocedural(t *testing.T) {
	// The divisor is sanitized in a callee; the constraint must reason
	// through the call.
	fus, pin := checkDivZero(t, `
fun sanitize(v: int): int {
    var r: int = v;
    if (v == 0) {
        r = 1;
    }
    return r;
}
fun f() {
    var n: int = user_input();
    var d: int = sanitize(n);
    var x: int = 100 / d;
    send(x);
}`)
	for i, vs := range [][]engines.Verdict{fus, pin} {
		if vs[0].Status != sat.Unsat {
			t.Errorf("engine %d: sanitized divisor: got %s, want unsat", i, vs[0].Status)
		}
	}
}

func TestDescribe(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var n: int = user_input();
    var x: int = 100 / n;
    send(x);
}`)
	cands := sparse.NewEngine(g).Run(checker.DivByZero())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates", len(cands))
	}
	s := checker.Describe(cands[0])
	if !strings.Contains(s, "cwe-369") || !strings.Contains(s, "operator /") {
		t.Errorf("unexpected description: %s", s)
	}
}
