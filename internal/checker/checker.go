// Package checker defines the three clients the paper evaluates (§4): the
// null-exception checker and two taint checkers, CWE-23 (relative path
// traversal: external input reaching file operations) and CWE-402
// (transmission of private resources: secrets reaching I/O operations).
// Each is a source/sink specification for the sparse engine; candidate
// flows are then filtered by the path-feasibility solver of the chosen
// engine.
package checker

import (
	"fmt"

	"fusion/internal/sparse"
	"fusion/internal/ssa"
)

// Extern function vocabularies the checkers understand. Programs declare
// the ones they use (see Prelude).
var (
	// NullSinks dereference a pointer argument.
	NullSinks = []string{"deref", "load", "store_to"}
	// TaintInputSources produce attacker-controlled strings.
	TaintInputSources = []string{"gets", "user_input", "recv_input", "read_env"}
	// FileSinks open or manipulate a file path (CWE-23).
	FileSinks = []string{"fopen", "open_file", "unlink", "read_file"}
	// SecretSources produce private data.
	SecretSources = []string{"getpass", "read_secret", "load_key"}
	// TransmitSinks send data to the outside world (CWE-402).
	TransmitSinks = []string{"send", "sendmsg", "write_socket", "log_remote"}
	// IndexSinks access a fixed-size buffer at an index argument (CWE-125):
	// sink name -> (index argument position, buffer size). The _n variants
	// take the buffer length as a further argument instead of a fixed
	// size — deciding those needs a relation between index and length,
	// which is what the zone refutation tier provides.
	IndexSinks = map[string]sparse.IndexSink{
		"buf_read":    {Arg: 0, Size: BufSize},
		"buf_write":   {Arg: 0, Size: BufSize},
		"buf_read_n":  {Arg: 0, DynBound: true, BoundArg: 1},
		"buf_write_n": {Arg: 0, DynBound: true, BoundArg: 1},
	}
)

// BufSize is the modeled element count of the buffers behind buf_read and
// buf_write; an index outside [0, BufSize) is an out-of-bounds access.
const BufSize = 256

// Prelude is language source text declaring every extern the checkers know
// about; prepend it to programs that use them.
const Prelude = `
extern fun deref(p: ptr);
extern fun load(p: ptr): int;
extern fun store_to(p: ptr, v: int);
extern fun gets(): ptr;
extern fun user_input(): int;
extern fun recv_input(): int;
extern fun read_env(): ptr;
extern fun fopen(path: ptr): ptr;
extern fun open_file(path: ptr): int;
extern fun unlink(path: ptr);
extern fun read_file(path: ptr): int;
extern fun getpass(): ptr;
extern fun read_secret(): int;
extern fun load_key(): ptr;
extern fun send(x: int);
extern fun sendmsg(a: int, b: int);
extern fun write_socket(x: int);
extern fun log_remote(x: int);
extern fun buf_read(i: int): int;
extern fun buf_write(i: int, v: int);
extern fun buf_read_n(i: int, n: int): int;
extern fun buf_write_n(i: int, n: int, v: int);
`

func sinkMap(names []string) map[string][]int {
	m := map[string][]int{}
	for _, n := range names {
		m[n] = nil // any argument position
	}
	return m
}

// NullDeref returns the null-exception spec: null constants flowing into
// dereference sites.
func NullDeref() *sparse.Spec {
	return &sparse.Spec{
		Name:               "null-deref",
		IsSource:           sparse.NullSource,
		SinkCalls:          sinkMap(NullSinks),
		TaintThroughExtern: false,
	}
}

// PathTraversal returns the CWE-23 spec: external input flowing into file
// operations.
func PathTraversal() *sparse.Spec {
	return &sparse.Spec{
		Name:               "cwe-23",
		IsSource:           sparse.ExternCallSource(TaintInputSources...),
		SinkCalls:          sinkMap(FileSinks),
		TaintThroughExtern: true,
	}
}

// PrivateLeak returns the CWE-402 spec: private data flowing into
// transmission operations.
func PrivateLeak() *sparse.Spec {
	return &sparse.Spec{
		Name:               "cwe-402",
		IsSource:           sparse.ExternCallSource(SecretSources...),
		SinkCalls:          sinkMap(TransmitSinks),
		TaintThroughExtern: true,
	}
}

// DivByZero returns the CWE-369 spec: attacker-controlled values flowing
// into division or remainder divisors that can actually be zero. Unlike
// the call-sink checkers, feasibility here includes a value constraint —
// the divisor must equal zero on the reported path — so bit-precise
// reasoning (e.g. "2n + 1 is never zero") prunes the impossible reports.
func DivByZero() *sparse.Spec {
	return &sparse.Spec{
		Name:               "cwe-369",
		IsSource:           sparse.ExternCallSource(TaintInputSources...),
		SinkCalls:          map[string][]int{},
		SinkDivisors:       true,
		TaintThroughExtern: true,
	}
}

// IndexOOB returns the CWE-125 spec: attacker-controlled values flowing
// into fixed-size buffer accesses. The sink carries an interval constraint
// — the index must escape [0, size) on the reported path — which the
// absint tier can often refute outright (e.g. "n % 100 stays in bounds")
// and the solver otherwise decides bit-precisely.
func IndexOOB() *sparse.Spec {
	return &sparse.Spec{
		Name:               "cwe-125",
		IsSource:           sparse.ExternCallSource(TaintInputSources...),
		SinkCalls:          map[string][]int{},
		SinkBounds:         IndexSinks,
		TaintThroughExtern: true,
	}
}

// All returns every checker spec.
func All() []*sparse.Spec {
	return []*sparse.Spec{NullDeref(), PathTraversal(), PrivateLeak(), DivByZero(), IndexOOB()}
}

// ByName returns the spec with the given name.
func ByName(name string) (*sparse.Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("checker: unknown checker %q", name)
}

// Describe renders a candidate as a human-readable bug report line.
func Describe(c sparse.Candidate) string {
	src := c.Source
	sink := c.Sink.Callee
	if sink == "" {
		sink = fmt.Sprintf("operator %s at %s", c.Sink.BinOp, pos(c.Sink))
	}
	return fmt.Sprintf("[%s] %s:%s -> %s.%s(arg %d) via %d-step flow",
		c.Spec.Name, src.Fn.Name, pos(src), c.Sink.Fn.Name, sink,
		c.ArgIdx, len(c.Path))
}

func pos(v *ssa.Value) string {
	if v.Pos.IsValid() {
		return v.Pos.String()
	}
	return fmt.Sprintf("v%d", v.ID)
}
