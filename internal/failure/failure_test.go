package failure

import (
	"encoding/json"
	"strings"
	"testing"
)

func capture(unit, stage string) (f *UnitFailure) {
	defer func() {
		if v := recover(); v != nil {
			f = FromPanic(unit, stage, v)
		}
	}()
	panic("boom")
}

func TestFromPanic(t *testing.T) {
	f := capture("a.fl", "sema")
	if f == nil {
		t.Fatal("no failure captured")
	}
	if f.Unit != "a.fl" || f.Stage != "sema" || f.Value != "boom" {
		t.Errorf("wrong fields: %+v", f)
	}
	if want := "unit a.fl: stage sema: boom"; f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
	if strings.Contains(f.Stack, "goroutine ") {
		t.Errorf("stack keeps goroutine header:\n%s", f.Stack)
	}
	if strings.Contains(f.Stack, "0x") {
		t.Errorf("stack keeps hex values:\n%s", f.Stack)
	}
	if !strings.Contains(f.Stack, "failure.capture") {
		t.Errorf("stack lost the panicking frame:\n%s", f.Stack)
	}
}

// The digest must be a pure function of stage and sanitized stack:
// capturing the same panic twice yields the same digest.
func TestDigestDeterministic(t *testing.T) {
	a, b := capture("a.fl", "sema"), capture("b.fl", "sema")
	if a.Digest() != b.Digest() {
		t.Errorf("same crash, different digests: %s vs %s\n%s\n---\n%s",
			a.Digest(), b.Digest(), a.Stack, b.Stack)
	}
	c := capture("a.fl", "parse")
	if c.Digest() == a.Digest() {
		t.Error("different stages share a digest")
	}
}

func TestSanitizeStack(t *testing.T) {
	in := "goroutine 7 [running]:\n" +
		"main.work(0xc000010250, 0x2)\n" +
		"\t/home/u/repo/main.go:42 +0x1a\n" +
		"runtime.gopanic({0x4f2a80?, 0xc0000142d0?})\n" +
		"\t/usr/local/go/src/runtime/panic.go:770 +0x132\n"
	got := SanitizeStack(in)
	want := "main.work\n\tmain.go:42"
	if got != want {
		t.Errorf("SanitizeStack:\n%q\nwant\n%q", got, want)
	}
}

// TestBoundedWireForm: the JSON form must stay small no matter what
// crashed — the stack is replaced by its digest and the panic value is
// truncated — and a round trip (journal write, crash, replay) must
// preserve the digest so crash grouping survives a resume.
func TestBoundedWireForm(t *testing.T) {
	f := capture("null-deref f.fl:3:5", "solve")
	f.Value = strings.Repeat("v", 3*maxWireValue)
	f.Attempts = 3
	want := f.Digest()

	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 2048 {
		t.Errorf("wire form not bounded: %d bytes", len(data))
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["Stack"]; ok {
		t.Error("stack persisted in the wire form")
	}

	var g UnitFailure
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	if g.Digest() != want {
		t.Errorf("digest %s after round trip, want %s", g.Digest(), want)
	}
	if g.Stack != "" {
		t.Error("stack resurrected after round trip")
	}
	if !strings.HasSuffix(g.Value, " [truncated]") || len(g.Value) != maxWireValue+len(" [truncated]") {
		t.Errorf("value not truncated to the bound: %d bytes", len(g.Value))
	}
	if g.Unit != f.Unit || g.Stage != f.Stage || g.Attempts != 3 {
		t.Errorf("fields lost across round trip: %+v", g)
	}

	// A second trip has no stack to recompute from: the carried digest
	// must keep reporting the original.
	data2, err := json.Marshal(&g)
	if err != nil {
		t.Fatal(err)
	}
	var h UnitFailure
	if err := json.Unmarshal(data2, &h); err != nil {
		t.Fatal(err)
	}
	if h.Digest() != want {
		t.Errorf("digest %s after second round trip, want %s", h.Digest(), want)
	}
}
