// Package failure defines the structured record a contained panic or
// stage crash leaves behind. One analysis unit (a source file, a
// candidate, an enumeration source) that dies is converted into a
// *UnitFailure attached to its result slot, so a single bad input
// degrades one unit and never the batch.
//
// The package sits below driver, sparse, engines, and bench so all of
// them can attach failures without import cycles.
package failure

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
)

// UnitFailure records one contained crash: which unit died, in which
// pipeline stage, the recovered panic value, and a sanitized stack.
type UnitFailure struct {
	// Unit names the work item: a source file, a candidate like
	// "null-deref f.fl:12:9", or an enumeration source.
	Unit string
	// Stage is the pipeline stage that crashed: parse, sema, unroll,
	// ssa, pdg, absint, enum, check, solve.
	Stage string
	// Value is the recovered panic value, rendered with %v.
	Value string
	// Stack is the sanitized stack trace of the panicking goroutine:
	// the goroutine header and the hex argument lists are stripped so
	// the text is byte-identical across runs and worker counts.
	Stack string
	// Attempts counts how many times the supervision layer ran the unit
	// before giving up; 0 or 1 both mean a single attempt (no retry
	// ladder, or a ladder of height one). It does not enter Digest, so
	// the same crash groups together whatever the -retries setting.
	Attempts int

	// digest preserves the stack digest across the bounded JSON round
	// trip: the wire form drops Stack (stacks can be arbitrarily large
	// and a persisted record must stay bounded) but keeps its digest so
	// grouping and reporting survive a journal replay.
	digest string
}

// Error implements error.
func (f *UnitFailure) Error() string {
	return fmt.Sprintf("unit %s: stage %s: %s", f.Unit, f.Stage, f.Value)
}

// Digest returns a short stable identifier for the failure's stack,
// suitable for grouping identical crashes across units. A failure
// deserialized from its bounded wire form has no stack anymore and
// reports the digest computed before serialization.
func (f *UnitFailure) Digest() string {
	if f.Stack == "" && f.digest != "" {
		return f.digest
	}
	h := fnv.New32a()
	h.Write([]byte(f.Stage))
	h.Write([]byte{0})
	h.Write([]byte(f.Stack))
	return fmt.Sprintf("%08x", h.Sum32())
}

// maxWireValue bounds the panic value persisted in the wire form: a
// panic carrying a rendered formula or a huge input must not make a
// journal record unbounded.
const maxWireValue = 512

// wireFailure is the bounded JSON form: the sanitized stack is replaced
// by its digest and the panic value is truncated, so one persisted
// record stays small no matter what crashed.
type wireFailure struct {
	Unit     string `json:"unit"`
	Stage    string `json:"stage"`
	Value    string `json:"value,omitempty"`
	Digest   string `json:"digest"`
	Attempts int    `json:"attempts,omitempty"`
}

// MarshalJSON implements json.Marshaler with the bounded wire form.
func (f *UnitFailure) MarshalJSON() ([]byte, error) {
	v := f.Value
	if len(v) > maxWireValue {
		v = v[:maxWireValue] + " [truncated]"
	}
	return json.Marshal(wireFailure{
		Unit: f.Unit, Stage: f.Stage, Value: v,
		Digest: f.Digest(), Attempts: f.Attempts,
	})
}

// UnmarshalJSON implements json.Unmarshaler for the bounded wire form.
func (f *UnitFailure) UnmarshalJSON(data []byte) error {
	var w wireFailure
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*f = UnitFailure{
		Unit: w.Unit, Stage: w.Stage, Value: w.Value,
		Attempts: w.Attempts, digest: w.Digest,
	}
	return nil
}

// FromPanic builds a UnitFailure from a recovered panic value. Call it
// directly inside the deferred recover so the captured stack still
// contains the panicking frames.
func FromPanic(unit, stage string, v any) *UnitFailure {
	return FromPanicAt(unit, stage, v, "")
}

// FromPanicAt is FromPanic with a containment boundary: the sanitized
// stack is truncated before the first frame whose function name contains
// boundary. Containment layers pass their own function name so the
// frames below them — which differ between inline and pooled execution —
// never reach the stack or its digest, keeping both byte-identical for
// any worker count.
func FromPanicAt(unit, stage string, v any, boundary string) *UnitFailure {
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &UnitFailure{
		Unit:  unit,
		Stage: stage,
		Value: fmt.Sprintf("%v", v),
		Stack: sanitizeStack(string(buf), boundary),
	}
}

// SanitizeStack rewrites a runtime.Stack dump into a deterministic
// form: the "goroutine N [running]:" header and "created by" trailer go
// away, each call frame keeps only the function name (hex argument
// values vary run to run), and each source line keeps file:line but
// drops the "+0x..." program counter offset. Frames belonging to the
// runtime's panic machinery and to this package are dropped so the
// first line is the frame that actually panicked.
func SanitizeStack(s string) string { return sanitizeStack(s, "") }

func sanitizeStack(s, boundary string) string {
	lines := strings.Split(s, "\n")
	var out []string
	skipNext := false
	// The boundary only applies below the panic frame: above it sit the
	// recovery closures of the containment layer itself, whose names may
	// contain the boundary too.
	seenPanic := false
	for _, ln := range lines {
		if strings.HasPrefix(ln, "goroutine ") {
			continue
		}
		if skipNext {
			// Source position line belonging to a dropped frame.
			skipNext = false
			continue
		}
		if !strings.HasPrefix(ln, "\t") {
			// Function frame line: "pkg.fn(0x1, 0x2)" → "pkg.fn".
			name := ln
			if i := strings.IndexByte(name, '('); i > 0 {
				name = name[:i]
			}
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if name == "panic" || strings.HasPrefix(name, "runtime.") ||
				strings.HasPrefix(name, "created by ") ||
				strings.HasPrefix(name, "fusion/internal/failure.FromPanic") {
				if name == "panic" || strings.HasPrefix(name, "runtime.") {
					seenPanic = true
				}
				skipNext = true
				continue
			}
			if seenPanic && boundary != "" && strings.Contains(name, boundary) {
				// The containment layer and everything below it varies
				// with scheduling mode and caller — cut here.
				break
			}
			out = append(out, name)
			continue
		}
		// Source line: "\t/path/file.go:123 +0x1a" → "\tfile.go:123".
		pos := strings.TrimSpace(ln)
		if i := strings.IndexByte(pos, ' '); i > 0 {
			pos = pos[:i]
		}
		if i := strings.LastIndexByte(pos, '/'); i >= 0 {
			pos = pos[i+1:]
		}
		out = append(out, "\t"+pos)
	}
	return strings.Join(out, "\n")
}
