package pdg_test

import (
	"strings"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/sema"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
	"fusion/internal/unroll"
)

func buildGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	prog, err := lang.Parse(checker.Prelude + src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		t.Fatalf("sema: %v", errs)
	}
	norm := unroll.Normalize(prog, unroll.Options{})
	p, err := ssa.Build(norm)
	if err != nil {
		t.Fatalf("ssa: %v", err)
	}
	return pdg.Build(p)
}

const fig1Src = `
fun bar(x: int): int {
    var y: int = x * 2;
    var z: int = y;
    return z;
}

fun foo(a: int, b: int) {
    var p: ptr = null;
    var c: int = bar(a);
    var d: int = bar(b);
    if (c < d) {
        deref(p);
    }
}
`

func TestGraphBuild(t *testing.T) {
	g := buildGraph(t, fig1Src)
	if len(g.Callers["bar"]) != 2 {
		t.Fatalf("bar callers: got %d, want 2", len(g.Callers["bar"]))
	}
	for _, c := range g.Callers["bar"] {
		if g.SiteCall[c.Site] != c {
			t.Error("SiteCall inconsistent with call vertex")
		}
		if g.Callee(c).Name != "bar" {
			t.Error("Callee lookup failed")
		}
	}
	st := pdg.ComputeStats(g)
	if st.Functions != 2 {
		t.Errorf("functions: got %d, want 2", st.Functions)
	}
	if st.CallEdges != 2 || st.ReturnEdges != 2 {
		t.Errorf("call/return edges: got %d/%d, want 2/2", st.CallEdges, st.ReturnEdges)
	}
	if st.Vertices == 0 || st.Edges() <= st.CallEdges+st.ReturnEdges {
		t.Errorf("implausible stats: %+v", st)
	}
}

func TestParamIndex(t *testing.T) {
	g := buildGraph(t, fig1Src)
	foo := g.Prog.Funcs["foo"]
	if pdg.ParamIndex(foo.Params[0]) != 0 || pdg.ParamIndex(foo.Params[1]) != 1 {
		t.Error("ParamIndex wrong for parameters")
	}
	for _, v := range foo.Values {
		if v.Op != ssa.OpParam && pdg.ParamIndex(v) != -1 {
			t.Errorf("ParamIndex of non-param %v must be -1", v)
		}
	}
}

func TestTypeBits(t *testing.T) {
	if pdg.TypeBits(lang.TypeBool) != 1 {
		t.Error("bool must be 1 bit")
	}
	if pdg.TypeBits(lang.TypeInt) != 32 || pdg.TypeBits(lang.TypePtr) != 32 {
		t.Error("int and ptr must be 32 bits")
	}
}

// findNullToDeref runs the null checker's propagation and returns the
// single candidate path.
func findNullToDeref(t *testing.T, g *pdg.Graph) pdg.Path {
	t.Helper()
	eng := sparse.NewEngine(g)
	cands := eng.Run(checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("candidates: got %d, want 1", len(cands))
	}
	return cands[0].Path
}

func TestSliceFigure3(t *testing.T) {
	g := buildGraph(t, fig1Src)
	path := findNullToDeref(t, g)
	sl := pdg.ComputeSlice(g, []pdg.Path{path})

	// The slice must reach into bar: its return, the multiplication, and
	// the parameter.
	bar := g.Prog.Funcs["bar"]
	if !sl.Values[bar.Ret] {
		t.Error("slice must contain bar's return")
	}
	foundMul := false
	for v := range sl.Values {
		if v.Fn == bar && v.Op == ssa.OpBin {
			foundMul = true
		}
	}
	if !foundMul {
		t.Error("slice must contain y = x * 2")
	}
	// bar is entered through both call sites.
	if got := len(sl.Entered[bar]); got != 2 {
		t.Errorf("bar entered sites: got %d, want 2", got)
	}
	// foo is a slice root (its parameters are free).
	roots := sl.Roots()
	if len(roots) != 1 || roots[0].Name != "foo" {
		t.Errorf("roots: got %v, want [foo]", roots)
	}
	// Slice size is linear: no larger than the whole program.
	if sl.Size() > g.Prog.NumValues() {
		t.Error("slice larger than the program")
	}
}

func TestSliceItePruning(t *testing.T) {
	g := buildGraph(t, `
fun f(a: int, q: ptr) {
    var p: ptr = null;
    var r: ptr = q;
    if (a > 0) {
        r = p;
    }
    deref(r);
}
`)
	path := findNullToDeref(t, g)
	sl := pdg.ComputeSlice(g, []pdg.Path{path})
	// Find the ite merging r.
	var ite *ssa.Value
	for v := range sl.Values {
		if v.Op == ssa.OpIte && v.Name == "r" {
			ite = v
		}
	}
	if ite == nil {
		t.Fatal("ite for r not in slice")
	}
	thenIn, elseIn := sl.IteTaken(ite)
	if !thenIn || elseIn {
		t.Errorf("ite pruning: thenIn=%v elseIn=%v, want true/false", thenIn, elseIn)
	}
}

func TestPathString(t *testing.T) {
	g := buildGraph(t, fig1Src)
	path := findNullToDeref(t, g)
	s := path.String()
	if s == "" {
		t.Fatal("empty path rendering")
	}
	if path.Start().Op != ssa.OpConst {
		t.Errorf("path must start at the null constant, got %s", path.Start().Op)
	}
	if path.End().Op != ssa.OpExtern || path.End().Callee != "deref" {
		t.Errorf("path must end at deref, got %v", path.End())
	}
}

func TestSliceMultiplePathsShareWork(t *testing.T) {
	g := buildGraph(t, fig1Src)
	path := findNullToDeref(t, g)
	s1 := pdg.ComputeSlice(g, []pdg.Path{path})
	s2 := pdg.ComputeSlice(g, []pdg.Path{path, path})
	if s1.Size() != s2.Size() {
		t.Errorf("duplicate paths changed the slice: %d vs %d", s1.Size(), s2.Size())
	}
}

func TestToDOT(t *testing.T) {
	g := buildGraph(t, fig1Src)
	dot := pdg.ToDOT(g)
	for _, want := range []string{
		"digraph pdg {",
		"subgraph cluster_0",
		"label=\"bar\"",
		"style=dashed", // control dependence
		"style=bold",   // call/return edges
		"x = <x>",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}
