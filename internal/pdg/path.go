package pdg

import (
	"fmt"
	"strings"

	"fusion/internal/ssa"
)

// StepKind classifies how a data-dependence path arrived at a vertex.
type StepKind int

// Step kinds.
const (
	StepStart  StepKind = iota // first vertex of the path
	StepIntra                  // ordinary intra-procedural data dependence
	StepCall                   // actual -> formal edge, labeled "(Site"
	StepReturn                 // return -> receiver edge, labeled ")Site"
)

func (k StepKind) String() string {
	switch k {
	case StepStart:
		return "start"
	case StepIntra:
		return "intra"
	case StepCall:
		return "call"
	case StepReturn:
		return "return"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one vertex of a data-dependence path, together with the labeled
// edge that reached it.
type Step struct {
	V    *ssa.Value
	Kind StepKind
	Site int // call-site ID for StepCall and StepReturn
}

// Path is a data-dependence path on the program dependence graph (the π of
// Algorithm 1/2), recording the call/return labels it crossed.
type Path []Step

// Start returns the first vertex.
func (p Path) Start() *ssa.Value { return p[0].V }

// End returns the last vertex.
func (p Path) End() *ssa.Value { return p[len(p)-1].V }

// String renders the path for diagnostics.
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p {
		if i > 0 {
			switch s.Kind {
			case StepCall:
				fmt.Fprintf(&b, " -(%d-> ", s.Site)
			case StepReturn:
				fmt.Fprintf(&b, " -)%d-> ", s.Site)
			default:
				b.WriteString(" -> ")
			}
		}
		name := s.V.Name
		if name == "" {
			name = fmt.Sprintf("v%d", s.V.ID)
		}
		fmt.Fprintf(&b, "%s.%s", s.V.Fn.Name, name)
	}
	return b.String()
}

// Extend returns a new path with one more step appended. The receiver is
// not modified and may continue to be extended elsewhere (paths share
// prefixes structurally).
func (p Path) Extend(v *ssa.Value, kind StepKind, site int) Path {
	np := make(Path, len(p), len(p)+1)
	copy(np, p)
	return append(np, Step{V: v, Kind: kind, Site: site})
}
