package pdg

import (
	"fmt"
	"sort"
	"strings"

	"fusion/internal/ssa"
)

// ToDOT renders the program dependence graph in Graphviz DOT format, one
// cluster per function: solid edges are data dependence, dashed edges
// control dependence, and bold labeled edges the call/return pairs — the
// visual convention of the paper's Figure 3.
func ToDOT(g *Graph) string {
	return ToDOTAnnotated(g, nil)
}

// ToDOTAnnotated is ToDOT with a per-vertex annotation hook: when annot
// returns a non-empty string for a vertex (e.g. an interval invariant from
// the absint tier, which this package cannot import), it is rendered on a
// second label line.
func ToDOTAnnotated(g *Graph, annot func(*ssa.Value) string) string {
	var b strings.Builder
	b.WriteString("digraph pdg {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	id := func(v *ssa.Value) string {
		return fmt.Sprintf("%q", fmt.Sprintf("%s.v%d", v.Fn.Name, v.ID))
	}
	label := func(v *ssa.Value) string {
		name := v.Name
		if name == "" {
			name = fmt.Sprintf("v%d", v.ID)
		}
		switch v.Op {
		case ssa.OpConst:
			return fmt.Sprintf("%s = %d", name, v.Const)
		case ssa.OpParam:
			return fmt.Sprintf("%s = <%s>", name, name)
		case ssa.OpBin:
			return fmt.Sprintf("%s = %s", name, v.BinOp)
		case ssa.OpCall, ssa.OpExtern:
			return fmt.Sprintf("%s = %s()#%d", name, v.Callee, v.Site)
		case ssa.OpBranch:
			return fmt.Sprintf("branch v%d", v.ID)
		case ssa.OpReturn:
			return "return"
		default:
			return fmt.Sprintf("%s = %s", name, v.Op)
		}
	}

	funcs := append([]*ssa.Function(nil), g.Prog.Order...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })
	for fi, f := range funcs {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", fi, f.Name)
		for _, v := range f.Values {
			l := label(v)
			if annot != nil {
				if a := annot(v); a != "" {
					l += "\n" + a
				}
			}
			fmt.Fprintf(&b, "    %s [label=%q];\n", id(v), l)
		}
		b.WriteString("  }\n")
	}
	for _, f := range funcs {
		for _, v := range f.Values {
			if v.Op != ssa.OpCall {
				for _, a := range v.Args {
					fmt.Fprintf(&b, "  %s -> %s;\n", id(a), id(v))
				}
			}
			if v.Guard != nil {
				fmt.Fprintf(&b, "  %s -> %s [style=dashed];\n", id(v), id(v.Guard))
			}
			if v.Op == ssa.OpCall {
				callee := g.Callee(v)
				for i, a := range v.Args {
					if i < len(callee.Params) {
						fmt.Fprintf(&b, "  %s -> %s [style=bold, label=\"(%d\"];\n",
							id(a), id(callee.Params[i]), v.Site)
					}
				}
				if callee.Ret != nil {
					fmt.Fprintf(&b, "  %s -> %s [style=bold, label=\")%d\"];\n",
						id(callee.Ret), id(v), v.Site)
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
