package pdg

import (
	"sort"

	"fusion/internal/ssa"
)

// Slice is a program slice with respect to a set Π of data-dependence
// paths: the sub-graph G[Π] of Figure 8, rules (1)-(3). It contains every
// vertex the paths transitively data- or control-depend on, the ite edges
// pruned by rule (1), and the call sites through which each function is
// entered (the labeled call/return edges of the slice, which later drive
// context-sensitive cloning).
type Slice struct {
	G     *Graph
	Paths []Path
	// Values is V[Π], the vertices of the slice.
	Values map[*ssa.Value]bool
	// PrunedArgs records, per ite vertex, which value argument indices
	// (1 = then, 2 = else) were pruned by rule (1)'s X_d set.
	PrunedArgs map[*ssa.Value]map[int]bool
	// Entered records, per function, the call sites through which the
	// slice enters it. Functions with no entry are slice roots whose
	// parameters are free.
	Entered map[*ssa.Function]map[int]bool
	// paramsSeen tracks parameters already in the slice per function, so
	// newly discovered entry sites can revisit them.
	paramsSeen map[*ssa.Function][]*ssa.Value
	// Constraints pins path-step values in the condition — e.g. a
	// division-by-zero check asserts the divisor is zero at the sink.
	Constraints []ValueConstraint
}

// ConstraintKind discriminates how a value constraint pins a path step.
type ConstraintKind int

const (
	// ConstraintEq requires the step value to equal Value exactly (e.g. a
	// zero divisor at a division sink).
	ConstraintEq ConstraintKind = iota
	// ConstraintOutOfBounds requires the step value to fall outside the
	// index range [0, Bound) under signed interpretation — the sink
	// condition of an out-of-bounds access checker.
	ConstraintOutOfBounds
	// ConstraintOutOfBoundsDyn is the dynamic-bound variant: the step
	// value is a sink call whose argument Arg must fall outside
	// [0, args[BoundArg]) under signed interpretation.
	ConstraintOutOfBoundsDyn
)

// ValueConstraint constrains the vertex at Paths[Path][Step] in the
// context the path visits it in: ConstraintEq pins it to Value,
// ConstraintOutOfBounds requires it to miss [0, Bound), and
// ConstraintOutOfBoundsDyn requires the step's Arg argument to miss
// [0, BoundArg argument).
type ValueConstraint struct {
	Path     int
	Step     int
	Kind     ConstraintKind
	Value    uint32 // ConstraintEq payload
	Bound    uint32 // ConstraintOutOfBounds payload
	Arg      int    // ConstraintOutOfBoundsDyn: index argument position
	BoundArg int    // ConstraintOutOfBoundsDyn: bound argument position
}

// Constrain records an equality constraint on a path step.
func (s *Slice) Constrain(path, step int, value uint32) {
	s.Constraints = append(s.Constraints, ValueConstraint{Path: path, Step: step, Value: value})
}

// ConstrainBounds records an out-of-bounds constraint on a path step.
func (s *Slice) ConstrainBounds(path, step int, bound uint32) {
	s.Constraints = append(s.Constraints, ValueConstraint{
		Path: path, Step: step, Kind: ConstraintOutOfBounds, Bound: bound,
	})
}

// ConstrainBoundsDyn records a dynamic-bound out-of-bounds constraint on a
// path step: the step's call argument arg must miss [0, args[boundArg]).
func (s *Slice) ConstrainBoundsDyn(path, step, arg, boundArg int) {
	s.Constraints = append(s.Constraints, ValueConstraint{
		Path: path, Step: step, Kind: ConstraintOutOfBoundsDyn,
		Arg: arg, BoundArg: boundArg,
	})
}

// ComputeSlice applies rules (1)-(3) to the paths and returns the slice.
// Its running time is linear in the size of the resulting slice.
func ComputeSlice(g *Graph, paths []Path) *Slice {
	s := &Slice{
		G:          g,
		Paths:      paths,
		Values:     map[*ssa.Value]bool{},
		PrunedArgs: map[*ssa.Value]map[int]bool{},
		Entered:    map[*ssa.Function]map[int]bool{},
		paramsSeen: map[*ssa.Function][]*ssa.Value{},
	}
	var work []*ssa.Value
	add := func(v *ssa.Value) {
		if v != nil && !s.Values[v] {
			s.Values[v] = true
			work = append(work, v)
		}
	}

	// Rule (1): prune the ite edges not taken by any path.
	for _, p := range paths {
		for i := 1; i < len(p); i++ {
			u, v := p[i-1].V, p[i].V
			if p[i].Kind != StepIntra || v.Op != ssa.OpIte {
				continue
			}
			thenArg, elseArg := v.Args[1], v.Args[2]
			if u == thenArg && u != elseArg {
				s.pruneArg(v, 2)
			} else if u == elseArg && u != thenArg {
				s.pruneArg(v, 1)
			}
		}
	}

	// Seed the worklist with the path vertices and record labeled
	// crossings. A call-edge crossing additionally seeds the call vertex's
	// guard chain (the call must execute for the path to be feasible).
	enter := func(f *ssa.Function, site int) {
		m := s.Entered[f]
		if m == nil {
			m = map[int]bool{}
			s.Entered[f] = m
		}
		if m[site] {
			return
		}
		m[site] = true
		for _, prm := range s.paramsSeen[f] {
			s.bindParam(prm, site, add)
		}
	}
	for _, p := range paths {
		for i, st := range p {
			add(st.V)
			switch st.Kind {
			case StepCall:
				enter(st.V.Fn, st.Site)
				if c := g.SiteCall[st.Site]; c != nil {
					add(c.Guard)
				}
			case StepReturn:
				if i > 0 {
					enter(p[i-1].V.Fn, st.Site)
				}
			}
		}
		// The sink vertex of a path is where value constraints attach; an
		// extern sink's arguments (e.g. a dynamic buffer bound) are
		// referenced by those constraints, so they join the slice even
		// though the extern receiver itself stays free.
		if n := len(p); n > 0 && p[n-1].V.Op == ssa.OpExtern {
			for _, a := range p[n-1].V.Args {
				add(a)
			}
		}
	}

	// Rules (2) and (3): transitive closure over control and data
	// dependence, with call/return edges followed context-sensitively
	// through the Entered map.
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		add(v.Guard)
		switch v.Op {
		case ssa.OpConst:
			// no dependences
		case ssa.OpIte:
			add(v.Args[0])
			if !s.PrunedArgs[v][1] {
				add(v.Args[1])
			}
			if !s.PrunedArgs[v][2] {
				add(v.Args[2])
			}
		case ssa.OpCall:
			callee := g.Callee(v)
			if callee.Ret != nil {
				enter(callee, v.Site)
				add(callee.Ret)
			}
		case ssa.OpExtern:
			// The receiver of an empty function is unconstrained, so its
			// arguments contribute nothing to the path condition. (The
			// data-dependence edge still exists for sparse propagation.)
		case ssa.OpParam:
			f := v.Fn
			s.paramsSeen[f] = append(s.paramsSeen[f], v)
			for site := range s.Entered[f] {
				s.bindParam(v, site, add)
			}
		default:
			for _, a := range v.Args {
				add(a)
			}
		}
	}
	return s
}

func (s *Slice) pruneArg(ite *ssa.Value, idx int) {
	m := s.PrunedArgs[ite]
	if m == nil {
		m = map[int]bool{}
		s.PrunedArgs[ite] = m
	}
	m[idx] = true
}

// bindParam adds the actual argument bound to a parameter at the given
// call site, along with the guard chain of the call vertex.
func (s *Slice) bindParam(prm *ssa.Value, site int, add func(*ssa.Value)) {
	c := s.G.SiteCall[site]
	if c == nil {
		return
	}
	idx := ParamIndex(prm)
	if idx >= 0 && idx < len(c.Args) {
		add(c.Args[idx])
	}
	add(c.Guard)
}

// IteTaken reports how an ite vertex should translate under rule (6):
// thenOnly means only the then edge is in the slice, elseOnly the converse,
// and both means a full ite term is required.
func (s *Slice) IteTaken(ite *ssa.Value) (thenIn, elseIn bool) {
	pruned := s.PrunedArgs[ite]
	thenIn = s.Values[ite.Args[1]] && !pruned[1]
	elseIn = s.Values[ite.Args[2]] && !pruned[2]
	return thenIn, elseIn
}

// Size returns the number of vertices in the slice.
func (s *Slice) Size() int { return len(s.Values) }

// Roots returns the functions the slice touches that are never entered
// through a call site; their parameters are the free variables of the path
// condition.
func (s *Slice) Roots() []*ssa.Function {
	seen := map[*ssa.Function]bool{}
	var out []*ssa.Function
	for v := range s.Values {
		f := v.Fn
		if !seen[f] && len(s.Entered[f]) == 0 {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
