// Package pdg implements the program dependence graph of Definition 3.1 and
// the slicing rules (1)-(3) of Figure 8.
//
// The SSA form built by package ssa already encodes the intra-procedural
// graph: Value.Args are the data-dependence predecessors and Value.Guard is
// the innermost control dependence (the paper notes the SSA graph is a
// program dependence graph variant). This package adds the inter-procedural
// structure: call and return edges labeled with a unique call-site
// parenthesis pair, following the CFL-reachability convention, plus the
// reverse maps the sparse analysis and the slicer need.
package pdg

import (
	"fusion/internal/lang"
	"fusion/internal/ssa"
)

// Graph is the whole-program dependence graph.
type Graph struct {
	Prog *ssa.Program
	// Callers maps a defined function name to the call vertices that
	// target it, across the whole program.
	Callers map[string][]*ssa.Value
	// SiteCall maps a call-site ID to its call vertex.
	SiteCall []*ssa.Value
}

// Build constructs the program dependence graph for an SSA program.
func Build(p *ssa.Program) *Graph {
	g := &Graph{
		Prog:     p,
		Callers:  map[string][]*ssa.Value{},
		SiteCall: make([]*ssa.Value, p.NumSites),
	}
	for _, f := range p.Order {
		for _, v := range f.Values {
			switch v.Op {
			case ssa.OpCall:
				g.Callers[v.Callee] = append(g.Callers[v.Callee], v)
				g.SiteCall[v.Site] = v
			case ssa.OpExtern:
				g.SiteCall[v.Site] = v
			}
		}
	}
	return g
}

// Callee returns the SSA function a call vertex targets, or nil for extern
// calls.
func (g *Graph) Callee(call *ssa.Value) *ssa.Function {
	if call.Op != ssa.OpCall {
		return nil
	}
	return g.Prog.Funcs[call.Callee]
}

// Stats summarizes graph size, matching the columns of Table 2.
type Stats struct {
	Functions    int
	Vertices     int
	DataEdges    int // intra-procedural data dependence
	ControlEdges int
	CallEdges    int // actual -> formal, labeled "(s"
	ReturnEdges  int // return -> receiver, labeled ")s"
}

// Edges returns the total edge count.
func (s Stats) Edges() int {
	return s.DataEdges + s.ControlEdges + s.CallEdges + s.ReturnEdges
}

// ComputeStats counts vertices and edges of the graph.
func ComputeStats(g *Graph) Stats {
	var st Stats
	st.Functions = len(g.Prog.Order)
	for _, f := range g.Prog.Order {
		st.Vertices += len(f.Values)
		for _, v := range f.Values {
			if v.Guard != nil {
				st.ControlEdges++
			}
			switch v.Op {
			case ssa.OpCall:
				callee := g.Callee(v)
				st.CallEdges += min(len(v.Args), len(callee.Params))
				if callee.Ret != nil {
					st.ReturnEdges++
				}
			default:
				st.DataEdges += len(v.Args)
			}
		}
	}
	return st
}

// ParamIndex returns which parameter of its function a param vertex is, or
// -1 if v is not a parameter.
func ParamIndex(v *ssa.Value) int {
	if v.Op != ssa.OpParam {
		return -1
	}
	for i, p := range v.Fn.Params {
		if p == v {
			return i
		}
	}
	return -1
}

// TypeBits returns the bit-vector width used to model a value of type t:
// 1 for booleans, 8 and 16 for the narrow integer types, 32 otherwise.
func TypeBits(t lang.Type) int { return t.Bits() }
