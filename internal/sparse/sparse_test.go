package sparse_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/faultinject"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sparse"
)

func buildGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	p, err := driver.Compile(context.Background(), driver.Source{Name: "test", Text: src},
		driver.Options{Prelude: true})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph
}

func run(t *testing.T, src string, spec *sparse.Spec) []sparse.Candidate {
	t.Helper()
	g := buildGraph(t, src)
	return sparse.NewEngine(g).Run(spec)
}

func TestIntraproceduralFlow(t *testing.T) {
	cands := run(t, `
fun f() {
    var p: ptr = null;
    var q: ptr = p;
    deref(q);
}`, checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	if len(cands[0].Path) != 4 { // null const, q copy, ... deref
		// Path: const -> q -> deref is 3 steps plus possible copies; just
		// sanity-check the endpoints.
		t.Logf("path: %s", cands[0].Path)
	}
}

func TestNoFlowNoCandidate(t *testing.T) {
	cands := run(t, `
fun f(x: ptr) {
    var p: ptr = null;
    deref(x);
    load(x);
}`, checker.NullDeref())
	if len(cands) != 0 {
		t.Fatalf("got %d candidates, want 0: %v", len(cands), cands)
	}
}

func TestInterproceduralDownThenUp(t *testing.T) {
	// Null created in callee, returned to caller, dereferenced there.
	cands := run(t, `
fun mk(): ptr {
    var p: ptr = null;
    return p;
}
fun f() {
    var q: ptr = mk();
    deref(q);
}`, checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	sawReturn := false
	for _, st := range cands[0].Path {
		if st.Kind == pdg.StepReturn {
			sawReturn = true
		}
	}
	if !sawReturn {
		t.Error("path must cross a return edge")
	}
}

func TestInterproceduralParamFlow(t *testing.T) {
	// Null passed into a callee and dereferenced there.
	cands := run(t, `
fun use(p: ptr) {
    deref(p);
}
fun f() {
    var n: ptr = null;
    use(n);
}`, checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	sawCall := false
	for _, st := range cands[0].Path {
		if st.Kind == pdg.StepCall {
			sawCall = true
		}
	}
	if !sawCall {
		t.Error("path must cross a call edge")
	}
}

func TestCFLMatchingPreventsUnrealizablePaths(t *testing.T) {
	// id() is called from two sites; a null entering at site 1 must not
	// exit to site 2's receiver.
	cands := run(t, `
fun id(p: ptr): ptr {
    return p;
}
fun f(x: ptr) {
    var n: ptr = null;
    var a: ptr = id(n);
    var bv: ptr = id(x);
    load(a);
    deref(bv);
}`, checker.NullDeref())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1 (the load), got: %v", len(cands), cands)
	}
	if cands[0].Sink.Callee != "load" {
		t.Errorf("flow reached the wrong sink %s: unrealizable path accepted", cands[0].Sink.Callee)
	}
}

func TestUnbalancedAscent(t *testing.T) {
	// Null born in a callee must reach sinks in any caller (unbalanced
	// return), in all callers.
	cands := run(t, `
fun mk(): ptr {
    return null;
}
fun f1() {
    deref(mk());
}
fun f2() {
    load(mk());
}`, checker.NullDeref())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2", len(cands))
	}
}

func TestTaintThroughExtern(t *testing.T) {
	cands := run(t, `
fun f() {
    var s: ptr = gets();
    var h: ptr = fopen(s);
    deref(h);
}`, checker.PathTraversal())
	if len(cands) != 1 {
		t.Fatalf("got %d CWE-23 candidates, want 1", len(cands))
	}
	// Null checker must not taint through externs: fopen's result is not
	// null just because its argument was.
	nulls := run(t, `
fun f() {
    var p: ptr = null;
    var h: ptr = fopen(p);
    deref(h);
}`, checker.NullDeref())
	for _, c := range nulls {
		if c.Sink.Callee == "deref" {
			t.Error("null fact propagated through an extern call")
		}
	}
}

func TestTaintSpecs(t *testing.T) {
	src := `
fun relay(x: int): int {
    var y: int = x;
    return y;
}
fun f() {
    var secret: int = read_secret();
    var v: int = relay(secret);
    send(v);
    var inp: int = user_input();
    var w: int = relay(inp);
    send(w);
}`
	leak := run(t, src, checker.PrivateLeak())
	if len(leak) != 1 {
		t.Fatalf("CWE-402: got %d, want 1", len(leak))
	}
	// user_input -> send is not a CWE-402 flow (send is not a file sink
	// for CWE-23 either).
	trav := run(t, src, checker.PathTraversal())
	if len(trav) != 0 {
		t.Fatalf("CWE-23: got %d, want 0", len(trav))
	}
}

func TestSinkArgPositions(t *testing.T) {
	// Both arguments of sendmsg are sinks; two candidates expected for two
	// tainted arguments (the paper's Figure 6 scenario).
	cands := run(t, `
fun f() {
    var a: ptr = getpass();
    var bv: int = read_secret();
    var c: int = load(a);
    var d: int = bv;
    sendmsg(c, d);
}`, checker.PrivateLeak())
	if len(cands) != 2 {
		t.Fatalf("got %d candidates, want 2 (both sendmsg arguments)", len(cands))
	}
	seen := map[int]bool{}
	for _, c := range cands {
		seen[c.ArgIdx] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("expected both argument positions, got %v", seen)
	}
}

func TestLimitsRespected(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var p: ptr = null;
    deref(p);
    deref(p);
    deref(p);
}`)
	eng := sparse.NewEngine(g)
	eng.Limits.MaxPathsPerSource = 2
	cands := eng.Run(checker.NullDeref())
	if len(cands) > 2 {
		t.Fatalf("limit ignored: got %d candidates", len(cands))
	}
}

func TestSourcesDeterministic(t *testing.T) {
	g := buildGraph(t, `
fun f() {
    var p: ptr = null;
    var q: ptr = null;
    deref(p);
    deref(q);
}`)
	eng := sparse.NewEngine(g)
	srcs := eng.Sources(checker.NullDeref())
	if len(srcs) != 2 {
		t.Fatalf("sources: got %d, want 2", len(srcs))
	}
	for i := 0; i < 3; i++ {
		again := eng.Sources(checker.NullDeref())
		for j := range srcs {
			if srcs[j] != again[j] {
				t.Fatal("source enumeration not deterministic")
			}
		}
	}
}

// deepChainSrc builds a call chain of the given depth where every level
// calls the level below at two call sites — 2^depth syntactic paths from
// source to sink, the shape that stresses the visited-set (stackKey) dedup
// and the enumeration limits.
func deepChainSrc(depth int) string {
	var b strings.Builder
	b.WriteString("fun leaf(x: int): int { return x + 1; }\n")
	prev := "leaf"
	for i := 0; i < depth; i++ {
		cur := fmt.Sprintf("mid%d", i)
		fmt.Fprintf(&b, "fun %s(x: int): int {\n", cur)
		fmt.Fprintf(&b, "    var a: int = %s(x);\n    var b2: int = %s(a);\n", prev, prev)
		b.WriteString("    return a + b2;\n}\n")
		prev = cur
	}
	fmt.Fprintf(&b, "fun root() {\n    var n: int = user_input();\n")
	fmt.Fprintf(&b, "    var r: int = %s(n);\n    send(r);\n}\n", prev)
	return b.String()
}

func TestDeepChainDedupStableCounts(t *testing.T) {
	g := buildGraph(t, deepChainSrc(8))
	spec := checker.PrivateLeak()
	spec.IsSource = sparse.ExternCallSource("user_input")

	// Defaults cap the blow-up at MaxPathsPerSource and repeated runs are
	// deterministic: same count, same paths.
	var first []string
	for trial := 0; trial < 3; trial++ {
		cands := sparse.NewEngine(g).Run(spec)
		if len(cands) != 8 {
			t.Fatalf("trial %d: got %d candidates, want MaxPathsPerSource=8", trial, len(cands))
		}
		var paths []string
		for _, c := range cands {
			paths = append(paths, c.Path.String())
		}
		if trial == 0 {
			first = paths
			continue
		}
		for i := range paths {
			if paths[i] != first[i] {
				t.Fatalf("trial %d: path %d differs:\n  %s\n  %s", trial, i, first[i], paths[i])
			}
		}
	}

	// An explicit zero-equivalent limit set behaves exactly like defaults.
	e := sparse.NewEngine(g)
	e.Limits = sparse.Limits{MaxPathsPerSource: 8, MaxPathLen: 512,
		MaxStepsPerSource: 200_000, MaxCallDepth: 64}
	if got := len(e.Run(spec)); got != 8 {
		t.Errorf("explicit defaults: got %d candidates, want 8", got)
	}

	// Tighter per-source path budget truncates to exactly that budget.
	e2 := sparse.NewEngine(g)
	e2.Limits = sparse.Limits{MaxPathsPerSource: 3}
	if got := len(e2.Run(spec)); got != 3 {
		t.Errorf("MaxPathsPerSource=3: got %d candidates", got)
	}

	// A call-depth cap below the chain depth finds no complete flow, but
	// enumeration still terminates cleanly.
	e3 := sparse.NewEngine(g)
	e3.Limits = sparse.Limits{MaxCallDepth: 3}
	if got := len(e3.Run(spec)); got != 0 {
		t.Errorf("MaxCallDepth=3: got %d candidates, want 0", got)
	}
}

// TestWorkersMatchSequential: parallel per-source enumeration merges to
// exactly the sequential candidate list (and pruned count), so workers
// never change the analysis result.
func TestWorkersMatchSequential(t *testing.T) {
	src, _, _ := progen.Subjects[2].Build(0.05)
	p, err := driver.Compile(context.Background(), driver.Source{Name: "subject", Text: src}, driver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := p.Oracle()
	for _, spec := range checker.All() {
		seq := sparse.NewEngine(p.Graph)
		seq.Oracle = oracle
		want := seq.Run(spec)

		par := sparse.NewEngine(p.Graph)
		par.Oracle = oracle
		par.Workers = 8
		got := par.RunContext(context.Background(), spec)

		if len(got) != len(want) {
			t.Fatalf("%s: candidate count: %d vs %d", spec.Name, len(got), len(want))
		}
		for i := range want {
			if got[i].Source != want[i].Source || got[i].Sink != want[i].Sink ||
				got[i].ArgIdx != want[i].ArgIdx || len(got[i].Path) != len(want[i].Path) {
				t.Errorf("%s: candidate %d differs", spec.Name, i)
			}
		}
		if par.Pruned != seq.Pruned {
			t.Errorf("%s: pruned count: %d vs %d", spec.Name, par.Pruned, seq.Pruned)
		}
	}
}

// TestRunContextCancelled: an already-cancelled context yields no
// candidates, promptly, with and without workers.
func TestRunContextCancelled(t *testing.T) {
	src, _, _ := progen.Subjects[2].Build(0.05)
	p, err := driver.Compile(context.Background(), driver.Source{Name: "subject", Text: src}, driver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		e := sparse.NewEngine(p.Graph)
		e.Workers = workers
		start := time.Now()
		cands := e.RunContext(ctx, checker.NullDeref())
		if len(cands) != 0 {
			t.Errorf("workers=%d: got %d candidates from a cancelled context", workers, len(cands))
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("workers=%d: cancelled enumeration ran %v", workers, elapsed)
		}
	}
}

// TestEnumPanicContained: a forced panic in one source's DFS loses that
// source's candidates but never the run, and the surviving candidate
// list is byte-identical for any worker count.
func TestEnumPanicContained(t *testing.T) {
	src := `
fun f(a: int) {
    var p: ptr = null;
    if (a > 1) {
        deref(p);
    }
    var q: ptr = null;
    if (a > 2) {
        deref(q);
    }
}`
	g := buildGraph(t, src)
	all := sparse.NewEngine(g).Run(checker.NullDeref())
	if len(all) != 2 {
		t.Fatalf("got %d candidates, want 2", len(all))
	}
	target := sparse.SourceLabel(checker.NullDeref(), all[0].Source)

	if err := faultinject.ArmSpec("panic.enum:" + target); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Reset()
	var base []sparse.Candidate
	for _, workers := range []int{1, 8} {
		e := sparse.NewEngine(g)
		e.Workers = workers
		cands := e.RunContext(context.Background(), checker.NullDeref())
		if len(e.Failures) != 1 {
			t.Fatalf("workers=%d: %d failures, want 1", workers, len(e.Failures))
		}
		f := e.Failures[0]
		if f.Unit != target || f.Stage != "enum" {
			t.Errorf("workers=%d: failure names %q/%q, want %q/enum", workers, f.Unit, f.Stage, target)
		}
		if len(cands) != 1 {
			t.Fatalf("workers=%d: %d surviving candidates, want 1", workers, len(cands))
		}
		if base == nil {
			base = cands
		} else if cands[0].Sink != base[0].Sink || cands[0].Source != base[0].Source {
			t.Errorf("workers=%d: surviving candidate differs from sequential run", workers)
		}
	}
}
