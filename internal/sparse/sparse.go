// Package sparse implements the sparse analysis of Algorithms 1, 2 and 5:
// data-flow facts propagate along data-dependence edges of the program
// dependence graph, skipping control flow entirely (temporal sparsity), and
// only the facts a statement uses are tracked (spatial sparsity).
//
// The engine enumerates the set Π of source-to-sink data-dependence paths
// with CFL call/return matching for context-sensitivity. Path feasibility
// is decided afterwards by whichever solver design the caller plugs in —
// the conventional one computes and caches explicit path conditions, the
// fused one works on the dependence graph directly. The enumeration itself
// is identical in both designs, which is the paper's point (3) in §3.3.
package sparse

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fusion/internal/failure"
	"fusion/internal/faultinject"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/ssa"
)

// Spec defines a source/sink value-flow query, e.g. "null pointers reaching
// dereferences" or a taint problem.
type Spec struct {
	Name string
	// IsSource reports whether a vertex introduces the tracked fact.
	IsSource func(v *ssa.Value) bool
	// SinkCalls maps extern function names to the argument positions that
	// must not receive the tracked value; nil positions mean any argument.
	SinkCalls map[string][]int
	// TaintThroughExtern propagates the fact through extern calls from
	// arguments to the receiver (true for taint, false for null tracking).
	TaintThroughExtern bool
	// SinkDivisors treats the divisor operand of every division and
	// remainder as a sink; the candidate then carries a value constraint
	// (divisor = 0) that the engines assert when checking feasibility —
	// the division-by-zero checker (CWE-369).
	SinkDivisors bool
	// SinkBounds maps extern function names to an index-sink description:
	// the candidate carries an out-of-bounds constraint (index outside
	// [0, Size)) — the out-of-bounds access checker (CWE-125).
	SinkBounds map[string]IndexSink
}

// IndexSink describes a bounds-checked extern argument: the Arg-th
// argument indexes a buffer of Size elements — or, when DynBound is set,
// a buffer whose length is the BoundArg-th argument of the same call.
type IndexSink struct {
	Arg      int
	Size     uint32
	DynBound bool
	BoundArg int
}

// Candidate is one source-to-sink flow discovered by the propagation: the
// data-dependence path π whose feasibility determines whether the bug is
// real.
type Candidate struct {
	Spec   *Spec
	Source *ssa.Value
	Sink   *ssa.Value // the sink vertex (an extern call, or a division)
	ArgIdx int        // which sink argument receives the value
	Path   pdg.Path
	// ConstrainStep, when >= 0, is the path index the sink constrains:
	// with ConstrainKind pdg.ConstraintEq its value must equal
	// ConstrainValue for the bug to manifest (e.g. a zero divisor); with
	// pdg.ConstraintOutOfBounds it must fall outside [0, ConstrainBound);
	// with pdg.ConstraintOutOfBoundsDyn the step is the sink call itself
	// and its ConstrainArg argument must fall outside
	// [0, ConstrainBoundArg argument).
	ConstrainStep     int
	ConstrainKind     pdg.ConstraintKind
	ConstrainValue    uint32
	ConstrainBound    uint32
	ConstrainArg      int
	ConstrainBoundArg int
}

// Constraints returns the candidate's value constraints, referencing path
// index pathIdx.
func (c Candidate) Constraints(pathIdx int) []pdg.ValueConstraint {
	if c.ConstrainStep < 0 {
		return nil
	}
	return []pdg.ValueConstraint{{
		Path: pathIdx, Step: c.ConstrainStep, Kind: c.ConstrainKind,
		Value: c.ConstrainValue, Bound: c.ConstrainBound,
		Arg: c.ConstrainArg, BoundArg: c.ConstrainBoundArg,
	}}
}

// ApplyConstraint records the candidate's value constraint (if any) on a
// slice computed over its path.
func (c Candidate) ApplyConstraint(sl *pdg.Slice, pathIdx int) {
	sl.Constraints = append(sl.Constraints, c.Constraints(pathIdx)...)
}

// Limits bound the path enumeration. Zero fields take defaults.
type Limits struct {
	MaxPathsPerSource int // default 8
	MaxPathLen        int // default 512
	MaxStepsPerSource int // default 200k
	MaxCallDepth      int // default 64
}

func (l Limits) withDefaults() Limits {
	if l.MaxPathsPerSource == 0 {
		l.MaxPathsPerSource = 8
	}
	if l.MaxPathLen == 0 {
		l.MaxPathLen = 512
	}
	if l.MaxStepsPerSource == 0 {
		l.MaxStepsPerSource = 200_000
	}
	if l.MaxCallDepth == 0 {
		l.MaxCallDepth = 64
	}
	return l
}

// Engine enumerates candidate flows on a program dependence graph.
type Engine struct {
	G      *pdg.Graph
	Limits Limits
	// Oracle, when set, vetoes candidates that are already proven
	// infeasible (e.g. by the absint invariants); pruned candidates still
	// count against MaxPathsPerSource so enumeration order and the
	// surviving report set are unchanged. Must be safe for concurrent use
	// when Workers > 1 (the absint oracle is: the analysis is read-only
	// after construction).
	Oracle func(Candidate) bool
	// Pruned counts candidates the oracle discarded.
	Pruned int
	// Workers fans per-source enumeration out on a worker pool; results
	// are merged in source order, so the candidate list is byte-identical
	// to a sequential run. 0 or 1 means sequential.
	Workers int
	// Failures records contained per-source enumeration crashes, in
	// source order: a panicking search loses that source's candidates but
	// never the run. Appended to by RunContext.
	Failures []*failure.UnitFailure
}

// NewEngine returns an engine with default limits.
func NewEngine(g *pdg.Graph) *Engine { return &Engine{G: g} }

// Sources returns the spec's source vertices in deterministic order.
func (e *Engine) Sources(spec *Spec) []*ssa.Value {
	var out []*ssa.Value
	for _, f := range e.G.Prog.Order {
		for _, v := range f.Values {
			if spec.IsSource(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

// Run enumerates candidates for a spec across the whole program.
func (e *Engine) Run(spec *Spec) []Candidate {
	return e.RunContext(context.Background(), spec)
}

// RunContext enumerates candidates under ctx: cancellation stops the
// traversal cooperatively and returns the candidates found so far. With
// Workers > 1 the per-source enumerations run concurrently.
func (e *Engine) RunContext(ctx context.Context, spec *Spec) []Candidate {
	srcs := e.Sources(spec)
	workers := e.Workers
	if workers > len(srcs) {
		workers = len(srcs)
	}
	if workers <= 1 {
		var out []Candidate
		for _, src := range srcs {
			if ctx.Err() != nil {
				break
			}
			cands, pruned, fail := e.containedFromSource(ctx, spec, src)
			e.Pruned += pruned
			if fail != nil {
				e.Failures = append(e.Failures, fail)
			}
			out = append(out, cands...)
		}
		return out
	}
	type result struct {
		cands  []Candidate
		pruned int
		fail   *failure.UnitFailure
	}
	results := make([]result, len(srcs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(srcs) {
					return
				}
				if ctx.Err() != nil {
					continue // drain remaining indexes without searching
				}
				cands, pruned, fail := e.containedFromSource(ctx, spec, srcs[i])
				results[i] = result{cands, pruned, fail}
			}
		}()
	}
	wg.Wait()
	// Stable merge in source order; the pruned counts and failures fold
	// in afterwards so neither needs synchronization.
	var out []Candidate
	for _, r := range results {
		e.Pruned += r.pruned
		if r.fail != nil {
			e.Failures = append(e.Failures, r.fail)
		}
		out = append(out, r.cands...)
	}
	return out
}

// SourceLabel names one enumeration unit (a spec/source pair) for failure
// reports and fault-injection matching.
func SourceLabel(spec *Spec, src *ssa.Value) string {
	return fmt.Sprintf("%s source %d:%d", spec.Name, src.Pos.Line, src.Pos.Col)
}

// containedFromSource runs one per-source search under recover: a panic
// anywhere in the traversal is returned as a *failure.UnitFailure and
// only that source's candidates are lost.
func (e *Engine) containedFromSource(ctx context.Context, spec *Spec, src *ssa.Value) (cands []Candidate, pruned int, fail *failure.UnitFailure) {
	unit := SourceLabel(spec, src)
	defer func() {
		if v := recover(); v != nil {
			cands, pruned = nil, 0
			fail = failure.FromPanicAt(unit, "enum", v, "containedFromSource")
		}
	}()
	faultinject.Fire("panic.enum", unit)
	cands, pruned = e.fromSource(ctx, spec, src)
	return cands, pruned, nil
}

// stackKey renders a call-string for the visited set.
func stackKey(stack []int) string {
	// Compact encoding; stacks are short in normalized programs.
	b := make([]byte, 0, len(stack)*3)
	for _, s := range stack {
		b = append(b, byte(s), byte(s>>8), byte(s>>16))
	}
	return string(b)
}

type visitKey struct {
	v     *ssa.Value
	stack string
}

// FromSource enumerates candidate flows starting at one source vertex via
// depth-first traversal of the data-dependence edges, matching call and
// return labels with an explicit stack (CFL-reachability).
func (e *Engine) FromSource(spec *Spec, src *ssa.Value) []Candidate {
	out, pruned := e.fromSource(context.Background(), spec, src)
	e.Pruned += pruned
	return out
}

// fromSource is FromSource without shared engine state: it returns the
// pruned count instead of bumping e.Pruned, so concurrent per-source
// searches need no synchronization. Cancelling ctx stops the traversal
// at the next polling point.
func (e *Engine) fromSource(ctx context.Context, spec *Spec, src *ssa.Value) ([]Candidate, int) {
	lim := e.Limits.withDefaults()
	var out []Candidate
	steps := 0
	pruned := 0
	visited := map[visitKey]bool{}
	// found counts emitted plus oracle-pruned candidates: pruning must not
	// change which paths the enumeration explores, only drop proven-safe
	// results.
	found := func() int { return len(out) + pruned }
	emit := func(c Candidate) {
		if e.Oracle != nil && e.Oracle(c) {
			pruned++
			return
		}
		out = append(out, c)
	}

	var dfs func(v *ssa.Value, path pdg.Path, stack []int)
	dfs = func(v *ssa.Value, path pdg.Path, stack []int) {
		if found() >= lim.MaxPathsPerSource || len(path) >= lim.MaxPathLen {
			return
		}
		steps++
		if steps > lim.MaxStepsPerSource {
			return
		}
		if steps&1023 == 0 && ctx.Err() != nil {
			// Cancelled: burn the step budget so every pending frame of
			// this source bails out immediately.
			steps = lim.MaxStepsPerSource + 1
			return
		}
		key := visitKey{v: v, stack: stackKey(stack)}
		if visited[key] {
			return
		}
		visited[key] = true
		defer delete(visited, key) // path-local cycle guard

		// Successor edges, deterministically ordered.
		uses := append([]*ssa.Value(nil), v.Uses...)
		sort.Slice(uses, func(i, j int) bool { return uses[i].ID < uses[j].ID })

		for _, u := range uses {
			switch u.Op {
			case ssa.OpCall:
				callee := e.G.Callee(u)
				for idx, a := range u.Args {
					if a != v || idx >= len(callee.Params) {
						continue
					}
					if len(stack) >= lim.MaxCallDepth {
						continue
					}
					np := path.Extend(callee.Params[idx], pdg.StepCall, u.Site)
					pushed := make([]int, len(stack)+1)
					copy(pushed, stack)
					pushed[len(stack)] = u.Site
					dfs(callee.Params[idx], np, pushed)
				}
			case ssa.OpExtern:
				// Sink check: the tracked value feeds a sink argument.
				if idxs, ok := spec.SinkCalls[u.Callee]; ok {
					for ai, a := range u.Args {
						if a != v {
							continue
						}
						if len(idxs) > 0 && !containsInt(idxs, ai) {
							continue
						}
						emit(Candidate{
							Spec: spec, Source: src, Sink: u, ArgIdx: ai,
							Path:          path.Extend(u, pdg.StepIntra, 0),
							ConstrainStep: -1,
						})
						if found() >= lim.MaxPathsPerSource {
							return
						}
					}
				}
				if is, ok := spec.SinkBounds[u.Callee]; ok {
					for ai, a := range u.Args {
						if a != v || ai != is.Arg {
							continue
						}
						np := path.Extend(u, pdg.StepIntra, 0)
						cand := Candidate{
							Spec: spec, Source: src, Sink: u, ArgIdx: ai,
							Path: np,
							// The index is the second-to-last step; the bug
							// manifests when it escapes [0, Size).
							ConstrainStep:  len(np) - 2,
							ConstrainKind:  pdg.ConstraintOutOfBounds,
							ConstrainBound: is.Size,
						}
						if is.DynBound {
							// Dynamic bound: constrain the sink call itself
							// (the last step); its BoundArg argument is the
							// buffer length.
							cand.ConstrainStep = len(np) - 1
							cand.ConstrainKind = pdg.ConstraintOutOfBoundsDyn
							cand.ConstrainBound = 0
							cand.ConstrainArg = is.Arg
							cand.ConstrainBoundArg = is.BoundArg
						}
						emit(cand)
						if found() >= lim.MaxPathsPerSource {
							return
						}
					}
				}
				if spec.TaintThroughExtern {
					dfs(u, path.Extend(u, pdg.StepIntra, 0), stack)
				}
			case ssa.OpBranch:
				// Facts do not flow through control decisions.
			default:
				if spec.SinkDivisors && u.Op == ssa.OpBin &&
					(u.BinOp == lang.OpDiv || u.BinOp == lang.OpRem) && u.Args[1] == v {
					np := path.Extend(u, pdg.StepIntra, 0)
					emit(Candidate{
						Spec: spec, Source: src, Sink: u, ArgIdx: 1,
						Path: np,
						// The divisor is the second-to-last step; it must
						// be zero for the division to trap.
						ConstrainStep:  len(np) - 2,
						ConstrainValue: 0,
					})
					if found() >= lim.MaxPathsPerSource {
						return
					}
				}
				dfs(u, path.Extend(u, pdg.StepIntra, 0), stack)
			}
		}

		// Return edges: ascend to the callers of this function.
		if v == v.Fn.Ret {
			callers := append([]*ssa.Value(nil), e.G.Callers[v.Fn.Name]...)
			sort.Slice(callers, func(i, j int) bool { return callers[i].Site < callers[j].Site })
			for _, c := range callers {
				if len(stack) > 0 {
					// Matched return: must pair with the call we entered
					// through.
					if stack[len(stack)-1] != c.Site {
						continue
					}
					np := path.Extend(c, pdg.StepReturn, c.Site)
					popped := make([]int, len(stack)-1)
					copy(popped, stack)
					dfs(c, np, popped)
				} else {
					// Unbalanced ascent into an arbitrary caller.
					np := path.Extend(c, pdg.StepReturn, c.Site)
					dfs(c, np, stack)
				}
			}
		}
	}

	dfs(src, pdg.Path{{V: src, Kind: pdg.StepStart}}, nil)
	return out, pruned
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// NullSource reports pointer-typed null constants, the sources of the
// null-exception checker.
func NullSource(v *ssa.Value) bool {
	return v.Op == ssa.OpConst && v.Type == lang.TypePtr && v.Const == 0
}

// ExternCallSource returns an IsSource predicate matching calls to any of
// the named extern functions (taint sources like gets or getpass).
func ExternCallSource(names ...string) func(v *ssa.Value) bool {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return func(v *ssa.Value) bool {
		return v.Op == ssa.OpExtern && set[v.Callee]
	}
}
