package sparse_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
)

// flowTriples renders candidates as comparable (source, sink, arg) keys.
func flowTriples(cands []sparse.Candidate) []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range cands {
		k := fmt.Sprintf("%s/%s -> %s/%s arg%d",
			c.Source.Fn.Name, c.Source.Pos, c.Sink.Fn.Name, c.Sink.Pos, c.ArgIdx)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func summaryGraph(t *testing.T, src string) *pdg.Graph {
	t.Helper()
	return buildGraph(t, src)
}

// TestSummaryEngineAgreesWithDFS: on hand-written programs and generated
// subjects, the summary-based enumeration must discover exactly the same
// flows as the DFS engine.
func TestSummaryEngineAgreesWithDFS(t *testing.T) {
	sources := []string{
		`
fun id(p: ptr): ptr { return p; }
fun use(p: ptr) { deref(p); }
fun f(x: ptr) {
    var n: ptr = null;
    use(id(n));
    load(id(x));
    deref(n);
}`,
		`
fun mk(): ptr { return null; }
fun f1() { deref(mk()); }
fun f2() { load(mk()); }`,
		`
fun relay(x: int): int { return x; }
fun f(a: int) {
    var s: int = read_secret();
    var v: int = relay(relay(s));
    if (a > 0) {
        send(v);
    }
    sendmsg(v, a);
}`,
	}
	for i, src := range sources {
		g := summaryGraph(t, src)
		for _, spec := range checker.All() {
			dfs := flowTriples(sparse.NewEngine(g).Run(spec))
			sum := flowTriples(sparse.NewSummaryEngine(g).Run(spec))
			if len(dfs) != len(sum) {
				t.Fatalf("case %d/%s: DFS %d flows, summary %d flows\nDFS: %v\nSUM: %v",
					i, spec.Name, len(dfs), len(sum), dfs, sum)
			}
			for j := range dfs {
				if dfs[j] != sum[j] {
					t.Errorf("case %d/%s: flow %d differs: %s vs %s", i, spec.Name, j, dfs[j], sum[j])
				}
			}
		}
	}
}

func TestSummaryEngineOnGeneratedSubjects(t *testing.T) {
	for _, idx := range []int{3, 9} {
		src, _, _ := progen.Subjects[idx].Build(0.05)
		g := summaryGraph(t, src[len(checker.Prelude):]) // buildGraph re-adds the prelude
		for _, spec := range checker.All() {
			dfs := flowTriples(sparse.NewEngine(g).Run(spec))
			sum := flowTriples(sparse.NewSummaryEngine(g).Run(spec))
			if fmt.Sprint(dfs) != fmt.Sprint(sum) {
				t.Errorf("%s/%s: flow sets differ\nDFS: %v\nSUM: %v",
					progen.Subjects[idx].Name, spec.Name, dfs, sum)
			}
		}
	}
}

// TestSummaryPathsAreWellFormed: spliced paths must carry CFL-consistent
// labels — every matched return pops the call it entered through — and be
// accepted by the feasibility engines.
func TestSummaryPathsAreWellFormed(t *testing.T) {
	g := summaryGraph(t, `
fun dig(p: ptr): ptr { return p; }
fun f(a: int) {
    var n: ptr = null;
    var q: ptr = dig(dig(n));
    if (a > 1) {
        deref(q);
    }
}`)
	cands := sparse.NewSummaryEngine(g).Run(checker.NullDeref())
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, c := range cands {
		var stack []int
		for _, st := range c.Path {
			switch st.Kind {
			case pdg.StepCall:
				stack = append(stack, st.Site)
			case pdg.StepReturn:
				if len(stack) > 0 {
					if stack[len(stack)-1] != st.Site {
						t.Fatalf("mismatched return in %s", c.Path)
					}
					stack = stack[:len(stack)-1]
				}
			}
		}
		// The feasibility engine must accept summary-produced paths.
		fus := engines.NewFusion().Check(context.Background(), g, []sparse.Candidate{c})
		if fus[0].Status.String() == "unknown" {
			t.Errorf("engine could not decide summary path %s", c.Path)
		}
	}
}

// TestSummaryDivisorConstraints: the constraint offset must survive
// splicing across calls.
func TestSummaryDivisorConstraints(t *testing.T) {
	g := summaryGraph(t, `
fun divide(d: int): int {
    var x: int = 100 / d;
    return x;
}
fun f() {
    var n: int = user_input();
    var r: int = divide(n * 2 + 1);
    send(r);
}`)
	cands := sparse.NewSummaryEngine(g).Run(checker.DivByZero())
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	c := cands[0]
	if c.ConstrainStep < 0 || c.ConstrainStep >= len(c.Path) {
		t.Fatalf("bad constraint step %d for path %s", c.ConstrainStep, c.Path)
	}
	if c.Path[c.ConstrainStep].V.Op != ssa.OpParam {
		// The constrained vertex is the divisor value (the callee param).
		t.Errorf("constrained vertex is %s, want the divisor", c.Path[c.ConstrainStep].V.Op)
	}
	// The odd divisor makes the flow infeasible.
	fus := engines.NewFusion().Check(context.Background(), g, cands)
	if fus[0].Status.String() != "unsat" {
		t.Errorf("odd divisor through a call: got %s, want unsat", fus[0].Status)
	}
}

// TestSummaryDynBoundConstraints: dynamically-bounded index sinks
// (buf_read_n) must carry the same ConstraintOutOfBoundsDyn payload under
// summary enumeration as under the DFS engine — the flow-level agreement
// test cannot see constraint fields, and a missing payload turns the
// query into "escapes [0, 0)", a guaranteed false positive.
func TestSummaryDynBoundConstraints(t *testing.T) {
	g := summaryGraph(t, `
fun f() {
    var i: int = user_input();
    var m: int = user_input();
    if (0 <= i && i < m) {
        var q: int = buf_read_n(i, m);
        send(q);
    }
}`)
	spec := checker.IndexOOB()
	cands := sparse.NewSummaryEngine(g).Run(spec)
	if len(cands) != 1 {
		t.Fatalf("got %d candidates, want 1", len(cands))
	}
	c := cands[0]
	if c.ConstrainKind != pdg.ConstraintOutOfBoundsDyn {
		t.Fatalf("constraint kind = %v, want ConstraintOutOfBoundsDyn", c.ConstrainKind)
	}
	if c.ConstrainStep != len(c.Path)-1 {
		t.Errorf("constraint step = %d, want the sink step %d", c.ConstrainStep, len(c.Path)-1)
	}
	if c.ConstrainArg != 0 || c.ConstrainBoundArg != 1 {
		t.Errorf("constraint args = (%d, %d), want (0, 1)", c.ConstrainArg, c.ConstrainBoundArg)
	}
	// The guard proves 0 <= i < m, so the query must be refuted.
	fus := engines.NewFusion().Check(context.Background(), g, cands)
	if fus[0].Status.String() != "unsat" {
		t.Errorf("fully guarded dynamic-bound access: got %s, want unsat", fus[0].Status)
	}
	dfs := sparse.NewEngine(g).Run(spec)
	if len(dfs) != 1 {
		t.Fatalf("DFS: got %d candidates, want 1", len(dfs))
	}
	d := dfs[0]
	if d.ConstrainKind != c.ConstrainKind || d.ConstrainArg != c.ConstrainArg ||
		d.ConstrainBoundArg != c.ConstrainBoundArg {
		t.Errorf("DFS/summary constraint payloads differ: %+v vs %+v", d, c)
	}
}
