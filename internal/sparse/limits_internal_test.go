package sparse

import "testing"

func TestLimitsWithDefaults(t *testing.T) {
	d := Limits{}.withDefaults()
	if d.MaxPathsPerSource != 8 || d.MaxPathLen != 512 ||
		d.MaxStepsPerSource != 200_000 || d.MaxCallDepth != 64 {
		t.Errorf("zero limits got defaults %+v", d)
	}
	// Explicit values survive untouched, including partial overrides.
	l := Limits{MaxPathsPerSource: 3, MaxCallDepth: 7}.withDefaults()
	if l.MaxPathsPerSource != 3 || l.MaxCallDepth != 7 {
		t.Errorf("explicit limits overwritten: %+v", l)
	}
	if l.MaxPathLen != 512 || l.MaxStepsPerSource != 200_000 {
		t.Errorf("unset fields not defaulted: %+v", l)
	}
	// withDefaults is a value method: the receiver is unchanged.
	z := Limits{}
	z.withDefaults()
	if z.MaxPathsPerSource != 0 {
		t.Error("withDefaults mutated its receiver")
	}
}

func TestStackKeyDistinct(t *testing.T) {
	stacks := [][]int{
		{},
		{0},
		{1},
		{1, 2},
		{2, 1},
		{513}, // 0x0201: must differ from {1, 2} despite shared bytes
		{1, 2, 3},
		{65536},
		{1 << 23},
	}
	seen := map[string][]int{}
	for _, s := range stacks {
		k := stackKey(s)
		if prev, dup := seen[k]; dup {
			t.Errorf("stackKey collision: %v and %v -> %q", prev, s, k)
		}
		seen[k] = s
		if k != stackKey(s) {
			t.Errorf("stackKey not deterministic for %v", s)
		}
	}
}
