package sparse

import (
	"context"
	"sort"

	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/ssa"
)

// SummaryEngine is the summary-based variant of the sparse propagation —
// Algorithm 2's S_t: to avoid repetitively analyzing a function, the flow
// segments from each of its vertices to its exits (return value and sinks)
// are computed once and composed at call sites. Without the fused design
// the conventional analysis would also attach a path condition φ_π to each
// segment; here summaries carry only the paths (Algorithm 5's point: the
// analysis side computes no conditions).
//
// On recursion-free programs it enumerates the same (source, sink,
// argument) flows as the DFS Engine, typically visiting far fewer states
// on wide call graphs; the tests check the agreement and the benchmarks
// measure the difference.
type SummaryEngine struct {
	G      *pdg.Graph
	Limits Limits

	spec *Spec
	lim  Limits
	ctx  context.Context
	memo map[*ssa.Value]*valueSummary
}

// NewSummaryEngine returns a summary-based enumerator with default limits.
func NewSummaryEngine(g *pdg.Graph) *SummaryEngine { return &SummaryEngine{G: g} }

// sinkFlow is a flow segment ending at a sink.
type sinkFlow struct {
	sink   *ssa.Value
	argIdx int
	seg    pdg.Path
	// constrainFromEnd > 0 constrains seg[len(seg)-constrainFromEnd]:
	// equality to constrainValue (the divisor-zero constraint) or, with
	// constrainKind pdg.ConstraintOutOfBounds, escape from
	// [0, constrainBound) (the index-sink constraint).
	constrainFromEnd  int
	constrainKind     pdg.ConstraintKind
	constrainValue    uint32
	constrainBound    uint32
	constrainArg      int
	constrainBoundArg int
}

// withSeg returns the flow re-targeted onto a spliced segment, keeping the
// sink and constraint payload.
func (sf sinkFlow) withSeg(seg pdg.Path) sinkFlow {
	sf.seg = seg
	return sf
}

// valueSummary lists where a vertex's value flows within (and below) its
// function: segments to the function's return and segments to sinks.
// Every segment starts at the vertex itself (StepStart).
type valueSummary struct {
	toRet   []pdg.Path
	toSinks []sinkFlow
}

// maxSegs bounds the segments kept per vertex and exit kind.
func (e *SummaryEngine) maxSegs() int {
	n := e.lim.MaxPathsPerSource
	if n <= 0 {
		n = 8
	}
	return n
}

// Run enumerates candidates for a spec across the whole program.
func (e *SummaryEngine) Run(spec *Spec) []Candidate {
	return e.RunContext(context.Background(), spec)
}

// RunContext enumerates candidates under ctx; cancellation stops the
// summarization cooperatively and returns the candidates found so far.
func (e *SummaryEngine) RunContext(ctx context.Context, spec *Spec) []Candidate {
	e.spec = spec
	e.lim = e.Limits.withDefaults()
	e.ctx = ctx
	e.memo = map[*ssa.Value]*valueSummary{}

	var out []Candidate
	for _, f := range e.G.Prog.Order {
		for _, v := range f.Values {
			if !spec.IsSource(v) {
				continue
			}
			if ctx.Err() != nil {
				return out
			}
			sum := e.summarize(v)
			// Local and descending flows.
			for _, sf := range sum.toSinks {
				out = append(out, e.candidate(v, sf))
			}
			// Flows escaping through the return value ascend into every
			// caller, transitively (the unbalanced prefix of the path).
			out = append(out, e.ascend(v, f, sum.toRet, 0)...)
		}
	}
	return out
}

func (e *SummaryEngine) candidate(src *ssa.Value, sf sinkFlow) Candidate {
	c := Candidate{
		Spec: e.spec, Source: src, Sink: sf.sink, ArgIdx: sf.argIdx,
		Path: sf.seg, ConstrainStep: -1,
	}
	if sf.constrainFromEnd > 0 {
		c.ConstrainStep = len(sf.seg) - sf.constrainFromEnd
		c.ConstrainKind = sf.constrainKind
		c.ConstrainValue = sf.constrainValue
		c.ConstrainBound = sf.constrainBound
		c.ConstrainArg = sf.constrainArg
		c.ConstrainBoundArg = sf.constrainBoundArg
	}
	return c
}

// ascend continues return-escaping segments into the callers of f.
func (e *SummaryEngine) ascend(src *ssa.Value, f *ssa.Function, segs []pdg.Path, depth int) []Candidate {
	if len(segs) == 0 || depth > 64 {
		return nil
	}
	var out []Candidate
	callers := append([]*ssa.Value(nil), e.G.Callers[f.Name]...)
	sort.Slice(callers, func(i, j int) bool { return callers[i].Site < callers[j].Site })
	for _, c := range callers {
		csum := e.summarize(c)
		var nextUp []pdg.Path
		for _, seg := range segs {
			// Splice: ...ret -)site-> call vertex, then continue with the
			// call vertex's own summary.
			for _, sf := range csum.toSinks {
				out = append(out, e.candidate(src, sf.withSeg(spliceReturn(seg, c, sf.seg))))
				if len(out) >= e.maxSegs()*4 {
					return out
				}
			}
			for _, rseg := range csum.toRet {
				if len(nextUp) < e.maxSegs() {
					nextUp = append(nextUp, spliceReturn(seg, c, rseg))
				}
			}
		}
		out = append(out, e.ascend(src, c.Fn, nextUp, depth+1)...)
	}
	return out
}

// spliceReturn joins a segment ending at a callee's return with a
// continuation starting at the receiving call vertex.
func spliceReturn(seg pdg.Path, call *ssa.Value, cont pdg.Path) pdg.Path {
	out := make(pdg.Path, 0, len(seg)+len(cont))
	out = append(out, seg...)
	out = append(out, pdg.Step{V: call, Kind: pdg.StepReturn, Site: call.Site})
	out = append(out, cont[1:]...) // cont[0] is the call vertex itself
	return out
}

// spliceCall joins a prefix ending at an actual argument with a callee-side
// segment starting at the formal parameter.
func spliceCall(prefix pdg.Path, site int, calleeSeg pdg.Path) pdg.Path {
	out := make(pdg.Path, 0, len(prefix)+len(calleeSeg))
	out = append(out, prefix...)
	out = append(out, pdg.Step{V: calleeSeg[0].V, Kind: pdg.StepCall, Site: site})
	out = append(out, calleeSeg[1:]...)
	return out
}

// summarize computes (memoized) where v's value flows. The use graph and
// the call graph are acyclic after normalization, so plain recursion
// terminates.
func (e *SummaryEngine) summarize(v *ssa.Value) *valueSummary {
	if s, ok := e.memo[v]; ok {
		return s
	}
	s := &valueSummary{}
	if e.ctx != nil && e.ctx.Err() != nil {
		return s // cancelled: empty, unmemoized partial summary
	}
	e.memo[v] = s // placed before recursion as a (harmless) cycle guard
	cap := e.maxSegs()

	self := pdg.Path{{V: v, Kind: pdg.StepStart}}
	if v == v.Fn.Ret {
		s.toRet = append(s.toRet, self)
	}

	uses := append([]*ssa.Value(nil), v.Uses...)
	sort.Slice(uses, func(i, j int) bool { return uses[i].ID < uses[j].ID })

	appendCont := func(prefixToUse func(cont pdg.Path) pdg.Path, usum *valueSummary) {
		for _, seg := range usum.toRet {
			if len(s.toRet) < cap {
				s.toRet = append(s.toRet, prefixToUse(seg))
			}
		}
		for _, sf := range usum.toSinks {
			if len(s.toSinks) < cap {
				s.toSinks = append(s.toSinks, sf.withSeg(prefixToUse(sf.seg)))
			}
		}
	}
	// viaIntra extends self by one intra edge to u and then follows u's
	// summary (whose segments start at u).
	viaIntra := func(u *ssa.Value) func(cont pdg.Path) pdg.Path {
		return func(cont pdg.Path) pdg.Path {
			out := make(pdg.Path, 0, 1+len(cont))
			out = append(out, pdg.Step{V: v, Kind: pdg.StepStart})
			out = append(out, pdg.Step{V: cont[0].V, Kind: pdg.StepIntra})
			out = append(out, cont[1:]...)
			return out
		}
	}

	for _, u := range uses {
		switch u.Op {
		case ssa.OpCall:
			callee := e.G.Callee(u)
			for idx, a := range u.Args {
				if a != v || idx >= len(callee.Params) {
					continue
				}
				psum := e.summarize(callee.Params[idx])
				// Flows that stay below the call: sinks inside the callee.
				for _, sf := range psum.toSinks {
					if len(s.toSinks) < cap {
						s.toSinks = append(s.toSinks, sf.withSeg(spliceCall(self, u.Site, sf.seg)))
					}
				}
				// Flows returning to the receiver continue from u.
				if len(psum.toRet) > 0 {
					usum := e.summarize(u)
					for _, rseg := range psum.toRet {
						prefix := spliceCall(self, u.Site, rseg)
						appendCont(func(cont pdg.Path) pdg.Path {
							return spliceReturn(prefix[:len(prefix)], u, cont)
						}, usum)
					}
				}
			}
		case ssa.OpExtern:
			if idxs, ok := e.spec.SinkCalls[u.Callee]; ok {
				for ai, a := range u.Args {
					if a != v {
						continue
					}
					if len(idxs) > 0 && !containsInt(idxs, ai) {
						continue
					}
					if len(s.toSinks) < cap {
						s.toSinks = append(s.toSinks, sinkFlow{
							sink: u, argIdx: ai,
							seg: pdg.Path{{V: v, Kind: pdg.StepStart}, {V: u, Kind: pdg.StepIntra}},
						})
					}
				}
			}
			if is, ok := e.spec.SinkBounds[u.Callee]; ok {
				for ai, a := range u.Args {
					if a != v || ai != is.Arg {
						continue
					}
					if len(s.toSinks) < cap {
						sf := sinkFlow{
							sink: u, argIdx: ai,
							seg:              pdg.Path{{V: v, Kind: pdg.StepStart}, {V: u, Kind: pdg.StepIntra}},
							constrainFromEnd: 2,
							constrainKind:    pdg.ConstraintOutOfBounds,
							constrainBound:   is.Size,
						}
						if is.DynBound {
							// Dynamic bound: constrain the sink call itself
							// (the last step); its BoundArg argument is the
							// buffer length.
							sf.constrainFromEnd = 1
							sf.constrainKind = pdg.ConstraintOutOfBoundsDyn
							sf.constrainBound = 0
							sf.constrainArg = is.Arg
							sf.constrainBoundArg = is.BoundArg
						}
						s.toSinks = append(s.toSinks, sf)
					}
				}
			}
			if e.spec.TaintThroughExtern {
				appendCont(viaIntra(u), e.summarize(u))
			}
		case ssa.OpBranch:
			// Facts do not flow through control decisions.
		default:
			if e.spec.SinkDivisors && u.Op == ssa.OpBin &&
				(u.BinOp == lang.OpDiv || u.BinOp == lang.OpRem) && u.Args[1] == v {
				if len(s.toSinks) < cap {
					s.toSinks = append(s.toSinks, sinkFlow{
						sink: u, argIdx: 1,
						seg:              pdg.Path{{V: v, Kind: pdg.StepStart}, {V: u, Kind: pdg.StepIntra}},
						constrainFromEnd: 2,
						constrainValue:   0,
					})
				}
			}
			appendCont(viaIntra(u), e.summarize(u))
		}
	}
	return s
}
