// Package bitblast lowers bit-vector terms to CNF over a CDCL SAT solver
// using the Tseitin transformation, with constant propagation and structural
// hashing at the gate level. It plays the role of Z3's bit-blaster in the
// paper's solving stack (§4).
package bitblast

import (
	"fmt"

	"fusion/internal/sat"
	"fusion/internal/smt"
)

// Blaster converts terms to clauses incrementally. All terms must come from
// the same smt.Builder. A Blaster is persistent: the CNF cache is keyed by
// hash-consed term identity (pointer equality), so queries sharing subterms
// reuse each other's encodings across BeginQuery boundaries, and query roots
// asserted through Assume are guarded by activation literals so retiring a
// query disables its root constraint without deleting any clause.
type Blaster struct {
	S *sat.Solver
	// bits caches the literal vector (LSB first) of every blasted term,
	// tagged with the query epoch that last touched it.
	bits map[*smt.Term]entry
	// gates structurally hashes AND/XOR gates.
	gates map[gateKey]sat.Lit
	// acts maps an asserted query root to its activation literal, so a
	// repeated identical query reuses the existing guard clause.
	acts map[*smt.Term]sat.Lit
	// varEpoch records, per solver variable, the query epoch that last
	// touched it: stamped at allocation and re-stamped whenever a cache
	// hit reuses the encoding it belongs to. A variable whose epoch is
	// older than the current query belongs only to retired activation
	// groups — its clauses stay (they are guarded or shared), but learned
	// clauses mentioning it are dead weight a session can purge.
	varEpoch []uint32
	lTrue    sat.Lit
	epoch    uint32
	// Reused counts terms whose encoding was first built by an earlier
	// query and hit again by a later one — each distinct term at most once
	// per query. It is the cross-query amortization a session buys.
	Reused int64
}

type entry struct {
	lits  []sat.Lit
	epoch uint32
}

type gateKey struct {
	op   byte // 'a' and, 'x' xor
	a, b sat.Lit
}

// New returns a Blaster over the given solver. It allocates one variable
// pinned to true for constant literals.
func New(s *sat.Solver) *Blaster {
	b := &Blaster{
		S:     s,
		bits:  map[*smt.Term]entry{},
		gates: map[gateKey]sat.Lit{},
		acts:  map[*smt.Term]sat.Lit{},
	}
	v := s.NewVar()
	b.lTrue = sat.MkLit(v, false)
	s.AddClause(b.lTrue)
	return b
}

// BeginQuery opens a new query epoch: cache hits on terms blasted during
// earlier epochs are counted as cross-query reuse (once per distinct term).
func (b *Blaster) BeginQuery() { b.epoch++ }

// NumTerms returns the number of distinct terms whose encodings are cached.
func (b *Blaster) NumTerms() int { return len(b.bits) }

func (b *Blaster) litFalse() sat.Lit { return b.lTrue.Flip() }

func (b *Blaster) isTrue(l sat.Lit) bool  { return l == b.lTrue }
func (b *Blaster) isFalse(l sat.Lit) bool { return l == b.litFalse() }

func (b *Blaster) fresh() sat.Lit {
	v := b.S.NewVar()
	b.stampVar(v)
	return sat.MkLit(v, false)
}

// stampVar marks v as touched by the current query epoch.
func (b *Blaster) stampVar(v int) {
	for v >= len(b.varEpoch) {
		b.varEpoch = append(b.varEpoch, b.epoch)
	}
	b.varEpoch[v] = b.epoch
}

// and2 returns a literal equivalent to a AND b.
func (b *Blaster) and2(x, y sat.Lit) sat.Lit {
	switch {
	case b.isFalse(x) || b.isFalse(y):
		return b.litFalse()
	case b.isTrue(x):
		return y
	case b.isTrue(y):
		return x
	case x == y:
		return x
	case x == y.Flip():
		return b.litFalse()
	}
	if x > y {
		x, y = y, x
	}
	if g, ok := b.gates[gateKey{'a', x, y}]; ok {
		b.stampVar(g.Var())
		return g
	}
	g := b.fresh()
	b.S.AddClause(g.Flip(), x)
	b.S.AddClause(g.Flip(), y)
	b.S.AddClause(g, x.Flip(), y.Flip())
	b.gates[gateKey{'a', x, y}] = g
	return g
}

func (b *Blaster) or2(x, y sat.Lit) sat.Lit {
	return b.and2(x.Flip(), y.Flip()).Flip()
}

// xor2 returns a literal equivalent to a XOR b.
func (b *Blaster) xor2(x, y sat.Lit) sat.Lit {
	switch {
	case b.isFalse(x):
		return y
	case b.isFalse(y):
		return x
	case b.isTrue(x):
		return y.Flip()
	case b.isTrue(y):
		return x.Flip()
	case x == y:
		return b.litFalse()
	case x == y.Flip():
		return b.lTrue
	}
	// Canonicalize polarity: xor(¬a, b) = ¬xor(a, b).
	flip := false
	if x.Neg() {
		x = x.Flip()
		flip = !flip
	}
	if y.Neg() {
		y = y.Flip()
		flip = !flip
	}
	if x > y {
		x, y = y, x
	}
	g, ok := b.gates[gateKey{'x', x, y}]
	if ok {
		b.stampVar(g.Var())
	} else {
		g = b.fresh()
		b.S.AddClause(g.Flip(), x, y)
		b.S.AddClause(g.Flip(), x.Flip(), y.Flip())
		b.S.AddClause(g, x.Flip(), y)
		b.S.AddClause(g, x, y.Flip())
		b.gates[gateKey{'x', x, y}] = g
	}
	if flip {
		return g.Flip()
	}
	return g
}

// mux returns c ? x : y.
func (b *Blaster) mux(c, x, y sat.Lit) sat.Lit {
	switch {
	case b.isTrue(c):
		return x
	case b.isFalse(c):
		return y
	case x == y:
		return x
	}
	return b.or2(b.and2(c, x), b.and2(c.Flip(), y))
}

// fullAdder returns (sum, carry) of x + y + cin.
func (b *Blaster) fullAdder(x, y, cin sat.Lit) (sum, cout sat.Lit) {
	sum = b.xor2(b.xor2(x, y), cin)
	cout = b.or2(b.and2(x, y), b.and2(cin, b.xor2(x, y)))
	return sum, cout
}

// addVec returns x + y + cin, LSB first, and the carry out.
func (b *Blaster) addVec(x, y []sat.Lit, cin sat.Lit) ([]sat.Lit, sat.Lit) {
	out := make([]sat.Lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out, c
}

func (b *Blaster) notVec(x []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		out[i] = l.Flip()
	}
	return out
}

func (b *Blaster) constVec(v uint32, w int) []sat.Lit {
	out := make([]sat.Lit, w)
	for i := 0; i < w; i++ {
		if v>>uint(i)&1 == 1 {
			out[i] = b.lTrue
		} else {
			out[i] = b.litFalse()
		}
	}
	return out
}

// ult returns the literal for unsigned x < y: the complement of the carry
// out of x + ~y + 1.
func (b *Blaster) ult(x, y []sat.Lit) sat.Lit {
	_, cout := b.addVec(x, b.notVec(y), b.lTrue)
	return cout.Flip()
}

// eqVec returns the literal for x = y.
func (b *Blaster) eqVec(x, y []sat.Lit) sat.Lit {
	acc := b.lTrue
	for i := range x {
		acc = b.and2(acc, b.xor2(x[i], y[i]).Flip())
	}
	return acc
}

// isZero returns the literal for x = 0.
func (b *Blaster) isZero(x []sat.Lit) sat.Lit {
	acc := b.litFalse()
	for _, l := range x {
		acc = b.or2(acc, l)
	}
	return acc.Flip()
}

// muxVec returns c ? x : y elementwise.
func (b *Blaster) muxVec(c sat.Lit, x, y []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i := range x {
		out[i] = b.mux(c, x[i], y[i])
	}
	return out
}

// shifter builds a barrel shifter. left selects the direction.
func (b *Blaster) shifter(x, amt []sat.Lit, left bool) []sat.Lit {
	w := len(x)
	// Bits of amt at positions >= log2ceil(w) force a zero result.
	stages := 0
	for 1<<uint(stages) < w {
		stages++
	}
	cur := x
	for k := 0; k < stages; k++ {
		sh := 1 << uint(k)
		shifted := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var src int
			if left {
				src = i - sh
			} else {
				src = i + sh
			}
			if src < 0 || src >= w {
				shifted[i] = b.litFalse()
			} else {
				shifted[i] = cur[src]
			}
		}
		cur = b.muxVec(amt[k], shifted, cur)
	}
	// If any high bit of amt is set, the result is zero.
	high := b.litFalse()
	for k := stages; k < len(amt); k++ {
		high = b.or2(high, amt[k])
	}
	zero := b.constVec(0, w)
	return b.muxVec(high, zero, cur)
}

// divmod builds restoring division and returns (quotient, remainder) for
// nonzero divisors; zero-divisor semantics are layered on by the caller.
func (b *Blaster) divmod(num, den []sat.Lit) (q, r []sat.Lit) {
	w := len(num)
	r = b.constVec(0, w)
	q = make([]sat.Lit, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | num[i]
		nr := make([]sat.Lit, w)
		nr[0] = num[i]
		copy(nr[1:], r[:w-1])
		r = nr
		// q[i] = r >= den; if so r -= den.
		lt := b.ult(r, den)
		ge := lt.Flip()
		q[i] = ge
		diff, _ := b.addVec(r, b.notVec(den), b.lTrue)
		r = b.muxVec(ge, diff, r)
	}
	return q, r
}

// Blast returns the literal vector (LSB first) representing t.
func (b *Blaster) Blast(t *smt.Term) []sat.Lit {
	if e, ok := b.bits[t]; ok {
		if e.epoch != b.epoch {
			b.Reused++
			e.epoch = b.epoch
			b.bits[t] = e
			for _, l := range e.lits {
				b.stampVar(l.Var())
			}
		}
		return e.lits
	}
	var out []sat.Lit
	switch t.Op {
	case smt.OpVar:
		out = make([]sat.Lit, t.Width)
		for i := range out {
			out[i] = b.fresh()
		}
	case smt.OpConst:
		out = b.constVec(t.Const, t.Width)
	case smt.OpNot:
		out = b.notVec(b.Blast(t.Args[0]))
	case smt.OpNeg:
		x := b.Blast(t.Args[0])
		out, _ = b.addVec(b.constVec(0, t.Width), b.notVec(x), b.lTrue)
	case smt.OpAnd, smt.OpOr:
		out = b.Blast(t.Args[0])
		for _, a := range t.Args[1:] {
			y := b.Blast(a)
			nxt := make([]sat.Lit, t.Width)
			for i := 0; i < t.Width; i++ {
				if t.Op == smt.OpAnd {
					nxt[i] = b.and2(out[i], y[i])
				} else {
					nxt[i] = b.or2(out[i], y[i])
				}
			}
			out = nxt
		}
	case smt.OpXor:
		x, y := b.Blast(t.Args[0]), b.Blast(t.Args[1])
		out = make([]sat.Lit, t.Width)
		for i := range out {
			out[i] = b.xor2(x[i], y[i])
		}
	case smt.OpAdd:
		x, y := b.Blast(t.Args[0]), b.Blast(t.Args[1])
		out, _ = b.addVec(x, y, b.litFalse())
	case smt.OpSub:
		x, y := b.Blast(t.Args[0]), b.Blast(t.Args[1])
		out, _ = b.addVec(x, b.notVec(y), b.lTrue)
	case smt.OpMul:
		x, y := b.Blast(t.Args[0]), b.Blast(t.Args[1])
		w := t.Width
		acc := b.constVec(0, w)
		for i := 0; i < w; i++ {
			// acc += (y << i) masked by x[i].
			addend := make([]sat.Lit, w)
			for j := 0; j < w; j++ {
				if j < i {
					addend[j] = b.litFalse()
				} else {
					addend[j] = b.and2(x[i], y[j-i])
				}
			}
			acc, _ = b.addVec(acc, addend, b.litFalse())
		}
		out = acc
	case smt.OpUDiv, smt.OpURem:
		x, y := b.Blast(t.Args[0]), b.Blast(t.Args[1])
		q, r := b.divmod(x, y)
		dz := b.isZero(y)
		if t.Op == smt.OpUDiv {
			out = b.muxVec(dz, b.constVec(^uint32(0), t.Width), q)
		} else {
			out = b.muxVec(dz, x, r)
		}
	case smt.OpShl:
		out = b.shifter(b.Blast(t.Args[0]), b.Blast(t.Args[1]), true)
	case smt.OpLshr:
		out = b.shifter(b.Blast(t.Args[0]), b.Blast(t.Args[1]), false)
	case smt.OpEq:
		out = []sat.Lit{b.eqVec(b.Blast(t.Args[0]), b.Blast(t.Args[1]))}
	case smt.OpUlt:
		out = []sat.Lit{b.ult(b.Blast(t.Args[0]), b.Blast(t.Args[1]))}
	case smt.OpUle:
		out = []sat.Lit{b.ult(b.Blast(t.Args[1]), b.Blast(t.Args[0])).Flip()}
	case smt.OpSlt, smt.OpSle:
		x, y := b.Blast(t.Args[0]), b.Blast(t.Args[1])
		w := len(x)
		// Flip sign bits to map signed comparison onto unsigned.
		fx := append(append([]sat.Lit(nil), x[:w-1]...), x[w-1].Flip())
		fy := append(append([]sat.Lit(nil), y[:w-1]...), y[w-1].Flip())
		if t.Op == smt.OpSlt {
			out = []sat.Lit{b.ult(fx, fy)}
		} else {
			out = []sat.Lit{b.ult(fy, fx).Flip()}
		}
	case smt.OpIte:
		c := b.Blast(t.Args[0])[0]
		out = b.muxVec(c, b.Blast(t.Args[1]), b.Blast(t.Args[2]))
	default:
		panic(fmt.Sprintf("bitblast: unhandled operator %s", t.Op))
	}
	if len(out) != t.Width {
		panic(fmt.Sprintf("bitblast: width mismatch for %s: got %d, want %d", t.Op, len(out), t.Width))
	}
	b.bits[t] = entry{lits: out, epoch: b.epoch}
	return out
}

// AssertTrue constrains the width-1 term t to be true, permanently.
func (b *Blaster) AssertTrue(t *smt.Term) {
	if t.Width != 1 {
		panic("bitblast: AssertTrue requires a width-1 term")
	}
	b.S.AddClause(b.Blast(t)[0])
}

// Assume blasts the width-1 query root t guarded by an activation literal
// act via the clause (¬act ∨ t): solving under the assumption act enforces
// t, and a call that stops assuming act retires the query — the solver is
// free to set act false, which satisfies the guard clause vacuously.
// Repeated assumptions of the same root reuse its guard.
func (b *Blaster) Assume(t *smt.Term) sat.Lit {
	if t.Width != 1 {
		panic("bitblast: Assume requires a width-1 term")
	}
	if act, ok := b.acts[t]; ok {
		b.stampVar(act.Var())
		return act
	}
	root := b.Blast(t)[0]
	act := b.fresh()
	b.S.AddClause(act.Flip(), root)
	b.acts[t] = act
	return act
}

// RetiredVars returns a predicate over solver variables that holds for
// every variable owned only by retired activation groups: activation
// literals and encoding variables last touched by a query epoch older
// than the current one. Their problem clauses stay resident (guarded or
// shared), but learned clauses mentioning them were only ever useful
// while their query was live; a session purges those on recycle. Returns
// nil before the first query epoch opens, when nothing can be retired.
func (b *Blaster) RetiredVars() func(v int) bool {
	if b.epoch == 0 {
		return nil
	}
	pinned := b.lTrue.Var() // the true-constant is live in every epoch
	return func(v int) bool {
		return v != pinned && v < len(b.varEpoch) && b.varEpoch[v] != b.epoch
	}
}

// ModelValue extracts the value of a blasted term from the solver's model
// after a Sat verdict.
func (b *Blaster) ModelValue(t *smt.Term) uint32 {
	bits := b.Blast(t)
	var v uint32
	for i, l := range bits {
		bit := b.S.ValueOf(l.Var())
		if l.Neg() {
			bit = !bit
		}
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}
