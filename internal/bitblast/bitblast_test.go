package bitblast

import (
	"math/rand"
	"testing"

	"fusion/internal/sat"
	"fusion/internal/smt"
)

// assertStatus bit-blasts phi, asserts it, and checks the verdict.
func assertStatus(t *testing.T, phi *smt.Term, want sat.Status) *Blaster {
	t.Helper()
	s := sat.New()
	bl := New(s)
	bl.AssertTrue(phi)
	got, err := s.Solve()
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if got != want {
		t.Fatalf("%s: got %s, want %s", phi, got, want)
	}
	return bl
}

func TestBlastConstComparisons(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	cases := []struct {
		phi  *smt.Term
		want sat.Status
	}{
		{b.Eq(x, b.Const(7, 8)), sat.Sat},
		{b.And(b.Eq(x, b.Const(7, 8)), b.Eq(x, b.Const(9, 8))), sat.Unsat},
		{b.Ult(x, b.Const(0, 8)), sat.Unsat},
		{b.Ule(b.Const(0, 8), x), sat.Sat},
		{b.And(b.Ult(x, b.Const(5, 8)), b.Ult(b.Const(9, 8), x)), sat.Unsat},
		{b.Slt(x, b.Const(0x80, 8)), sat.Unsat}, // nothing is less than INT8_MIN
	}
	for _, c := range cases {
		assertStatus(t, c.phi, c.want)
	}
}

func TestBlastArithmeticIdentities(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	// x + y = y + x must be valid: its negation is unsat.
	comm := b.Eq(b.Add(x, y), b.Add(y, x))
	assertStatus(t, b.Not(comm), sat.Unsat)
	// x - x = 0 (builder folds this; test via indirection x - y with x=y).
	sub := b.And(b.Eq(x, y), b.Not(b.Eq(b.Sub(x, y), b.Const(0, 8))))
	assertStatus(t, sub, sat.Unsat)
	// Overflow wraps: x = 255 and x + 1 = 0.
	wrap := b.And(b.Eq(x, b.Const(255, 8)), b.Eq(b.Add(x, b.Const(1, 8)), b.Const(0, 8)))
	assertStatus(t, wrap, sat.Sat)
	// x * 2 = x << 1 is valid.
	shmul := b.Eq(b.Mul(x, b.Const(2, 8)), b.Shl(x, b.Const(1, 8)))
	assertStatus(t, b.Not(shmul), sat.Unsat)
}

func TestBlastDivisionSemantics(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	// x / 0 = 255 (all ones) per SMT-LIB.
	dz := b.Not(b.Eq(b.UDiv(x, b.Const(0, 8)), b.Const(255, 8)))
	assertStatus(t, dz, sat.Unsat)
	// x % 0 = x.
	rz := b.Not(b.Eq(b.URem(x, b.Const(0, 8)), x))
	assertStatus(t, rz, sat.Unsat)
	// (x / 3) * 3 + (x % 3) = x is valid.
	three := b.Const(3, 8)
	div := b.Eq(b.Add(b.Mul(b.UDiv(x, three), three), b.URem(x, three)), x)
	assertStatus(t, b.Not(div), sat.Unsat)
}

func TestBlastModelExtraction(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	phi := b.And(
		b.Eq(b.Add(x, y), b.Const(100, 16)),
		b.Eq(b.Sub(x, y), b.Const(20, 16)),
	)
	s := sat.New()
	bl := New(s)
	bl.AssertTrue(phi)
	st, err := s.Solve()
	if err != nil || st != sat.Sat {
		t.Fatalf("got %s err %v, want sat", st, err)
	}
	xv, yv := bl.ModelValue(x), bl.ModelValue(y)
	if (xv+yv)&0xFFFF != 100 || (xv-yv)&0xFFFF != 20 {
		t.Fatalf("model x=%d y=%d violates the constraints", xv, yv)
	}
	// The model must also satisfy phi under the evaluator.
	if smt.Eval(phi, smt.Assignment{x: xv, y: yv}) != 1 {
		t.Fatalf("extracted model does not evaluate phi to true")
	}
}

// randTerm builds a random term over the given variables.
func randTerm(rng *rand.Rand, b *smt.Builder, vars []*smt.Term, depth int) *smt.Term {
	w := vars[0].Width
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return b.Const(rng.Uint32(), w)
	}
	x := randTerm(rng, b, vars, depth-1)
	y := randTerm(rng, b, vars, depth-1)
	switch rng.Intn(12) {
	case 0:
		return b.Add(x, y)
	case 1:
		return b.Sub(x, y)
	case 2:
		return b.Mul(x, y)
	case 3:
		return b.And(x, y)
	case 4:
		return b.Or(x, y)
	case 5:
		return b.Xor(x, y)
	case 6:
		return b.Not(x)
	case 7:
		return b.Neg(x)
	case 8:
		return b.Shl(x, y)
	case 9:
		return b.Lshr(x, y)
	case 10:
		return b.UDiv(x, y)
	default:
		return b.URem(x, y)
	}
}

// randPred wraps a random term into a predicate.
func randPred(rng *rand.Rand, b *smt.Builder, vars []*smt.Term, depth int) *smt.Term {
	x := randTerm(rng, b, vars, depth)
	y := randTerm(rng, b, vars, depth)
	switch rng.Intn(5) {
	case 0:
		return b.Eq(x, y)
	case 1:
		return b.Ult(x, y)
	case 2:
		return b.Ule(x, y)
	case 3:
		return b.Slt(x, y)
	default:
		return b.Sle(x, y)
	}
}

// TestBlastAgreesWithEval is the core encoding correctness property: for a
// random term t and random assignment A, pinning the variables to A forces
// t to bit-blast to exactly Eval(t, A).
func TestBlastAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 120; iter++ {
		b := smt.NewBuilder()
		width := []int{1, 4, 8, 32}[rng.Intn(4)]
		vars := []*smt.Term{b.Var("a", width), b.Var("b", width), b.Var("c", width)}
		tm := randTerm(rng, b, vars, 3)
		asg := smt.Assignment{}
		pin := b.True()
		for _, v := range vars {
			val := rng.Uint32()
			asg[v] = val
			pin = b.And(pin, b.Eq(v, b.Const(val, width)))
		}
		want := smt.Eval(tm, asg)

		// pin ∧ (t = want) must be sat.
		phi := b.And(pin, b.Eq(tm, b.Const(want, width)))
		assertStatus(t, phi, sat.Sat)
		// pin ∧ (t ≠ want) must be unsat.
		phi2 := b.And(pin, b.Not(b.Eq(tm, b.Const(want, width))))
		assertStatus(t, phi2, sat.Unsat)
	}
}

// TestPredicatesAgreeWithEval does the same for the comparison operators.
func TestPredicatesAgreeWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		b := smt.NewBuilder()
		width := []int{4, 8, 32}[rng.Intn(3)]
		vars := []*smt.Term{b.Var("a", width), b.Var("b", width)}
		p := randPred(rng, b, vars, 2)
		asg := smt.Assignment{}
		pin := b.True()
		for _, v := range vars {
			val := rng.Uint32()
			asg[v] = val
			pin = b.And(pin, b.Eq(v, b.Const(val, width)))
		}
		want := smt.Eval(p, asg) == 1
		phi := b.And(pin, p)
		wantStatus := sat.Unsat
		if want {
			wantStatus = sat.Sat
		}
		assertStatus(t, phi, wantStatus)
	}
}

func TestBlastIte(t *testing.T) {
	b := smt.NewBuilder()
	c := b.Var("c", 1)
	x := b.Ite(c, b.Const(10, 8), b.Const(20, 8))
	// ite result must be one of the two arms.
	phi := b.And(b.Not(b.Eq(x, b.Const(10, 8))), b.Not(b.Eq(x, b.Const(20, 8))))
	assertStatus(t, phi, sat.Unsat)
	// Choosing the condition forces the arm.
	phi2 := b.And(c, b.Eq(x, b.Const(20, 8)))
	assertStatus(t, phi2, sat.Unsat)
}

func TestBlastSharedSubterms(t *testing.T) {
	// The same sub-term blasted twice must reuse literals (DAG sharing).
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	sum := b.Add(x, b.Const(1, 32))
	phi := b.And(b.Eq(sum, b.Const(5, 32)), b.Ult(sum, b.Const(10, 32)))
	s := sat.New()
	bl := New(s)
	bl.AssertTrue(phi)
	before := s.NumVars()
	bl.Blast(sum) // must be cached
	if s.NumVars() != before {
		t.Error("re-blasting a cached term allocated variables")
	}
	st, _ := s.Solve()
	if st != sat.Sat {
		t.Fatalf("got %s, want sat", st)
	}
	if got := bl.ModelValue(x); got != 4 {
		t.Errorf("x = %d, want 4", got)
	}
}

func TestBlastWideShift(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 32)
	// Shifting by >= width yields zero.
	phi := b.Not(b.Eq(b.Shl(x, b.Const(32, 32)), b.Const(0, 32)))
	assertStatus(t, phi, sat.Unsat)
	phi2 := b.Not(b.Eq(b.Lshr(x, b.Const(200, 32)), b.Const(0, 32)))
	assertStatus(t, phi2, sat.Unsat)
}
