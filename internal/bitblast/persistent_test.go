package bitblast

import (
	"testing"

	"fusion/internal/sat"
	"fusion/internal/smt"
)

// solveAssumed runs one guarded query against a warm blaster.
func solveAssumed(t *testing.T, s *sat.Solver, bl *Blaster, phi *smt.Term) sat.Status {
	t.Helper()
	bl.BeginQuery()
	act := bl.Assume(phi)
	st, err := s.SolveAssuming([]sat.Lit{act})
	if err != nil {
		t.Fatalf("solve %s: %v", phi, err)
	}
	return st
}

func TestAssumeRetiresQueries(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	s := sat.New()
	bl := New(s)

	// Query 1: x < 5 — sat.
	if st := solveAssumed(t, s, bl, b.Ult(x, b.Const(5, 8))); st != sat.Sat {
		t.Fatalf("x<5: got %s, want sat", st)
	}
	// Query 2: x < 5 ∧ x > 9 — unsat, shares the x<5 encoding.
	contra := b.And(b.Ult(x, b.Const(5, 8)), b.Ult(b.Const(9, 8), x))
	if st := solveAssumed(t, s, bl, contra); st != sat.Unsat {
		t.Fatalf("x<5 && x>9: got %s, want unsat", st)
	}
	if !s.Okay() {
		t.Fatal("a retired unsat query must not poison the solver")
	}
	// Query 3: x > 9 alone — sat again; the retired unsat root must not
	// constrain this solve.
	if st := solveAssumed(t, s, bl, b.Ult(b.Const(9, 8), x)); st != sat.Sat {
		t.Fatalf("x>9 after retiring x<5&&x>9: got %s, want sat", st)
	}
}

func TestCrossQueryReuseCounted(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	sum := b.Add(x, y)
	s := sat.New()
	bl := New(s)

	if st := solveAssumed(t, s, bl, b.Eq(sum, b.Const(10, 8))); st != sat.Sat {
		t.Fatalf("first query: got %s, want sat", st)
	}
	if bl.Reused != 0 {
		t.Fatalf("first query counted reuse %d, want 0", bl.Reused)
	}
	terms := bl.NumTerms()
	vars := s.NumVars()

	// Second query over the same subterm: x + y = 20 reuses sum, x, y.
	if st := solveAssumed(t, s, bl, b.Eq(sum, b.Const(20, 8))); st != sat.Sat {
		t.Fatalf("second query: got %s, want sat", st)
	}
	// Reuse is counted at the topmost shared node: the hit on x+y subsumes
	// x and y, whose encodings are reused transitively.
	if bl.Reused < 1 {
		t.Fatalf("second query reused %d terms, want >= 1 (x+y)", bl.Reused)
	}
	if bl.NumTerms() <= terms {
		t.Fatal("second query added no cached terms")
	}
	// The shared adder encoding must not be rebuilt: far fewer new vars
	// than the first query allocated.
	if grown := s.NumVars() - vars; grown > vars/2 {
		t.Fatalf("second query allocated %d new vars over %d — encoding not reused", grown, vars)
	}
}

func TestRepeatedIdenticalQuerySharesGuard(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	phi := b.Eq(x, b.Const(3, 8))
	s := sat.New()
	bl := New(s)

	bl.BeginQuery()
	a1 := bl.Assume(phi)
	bl.BeginQuery()
	a2 := bl.Assume(phi)
	if a1 != a2 {
		t.Fatalf("identical root got two activation literals %v, %v", a1, a2)
	}
	st, err := s.SolveAssuming([]sat.Lit{a2})
	if err != nil || st != sat.Sat {
		t.Fatalf("got (%s, %v), want sat", st, err)
	}
	if bl.ModelValue(x) != 3 {
		t.Fatalf("model x = %d, want 3", bl.ModelValue(x))
	}
}

func TestWarmMatchesColdVerdicts(t *testing.T) {
	b := smt.NewBuilder()
	x := b.Var("x", 8)
	y := b.Var("y", 8)
	queries := []*smt.Term{
		b.Ult(x, y),
		b.And(b.Ult(x, y), b.Ult(y, x)),
		b.Eq(b.Mul(x, b.Const(2, 8)), b.Const(7, 8)), // odd = even*? no: 2x is even
		b.Eq(b.Add(x, y), b.Sub(x, b.Neg(y))),
		b.And(b.Eq(x, b.Const(0, 8)), b.Eq(b.UDiv(y, x), b.Const(255, 8))),
	}
	s := sat.New()
	bl := New(s)
	for i, q := range queries {
		warm := solveAssumed(t, s, bl, q)
		cold := sat.New()
		cb := New(cold)
		cb.AssertTrue(q)
		coldSt, err := cold.Solve()
		if err != nil {
			t.Fatalf("query %d cold: %v", i, err)
		}
		if warm != coldSt {
			t.Fatalf("query %d (%s): warm %s != cold %s", i, q, warm, coldSt)
		}
	}
}
