package telemetry

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync/atomic"
)

// EnablePprof serves the standard net/http/pprof handlers on addr
// (e.g. "localhost:6060") for live profiling of long runs. It returns
// once the listener is up; the server runs until the process exits.
func EnablePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: pprof: %w", err)
	}
	go func() {
		// DefaultServeMux carries the pprof handlers via the blank import.
		_ = http.Serve(ln, nil)
	}()
	return nil
}

var dumpSeq atomic.Int64

// dumpProfiles writes heap and goroutine profiles into dir, named by
// pid and a sequence number so repeated signals never clobber earlier
// dumps. Errors are reported on stderr, never fatal: a profile dump
// must not take down the run it observes.
func dumpProfiles(dir string) {
	seq := dumpSeq.Add(1)
	for _, kind := range []string{"heap", "goroutine"} {
		name := filepath.Join(dir, fmt.Sprintf("fusion-%s-%d-%d.pprof", kind, os.Getpid(), seq))
		f, err := os.Create(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: pprof dump:", err)
			continue
		}
		if err := pprof.Lookup(kind).WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: pprof dump:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry: pprof dump:", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "telemetry: wrote %s\n", name)
	}
}
