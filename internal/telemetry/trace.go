package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// traceEvent is one Chrome trace-event JSON object. Complete ("X")
// events carry ts+dur in microseconds; metadata ("M") events name the
// tracks. Perfetto and chrome://tracing both load this shape.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// WriteTrace writes the recorded spans as Chrome trace-event JSON to
// path: one track (tid) per worker slot plus track 0 for the pipeline's
// own phases, spans nested by time containment (an attempt span sits
// under its candidate's ladder span, compile stages under the compile
// span). Events are sorted by track then start time so the output is
// stable for a fixed recording.
func (r *Recorder) WriteTrace(path string) error {
	var spans []span
	if r != nil {
		r.mu.Lock()
		spans = append(spans, r.spans...)
		r.mu.Unlock()
	}
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].track != spans[j].track {
			return spans[i].track < spans[j].track
		}
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		// Longer first: a parent span sorts before the children it
		// encloses when they share a start.
		return spans[i].dur > spans[j].dur
	})

	tf := traceFile{TraceEvents: []traceEvent{}}
	seen := map[int]bool{}
	for _, s := range spans {
		if !seen[s.track] {
			seen[s.track] = true
			name := "pipeline"
			if s.track > 0 {
				name = "worker " + strconv.Itoa(s.track-1)
			}
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: s.track,
				Args: map[string]string{"name": name},
			})
		}
	}
	for _, s := range spans {
		ev := traceEvent{
			Name: s.name, Cat: s.cat, Ph: "X",
			TS:  float64(s.start.Nanoseconds()) / 1e3,
			Dur: float64(s.dur.Nanoseconds()) / 1e3,
			PID: 1, TID: s.track,
		}
		if s.solve {
			ev.Args = map[string]string{
				"engine":  s.info.Engine,
				"tier":    s.info.Tier,
				"status":  s.info.Status,
				"attempt": strconv.Itoa(s.info.Attempt),
			}
			if s.info.Abandoned {
				ev.Args["abandoned"] = "true"
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	data, err := json.MarshalIndent(tf, "", " ")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// AbandonedSpans counts recorded solve-attempt spans flagged as
// watchdog-abandoned, for tests that assert the abandonment reached the
// trace.
func (r *Recorder) AbandonedSpans() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.spans {
		if s.solve && s.info.Abandoned {
			n++
		}
	}
	return n
}
