// Package telemetry is the pipeline's zero-dependency metrics-and-spans
// subsystem: a Recorder collects monotonic counters and timed spans from
// the compile and solve stages and exports them as a stable-ordered JSON
// snapshot (-metrics) and a Chrome trace-event file (-trace).
//
// Every Recorder method is nil-receiver safe, so the off path — no
// -metrics, no -trace — costs exactly one pointer check and zero
// allocations at each instrumentation site. Hot paths therefore thread a
// possibly-nil *Recorder instead of guarding with a separate enabled
// flag.
//
// Counters live in three deliberately separate sections:
//
//   - Counters: verdict-derived tallies that are a pure function of the
//     input program and engine configuration. The pipeline's determinism
//     contract (parallel runs byte-identical to sequential ones) extends
//     to this section: its JSON rendering is byte-identical for any
//     -workers value.
//   - Sched: monotonic cost counters that depend on how candidates were
//     batched onto workers — SAT conflicts/decisions/propagations and the
//     warm sessions' cache amortization. Real, useful, but not
//     worker-invariant; never compare them across worker counts.
//   - Wall: accumulated wall-clock nanoseconds per stage. Never
//     deterministic; segregated so tests can compare the Counters
//     section alone.
package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Recorder collects counters and spans. The zero value is not usable;
// call New. A nil *Recorder is valid everywhere and records nothing.
type Recorder struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]int64
	sched    map[string]int64
	wall     map[string]int64
	spans    []span
}

// span is one recorded interval, stored relative to the Recorder's
// start so trace timestamps begin at zero.
type span struct {
	cat, name  string
	track      int
	start, dur time.Duration
	info       SolveInfo // zero for plain stage spans
	solve      bool
}

// New returns an empty Recorder whose trace clock starts now.
func New() *Recorder {
	return &Recorder{
		start:    time.Now(),
		counters: map[string]int64{},
		sched:    map[string]int64{},
		wall:     map[string]int64{},
	}
}

// Count adds delta to a deterministic counter. Only record values here
// that are worker-count-invariant (verdict-derived tallies); anything
// that depends on scheduling belongs in Sched.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Sched adds delta to a scheduling-dependent monotonic counter.
func (r *Recorder) Sched(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sched[name] += delta
	r.mu.Unlock()
}

// SchedMax raises a scheduling-dependent high-water mark to v.
func (r *Recorder) SchedMax(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if v > r.sched[name] {
		r.sched[name] = v
	}
	r.mu.Unlock()
}

// Wall accumulates a wall-clock duration under name.
func (r *Recorder) Wall(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.wall[name] += d.Nanoseconds()
	r.mu.Unlock()
}

// StageSpan records one pipeline-stage interval on a trace track and
// accumulates its duration under the wall counter "cat.name". Track 0 is
// the pipeline's own track; solve workers use their worker slot + 1.
func (r *Recorder) StageSpan(track int, cat, name string, t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, span{
		cat: cat, name: name, track: track,
		start: t0.Sub(r.start), dur: t1.Sub(t0),
	})
	r.wall[cat+"."+name] += t1.Sub(t0).Nanoseconds()
	r.mu.Unlock()
}

// Span records one interval on a trace track, accumulating its duration
// under the wall counter named by cat alone. For span families whose
// names are per-unit (the candidate retry ladders): a wall key per unit
// would bloat the snapshot, so they share the category's key.
func (r *Recorder) Span(track int, cat, name string, t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, span{
		cat: cat, name: name, track: track,
		start: t0.Sub(r.start), dur: t1.Sub(t0),
	})
	r.wall[cat] += t1.Sub(t0).Nanoseconds()
	r.mu.Unlock()
}

// SolveInfo labels one solve-attempt span. Passed by value so a nil
// Recorder call allocates nothing.
type SolveInfo struct {
	// Unit is the candidate's unit label; Engine the engine name.
	Unit, Engine string
	// Tier is the precision tier the attempt's verdict came from; Status
	// its sat status.
	Tier, Status string
	// Attempt is the 1-based retry-ladder rung.
	Attempt int
	// Abandoned reports the watchdog hard-abandoned this attempt.
	Abandoned bool
}

// SolveSpan records one solve-attempt interval on a worker track, carrying
// the attempt's SolveInfo into the trace args, and accumulates the
// duration under the wall counter "solve.attempt".
func (r *Recorder) SolveSpan(track int, t0, t1 time.Time, info SolveInfo) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, span{
		cat: "solve", name: info.Unit, track: track,
		start: t0.Sub(r.start), dur: t1.Sub(t0),
		info: info, solve: true,
	})
	r.wall["solve.attempt"] += t1.Sub(t0).Nanoseconds()
	r.mu.Unlock()
}

// Snapshot is the -metrics artifact. Maps marshal with sorted keys, so
// the rendering is stable; the Counters section is additionally
// byte-identical for any worker count (see the package comment for the
// section contract).
type Snapshot struct {
	Schema   string           `json:"schema"`
	Counters map[string]int64 `json:"counters"`
	Sched    map[string]int64 `json:"sched"`
	WallNS   map[string]int64 `json:"wall_ns"`
	Spans    int              `json:"spans"`
}

// SchemaVersion identifies the snapshot layout for downstream tooling.
const SchemaVersion = "fusion-metrics/1"

// Snapshot copies the current state into a marshalable Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Schema:   SchemaVersion,
		Counters: map[string]int64{},
		Sched:    map[string]int64{},
		WallNS:   map[string]int64{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.sched {
		s.Sched[k] = v
	}
	for k, v := range r.wall {
		s.WallNS[k] = v
	}
	s.Spans = len(r.spans)
	return s
}

// CountersJSON renders the deterministic counters section alone, for
// byte-comparison across worker counts.
func (r *Recorder) CountersJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot().Counters, "", "  ")
}

// WriteMetrics writes the stable-ordered JSON snapshot to path.
func (r *Recorder) WriteMetrics(path string) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}
