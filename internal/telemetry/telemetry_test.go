package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestNilRecorderSafe exercises every method on a nil Recorder: the off
// path must be a silent no-op, never a nil-map write or deref.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Count("a", 1)
	r.Sched("b", 2)
	r.SchedMax("c", 3)
	r.Wall("d", time.Second)
	r.StageSpan(0, "compile", "parse", time.Now(), time.Now())
	r.Span(1, "candidate", "u", time.Now(), time.Now())
	r.SolveSpan(1, time.Now(), time.Now(), SolveInfo{Unit: "u"})
	if n := r.AbandonedSpans(); n != 0 {
		t.Fatalf("nil recorder AbandonedSpans = %d", n)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Sched) != 0 || len(s.WallNS) != 0 || s.Spans != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", s)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := r.WriteMetrics(path); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTrace(path); err != nil {
		t.Fatal(err)
	}
}

// TestNilRecorderNoAllocs is the flags-off overhead guard: with a nil
// Recorder, the instrumentation sites on the solve hot path must add
// zero allocations.
func TestNilRecorderNoAllocs(t *testing.T) {
	var r *Recorder
	var t0 time.Time
	n := testing.AllocsPerRun(1000, func() {
		r.Count("verdicts.total", 1)
		r.Sched("sat.conflicts", 42)
		r.SchedMax("session.cache_vars_max", 7)
		r.Wall("solve.search", time.Millisecond)
		r.StageSpan(0, "compile", "parse", t0, t0)
		r.Span(1, "candidate", "u", t0, t0)
		r.SolveSpan(1, t0, t0, SolveInfo{Unit: "u", Engine: "fusion", Attempt: 1})
	})
	if n != 0 {
		t.Fatalf("nil-Recorder path allocates: %.1f allocs/op, want 0", n)
	}
}

// BenchmarkNilRecorder reports the off path's cost; the test above is
// the hard gate, this is the number to eyeball.
func BenchmarkNilRecorder(b *testing.B) {
	var r *Recorder
	var t0 time.Time
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Count("verdicts.total", 1)
		r.SolveSpan(1, t0, t0, SolveInfo{Unit: "u", Attempt: 1})
	}
}

// TestSnapshotStableOrdering writes the same counters recorded in two
// different orders and requires byte-identical metrics files.
func TestSnapshotStableOrdering(t *testing.T) {
	render := func(names []string) []byte {
		r := New()
		for _, n := range names {
			r.Count(n, 1)
			r.Sched("s."+n, 2)
			r.Wall("w."+n, time.Millisecond)
		}
		path := filepath.Join(t.TempDir(), "m.json")
		if err := r.WriteMetrics(path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := render([]string{"zeta", "alpha", "mid"})
	b := render([]string{"mid", "zeta", "alpha"})
	if !bytes.Equal(a, b) {
		t.Fatalf("metrics not stable across recording order:\n%s\nvs\n%s", a, b)
	}
	var snap Snapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if snap.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", snap.Schema, SchemaVersion)
	}
}

// TestWriteTraceShape validates the trace-event JSON: a traceEvents
// array whose complete events carry ph/ts/pid/tid, with one metadata
// thread-name event per track — the shape Perfetto loads.
func TestWriteTraceShape(t *testing.T) {
	r := New()
	base := r.start
	r.StageSpan(0, "compile", "parse", base, base.Add(time.Millisecond))
	r.StageSpan(0, "compile", "sema", base.Add(time.Millisecond), base.Add(2*time.Millisecond))
	r.SolveSpan(1, base.Add(2*time.Millisecond), base.Add(5*time.Millisecond),
		SolveInfo{Unit: "null-deref f.fl:3:5", Engine: "fusion", Tier: "exact", Status: "sat", Attempt: 1})
	r.SolveSpan(2, base.Add(2*time.Millisecond), base.Add(4*time.Millisecond),
		SolveInfo{Unit: "null-deref f.fl:9:5", Engine: "fusion", Tier: "unknown", Status: "unknown", Attempt: 2, Abandoned: true})

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := r.WriteTrace(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	meta, complete := 0, 0
	tids := map[float64]bool{}
	for _, ev := range tf.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		tid, ok := ev["tid"].(float64)
		if !ok {
			t.Fatalf("event missing tid: %v", ev)
		}
		switch ph {
		case "M":
			meta++
		case "X":
			complete++
			tids[tid] = true
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("complete event missing ts: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if meta != 3 { // tracks 0, 1, 2
		t.Fatalf("thread_name metadata events = %d, want 3", meta)
	}
	if complete != 4 || len(tids) != 3 {
		t.Fatalf("complete events = %d on %d tracks, want 4 on 3", complete, len(tids))
	}
	if n := r.AbandonedSpans(); n != 1 {
		t.Fatalf("AbandonedSpans = %d, want 1", n)
	}
}

// TestSchedMax keeps the high-water-mark semantics honest.
func TestSchedMax(t *testing.T) {
	r := New()
	r.SchedMax("vars", 10)
	r.SchedMax("vars", 4)
	r.SchedMax("vars", 17)
	if v := r.Snapshot().Sched["vars"]; v != 17 {
		t.Fatalf("SchedMax = %d, want 17", v)
	}
}
