//go:build unix

package telemetry

import (
	"os"
	"os/signal"
	"syscall"
)

// DumpOnSignal arms SIGUSR1: each delivery writes heap and goroutine
// profiles into dir (os.TempDir() when empty), so a live run can be
// profiled without restarting it under a collector.
func DumpOnSignal(dir string) {
	if dir == "" {
		dir = os.TempDir()
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	go func() {
		for range ch {
			dumpProfiles(dir)
		}
	}()
}
