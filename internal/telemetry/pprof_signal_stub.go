//go:build !unix

package telemetry

// DumpOnSignal is a no-op on platforms without SIGUSR1; the
// -pprof-addr HTTP endpoint remains available.
func DumpOnSignal(dir string) {}
