// Package progen deterministically generates synthetic benchmark programs
// in the analysis language, standing in for the paper's SPEC CINT2000 and
// industrial subjects (Table 2), which are C/C++ code we cannot compile
// without LLVM. The generator preserves the structural properties the
// paper's effect depends on — layered call graphs, several call sites per
// callee (the k of Table 1), branch-dense bodies, conditions threaded
// through return values — and injects bugs with known ground truth:
// "feasible" bugs lie on satisfiable paths (true positives) and
// "infeasible" ones are guarded by contradictions that only a
// path-sensitive analysis can exclude.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes one generated subject.
type Config struct {
	Name string
	Seed int64
	// Funcs is the number of ordinary (non-buggy) functions.
	Funcs int
	// Layers is the call-graph depth; each function calls functions one
	// layer below, twice per callee.
	Layers int
	// StmtsPerFunc controls body size.
	StmtsPerFunc int
	// Per-checker injected bug counts.
	FeasibleNull, InfeasibleNull   int
	FeasibleTaint, InfeasibleTaint int // split across CWE-23 and CWE-402
	FeasibleDiv, InfeasibleDiv     int // CWE-369 (division by zero)
	FeasibleOOB, InfeasibleOOB     int // CWE-125 (out-of-bounds index)
}

// Bug is one injected defect and its ground truth.
type Bug struct {
	ID       int
	Checker  string // "null-deref", "cwe-23", "cwe-402", "cwe-369", "cwe-125"
	Feasible bool
	Func     string // function containing the sink call
	SinkLine int    // 1-based source line of the sink call
}

// GroundTruth records every injected bug.
type GroundTruth struct {
	Bugs []Bug
}

// Feasible returns the injected bugs with the given feasibility.
func (gt GroundTruth) Feasible(want bool) []Bug {
	var out []Bug
	for _, b := range gt.Bugs {
		if b.Feasible == want {
			out = append(out, b)
		}
	}
	return out
}

// ByChecker returns the bugs for one checker.
func (gt GroundTruth) ByChecker(name string) []Bug {
	var out []Bug
	for _, b := range gt.Bugs {
		if b.Checker == name {
			out = append(out, b)
		}
	}
	return out
}

// emitter builds source text while tracking line numbers.
type emitter struct {
	b    strings.Builder
	line int
}

func newEmitter() *emitter { return &emitter{line: 1} }

func (e *emitter) writef(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	e.b.WriteString(s)
	e.line += strings.Count(s, "\n")
}

// Generate produces the subject's source text (without the checker
// prelude) and its ground truth. Output is deterministic in the config.
func Generate(cfg Config) (string, GroundTruth) {
	if cfg.Layers < 2 {
		cfg.Layers = 2
	}
	if cfg.Funcs < cfg.Layers {
		cfg.Funcs = cfg.Layers
	}
	if cfg.StmtsPerFunc < 3 {
		cfg.StmtsPerFunc = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	e := newEmitter()
	g := &gen{cfg: cfg, rng: rng, e: e}
	g.layout()
	for _, fn := range g.funcs {
		g.emitFunc(fn)
	}
	g.emitBugFuncs()
	return e.b.String(), g.gt
}

type funcInfo struct {
	name    string
	layer   int
	nParams int
}

type gen struct {
	cfg   Config
	rng   *rand.Rand
	e     *emitter
	funcs []funcInfo
	// byLayer[l] lists functions in layer l (0 = leaves).
	byLayer [][]funcInfo
	gt      GroundTruth
	bugID   int
	// lastSinkLine records where emitBugFunc placed the most recent sink
	// call, for the ground-truth record.
	lastSinkLine int
	// nInfDiv counts infeasible CWE-369 bugs, rotating their divisor
	// pattern through the refutation tiers: interval-refutable, odd
	// stride (congruence tier), and parity guard (congruence tier via
	// backward %-refinement).
	nInfDiv int
	// nOOB / nInfOOB count CWE-125 bugs, alternating between the
	// fixed-size sink (buf_read) and the dynamic-bound sink (buf_read_n);
	// the infeasible variants rotate through the zone relational tier,
	// the congruence (aligned index) tier, and the interval tier.
	nOOB    int
	nInfOOB int
}

// layout distributes functions over layers.
func (g *gen) layout() {
	g.byLayer = make([][]funcInfo, g.cfg.Layers)
	for i := 0; i < g.cfg.Funcs; i++ {
		layer := i % g.cfg.Layers
		fn := funcInfo{
			name:    fmt.Sprintf("fn_%s_%d", layerTag(layer), i),
			layer:   layer,
			nParams: 1 + g.rng.Intn(2),
		}
		g.funcs = append(g.funcs, fn)
		g.byLayer[layer] = append(g.byLayer[layer], fn)
	}
}

func layerTag(l int) string { return string(rune('a' + l)) }

// pickCallee returns a function from a lower layer, or none for leaves.
func (g *gen) pickCallee(layer int) (funcInfo, bool) {
	if layer == 0 {
		return funcInfo{}, false
	}
	cands := g.byLayer[layer-1]
	if len(cands) == 0 {
		return funcInfo{}, false
	}
	return cands[g.rng.Intn(len(cands))], true
}

// emitFunc writes one ordinary function: an arithmetic chain over the
// parameters, a couple of branches, and (above layer 0) two calls to each
// of up to two lower-layer callees — the "k call sites per callee" shape
// of Table 1.
func (g *gen) emitFunc(fn funcInfo) {
	e := g.e
	params := make([]string, fn.nParams)
	for i := range params {
		params[i] = fmt.Sprintf("p%d", i)
	}
	e.writef("fun %s(", fn.name)
	for i, p := range params {
		if i > 0 {
			e.writef(", ")
		}
		e.writef("%s: int", p)
	}
	e.writef("): int {\n")

	vars := append([]string(nil), params...)
	v := func() string { return vars[g.rng.Intn(len(vars))] }
	nv := 0
	fresh := func() string {
		nv++
		return fmt.Sprintf("t%d", nv-1)
	}

	// Calls to the lower layer (twice per callee).
	if callee, ok := g.pickCallee(fn.layer); ok {
		for rep := 0; rep < 2; rep++ {
			name := fresh()
			e.writef("    var %s: int = %s(%s);\n", name, callee.name, g.argList(callee, v))
			vars = append(vars, name)
		}
		if callee2, ok2 := g.pickCallee(fn.layer); ok2 && g.rng.Intn(2) == 0 {
			name := fresh()
			e.writef("    var %s: int = %s(%s);\n", name, callee2.name, g.argList(callee2, v))
			vars = append(vars, name)
		}
	}

	// Straight-line arithmetic.
	for i := 0; i < g.cfg.StmtsPerFunc; i++ {
		name := fresh()
		e.writef("    var %s: int = %s;\n", name, g.arith(v))
		vars = append(vars, name)
	}

	// Occasionally a self-contained narrow-width cluster: the language
	// has no implicit widening, so i8/i16 arithmetic stays among its own
	// locals and reaches the int world only through a comparison. The
	// guard below adds narrow vertices — constant-derived, so decided
	// branch conditions — to any slice passing through the accumulator.
	narrowGuard := ""
	if g.rng.Intn(3) == 0 {
		ty, base := "i8", 40+g.rng.Intn(60)
		if g.rng.Intn(2) == 0 {
			ty, base = "i16", 1000+g.rng.Intn(5000)
		}
		w0, w1 := fresh(), fresh()
		e.writef("    var %s: %s = %d;\n", w0, ty, base)
		e.writef("    var %s: %s = %s / 3 + 17;\n", w1, ty, w0)
		narrowGuard = fmt.Sprintf("%s > 0", w1)
	}

	// Occasionally a bounded loop, which normalization unrolls away.
	if g.rng.Intn(4) == 0 {
		idx := fresh()
		sum := fresh()
		e.writef("    var %s: int = 0;\n", idx)
		e.writef("    var %s: int = %s;\n", sum, v())
		e.writef("    while (%s < %d) {\n", idx, 1+g.rng.Intn(3))
		e.writef("        %s = %s + %s;\n", sum, sum, v())
		e.writef("        %s = %s + 1;\n", idx, idx)
		e.writef("    }\n")
		vars = append(vars, sum)
	}

	// About half of the functions return a plain arithmetic result (like
	// the paper's bar with "return 2x"); the rest mutate an accumulator
	// under one or two branches, so their return-value conditions carry
	// control dependence.
	acc := fresh()
	e.writef("    var %s: int = %s;\n", acc, v())
	branches := g.rng.Intn(2) + g.rng.Intn(2) // 0..2, weighted toward 1
	for i := 0; i < branches; i++ {
		e.writef("    if (%s %s %s) {\n", v(), g.cmp(), g.smallConst())
		e.writef("        %s = %s + %s;\n", acc, acc, v())
		if g.rng.Intn(2) == 0 {
			e.writef("    } else {\n        %s = %s - %d;\n    }\n", acc, acc, 1+g.rng.Intn(9))
		} else {
			e.writef("    }\n")
		}
	}
	if narrowGuard != "" {
		e.writef("    if (%s) {\n        %s = %s + 1;\n    }\n", narrowGuard, acc, acc)
	}
	e.writef("    return %s;\n}\n\n", acc)
}

func (g *gen) argList(callee funcInfo, v func() string) string {
	args := make([]string, callee.nParams)
	for i := range args {
		if g.rng.Intn(4) == 0 {
			args[i] = fmt.Sprintf("%d", g.rng.Intn(100))
		} else {
			args[i] = v()
		}
	}
	return strings.Join(args, ", ")
}

func (g *gen) arith(v func() string) string {
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("%s + %s", v(), v())
	case 1:
		return fmt.Sprintf("%s - %s", v(), v())
	case 2:
		return fmt.Sprintf("%s * %d", v(), 1+g.rng.Intn(7))
	case 3:
		return fmt.Sprintf("(%s + %s) * %d", v(), v(), 1+g.rng.Intn(3))
	case 4:
		return fmt.Sprintf("%s ^ %s", v(), v())
	default:
		return fmt.Sprintf("%s + %d", v(), g.rng.Intn(50))
	}
}

func (g *gen) cmp() string {
	return []string{"<", ">", "<=", ">=", "=="}[g.rng.Intn(5)]
}

func (g *gen) smallConst() string { return fmt.Sprintf("%d", g.rng.Intn(64)) }

// emitBugFuncs writes one root function per injected bug. Roots are never
// called, so their parameters are free — the path condition is over them.
func (g *gen) emitBugFuncs() {
	emit := func(checker string, feasible bool) {
		id := g.bugID
		g.bugID++
		fname := fmt.Sprintf("bug_%s_%d", strings.ReplaceAll(checker, "-", "_"), id)
		g.emitBugFunc(fname, checker, feasible)
		g.gt.Bugs = append(g.gt.Bugs, Bug{
			ID: id, Checker: checker, Feasible: feasible, Func: fname,
			SinkLine: g.lastSinkLine,
		})
	}
	for i := 0; i < g.cfg.FeasibleNull; i++ {
		emit("null-deref", true)
	}
	for i := 0; i < g.cfg.InfeasibleNull; i++ {
		emit("null-deref", false)
	}
	for i := 0; i < g.cfg.FeasibleTaint; i++ {
		if i%2 == 0 {
			emit("cwe-23", true)
		} else {
			emit("cwe-402", true)
		}
	}
	for i := 0; i < g.cfg.InfeasibleTaint; i++ {
		if i%2 == 0 {
			emit("cwe-23", false)
		} else {
			emit("cwe-402", false)
		}
	}
	for i := 0; i < g.cfg.FeasibleDiv; i++ {
		emit("cwe-369", true)
	}
	for i := 0; i < g.cfg.InfeasibleDiv; i++ {
		emit("cwe-369", false)
	}
	// One bit-level infeasible division per subject that carries divisions.
	// Its divisor is odd by construction through a bitwise OR — a fact none
	// of the abstract domains track and the sat probe cannot satisfy — so
	// the query is guaranteed to reach the bit-precise solver, exercising
	// the absint-guided pre-simplification on the constant chain and the
	// narrow-width locals it carries.
	if g.cfg.InfeasibleDiv > 0 {
		id := g.bugID
		g.bugID++
		fname := fmt.Sprintf("bug_cwe_369_bit_%d", id)
		g.emitBitDivFunc(fname)
		g.gt.Bugs = append(g.gt.Bugs, Bug{
			ID: id, Checker: "cwe-369", Feasible: false, Func: fname,
			SinkLine: g.lastSinkLine,
		})
	}
	for i := 0; i < g.cfg.FeasibleOOB; i++ {
		emit("cwe-125", true)
	}
	for i := 0; i < g.cfg.InfeasibleOOB; i++ {
		emit("cwe-125", false)
	}
}

// emitBitDivFunc writes the corpus's guaranteed bit-precise solver call:
// a division whose divisor `(n | 1) + k1 - k1` is odd — and hence nonzero
// modulo nothing the interval, stride, or zone domains can see — behind a
// decided narrow-width guard. Every abstract tier keeps the candidate,
// the sat probe cannot hit divisor == 0, and only bit-blasting refutes
// it; the constant chain and i8 locals are what the absint-guided
// pre-simplification folds away on the way there.
func (g *gen) emitBitDivFunc(fname string) {
	e := g.e
	e.writef("fun %s(a: int, b: int) {\n", fname)
	e.writef("    var n: int = user_input();\n")
	e.writef("    var k0: int = %d;\n", 3+g.rng.Intn(5))
	e.writef("    var k1: int = k0 * 3 + 1;\n")
	e.writef("    var w0: i8 = %d;\n", 50+g.rng.Intn(40))
	e.writef("    var w1: i8 = w0 / 3 + 17;\n")
	e.writef("    var d: int = (n | 1) + k1 - k1;\n")
	e.writef("    if (w1 > 0) {\n")
	g.lastSinkLine = e.line
	e.writef("        var q: int = %d / d;\n", 10+g.rng.Intn(90))
	e.writef("        send(q + a + b);\n")
	e.writef("    }\n")
	e.writef("}\n\n")
}

func (g *gen) emitBugFunc(fname, checker string, feasible bool) {
	e := g.e
	e.writef("fun %s(a: int, b: int) {\n", fname)

	// Thread conditions through the call graph when possible, so the
	// feasibility check must reason inter-procedurally.
	condVars := []string{"a", "b"}
	if top := g.cfg.Layers - 1; top >= 0 && len(g.byLayer[top]) > 0 {
		callee := g.byLayer[top][g.rng.Intn(len(g.byLayer[top]))]
		e.writef("    var c0: int = %s(%s);\n", callee.name, g.argList(callee, func() string { return condVars[g.rng.Intn(2)] }))
		e.writef("    var c1: int = %s(%s);\n", callee.name, g.argList(callee, func() string { return condVars[g.rng.Intn(2)] }))
		condVars = append(condVars, "c0", "c1")
	}
	cv := func() string { return condVars[g.rng.Intn(len(condVars))] }

	// The tracked value.
	var valDecl, sink string
	switch checker {
	case "null-deref":
		valDecl = "    var p: ptr = null;\n"
		sink = "deref(p);"
	case "cwe-23":
		valDecl = "    var p: ptr = gets();\n"
		sink = "unlink(p);"
	case "cwe-402":
		valDecl = "    var s: int = read_secret();\n"
		sink = "send(s);"
	case "cwe-369":
		// The sink is the division itself; feasibility is decided by
		// whether the divisor can be zero, not by a guard.
		e.writef("    var n: int = user_input();\n")
		if feasible {
			e.writef("    var d: int = n - %d;\n", g.rng.Intn(50))
		} else {
			g.nInfDiv++
			switch g.nInfDiv % 3 {
			case 1:
				// Odd by guard: the divisor d + 2n is defined before the
				// parity guard, so the whole-program oracle records no
				// stride for it — only the refuter's backward %-refinement
				// (d ≡ 1 mod 2 under the guard, preserved by +2n) excludes
				// zero, and neither intervals nor the zone can.
				e.writef("    var d: int = user_input();\n")
				e.writef("    var e: int = d + n * 2;\n")
				e.writef("    if (d %% 2 == 1) {\n")
				g.lastSinkLine = e.line
				e.writef("        var q: int = %d / e;\n", 10+g.rng.Intn(90))
				e.writef("        send(q + a + b);\n")
				e.writef("    }\n")
				e.writef("}\n\n")
				return
			case 2:
				// Never zero, and interval reasoning alone sees it ([1,13]).
				e.writef("    var d: int = n %% 13 + 1;\n")
			default:
				// Never zero: d ≡ 1 (mod 2), a fact the congruence tier
				// proves even under 32-bit wrap — the stride oracle prunes
				// this candidate during enumeration.
				e.writef("    var d: int = n * 2 + 1;\n")
			}
		}
		g.lastSinkLine = e.line
		e.writef("    var q: int = %d / d;\n", 10+g.rng.Intn(90))
		e.writef("    send(q + a + b);\n")
		e.writef("}\n\n")
		return
	case "cwe-125":
		// The sink is a buffer access; feasibility is decided by whether
		// the index can escape the buffer. Bugs alternate between the
		// fixed-size sink (buf_read, bound BufSize) and the dynamic-bound
		// sink (buf_read_n, bound passed as an argument).
		e.writef("    var n: int = user_input();\n")
		dyn, cross := false, false
		if feasible {
			g.nOOB++
			dyn = g.nOOB%2 == 0
			e.writef("    var i: int = n + %d;\n", g.rng.Intn(8))
		} else {
			// Infeasible bugs rotate through four refutation tiers: the
			// dynamic bound intra-function (zone oracle), cross-function
			// (zone refuter), the aligned index (congruence tier), and the
			// static remainder bound (intervals).
			g.nInfOOB++
			switch g.nInfOOB % 4 {
			case 1, 2:
				dyn = true
				cross = g.nInfOOB%4 == 2
				// The guard proves 0 <= i < m with m unknown: intervals
				// cannot relate i to m, the zone's difference bound can.
				e.writef("    var i: int = n;\n")
			case 3:
				// Aligned index: the guard proves i ≡ 0 (mod 4) and
				// i < BufSize, so the congruence×interval reduced product
				// snaps i to at most BufSize-4 and i+3 stays in bounds —
				// beyond either domain alone.
				e.writef("    var i: int = n;\n")
				e.writef("    if (i %% 4 == 0) {\n")
				e.writef("    if (0 <= i && i < %d) {\n", 256)
				g.lastSinkLine = e.line
				e.writef("        var q: int = buf_read(i + 3);\n")
				e.writef("        send(q + a + b);\n")
				e.writef("    }\n    }\n")
				e.writef("}\n\n")
				return
			default:
				// Unsigned remainder keeps the index inside the buffer,
				// which the interval tier proves without bit-blasting.
				e.writef("    var i: int = n %% %d;\n", 50+g.rng.Intn(50))
			}
		}
		if dyn {
			e.writef("    var m: int = user_input();\n")
			if feasible {
				// Satisfiable: the guard misses i < 0.
				e.writef("    if (i <= m) {\n")
			} else {
				e.writef("    if (0 <= i && i < m) {\n")
			}
			if cross {
				// Cross-function variant: the guard holds in the caller but
				// the access happens in a helper, beyond the whole-program
				// pruning oracle — only the context-sensitive refuter's zone
				// can connect the caller's guard to the callee's index.
				helper := fmt.Sprintf("oob_use_%d", g.bugID)
				e.writef("        var q: int = %s(i, m);\n", helper)
				e.writef("        send(q + a + b);\n")
				e.writef("    }\n")
				e.writef("}\n\n")
				e.writef("fun %s(i: int, m: int): int {\n", helper)
				g.lastSinkLine = e.line
				e.writef("    var q: int = buf_read_n(i, m);\n")
				e.writef("    return q;\n")
				e.writef("}\n\n")
				return
			}
			g.lastSinkLine = e.line
			if g.rng.Intn(2) == 0 {
				e.writef("        var q: int = buf_read_n(i, m);\n")
				e.writef("        send(q + a + b);\n")
			} else {
				e.writef("        buf_write_n(i, m, a + b);\n")
			}
			e.writef("    }\n")
			e.writef("}\n\n")
			return
		}
		g.lastSinkLine = e.line
		if g.rng.Intn(2) == 0 {
			e.writef("    var q: int = buf_read(i);\n")
			e.writef("    send(q + a + b);\n")
		} else {
			e.writef("    buf_write(i, a + b);\n")
		}
		e.writef("}\n\n")
		return
	}
	e.writef("%s", valDecl)

	if feasible {
		// A satisfiable guard. Call results are threaded into the
		// condition so feasibility requires inter-procedural reasoning,
		// but a disjunct over a free parameter keeps the ground truth
		// certainly satisfiable regardless of what the callees compute.
		switch g.rng.Intn(3) {
		case 0:
			e.writef("    if (a < b) {\n")
		case 1:
			e.writef("    if (%s < %s || a > 3) {\n", cv(), cv())
		default:
			e.writef("    if (%s == %d || b == 5) {\n", cv(), 10+g.rng.Intn(30))
		}
		g.lastSinkLine = e.line
		e.writef("        %s\n    }\n", sink)
	} else {
		// A contradiction a path-sensitive analysis refutes.
		switch g.rng.Intn(3) {
		case 0:
			x := cv()
			e.writef("    if (%s > 10) {\n    if (%s < 5) {\n", x, x)
			g.lastSinkLine = e.line
			e.writef("        %s\n    }\n    }\n", sink)
		case 1:
			x := cv()
			e.writef("    if (%s * 2 == 7) {\n", x)
			g.lastSinkLine = e.line
			e.writef("        %s\n    }\n", sink)
		default:
			x := cv()
			e.writef("    var z%s: int = %s - %s;\n", "q", x, x)
			e.writef("    if (zq == 1) {\n")
			g.lastSinkLine = e.line
			e.writef("        %s\n    }\n", sink)
		}
	}
	e.writef("}\n\n")
}
