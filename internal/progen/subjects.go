package progen

import (
	"fmt"
	"strings"

	"fusion/internal/checker"
)

// Subject describes one benchmark subject, named after the paper's Table 2
// entries. PaperKLoC and PaperFuncs are the original sizes; the generator
// scales them down so the suite runs on a laptop (the paper's absolute
// sizes need its LLVM/C++ corpus, which this reproduction replaces with
// synthetic programs — see DESIGN.md).
type Subject struct {
	ID         int
	Name       string
	PaperKLoC  float64
	PaperFuncs int
}

// Subjects lists the sixteen subjects of Table 2 in order.
var Subjects = []Subject{
	{1, "mcf", 2, 26},
	{2, "bzip2", 3, 74},
	{3, "gzip", 6, 89},
	{4, "parser", 8, 324},
	{5, "vpr", 11, 272},
	{6, "crafty", 13, 108},
	{7, "twolf", 18, 191},
	{8, "eon", 22, 3400},
	{9, "gap", 36, 843},
	{10, "vortex", 49, 923},
	{11, "perlbmk", 73, 1100},
	{12, "gcc", 135, 2200},
	{13, "ffmpeg", 1001, 74200},
	{14, "v8", 1201, 260400},
	{15, "mysql", 2030, 79200},
	{16, "wine", 4108, 133000},
}

// SubjectByName returns the subject with the given name.
func SubjectByName(name string) (Subject, error) {
	for _, s := range Subjects {
		if s.Name == name {
			return s, nil
		}
	}
	return Subject{}, fmt.Errorf("progen: unknown subject %q", name)
}

// Large reports whether the subject is one of the four industrial-sized
// projects (IDs 13-16) used in Tables 4 and 5 and Figure 1(c).
func (s Subject) Large() bool { return s.ID >= 13 }

// Config derives a generator configuration at the given scale (1.0 = the
// paper's sizes; the default harness uses a much smaller scale). Bug
// counts grow slowly with subject size so every subject has work to do.
func (s Subject) Config(scale float64) Config {
	funcs := int(float64(s.PaperFuncs) * scale)
	if funcs < 6 {
		funcs = 6
	}
	// Lines per function in the original subjects varies widely; derive
	// statement counts from the KLoC-to-function ratio, clamped to keep
	// single functions tractable.
	stmts := 4
	if funcs > 0 {
		perFunc := s.PaperKLoC * 1000 * scale / float64(funcs)
		stmts = int(perFunc / 3)
	}
	if stmts < 3 {
		stmts = 3
	}
	if stmts > 40 {
		stmts = 40
	}
	layers := 4
	if funcs >= 60 {
		layers = 5
	}
	if funcs >= 150 {
		layers = 6
	}
	if funcs >= 300 {
		layers = 7
	}
	if funcs >= 500 {
		layers = 8
	}
	bugs := 2 + funcs/25
	if bugs > 40 {
		bugs = 40
	}
	return Config{
		Name:            s.Name,
		Seed:            int64(1000 + s.ID),
		Funcs:           funcs,
		Layers:          layers,
		StmtsPerFunc:    stmts,
		FeasibleNull:    bugs,
		InfeasibleNull:  bugs / 2,
		FeasibleTaint:   bugs,
		InfeasibleTaint: bugs / 2,
		FeasibleDiv:     bugs / 2,
		InfeasibleDiv:   bugs / 2,
		FeasibleOOB:     bugs / 2,
		InfeasibleOOB:   bugs / 2,
	}
}

// Build generates the subject at the given scale and returns the full
// source (checker prelude included), the ground truth with sink lines
// adjusted to the full source, and the generated line count.
func (s Subject) Build(scale float64) (src string, gt GroundTruth, genLines int) {
	body, gt := Generate(s.Config(scale))
	offset := strings.Count(checker.Prelude, "\n")
	for i := range gt.Bugs {
		gt.Bugs[i].SinkLine += offset
	}
	return checker.Prelude + body, gt, strings.Count(body, "\n")
}
