package progen_test

import (
	"context"
	"strings"
	"testing"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/sema"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
	"fusion/internal/unroll"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := progen.Config{Name: "t", Seed: 7, Funcs: 12, Layers: 3, StmtsPerFunc: 4,
		FeasibleNull: 2, InfeasibleNull: 1, FeasibleTaint: 2, InfeasibleTaint: 1}
	s1, gt1 := progen.Generate(cfg)
	s2, gt2 := progen.Generate(cfg)
	if s1 != s2 {
		t.Fatal("generation is not deterministic")
	}
	if len(gt1.Bugs) != len(gt2.Bugs) || len(gt1.Bugs) != 6 {
		t.Fatalf("ground truth: got %d bugs, want 6", len(gt1.Bugs))
	}
}

func TestGeneratedProgramIsValid(t *testing.T) {
	for _, sub := range progen.Subjects[:6] {
		src, gt, lines := sub.Build(0.02)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", sub.Name, err)
		}
		if errs := sema.Check(prog); len(errs) > 0 {
			t.Fatalf("%s: sema: %v", sub.Name, errs[0])
		}
		if lines <= 0 || len(gt.Bugs) == 0 {
			t.Errorf("%s: empty subject", sub.Name)
		}
		norm := unroll.Normalize(prog, unroll.Options{})
		if _, err := ssa.Build(norm); err != nil {
			t.Fatalf("%s: ssa: %v", sub.Name, err)
		}
	}
}

func TestSubjectLookup(t *testing.T) {
	s, err := progen.SubjectByName("mysql")
	if err != nil || s.ID != 15 || !s.Large() {
		t.Fatalf("mysql lookup: %v %+v", err, s)
	}
	if _, err := progen.SubjectByName("nope"); err == nil {
		t.Fatal("expected error for unknown subject")
	}
	if progen.Subjects[0].Large() {
		t.Error("mcf is not a large subject")
	}
}

// buildSubject compiles a subject to a PDG.
func buildSubject(t *testing.T, sub progen.Subject, scale float64) (*pdg.Graph, progen.GroundTruth) {
	t.Helper()
	src, gt, _ := sub.Build(scale)
	p, err := driver.Compile(context.Background(), driver.Source{Name: sub.Name, Text: src}, driver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p.Graph, gt
}

// TestGroundTruthAgainstFusion is the system-level correctness test: on a
// generated subject, the fused engine must report every feasible injected
// bug and reject every infeasible one.
func TestGroundTruthAgainstFusion(t *testing.T) {
	g, gt := buildSubject(t, progen.Subjects[3], 0.05) // parser
	eng := sparse.NewEngine(g)
	fus := engines.NewFusion()

	for _, spec := range checker.All() {
		cands := eng.Run(spec)
		verdicts := fus.Check(context.Background(), g, cands)
		reported := map[int]bool{} // sink line -> reported feasible
		for _, v := range verdicts {
			if v.Status == sat.Sat {
				reported[v.Cand.Sink.Pos.Line] = true
			} else if v.Status == sat.Unknown {
				t.Errorf("%s: unknown verdict", spec.Name)
			}
		}
		for _, b := range gt.ByChecker(spec.Name) {
			if b.Feasible && !reported[b.SinkLine] {
				t.Errorf("%s: feasible bug %d (line %d) not reported", spec.Name, b.ID, b.SinkLine)
			}
			if !b.Feasible && reported[b.SinkLine] {
				t.Errorf("%s: infeasible bug %d (line %d) wrongly reported", spec.Name, b.ID, b.SinkLine)
			}
		}
	}
}

// TestEnginesAgreeOnGeneratedSubjects is the differential property: the
// fused solver and the conventional engine must return identical verdicts
// on every candidate of several generated subjects.
func TestEnginesAgreeOnGeneratedSubjects(t *testing.T) {
	for _, sub := range progen.Subjects[:4] {
		g, _ := buildSubject(t, sub, 0.05)
		eng := sparse.NewEngine(g)
		for _, spec := range checker.All() {
			cands := eng.Run(spec)
			fus := engines.NewFusion().Check(context.Background(), g, cands)
			pin := engines.NewPinpoint(engines.Plain).Check(context.Background(), g, cands)
			if len(fus) != len(pin) {
				t.Fatalf("%s/%s: verdict count mismatch", sub.Name, spec.Name)
			}
			for i := range fus {
				if fus[i].Status != pin[i].Status {
					t.Errorf("%s/%s: disagreement on %s: fusion=%s pinpoint=%s",
						sub.Name, spec.Name, fus[i].Cand.Path, fus[i].Status, pin[i].Status)
				}
			}
		}
	}
}

// TestVariantSoundness: LFS and HFS must not change verdicts; AR must agree
// too (it refines to the full condition).
func TestVariantSoundness(t *testing.T) {
	g, _ := buildSubject(t, progen.Subjects[0], 0.2) // mcf, small
	eng := sparse.NewEngine(g)
	cands := eng.Run(checker.NullDeref())
	base := engines.NewPinpoint(engines.Plain).Check(context.Background(), g, cands)
	for _, variant := range []engines.Variant{engines.LFS, engines.HFS, engines.AR} {
		got := engines.NewPinpoint(variant).Check(context.Background(), g, cands)
		for i := range base {
			if got[i].Status != base[i].Status && got[i].Status != sat.Unknown {
				t.Errorf("%s: disagreement on candidate %d: %s vs %s",
					variant, i, got[i].Status, base[i].Status)
			}
		}
	}
}

// TestInferOverReports: the path-insensitive engine reports infeasible
// flows as bugs (its false positives).
func TestInferOverReports(t *testing.T) {
	g, gt := buildSubject(t, progen.Subjects[3], 0.05)
	eng := sparse.NewEngine(g)
	cands := eng.Run(checker.NullDeref())
	inf := engines.NewInfer()
	verdicts := inf.Check(context.Background(), g, cands)
	reportedLines := map[int]bool{}
	for _, v := range verdicts {
		if v.Status == sat.Sat {
			reportedLines[v.Cand.Sink.Pos.Line] = true
		}
	}
	fps := 0
	for _, b := range gt.ByChecker("null-deref") {
		if !b.Feasible && reportedLines[b.SinkLine] {
			fps++
		}
	}
	if fps == 0 {
		t.Error("the path-insensitive engine should report infeasible bugs as false positives")
	}
	if inf.ConditionBytes() <= 0 {
		t.Error("summary memory accounting missing")
	}
}

func TestBuildOffsetsSinkLines(t *testing.T) {
	src, gt, _ := progen.Subjects[0].Build(0.2)
	for _, b := range gt.Bugs {
		lines := strings.Split(src, "\n")
		if b.SinkLine-1 >= len(lines) {
			t.Fatalf("sink line %d out of range", b.SinkLine)
		}
		line := lines[b.SinkLine-1]
		if !strings.Contains(line, "(") && !strings.Contains(line, "/") {
			t.Errorf("bug %d: line %d is %q, expected a sink", b.ID, b.SinkLine, line)
		}
	}
}
