package progen_test

import (
	"context"
	"math/rand"
	"testing"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/interp"
	"fusion/internal/lang"
	"fusion/internal/progen"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

// flowKey identifies a source-to-sink flow by source positions, which are
// stable between the raw program (interpreted) and the normalized one
// (analyzed).
type flowKey struct {
	source lang.Pos
	sink   lang.Pos
	argIdx int
}

// specInterpOpts derives interpreter taint options from a checker spec.
func specInterpOpts(spec *sparse.Spec, seed int64) interp.Options {
	var sources []string
	switch spec.Name {
	case "cwe-23":
		sources = checker.TaintInputSources
	case "cwe-402":
		sources = checker.SecretSources
	case "cwe-369", "cwe-125":
		sources = checker.TaintInputSources
	}
	var sinks []string
	for s := range spec.SinkCalls {
		sinks = append(sinks, s)
	}
	o := interp.SpecOptions(seed, spec.Name == "null-deref", sources, sinks, spec.TaintThroughExtern)
	o.ObserveDivZero = spec.SinkDivisors
	if len(spec.SinkBounds) > 0 {
		o.SinkBounds = map[string]interp.SinkBound{}
		for name, is := range spec.SinkBounds {
			o.SinkBounds[name] = interp.SinkBound{
				Arg: is.Arg, Size: is.Size,
				DynBound: is.DynBound, BoundArg: is.BoundArg,
			}
		}
	}
	return o
}

// TestAnalysisSoundAgainstConcreteExecutions is the end-to-end soundness
// fuzz: every flow witnessed by a concrete execution (the tracked value
// observably reaching a sink) must be found by the sparse analysis and
// judged feasible by both engines — the execution is a satisfying witness
// of the path condition.
func TestAnalysisSoundAgainstConcreteExecutions(t *testing.T) {
	for _, subIdx := range []int{2, 5, 9} {
		info := progen.Subjects[subIdx]
		src, _, _ := info.Build(0.05)
		pr, err := driver.Compile(context.Background(), driver.Source{Name: info.Name, Text: src}, driver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		raw, g := pr.AST, pr.Graph
		eng := sparse.NewEngine(g)
		an := absint.Analyze(g)
		rng := rand.New(rand.NewSource(int64(subIdx) * 77))

		for _, spec := range checker.All() {
			// Static side: verdicts per flow key, with and without the
			// interval tier, plus which flows the oracle would prune.
			cands := eng.Run(spec)
			fus := engines.NewFusion().Check(context.Background(), g, cands)
			fa := engines.NewFusion()
			fa.UseAbsint = true
			fusAbs := fa.Check(context.Background(), g, cands)
			pin := engines.NewPinpoint(engines.Plain).Check(context.Background(), g, cands)
			verdictF := map[flowKey]sat.Status{}
			verdictA := map[flowKey]sat.Status{}
			verdictP := map[flowKey]sat.Status{}
			prunedK := map[flowKey]bool{}
			for i, v := range fus {
				k := flowKey{v.Cand.Source.Pos, v.Cand.Sink.Pos, v.Cand.ArgIdx}
				verdictF[k] = v.Status
				verdictA[k] = fusAbs[i].Status
				verdictP[k] = pin[i].Status
				if an.PrunePath(v.Cand.Path, v.Cand.Constraints(0)...) {
					prunedK[k] = true
				}
			}

			// Dynamic side: execute every root bug function on random and
			// targeted inputs, collecting witnessed flows.
			for _, f := range raw.Funcs {
				if f.Extern || len(f.Params) == 0 || f.Name[:3] != "bug" {
					continue
				}
				for trial := 0; trial < 30; trial++ {
					args := make([]interp.Value, len(f.Params))
					for i := range args {
						switch trial % 3 {
						case 0:
							args[i] = interp.Value{V: rng.Uint32() % 8}
						case 1:
							args[i] = interp.Value{V: rng.Uint32() % 64}
						default:
							args[i] = interp.Value{V: rng.Uint32()}
						}
					}
					opts := specInterpOpts(spec, int64(trial))
					opts.MaxLoopIters = 2 // match the analysis's loop unrolling
					r, err := interp.New(raw, opts).Run(f.Name, args)
					if err != nil {
						t.Fatalf("%s/%s: interp: %v", info.Name, f.Name, err)
					}
					for _, hit := range r.Hits {
						for srcPos := range hit.Taint {
							k := flowKey{srcPos, hit.CallPos, hit.ArgIdx}
							st, found := verdictF[k]
							if !found {
								t.Errorf("%s/%s/%s: witnessed flow %v not found by the sparse analysis",
									info.Name, spec.Name, f.Name, k)
								continue
							}
							if st != sat.Sat {
								t.Errorf("%s/%s/%s: witnessed flow %v judged %s by fusion",
									info.Name, spec.Name, f.Name, k, st)
							}
							if verdictA[k] != sat.Sat {
								t.Errorf("%s/%s/%s: witnessed flow %v judged %s by fusion+absint",
									info.Name, spec.Name, f.Name, k, verdictA[k])
							}
							if verdictP[k] != sat.Sat {
								t.Errorf("%s/%s/%s: witnessed flow %v judged %s by pinpoint",
									info.Name, spec.Name, f.Name, k, verdictP[k])
							}
							if prunedK[k] {
								t.Errorf("%s/%s/%s: witnessed flow %v pruned by the absint oracle",
									info.Name, spec.Name, f.Name, k)
							}
						}
					}
				}
			}
		}
	}
}
