// Command fusionbench regenerates the paper's tables and figures on the
// synthetic subject suite. See EXPERIMENTS.md for the experiment index.
//
// Usage:
//
//	fusionbench [-experiment NAME|all] [-scale F] [-subjects a,b,c] [-budget D]
//	            [-workers N] [-timeout D] [-absint MODE] [-session on|off] [-fail-fast]
//	            [-retries N] [-watchdog-grace D] [-checkpoint FILE [-resume]]
//	            [-metrics FILE] [-trace FILE] [-pprof-addr ADDR]
//
// Exit status: 0 when every experiment ran to completion, 1 on a harness
// error, 2 on bad usage or when any engine run contained a unit crash.
// Expected budget exhaustion (the "time out" / "memory out" rows of the
// tables — the QE/AR variants are supposed to hit them) is part of a
// normal run and does not affect the exit status.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fusion/internal/bench"
	"fusion/internal/failure"
	"fusion/internal/faultinject"
	"fusion/internal/progen"
	"fusion/internal/telemetry"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run: "+strings.Join(bench.ExperimentNames, ", ")+", or all")
	scale := flag.Float64("scale", 0.002, "scale factor applied to the paper's subject sizes")
	subjects := flag.String("subjects", "", "comma-separated subject names (default: per experiment)")
	budget := flag.Duration("budget", 5*time.Minute, "per-engine-run time budget")
	smt2dir := flag.String("smt2dir", "", "dump every SMT instance as SMT-LIB v2 files into this directory and exit")
	workers := flag.Int("workers", 0, "worker count for compilation, enumeration, and checking (0 = sequential; output is identical for any count)")
	parallel := flag.Int("parallel", 0, "deprecated alias for -workers")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget for the whole invocation (0 = none)")
	absint := flag.String("absint", "on", "abstract-interpretation tier in the fused engine: on (intervals × stride + zone), nostride (congruence disabled), nosimplify (formula pre-simplification disabled), intervals (zone and stride disabled), or off")
	session := flag.String("session", "on", "warm incremental solver sessions: on (per-worker sessions reuse learned clauses and term encodings) or off (every query solves one-shot — the oracle)")
	failFast := flag.Bool("fail-fast", false, "stop after the first experiment whose runs contained a unit crash (default: run all experiments, summarize at the end)")
	retries := flag.Int("retries", 0, "re-run a candidate whose attempt crashed or was abandoned up to N times, escalating from the warm session to a fresh cold session to a one-shot solve (0 = single attempt)")
	watchdogGrace := flag.Duration("watchdog-grace", 0, "hard-abandon a candidate whose solver heartbeat stays flat this long at or past its deadline (0 = watchdog off)")
	checkpoint := flag.String("checkpoint", "", "journal completed engine runs to this file (append-only JSONL, fsync'd per record) so a crashed invocation can resume")
	resume := flag.Bool("resume", false, "replay runs a previous crashed invocation completed in the -checkpoint journal instead of re-running them")
	metrics := flag.String("metrics", "", "write a stable-ordered JSON metrics snapshot (counters, sched, wall_ns) to this file")
	trace := flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing) to this file")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
	flag.Parse()
	if err := faultinject.ArmFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "fusionbench:", err)
		os.Exit(2)
	}
	if *absint != "on" && *absint != "nostride" && *absint != "nosimplify" && *absint != "off" && *absint != "intervals" {
		fmt.Fprintf(os.Stderr, "fusionbench: -absint must be on, nostride, nosimplify, intervals, or off, got %q\n", *absint)
		os.Exit(2)
	}
	if *session != "on" && *session != "off" {
		fmt.Fprintf(os.Stderr, "fusionbench: -session must be on or off, got %q\n", *session)
		os.Exit(2)
	}
	if *workers == 0 {
		*workers = *parallel
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "fusionbench: -resume requires -checkpoint")
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var unitFailures []*failure.UnitFailure
	opts := bench.Options{
		Scale:         *scale,
		Budget:        bench.Budget{Time: *budget, CondBytes: 2 << 30},
		Workers:       *workers,
		Absint:        *absint != "off",
		IntervalsOnly: *absint == "intervals",
		NoStride:      *absint == "nostride",
		NoSimplify:    *absint == "nosimplify",
		NoSession:     *session == "off",
		OnCost: func(c bench.Cost) {
			unitFailures = append(unitFailures, c.Failures...)
		},
		Retries:       *retries,
		WatchdogGrace: *watchdogGrace,
	}
	var rec *telemetry.Recorder
	if *metrics != "" || *trace != "" {
		rec = telemetry.New()
		opts.Telemetry = rec
	}
	if *pprofAddr != "" {
		if err := telemetry.EnablePprof(*pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "fusionbench:", err)
			os.Exit(2)
		}
	}
	if *metrics != "" || *trace != "" || *pprofAddr != "" {
		// SIGUSR1 dumps heap and goroutine profiles whenever any
		// observability surface is requested.
		telemetry.DumpOnSignal("")
	}
	// Artifacts are written on every exit path past this point — an
	// impaired run's partial trace is exactly what one wants to look at.
	writeArtifacts := func() {
		if rec == nil {
			return
		}
		if *metrics != "" {
			if err := rec.WriteMetrics(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, "fusionbench:", err)
			}
		}
		if *trace != "" {
			if err := rec.WriteTrace(*trace); err != nil {
				fmt.Fprintln(os.Stderr, "fusionbench:", err)
			}
		}
	}
	if *checkpoint != "" {
		if !*resume {
			// A fresh run must not replay a stale journal for a different
			// configuration; truncate and start over.
			if err := os.Truncate(*checkpoint, 0); err != nil && !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "fusionbench:", err)
				os.Exit(1)
			}
		}
		j, err := bench.OpenJournal(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusionbench:", err)
			os.Exit(1)
		}
		defer j.Close()
		opts.Journal = j
		if *resume && (j.Len() > 0 || j.Units() > 0) {
			fmt.Fprintf(os.Stderr, "fusionbench: resuming: %d completed run(s), %d unit record(s) in %s\n",
				j.Len(), j.Units(), *checkpoint)
		}
	}
	if *subjects != "" {
		for _, name := range strings.Split(*subjects, ",") {
			s, err := progen.SubjectByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "fusionbench:", err)
				os.Exit(2)
			}
			opts.Subjects = append(opts.Subjects, s)
		}
	}

	if *smt2dir != "" {
		if err := os.MkdirAll(*smt2dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fusionbench:", err)
			os.Exit(1)
		}
		n, err := bench.DumpSMT2(ctx, opts, *smt2dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusionbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d SMT-LIB instances to %s\n", n, *smt2dir)
		return
	}

	names := bench.ExperimentNames
	if *exp != "all" {
		if bench.Experiments[*exp] == nil {
			fmt.Fprintf(os.Stderr, "fusionbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		opts.Experiment = name
		out, err := bench.Experiments[name](ctx, opts)
		if err != nil {
			writeArtifacts()
			fmt.Fprintf(os.Stderr, "fusionbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (ran in %.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
		if *failFast && len(unitFailures) > 0 {
			fmt.Fprintf(os.Stderr, "fusionbench: fail-fast: stopping after %s\n", name)
			break
		}
	}
	writeArtifacts()
	if len(unitFailures) > 0 {
		fmt.Fprintf(os.Stderr, "fusionbench: %d contained unit crash(es):\n", len(unitFailures))
		for _, f := range unitFailures {
			fmt.Fprintf(os.Stderr, "  %s [%s %s] %v\n", f.Unit, f.Stage, f.Digest(), f.Value)
		}
		os.Exit(2)
	}
}
