// Command fusiongen emits a synthetic benchmark subject (source text plus
// ground-truth bug records) for inspection or external use.
//
// Usage:
//
//	fusiongen [-subject NAME] [-scale F] [-o FILE] [-truth FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fusion/internal/progen"
)

func main() {
	name := flag.String("subject", "mcf", "subject name from Table 2")
	scale := flag.Float64("scale", 0.002, "scale factor")
	out := flag.String("o", "", "write the program here (default stdout)")
	truth := flag.String("truth", "", "write ground truth JSON here (default stderr summary)")
	flag.Parse()

	sub, err := progen.SubjectByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusiongen:", err)
		os.Exit(2)
	}
	src, gt, lines := sub.Build(*scale)
	if *out == "" {
		fmt.Print(src)
	} else if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fusiongen:", err)
		os.Exit(1)
	}
	if *truth != "" {
		data, err := json.MarshalIndent(gt, "", "  ")
		if err == nil {
			err = os.WriteFile(*truth, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusiongen:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "fusiongen: %s at scale %g: %d lines, %d injected bugs\n",
		sub.Name, *scale, lines, len(gt.Bugs))
}
