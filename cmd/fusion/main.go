// Command fusion analyzes a program in the analysis language with a chosen
// checker and engine, printing the verified bug reports.
//
// Usage:
//
//	fusion [-checker null-deref|cwe-23|cwe-402|cwe-369|cwe-125|all] [-engine NAME]
//	       [-absint on|off|intervals] [-workers N] [-timeout D] [-no-prelude] file.fl
//
// Engines: fusion (default), fusion-unopt, pinpoint, pinpoint+qe,
// pinpoint+lfs, pinpoint+hfs, pinpoint+ar, infer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"fusion/internal/checker"
	"fusion/internal/driver"
	"fusion/internal/engines"
	"fusion/internal/fusioncore"
	"fusion/internal/sat"
	"fusion/internal/sparse"
)

func main() {
	checkerName := flag.String("checker", "all", "checker to run: null-deref, cwe-23, cwe-402, cwe-369, cwe-125, or all")
	engineName := flag.String("engine", "fusion", "engine: fusion, fusion-unopt, pinpoint[+qe|+lfs|+hfs|+ar], infer")
	noPrelude := flag.Bool("no-prelude", false, "do not prepend the standard extern declarations")
	showPaths := flag.Bool("paths", false, "print the data-dependence path of each report")
	joint := flag.Bool("joint", false, "additionally check the joint feasibility of multi-argument sinks")
	enum := flag.String("enum", "dfs", "path enumeration: dfs or summary")
	dot := flag.Bool("dot", false, "print the program dependence graph in Graphviz DOT format and exit")
	absintMode := flag.String("absint", "on", "abstract-interpretation tier: on (intervals + zone), intervals (zone disabled), or off (fusion engines and -dot annotations)")
	workers := flag.Int("workers", 1, "worker count for enumeration and checking (output is identical for any count)")
	timeout := flag.Duration("timeout", 0, "overall analysis budget; on expiry remaining candidates are reported as undecided (0 = none)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fusion [flags] file.fl")
		flag.Usage()
		os.Exit(2)
	}
	mode, err := driver.ParseAbsintMode(*absintMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusion:", err)
		os.Exit(2)
	}
	cfg := config{
		path: flag.Arg(0), checker: *checkerName, engine: *engineName,
		prelude: !*noPrelude, showPaths: *showPaths, joint: *joint,
		enum: *enum, dot: *dot, absint: mode,
		workers: *workers, timeout: *timeout,
		out: os.Stdout,
	}
	if err := run(cfg); err != nil {
		var se *driver.SemaErrors
		if errors.As(err, &se) {
			for _, e := range se.Errs {
				fmt.Fprintln(os.Stderr, e)
			}
		}
		fmt.Fprintln(os.Stderr, "fusion:", err)
		os.Exit(1)
	}
}

type config struct {
	path      string
	checker   string
	engine    string
	prelude   bool
	showPaths bool
	joint     bool
	enum      string
	dot       bool
	absint    driver.AbsintMode
	workers   int
	timeout   time.Duration
	out       interface{ Write([]byte) (int, error) }
}

func newEngine(name string) (engines.Engine, error) {
	switch name {
	case "fusion":
		return engines.NewFusion(), nil
	case "fusion-unopt":
		e := engines.NewFusion()
		e.Opts = fusioncore.Options{Unoptimized: true}
		return e, nil
	case "pinpoint":
		return engines.NewPinpoint(engines.Plain), nil
	case "pinpoint+qe":
		return engines.NewPinpoint(engines.QE), nil
	case "pinpoint+lfs":
		return engines.NewPinpoint(engines.LFS), nil
	case "pinpoint+hfs":
		return engines.NewPinpoint(engines.HFS), nil
	case "pinpoint+ar":
		return engines.NewPinpoint(engines.AR), nil
	case "infer":
		return engines.NewInfer(), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func run(cfg config) error {
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	data, err := os.ReadFile(cfg.path)
	if err != nil {
		return err
	}
	prog, err := driver.Compile(ctx, driver.Source{Name: cfg.path, Text: string(data)},
		driver.Options{Prelude: cfg.prelude, Absint: cfg.absint})
	if err != nil {
		return err
	}
	g := prog.Graph
	if cfg.dot {
		fmt.Fprint(cfg.out, prog.DOT())
		return nil
	}

	var specs []*sparse.Spec
	if cfg.checker == "all" {
		specs = checker.All()
	} else {
		spec, err := checker.ByName(cfg.checker)
		if err != nil {
			return err
		}
		specs = []*sparse.Spec{spec}
	}
	eng, err := newEngine(cfg.engine)
	if err != nil {
		return err
	}
	engines.SetParallel(eng, cfg.workers)
	// The abstract tier applies to the fused engine: it refutes queries
	// before any formula is built, and its invariants prune provably-safe
	// candidates during DFS enumeration. The analysis is computed once on
	// the compiled program and shared between pruning and refutation.
	useAbsint := false
	if f, ok := eng.(*engines.Fusion); ok && cfg.absint != driver.AbsintOff {
		f.Opts.Absint = prog.Absint()
		useAbsint = true
	}

	pruned := 0
	enumerate := func(spec *sparse.Spec) ([]sparse.Candidate, error) {
		switch cfg.enum {
		case "", "dfs":
			e := sparse.NewEngine(g)
			e.Workers = cfg.workers
			if useAbsint {
				e.Oracle = prog.Oracle()
			}
			cands := e.RunContext(ctx, spec)
			pruned += e.Pruned
			return cands, nil
		case "summary":
			return sparse.NewSummaryEngine(g).RunContext(ctx, spec), nil
		default:
			return nil, fmt.Errorf("unknown enumeration %q", cfg.enum)
		}
	}

	total, decided, byZone := 0, 0, 0
	for _, spec := range specs {
		cands, err := enumerate(spec)
		if err != nil {
			return err
		}
		verdicts := eng.Check(ctx, g, cands)
		engines.SortVerdicts(verdicts)
		for _, v := range verdicts {
			if v.DecidedByAbsint {
				decided++
			}
			if v.DecidedByZone {
				byZone++
			}
			switch v.Status {
			case sat.Sat:
				total++
				fmt.Fprintln(cfg.out, checker.Describe(v.Cand))
				if cfg.showPaths {
					fmt.Fprintf(cfg.out, "    path: %s\n", v.Cand.Path)
				}
			case sat.Unknown:
				fmt.Fprintf(cfg.out, "[%s] undecided within budget: %s\n", spec.Name, v.Cand.Path)
			}
		}
		if cfg.joint {
			jc, ok := eng.(engines.JointChecker)
			if !ok {
				return fmt.Errorf("engine %s does not support joint checking", eng.Name())
			}
			for _, jv := range engines.CheckJoint(ctx, jc, g, cands) {
				verdict := "jointly infeasible"
				if jv.Status == sat.Sat {
					verdict = "JOINT BUG: all arguments taintable together"
				}
				fmt.Fprintf(cfg.out, "[%s] sink %s.%s with %d tracked arguments: %s\n",
					spec.Name, jv.Group.Sink.Fn.Name, jv.Group.Sink.Callee,
					len(jv.Group.Flows), verdict)
			}
		}
	}
	if useAbsint {
		fmt.Fprintf(cfg.out, "absint: refuted %d quer(ies) (%d by zone), pruned %d candidate(s)\n", decided, byZone, pruned)
	}
	fmt.Fprintf(cfg.out, "%d bug(s) reported by %s\n", total, eng.Name())
	return nil
}
