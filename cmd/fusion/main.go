// Command fusion analyzes a program in the analysis language with a chosen
// checker and engine, printing the verified bug reports.
//
// Usage:
//
//	fusion [-checker null-deref|cwe-23|cwe-402|cwe-369|cwe-125|all] [-engine NAME] [-absint on|off|intervals] [-no-prelude] file.fl
//
// Engines: fusion (default), fusion-unopt, pinpoint, pinpoint+qe,
// pinpoint+lfs, pinpoint+hfs, pinpoint+ar, infer.
package main

import (
	"flag"
	"fmt"
	"os"

	"fusion/internal/absint"
	"fusion/internal/checker"
	"fusion/internal/engines"
	"fusion/internal/fusioncore"
	"fusion/internal/lang"
	"fusion/internal/pdg"
	"fusion/internal/sat"
	"fusion/internal/sema"
	"fusion/internal/sparse"
	"fusion/internal/ssa"
	"fusion/internal/unroll"
)

func main() {
	checkerName := flag.String("checker", "all", "checker to run: null-deref, cwe-23, cwe-402, cwe-369, cwe-125, or all")
	engineName := flag.String("engine", "fusion", "engine: fusion, fusion-unopt, pinpoint[+qe|+lfs|+hfs|+ar], infer")
	noPrelude := flag.Bool("no-prelude", false, "do not prepend the standard extern declarations")
	showPaths := flag.Bool("paths", false, "print the data-dependence path of each report")
	joint := flag.Bool("joint", false, "additionally check the joint feasibility of multi-argument sinks")
	enum := flag.String("enum", "dfs", "path enumeration: dfs or summary")
	dot := flag.Bool("dot", false, "print the program dependence graph in Graphviz DOT format and exit")
	absintMode := flag.String("absint", "on", "abstract-interpretation tier: on (intervals + zone), intervals (zone disabled), or off (fusion engines and -dot annotations)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fusion [flags] file.fl")
		flag.Usage()
		os.Exit(2)
	}
	if *absintMode != "on" && *absintMode != "off" && *absintMode != "intervals" {
		fmt.Fprintf(os.Stderr, "fusion: -absint must be on, off, or intervals, got %q\n", *absintMode)
		os.Exit(2)
	}
	cfg := config{
		path: flag.Arg(0), checker: *checkerName, engine: *engineName,
		prelude: !*noPrelude, showPaths: *showPaths, joint: *joint,
		enum: *enum, dot: *dot, absint: *absintMode != "off",
		intervalsOnly: *absintMode == "intervals",
		out:           os.Stdout,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fusion:", err)
		os.Exit(1)
	}
}

type config struct {
	path          string
	checker       string
	engine        string
	prelude       bool
	showPaths     bool
	joint         bool
	enum          string
	dot           bool
	absint        bool
	intervalsOnly bool
	out           interface{ Write([]byte) (int, error) }
}

func newEngine(name string) (engines.Engine, error) {
	switch name {
	case "fusion":
		return engines.NewFusion(), nil
	case "fusion-unopt":
		e := engines.NewFusion()
		e.Opts = fusioncore.Options{Unoptimized: true}
		return e, nil
	case "pinpoint":
		return engines.NewPinpoint(engines.Plain), nil
	case "pinpoint+qe":
		return engines.NewPinpoint(engines.QE), nil
	case "pinpoint+lfs":
		return engines.NewPinpoint(engines.LFS), nil
	case "pinpoint+hfs":
		return engines.NewPinpoint(engines.HFS), nil
	case "pinpoint+ar":
		return engines.NewPinpoint(engines.AR), nil
	case "infer":
		return engines.NewInfer(), nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func run(cfg config) error {
	data, err := os.ReadFile(cfg.path)
	if err != nil {
		return err
	}
	src := string(data)
	if cfg.prelude {
		src = checker.Prelude + src
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}
	if errs := sema.Check(prog); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		return fmt.Errorf("%d semantic errors", len(errs))
	}
	norm := unroll.Normalize(prog, unroll.Options{})
	sp, err := ssa.Build(norm)
	if err != nil {
		return err
	}
	g := pdg.Build(sp)
	if cfg.dot {
		if cfg.absint {
			an := absint.AnalyzeWith(g, absint.Config{DisableZone: cfg.intervalsOnly})
			fmt.Fprint(cfg.out, pdg.ToDOTAnnotated(g, an.Annotation))
		} else {
			fmt.Fprint(cfg.out, pdg.ToDOT(g))
		}
		return nil
	}

	var specs []*sparse.Spec
	if cfg.checker == "all" {
		specs = checker.All()
	} else {
		spec, err := checker.ByName(cfg.checker)
		if err != nil {
			return err
		}
		specs = []*sparse.Spec{spec}
	}
	eng, err := newEngine(cfg.engine)
	if err != nil {
		return err
	}
	// The abstract tier applies to the fused engine: it refutes queries
	// before any formula is built, and its invariants prune provably-safe
	// candidates during DFS enumeration.
	var an *absint.Analysis
	if f, ok := eng.(*engines.Fusion); ok && cfg.absint {
		f.UseAbsint = true
		f.IntervalsOnly = cfg.intervalsOnly
		an = f.Absint(g)
	}

	pruned := 0
	enumerate := func(spec *sparse.Spec) ([]sparse.Candidate, error) {
		switch cfg.enum {
		case "", "dfs":
			e := sparse.NewEngine(g)
			if an != nil {
				e.Oracle = func(c sparse.Candidate) bool {
					return an.PrunePath(c.Path, c.Constraints(0)...)
				}
			}
			cands := e.Run(spec)
			pruned += e.Pruned
			return cands, nil
		case "summary":
			return sparse.NewSummaryEngine(g).Run(spec), nil
		default:
			return nil, fmt.Errorf("unknown enumeration %q", cfg.enum)
		}
	}

	total, decided, byZone := 0, 0, 0
	for _, spec := range specs {
		cands, err := enumerate(spec)
		if err != nil {
			return err
		}
		verdicts := eng.Check(g, cands)
		for _, v := range verdicts {
			if v.DecidedByAbsint {
				decided++
			}
			if v.DecidedByZone {
				byZone++
			}
			switch v.Status {
			case sat.Sat:
				total++
				fmt.Fprintln(cfg.out, checker.Describe(v.Cand))
				if cfg.showPaths {
					fmt.Fprintf(cfg.out, "    path: %s\n", v.Cand.Path)
				}
			case sat.Unknown:
				fmt.Fprintf(cfg.out, "[%s] undecided within budget: %s\n", spec.Name, v.Cand.Path)
			}
		}
		if cfg.joint {
			jc, ok := eng.(engines.JointChecker)
			if !ok {
				return fmt.Errorf("engine %s does not support joint checking", eng.Name())
			}
			for _, jv := range engines.CheckJoint(jc, g, cands) {
				verdict := "jointly infeasible"
				if jv.Status == sat.Sat {
					verdict = "JOINT BUG: all arguments taintable together"
				}
				fmt.Fprintf(cfg.out, "[%s] sink %s.%s with %d tracked arguments: %s\n",
					spec.Name, jv.Group.Sink.Fn.Name, jv.Group.Sink.Callee,
					len(jv.Group.Flows), verdict)
			}
		}
	}
	if an != nil {
		fmt.Fprintf(cfg.out, "absint: refuted %d quer(ies) (%d by zone), pruned %d candidate(s)\n", decided, byZone, pruned)
	}
	fmt.Fprintf(cfg.out, "%d bug(s) reported by %s\n", total, eng.Name())
	return nil
}
